// Reproduces Fig. 7: normalized speedup (vs the Naive version) of the
// hand-coded Pipelined and the runtime's Pipelined-buffer versions of
// 3dconv and stencil as the GPU stream count sweeps 1..8 on the K40m
// profile. Paper findings: the OpenACC Pipelined version degrades as
// streams grow (queue-management overhead) while the prototype stays
// stable; past ~6 streams the buffered runtime is faster; buffer memory
// grows slightly with the stream count.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

const apps::Measurement& measure_m(const std::string& app, const std::string& version,
                                   int streams) {
  return cached("fig7-" + app + version + std::to_string(streams), [&] {
    return run_on(kProfile, [&](gpu::Gpu& g) -> apps::Measurement {
      if (app == "3dconv") {
        // A mid-size volume: large enough that pipelining pays at few
        // streams, small enough that per-op queue overheads show at many.
        auto cfg = conv3d_amd_cfg();
        cfg.ni = cfg.nj = cfg.nk = 320;
        cfg.num_streams = streams;
        if (version == "naive") return apps::conv3d_naive(g, cfg);
        if (version == "pipelined") return apps::conv3d_pipelined(g, cfg);
        return apps::conv3d_pipelined_buffer(g, cfg);
      }
      auto cfg = stencil_cfg();
      cfg.chunk_size = kStencilHandCodedChunk;
      cfg.num_streams = streams;
      if (version == "naive") return apps::stencil_naive(g, cfg);
      if (version == "pipelined") return apps::stencil_pipelined(g, cfg);
      return apps::stencil_pipelined_buffer(g, cfg);
    });
  });
}

void register_all() {
  for (const char* app : {"3dconv", "stencil"}) {
    for (std::string v : {"pipelined", "buffer"}) {
      for (int s = 1; s <= 8; ++s) {
        const std::string name =
            std::string("fig7/") + app + "/" + v + "/streams:" + std::to_string(s);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [app, v, s](benchmark::State& st) { report(st, measure_m(app, v, s)); })
            ->UseManualTime()->Iterations(1);
      }
    }
  }
}

void print_figure() {
  for (const char* app : {"3dconv", "stencil"}) {
    const double naive = measure_m(app, "naive", 1).seconds;
    std::printf("\nFig. 7 — %s speedup vs stream count on %s (Naive = %.3f s)\n", app,
                kProfile.name.c_str(), naive);
    Table t({"streams", "Pipelined speedup", "Pipelined-buffer speedup",
             "buffer mem (MB)"});
    for (int s = 1; s <= 8; ++s) {
      const auto& p = measure_m(app, "pipelined", s);
      const auto& b = measure_m(app, "buffer", s);
      t.add_row({std::to_string(s), Table::num(naive / p.seconds),
                 Table::num(naive / b.seconds),
                 Table::num(to_mib(b.reported_device_mem), 0)});
    }
    t.print(std::cout);
  }
  std::printf(
      "paper: Pipelined degrades with streams, buffer stays stable; crossover around 6 "
      "streams; buffer memory grows slightly with stream count\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
