// Reproduces Fig. 10: matrix-multiplication GPU memory usage (MB) across
// sizes on the K40m profile. Paper points: the pipeline-buffer version
// keeps only C (plus two small rings) resident — ~66% savings at large
// sizes — and is the only version that still runs at 20480/24576.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

/// reported_device_mem == 0 encodes out-of-memory.
Bytes mem_of(std::int64_t n, const std::string& version) {
  const std::string key = "fig10-" + std::to_string(n) + version;
  return cached(key, [&]() -> apps::Measurement {
           try {
             return run_on(kProfile, [&](gpu::Gpu& g) {
               auto cfg = matmul_cfg(n);
               if (version == "baseline") return apps::matmul_baseline(g, cfg);
               if (version == "block_shared") return apps::matmul_block_shared(g, cfg);
               return apps::matmul_pipeline_buffer(g, cfg);
             });
           } catch (const gpu::OomError&) {
             return apps::Measurement{};
           }
         })
      .reported_device_mem;
}

void register_all() {
  for (std::int64_t n : kMatmulSizes) {
    for (std::string v : {"baseline", "block_shared", "pipeline_buffer"}) {
      const std::string name = "fig10/matmul/" + v + "/n:" + std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), [n, v](benchmark::State& st) {
        const Bytes b = mem_of(n, v);
        for (auto _ : st) st.SetIterationTime(1e-9);
        st.counters["mem_MB"] = to_mib(b);
        st.counters["oom"] = b == 0 ? 1 : 0;
      })->UseManualTime()->Iterations(1);
    }
  }
}

std::string mem_str(Bytes b) { return b == 0 ? "OOM" : Table::num(to_mib(b), 0); }

void print_figure() {
  std::printf("\nFig. 10 — Matmul GPU memory usage [MB] on %s\n", kProfile.name.c_str());
  Table t({"size", "baseline", "block_shared", "pipeline_buffer", "buffer saving"});
  for (std::int64_t n : kMatmulSizes) {
    const Bytes nb = mem_of(n, "baseline");
    const Bytes pb = mem_of(n, "pipeline_buffer");
    const std::string saving =
        nb == 0 ? "(others OOM)"
                : Table::num(100.0 * (1.0 - static_cast<double>(pb) /
                                                static_cast<double>(nb)),
                             1) + "%";
    t.add_row({std::to_string(n), mem_str(nb), mem_str(mem_of(n, "block_shared")),
               mem_str(pb), saving});
  }
  t.print(std::cout);
  std::printf("paper: buffer saves ~66%% at large sizes; only it runs 20480/24576\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
