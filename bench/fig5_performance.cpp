// Reproduces Fig. 5: normalized speedup of Naive / Pipelined /
// Pipelined-buffer for 3dconv, stencil, and qcd (small/medium/large) on the
// NVIDIA K40m profile. Paper's headline points: 3dconv 1.45x/1.46x,
// stencil ~1.5x with the buffered runtime at least matching the hand-coded
// pipeline, qcd-large 1.54x for the prototype.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

// --- Measurement wrappers (memoised; each runs on a fresh device) ---

const apps::Measurement& conv_m(const std::string& version) {
  return cached("conv-" + version, [&] {
    auto cfg = conv3d_cfg();
    return run_on(kProfile, [&](gpu::Gpu& g) {
      if (version == "naive") return apps::conv3d_naive(g, cfg);
      if (version == "pipelined") return apps::conv3d_pipelined(g, cfg);
      return apps::conv3d_pipelined_buffer(g, cfg);
    });
  });
}

const apps::Measurement& stencil_m(const std::string& version) {
  return cached("stencil-" + version, [&] {
    auto cfg = stencil_cfg();
    return run_on(kProfile, [&](gpu::Gpu& g) {
      if (version == "naive") return apps::stencil_naive(g, cfg);
      if (version == "pipelined") {
        cfg.num_streams = kStencilHandCodedStreams;  // OpenACC default queues
        cfg.chunk_size = kStencilHandCodedChunk;
        return apps::stencil_pipelined(g, cfg);
      }
      return apps::stencil_pipelined_buffer(g, cfg);
    });
  });
}

const apps::Measurement& qcd_m(char size, const std::string& version) {
  return cached(std::string("qcd-") + size + "-" + version, [&] {
    auto cfg = qcd_cfg(size);
    return run_on(kProfile, [&](gpu::Gpu& g) {
      if (version == "naive") return apps::qcd_naive(g, cfg);
      if (version == "pipelined") return apps::qcd_pipelined(g, cfg);
      return apps::qcd_pipelined_buffer(g, cfg);
    });
  });
}

// --- google-benchmark entries ---

void BM_Conv3d(benchmark::State& state, const std::string& version) {
  report(state, conv_m(version));
}
void BM_Stencil(benchmark::State& state, const std::string& version) {
  report(state, stencil_m(version));
}
void BM_Qcd(benchmark::State& state, char size, const std::string& version) {
  report(state, qcd_m(size, version));
}

void register_all() {
  for (std::string v : {"naive", "pipelined", "buffer"}) {
    benchmark::RegisterBenchmark(("fig5/3dconv/" + v).c_str(),
                                 [v](benchmark::State& s) { BM_Conv3d(s, v); })
        ->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark(("fig5/stencil/" + v).c_str(),
                                 [v](benchmark::State& s) { BM_Stencil(s, v); })
        ->UseManualTime()->Iterations(1);
    for (char sz : {'s', 'm', 'l'})
      benchmark::RegisterBenchmark((std::string("fig5/") + qcd_name(sz) + "/" + v).c_str(),
                                   [sz, v](benchmark::State& s) { BM_Qcd(s, sz, v); })
          ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  Table t({"benchmark", "Naive (s)", "Pipelined (s)", "Pipelined-buffer (s)",
           "speedup Pipelined", "speedup Buffer", "paper Pipelined", "paper Buffer"});
  auto row = [&](const std::string& name, const apps::Measurement& n,
                 const apps::Measurement& p, const apps::Measurement& b,
                 const std::string& paper_p, const std::string& paper_b) {
    t.add_row({name, Table::num(n.seconds, 3), Table::num(p.seconds, 3),
               Table::num(b.seconds, 3), Table::num(n.seconds / p.seconds),
               Table::num(n.seconds / b.seconds), paper_p, paper_b});
  };
  row("3dconv", conv_m("naive"), conv_m("pipelined"), conv_m("buffer"), "1.45", "1.46");
  row("stencil", stencil_m("naive"), stencil_m("pipelined"), stencil_m("buffer"), "~1.5",
      ">= Pipelined");
  row("qcd-small", qcd_m('s', "naive"), qcd_m('s', "pipelined"), qcd_m('s', "buffer"),
      "~1.6", "~1.5");
  row("qcd-medium", qcd_m('m', "naive"), qcd_m('m', "pipelined"), qcd_m('m', "buffer"),
      "~1.6", "~1.5");
  row("qcd-large", qcd_m('l', "naive"), qcd_m('l', "pipelined"), qcd_m('l', "buffer"),
      "~1.65", "1.54");
  std::printf("\nFig. 5 — Performance evaluation on %s\n", kProfile.name.c_str());
  t.print(std::cout);

  Artifact a("fig5_performance");
  a.config("profile", kProfile.name);
  auto emit = [&](const std::string& name, const apps::Measurement& n,
                  const apps::Measurement& p, const apps::Measurement& b) {
    a.measurement(name + ".naive", n);
    a.measurement(name + ".pipelined", p);
    a.measurement(name + ".buffer", b);
    a.derived(name + ".speedup_pipelined", n.seconds / p.seconds);
    a.derived(name + ".speedup_buffer", n.seconds / b.seconds);
  };
  emit("3dconv", conv_m("naive"), conv_m("pipelined"), conv_m("buffer"));
  emit("stencil", stencil_m("naive"), stencil_m("pipelined"), stencil_m("buffer"));
  for (char sz : {'s', 'm', 'l'})
    emit(qcd_name(sz), qcd_m(sz, "naive"), qcd_m(sz, "pipelined"), qcd_m(sz, "buffer"));
  a.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
