// Extension bench: the pipelining technique across three device profiles —
// NVIDIA K40m, AMD HD 7970, and the Intel Xeon Phi coprocessor the paper
// names as future work. For each device it reports naive vs runtime speedup
// and the chunk size/stream count the autotuner picks, illustrating the
// paper's conclusion that "the trade-off does not have a constant solution".
#include "acc/acc.hpp"
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"
#include "core/autotune.hpp"

namespace gpupipe::bench {
namespace {

struct DeviceEntry {
  const char* key;
  gpu::DeviceProfile profile;
};

std::vector<DeviceEntry> devices() {
  return {{"k40m", gpu::nvidia_k40m()},
          {"hd7970", gpu::amd_hd7970()},
          {"xeonphi", gpu::intel_xeonphi()}};
}

apps::StencilConfig workload() {
  apps::StencilConfig cfg = stencil_cfg();
  cfg.sweeps = 10;
  return cfg;
}

struct Outcome {
  double naive_s = 0.0;
  double tuned_s = 0.0;
  std::int64_t chunk = 0;
  int streams = 0;
};

const Outcome& outcome_for(std::size_t i) {
  static std::map<std::size_t, Outcome> cache;
  auto it = cache.find(i);
  if (it != cache.end()) return it->second;

  const auto dev = devices()[i];
  Outcome o;
  {
    gpu::Gpu g(dev.profile, gpu::ExecMode::Modeled);
    quiet(g);
    o.naive_s = apps::stencil_naive(g, workload()).seconds;
  }
  // Tune chunk/streams per device, then measure the buffered runtime with
  // the tuned parameters.
  std::int64_t best_chunk = 1;
  int best_streams = 2;
  {
    gpu::Gpu g(dev.profile, gpu::ExecMode::Modeled);
    quiet(g);
    auto cfg = workload();
    cfg.sweeps = 1;  // tuning probe: one sweep is representative
    core::TuneOptions opt;
    opt.chunk_candidates = {1, 2, 4, 8, 16};
    opt.stream_candidates = {1, 2, 4};
    // Reuse the app through a thin spec: tune on a plane-streaming proxy.
    core::PipelineSpec spec;
    spec.loop_begin = 1;
    spec.loop_end = cfg.nz - 1;
    std::byte* in = g.host_alloc(cfg.grid_bytes());
    std::byte* out = g.host_alloc(cfg.grid_bytes());
    spec.arrays = {
        core::ArraySpec{"in", core::MapType::To, in, sizeof(double),
                        {cfg.nz, cfg.ny * cfg.nx}, core::SplitSpec{0, core::Affine{1, -1}, 3}},
        core::ArraySpec{"out", core::MapType::From, out, sizeof(double),
                        {cfg.nz, cfg.ny * cfg.nx}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
    };
    const auto r = core::autotune(g, spec, [&](const core::ChunkContext& ctx) {
      gpu::KernelDesc k;
      const double elems = static_cast<double>(ctx.iterations() * cfg.ny * cfg.nx);
      k.flops = cfg.model.flops_per_elem * elems;
      k.bytes = static_cast<Bytes>(cfg.model.bytes_per_elem * elems);
      return k;
    }, opt);
    best_chunk = r.chunk_size;
    best_streams = r.num_streams;
  }
  {
    gpu::Gpu g(dev.profile, gpu::ExecMode::Modeled);
    quiet(g);
    auto cfg = workload();
    cfg.chunk_size = best_chunk;
    cfg.num_streams = best_streams;
    o.tuned_s = apps::stencil_pipelined_buffer(g, cfg).seconds;
  }
  o.chunk = best_chunk;
  o.streams = best_streams;
  return cache.emplace(i, o).first->second;
}

void register_all() {
  const auto devs = devices();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    benchmark::RegisterBenchmark((std::string("ext_devices/stencil/") + devs[i].key).c_str(),
                                 [i](benchmark::State& st) {
                                   const Outcome& o = outcome_for(i);
                                   for (auto _ : st) st.SetIterationTime(o.tuned_s);
                                   st.counters["naive_s"] = o.naive_s;
                                   st.counters["speedup"] = o.naive_s / o.tuned_s;
                                   st.counters["chunk"] = static_cast<double>(o.chunk);
                                   st.counters["streams"] = o.streams;
                                 })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nExtension — autotuned pipelining across device profiles (stencil)\n");
  Table t({"device", "Naive (s)", "tuned runtime (s)", "speedup", "tuned chunk",
           "tuned streams"});
  const auto devs = devices();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    const Outcome& o = outcome_for(i);
    t.add_row({devs[i].profile.name, Table::num(o.naive_s, 3), Table::num(o.tuned_s, 3),
               Table::num(o.naive_s / o.tuned_s), std::to_string(o.chunk),
               std::to_string(o.streams)});
  }
  t.print(std::cout);
  std::printf("The best (chunk, streams) differs per device — the paper's point that the "
              "trade-off has no constant solution.\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
