// Microbenchmarks of the simulated device primitives — the raw numbers
// behind every figure. Prints the transfer-bandwidth curves (1-D and 2-D),
// per-operation latencies, and kernel roofline behaviour for each shipped
// profile, so a calibration change is visible here first.
#include "bench/bench_util.hpp"

namespace gpupipe::bench {
namespace {

std::vector<gpu::DeviceProfile> profiles() {
  return {gpu::nvidia_k40m(), gpu::amd_hd7970(), gpu::intel_xeonphi()};
}

/// Measured effective bandwidth of one H2D transfer of `bytes`.
double measured_bw(const gpu::DeviceProfile& p, Bytes bytes) {
  gpu::Gpu g(p, gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(bytes);
  std::byte* dev = g.device_malloc(bytes);
  auto t = g.memcpy_h2d_async(dev, host, bytes, g.default_stream());
  g.synchronize();
  return static_cast<double>(bytes) / t->duration();
}

/// Measured effective bandwidth of a 2-D transfer: `bytes` total in rows of
/// `row` bytes.
double measured_bw_2d(const gpu::DeviceProfile& p, Bytes bytes, Bytes row) {
  gpu::Gpu g(p, gpu::ExecMode::Modeled);
  const Bytes height = bytes / row;
  std::byte* host = g.host_alloc(bytes);
  gpu::Pitched dev = g.device_malloc_pitched(row, height);
  auto t = g.memcpy2d_h2d_async(dev.ptr, dev.pitch, host, row, row, height,
                                g.default_stream());
  g.synchronize();
  return static_cast<double>(bytes) / t->duration();
}

void register_all() {
  for (const auto& p : profiles()) {
    for (Bytes sz : {64 * KiB, 512 * KiB, 4 * MiB, 64 * MiB, 512 * MiB}) {
      const std::string name =
          "micro/h2d_bw/" + p.name.substr(0, p.name.find(' ')) + "/" +
          std::to_string(sz / KiB) + "KiB";
      benchmark::RegisterBenchmark(name.c_str(), [p, sz](benchmark::State& st) {
        const double bw = measured_bw(p, sz);
        for (auto _ : st) st.SetIterationTime(static_cast<double>(sz) / bw);
        st.counters["GBps"] = bw / 1e9;
      })->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nMicro — 1-D H2D effective bandwidth [GB/s] vs transfer size\n");
  {
    Table t({"size", "K40m", "HD7970", "XeonPhi"});
    for (Bytes sz : {64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB, 512 * MiB}) {
      std::vector<std::string> row{std::to_string(sz / KiB) + " KiB"};
      for (const auto& p : profiles()) row.push_back(Table::num(measured_bw(p, sz) / 1e9));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  std::printf("\nMicro — 2-D H2D effective bandwidth [GB/s], 64 MiB total, vs row width\n");
  {
    Table t({"row width", "K40m", "HD7970", "XeonPhi"});
    for (Bytes row : {Bytes{512}, 4 * KiB, 32 * KiB, 256 * KiB, 2 * MiB}) {
      std::vector<std::string> r{std::to_string(row) + " B"};
      for (const auto& p : profiles())
        r.push_back(Table::num(measured_bw_2d(p, 64 * MiB, row) / 1e9));
      t.add_row(std::move(r));
    }
    t.print(std::cout);
  }

  std::printf("\nMicro — per-operation latencies [us]\n");
  {
    Table t({"profile", "copy setup", "kernel launch", "host API call",
             "sched per extra stream"});
    for (const auto& p : profiles()) {
      t.add_row({p.name, Table::num(p.copy_setup_latency * 1e6, 1),
                 Table::num(p.kernel_launch_latency * 1e6, 1),
                 Table::num(p.api_call_host_overhead * 1e6, 1),
                 Table::num(p.sched_overhead_per_stream * 1e6, 1)});
    }
    t.print(std::cout);
  }

  std::printf("\nMicro — kernel roofline crossover (flops per byte where compute == memory)\n");
  {
    Table t({"profile", "peak DP [GF/s]", "mem BW [GB/s]", "ridge [flop/byte]"});
    for (const auto& p : profiles()) {
      t.add_row({p.name, Table::num(p.peak_flops / 1e9, 0),
                 Table::num(p.mem_bandwidth / 1e9, 0),
                 Table::num(p.peak_flops / p.mem_bandwidth)});
    }
    t.print(std::cout);
  }
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
