// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary reproduces one table/figure of the paper. Measurements
// come from the deterministic simulator, so a single run is exact; each
// google-benchmark entry reports the *simulated* region time via manual
// timing (plus memory counters), and after the benchmark pass the binary
// prints the figure's rows the way the paper reports them. Measurements are
// memoised so the benchmark pass and the table printer share one run.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <string>

#include "apps/common.hpp"
#include "common/table.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::bench {

/// Runs `fn` once per unique `key` and caches its Measurement.
inline const apps::Measurement& cached(const std::string& key,
                                       const std::function<apps::Measurement()>& fn) {
  static std::map<std::string, apps::Measurement> cache;
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, fn()).first;
  return it->second;
}

/// Standard reporting for one measured workload inside a benchmark body.
inline void report(benchmark::State& state, const apps::Measurement& m) {
  for (auto _ : state) {
    state.SetIterationTime(m.seconds);
  }
  state.counters["sim_s"] = m.seconds;
  state.counters["mem_MB"] = to_mib(m.reported_device_mem);
  state.counters["h2d_s"] = m.h2d_time;
  state.counters["d2h_s"] = m.d2h_time;
  state.counters["kernel_s"] = m.kernel_time;
}

/// Configures a Modeled-mode GPU for benchmarking: hazard validation is the
/// test suite's job, not the benchmark's.
inline void quiet(gpu::Gpu& g) { g.hazards().set_enabled(false); }

/// Runs one app version on a fresh Modeled-mode device.
template <typename Fn>
apps::Measurement run_on(const gpu::DeviceProfile& profile, Fn&& fn) {
  gpu::Gpu g(profile, gpu::ExecMode::Modeled);
  quiet(g);
  return fn(g);
}

/// Runs registered benchmarks, then prints the paper-figure tables.
inline int bench_main(int argc, char** argv, const std::function<void()>& print_figure) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}

}  // namespace gpupipe::bench
