// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary reproduces one table/figure of the paper. Measurements
// come from the deterministic simulator, so a single run is exact; each
// google-benchmark entry reports the *simulated* region time via manual
// timing (plus memory counters), and after the benchmark pass the binary
// prints the figure's rows the way the paper reports them. Measurements are
// memoised so the benchmark pass and the table printer share one run.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/common.hpp"
#include "common/table.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::bench {

/// True when GPUPIPE_BENCH_QUICK is set (CI smoke runs): benches shrink
/// their sweeps/datasets so one pass completes in seconds.
inline bool quick_mode() {
  const char* e = std::getenv("GPUPIPE_BENCH_QUICK");
  return e != nullptr && std::string(e) != "0";
}

/// Machine-readable benchmark artifact. Collects three flat JSON objects —
/// "config" (the workload/tuning knobs), "metrics" (raw measurements), and
/// "derived" (figures computed from them: speedups, savings, efficiencies)
/// — and writes them as BENCH_<name>.json into $GPUPIPE_BENCH_JSON_DIR (or
/// the working directory), so CI can archive and gate on the numbers the
/// human-readable tables print.
class Artifact {
 public:
  explicit Artifact(std::string name) : name_(std::move(name)) {}

  void config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, quote(v));
  }
  // String literals would otherwise convert to bool, not std::string.
  void config(const std::string& key, const char* v) { config(key, std::string(v)); }
  void config(const std::string& key, double v) { config_.emplace_back(key, num(v)); }
  void config(const std::string& key, bool v) {
    config_.emplace_back(key, v ? "true" : "false");
  }
  void metric(const std::string& key, double v) { metrics_.emplace_back(key, num(v)); }
  void derived(const std::string& key, double v) { derived_.emplace_back(key, num(v)); }

  /// Records a Measurement's fields under <prefix>.<field>.
  void measurement(const std::string& prefix, const apps::Measurement& m) {
    metric(prefix + ".seconds", m.seconds);
    metric(prefix + ".h2d_s", m.h2d_time);
    metric(prefix + ".d2h_s", m.d2h_time);
    metric(prefix + ".kernel_s", m.kernel_time);
    metric(prefix + ".h2d_bytes", static_cast<double>(m.h2d_bytes));
    metric(prefix + ".d2h_bytes", static_cast<double>(m.d2h_bytes));
    metric(prefix + ".overlap_efficiency", m.overlap_efficiency);
    metric(prefix + ".reported_device_mem_bytes",
           static_cast<double>(m.reported_device_mem));
  }

  /// Writes BENCH_<name>.json and reports the path on stderr.
  void write() const {
    const char* dir = std::getenv("GPUPIPE_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
    path += "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    os << "{\n  \"name\": " << quote(name_) << ",\n";
    section(os, "config", config_);
    os << ",\n";
    section(os, "metrics", metrics_);
    os << ",\n";
    section(os, "derived", derived_);
    os << "\n}\n";
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }
  static std::string num(double v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  }
  static void section(std::ostream& os, const char* title, const Fields& fields) {
    os << "  " << quote(title) << ": {";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    " << quote(fields[i].first) << ": "
         << fields[i].second;
    }
    os << "\n  }";
  }

  std::string name_;
  Fields config_;
  Fields metrics_;
  Fields derived_;
};

/// Runs `fn` once per unique `key` and caches its Measurement.
inline const apps::Measurement& cached(const std::string& key,
                                       const std::function<apps::Measurement()>& fn) {
  static std::map<std::string, apps::Measurement> cache;
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, fn()).first;
  return it->second;
}

/// Standard reporting for one measured workload inside a benchmark body.
inline void report(benchmark::State& state, const apps::Measurement& m) {
  for (auto _ : state) {
    state.SetIterationTime(m.seconds);
  }
  state.counters["sim_s"] = m.seconds;
  state.counters["mem_MB"] = to_mib(m.reported_device_mem);
  state.counters["h2d_s"] = m.h2d_time;
  state.counters["d2h_s"] = m.d2h_time;
  state.counters["kernel_s"] = m.kernel_time;
}

/// Configures a Modeled-mode GPU for benchmarking: hazard validation is the
/// test suite's job, not the benchmark's.
inline void quiet(gpu::Gpu& g) { g.hazards().set_enabled(false); }

/// Runs one app version on a fresh Modeled-mode device.
template <typename Fn>
apps::Measurement run_on(const gpu::DeviceProfile& profile, Fn&& fn) {
  gpu::Gpu g(profile, gpu::ExecMode::Modeled);
  quiet(g);
  return fn(g);
}

/// Runs registered benchmarks, then prints the paper-figure tables.
inline int bench_main(int argc, char** argv, const std::function<void()>& print_figure) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure();
  return 0;
}

}  // namespace gpupipe::bench
