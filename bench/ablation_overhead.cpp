// Ablation: which mechanism causes the AMD pipelining collapse of Fig. 8?
//
// DESIGN.md attributes the default-split slowdown to two device-profile
// mechanisms: (a) per-transfer setup cost and (b) the bandwidth saturation
// curve (small segments run far below peak). This bench re-runs the
// default-split 3-D convolution pipeline on the AMD profile with each
// mechanism disabled in turn, quantifying their contributions.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

apps::Measurement run_conv_pipelined(const gpu::DeviceProfile& p) {
  return run_on(p, [&](gpu::Gpu& g) { return apps::conv3d_pipelined(g, conv3d_amd_cfg()); });
}

struct Variant {
  const char* name;
  gpu::DeviceProfile profile;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full AMD model", gpu::amd_hd7970()});

  gpu::DeviceProfile no_setup = gpu::amd_hd7970();
  no_setup.copy_setup_latency = gpu::nvidia_k40m().copy_setup_latency;
  out.push_back({"NVIDIA-like setup cost", no_setup});

  gpu::DeviceProfile no_sat = gpu::amd_hd7970();
  no_sat.pcie_half_saturation = 0;  // flat bandwidth curve
  out.push_back({"flat bandwidth curve", no_sat});

  gpu::DeviceProfile neither = gpu::amd_hd7970();
  neither.copy_setup_latency = gpu::nvidia_k40m().copy_setup_latency;
  neither.pcie_half_saturation = 0;
  out.push_back({"both disabled", neither});
  return out;
}

const apps::Measurement& variant_m(std::size_t i) {
  static const auto vs = variants();
  return cached("abl-ovh-" + std::to_string(i), [&] { return run_conv_pipelined(vs[i].profile); });
}

const apps::Measurement& naive_m() {
  return cached("abl-ovh-naive", [] {
    return run_on(gpu::amd_hd7970(),
                  [&](gpu::Gpu& g) { return apps::conv3d_naive(g, conv3d_amd_cfg()); });
  });
}

void register_all() {
  const auto vs = variants();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    benchmark::RegisterBenchmark((std::string("ablation_overhead/") + vs[i].name).c_str(),
                                 [i](benchmark::State& st) { report(st, variant_m(i)); })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nAblation — default-split 3dconv pipeline on the AMD profile\n");
  Table t({"variant", "Pipelined (s)", "speedup vs Naive"});
  const auto vs = variants();
  const double naive = naive_m().seconds;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const auto& m = variant_m(i);
    t.add_row({vs[i].name, Table::num(m.seconds, 3), Table::num(naive / m.seconds)});
  }
  t.print(std::cout);
  std::printf(
      "Both mechanisms contribute; removing both restores the NVIDIA-style benefit, "
      "confirming the paper's AMD APP Profiler diagnosis (SSV-B).\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
