// Extension bench: multi-device co-scheduling scaling (the paper's
// future-work direction, CoreTSAR-style splitting + per-device pipelining).
//
// One kernel-bound streamed workload is fanned across 1..4 identical K40m
// devices and across a heterogeneous K40m+HD7970 pair; the table reports
// scaling efficiency and the straggler-balance quality of the
// flops-proportional split.
#include <memory>

#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"
#include "core/multi.hpp"

namespace gpupipe::bench {
namespace {

constexpr std::int64_t kRows = 1024;
constexpr std::int64_t kRowElems = 65536;  // 512 KiB rows, 512 MiB total

double run_devices(const std::vector<gpu::DeviceProfile>& profiles) {
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<core::DeviceShare> shares;
  for (const auto& p : profiles) {
    gpus.push_back(std::make_unique<gpu::Gpu>(p, gpu::ExecMode::Modeled, ctx));
    quiet(*gpus.back());
    shares.push_back({gpus.back().get(), 0.0});
  }
  std::byte* in = gpus[0]->host_alloc(static_cast<Bytes>(kRows * kRowElems) * 8);
  std::byte* out = gpus[0]->host_alloc(static_cast<Bytes>(kRows * kRowElems) * 8);
  core::PipelineSpec spec;
  spec.chunk_size = 8;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = kRows;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, 8, {kRows, kRowElems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, 8, {kRows, kRowElems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::MultiPipeline mp(shares, spec);
  const SimTime t0 = gpus[0]->host_now();
  mp.run([](const core::ChunkContext& c) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(c.iterations() * kRowElems) * 2.0;
    k.bytes = static_cast<Bytes>(c.iterations() * kRowElems) * 8 * 48;  // kernel-bound
    return k;
  });
  return gpus[0]->host_now() - t0;
}

struct Config {
  const char* name;
  std::vector<gpu::DeviceProfile> profiles;
};

std::vector<Config> configs() {
  return {
      {"1x K40m", {gpu::nvidia_k40m()}},
      {"2x K40m", {gpu::nvidia_k40m(), gpu::nvidia_k40m()}},
      {"4x K40m",
       {gpu::nvidia_k40m(), gpu::nvidia_k40m(), gpu::nvidia_k40m(), gpu::nvidia_k40m()}},
      {"K40m + HD7970", {gpu::nvidia_k40m(), gpu::amd_hd7970()}},
  };
}

double cached_time(std::size_t i) {
  static std::map<std::size_t, double> cache;
  auto it = cache.find(i);
  if (it == cache.end()) it = cache.emplace(i, run_devices(configs()[i].profiles)).first;
  return it->second;
}

void register_all() {
  const auto cfgs = configs();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    benchmark::RegisterBenchmark((std::string("ext_multi_gpu/") + cfgs[i].name).c_str(),
                                 [i](benchmark::State& st) {
                                   const double t = cached_time(i);
                                   for (auto _ : st) st.SetIterationTime(t);
                                   st.counters["speedup_vs_1"] = cached_time(0) / t;
                                 })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nExtension — multi-device co-scheduling (512 MiB streamed, kernel-bound)\n");
  Table t({"configuration", "time (s)", "speedup", "efficiency"});
  const auto cfgs = configs();
  const double base = cached_time(0);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const double time = cached_time(i);
    const double n = static_cast<double>(cfgs[i].profiles.size());
    t.add_row({cfgs[i].name, Table::num(time, 4), Table::num(base / time) + "x",
               Table::num(100.0 * base / time / n, 0) + "%"});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
