// Reproduces Fig. 9: matrix-multiplication speedup (normalized to the naive
// baseline) across sizes 1024..24576 on the K40m profile. Paper points: the
// block-shared (tiled) kernel reaches ~3x; the pipeline-buffer version
// matches it (the non-contiguous transfers hide under the compute-bound
// kernel); the two rightmost sizes exceed device memory for everything but
// the pipeline-buffer version.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

/// seconds < 0 encodes out-of-memory.
double time_of(std::int64_t n, const std::string& version) {
  const std::string key = "fig9-" + std::to_string(n) + version;
  return cached(key, [&]() -> apps::Measurement {
           try {
             return run_on(kProfile, [&](gpu::Gpu& g) {
               auto cfg = matmul_cfg(n);
               if (version == "baseline") return apps::matmul_baseline(g, cfg);
               if (version == "block_shared") return apps::matmul_block_shared(g, cfg);
               return apps::matmul_pipeline_buffer(g, cfg);
             });
           } catch (const gpu::OomError&) {
             apps::Measurement m;
             m.seconds = -1.0;
             return m;
           }
         })
      .seconds;
}

void register_all() {
  for (std::int64_t n : kMatmulSizes) {
    for (std::string v : {"baseline", "block_shared", "pipeline_buffer"}) {
      const std::string name = "fig9/matmul/" + v + "/n:" + std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), [n, v](benchmark::State& st) {
        const double t = time_of(n, v);
        for (auto _ : st) st.SetIterationTime(t < 0 ? 0.0 : t);
        st.counters["sim_s"] = t;
        st.counters["oom"] = t < 0 ? 1 : 0;
      })->UseManualTime()->Iterations(1);
    }
  }
}

std::string speedup_str(double naive, double t) {
  if (t < 0) return "OOM";
  if (naive < 0) return Table::num(t, 2) + "s (abs)";
  return Table::num(naive / t);
}

void print_figure() {
  std::printf("\nFig. 9 — Matmul normalized speedup on %s\n", kProfile.name.c_str());
  Table t({"size", "baseline", "block_shared", "pipeline_buffer", "paper"});
  for (std::int64_t n : kMatmulSizes) {
    const double nb = time_of(n, "baseline");
    t.add_row({std::to_string(n), speedup_str(nb, nb), speedup_str(nb, time_of(n, "block_shared")),
               speedup_str(nb, time_of(n, "pipeline_buffer")),
               n >= 20480 ? "only pipeline-buffer runs" : "block_shared ~3x; buffer matches"});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
