// Plan-stitching bench: a lineage chain mix, plain vs stitched.
//
// Two scenarios of the same chain mix (N chains of 3 pointwise stages each,
// stream/compute alternating) on a 2-device K40m machine:
//   * stitching off — every stage round-trips its arrays through the host,
//   * stitching on — each stage's input is consumed device-resident from its
//     producer's handoff staging, skipping the producer's D2H tail and the
//     consumer's H2D head for the lineage arrays.
// The BENCH_stitch.json artifact carries total H2D/D2H traffic for both runs
// plus the derived stitched_vs_unstitched_h2d ratio (CI floor: <= 0.8, i.e.
// stitching must cut end-to-end H2D bytes by at least 20%), a checksum_match
// flag (CI floor: == 1 — chain-tail outputs must be bit-identical to the
// unstitched run), and the stitched job count (CI floor: > 0).
#include <memory>

#include "bench/bench_util.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe::bench {
namespace {

int num_chains() { return quick_mode() ? 2 : 4; }
constexpr int kStages = 3;

struct Result {
  sched::ScheduleReport report;
  Bytes h2d_bytes = 0;
  Bytes d2h_bytes = 0;
  double checksum = 0.0;  ///< order-weighted digest of every chain tail
};

Result run_once(bool stitched) {
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < 2; ++i) {
    gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(),
                                              gpu::ExecMode::Functional, ctx));
    quiet(*gpus.back());
    devices.push_back(gpus.back().get());
  }
  sched::SchedulerOptions opts;
  opts.stitching = stitched;
  sched::Scheduler scheduler(devices, opts);
  std::vector<sched::ServeJob> jobs =
      sched::make_chain_jobs(num_chains(), kStages, "medium", 0);
  for (const auto& j : jobs) scheduler.submit(j.job);
  Result r;
  r.report = scheduler.run();
  for (const auto& j : jobs)
    if (!j.verify()) throw Error("bench_stitch: job failed verification");
  r.h2d_bytes = scheduler.total_h2d_bytes();
  r.d2h_bytes = scheduler.total_d2h_bytes();
  for (std::size_t i = 0; i < jobs.size(); ++i)
    r.checksum += jobs[i].output_checksum() * static_cast<double>(i + 1);
  return r;
}

const Result& cached(int idx) {
  static std::map<int, Result> cache;
  auto it = cache.find(idx);
  if (it == cache.end()) {
    // 0: stitching off, 1: stitching on.
    it = cache.emplace(idx, run_once(idx == 1)).first;
  }
  return it->second;
}

const char* kNames[] = {"2 devices unstitched", "2 devices stitched"};
const char* kSlugs[] = {"unstitched", "stitched"};

void register_all() {
  for (int i = 0; i < 2; ++i) {
    benchmark::RegisterBenchmark(
        (std::string("stitch/") + kSlugs[i]).c_str(),
        [i](benchmark::State& st) {
          const Result& r = cached(i);
          for (auto _ : st) st.SetIterationTime(r.report.makespan);
          st.counters["completed"] = r.report.completed;
        })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nPlan stitching — %d chains x %d stages, medium, K40m\n", num_chains(),
              kStages);
  Table t({"configuration", "makespan (ms)", "stitched jobs", "stitched (KiB)",
           "h2d (KiB)", "d2h (KiB)", "completed"});
  Artifact art("stitch");
  art.config("chains", static_cast<double>(num_chains()));
  art.config("stages", static_cast<double>(kStages));
  art.config("profile", "k40m");
  for (int i = 0; i < 2; ++i) {
    const Result& r = cached(i);
    t.add_row({kNames[i], Table::num(r.report.makespan * 1e3, 3),
               Table::num(static_cast<double>(r.report.stitched_jobs), 0),
               Table::num(static_cast<double>(r.report.stitched_bytes) / 1024.0, 1),
               Table::num(static_cast<double>(r.h2d_bytes) / 1024.0, 1),
               Table::num(static_cast<double>(r.d2h_bytes) / 1024.0, 1),
               Table::num(r.report.completed, 0)});
    const std::string p = std::string(kSlugs[i]) + ".";
    art.metric(p + "makespan_s", r.report.makespan);
    art.metric(p + "completed", r.report.completed);
    art.metric(p + "stitched_jobs", static_cast<double>(r.report.stitched_jobs));
    art.metric(p + "stitched_bytes", static_cast<double>(r.report.stitched_bytes));
    art.metric(p + "h2d_bytes", static_cast<double>(r.h2d_bytes));
    art.metric(p + "d2h_bytes", static_cast<double>(r.d2h_bytes));
  }
  // CI floors: stitching must save >= 20% of end-to-end H2D traffic, the
  // chain-tail outputs must match the unstitched run bit for bit, and the
  // stitched job count must be genuinely nonzero.
  art.derived("stitched_vs_unstitched_h2d",
              static_cast<double>(cached(1).h2d_bytes) /
                  static_cast<double>(cached(0).h2d_bytes));
  art.derived("stitched_vs_unstitched_d2h",
              static_cast<double>(cached(1).d2h_bytes) /
                  static_cast<double>(cached(0).d2h_bytes));
  art.derived("checksum_match", cached(1).checksum == cached(0).checksum ? 1.0 : 0.0);
  art.derived("stitched_jobs", static_cast<double>(cached(1).report.stitched_jobs));
  t.print(std::cout);
  art.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
