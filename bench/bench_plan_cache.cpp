// Plan-cache bench: what the planning cache buys the serve hot path.
//
// Four scenarios, all on the built-in serve job mix (sched/workloads):
//   * cold vs warm planning — wall-clock of estimate_pipeline_runtime per
//     job with the cache bypassed (capacity 0) versus primed, the cost every
//     admission attempt pays,
//   * cache hit rate on the default gpupipe_serve mix — one cold scheduler
//     run (compulsory misses) and one steady-state rerun of the identical
//     mix (the CI floor gates the steady rate at >= 0.9),
//   * cold fleet warmup with the persistent disk tier — a fresh replica's
//     first planning pass with an empty memory tier, against a disk
//     directory seeded by a peer versus no directory at all (the CI floor
//     gates the speedup at >= 2x with zero corrupt reads),
//   * serial vs parallel autotune — the dry-run sweep at tune_jobs 1 versus
//     one worker per hardware thread, with the TuneResult compared field by
//     field (bit-identity is part of the contract, not just a speedup).
// Unlike the figure benches these measure *host* wall-clock: planning is
// real CPU work, not simulated time. BENCH_plan_cache.json and
// BENCH_plan_cache_disk.json carry the numbers for the CI floor checks.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/autotune.hpp"
#include "core/plan_cache.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe::bench {
namespace {

int mix_size() { return quick_mode() ? 9 : 12; }
int plan_reps() { return quick_mode() ? 30 : 120; }
int tune_reps() { return quick_mode() ? 3 : 5; }

double wall(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- Scenario 1: cold vs warm planning wall-clock ---

struct PlanTiming {
  double cold_s = 0.0;  ///< cache bypassed (capacity 0)
  double warm_s = 0.0;  ///< cache primed, every call a hit
  int calls = 0;
};

PlanTiming measure_planning() {
  const auto mix = sched::default_job_mix(mix_size());
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i)
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  quiet(g);

  auto pass = [&] {
    for (const auto& sj : jobs) {
      core::DryRunCost cost;
      cost.flops_per_iter = sj.job.flops_per_iter;
      cost.bytes_per_iter = sj.job.bytes_per_iter;
      benchmark::DoNotOptimize(core::estimate_pipeline_runtime(g, sj.job.spec, cost));
    }
  };

  core::PlanCache& cache = core::PlanCache::instance();
  PlanTiming t;
  t.calls = plan_reps() * static_cast<int>(jobs.size());
  cache.set_capacity(0);  // bypass: every call rebuilds + re-optimizes + re-simulates
  t.cold_s = wall([&] {
    for (int r = 0; r < plan_reps(); ++r) pass();
  });
  cache.set_capacity(core::PlanCache::kDefaultCapacity);
  cache.clear();
  pass();  // prime
  t.warm_s = wall([&] {
    for (int r = 0; r < plan_reps(); ++r) pass();
  });
  return t;
}

// --- Scenario 2: hit rate on the default serve mix ---

struct ServeStats {
  core::PlanCacheStats cold;    ///< first run: compulsory misses included
  core::PlanCacheStats steady;  ///< identical rerun against the warm cache
  int completed = 0;
};

void run_serve_mix() {
  const auto mix = sched::default_job_mix(mix_size());
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < 2; ++i) {
    gpus.push_back(
        std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx));
    quiet(*gpus.back());
    devices.push_back(gpus.back().get());
  }
  sched::Scheduler scheduler(devices, {});
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    scheduler.submit(jobs.back().job);
  }
  scheduler.run();
}

ServeStats measure_serve() {
  core::PlanCache& cache = core::PlanCache::instance();
  cache.set_capacity(core::PlanCache::kDefaultCapacity);
  cache.clear();
  cache.reset_stats();
  run_serve_mix();
  ServeStats s;
  s.cold = cache.stats();
  cache.reset_stats();  // keep the entries: steady state = warm replay
  run_serve_mix();
  s.steady = cache.stats();
  return s;
}

// --- Scenario 3: cold fleet warmup, with and without the disk tier ---

struct DiskTiming {
  double cold_s = 0.0;    ///< fresh replica, no persistent cache: full replan
  double warm_s = 0.0;    ///< fresh replica, disk tier seeded by a peer
  std::size_t files = 0;  ///< artifacts persisted by the seeding pass
  std::uint64_t hits = 0;
  std::uint64_t corrupt = 0;
  int calls = 0;
};

// Every rep models one replica of a serve fleet starting cold: the memory
// tier is empty and each job template must be footprinted, planned, and
// estimated. Without GPUPIPE_PLAN_CACHE_DIR that work repeats per replica;
// with it, the first replica's disk writes turn every later replica's
// warmup into deserialization. Same process here, but clear() empties the
// memory tier exactly as a fresh exec would.
DiskTiming measure_disk() {
  namespace fs = std::filesystem;
  const auto mix = sched::default_job_mix(mix_size());
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i)
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  quiet(g);

  auto pass = [&] {
    for (const auto& sj : jobs) {
      core::DryRunCost cost;
      cost.flops_per_iter = sj.job.flops_per_iter;
      cost.bytes_per_iter = sj.job.bytes_per_iter;
      benchmark::DoNotOptimize(core::estimate_pipeline_runtime(g, sj.job.spec, cost));
    }
  };

  const fs::path dir = fs::temp_directory_path() / "gpupipe_bench_plan_cache_disk";
  fs::remove_all(dir);
  core::PlanCache& cache = core::PlanCache::instance();
  cache.set_capacity(core::PlanCache::kDefaultCapacity);
  cache.set_disk_dir("");

  const int reps = quick_mode() ? 5 : 20;
  DiskTiming t;
  t.calls = static_cast<int>(jobs.size());
  t.cold_s = std::numeric_limits<double>::infinity();
  t.warm_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    cache.clear();
    t.cold_s = std::min(t.cold_s, wall(pass));
  }

  cache.set_disk_dir(dir.string());
  cache.clear();
  pass();  // the first replica seeds the directory
  t.files = static_cast<std::size_t>(
      std::distance(fs::directory_iterator(dir), fs::directory_iterator{}));
  cache.reset_stats();
  for (int r = 0; r < reps; ++r) {
    cache.clear();
    t.warm_s = std::min(t.warm_s, wall(pass));
  }
  t.hits = cache.stats().disk_hits;
  t.corrupt = cache.stats().disk_corrupt;

  cache.set_disk_dir("");
  cache.clear();
  cache.reset_stats();
  fs::remove_all(dir);
  return t;
}

// --- Scenario 4: serial vs parallel dry-run autotune ---

struct TuneTiming {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool identical = false;
  std::size_t explored = 0;
};

bool same_result(const core::TuneResult& a, const core::TuneResult& b) {
  if (a.chunk_size != b.chunk_size || a.num_streams != b.num_streams ||
      a.best_time != b.best_time || a.explored.size() != b.explored.size())
    return false;
  for (std::size_t i = 0; i < a.explored.size(); ++i) {
    const auto& x = a.explored[i];
    const auto& y = b.explored[i];
    if (x.chunk_size != y.chunk_size || x.num_streams != y.num_streams ||
        x.measured != y.measured || x.feasible != y.feasible)
      return false;
  }
  return true;
}

TuneTiming measure_tune() {
  // The large stencil template: the deepest pipelines in the mix, so the
  // chunk-1 candidates give the sweep real simulation work to parallelize.
  const sched::ServeJob sj =
      sched::make_serve_job({.app = "stencil", .size = "large"}, 0);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  quiet(g);
  core::TuneOptions topt;
  topt.dry_run = true;
  topt.kernel_cost =
      core::KernelCostHint{sj.job.flops_per_iter, sj.job.bytes_per_iter};

  core::PlanCache& cache = core::PlanCache::instance();
  TuneTiming t;
  core::TuneResult serial, parallel;
  t.serial_s = std::numeric_limits<double>::infinity();
  t.parallel_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < tune_reps(); ++r) {
    // Clear between runs so serial and parallel sweeps pay identical
    // (all-miss) cache work — the comparison isolates the worker pool.
    topt.tune_jobs = 1;
    cache.clear();
    t.serial_s = std::min(t.serial_s, wall([&] {
      serial = core::autotune(g, sj.job.spec, sj.job.kernel, topt);
    }));
    topt.tune_jobs = 0;  // one worker per hardware thread
    cache.clear();
    t.parallel_s = std::min(t.parallel_s, wall([&] {
      parallel = core::autotune(g, sj.job.spec, sj.job.kernel, topt);
    }));
  }
  t.identical = same_result(serial, parallel);
  t.explored = serial.explored.size();
  return t;
}

// --- Memoised measurements + reporting ---

const PlanTiming& planning() {
  static const PlanTiming t = measure_planning();
  return t;
}
const ServeStats& serve() {
  static const ServeStats s = measure_serve();
  return s;
}
const DiskTiming& disk() {
  static const DiskTiming t = measure_disk();
  return t;
}
const TuneTiming& tune() {
  static const TuneTiming t = measure_tune();
  return t;
}

void register_all() {
  benchmark::RegisterBenchmark("plan_cache/planning_cold", [](benchmark::State& st) {
    const PlanTiming& t = planning();
    for (auto _ : st) st.SetIterationTime(t.cold_s / t.calls);
    st.counters["calls"] = static_cast<double>(t.calls);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("plan_cache/planning_warm", [](benchmark::State& st) {
    const PlanTiming& t = planning();
    for (auto _ : st) st.SetIterationTime(t.warm_s / t.calls);
    st.counters["speedup"] = t.warm_s > 0.0 ? t.cold_s / t.warm_s : 0.0;
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("plan_cache/disk_cold", [](benchmark::State& st) {
    const DiskTiming& t = disk();
    for (auto _ : st) st.SetIterationTime(t.cold_s / t.calls);
    st.counters["calls"] = static_cast<double>(t.calls);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("plan_cache/disk_warm", [](benchmark::State& st) {
    const DiskTiming& t = disk();
    for (auto _ : st) st.SetIterationTime(t.warm_s / t.calls);
    st.counters["speedup"] = t.warm_s > 0.0 ? t.cold_s / t.warm_s : 0.0;
    st.counters["disk_hits"] = static_cast<double>(t.hits);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("plan_cache/tune_serial", [](benchmark::State& st) {
    for (auto _ : st) st.SetIterationTime(tune().serial_s);
  })->UseManualTime()->Iterations(1);
  benchmark::RegisterBenchmark("plan_cache/tune_parallel", [](benchmark::State& st) {
    const TuneTiming& t = tune();
    for (auto _ : st) st.SetIterationTime(t.parallel_s);
    st.counters["speedup"] = t.parallel_s > 0.0 ? t.serial_s / t.parallel_s : 0.0;
    st.counters["identical"] = t.identical ? 1.0 : 0.0;
  })->UseManualTime()->Iterations(1);
}

void print_figure() {
  const PlanTiming& pt = planning();
  const ServeStats& sv = serve();
  const DiskTiming& dk = disk();
  const TuneTiming& tn = tune();
  const double per_cold = pt.cold_s / pt.calls;
  const double per_warm = pt.warm_s / pt.calls;
  const double disk_speedup = dk.warm_s > 0.0 ? dk.cold_s / dk.warm_s : 0.0;

  std::printf("\nPlan cache — %d-job serve mix, 2x K40m\n", mix_size());
  Table t({"scenario", "value"});
  t.add_row({"cold planning (us/call)", Table::num(per_cold * 1e6, 2)});
  t.add_row({"warm planning (us/call)", Table::num(per_warm * 1e6, 2)});
  t.add_row({"warm speedup", Table::num(per_warm > 0.0 ? per_cold / per_warm : 0.0, 1) + "x"});
  t.add_row({"cold-start hit rate", Table::num(sv.cold.hit_rate() * 100.0, 1) + "%"});
  t.add_row({"steady-state hit rate", Table::num(sv.steady.hit_rate() * 100.0, 1) + "%"});
  t.add_row({"replica warmup, no disk (ms)", Table::num(dk.cold_s * 1e3, 3)});
  t.add_row({"replica warmup, warm disk (ms)", Table::num(dk.warm_s * 1e3, 3)});
  t.add_row({"disk warmup speedup", Table::num(disk_speedup, 1) + "x"});
  t.add_row({"tune serial (ms)", Table::num(tn.serial_s * 1e3, 3)});
  t.add_row({"tune parallel (ms)", Table::num(tn.parallel_s * 1e3, 3)});
  const double tune_speedup = tn.parallel_s > 0.0 ? tn.serial_s / tn.parallel_s : 0.0;
  t.add_row({"tune speedup", Table::num(tune_speedup, 2) + "x"});
  t.add_row({"tune results identical", tn.identical ? "yes" : "NO"});
  t.print(std::cout);

  Artifact art("plan_cache");
  art.config("jobs", static_cast<double>(mix_size()));
  art.config("devices", 2.0);
  art.config("profile", "k40m");
  art.config("plan_reps", static_cast<double>(plan_reps()));
  // The parallel-tune floor only means something with >1 hardware thread:
  // tune_jobs=0 resolves to a single worker on a 1-CPU box and the sweep
  // degenerates to the serial path (speedup ~1.0 by construction).
  art.config("hw_threads", static_cast<double>(std::thread::hardware_concurrency()));
  art.metric("planning.cold_s_per_call", per_cold);
  art.metric("planning.warm_s_per_call", per_warm);
  art.metric("serve.cold_hits", static_cast<double>(sv.cold.hits));
  art.metric("serve.cold_misses", static_cast<double>(sv.cold.misses));
  art.metric("serve.steady_hits", static_cast<double>(sv.steady.hits));
  art.metric("serve.steady_misses", static_cast<double>(sv.steady.misses));
  art.metric("tune.serial_s", tn.serial_s);
  art.metric("tune.parallel_s", tn.parallel_s);
  art.metric("tune.explored", static_cast<double>(tn.explored));
  art.derived("warm_speedup", per_warm > 0.0 ? per_cold / per_warm : 0.0);
  art.derived("cold_hit_rate", sv.cold.hit_rate());
  art.derived("steady_hit_rate", sv.steady.hit_rate());
  art.derived("tune_speedup", tn.parallel_s > 0.0 ? tn.serial_s / tn.parallel_s : 0.0);
  art.derived("tune_identical", tn.identical ? 1.0 : 0.0);
  art.write();

  // The disk tier gets its own artifact: the CI floor gates the cold-fleet
  // warmup speedup and requires zero corrupt reads on a healthy directory.
  Artifact disk_art("plan_cache_disk");
  disk_art.config("jobs", static_cast<double>(mix_size()));
  disk_art.config("profile", "k40m");
  disk_art.metric("warmup.cold_s", dk.cold_s);
  disk_art.metric("warmup.warm_disk_s", dk.warm_s);
  disk_art.metric("disk.files", static_cast<double>(dk.files));
  disk_art.metric("disk.hits", static_cast<double>(dk.hits));
  disk_art.metric("disk.corrupt", static_cast<double>(dk.corrupt));
  disk_art.derived("disk_speedup", disk_speedup);
  disk_art.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
