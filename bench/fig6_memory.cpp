// Reproduces Fig. 6: observed GPU memory usage (MB) of Naive / Pipelined /
// Pipelined-buffer across the five workloads on the K40m profile. Paper
// points: 3dconv drops from ~3.5 GB to ~93 MB (-97%); stencil saves ~50%
// (the runtime context dominates the small dataset); QCD savings grow with
// lattice size (up to ~79% at n=36).
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

const apps::Measurement& workload_m(const std::string& app, const std::string& version) {
  return cached("fig6-" + app + "-" + version, [&] {
    return run_on(kProfile, [&](gpu::Gpu& g) -> apps::Measurement {
      if (app == "3dconv") {
        auto cfg = conv3d_cfg();
        if (version == "naive") return apps::conv3d_naive(g, cfg);
        if (version == "pipelined") return apps::conv3d_pipelined(g, cfg);
        return apps::conv3d_pipelined_buffer(g, cfg);
      }
      if (app == "stencil") {
        auto cfg = stencil_cfg();
        if (version == "naive") return apps::stencil_naive(g, cfg);
        if (version == "pipelined") {
          cfg.num_streams = kStencilHandCodedStreams;
          cfg.chunk_size = kStencilHandCodedChunk;
          return apps::stencil_pipelined(g, cfg);
        }
        return apps::stencil_pipelined_buffer(g, cfg);
      }
      auto cfg = qcd_cfg(app.back() == 'l' ? 's' : app.back() == 'm' ? 'm' : 'l');
      if (version == "naive") return apps::qcd_naive(g, cfg);
      if (version == "pipelined") return apps::qcd_pipelined(g, cfg);
      return apps::qcd_pipelined_buffer(g, cfg);
    });
  });
}

const char* kApps[] = {"3dconv", "stencil", "qcd-small", "qcd-medium", "qcd-large"};

void register_all() {
  for (const char* app : kApps) {
    for (std::string v : {"naive", "pipelined", "buffer"}) {
      benchmark::RegisterBenchmark((std::string("fig6/") + app + "/" + v).c_str(),
                                   [app, v](benchmark::State& s) {
                                     report(s, workload_m(app, v));
                                   })
          ->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nFig. 6 — GPU memory usage [MB] on %s\n", kProfile.name.c_str());
  Table t({"benchmark", "Naive", "Pipelined", "Pipelined-buffer", "saving vs Pipelined",
           "paper"});
  const char* paper[] = {"-97% (3.5 GB -> 93 MB)", "~-50%", "savings grow",
                         "with lattice size", "up to -79%"};
  int i = 0;
  for (const char* app : kApps) {
    const auto& n = workload_m(app, "naive");
    const auto& p = workload_m(app, "pipelined");
    const auto& b = workload_m(app, "buffer");
    const double saving =
        100.0 * (1.0 - static_cast<double>(b.reported_device_mem) /
                           static_cast<double>(p.reported_device_mem));
    t.add_row({app, Table::num(to_mib(n.reported_device_mem), 0),
               Table::num(to_mib(p.reported_device_mem), 0),
               Table::num(to_mib(b.reported_device_mem), 0), Table::num(saving, 1) + "%",
               paper[i++]});
  }
  t.print(std::cout);

  Artifact a("fig6_memory");
  a.config("profile", kProfile.name);
  for (const char* app : kApps) {
    const std::string name = app;
    for (const char* v : {"naive", "pipelined", "buffer"})
      a.metric(name + "." + v + ".reported_device_mem_bytes",
               static_cast<double>(workload_m(app, v).reported_device_mem));
    a.derived(name + ".mem_saving_pct",
              100.0 * (1.0 - static_cast<double>(
                                 workload_m(app, "buffer").reported_device_mem) /
                                 static_cast<double>(
                                     workload_m(app, "pipelined").reported_device_mem)));
  }
  a.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
