// Reproduces Fig. 3: (left) the time distribution of the naive Lattice QCD
// offload — the paper finds data transfers consume nearly 50% of execution
// time — and (right) the Naive-vs-Pipelined normalized speedup for the
// small/medium/large datasets, which grows with size toward the theoretical
// 2x overlap bound (§V-A).
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();

const apps::Measurement& qcd_m(char size, const std::string& version) {
  return cached(std::string("fig3-") + size + version, [&] {
    auto cfg = qcd_cfg(size);
    return run_on(kProfile, [&](gpu::Gpu& g) {
      return version == "naive" ? apps::qcd_naive(g, cfg) : apps::qcd_pipelined(g, cfg);
    });
  });
}

void register_all() {
  for (std::string v : {"naive", "pipelined"}) {
    for (char sz : {'s', 'm', 'l'}) {
      benchmark::RegisterBenchmark((std::string("fig3/") + qcd_name(sz) + "/" + v).c_str(),
                                   [sz, v](benchmark::State& s) { report(s, qcd_m(sz, v)); })
          ->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nFig. 3 (left) — Lattice QCD naive-offload time distribution on %s\n",
              kProfile.name.c_str());
  Table dist({"dataset", "HtoD", "Kernel", "DtoH", "transfer share", "paper"});
  for (char sz : {'s', 'm', 'l'}) {
    const auto& m = qcd_m(sz, "naive");
    const double total = m.h2d_time + m.d2h_time + m.kernel_time;
    dist.add_row({qcd_name(sz), Table::num(m.h2d_time / total * 100, 1) + "%",
                  Table::num(m.kernel_time / total * 100, 1) + "%",
                  Table::num(m.d2h_time / total * 100, 1) + "%",
                  Table::num((m.h2d_time + m.d2h_time) / total * 100, 1) + "%",
                  "~50% transfers"});
  }
  dist.print(std::cout);

  std::printf("\nFig. 3 (right) — Normalized speedup, Pipelined vs Naive\n");
  Table sp({"dataset", "Naive (s)", "Pipelined (s)", "speedup", "paper"});
  const char* paper[] = {"~1.6", "grows with size", "approaches 2x bound"};
  int i = 0;
  for (char sz : {'s', 'm', 'l'}) {
    const auto& n = qcd_m(sz, "naive");
    const auto& p = qcd_m(sz, "pipelined");
    sp.add_row({qcd_name(sz), Table::num(n.seconds, 3), Table::num(p.seconds, 3),
                Table::num(n.seconds / p.seconds), paper[i++]});
  }
  sp.print(std::cout);

  Artifact a("fig3_qcd_pipeline");
  a.config("profile", kProfile.name);
  for (char sz : {'s', 'm', 'l'}) {
    const std::string name = qcd_name(sz);
    a.measurement(name + ".naive", qcd_m(sz, "naive"));
    a.measurement(name + ".pipelined", qcd_m(sz, "pipelined"));
    a.derived(name + ".speedup",
              qcd_m(sz, "naive").seconds / qcd_m(sz, "pipelined").seconds);
    const auto& n = qcd_m(sz, "naive");
    a.derived(name + ".transfer_share",
              (n.h2d_time + n.d2h_time) / (n.h2d_time + n.d2h_time + n.kernel_time));
  }
  a.derived("overlap_efficiency", qcd_m('l', "pipelined").overlap_efficiency);
  a.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
