// Canonical figure datasets: the workload sizes and tuning parameters used
// by the figure-reproduction benches. Sizes are chosen so absolute memory
// footprints land where the paper's figures put them (e.g. the 3-D
// convolution's ~3.5 GB working set of Fig. 6); tuning parameters follow
// the paper's text (e.g. the hand-coded stencil pipeline defaults to 8
// streams, §V-C).
#pragma once

#include "apps/conv3d.hpp"
#include "apps/matmul.hpp"
#include "apps/qcd.hpp"
#include "apps/stencil.hpp"

namespace gpupipe::bench {

/// Lattice QCD: n = 12 (small) / 24 (medium) / 36 (large), as in §V-D.
inline apps::QcdConfig qcd_cfg(char size) {
  apps::QcdConfig cfg;
  cfg.n = size == 's' ? 12 : size == 'm' ? 24 : 36;
  cfg.passes = 2;
  cfg.chunk_size = 1;
  cfg.num_streams = 2;
  return cfg;
}

inline const char* qcd_name(char size) {
  return size == 's' ? "qcd-small" : size == 'm' ? "qcd-medium" : "qcd-large";
}

/// Parboil-style stencil, K40m dataset (Figs. 5-7): a 256x256x64 grid,
/// 50 timesteps. The hand-coded Pipelined version uses the OpenACC default
/// of one queue per subtask (8 streams); the runtime uses 2.
inline apps::StencilConfig stencil_cfg() {
  apps::StencilConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.nz = 64;
  cfg.sweeps = 50;
  cfg.chunk_size = 4;  // what the runtime's tuning settles on
  cfg.num_streams = 2;
  return cfg;
}
/// Hand-coded stencil pipeline parameters: the OpenACC default of one queue
/// per subtask (8 streams), two planes per chunk.
inline constexpr int kStencilHandCodedStreams = 8;
inline constexpr std::int64_t kStencilHandCodedChunk = 2;

/// Polybench-style 3-D convolution, K40m dataset (Figs. 5-6): 608^3 doubles
/// => two ~1.7 GB volumes, the ~3.5 GB working set of Fig. 6.
inline apps::Conv3dConfig conv3d_cfg() {
  apps::Conv3dConfig cfg;
  cfg.ni = 608;
  cfg.nj = 608;
  cfg.nk = 608;
  cfg.passes = 1;
  cfg.chunk_size = 1;  // the paper's default: one outer-loop plane per chunk
  cfg.num_streams = 2;
  return cfg;
}

/// AMD HD 7970 datasets (Fig. 8): sized to fit the 3 GB card.
inline apps::Conv3dConfig conv3d_amd_cfg() {
  apps::Conv3dConfig cfg;
  cfg.ni = 256;
  cfg.nj = 256;
  cfg.nk = 256;
  cfg.passes = 1;
  cfg.chunk_size = 1;  // the "default" split: one outer-loop plane per chunk
  cfg.num_streams = 2;
  return cfg;
}

inline apps::StencilConfig stencil_amd_cfg() {
  apps::StencilConfig cfg;
  cfg.nx = 320;
  cfg.ny = 320;
  cfg.nz = 128;
  cfg.sweeps = 10;
  cfg.chunk_size = 1;
  cfg.num_streams = 2;
  return cfg;
}

/// Matrix multiplication sizes of Figs. 9-10.
inline const std::int64_t kMatmulSizes[] = {1024, 2048,  4096,  8192, 10240,
                                            12288, 14336, 20480, 24576};

inline apps::MatmulConfig matmul_cfg(std::int64_t n) {
  apps::MatmulConfig cfg;
  cfg.n = n;
  cfg.chunk_cols = std::min<std::int64_t>(512, n);
  cfg.num_streams = 2;
  return cfg;
}

}  // namespace gpupipe::bench
