// Ablation: why the paper's runtime bypasses acc_map_data (§IV).
//
// The paper lists three reasons for issuing raw CUDA copies instead of
// OpenACC's acc_map_data + update: (1) a host range can only map to ONE
// device location (the ring buffer needs many), (2) multiple mappings
// error out, and (3) "using the acc_map_data() API with the asynchronous
// update directive is slower than directly using the CUDA memory-copy
// APIs". This bench measures (3): the same chunked streaming loop run with
// mapped updates vs raw copies, across chunk counts — the gap grows with
// the number of operations.
#include "acc/acc.hpp"
#include "bench/bench_util.hpp"

namespace gpupipe::bench {
namespace {

constexpr Bytes kTotal = 256 * MiB;

double run_variant(bool mapped, int chunks) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  quiet(g);
  acc::AccRuntime rt(g);
  std::byte* host = g.host_alloc(kTotal);
  std::byte* dev = g.device_malloc(kTotal);
  if (mapped) rt.map_data(host, dev, kTotal);
  rt.queue_stream(0);
  rt.queue_stream(1);

  const Bytes chunk = kTotal / static_cast<Bytes>(chunks);
  const SimTime t0 = g.host_now();
  for (int i = 0; i < chunks; ++i) {
    const int q = i % 2;
    const Bytes off = static_cast<Bytes>(i) * chunk;
    if (mapped) {
      rt.mapped_update_device_async(q, host + off, chunk);
    } else {
      // The paper's technique: raw copies onto the queue's stream.
      g.memcpy_h2d_async(dev + off, host + off, chunk, rt.queue_stream(q));
    }
    gpu::KernelDesc k;
    k.bytes = chunk * 4;
    rt.parallel_loop_async(q, std::move(k));
    if (mapped) {
      rt.mapped_update_self_async(q, host + off, chunk);
    } else {
      g.memcpy_d2h_async(host + off, dev + off, chunk, rt.queue_stream(q));
    }
  }
  rt.wait();
  return g.host_now() - t0;
}

constexpr int kChunkCounts[] = {64, 256, 1024, 4096};

void register_all() {
  for (int n : kChunkCounts) {
    for (bool mapped : {false, true}) {
      const std::string name = std::string("ablation_mapdata/") +
                               (mapped ? "acc_map_data" : "raw_copies") +
                               "/chunks:" + std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(), [mapped, n](benchmark::State& st) {
        const double t = run_variant(mapped, n);
        for (auto _ : st) st.SetIterationTime(t);
      })->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nAblation — acc_map_data updates vs raw copies (256 MiB streamed)\n");
  Table t({"chunks", "raw copies (s)", "mapped updates (s)", "overhead"});
  for (int n : kChunkCounts) {
    const double raw = run_variant(false, n);
    const double mapped = run_variant(true, n);
    t.add_row({std::to_string(n), Table::num(raw, 4), Table::num(mapped, 4),
               Table::num(100.0 * (mapped / raw - 1.0), 1) + "%"});
  }
  t.print(std::cout);
  std::printf("The per-update present-table cost compounds with chunk count — the "
              "paper's reason (3) for mixing raw CUDA copies into OpenACC (SSIV).\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
