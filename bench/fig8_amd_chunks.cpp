// Reproduces Fig. 8 (AMD Radeon HD 7970 profile):
//  (left)  with the default fine-grained split (one outer-loop plane per
//          chunk) the Pipelined versions of 3dconv and stencil are ~55-60%
//          SLOWER than Naive — per-transfer setup overhead plus segments
//          far below the bandwidth saturation size;
//  (right) normalized speedup as the number of chunks varies: ~1.2x with 2
//          chunks, a peak in the mid single digits, degradation past ~10,
//          worse than Naive somewhere in the 20-50 range, and far below 1.0
//          at the default chunk count.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::amd_hd7970();
// "default" = one plane per chunk, i.e. (ni - 2) chunks.
constexpr int kChunkCounts[] = {2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 50, -1};

std::int64_t chunk_size_for(std::int64_t planes, int nchunks) {
  return nchunks < 0 ? 1 : ceil_div(planes, nchunks);
}

const apps::Measurement& measure_m(const std::string& app, const std::string& version,
                                   int nchunks) {
  return cached("fig8-" + app + version + std::to_string(nchunks), [&] {
    return run_on(kProfile, [&](gpu::Gpu& g) -> apps::Measurement {
      if (app == "3dconv") {
        auto cfg = conv3d_amd_cfg();
        cfg.chunk_size = chunk_size_for(cfg.ni - 2, nchunks);
        if (version == "naive") return apps::conv3d_naive(g, cfg);
        return apps::conv3d_pipelined(g, cfg);
      }
      auto cfg = stencil_amd_cfg();
      cfg.chunk_size = chunk_size_for(cfg.nz - 2, nchunks);
      if (version == "naive") return apps::stencil_naive(g, cfg);
      return apps::stencil_pipelined(g, cfg);
    });
  });
}

std::string chunk_label(int n) { return n < 0 ? "default" : std::to_string(n); }

void register_all() {
  for (const char* app : {"3dconv", "stencil"}) {
    for (int n : kChunkCounts) {
      const std::string name = std::string("fig8/") + app + "/chunks:" + chunk_label(n);
      benchmark::RegisterBenchmark(name.c_str(), [app, n](benchmark::State& st) {
        report(st, measure_m(app, "pipelined", n));
      })
          ->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nFig. 8 (left) — default-split Pipelined vs Naive on %s\n",
              kProfile.name.c_str());
  Table left({"benchmark", "Naive (s)", "Pipelined (s)", "normalized speedup", "paper"});
  for (const char* app : {"3dconv", "stencil"}) {
    const double n = measure_m(app, "naive", -1).seconds;
    const double p = measure_m(app, "pipelined", -1).seconds;
    left.add_row({app, Table::num(n, 3), Table::num(p, 3), Table::num(n / p),
                  "Pipelined ~56-57% slower"});
  }
  left.print(std::cout);

  std::printf("\nFig. 8 (right) — Pipelined speedup vs number of chunks\n");
  Table right({"chunks", "3dconv speedup", "stencil speedup"});
  for (int n : kChunkCounts) {
    right.add_row({chunk_label(n),
                   Table::num(measure_m("3dconv", "naive", -1).seconds /
                              measure_m("3dconv", "pipelined", n).seconds),
                   Table::num(measure_m("stencil", "naive", -1).seconds /
                              measure_m("stencil", "pipelined", n).seconds)});
  }
  right.print(std::cout);
  std::printf(
      "paper: ~1.2x at 2 chunks; peak ~9 (3dconv) / ~4 (stencil); below 1.0 between "
      "10 and 50 chunks; worst at the default count\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
