// bench_sim_scale — simulator hot-loop throughput at serve scale.
//
// Sweeps 1k/10k/100k concurrent jobs through the bare discrete-event core
// (engines, tasks, trace — no GPU runtime on top), shaped like the serve
// path: every job is a chain of h2d -> kernel -> (event marker) -> d2h
// chunks contending FIFO on shared copy/compute engines, with arrivals
// packed tightly enough that the engine ready-queues hold most of the fleet
// at once. Reports events/sec (the headline the ROADMAP's sim-core overhaul
// targets), a trace checksum (bit-identity gate: the same workload must
// produce byte-identical Chrome-trace output run over run and across queue
// rewrites), and process peak RSS.
//
// Emits BENCH_sim_scale.json for CI (events/sec floor + determinism gate).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/checksum.hpp"
#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace {

using namespace gpupipe;
using sim::Engine;
using sim::Simulator;
using sim::SpanKind;
using sim::Task;
using sim::TaskPtr;
using sim::Trace;

struct ScaleResult {
  int jobs = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  SimTime sim_s = 0.0;
  std::size_t spans = 0;
  std::uint64_t trace_checksum = 0;
  long vm_hwm_kb = 0;
  long vm_rss_kb = 0;
};

/// Linux VmHWM / VmRSS in KiB (0 when /proc is unavailable).
long proc_status_kb(const char* key) {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind(key, 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str() + std::string(key).size(), ": %ld", &kb);
      return kb;
    }
  }
  return 0;
}

/// One serve-shaped sweep: `jobs` tenants, each 2..4 chunks of
/// h2d -> kernel -> marker -> d2h with deterministic per-job durations and
/// arrivals packed into a ~jobs*50ns window so the fleet is genuinely
/// concurrent. Returns throughput and the trace checksum.
ScaleResult run_scale(int jobs) {
  ScaleResult r;
  r.jobs = jobs;

  const auto t0 = std::chrono::steady_clock::now();
  Simulator sim;
  Engine h2d(sim, "h2d", 2);
  Engine d2h(sim, "d2h", 2);
  Engine compute(sim, "compute", 16);
  Engine command(sim, "command", 1 << 20);
  Trace trace;

  constexpr int kLanes = 64;  // lanes cycle like serve streams do
  std::vector<StringId> lanes;
  lanes.reserve(kLanes);
  for (int i = 0; i < kLanes; ++i) lanes.push_back(trace.intern("s" + std::to_string(i)));

  std::vector<TaskPtr> tails;
  tails.reserve(static_cast<std::size_t>(jobs));

  // The sweep size is known up front, so pre-size the two unbounded-growth
  // arrays (spans, staged events) the way the serve driver does from its
  // plan — growth reallocations otherwise copy ~2x the final footprint.
  std::size_t total_tasks = 0;
  for (int j = 0; j < jobs; ++j) total_tasks += 4u * static_cast<std::size_t>(2 + j % 3);
  trace.reserve(total_tasks);
  sim.reserve_events(total_tasks);

  // Labels interned once up front (both tables), the way serve's plan-cached
  // hot path does — task creation then never hashes a string.
  sim::TaskArena& arena = h2d.arena();
  struct Label {
    StringId task, span;
  };
  auto label = [&](const char* s) { return Label{arena.intern(s), trace.intern(s)}; };
  const Label l_h2d = label("h2d[4096B]"), l_kernel = label("kernel"),
              l_event = label("event"), l_d2h = label("d2h[4096B]");

  auto traced = [&](Engine& eng, SimTime dur, Label l, SpanKind kind, StringId lane,
                    Bytes bytes) {
    auto t = Task::create(eng, dur, l.task);
    t->set_span(trace, kind, lane, l.span, bytes, -1);
    return t;
  };

  for (int j = 0; j < jobs; ++j) {
    const StringId lane = lanes[static_cast<std::size_t>(j % kLanes)];
    const SimTime release = 5e-8 * static_cast<double>(j);
    const int chunks = 2 + j % 3;
    TaskPtr prev;
    for (int c = 0; c < chunks; ++c) {
      const SimTime dup = 1e-6 * static_cast<double>(4 + (j * 7 + c) % 16);
      const SimTime dk = 1e-6 * static_cast<double>(8 + (j * 13 + c) % 32);
      const SimTime ddn = 1e-6 * static_cast<double>(4 + (j * 5 + c) % 16);
      auto up = traced(h2d, dup, l_h2d, SpanKind::H2D, lane, 4096);
      if (prev) up->depends_on(prev);
      auto k = traced(compute, dk, l_kernel, SpanKind::Kernel, lane, 0);
      k->depends_on(up);
      // Zero-duration marker mirrors the runtime's per-chunk event records
      // (exercises same-timestamp FIFO ordering at scale).
      auto ev = traced(command, 0.0, l_event, SpanKind::Sync, lane, 0);
      ev->depends_on(k);
      auto down = traced(d2h, ddn, l_d2h, SpanKind::D2H, lane, 4096);
      down->depends_on(k);
      up->submit(release);
      k->submit(release);
      ev->submit(release);
      down->submit(release);
      prev = down;
    }
    tails.push_back(std::move(prev));
  }
  r.sim_s = sim.run_all();
  const auto t1 = std::chrono::steady_clock::now();

  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.events_executed();
  r.spans = trace.spans().size();
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string json = os.str();
  r.trace_checksum =
      fnv1a(std::span<const char>(json.data(), json.size()));
  r.vm_hwm_kb = proc_status_kb("VmHWM");
  r.vm_rss_kb = proc_status_kb("VmRSS");
  return r;
}

const ScaleResult& cached_scale(int jobs) {
  static std::map<int, ScaleResult> cache;
  auto it = cache.find(jobs);
  if (it == cache.end()) it = cache.emplace(jobs, run_scale(jobs)).first;
  return it->second;
}

std::vector<int> sweep_points() {
  if (bench::quick_mode()) return {1000, 10000};
  return {1000, 10000, 100000};
}

void bench_point(benchmark::State& state) {
  const ScaleResult& r = cached_scale(static_cast<int>(state.range(0)));
  for (auto _ : state) state.SetIterationTime(r.wall_s);
  state.counters["events"] = static_cast<double>(r.events);
  state.counters["events_per_s"] = static_cast<double>(r.events) / r.wall_s;
  state.counters["rss_hwm_MB"] = static_cast<double>(r.vm_hwm_kb) / 1024.0;
}

void print_figure() {
  Table table({"jobs", "events", "wall (s)", "events/sec", "sim (s)", "spans",
               "trace fnv1a", "VmHWM (MiB)"});
  bench::Artifact art("sim_scale");
  art.config("chunks_per_job", "2..4");
  art.config("engines", "h2d:2 d2h:2 compute:16 command");
  art.config("arrival_spacing_s", 5e-8);

  // Determinism gate: the mid sweep point twice — event counts, executed
  // order (via the completion-ordered trace), and the full Chrome-trace
  // bytes must be identical run over run.
  const ScaleResult a = run_scale(10000);
  const ScaleResult b = run_scale(10000);
  const bool deterministic = a.events == b.events && a.sim_s == b.sim_s &&
                             a.trace_checksum == b.trace_checksum;

  double events_per_s_top = 0.0;
  int top_jobs = 0;
  for (int jobs : sweep_points()) {
    const ScaleResult& r = cached_scale(jobs);
    const double eps = static_cast<double>(r.events) / r.wall_s;
    if (jobs >= top_jobs) {
      top_jobs = jobs;
      events_per_s_top = eps;
    }
    table.add_row({std::to_string(r.jobs), std::to_string(r.events),
                   Table::num(r.wall_s, 3), Table::num(eps, 0), Table::num(r.sim_s, 4),
                   std::to_string(r.spans), std::to_string(r.trace_checksum),
                   Table::num(static_cast<double>(r.vm_hwm_kb) / 1024.0, 1)});
    const std::string p = "jobs_" + std::to_string(jobs) + ".";
    art.metric(p + "events", static_cast<double>(r.events));
    art.metric(p + "wall_s", r.wall_s);
    art.metric(p + "events_per_s", eps);
    art.metric(p + "sim_s", r.sim_s);
    art.metric(p + "spans", static_cast<double>(r.spans));
    art.metric(p + "trace_checksum", static_cast<double>(r.trace_checksum));
    art.metric(p + "rss_hwm_kb", static_cast<double>(r.vm_hwm_kb));
    art.metric(p + "rss_kb", static_cast<double>(r.vm_rss_kb));
  }
  table.print(std::cout);
  std::printf("deterministic: %s (10k point run twice: events %llu/%llu, trace fnv1a "
              "%llx/%llx)\n",
              deterministic ? "yes" : "NO", static_cast<unsigned long long>(a.events),
              static_cast<unsigned long long>(b.events),
              static_cast<unsigned long long>(a.trace_checksum),
              static_cast<unsigned long long>(b.trace_checksum));

  art.derived("top_jobs", static_cast<double>(top_jobs));
  art.derived("top_events_per_s", events_per_s_top);
  art.derived("deterministic", deterministic ? 1.0 : 0.0);
  art.write();
}

}  // namespace

int main(int argc, char** argv) {
  for (int jobs : sweep_points())
    benchmark::RegisterBenchmark(("sim_scale/jobs:" + std::to_string(jobs)).c_str(),
                                 bench_point)
        ->Range(jobs, jobs)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  return gpupipe::bench::bench_main(argc, argv, print_figure);
}
