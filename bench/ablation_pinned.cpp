// Ablation: pinned host memory (§IV — the prototype "uses cudaHostalloc()
// to allocate pinned host memory, which avoids the data movement time from
// virtual to pinned buffer memory").
//
// Re-runs the 3-D convolution pipeline with pinned vs pageable host arrays
// on the K40m profile, and shows host_register() (the cudaHostRegister
// equivalent) recovering the pinned rate for externally allocated memory.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"
#include "core/pipeline.hpp"

namespace gpupipe::bench {
namespace {

struct Outcome {
  double seconds;
  double h2d;
};

/// Streams a volume through a pipelined doubling kernel; host memory is
/// allocated pinned/pageable, optionally registered afterwards.
Outcome run_variant(bool pinned, bool registered) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  quiet(g);
  const std::int64_t rows = 512, row_elems = 262144;  // 2 MiB rows, 1 GiB total
  const Bytes bytes = static_cast<Bytes>(rows * row_elems) * sizeof(double);
  std::byte* in = g.host_alloc(bytes, pinned);
  std::byte* out = g.host_alloc(bytes, pinned);
  if (registered) {
    g.host_register(in, bytes);
    g.host_register(out, bytes);
  }

  core::PipelineSpec spec;
  spec.chunk_size = 4;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = rows;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, sizeof(double), {rows, row_elems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, sizeof(double), {rows, row_elems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline p(g, spec);
  const SimTime t0 = g.host_now();
  p.run([row_elems](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(ctx.iterations() * row_elems);
    k.bytes = static_cast<Bytes>(ctx.iterations() * row_elems) * 16;
    return k;
  });
  const auto by_kind = g.trace().time_by_kind();
  auto h2d = by_kind.find(sim::SpanKind::H2D);
  return {g.host_now() - t0, h2d == by_kind.end() ? 0.0 : h2d->second};
}

const char* kVariants[] = {"pinned", "pageable", "pageable+host_register"};

Outcome variant(int i) {
  switch (i) {
    case 0: return run_variant(true, false);
    case 1: return run_variant(false, false);
    default: return run_variant(false, true);
  }
}

void register_all() {
  for (int i = 0; i < 3; ++i) {
    benchmark::RegisterBenchmark((std::string("ablation_pinned/") + kVariants[i]).c_str(),
                                 [i](benchmark::State& st) {
                                   const Outcome o = variant(i);
                                   for (auto _ : st) st.SetIterationTime(o.seconds);
                                   st.counters["h2d_s"] = o.h2d;
                                 })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nAblation — host memory pinning (1 GiB streamed volume, K40m)\n");
  Table t({"host memory", "region (s)", "H2D busy (s)", "vs pinned"});
  const Outcome base = variant(0);
  for (int i = 0; i < 3; ++i) {
    const Outcome o = variant(i);
    t.add_row({kVariants[i], Table::num(o.seconds, 3), Table::num(o.h2d, 3),
               Table::num(o.seconds / base.seconds) + "x"});
  }
  t.print(std::cout);
  std::printf("Pageable memory pays the staging penalty; host_register() (the "
              "cudaHostRegister equivalent) recovers the pinned rate.\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
