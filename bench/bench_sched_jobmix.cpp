// Scheduler bench: a mixed serving workload across queue policies.
//
// Two scenarios of one built-in job mix on a two-device K40m machine:
//   * uncapped, staggered arrivals — the consolidation headline: makespan
//     versus the sum of solo runtimes,
//   * a tight 6 MiB per-device cap with burst arrivals — admission shrinks
//     and retries dominate, so the queue is deep and the policies (FIFO /
//     priority / SJF) actually reorder jobs.
// The BENCH_sched_jobmix.json artifact carries the per-config numbers for
// the CI floor checks.
//
// Each config also runs an *observed twin*: the same mix with the flight
// recorder and time-series sampler armed. Observation is pure — the twin's
// virtual-time makespan must be bit-identical — so the artifact carries the
// ratio (floor-checked at exactly 1.0) plus the recorded event count.
#include <memory>

#include "bench/bench_util.hpp"
#include "common/flight_recorder.hpp"
#include "core/timeseries.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe::bench {
namespace {

int mix_size() { return quick_mode() ? 8 : 12; }

struct Config {
  const char* name;
  sched::QueuePolicy policy;
  Bytes cap;   // 0 = uncapped
  bool burst;  // all arrivals at t=0
};

const std::vector<Config>& configs() {
  static const std::vector<Config> c = {
      {"fifo uncapped", sched::QueuePolicy::Fifo, 0, false},
      {"fifo 6MiB burst", sched::QueuePolicy::Fifo, 6 * MiB, true},
      {"priority 6MiB burst", sched::QueuePolicy::Priority, 6 * MiB, true},
      {"sjf 6MiB burst", sched::QueuePolicy::Sjf, 6 * MiB, true},
  };
  return c;
}

struct MixResult {
  sched::ScheduleReport report;
  SimTime sum_solo = 0.0;
  SimTime mean_wait = 0.0;
  /// Wait-time distribution; percentiles come from the shared
  /// Histogram::quantile (the same math the serve tool reports).
  telemetry::Histogram wait_hist{
      {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}};
  /// Observed twin: same run with recorder + sampler armed.
  SimTime observed_makespan = 0.0;
  std::uint64_t recorder_events = 0;
};

sched::ScheduleReport run_once(const std::vector<sched::JobMixLine>& mix,
                               sched::SchedulerOptions opts) {
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < 2; ++i) {
    gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(),
                                              gpu::ExecMode::Functional, ctx));
    quiet(*gpus.back());
    devices.push_back(gpus.back().get());
  }
  sched::Scheduler scheduler(devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    scheduler.submit(jobs.back().job);
  }
  return scheduler.run();
}

MixResult run_mix(const Config& cfg) {
  auto mix = sched::default_job_mix(mix_size());
  if (cfg.burst)
    for (auto& l : mix) l.arrival = 0.0;
  sched::SchedulerOptions opts;
  opts.queue_policy = cfg.policy;
  opts.device_mem_cap = cfg.cap;
  MixResult r;
  r.report = run_once(mix, opts);
  for (const auto& jr : r.report.jobs)
    if (jr.state == sched::JobState::Completed) {
      r.mean_wait += jr.wait();
      r.wait_hist.observe(jr.wait());
    }
  if (r.report.completed > 0) r.mean_wait /= static_cast<double>(r.report.completed);

  // Observed twin: recording and sampling must not move a single decision,
  // so the virtual-time makespan has to come out bit-identical.
  telemetry::FlightRecorder recorder(1 << 16);
  telemetry::TimeSeriesStore series;
  opts.recorder = &recorder;
  opts.series = &series;
  opts.sample_every = 0.0005;
  r.observed_makespan = run_once(mix, opts).makespan;
  r.recorder_events = recorder.total_recorded();

  for (std::size_t i = 0; i < mix.size(); ++i) {
    sched::ServeJob solo = sched::make_serve_job(mix[i], static_cast<int>(i));
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
    quiet(g);
    core::Pipeline p(g, solo.job.spec);
    const SimTime t0 = g.host_now();
    p.run(solo.job.kernel);
    r.sum_solo += g.host_now() - t0;
  }
  return r;
}

const MixResult& cached_mix(std::size_t i) {
  static std::map<std::size_t, MixResult> cache;
  auto it = cache.find(i);
  if (it == cache.end()) it = cache.emplace(i, run_mix(configs()[i])).first;
  return it->second;
}

std::string slug(const Config& cfg) {
  std::string s = cfg.name;
  for (char& c : s)
    if (c == ' ') c = '_';
  return s;
}

void register_all() {
  for (std::size_t i = 0; i < configs().size(); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("sched_jobmix/") + slug(configs()[i])).c_str(),
        [i](benchmark::State& st) {
          const MixResult& r = cached_mix(i);
          for (auto _ : st) st.SetIterationTime(r.report.makespan);
          st.counters["speedup_vs_solo"] = r.sum_solo / r.report.makespan;
          st.counters["mean_wait_ms"] = r.mean_wait * 1e3;
        })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nScheduler — %d-job mix, 2x K40m\n", mix_size());
  Table t({"configuration", "makespan (ms)", "sum solo (ms)", "speedup",
           "mean wait (ms)", "shrinks", "retries", "completed"});
  Artifact art("sched_jobmix");
  art.config("jobs", static_cast<double>(mix_size()));
  art.config("devices", 2.0);
  art.config("profile", "k40m");
  for (std::size_t i = 0; i < configs().size(); ++i) {
    const Config& cfg = configs()[i];
    const MixResult& r = cached_mix(i);
    t.add_row({cfg.name, Table::num(r.report.makespan * 1e3, 3),
               Table::num(r.sum_solo * 1e3, 3),
               Table::num(r.sum_solo / r.report.makespan) + "x",
               Table::num(r.mean_wait * 1e3, 3),
               Table::num(static_cast<double>(r.report.admission_shrinks), 0),
               Table::num(static_cast<double>(r.report.admission_retries), 0),
               Table::num(r.report.completed, 0)});
    const std::string p = slug(cfg) + ".";
    art.metric(p + "makespan_s", r.report.makespan);
    art.metric(p + "sum_solo_s", r.sum_solo);
    art.metric(p + "mean_wait_s", r.mean_wait);
    art.metric(p + "wait_p50_s", r.wait_hist.quantile(0.50));
    art.metric(p + "wait_p95_s", r.wait_hist.quantile(0.95));
    art.metric(p + "observed_makespan_s", r.observed_makespan);
    art.metric(p + "recorder_events", static_cast<double>(r.recorder_events));
    art.metric(p + "completed", r.report.completed);
    art.metric(p + "rejected", r.report.rejected);
    art.metric(p + "admission_shrinks", static_cast<double>(r.report.admission_shrinks));
    art.metric(p + "admission_retries", static_cast<double>(r.report.admission_retries));
    art.derived(p + "speedup_vs_solo", r.sum_solo / r.report.makespan);
    // 1.0 exactly when observation changed nothing (floor-checked in CI).
    art.derived(p + "observed_makespan_ratio",
                r.observed_makespan / r.report.makespan);
  }
  t.print(std::cout);
  art.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
