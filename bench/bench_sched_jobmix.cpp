// Scheduler bench: a mixed serving workload across queue policies.
//
// Two scenarios of one built-in job mix on a two-device K40m machine:
//   * uncapped, staggered arrivals — the consolidation headline: makespan
//     versus the sum of solo runtimes,
//   * a tight 6 MiB per-device cap with burst arrivals — admission shrinks
//     and retries dominate, so the queue is deep and the policies (FIFO /
//     priority / SJF) actually reorder jobs.
// The BENCH_sched_jobmix.json artifact carries the per-config numbers for
// the CI floor checks.
#include <memory>

#include "bench/bench_util.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe::bench {
namespace {

int mix_size() { return quick_mode() ? 8 : 12; }

struct Config {
  const char* name;
  sched::QueuePolicy policy;
  Bytes cap;   // 0 = uncapped
  bool burst;  // all arrivals at t=0
};

const std::vector<Config>& configs() {
  static const std::vector<Config> c = {
      {"fifo uncapped", sched::QueuePolicy::Fifo, 0, false},
      {"fifo 6MiB burst", sched::QueuePolicy::Fifo, 6 * MiB, true},
      {"priority 6MiB burst", sched::QueuePolicy::Priority, 6 * MiB, true},
      {"sjf 6MiB burst", sched::QueuePolicy::Sjf, 6 * MiB, true},
  };
  return c;
}

struct MixResult {
  sched::ScheduleReport report;
  SimTime sum_solo = 0.0;
  SimTime mean_wait = 0.0;
};

MixResult run_mix(const Config& cfg) {
  auto mix = sched::default_job_mix(mix_size());
  if (cfg.burst)
    for (auto& l : mix) l.arrival = 0.0;
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < 2; ++i) {
    gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(),
                                              gpu::ExecMode::Functional, ctx));
    quiet(*gpus.back());
    devices.push_back(gpus.back().get());
  }
  sched::SchedulerOptions opts;
  opts.queue_policy = cfg.policy;
  opts.device_mem_cap = cfg.cap;
  sched::Scheduler scheduler(devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    scheduler.submit(jobs.back().job);
  }
  MixResult r;
  r.report = scheduler.run();
  for (const auto& jr : r.report.jobs)
    if (jr.state == sched::JobState::Completed) r.mean_wait += jr.wait();
  if (r.report.completed > 0) r.mean_wait /= static_cast<double>(r.report.completed);

  for (std::size_t i = 0; i < mix.size(); ++i) {
    sched::ServeJob solo = sched::make_serve_job(mix[i], static_cast<int>(i));
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
    quiet(g);
    core::Pipeline p(g, solo.job.spec);
    const SimTime t0 = g.host_now();
    p.run(solo.job.kernel);
    r.sum_solo += g.host_now() - t0;
  }
  return r;
}

const MixResult& cached_mix(std::size_t i) {
  static std::map<std::size_t, MixResult> cache;
  auto it = cache.find(i);
  if (it == cache.end()) it = cache.emplace(i, run_mix(configs()[i])).first;
  return it->second;
}

std::string slug(const Config& cfg) {
  std::string s = cfg.name;
  for (char& c : s)
    if (c == ' ') c = '_';
  return s;
}

void register_all() {
  for (std::size_t i = 0; i < configs().size(); ++i) {
    benchmark::RegisterBenchmark(
        (std::string("sched_jobmix/") + slug(configs()[i])).c_str(),
        [i](benchmark::State& st) {
          const MixResult& r = cached_mix(i);
          for (auto _ : st) st.SetIterationTime(r.report.makespan);
          st.counters["speedup_vs_solo"] = r.sum_solo / r.report.makespan;
          st.counters["mean_wait_ms"] = r.mean_wait * 1e3;
        })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nScheduler — %d-job mix, 2x K40m\n", mix_size());
  Table t({"configuration", "makespan (ms)", "sum solo (ms)", "speedup",
           "mean wait (ms)", "shrinks", "retries", "completed"});
  Artifact art("sched_jobmix");
  art.config("jobs", static_cast<double>(mix_size()));
  art.config("devices", 2.0);
  art.config("profile", "k40m");
  for (std::size_t i = 0; i < configs().size(); ++i) {
    const Config& cfg = configs()[i];
    const MixResult& r = cached_mix(i);
    t.add_row({cfg.name, Table::num(r.report.makespan * 1e3, 3),
               Table::num(r.sum_solo * 1e3, 3),
               Table::num(r.sum_solo / r.report.makespan) + "x",
               Table::num(r.mean_wait * 1e3, 3),
               Table::num(static_cast<double>(r.report.admission_shrinks), 0),
               Table::num(static_cast<double>(r.report.admission_retries), 0),
               Table::num(r.report.completed, 0)});
    const std::string p = slug(cfg) + ".";
    art.metric(p + "makespan_s", r.report.makespan);
    art.metric(p + "sum_solo_s", r.sum_solo);
    art.metric(p + "mean_wait_s", r.mean_wait);
    art.metric(p + "completed", r.report.completed);
    art.metric(p + "rejected", r.report.rejected);
    art.metric(p + "admission_shrinks", static_cast<double>(r.report.admission_shrinks));
    art.metric(p + "admission_retries", static_cast<double>(r.report.admission_retries));
    art.derived(p + "speedup_vs_solo", r.sum_solo / r.report.makespan);
  }
  t.print(std::cout);
  art.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
