// Ablation: the runtime's sliding-window copy elision (§III: "Our framework
// calculates dependencies of the current chunk and removes the data that
// only previous chunks require").
//
// For an overlapping input window such as the stencil's A0[k-1:3], a naive
// per-chunk uploader re-sends every plane of every window (3x traffic at
// chunk size 1); the runtime uploads each plane exactly once. This bench
// measures both the transferred volume and the resulting region time by
// comparing the runtime against a variant of the hand-coded pipeline that
// duplicates halo planes.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"
#include "acc/acc.hpp"
#include "core/pipeline.hpp"

namespace gpupipe::bench {
namespace {

/// Hand-coded stencil pipeline that re-uploads each chunk's full window
/// (the duplicating uploader the runtime's sliding window replaces).
apps::Measurement stencil_duplicating(gpu::Gpu& g, const apps::StencilConfig& cfg) {
  acc::AccRuntime rt(g);
  apps::HostArray<double> h0(g, cfg.elems()), h1(g, cfg.elems());
  return apps::measure(g, [&] {
    const Bytes plane = static_cast<Bytes>(cfg.ny * cfg.nx) * sizeof(double);
    double* da = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    double* db = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    for (int s = 0; s < cfg.sweeps; ++s) {
      int chunk_idx = 0;
      for (std::int64_t lo = 1; lo < cfg.nz - 1; lo += cfg.chunk_size, ++chunk_idx) {
        const std::int64_t hi = std::min(lo + cfg.chunk_size, cfg.nz - 1);
        const int q = chunk_idx % cfg.num_streams;
        // Full window [lo-1, hi+1) every time — no elision.
        rt.update_device_async(q, reinterpret_cast<std::byte*>(da) + (lo - 1) * plane,
                               reinterpret_cast<const std::byte*>(h0.data()) +
                                   (lo - 1) * plane,
                               (hi - lo + 2) * plane);
        gpu::KernelDesc k;
        k.name = "stencil";
        k.flops = cfg.model.flops_per_elem * static_cast<double>((hi - lo) * cfg.ny * cfg.nx);
        k.bytes = static_cast<Bytes>(cfg.model.bytes_per_elem *
                                     static_cast<double>((hi - lo) * cfg.ny * cfg.nx));
        rt.parallel_loop_async(q, std::move(k));
        rt.update_self_async(q, reinterpret_cast<std::byte*>(h1.data()) + lo * plane,
                             reinterpret_cast<const std::byte*>(db) + lo * plane,
                             (hi - lo) * plane);
      }
      rt.wait();
    }
    g.device_free(reinterpret_cast<std::byte*>(da));
    g.device_free(reinterpret_cast<std::byte*>(db));
  });
}

struct Row {
  std::int64_t chunk;
  apps::Measurement dup;
  apps::Measurement slide;
};

Row measure_chunk(std::int64_t chunk) {
  auto cfg = stencil_cfg();
  cfg.chunk_size = chunk;
  Row r{chunk, {}, {}};
  {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    quiet(g);
    r.dup = stencil_duplicating(g, cfg);
  }
  r.slide = run_on(gpu::nvidia_k40m(),
                   [&](gpu::Gpu& g) { return apps::stencil_pipelined_buffer(g, cfg); });
  return r;
}

constexpr std::int64_t kChunks[] = {1, 2, 4, 8};

void register_all() {
  for (std::int64_t c : kChunks) {
    for (std::string v : {"duplicating", "sliding"}) {
      const std::string name =
          "ablation_sliding/" + v + "/chunk:" + std::to_string(c);
      benchmark::RegisterBenchmark(name.c_str(), [c, v](benchmark::State& st) {
        const Row r = measure_chunk(c);
        const auto& m = v == "sliding" ? r.slide : r.dup;
        for (auto _ : st) st.SetIterationTime(m.seconds);
        st.counters["sim_s"] = m.seconds;
        st.counters["h2d_s"] = m.h2d_time;
      })->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nAblation — sliding-window copy elision (stencil, window 3)\n");
  Table t({"chunk", "duplicating H2D (s)", "sliding H2D (s)", "duplicating total (s)",
           "sliding total (s)", "time saved"});
  for (std::int64_t c : kChunks) {
    const Row r = measure_chunk(c);
    t.add_row({std::to_string(c), Table::num(r.dup.h2d_time, 3),
               Table::num(r.slide.h2d_time, 3), Table::num(r.dup.seconds, 3),
               Table::num(r.slide.seconds, 3),
               Table::num(100.0 * (1.0 - r.slide.seconds / r.dup.seconds), 1) + "%"});
  }
  t.print(std::cout);
  std::printf("Elision matters most at small chunks, where windows overlap most.\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
