// Ablation: the adaptive scheduler extension (the paper's stated future
// work, implemented in src/core).
//
// A deliberately bad static chunk size (1 iteration) on a fine-grained
// workload wastes time on per-chunk overheads and sub-saturation transfers;
// the adaptive schedule probes the first chunk, models per-chunk costs, and
// re-chunks the remaining iterations. This bench compares static chunk
// sizes against the adaptive pick across workload granularities.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"
#include "core/pipeline.hpp"

namespace gpupipe::bench {
namespace {

struct Outcome {
  SimTime seconds = 0.0;
  std::int64_t chunk = 0;
};

/// Streams `rows` rows of `row_elems` doubles through a pipelined doubling
/// kernel and reports the region time.
Outcome run_synthetic(std::int64_t rows, std::int64_t row_elems, core::ScheduleKind kind,
                      std::int64_t chunk) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  quiet(g);
  std::byte* in = g.host_alloc(static_cast<Bytes>(rows * row_elems) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(rows * row_elems) * sizeof(double));

  core::PipelineSpec spec;
  spec.schedule = kind;
  spec.chunk_size = chunk;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = rows;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, sizeof(double), {rows, row_elems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, sizeof(double), {rows, row_elems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline p(g, spec);
  const SimTime t0 = g.host_now();
  p.run([row_elems](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "double";
    k.flops = static_cast<double>(ctx.iterations() * row_elems);
    k.bytes = static_cast<Bytes>(ctx.iterations() * row_elems) * 16;
    return k;
  });
  g.synchronize();
  Outcome o{g.host_now() - t0, p.effective_chunk_size()};
  g.host_free(in);
  g.host_free(out);
  return o;
}

constexpr std::int64_t kRows = 4096;
constexpr std::int64_t kRowElems[] = {512, 4096, 32768};  // 4 KiB .. 256 KiB rows

void register_all() {
  for (std::int64_t re : kRowElems) {
    for (std::int64_t c : {std::int64_t{1}, std::int64_t{16}, std::int64_t{256}}) {
      const std::string name = "ablation_schedule/static/row_KiB:" +
                               std::to_string(re * 8 / 1024) + "/chunk:" + std::to_string(c);
      benchmark::RegisterBenchmark(name.c_str(), [re, c](benchmark::State& st) {
        const double t = run_synthetic(kRows, re, core::ScheduleKind::Static, c).seconds;
        for (auto _ : st) st.SetIterationTime(t);
        st.counters["sim_s"] = t;
      })->UseManualTime()->Iterations(1);
    }
    const std::string name =
        "ablation_schedule/adaptive/row_KiB:" + std::to_string(re * 8 / 1024);
    benchmark::RegisterBenchmark(name.c_str(), [re](benchmark::State& st) {
      const auto o = run_synthetic(kRows, re, core::ScheduleKind::Adaptive, 1);
      for (auto _ : st) st.SetIterationTime(o.seconds);
      st.counters["sim_s"] = o.seconds;
      st.counters["chosen_chunk"] = static_cast<double>(o.chunk);
    })->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nAblation — static vs adaptive schedule (4096 rows, 2 streams)\n");
  Table t({"row size", "static c=1 (s)", "static c=16 (s)", "static c=256 (s)",
           "adaptive (s)", "adaptive picked"});
  for (std::int64_t re : kRowElems) {
    const auto s1 = run_synthetic(kRows, re, core::ScheduleKind::Static, 1);
    const auto s16 = run_synthetic(kRows, re, core::ScheduleKind::Static, 16);
    const auto s256 = run_synthetic(kRows, re, core::ScheduleKind::Static, 256);
    const auto ad = run_synthetic(kRows, re, core::ScheduleKind::Adaptive, 1);
    t.add_row({std::to_string(re * 8 / 1024) + " KiB", Table::num(s1.seconds, 4),
               Table::num(s16.seconds, 4), Table::num(s256.seconds, 4),
               Table::num(ad.seconds, 4), "chunk " + std::to_string(ad.chunk)});
  }
  t.print(std::cout);
  std::printf(
      "The adaptive schedule should track the best static column without manual "
      "tuning, from a chunk-size-1 starting point.\n");
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
