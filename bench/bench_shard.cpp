// Elastic sharding bench: the default large-job mix, solo vs sharded.
//
// Three scenarios of one burst mix of large jobs on K40m machines:
//   * best solo device — the whole mix on a single device (the baseline a
//     sharded run must beat),
//   * 2 devices, sharding off — plain multi-tenant placement,
//   * 2 devices, sharding on — every job splits across both devices with
//     P2P halo exchange, re-deciding weights at round boundaries.
// The BENCH_shard.json artifact carries the makespans plus the derived
// sharded_vs_solo ratio (CI floor: <= 0.85, i.e. sharding must beat the
// best solo device by at least 15%) and the P2P halo byte count (CI floor:
// > 0 — halos must actually travel device-to-device, not bounce through
// the host).
#include <memory>

#include "bench/bench_util.hpp"
#include "common/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe::bench {
namespace {

int mix_size() { return quick_mode() ? 4 : 6; }

/// The default mix promoted to all-large with burst arrivals: the job
/// population sharding exists for.
std::vector<sched::JobMixLine> large_mix() {
  auto mix = sched::default_job_mix(mix_size());
  for (auto& l : mix) {
    l.size = "large";
    l.arrival = 0.0;
    l.deadline.reset();
  }
  return mix;
}

struct Result {
  sched::ScheduleReport report;
  std::int64_t sharded_jobs = 0;
  std::int64_t shard_rounds = 0;
  double p2p_halo_bytes = 0.0;
};

Result run_once(int num_devices, bool sharded) {
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < num_devices; ++i) {
    gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(),
                                              gpu::ExecMode::Functional, ctx));
    quiet(*gpus.back());
    devices.push_back(gpus.back().get());
  }
  sched::SchedulerOptions opts;
  if (sharded) {
    opts.shard_threshold = 1;  // every shardable job shards
    opts.max_shards = num_devices;
  }
  sched::Scheduler scheduler(devices, opts);
  const auto mix = large_mix();
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    scheduler.submit(jobs.back().job);
  }
  Result r;
  r.report = scheduler.run();
  for (const auto& j : jobs)
    if (!j.verify()) throw Error("bench_shard: job failed verification");
  telemetry::Registry reg;
  scheduler.collect_metrics(reg);
  r.sharded_jobs = reg.counter("sched.sharded_jobs").value();
  r.shard_rounds = reg.counter("sched.shard_rounds").value();
  r.p2p_halo_bytes = static_cast<double>(reg.counter("sched.p2p_halo_bytes").value());
  return r;
}

const Result& cached(int idx) {
  static std::map<int, Result> cache;
  auto it = cache.find(idx);
  if (it == cache.end()) {
    // 0: best solo device, 1: 2 devices unsharded, 2: 2 devices sharded.
    it = cache.emplace(idx, run_once(idx == 0 ? 1 : 2, idx == 2)).first;
  }
  return it->second;
}

const char* kNames[] = {"best solo device", "2 devices unsharded", "2 devices sharded"};
const char* kSlugs[] = {"solo", "unsharded", "sharded"};

void register_all() {
  for (int i = 0; i < 3; ++i) {
    benchmark::RegisterBenchmark(
        (std::string("shard/") + kSlugs[i]).c_str(),
        [i](benchmark::State& st) {
          const Result& r = cached(i);
          for (auto _ : st) st.SetIterationTime(r.report.makespan);
          st.counters["completed"] = r.report.completed;
        })
        ->UseManualTime()->Iterations(1);
  }
}

void print_figure() {
  std::printf("\nElastic sharding — %d large jobs, K40m\n", mix_size());
  Table t({"configuration", "makespan (ms)", "sharded jobs", "rounds",
           "p2p halo (KiB)", "completed"});
  Artifact art("shard");
  art.config("jobs", static_cast<double>(mix_size()));
  art.config("profile", "k40m");
  for (int i = 0; i < 3; ++i) {
    const Result& r = cached(i);
    t.add_row({kNames[i], Table::num(r.report.makespan * 1e3, 3),
               Table::num(static_cast<double>(r.sharded_jobs), 0),
               Table::num(static_cast<double>(r.shard_rounds), 0),
               Table::num(r.p2p_halo_bytes / 1024.0, 1),
               Table::num(r.report.completed, 0)});
    const std::string p = std::string(kSlugs[i]) + ".";
    art.metric(p + "makespan_s", r.report.makespan);
    art.metric(p + "completed", r.report.completed);
    art.metric(p + "sharded_jobs", static_cast<double>(r.sharded_jobs));
    art.metric(p + "shard_rounds", static_cast<double>(r.shard_rounds));
    art.metric(p + "p2p_halo_bytes", r.p2p_halo_bytes);
  }
  // CI floors: sharded <= 0.85x the best solo device, and the halo bytes
  // must be genuinely device-to-device (> 0).
  art.derived("sharded_vs_solo",
              cached(2).report.makespan / cached(0).report.makespan);
  art.derived("sharded_vs_unsharded",
              cached(2).report.makespan / cached(1).report.makespan);
  art.derived("p2p_halo_bytes", cached(2).p2p_halo_bytes);
  t.print(std::cout);
  art.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
