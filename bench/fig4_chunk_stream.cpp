// Reproduces Fig. 4: execution time of the runtime's pipelined QCD (large
// test case) as chunk size (1,2,4,8) and stream count (1..5) vary on the
// K40m profile. Paper findings: two streams are much better than one; more
// than four streams add nothing; larger chunks generally do not hurt.
#include "bench/bench_util.hpp"
#include "bench/workloads.hpp"

namespace gpupipe::bench {
namespace {

const gpu::DeviceProfile kProfile = gpu::nvidia_k40m();
constexpr std::int64_t kChunks[] = {1, 2, 4, 8};
constexpr int kStreams[] = {1, 2, 3, 4, 5};

/// Quick (CI) runs sweep the medium lattice, full runs the large one.
char dataset() { return quick_mode() ? 'm' : 'l'; }

const apps::Measurement& qcd_m(std::int64_t chunk, int streams) {
  return cached("fig4-" + std::to_string(chunk) + "-" + std::to_string(streams), [&] {
    auto cfg = qcd_cfg(dataset());
    cfg.chunk_size = chunk;
    cfg.num_streams = streams;
    return run_on(kProfile, [&](gpu::Gpu& g) { return apps::qcd_pipelined_buffer(g, cfg); });
  });
}

/// The buffered pipeline at plan-optimization level `opt` (default tuning):
/// the opt-0 vs opt-1 pair measures the halo-reuse pass's H2D savings.
const apps::Measurement& qcd_opt_m(int opt) {
  return cached("fig4-opt" + std::to_string(opt), [&] {
    auto cfg = qcd_cfg(dataset());
    cfg.opt_level = opt;
    return run_on(kProfile, [&](gpu::Gpu& g) { return apps::qcd_pipelined_buffer(g, cfg); });
  });
}

void register_all() {
  for (std::int64_t c : kChunks) {
    for (int s : kStreams) {
      const std::string name =
          "fig4/qcd-large/chunk:" + std::to_string(c) + "/streams:" + std::to_string(s);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [c, s](benchmark::State& st) { report(st, qcd_m(c, s)); })
          ->UseManualTime()->Iterations(1);
    }
  }
}

void print_figure() {
  std::printf("\nFig. 4 — QCD (%s) execution time [s], chunk size x stream count on %s\n",
              qcd_name(dataset()), kProfile.name.c_str());
  Table t({"chunk_size", "1 stream", "2 streams", "3 streams", "4 streams", "5 streams"});
  for (std::int64_t c : kChunks) {
    std::vector<std::string> row{std::to_string(c)};
    for (int s : kStreams) row.push_back(Table::num(qcd_m(c, s).seconds, 3));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("paper: 2 streams >> 1 stream; >= 4 streams flat; larger chunks benign\n");

  // Machine-readable artifact: the sweep plus the two figures CI gates on —
  // copy/compute overlap at the default tuning, and the halo-reuse pass's
  // H2D savings (opt level 0 vs 1 on the same workload).
  Artifact a("fig4_chunk_stream");
  a.config("profile", kProfile.name);
  a.config("workload", qcd_name(dataset()));
  a.config("quick", quick_mode());
  for (std::int64_t c : kChunks)
    for (int s : kStreams)
      a.measurement("chunk" + std::to_string(c) + ".streams" + std::to_string(s),
                    qcd_m(c, s));
  const auto& opt0 = qcd_opt_m(0);
  const auto& opt1 = qcd_opt_m(1);
  a.metric("opt0.h2d_bytes", static_cast<double>(opt0.h2d_bytes));
  a.metric("opt1.h2d_bytes", static_cast<double>(opt1.h2d_bytes));
  a.derived("speedup_2_vs_1_streams", qcd_m(1, 1).seconds / qcd_m(1, 2).seconds);
  a.derived("overlap_efficiency", qcd_opt_m(1).overlap_efficiency);
  a.derived("h2d_savings_pct",
            100.0 * (1.0 - static_cast<double>(opt1.h2d_bytes) /
                               static_cast<double>(opt0.h2d_bytes)));
  a.write();
}

}  // namespace
}  // namespace gpupipe::bench

int main(int argc, char** argv) {
  gpupipe::bench::register_all();
  return gpupipe::bench::bench_main(argc, argv, gpupipe::bench::print_figure);
}
