// gpupipe_compile — ahead-of-time plan compiler for serve fleets.
//
// A serve replica spends its cold start re-tuning and re-planning every job
// template in its mix; a fleet of N replicas repeats that work N times on
// every restart. This tool does the work once, offline: it reads a job mix
// (or the built-in default mix), dry-run autotunes each distinct app/size
// template, plans it at the tuned shape, and serializes everything — the
// compiled+optimized ExecutionPlans, predicted footprints, dry-run
// estimates, and the TuneResults themselves — into one versioned bundle
// file that `gpupipe_serve --bundle` loads at startup. All of it is pure
// cost-model arithmetic on a Modeled-mode device: nothing executes, nothing
// is allocated.
//
// The bundle's cache artifacts are keyed by the same canonical fingerprint
// the plan cache uses (device profile + spec shape), so a bundle compiled
// for one --profile contributes nothing on another — serve simply misses
// and replans. Tuned shapes are likewise keyed per profile.
//
// Usage:
//   gpupipe_compile [mixfile] [--default-mix N] [--profile k40m|hd7970|xeonphi]
//                   [--cap MIB] [--tune-jobs N] [--no-tune] [-o FILE]
//                   [--cache-dir DIR] [--compact] [--json]
//
// --cap mirrors gpupipe_serve's admission cap so shapes are solved under
// the same budget the fleet will use. --no-tune keeps each template's
// declared shape (plan-only bundle). --cache-dir additionally writes every
// computed artifact into a persistent plan-cache directory (the same tier
// GPUPIPE_PLAN_CACHE_DIR enables in the serving process). -o defaults to
// plan_bundle.gpb.
//
// --compact is a maintenance mode: instead of compiling, it garbage-
// collects the --cache-dir directory — quarantined corpses, version-skewed
// records, and orphaned temp files accumulate forever otherwise — and
// prints a report. Current-format records are never touched.
//
// Exit status: 0 on success, 1 on bad usage or failure.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_serialize.hpp"
#include "gpu/device_profile.hpp"
#include "sched/workloads.hpp"
#include "tool_util.hpp"

using namespace gpupipe;

namespace {

struct Options {
  std::string mixfile;
  int default_mix = 10;
  std::string profile = "k40m";
  std::int64_t cap_mib = 0;  ///< 0 = the device's free memory
  int tune_jobs = 0;         ///< autotune workers (0 = one per hw thread)
  bool tune = true;
  std::string output = "plan_bundle.gpb";
  std::string cache_dir;
  bool compact = false;
  bool json = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: gpupipe_compile [mixfile] [--default-mix N]\n"
               "                       [--profile k40m|hd7970|xeonphi] [--cap MIB]\n"
               "                       [--tune-jobs N] [--no-tune] [-o FILE]\n"
               "                       [--cache-dir DIR] [--compact] [--json]\n");
  return 1;
}

/// What one distinct job template compiled to.
struct TemplateResult {
  std::string name;  ///< "app/size"
  std::int64_t chunk_size = 0;
  int num_streams = 0;
  SimTime estimate = 0.0;
  core::TuneResult tune;
  bool tuned = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&](const char* what) -> std::string {
        if (i + 1 >= argc) throw Error(std::string(what) + " needs a value");
        return argv[++i];
      };
      if (a == "--default-mix")
        opt.default_mix = static_cast<int>(tools::parse_int(a, next(a.c_str()), 1));
      else if (a == "--profile") opt.profile = next("--profile");
      else if (a == "--cap") opt.cap_mib = tools::parse_int(a, next(a.c_str()), 1);
      else if (a == "--tune-jobs")
        opt.tune_jobs = static_cast<int>(tools::parse_int(a, next(a.c_str()), 0));
      else if (a == "--no-tune") opt.tune = false;
      else if (a == "-o") opt.output = next("-o");
      else if (a == "--cache-dir") opt.cache_dir = next("--cache-dir");
      else if (a == "--compact") opt.compact = true;
      else if (a == "--json") opt.json = true;
      else if (a == "--help" || a == "-h") return usage();
      else if (!a.empty() && a[0] == '-') throw Error("unknown option '" + a + "'");
      else opt.mixfile = a;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe_compile: %s\n", e.what());
    return usage();
  }
  try {
    core::PlanCache& cache = core::PlanCache::instance();
    if (!cache.enabled()) cache.set_capacity(core::PlanCache::kDefaultCapacity);
    if (!opt.cache_dir.empty()) cache.set_disk_dir(opt.cache_dir);

    if (opt.compact) {
      if (opt.cache_dir.empty()) throw Error("--compact requires --cache-dir DIR");
      if (cache.disk_dir().empty())
        throw Error("cache directory '" + opt.cache_dir + "' is unusable");
      const auto rep = cache.compact_disk();
      if (opt.json) {
        std::printf("{\"cache_dir\":\"%s\",\"scanned\":%lld,\"kept\":%lld,"
                    "\"removed_quarantined\":%lld,\"removed_stale\":%lld,"
                    "\"removed_temp\":%lld,\"bytes_reclaimed\":%lld}\n",
                    opt.cache_dir.c_str(), static_cast<long long>(rep.scanned),
                    static_cast<long long>(rep.kept),
                    static_cast<long long>(rep.removed_quarantined),
                    static_cast<long long>(rep.removed_stale),
                    static_cast<long long>(rep.removed_temp),
                    static_cast<long long>(rep.bytes_reclaimed));
      } else {
        std::printf("gpupipe_compile: compacted %s\n", opt.cache_dir.c_str());
        std::printf("  scanned %lld files, kept %lld\n",
                    static_cast<long long>(rep.scanned),
                    static_cast<long long>(rep.kept));
        std::printf("  removed %lld quarantined, %lld stale, %lld temp "
                    "(%lld bytes reclaimed)\n",
                    static_cast<long long>(rep.removed_quarantined),
                    static_cast<long long>(rep.removed_stale),
                    static_cast<long long>(rep.removed_temp),
                    static_cast<long long>(rep.bytes_reclaimed));
      }
      return 0;
    }

    std::vector<sched::JobMixLine> mix;
    if (opt.mixfile.empty()) {
      mix = sched::default_job_mix(opt.default_mix);
    } else {
      std::ifstream f(opt.mixfile);
      if (!f) throw Error("cannot open job mix file '" + opt.mixfile + "'");
      mix = sched::parse_job_mix(f);
    }
    if (mix.empty()) throw Error("job mix is empty");

    const gpu::DeviceProfile profile = tools::profile_by_name(opt.profile);
    // Modeled mode: planning and dry-run tuning never execute or allocate,
    // and host arrays stay unpinned exactly as they are in the serve
    // process — the fingerprints match bit for bit.
    gpu::Gpu g(profile, gpu::ExecMode::Modeled);
    const Bytes cap = opt.cap_mib > 0
                          ? std::min(static_cast<Bytes>(opt.cap_mib) * MiB,
                                     g.device_mem_free())
                          : 0;

    // Phase 1: one dry-run autotune per distinct app/size template (the mix
    // repeats them; the fingerprint depends on the template, not the
    // instance). The sweep floods the cache with hundreds of throwaway
    // candidate-shape entries, so the bundle is NOT exported from this state.
    std::map<std::string, TemplateResult> templates;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const std::string name = mix[i].app + "/" + mix[i].size;
      if (templates.count(name)) continue;
      sched::ServeJob sj = sched::make_serve_job(mix[i], static_cast<int>(i));
      sched::Job& job = sj.job;
      TemplateResult tr;
      tr.name = name;
      if (opt.tune) {
        core::TuneOptions topt;
        topt.dry_run = true;
        topt.kernel_cost = core::KernelCostHint{job.flops_per_iter, job.bytes_per_iter};
        topt.tune_jobs = opt.tune_jobs;
        tr.tune = core::autotune(g, job.spec, job.kernel, topt);
        tr.tuned = true;
        tr.chunk_size = tr.tune.chunk_size;
        tr.num_streams = tr.tune.num_streams;
      } else {
        tr.chunk_size = job.spec.chunk_size;
        tr.num_streams = job.spec.num_streams;
      }
      templates.emplace(name, std::move(tr));
    }

    // Phase 2: drop the sweep's leftovers, then warm the cache exactly the
    // way the scheduler will read it — one estimate per template at its
    // final shape, which solves the shape under the admission cap and
    // populates the footprint, compiled-plan, and estimate entries the serve
    // process looks up. Without the clear() the tune sweeps of later
    // templates evict earlier templates' real artifacts from the LRU tier
    // and the exported bundle misses in production.
    cache.clear();
    cache.set_capacity(std::max(cache.capacity(), templates.size() * 64));
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const std::string name = mix[i].app + "/" + mix[i].size;
      auto it = templates.find(name);
      if (it == templates.end() || it->second.estimate != 0.0) continue;
      TemplateResult& tr = it->second;
      sched::ServeJob sj = sched::make_serve_job(mix[i], static_cast<int>(i));
      sched::Job& job = sj.job;
      job.spec.chunk_size = tr.chunk_size;
      job.spec.num_streams = tr.num_streams;
      core::DryRunCost cost;
      cost.flops_per_iter = job.flops_per_iter;
      cost.bytes_per_iter = job.bytes_per_iter;
      tr.estimate = core::estimate_pipeline_runtime(g, job.spec, cost, cap);
      tr.chunk_size = job.spec.chunk_size;
      tr.num_streams = job.spec.num_streams;
    }

    core::PlanBundle bundle;
    cache.export_bundle(bundle);
    const std::size_t cache_artifacts = bundle.artifacts.size();
    for (const auto& [name, tr] : templates) {
      if (!tr.tuned) continue;
      core::PlanArtifact a;
      a.kind = core::ArtifactKind::Tune;
      a.key = core::tune_artifact_key(profile, name);
      a.tune = tr.tune;
      bundle.artifacts.push_back(std::move(a));
    }
    std::string err;
    if (!core::write_bundle_file(opt.output, bundle, &err))
      throw Error("cannot write bundle: " + err);

    if (opt.json) {
      std::ostringstream os;
      os.precision(17);
      os << "{\"profile\":\"" << opt.profile << "\",\"output\":\"" << opt.output
         << "\",\"templates\":[";
      bool first = true;
      for (const auto& [name, tr] : templates) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"" << name << "\",\"chunk_size\":" << tr.chunk_size
           << ",\"num_streams\":" << tr.num_streams << ",\"estimate_s\":" << tr.estimate
           << ",\"tuned\":" << (tr.tuned ? "true" : "false") << "}";
      }
      os << "],\"cache_artifacts\":" << cache_artifacts
         << ",\"tune_artifacts\":" << (bundle.artifacts.size() - cache_artifacts) << "}";
      std::printf("%s\n", os.str().c_str());
    } else {
      std::printf("gpupipe_compile: %zu jobs, %zu distinct templates, profile %s\n",
                  mix.size(), templates.size(), opt.profile.c_str());
      for (const auto& [name, tr] : templates)
        std::printf("  %-18s shape %lldx%d  est %.3f ms%s\n", name.c_str(),
                    static_cast<long long>(tr.chunk_size), tr.num_streams,
                    tr.estimate * 1e3, tr.tuned ? "  (tuned)" : "");
      std::printf("wrote %s: %zu cache artifacts + %zu tuned shapes\n",
                  opt.output.c_str(), cache_artifacts,
                  bundle.artifacts.size() - cache_artifacts);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe_compile: %s\n", e.what());
    return 1;
  }
}
