// Region-description file parsing, shared by the command-line tools.
//
// A region file describes one pipelined loop, one item per line ('#'
// starts a comment, a trailing backslash continues the line):
//
//   directive: pipeline(static[1,3]) pipeline_map(to: A0[k-1:3][0:ny][0:nx]) <backslash>
//              pipeline_map(from: Anext[k:1][0:ny][0:nx])
//   loop: k = 1 .. nz-1
//   array: A0 double [nz][ny][nx]
//   array: Anext double [nz][ny][nx]
//   function: stencil_region          # optional
//   kernel: <loop body statements>    # optional
//
// gpupipe_translate turns the result into C++ source; gpupipe_plan binds
// it to concrete extents and dumps the compiled ExecutionPlan.
#pragma once

#include <cctype>
#include <istream>
#include <sstream>
#include <string>

#include "dsl/codegen.hpp"

namespace gpupipe::tools {

inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses "k = 1 .. nz-1" into (var, begin, end).
inline void parse_loop(const std::string& text, dsl::CodegenInput& in) {
  const auto eq = text.find('=');
  const auto dots = text.find("..");
  if (eq == std::string::npos || dots == std::string::npos || dots < eq)
    throw Error("loop line must look like: loop: k = 1 .. nz-1");
  in.loop_var = trim(text.substr(0, eq));
  in.loop_begin = trim(text.substr(eq + 1, dots - eq - 1));
  in.loop_end = trim(text.substr(dots + 2));
}

// Parses "A0 double [nz][ny][nx]".
inline void parse_array(const std::string& text, dsl::CodegenInput& in) {
  std::istringstream is(text);
  dsl::CodegenInput::ArrayDecl decl;
  is >> decl.name >> decl.elem_type;
  std::string rest;
  std::getline(is, rest);
  rest = trim(rest);
  while (!rest.empty()) {
    if (rest.front() != '[')
      throw Error("array dims must look like [nz][ny][nx], got: " + rest);
    const auto close = rest.find(']');
    if (close == std::string::npos) throw Error("unbalanced '[' in array dims");
    decl.dims.push_back(trim(rest.substr(1, close - 1)));
    rest = trim(rest.substr(close + 1));
  }
  if (decl.name.empty() || decl.elem_type.empty() || decl.dims.empty())
    throw Error("array line must look like: array: A0 double [nz][ny][nx]");
  in.arrays.push_back(std::move(decl));
}

inline dsl::CodegenInput parse_region_file(std::istream& is) {
  dsl::CodegenInput in;
  std::string line;
  std::string pending;  // supports trailing-backslash continuations
  auto handle = [&](const std::string& full) {
    const std::string t = trim(full);
    if (t.empty() || t.front() == '#') return;
    const auto colon = t.find(':');
    if (colon == std::string::npos) throw Error("expected 'key: value', got: " + t);
    const std::string key = trim(t.substr(0, colon));
    const std::string value = trim(t.substr(colon + 1));
    if (key == "directive") {
      in.directive = value;
    } else if (key == "loop") {
      parse_loop(value, in);
    } else if (key == "array") {
      parse_array(value, in);
    } else if (key == "function") {
      in.function_name = value;
    } else if (key == "kernel") {
      in.kernel_body = value;
    } else {
      throw Error("unknown key '" + key + "'");
    }
  };
  while (std::getline(is, line)) {
    std::string t = trim(line);
    if (!t.empty() && t.back() == '\\') {
      pending += t.substr(0, t.size() - 1) + " ";
      continue;
    }
    handle(pending + line);
    pending.clear();
  }
  if (!trim(pending).empty()) handle(pending);
  if (in.directive.empty()) throw Error("region file needs a directive: line");
  if (in.loop_end.empty()) throw Error("region file needs a loop: line");
  return in;
}

}  // namespace gpupipe::tools
