// Shared helpers for the gpupipe_* command-line drivers.
//
// Flag parsing goes through parse_int/parse_double instead of bare
// std::stoi/std::stod: those throw std::invalid_argument straight out of
// main on garbage input (and silently accept trailing junk like "8x"),
// which a serving driver must not do. These reject non-numeric text,
// trailing garbage, overflow, and out-of-range values with a gpupipe::Error
// naming the flag, so every tool reports one clear line plus its usage
// string instead of an uncaught-exception abort.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::tools {

/// Parses `value` as a base-10 integer for `flag`, requiring the whole
/// string to be consumed and the result to land in [min_value, max_value].
inline std::int64_t parse_int(
    const std::string& flag, const std::string& value,
    std::int64_t min_value = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max_value = std::numeric_limits<std::int64_t>::max()) {
  std::int64_t v = 0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [end, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc{} || end != last)
    throw Error(flag + " expects an integer, got '" + value + "'");
  if (v < min_value)
    throw Error(flag + " must be >= " + std::to_string(min_value) + ", got " + value);
  if (v > max_value)
    throw Error(flag + " must be <= " + std::to_string(max_value) + ", got " + value);
  return v;
}

/// Parses `value` as a double for `flag` (full consumption, finite range
/// check against min_value).
inline double parse_double(const std::string& flag, const std::string& value,
                           double min_value = -std::numeric_limits<double>::infinity()) {
  double v = 0.0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [end, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || end != last)
    throw Error(flag + " expects a number, got '" + value + "'");
  if (v < min_value)
    throw Error(flag + " must be >= " + std::to_string(min_value) + ", got " + value);
  return v;
}

/// The built-in device profiles every tool accepts for --profile.
inline gpu::DeviceProfile profile_by_name(const std::string& name) {
  if (name == "k40m") return gpu::nvidia_k40m();
  if (name == "hd7970") return gpu::amd_hd7970();
  if (name == "xeonphi") return gpu::intel_xeonphi();
  throw Error("unknown device profile '" + name + "' (k40m|hd7970|xeonphi)");
}

/// Parses a --devices spec into per-device profiles. Two forms:
///   * an integer count N — N homogeneous copies of `default_profile`
///     (strict: "2x" is rejected like any other malformed integer),
///   * a comma-separated profile-name list ("k40m,k40m,hd7970") — a
///     heterogeneous machine, one device per entry, in order.
/// Empty entries and unknown names fail with a one-line Error naming the
/// flag, so drivers report usage instead of building a half-parsed machine.
inline std::vector<gpu::DeviceProfile> parse_device_list(
    const std::string& flag, const std::string& value,
    const std::string& default_profile) {
  if (value.empty()) throw Error(flag + " needs a device count or profile list");
  if (value.find(',') == std::string::npos &&
      (std::isdigit(static_cast<unsigned char>(value[0])) != 0 || value[0] == '-' ||
       value[0] == '+')) {
    const std::int64_t n = parse_int(flag, value, 1, 64);
    return std::vector<gpu::DeviceProfile>(static_cast<std::size_t>(n),
                                           profile_by_name(default_profile));
  }
  std::vector<gpu::DeviceProfile> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = value.find(',', pos);
    const std::string name =
        comma == std::string::npos ? value.substr(pos) : value.substr(pos, comma - pos);
    if (name.empty())
      throw Error(flag + " has an empty entry in '" + value + "'");
    try {
      out.push_back(profile_by_name(name));
    } catch (const Error& e) {
      throw Error(flag + ": " + e.what());
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace gpupipe::tools
