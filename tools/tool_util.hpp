// Shared helpers for the gpupipe_* command-line drivers.
//
// Flag parsing goes through parse_int/parse_double instead of bare
// std::stoi/std::stod: those throw std::invalid_argument straight out of
// main on garbage input (and silently accept trailing junk like "8x"),
// which a serving driver must not do. These reject non-numeric text,
// trailing garbage, overflow, and out-of-range values with a gpupipe::Error
// naming the flag, so every tool reports one clear line plus its usage
// string instead of an uncaught-exception abort.
#pragma once

#include <charconv>
#include <cstdint>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::tools {

/// Parses `value` as a base-10 integer for `flag`, requiring the whole
/// string to be consumed and the result to land in [min_value, max_value].
inline std::int64_t parse_int(
    const std::string& flag, const std::string& value,
    std::int64_t min_value = std::numeric_limits<std::int64_t>::min(),
    std::int64_t max_value = std::numeric_limits<std::int64_t>::max()) {
  std::int64_t v = 0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [end, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc{} || end != last)
    throw Error(flag + " expects an integer, got '" + value + "'");
  if (v < min_value)
    throw Error(flag + " must be >= " + std::to_string(min_value) + ", got " + value);
  if (v > max_value)
    throw Error(flag + " must be <= " + std::to_string(max_value) + ", got " + value);
  return v;
}

/// Parses `value` as a double for `flag` (full consumption, finite range
/// check against min_value).
inline double parse_double(const std::string& flag, const std::string& value,
                           double min_value = -std::numeric_limits<double>::infinity()) {
  double v = 0.0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [end, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || end != last)
    throw Error(flag + " expects a number, got '" + value + "'");
  if (v < min_value)
    throw Error(flag + " must be >= " + std::to_string(min_value) + ", got " + value);
  return v;
}

/// The built-in device profiles every tool accepts for --profile.
inline gpu::DeviceProfile profile_by_name(const std::string& name) {
  if (name == "k40m") return gpu::nvidia_k40m();
  if (name == "hd7970") return gpu::amd_hd7970();
  if (name == "xeonphi") return gpu::intel_xeonphi();
  throw Error("unknown device profile '" + name + "' (k40m|hd7970|xeonphi)");
}

}  // namespace gpupipe::tools
