// gpupipe-translate — command-line source-to-source translator.
//
// Reads a small region-description file (format: tools/region_file.hpp)
// and prints the generated C++ on stdout (or writes it with -o).
//
// Usage: gpupipe_translate region.pipe [-o generated.cpp]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "dsl/codegen.hpp"
#include "region_file.hpp"

int main(int argc, char** argv) {
  std::string input_path, output_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: gpupipe_translate <region-file> [-o out.cpp]\n");
      return 0;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (input_path.empty()) {
    std::fprintf(stderr, "usage: gpupipe_translate <region-file> [-o out.cpp]\n");
    return 2;
  }

  try {
    std::ifstream file(input_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 2;
    }
    const std::string code =
        gpupipe::dsl::generate_cpp(gpupipe::tools::parse_region_file(file));
    if (output_path.empty()) {
      std::cout << code;
    } else {
      std::ofstream out(output_path);
      out << code;
      std::fprintf(stderr, "wrote %s\n", output_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe-translate: %s\n", e.what());
    return 1;
  }
}
