// gpupipe-translate — command-line source-to-source translator.
//
// Reads a small region-description file and prints the generated C++ on
// stdout (or writes it with -o). Description format, one item per line
// ('#' starts a comment):
//
//   directive: pipeline(static[1,3]) pipeline_map(to: A0[k-1:3][0:ny][0:nx]) <backslash>
//              pipeline_map(from: Anext[k:1][0:ny][0:nx])
//   loop: k = 1 .. nz-1
//   array: A0 double [nz][ny][nx]
//   array: Anext double [nz][ny][nx]
//   function: stencil_region          # optional
//   kernel: <loop body statements>    # optional; TODO slot when omitted
//
// Usage: gpupipe_translate region.pipe [-o generated.cpp]
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dsl/codegen.hpp"

namespace {

using gpupipe::dsl::CodegenInput;

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses "k = 1 .. nz-1" into (var, begin, end).
void parse_loop(const std::string& text, CodegenInput& in) {
  const auto eq = text.find('=');
  const auto dots = text.find("..");
  if (eq == std::string::npos || dots == std::string::npos || dots < eq)
    throw gpupipe::Error("loop line must look like: loop: k = 1 .. nz-1");
  in.loop_var = trim(text.substr(0, eq));
  in.loop_begin = trim(text.substr(eq + 1, dots - eq - 1));
  in.loop_end = trim(text.substr(dots + 2));
}

// Parses "A0 double [nz][ny][nx]".
void parse_array(const std::string& text, CodegenInput& in) {
  std::istringstream is(text);
  CodegenInput::ArrayDecl decl;
  is >> decl.name >> decl.elem_type;
  std::string rest;
  std::getline(is, rest);
  rest = trim(rest);
  while (!rest.empty()) {
    if (rest.front() != '[')
      throw gpupipe::Error("array dims must look like [nz][ny][nx], got: " + rest);
    const auto close = rest.find(']');
    if (close == std::string::npos) throw gpupipe::Error("unbalanced '[' in array dims");
    decl.dims.push_back(trim(rest.substr(1, close - 1)));
    rest = trim(rest.substr(close + 1));
  }
  if (decl.name.empty() || decl.elem_type.empty() || decl.dims.empty())
    throw gpupipe::Error("array line must look like: array: A0 double [nz][ny][nx]");
  in.arrays.push_back(std::move(decl));
}

CodegenInput parse_region_file(std::istream& is) {
  CodegenInput in;
  std::string line;
  std::string pending;  // supports trailing-backslash continuations
  auto handle = [&](const std::string& full) {
    const std::string t = trim(full);
    if (t.empty() || t.front() == '#') return;
    const auto colon = t.find(':');
    if (colon == std::string::npos)
      throw gpupipe::Error("expected 'key: value', got: " + t);
    const std::string key = trim(t.substr(0, colon));
    const std::string value = trim(t.substr(colon + 1));
    if (key == "directive") {
      in.directive = value;
    } else if (key == "loop") {
      parse_loop(value, in);
    } else if (key == "array") {
      parse_array(value, in);
    } else if (key == "function") {
      in.function_name = value;
    } else if (key == "kernel") {
      in.kernel_body = value;
    } else {
      throw gpupipe::Error("unknown key '" + key + "'");
    }
  };
  while (std::getline(is, line)) {
    std::string t = trim(line);
    if (!t.empty() && t.back() == '\\') {
      pending += t.substr(0, t.size() - 1) + " ";
      continue;
    }
    handle(pending + line);
    pending.clear();
  }
  if (!trim(pending).empty()) handle(pending);
  if (in.directive.empty()) throw gpupipe::Error("region file needs a directive: line");
  if (in.loop_end.empty()) throw gpupipe::Error("region file needs a loop: line");
  return in;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path, output_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: gpupipe_translate <region-file> [-o out.cpp]\n");
      return 0;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (input_path.empty()) {
    std::fprintf(stderr, "usage: gpupipe_translate <region-file> [-o out.cpp]\n");
    return 2;
  }

  try {
    std::ifstream file(input_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 2;
    }
    const std::string code = gpupipe::dsl::generate_cpp(parse_region_file(file));
    if (output_path.empty()) {
      std::cout << code;
    } else {
      std::ofstream out(output_path);
      out << code;
      std::fprintf(stderr, "wrote %s\n", output_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe-translate: %s\n", e.what());
    return 1;
  }
}
