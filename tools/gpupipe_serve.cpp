// gpupipe_serve — replay a job mix through the multi-tenant scheduler.
//
// Reads a job-mix file (or generates a built-in mix), submits every job to
// a sched::Scheduler over a multi-device shared context, and reports
// per-job wait/service/turnaround, makespan versus the sum of solo
// runtimes, and queue-wait/turnaround percentiles interpolated from the
// `sched.` telemetry histograms.
//
// Usage:
//   gpupipe_serve [mixfile] [--default-mix N] [--jobs N] [--chains N]
//                 [--chain-stages M] [--chain-size small|medium|large]
//                 [--no-stitch] [--devices N|list]
//                 [--profile k40m|hd7970|xeonphi] [--policy fifo|priority|sjf]
//                 [--shard-threshold MIB] [--max-shards N]
//                 [--reshard-interval ITERS]
//                 [--placement least-loaded|round-robin] [--cap MIB]
//                 [--queue-capacity N] [--plan-cache N] [--tune-jobs N]
//                 [--bundle FILE] [--cache-dir DIR] [--no-solo] [--json]
//                 [--record] [--record-capacity N] [--sample-every SEC]
//                 [--export prom|jsonl] [--export-dir DIR]
//                 [--watchdog-stall SEC] [--watchdog-storm N]
//                 [--watchdog-window SEC] [--watchdog-disk-corrupt]
//
// Live observability: --record turns on the flight recorder (a bounded ring
// of structured control-loop events — admission, shrink, reject, backoff,
// placement, completion, deadline miss, plan-cache disk traffic — each
// stamped with sim time and the job's trace id). --sample-every SEC
// snapshots queue depth, committed bytes, per-device utilization, and the
// plan-cache hit rate on that sim-time cadence. --export emits the state
// after the run: `jsonl` writes serve_events.jsonl + serve_series.jsonl
// (and implies --record), `prom` writes serve.prom (Prometheus text format
// over the full metrics registry); both land in --export-dir (default
// "."). Everything runs on virtual time, so two identical runs produce
// byte-identical export files. The --watchdog-* thresholds arm an anomaly
// detector checked on the sampling cadence (default 1 ms when armed
// without --sample-every); a trip dumps the flight recorder to
// serve_watchdog_dump.jsonl and reports on stderr.
//
// --plan-cache N sets the planning cache capacity (entries; 0 disables the
// cache — useful for A/B-ing the serve hot path). --tune-jobs N runs a
// dry-run autotune per distinct app/size template before submission, with N
// parallel workers (0 = one per hardware thread), and submits each job at
// its tuned shape.
//
// --bundle FILE loads a `gpupipe_compile` AOT bundle at startup: its plan /
// footprint / estimate artifacts pre-warm the plan cache and its tuned
// shapes are applied to matching job templates (unless --tune-jobs re-tunes
// live), so a fresh replica starts hot. --cache-dir DIR enables the plan
// cache's persistent on-disk tier (same as GPUPIPE_PLAN_CACHE_DIR): misses
// fall through memory -> disk -> compute and computed plans are written
// back for the next process.
//
// --devices takes either a count N (N copies of --profile) or a
// comma-separated profile list ("k40m,k40m,hd7970") for a heterogeneous
// machine. --shard-threshold MIB arms elastic sharding: a job whose
// predicted solo ring footprint reaches the threshold is partitioned across
// the devices with P2P halo exchange (sched/shard.hpp); --max-shards caps
// the devices per job and --reshard-interval sets the loop iterations per
// round (0 = one round, no mid-job resharding). The solo baseline always
// uses --profile, so heterogeneous speedup numbers are relative to that
// reference device.
//
// --chains N appends N lineage chains of --chain-stages pointwise jobs each
// (stream/compute alternating at --chain-size geometry) after the mix; each
// stage declares Job::consumes on its predecessor, so the scheduler stitches
// the intermediate host round-trips into device-resident handoffs and the
// summary reports stitched jobs/bytes plus total H2D/D2H traffic.
// --no-stitch disables the pass (lineage still sequences the chains), which
// is the A/B baseline for the saved copy bytes.
//
// --jobs N generates a synthetic N-tenant mix (no mix file needed) and runs
// it on modeled-mode devices: jobs carry no host arrays, so tenant counts in
// the 100k range fit in memory, at the cost of skipping result verification
// and the solo baseline. Scheduling, admission, and telemetry behave exactly
// as in functional runs.
//
// Exit status: 0 on success; 1 on bad usage; 2 when a completed job's
// device result fails host verification.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/export.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "core/autotune.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_serialize.hpp"
#include "gpu/device_profile.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"
#include "tool_util.hpp"

using namespace gpupipe;

namespace {

struct Options {
  std::string mixfile;
  int default_mix = 10;
  int jobs = 0;        ///< >0: synthetic modeled-mode mix of N tenants
  int chains = 0;      ///< >0: append N lineage chains to the mix
  int chain_stages = 3;
  std::string chain_size = "small";
  int devices = 2;
  std::string devices_spec = "2";  ///< raw --devices value (count or list)
  std::vector<gpu::DeviceProfile> machine;  ///< resolved per-device profiles
  std::string machine_desc;                 ///< what to print for the machine
  std::string profile = "k40m";
  sched::SchedulerOptions sched;
  bool solo = true;
  bool json = false;
  std::optional<std::size_t> plan_cache;  ///< cache capacity override
  std::optional<int> tune_jobs;           ///< pre-submit autotune workers
  std::string bundle;                     ///< AOT plan bundle to preload
  std::string cache_dir;                  ///< persistent plan-cache tier
  bool record = false;                    ///< flight recorder on
  std::size_t record_capacity = 8192;
  bool export_prom = false;
  bool export_jsonl = false;
  std::string export_dir = ".";
  double watchdog_stall = 0.0;   ///< sim-seconds without progress (0 = off)
  int watchdog_storm = 0;        ///< deadline misses per window (0 = off)
  double watchdog_window = 0.05; ///< storm window, sim-seconds
  bool watchdog_disk_corrupt = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: gpupipe_serve [mixfile] [--default-mix N] [--jobs N]\n"
               "                     [--chains N] [--chain-stages M]\n"
               "                     [--chain-size small|medium|large] [--no-stitch]\n"
               "                     [--devices N | k40m,hd7970,...]\n"
               "                     [--profile k40m|hd7970|xeonphi]\n"
               "                     [--shard-threshold MIB] [--max-shards N]\n"
               "                     [--reshard-interval ITERS]\n"
               "                     [--policy fifo|priority|sjf]\n"
               "                     [--placement least-loaded|round-robin]\n"
               "                     [--cap MIB] [--queue-capacity N] [--plan-cache N]\n"
               "                     [--tune-jobs N] [--bundle FILE] [--cache-dir DIR]\n"
               "                     [--no-solo] [--json]\n"
               "                     [--record] [--record-capacity N]\n"
               "                     [--sample-every SEC] [--export prom|jsonl]\n"
               "                     [--export-dir DIR] [--watchdog-stall SEC]\n"
               "                     [--watchdog-storm N] [--watchdog-window SEC]\n"
               "                     [--watchdog-disk-corrupt]\n");
  return 1;
}

/// Solo baseline: each job alone on a fresh single-device machine with the
/// same profile (fresh host arrays, so the scheduled run's outputs are
/// untouched).
SimTime solo_runtime(const sched::JobMixLine& line, int index,
                     const gpu::DeviceProfile& profile) {
  sched::ServeJob sj = sched::make_serve_job(line, index);
  gpu::Gpu g(profile, gpu::ExecMode::Functional);
  core::Pipeline p(g, sj.job.spec);
  const SimTime t0 = g.host_now();
  p.run(sj.job.kernel);
  return g.host_now() - t0;
}

void print_human(const sched::ScheduleReport& rep, const std::vector<sched::ServeJob>& jobs,
                 SimTime sum_solo, const telemetry::Registry& reg, const Options& opt,
                 Bytes h2d_total, Bytes d2h_total) {
  std::printf("gpupipe_serve: %zu jobs, %d x %s, policy %s, placement %s\n",
              jobs.size(), opt.devices, opt.machine_desc.c_str(),
              to_string(opt.sched.queue_policy), to_string(opt.sched.placement));
  std::printf("%-20s %-9s %3s %8s %8s %8s %8s %6s\n", "job", "state", "dev",
              "arrive", "wait_ms", "serve_ms", "turn_ms", "shape");
  for (const auto& r : rep.jobs) {
    const bool done = r.state == sched::JobState::Completed;
    std::printf("%-20s %-9s %3d %8.3f %8.3f %8.3f %8.3f %4lldx%d%s%s\n", r.name.c_str(),
                to_string(r.state), r.device, r.arrival * 1e3,
                done ? r.wait() * 1e3 : 0.0, done ? r.service() * 1e3 : 0.0,
                done ? r.turnaround() * 1e3 : 0.0,
                static_cast<long long>(r.chunk_size), r.num_streams,
                r.shrunk ? " shrunk" : "", r.deadline_missed ? " LATE" : "");
  }
  std::printf("completed %d, rejected %d, shrinks %lld, retries %lld, "
              "backpressure %lld, deadline misses %lld\n",
              rep.completed, rep.rejected,
              static_cast<long long>(rep.admission_shrinks),
              static_cast<long long>(rep.admission_retries),
              static_cast<long long>(rep.backpressure_events),
              static_cast<long long>(rep.deadline_misses));
  if (opt.chains > 0 || rep.stitched_jobs > 0)
    std::printf("stitching: %lld jobs stitched, %lld bytes device-resident, "
                "%lld fallbacks; h2d %lld bytes, d2h %lld bytes\n",
                static_cast<long long>(rep.stitched_jobs),
                static_cast<long long>(rep.stitched_bytes),
                static_cast<long long>(rep.handoff_fallbacks),
                static_cast<long long>(h2d_total), static_cast<long long>(d2h_total));
  std::printf("makespan %.3f ms", rep.makespan * 1e3);
  if (opt.solo)
    std::printf("  (sum of solo runtimes %.3f ms, speedup %.2fx)", sum_solo * 1e3,
                rep.makespan > 0.0 ? sum_solo / rep.makespan : 0.0);
  std::printf("\n");
  const auto& hist = reg.histograms();
  for (const char* name : {"sched.wait_s", "sched.turnaround_s"}) {
    auto it = hist.find(name);
    if (it == hist.end()) continue;
    std::printf("%s: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n", name,
                it->second.quantile(0.50) * 1e3, it->second.quantile(0.95) * 1e3,
                it->second.quantile(0.99) * 1e3);
  }
  const core::PlanCacheStats pc = core::PlanCache::instance().stats();
  std::printf("plan cache: %lld hits, %lld misses (%.1f%% hit rate), %lld evictions, "
              "%lld entries, %.1f KiB\n",
              static_cast<long long>(pc.hits), static_cast<long long>(pc.misses),
              pc.hit_rate() * 100.0, static_cast<long long>(pc.evictions),
              static_cast<long long>(pc.entries), static_cast<double>(pc.bytes) / 1024.0);
  if (!core::PlanCache::instance().disk_dir().empty() || pc.disk_hits > 0 ||
      pc.disk_corrupt > 0)
    std::printf("plan cache disk: %lld hits, %lld misses, %lld corrupt, %lld writes, "
                "%.1f KiB read, %.1f KiB written\n",
                static_cast<long long>(pc.disk_hits),
                static_cast<long long>(pc.disk_misses),
                static_cast<long long>(pc.disk_corrupt),
                static_cast<long long>(pc.disk_writes),
                static_cast<double>(pc.disk_bytes_read) / 1024.0,
                static_cast<double>(pc.disk_bytes_written) / 1024.0);
}

void print_json(const sched::ScheduleReport& rep, SimTime sum_solo,
                const telemetry::Registry& reg, const Options& opt, Bytes h2d_total,
                Bytes d2h_total) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"options\":{\"devices\":" << opt.devices << ",\"profile\":\"" << opt.profile
     << "\",\"policy\":\"" << to_string(opt.sched.queue_policy) << "\",\"placement\":\""
     << to_string(opt.sched.placement) << "\",\"queue_capacity\":"
     << opt.sched.queue_capacity << "},\"jobs\":[";
  for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
    const auto& r = rep.jobs[i];
    const bool done = r.state == sched::JobState::Completed;
    if (i > 0) os << ",";
    os << "{\"id\":" << r.id << ",\"name\":\"" << r.name << "\",\"state\":\""
       << to_string(r.state) << "\",\"device\":" << r.device << ",\"priority\":"
       << r.priority << ",\"arrival_s\":" << r.arrival << ",\"start_s\":" << r.start
       << ",\"finish_s\":" << r.finish << ",\"wait_s\":" << (done ? r.wait() : 0.0)
       << ",\"service_s\":" << (done ? r.service() : 0.0) << ",\"turnaround_s\":"
       << (done ? r.turnaround() : 0.0) << ",\"estimate_s\":" << r.estimate
       << ",\"footprint_bytes\":" << r.footprint << ",\"chunk_size\":" << r.chunk_size
       << ",\"num_streams\":" << r.num_streams << ",\"shrunk\":"
       << (r.shrunk ? "true" : "false") << ",\"admission_attempts\":"
       << r.admission_attempts << ",\"deadline_missed\":"
       << (r.deadline_missed ? "true" : "false") << "}";
  }
  os << "],\"summary\":{\"makespan_s\":" << rep.makespan << ",\"sum_solo_s\":" << sum_solo
     << ",\"speedup\":" << (rep.makespan > 0.0 && opt.solo ? sum_solo / rep.makespan : 0.0)
     << ",\"completed\":" << rep.completed << ",\"rejected\":" << rep.rejected
     << ",\"stitched_jobs\":" << rep.stitched_jobs << ",\"stitched_bytes\":"
     << rep.stitched_bytes << ",\"handoff_fallbacks\":" << rep.handoff_fallbacks
     << ",\"h2d_bytes\":" << h2d_total << ",\"d2h_bytes\":" << d2h_total
     << ",\"throughput_jobs_per_s\":"
     << (rep.makespan > 0.0 ? static_cast<double>(rep.completed) / rep.makespan : 0.0);
  // Percentiles are interpolated from the sched.* histograms in the
  // registry — the same numbers any metrics consumer would derive.
  const auto& hist = reg.histograms();
  for (const auto& [name, key] :
       {std::pair<const char*, const char*>{"sched.wait_s", "wait"},
        std::pair<const char*, const char*>{"sched.turnaround_s", "turnaround"}}) {
    auto it = hist.find(name);
    if (it == hist.end()) continue;
    for (const auto& [q, tag] : {std::pair<double, const char*>{0.50, "p50"},
                                 std::pair<double, const char*>{0.95, "p95"},
                                 std::pair<double, const char*>{0.99, "p99"}})
      os << ",\"" << key << "_" << tag << "_s\":" << it->second.quantile(q);
  }
  os << "},\"metrics\":";
  reg.to_json(os);
  os << "}";
  std::printf("%s\n", os.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  // Parse phase: any malformed flag — non-numeric, trailing garbage,
  // negative where a count is required — reports one line and the usage
  // string, never an uncaught std::invalid_argument out of std::stoi.
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&](const char* what) -> std::string {
        if (i + 1 >= argc) throw Error(std::string(what) + " needs a value");
        return argv[++i];
      };
      auto next_int = [&](const char* what, std::int64_t min_value) {
        return tools::parse_int(what, next(what), min_value);
      };
      if (a == "--default-mix") opt.default_mix = static_cast<int>(next_int(a.c_str(), 1));
      else if (a == "--jobs") opt.jobs = static_cast<int>(next_int(a.c_str(), 1));
      else if (a == "--chains") opt.chains = static_cast<int>(next_int(a.c_str(), 1));
      else if (a == "--chain-stages")
        opt.chain_stages = static_cast<int>(next_int(a.c_str(), 2));
      else if (a == "--chain-size") opt.chain_size = next("--chain-size");
      else if (a == "--no-stitch") opt.sched.stitching = false;
      else if (a == "--devices") opt.devices_spec = next("--devices");
      else if (a == "--profile") opt.profile = next("--profile");
      else if (a == "--shard-threshold") {
        opt.sched.shard_threshold = static_cast<Bytes>(next_int(a.c_str(), 1)) * MiB;
      } else if (a == "--max-shards") {
        opt.sched.max_shards = static_cast<int>(next_int(a.c_str(), 1));
      } else if (a == "--reshard-interval") {
        opt.sched.reshard_interval = next_int(a.c_str(), 0);
      }
      else if (a == "--policy") {
        const std::string p = next("--policy");
        if (p == "fifo") opt.sched.queue_policy = sched::QueuePolicy::Fifo;
        else if (p == "priority") opt.sched.queue_policy = sched::QueuePolicy::Priority;
        else if (p == "sjf") opt.sched.queue_policy = sched::QueuePolicy::Sjf;
        else throw Error("unknown policy '" + p + "'");
      } else if (a == "--placement") {
        const std::string p = next("--placement");
        if (p == "least-loaded") opt.sched.placement = sched::PlacementPolicy::LeastLoaded;
        else if (p == "round-robin") opt.sched.placement = sched::PlacementPolicy::RoundRobin;
        else throw Error("unknown placement '" + p + "'");
      } else if (a == "--cap") {
        opt.sched.device_mem_cap = static_cast<Bytes>(next_int(a.c_str(), 1)) * MiB;
      } else if (a == "--queue-capacity") {
        opt.sched.queue_capacity = static_cast<std::size_t>(next_int(a.c_str(), 0));
      } else if (a == "--plan-cache") {
        opt.plan_cache = static_cast<std::size_t>(next_int(a.c_str(), 0));
      } else if (a == "--tune-jobs") {
        opt.tune_jobs = static_cast<int>(next_int(a.c_str(), 0));
      } else if (a == "--bundle") {
        opt.bundle = next("--bundle");
      } else if (a == "--cache-dir") {
        opt.cache_dir = next("--cache-dir");
      } else if (a == "--record") {
        opt.record = true;
      } else if (a == "--record-capacity") {
        opt.record_capacity = static_cast<std::size_t>(next_int(a.c_str(), 1));
      } else if (a == "--sample-every") {
        opt.sched.sample_every = tools::parse_double(a.c_str(), next(a.c_str()), 0.0);
      } else if (a == "--export") {
        const std::string fmt = next("--export");
        if (fmt == "prom") opt.export_prom = true;
        else if (fmt == "jsonl") opt.export_jsonl = true;
        else throw Error("unknown export format '" + fmt + "' (prom|jsonl)");
      } else if (a == "--export-dir") {
        opt.export_dir = next("--export-dir");
      } else if (a == "--watchdog-stall") {
        opt.watchdog_stall = tools::parse_double(a.c_str(), next(a.c_str()), 0.0);
      } else if (a == "--watchdog-storm") {
        opt.watchdog_storm = static_cast<int>(next_int(a.c_str(), 1));
      } else if (a == "--watchdog-window") {
        opt.watchdog_window = tools::parse_double(a.c_str(), next(a.c_str()), 0.0);
      } else if (a == "--watchdog-disk-corrupt") {
        opt.watchdog_disk_corrupt = true;
      } else if (a == "--no-solo") opt.solo = false;
      else if (a == "--json") opt.json = true;
      else if (a == "--help" || a == "-h") return usage();
      else if (!a.empty() && a[0] == '-') throw Error("unknown option '" + a + "'");
      else opt.mixfile = a;
    }
    if (opt.jobs > 0 && !opt.mixfile.empty())
      throw Error("--jobs generates its own mix; drop the mix file");
    if (opt.jobs > 0 && opt.chains > 0)
      throw Error("--chains needs functional host arrays; drop --jobs");
    if (opt.export_jsonl) opt.record = true;  // the events file needs the ring
    // Resolve --devices last: a count expands to copies of --profile
    // regardless of flag order; a name list builds a heterogeneous machine.
    opt.machine = tools::parse_device_list("--devices", opt.devices_spec, opt.profile);
    opt.devices = static_cast<int>(opt.machine.size());
    opt.machine_desc = opt.devices_spec.find(',') == std::string::npos
                           ? opt.profile
                           : opt.devices_spec;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe_serve: %s\n", e.what());
    return usage();
  }
  try {
    if (opt.plan_cache) core::PlanCache::instance().set_capacity(*opt.plan_cache);
    if (!opt.cache_dir.empty()) core::PlanCache::instance().set_disk_dir(opt.cache_dir);
    const bool synthetic = opt.jobs > 0;
    // Synthetic tenants have no host arrays: nothing to verify, and a
    // functional solo baseline would allocate the backing the mode avoids.
    if (synthetic) opt.solo = false;

    std::vector<sched::JobMixLine> mix;
    if (synthetic) {
      mix = sched::synthetic_job_mix(opt.jobs);
    } else if (opt.mixfile.empty()) {
      mix = sched::default_job_mix(opt.default_mix);
    } else {
      std::ifstream f(opt.mixfile);
      if (!f) throw Error("cannot open job mix file '" + opt.mixfile + "'");
      mix = sched::parse_job_mix(f);
    }
    if (mix.empty()) throw Error("job mix is empty");

    const gpu::DeviceProfile profile = tools::profile_by_name(opt.profile);

    // AOT bundle preload: plan/footprint/estimate artifacts go straight
    // into the plan cache's memory tier; tuned shapes are collected per job
    // template, keyed under this device profile (a bundle compiled for a
    // different device contributes nothing).
    std::map<std::string, std::pair<std::int64_t, int>> bundled;
    if (!opt.bundle.empty()) {
      core::PlanBundle bundle;
      std::string err;
      if (!core::read_bundle_file(opt.bundle, bundle, &err))
        throw Error("cannot load bundle '" + opt.bundle + "': " + err);
      core::PlanCache& cache = core::PlanCache::instance();
      // Keep the whole bundle resident: a preload that exactly fills the LRU
      // tier would evict its own entries as soon as serving inserts anything.
      cache.set_capacity(std::max(cache.capacity(), bundle.artifacts.size() +
                                                        core::PlanCache::kDefaultCapacity));
      const std::size_t admitted = cache.load_bundle(bundle);
      const std::string tune_prefix = core::tune_artifact_key(profile, "");
      for (const auto& art : bundle.artifacts) {
        if (art.kind != core::ArtifactKind::Tune) continue;
        if (art.key.rfind(tune_prefix, 0) != 0) continue;
        bundled[art.key.substr(tune_prefix.size())] = {art.tune.chunk_size,
                                                       art.tune.num_streams};
      }
      if (!opt.json)
        std::printf("bundle: %zu plan entries preloaded, %zu tuned shapes from %s\n",
                    admitted, bundled.size(), opt.bundle.c_str());
    }

    const gpu::ExecMode mode =
        synthetic ? gpu::ExecMode::Modeled : gpu::ExecMode::Functional;
    auto ctx = gpu::make_shared_context();
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<gpu::Gpu*> devices;
    for (int i = 0; i < opt.devices; ++i) {
      gpus.push_back(std::make_unique<gpu::Gpu>(opt.machine[static_cast<std::size_t>(i)],
                                                mode, ctx));
      devices.push_back(gpus.back().get());
    }

    // Live observability plumbing. All three sinks are owned here and handed
    // to the scheduler as raw pointers; they must be declared before the
    // Scheduler so they outlive run().
    telemetry::FlightRecorder recorder(opt.record_capacity);
    telemetry::TimeSeriesStore series;
    const bool watch = opt.watchdog_stall > 0.0 || opt.watchdog_storm > 0 ||
                       opt.watchdog_disk_corrupt;
    telemetry::WatchdogOptions wopt;
    wopt.stall_timeout = opt.watchdog_stall;
    wopt.deadline_storm_misses = opt.watchdog_storm;
    wopt.deadline_window = opt.watchdog_window;
    wopt.trip_on_disk_corrupt = opt.watchdog_disk_corrupt;
    telemetry::Watchdog watchdog(wopt, opt.record ? &recorder : nullptr);
    if (opt.record) {
      opt.sched.recorder = &recorder;
      // Disk-tier events (recorded from inside the plan cache) carry the
      // shared context's virtual clock, like everything else in the dump.
      recorder.set_clock([ctx] { return ctx->host_time; });
      core::PlanCache::instance().set_recorder(&recorder);
    }
    if (opt.sched.sample_every > 0.0) opt.sched.series = &series;
    if (watch) {
      opt.sched.watchdog = &watchdog;
      // The watchdog is checked at sampling points; arm a default cadence
      // when the user asked for thresholds but not for series.
      if (opt.sched.sample_every <= 0.0) opt.sched.sample_every = 0.001;
      watchdog.on_trip = [&](const telemetry::WatchdogTrip& t) {
        const std::string path = opt.export_dir + "/serve_watchdog_dump.jsonl";
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        if (os) telemetry::export_events_jsonl(os, recorder);
        std::fprintf(stderr,
                     "gpupipe_serve: watchdog trip: %s (value %lld) at t=%.6f s"
                     "%s%s\n",
                     telemetry::trip_reason(t.reason),
                     static_cast<long long>(t.value), t.time,
                     os ? "; flight recorder dumped to " : "",
                     os ? path.c_str() : "");
      };
    }

    std::vector<sched::ServeJob> jobs;
    jobs.reserve(mix.size());
    sched::Scheduler scheduler(devices, opt.sched);
    // One dry-run autotune per distinct app/size template (the mix repeats
    // them), parallel across --tune-jobs workers. The tuner shares the
    // planning cache, so repeated shapes inside one sweep hit too.
    std::map<std::string, std::pair<std::int64_t, int>> tuned;
    for (std::size_t i = 0; i < mix.size(); ++i) {
      jobs.push_back(synthetic ? sched::make_synthetic_job(mix[i], static_cast<int>(i))
                               : sched::make_serve_job(mix[i], static_cast<int>(i)));
      sched::Job& job = jobs.back().job;
      if (opt.tune_jobs) {
        const std::string key = mix[i].app + "/" + mix[i].size;
        auto it = tuned.find(key);
        if (it == tuned.end()) {
          core::TuneOptions topt;
          topt.dry_run = true;
          topt.kernel_cost = core::KernelCostHint{job.flops_per_iter, job.bytes_per_iter};
          topt.tune_jobs = *opt.tune_jobs;
          const core::TuneResult tr =
              core::autotune(*devices[0], job.spec, job.kernel, topt);
          it = tuned.emplace(key, std::make_pair(tr.chunk_size, tr.num_streams)).first;
        }
        job.spec.chunk_size = it->second.first;
        job.spec.num_streams = it->second.second;
      } else if (!bundled.empty()) {
        // No live tuner: submit at the bundle's pre-tuned shape, which is
        // also the shape its preloaded plans were compiled at.
        auto it = bundled.find(mix[i].app + "/" + mix[i].size);
        if (it != bundled.end()) {
          job.spec.chunk_size = it->second.first;
          job.spec.num_streams = it->second.second;
        }
      }
      scheduler.submit(job);
    }
    // Lineage chains ride along after the mix: stage k consumes stage k-1's
    // output, so the scheduler can stitch the intermediate host round-trips
    // into device-resident handoffs. Chains are excluded from the solo
    // baseline (sum_solo covers the mix portion only).
    if (opt.chains > 0) {
      std::vector<sched::ServeJob> chain_jobs = sched::make_chain_jobs(
          opt.chains, opt.chain_stages, opt.chain_size, static_cast<int>(jobs.size()));
      for (sched::ServeJob& cj : chain_jobs) {
        jobs.push_back(std::move(cj));
        scheduler.submit(jobs.back().job);
      }
    }
    const sched::ScheduleReport rep = scheduler.run();
    const Bytes h2d_total = scheduler.total_h2d_bytes();
    const Bytes d2h_total = scheduler.total_d2h_bytes();

    bool ok = true;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (rep.jobs[i].state != sched::JobState::Completed) continue;
      if (!jobs[i].verify()) {
        std::fprintf(stderr, "gpupipe_serve: job %zu (%s) FAILED verification\n", i,
                     rep.jobs[i].name.c_str());
        ok = false;
      }
    }

    SimTime sum_solo = 0.0;
    if (opt.solo)
      for (std::size_t i = 0; i < mix.size(); ++i)
        sum_solo += solo_runtime(mix[i], static_cast<int>(i), profile);

    telemetry::Registry reg;
    scheduler.collect_metrics(reg);
    core::PlanCache::instance().collect_metrics(reg);
    if (opt.json)
      print_json(rep, sum_solo, reg, opt, h2d_total, d2h_total);
    else
      print_human(rep, jobs, sum_solo, reg, opt, h2d_total, d2h_total);
    if (!opt.json && opt.record)
      std::printf("flight recorder: %llu events (%zu retained, %llu dropped)%s\n",
                  static_cast<unsigned long long>(recorder.total_recorded()),
                  recorder.size(),
                  static_cast<unsigned long long>(recorder.dropped()),
                  watch && !watchdog.trips().empty() ? "  [watchdog tripped]" : "");

    // Exports last, from the final state (deterministic: everything above
    // ran on virtual time, so two identical runs write identical bytes).
    auto write_export = [&](const std::string& name, auto&& emit) {
      const std::string path = opt.export_dir + "/" + name;
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      if (!os) throw Error("cannot write export file '" + path + "'");
      emit(os);
      if (!opt.json) std::printf("wrote %s\n", path.c_str());
    };
    if (opt.export_jsonl) {
      write_export("serve_events.jsonl", [&](std::ostream& os) {
        telemetry::export_events_jsonl(os, recorder);
      });
      write_export("serve_series.jsonl", [&](std::ostream& os) {
        telemetry::export_series_jsonl(os, series);
      });
    }
    if (opt.export_prom)
      write_export("serve.prom",
                   [&](std::ostream& os) { telemetry::export_prometheus(os, reg); });
    core::PlanCache::instance().set_recorder(nullptr);  // recorder dies with main
    return ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe_serve: %s\n", e.what());
    return 1;
  }
}
