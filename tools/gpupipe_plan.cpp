// gpupipe-plan — plan inspection for pipelined regions.
//
// Reads a region-description file (format: tools/region_file.hpp), binds
// the symbolic extents with -D defines, compiles the directive into a
// PipelineSpec, builds its ExecutionPlan, and dumps it:
//
//   --summary   node/byte counts and the dry-run predicted makespan (default)
//   --dot       the op graph in Graphviz DOT form
//   --trace     the dry-run timeline as Chrome-trace JSON (chrome://tracing)
//   --metrics   execute the region on a Modeled device and print the
//               telemetry registry snapshot as JSON (plan, stats, trace,
//               optimization, and device metrics)
//   --annotate  execute the region, dry-run the same plan, and print
//               measured vs modelled time per plan node plus the mean
//               relative model error
//   --tune      sweep (chunk_size, num_streams) candidates with the dry-run
//               autotuner and print the exploration table (never executes:
//               the kernel term comes from --flops-per-iter/--bytes-per-iter;
//               --tune-jobs N parallelizes the sweep, --json emits the
//               TuneResult as JSON)
//
// --summary/--dot/--trace never execute: the plan is pure arithmetic and
// the timeline comes from a cost-model dry run. --metrics/--annotate run
// the plan through the real executor on a Modeled-mode device (timing only,
// no data) so the printed numbers are the executed ones.
//
// Usage: gpupipe_plan region.pipe -D nz=64 -D ny=32 -D nx=32
//            [--dot | --trace | --summary | --metrics | --annotate | --tune]
//            [--profile k40m|hd7970|xeonphi] [--json] [--tune-jobs N]
//            [--shards N] [--shard-index I]
//            [--flops-per-iter F] [--bytes-per-iter B] [-o out]
//
// --shards N partitions the region's loop into N equal-weight shards
// (core::shard_pipeline_specs — the same slicing the elastic scheduler
// performs) and inspects shard --shard-index I (default 0) instead of the
// whole region, so the P2pSend/P2pRecv halo-exchange nodes a sharded run
// would execute are visible in --dot / --summary / --trace.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/autotune.hpp"
#include "core/pipeline.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"
#include "core/telemetry.hpp"
#include "dsl/bind.hpp"
#include "gpu/device_profile.hpp"
#include "region_file.hpp"
#include "tool_util.hpp"

namespace {

using gpupipe::Error;

// Minimal integer-expression evaluator for loop bounds and array extents
// ("nz-1", "2*n+1"): + - * / with the usual precedence, parentheses, unary
// minus, and identifiers resolved through the -D environment.
class ExprEval {
 public:
  ExprEval(const std::string& text, const gpupipe::dsl::Env& env)
      : text_(text), env_(env) {}

  std::int64_t eval() {
    const std::int64_t v = sum();
    skip_ws();
    if (pos_ != text_.size())
      throw Error("cannot parse expression '" + text_ + "'");
    return v;
  }

 private:
  std::int64_t sum() {
    std::int64_t v = product();
    for (;;) {
      skip_ws();
      if (accept('+')) v += product();
      else if (accept('-')) v -= product();
      else return v;
    }
  }
  std::int64_t product() {
    std::int64_t v = factor();
    for (;;) {
      skip_ws();
      if (accept('*')) v *= factor();
      else if (accept('/')) {
        const std::int64_t d = factor();
        if (d == 0) throw Error("division by zero in '" + text_ + "'");
        v /= d;
      } else return v;
    }
  }
  std::int64_t factor() {
    skip_ws();
    if (accept('-')) return -factor();
    if (accept('(')) {
      const std::int64_t v = sum();
      skip_ws();
      if (!accept(')')) throw Error("missing ')' in '" + text_ + "'");
      return v;
    }
    if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        v = v * 10 + (text_[pos_++] - '0');
      return v;
    }
    if (pos_ < text_.size() && (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
                                text_[pos_] == '_')) {
      std::string name;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        name += text_[pos_++];
      const auto it = env_.find(name);
      if (it == env_.end())
        throw Error("undefined symbol '" + name + "' (pass -D " + name + "=<value>)");
      return it->second;
    }
    throw Error("cannot parse expression '" + text_ + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool accept(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  const gpupipe::dsl::Env& env_;
  std::size_t pos_ = 0;
};

std::int64_t eval_expr(const std::string& text, const gpupipe::dsl::Env& env) {
  return ExprEval(text, env).eval();
}

gpupipe::Bytes elem_size_of(const std::string& type) {
  if (type == "double") return 8;
  if (type == "float") return 4;
  throw Error("unsupported element type '" + type + "' (use double or float)");
}

void print_opt_report(std::ostream& os, const gpupipe::core::OptReport& report,
                      int opt_level) {
  os << "optimization: level " << opt_level << "\n";
  if (opt_level == 0) return;
  for (const auto& p : report.passes) {
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.1f us", p.elapsed_s * 1e6);
    os << "  pass " << p.pass << ": removed " << p.nodes_removed << " nodes, changed "
       << p.nodes_changed << ", saved " << p.bytes_saved << " bytes in " << elapsed
       << "\n";
    for (const auto& [name, bytes] : p.bytes_saved_by_array)
      if (bytes > 0) os << "    " << name << ": " << bytes << " bytes\n";
  }
  if (report.stitched_bytes > 0)
    os << "  stitched bytes: " << report.stitched_bytes << "\n";
  if (report.fused_kernels > 0)
    os << "  fused kernels: " << report.fused_kernels << "\n";
  os << "  nodes: " << report.nodes_before << " -> " << report.nodes_after << "\n";
  os << "  h2d bytes: " << report.h2d_bytes_before << " -> " << report.h2d_bytes_after
     << "\n";
  os << "  d2h bytes: " << report.d2h_bytes_before << " -> " << report.d2h_bytes_after
     << "\n";
}

void print_summary(std::ostream& os, const gpupipe::core::ExecutionPlan& plan,
                   const gpupipe::core::DryRunResult& dry) {
  using gpupipe::core::PlanOp;
  std::map<PlanOp, std::int64_t> counts;
  gpupipe::Bytes h2d = 0, d2h = 0;
  std::size_t edges = 0;
  for (const auto& n : plan.nodes) {
    ++counts[n.op];
    edges += n.deps.size();
    if (n.op == PlanOp::H2D) h2d += n.bytes;
    if (n.op == PlanOp::D2H) d2h += n.bytes;
  }
  os << "plan: " << plan.origin << " (chunk_size " << plan.chunk_size << ", "
     << plan.num_streams << " streams)\n";
  os << "nodes: " << plan.nodes.size() << " (";
  bool first = true;
  for (const auto& [op, count] : counts) {
    if (!first) os << ", ";
    first = false;
    os << count << " " << gpupipe::core::to_string(op);
  }
  os << "), " << edges << " dependency edges\n";
  os << "h2d bytes: " << h2d << "\n";
  os << "d2h bytes: " << d2h << "\n";
  os << "predicted makespan: " << dry.makespan << " s\n";
}

int usage(int code) {
  std::fprintf(stderr,
               "usage: gpupipe_plan <region-file> [-D name=value ...]\n"
               "           [--dot | --trace | --summary | --metrics | --annotate | "
               "--tune]\n"
               "           [--opt | --opt=N | --no-opt] [--json] [--tune-jobs N]\n"
               "           [--shards N] [--shard-index I]\n"
               "           [--profile k40m|hd7970|xeonphi]\n"
               "           [--flops-per-iter F] [--bytes-per-iter B] [-o out]\n");
  return code;
}

/// --tune: the dry-run autotuner's exploration record, as a table or JSON.
/// Entirely device-free — the analytic kernel hint replaces the probe.
void run_tune(std::ostream& os, const gpupipe::core::PipelineSpec& spec,
              const gpupipe::gpu::DeviceProfile& profile,
              const gpupipe::core::DryRunCost& cost, int tune_jobs, bool json) {
  gpupipe::gpu::Gpu g(profile, gpupipe::gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  gpupipe::core::TuneOptions topt;
  topt.dry_run = true;
  topt.kernel_cost =
      gpupipe::core::KernelCostHint{cost.flops_per_iter, cost.bytes_per_iter};
  topt.tune_jobs = tune_jobs;
  // The kernel factory is never invoked: with an analytic kernel_cost the
  // dry sweep skips the probe execution.
  const gpupipe::core::TuneResult r = gpupipe::core::autotune(
      g, spec, [](const gpupipe::core::ChunkContext&) { return gpupipe::gpu::KernelDesc{}; },
      topt);
  if (json) {
    os.precision(17);
    os << "{\"best\":{\"chunk_size\":" << r.chunk_size << ",\"num_streams\":"
       << r.num_streams << ",\"makespan_s\":" << r.best_time << "},\"explored\":[";
    for (std::size_t i = 0; i < r.explored.size(); ++i) {
      const auto& c = r.explored[i];
      if (i > 0) os << ",";
      os << "{\"chunk_size\":" << c.chunk_size << ",\"num_streams\":" << c.num_streams
         << ",\"feasible\":" << (c.feasible ? "true" : "false");
      if (c.feasible) os << ",\"makespan_s\":" << c.measured;
      os << "}";
    }
    os << "]}\n";
    return;
  }
  os << "autotune: " << r.explored.size() << " candidates, best chunk " << r.chunk_size
     << " x " << r.num_streams << " streams (" << r.best_time << " s)\n";
  char line[128];
  std::snprintf(line, sizeof(line), "%8s %8s %14s %6s\n", "chunk", "streams",
                "makespan_s", "");
  os << line;
  for (const auto& c : r.explored) {
    if (c.feasible)
      std::snprintf(line, sizeof(line), "%8lld %8d %14.6e %6s\n",
                    static_cast<long long>(c.chunk_size), c.num_streams, c.measured,
                    (c.chunk_size == r.chunk_size && c.num_streams == r.num_streams)
                        ? "best"
                        : "");
    else
      std::snprintf(line, sizeof(line), "%8lld %8d %14s %6s\n",
                    static_cast<long long>(c.chunk_size), c.num_streams, "infeasible", "");
    os << line;
  }
}

/// Executes the region through the real Pipeline/PlanExecutor stack on a
/// Modeled-mode device (timing only; the kernel is a roofline stub fed by
/// the --flops-per-iter/--bytes-per-iter knobs). Hazard validation is off —
/// this is an inspection tool, not the test suite.
void run_measured(std::ostream& os, const std::string& mode,
                  const gpupipe::core::PipelineSpec& spec,
                  const gpupipe::gpu::DeviceProfile& profile,
                  gpupipe::core::DryRunCost cost) {
  gpupipe::gpu::Gpu g(profile, gpupipe::gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  gpupipe::core::Pipeline pipe(g, spec);
  pipe.run([&](const gpupipe::core::ChunkContext& ctx) {
    gpupipe::gpu::KernelDesc k;
    k.name = "chunk" + std::to_string(ctx.chunk_index());
    const double iters = static_cast<double>(ctx.iterations());
    k.flops = cost.flops_per_iter * iters;
    k.bytes = static_cast<gpupipe::Bytes>(cost.bytes_per_iter * iters);
    if (cost.flops_per_iter == 0.0 && cost.bytes_per_iter == 0.0 &&
        cost.seconds_per_iter > 0.0)
      k.fixed_duration = cost.seconds_per_iter * iters;
    return k;
  });

  if (mode == "--metrics") {
    gpupipe::telemetry::Registry reg;
    pipe.collect_metrics(reg);
    gpupipe::core::collect_trace_metrics(reg, g.trace());
    gpupipe::core::collect_device_metrics(reg, g);
    reg.to_json(os);
    return;
  }
  // --annotate: model the very plan that just executed and join the two
  // timelines node by node.
  cost.live_streams = pipe.effective_streams();
  const gpupipe::core::DryRunResult dry =
      gpupipe::core::dry_run(pipe.execution_plan(), profile, cost);
  const gpupipe::core::PlanAnnotation ann =
      gpupipe::core::annotate_plan(pipe.execution_plan(), g.trace(), dry.trace);
  gpupipe::core::print_annotation(os, ann);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path, output_path, mode = "--summary";
  int opt_override = -1;  // -1 = use the directive's pipeline_opt level
  int tune_jobs = 1;
  int shards = 0;       // 0 = inspect the whole region unsharded
  int shard_index = 0;  // which shard's plan to dump with --shards
  bool json = false;
  gpupipe::dsl::Env env;
  gpupipe::gpu::DeviceProfile profile = gpupipe::gpu::nvidia_k40m();
  gpupipe::core::DryRunCost cost;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-D" && i + 1 < argc) {
        const std::string def = argv[++i];
        const auto eq = def.find('=');
        if (eq == std::string::npos) throw Error("-D expects name=value, got: " + def);
        env[def.substr(0, eq)] =
            gpupipe::tools::parse_int("-D " + def.substr(0, eq), def.substr(eq + 1));
      } else if (arg == "--dot" || arg == "--trace" || arg == "--summary" ||
                 arg == "--metrics" || arg == "--annotate" || arg == "--tune") {
        mode = arg;
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--tune-jobs" && i + 1 < argc) {
        tune_jobs = static_cast<int>(gpupipe::tools::parse_int("--tune-jobs", argv[++i], 0));
      } else if (arg == "--shards" && i + 1 < argc) {
        shards = static_cast<int>(gpupipe::tools::parse_int("--shards", argv[++i], 1, 64));
      } else if (arg == "--shard-index" && i + 1 < argc) {
        shard_index =
            static_cast<int>(gpupipe::tools::parse_int("--shard-index", argv[++i], 0));
      } else if (arg == "--opt") {
        opt_override = 1;
      } else if (arg.rfind("--opt=", 0) == 0) {
        opt_override =
            static_cast<int>(gpupipe::tools::parse_int("--opt=", arg.substr(6), 0, 2));
      } else if (arg == "--no-opt") {
        opt_override = 0;
      } else if (arg == "--profile" && i + 1 < argc) {
        profile = gpupipe::tools::profile_by_name(argv[++i]);
      } else if (arg == "--flops-per-iter" && i + 1 < argc) {
        cost.flops_per_iter = gpupipe::tools::parse_double("--flops-per-iter", argv[++i], 0.0);
      } else if (arg == "--bytes-per-iter" && i + 1 < argc) {
        cost.bytes_per_iter = gpupipe::tools::parse_double("--bytes-per-iter", argv[++i], 0.0);
      } else if (arg == "-o" && i + 1 < argc) {
        output_path = argv[++i];
      } else if (arg == "-h" || arg == "--help") {
        return usage(0);
      } else if (input_path.empty()) {
        input_path = arg;
      } else {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        return 2;
      }
    }
    if (input_path.empty()) return usage(2);

    std::ifstream file(input_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
      return 2;
    }
    const gpupipe::dsl::CodegenInput in = gpupipe::tools::parse_region_file(file);

    // Bind the arrays to freshly reserved host storage. Nothing is ever
    // copied or executed, but real extents keep the plan byte-exact.
    gpupipe::dsl::Bindings arrays;
    std::vector<std::unique_ptr<std::byte[]>> storage;
    for (const auto& decl : in.arrays) {
      gpupipe::dsl::HostArray a;
      a.elem_size = elem_size_of(decl.elem_type);
      std::int64_t elems = 1;
      for (const auto& dim : decl.dims) {
        a.dims.push_back(eval_expr(dim, env));
        elems *= a.dims.back();
      }
      storage.push_back(std::make_unique_for_overwrite<std::byte[]>(
          static_cast<std::size_t>(elems) * a.elem_size));
      a.ptr = storage.back().get();
      arrays.emplace(decl.name, std::move(a));
    }

    const std::int64_t begin = eval_expr(in.loop_begin, env);
    const std::int64_t end = eval_expr(in.loop_end, env);
    gpupipe::core::PipelineSpec spec =
        gpupipe::dsl::compile(in.directive, in.loop_var, begin, end, arrays, env);
    if (opt_override >= 0) spec.opt_level = opt_override;

    // --shards: slice the loop like the elastic scheduler would and inspect
    // one shard's sub-plan (with its P2P halo-exchange nodes) instead. The
    // executing modes need a live peer wired up, so only the pure-arithmetic
    // inspections support it.
    if (shards > 0 && (mode == "--metrics" || mode == "--annotate" || mode == "--tune"))
      throw Error("--shards supports --summary, --dot, and --trace only");
    if (shards > 0) {
      const auto slices = gpupipe::core::shard_pipeline_specs(
          spec, std::vector<double>(static_cast<std::size_t>(shards), 1.0));
      if (shard_index >= static_cast<int>(slices.size()))
        throw Error("--shard-index " + std::to_string(shard_index) + " out of range (" +
                    std::to_string(slices.size()) + " shards after partitioning)");
      spec = slices[static_cast<std::size_t>(shard_index)].spec;
    }

    // Build naive, then optimize explicitly so the pass statistics are
    // available for the summary.
    gpupipe::core::PipelineSpec naive = spec;
    naive.opt_level = 0;
    gpupipe::core::ExecutionPlan plan = gpupipe::core::PlanBuilder::pipeline(naive);
    // The profile lets level >=2 arbitrate kernel fusion with a dry-run cost
    // comparison instead of fusing unconditionally.
    const gpupipe::core::OptReport report =
        gpupipe::core::optimize_plan(plan, spec.opt_level, &profile);

    std::ofstream out_file;
    if (!output_path.empty()) {
      out_file.open(output_path);
      if (!out_file) throw Error("cannot write " + output_path);
    }
    std::ostream& os = output_path.empty() ? std::cout : out_file;

    if (mode == "--tune") {
      run_tune(os, spec, profile, cost, tune_jobs, json);
    } else if (mode == "--metrics" || mode == "--annotate") {
      run_measured(os, mode, spec, profile, cost);
    } else if (mode == "--dot") {
      plan.to_dot(os);
    } else {
      cost.live_streams = spec.num_streams;
      const gpupipe::core::DryRunResult dry = gpupipe::core::dry_run(plan, profile, cost);
      if (mode == "--trace") {
        dry.trace.dump_chrome_json(os);
      } else {
        print_summary(os, plan, dry);
        print_opt_report(os, report, spec.opt_level);
      }
    }
    if (!output_path.empty())
      std::fprintf(stderr, "wrote %s\n", output_path.c_str());
    return 0;
  } catch (const Error& e) {
    // Bad flags and malformed inputs land here (tools::parse_int and
    // friends throw Error, never std::invalid_argument): one line + usage.
    std::fprintf(stderr, "gpupipe-plan: %s\n", e.what());
    return usage(1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpupipe-plan: %s\n", e.what());
    return 1;
  }
}
