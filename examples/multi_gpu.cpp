// Multi-GPU co-scheduling (extension; the paper's future work targets
// "multi-nodes with different accelerators").
//
// One pipelined region is fanned out across several simulated devices that
// share a single host thread and virtual clock: MultiPipeline slices the
// split loop proportionally to device throughput, runs one pipelined
// sub-region per device concurrently, and results land in the shared host
// arrays. The demo scales a row-streaming workload across 1 and 2 identical
// K40m-class devices, then across a heterogeneous K40m + HD7970 pair, and
// validates every result.
//
// This demo shows STATIC partitioning — weights fixed up front, fixed
// device set, boundary windows re-uploaded from the host. The repo also
// has DYNAMIC sharding on the serving path, which re-weights per round and
// exchanges halos device-to-device:
//
//   | | static (this demo) | dynamic sharding |
//   |---|---|---|
//   | API            | core::MultiPipeline   | sched::Scheduler + ShardRun |
//   | weights        | fixed, caller/FLOPs   | live load, every round      |
//   | device set     | fixed                 | elastic join/leave          |
//   | halo transport | host re-upload        | P2P (P2pSend/P2pRecv)       |
//   | try it         | ./build/examples/multi_gpu |
//                      gpupipe_serve --shard-threshold 1 --devices 2 |
//   | docs           | docs/architecture.md  | docs/sharding.md            |
//
// Build & run:  ./build/examples/multi_gpu
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/multi.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

namespace {
constexpr std::int64_t kRows = 512;
constexpr std::int64_t kRowElems = 4096;

core::PipelineSpec make_spec(std::vector<double>& in, std::vector<double>& out) {
  core::PipelineSpec spec;
  spec.chunk_size = 8;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = kRows;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, reinterpret_cast<std::byte*>(in.data()),
                      sizeof(double), {kRows, kRowElems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, reinterpret_cast<std::byte*>(out.data()),
                      sizeof(double), {kRows, kRowElems},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  return spec;
}

core::KernelFactory kernel() {
  return [](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "transform";
    k.flops = static_cast<double>(ctx.iterations() * kRowElems) * 4.0;
    k.bytes = static_cast<Bytes>(ctx.iterations() * kRowElems) * sizeof(double) * 96;
    const core::BufferView in = ctx.view("in");
    const core::BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in, out, lo, hi] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* src = in.slab_ptr(r);
        double* dst = out.slab_ptr(r);
        for (std::int64_t j = 0; j < kRowElems; ++j) dst[j] = src[j] * src[j] + 1.0;
      }
    };
    return k;
  };
}

bool verify(const std::vector<double>& in, const std::vector<double>& out) {
  for (std::size_t i = 0; i < in.size(); ++i)
    if (out[i] != in[i] * in[i] + 1.0) return false;
  return true;
}
}  // namespace

int main() {
  auto run = [&](const char* label, const std::vector<gpu::DeviceProfile>& profiles,
                 std::vector<double> weights = {}) {
    auto ctx = gpu::make_shared_context();
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<core::DeviceShare> shares;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      gpus.push_back(
          std::make_unique<gpu::Gpu>(profiles[i], gpu::ExecMode::Functional, ctx));
      // weight <= 0 derives the share from peak flops.
      shares.push_back({gpus.back().get(), weights.empty() ? 0.0 : weights[i]});
    }
    std::vector<double> in(kRows * kRowElems), out(kRows * kRowElems, 0.0);
    std::iota(in.begin(), in.end(), 0.0);

    core::MultiPipeline mp(shares, make_spec(in, out));
    const SimTime t0 = gpus[0]->host_now();
    mp.run(kernel());
    const SimTime elapsed = gpus[0]->host_now() - t0;

    printf("%-22s %8.3f ms  slices:", label, elapsed * 1e3);
    for (int i = 0; i < mp.device_count(); ++i) {
      const auto [lo, hi] = mp.slice(i);
      printf(" [%lld,%lld)", static_cast<long long>(lo), static_cast<long long>(hi));
    }
    printf("  %s\n", verify(in, out) ? "verified" : "WRONG RESULT");

    // Per-device telemetry: each sub-pipeline reports under "dev<i>.".
    telemetry::Registry reg;
    mp.collect_metrics(reg);
    for (int i = 0; i < mp.device_count(); ++i) {
      const std::string p = "dev" + std::to_string(i) + ".";
      const auto [lo, hi] = mp.slice(i);
      if (lo == hi) continue;  // empty slice: no pipeline, no metrics
      printf("    dev%d: chunks %-3lld kernels %-3lld h2d %6.1f MiB  "
             "d2h %6.1f MiB  ring %5.1f MiB  streams %d\n",
             i, static_cast<long long>(reg.counter_value(p + "stats.chunks")),
             static_cast<long long>(reg.counter_value(p + "stats.kernels")),
             static_cast<double>(reg.counter_value(p + "stats.h2d_bytes")) / MiB,
             static_cast<double>(reg.counter_value(p + "stats.d2h_bytes")) / MiB,
             reg.gauge_value(p + "pipeline.buffer_footprint_bytes") / MiB,
             static_cast<int>(reg.gauge_value(p + "pipeline.num_streams")));
    }
    return elapsed;
  };

  const SimTime t1 = run("1x K40m", {gpu::nvidia_k40m()});
  const SimTime t2 = run("2x K40m", {gpu::nvidia_k40m(), gpu::nvidia_k40m()});
  printf("dual-device scaling: %.2fx\n", t1 / t2);
  // Heterogeneous pairing: flops-proportional splitting would overload the
  // AMD device, whose per-transfer setup cost dominates at this chunk size.
  // Weights are workload knowledge here; core::autotune could derive them.
  run("K40m + HD7970 (85/15)", {gpu::nvidia_k40m(), gpu::amd_hd7970()}, {0.85, 0.15});
  return 0;
}
