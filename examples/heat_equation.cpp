// Heat-equation demo: the paper's Fig. 2 workload end to end.
//
// Runs the 7-point Jacobi stencil in all three versions (Naive, hand-coded
// Pipelined, Pipelined-buffer) at a functional size, validates every result
// against the host reference, and prints the time/memory comparison.
//
// Build & run:  ./build/examples/heat_equation
#include <cstdio>
#include <vector>

#include "apps/stencil.hpp"
#include "common/checksum.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

int main() {
  apps::StencilConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.nz = 48;
  cfg.sweeps = 8;
  cfg.chunk_size = 4;
  cfg.num_streams = 2;

  printf("7-point Jacobi heat equation, %lldx%lldx%lld grid, %d sweeps\n",
         static_cast<long long>(cfg.nx), static_cast<long long>(cfg.ny),
         static_cast<long long>(cfg.nz), cfg.sweeps);

  const std::vector<double> reference = apps::stencil_reference(cfg);

  struct Entry {
    const char* name;
    apps::Measurement m;
    bool ok;
  };
  std::vector<Entry> entries;

  auto run = [&](const char* name, auto&& fn) {
    gpu::Gpu g(gpu::nvidia_k40m());
    std::vector<double> result;
    apps::Measurement m = fn(g, cfg, &result);
    entries.push_back({name, m, result == reference});
  };
  run("Naive", [](auto& g, auto& c, auto* r) { return apps::stencil_naive(g, c, r); });
  run("Pipelined", [](auto& g, auto& c, auto* r) { return apps::stencil_pipelined(g, c, r); });
  run("Pipelined-buffer",
      [](auto& g, auto& c, auto* r) { return apps::stencil_pipelined_buffer(g, c, r); });

  printf("%-18s %10s %12s %12s %8s\n", "version", "time (ms)", "device (MB)", "speedup",
         "valid");
  const double naive_time = entries.front().m.seconds;
  bool all_ok = true;
  for (const auto& e : entries) {
    printf("%-18s %10.3f %12.1f %11.2fx %8s\n", e.name, e.m.seconds * 1e3,
           to_mib(e.m.peak_device_mem), naive_time / e.m.seconds, e.ok ? "yes" : "NO");
    all_ok = all_ok && e.ok;
  }
  if (!all_ok) {
    printf("FAILED: some version diverged from the host reference\n");
    return 1;
  }
  printf("all versions bit-identical to the host reference\n");
  return 0;
}
