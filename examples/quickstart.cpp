// Quickstart: pipeline a simple vector operation through the directive API.
//
// The program scales a large vector on the simulated GPU twice — once with
// the naive offload model (copy in, run, copy out, all synchronous) and
// once through the paper's pipelined runtime driven by the directive text
// of Fig. 1 — then verifies both results and reports the speedup and the
// device-memory footprints.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

namespace {
constexpr std::int64_t kRows = 2048;      // split dimension
constexpr std::int64_t kRowElems = 4096;  // 32 KiB per row
constexpr std::int64_t kCount = kRows * kRowElems;
}  // namespace

int main() {

  gpu::Gpu g(gpu::nvidia_k40m());  // Functional mode: results are real
  printf("device: %s (%.1f GB usable)\n", g.profile().name.c_str(),
         to_gib(g.profile().usable_memory()));

  std::vector<double> input(kCount);
  std::iota(input.begin(), input.end(), 0.0);

  // ---- 1. Naive offload: everything serialised ----
  std::vector<double> out_naive(kCount, 0.0);
  acc::AccRuntime acc_rt(g);
  const SimTime naive_t0 = g.host_now();
  {
    auto region = acc_rt.data_region({
        {acc::DataKind::CopyIn, reinterpret_cast<std::byte*>(input.data()),
         kCount * sizeof(double)},
        {acc::DataKind::CopyOut, reinterpret_cast<std::byte*>(out_naive.data()),
         kCount * sizeof(double)},
    });
    const double* din = region.device_ptr(input.data());
    double* dout = region.device_ptr(out_naive.data());
    gpu::KernelDesc k;
    k.name = "scale";
    k.flops = static_cast<double>(kCount);
    k.bytes = kCount * 1024;  // a compute-heavy kernel (~30 ms)
    k.body = [&] {
      for (std::int64_t i = 0; i < kCount; ++i) dout[i] = 2.0 * din[i] + 1.0;
    };
    acc_rt.parallel_loop(std::move(k));
  }
  const SimTime naive_time = g.host_now() - naive_t0;
  const Bytes naive_mem = g.device_mem_stats().peak;

  // ---- 2. The paper's runtime, driven by the directive text ----
  std::vector<double> out_piped(kCount, 0.0);
  g.reset_peak_mem();
  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[32, 2]) "         // 32 rows per chunk, 2 GPU streams
      "pipeline_map(to:   x[i:1][0:m]) "  // row i needed before iteration i
      "pipeline_map(from: y[i:1][0:m]) "  // row i produced by iteration i
      "pipeline_mem_limit(MB_64)",
      /*loop_var=*/"i", /*begin=*/0, /*end=*/kRows,
      {{"x", dsl::HostArray::of(input.data(), {kRows, kRowElems})},
       {"y", dsl::HostArray::of(out_piped.data(), {kRows, kRowElems})}},
      {{"m", kRowElems}});

  core::Pipeline pipe(g, spec);
  const SimTime piped_t0 = g.host_now();
  pipe.run([&](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "scale";
    k.flops = static_cast<double>(ctx.iterations() * kRowElems);
    k.bytes = static_cast<Bytes>(ctx.iterations() * kRowElems) * 1024;
    const core::BufferView x = ctx.view("x");
    const core::BufferView y = ctx.view("y");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [x, y, lo, hi] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* in = x.slab_ptr(r);
        double* out = y.slab_ptr(r);
        for (std::int64_t j = 0; j < kRowElems; ++j) out[j] = 2.0 * in[j] + 1.0;
      }
    };
    return k;
  });
  const SimTime piped_time = g.host_now() - piped_t0;

  // ---- 3. Verify and report ----
  for (std::int64_t i = 0; i < kCount; ++i) {
    if (out_naive[i] != 2.0 * input[i] + 1.0 || out_piped[i] != out_naive[i]) {
      printf("FAILED: mismatch at %lld\n", static_cast<long long>(i));
      return 1;
    }
  }
  printf("results verified: both versions produced 2*x + 1 for %lld elements\n",
         static_cast<long long>(kCount));
  printf("naive offload      : %7.3f ms, %6.1f MB device memory\n", naive_time * 1e3,
         to_mib(naive_mem));
  printf("pipelined (buffer) : %7.3f ms, %6.1f MB device memory\n", piped_time * 1e3,
         to_mib(pipe.buffer_footprint()));
  printf("speedup %.2fx, memory reduced %.0f%%\n", naive_time / piped_time,
         100.0 * (1.0 - static_cast<double>(pipe.buffer_footprint()) /
                            static_cast<double>(naive_mem)));
  return 0;
}
