// Out-of-core matrix multiplication: computing a problem that does not fit
// in device memory (the paper's Fig. 9/10 rightmost sizes).
//
// A 24576^2 double matmul needs ~14.5 GB for the three matrices — more than
// the simulated K40m offers. The full-allocation versions fail with an
// out-of-memory error; the pipelined runtime streams the K dimension
// through small ring buffers (only C stays resident) and completes the
// computation. Runs in Modeled mode (timing only) at this scale.
//
// Build & run:  ./build/examples/out_of_core_matmul
#include <cstdio>

#include "apps/matmul.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

int main() {
  apps::MatmulConfig cfg;
  cfg.n = 24576;
  cfg.chunk_cols = 512;
  cfg.num_streams = 2;

  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);

  const double need = 3.0 * static_cast<double>(cfg.matrix_bytes());
  printf("C = A x B at n = %lld: 3 matrices need %.1f GB; device offers %.1f GB\n",
         static_cast<long long>(cfg.n), need / 1e9,
         static_cast<double>(g.profile().usable_memory()) / 1e9);

  printf("\n[1] block-shared (full allocation): ");
  try {
    apps::matmul_block_shared(g, cfg);
    printf("unexpectedly succeeded?!\n");
    return 1;
  } catch (const gpu::OomError& e) {
    printf("failed as expected\n    %s\n", e.what());
  }

  printf("\n[2] pipeline-buffer (K split into %lld-column chunks): ",
         static_cast<long long>(cfg.chunk_cols));
  const auto m = apps::matmul_pipeline_buffer(g, cfg);
  printf("completed\n");
  printf("    simulated time   : %.2f s\n", m.seconds);
  printf("    peak device mem  : %.2f GB (%.0f%% of the full working set)\n",
         static_cast<double>(m.peak_device_mem) / 1e9,
         100.0 * static_cast<double>(m.peak_device_mem) / need);
  printf("    transfers hidden : H2D busy %.2f s fully under %.2f s of kernels\n",
         m.h2d_time, m.kernel_time);
  return 0;
}
