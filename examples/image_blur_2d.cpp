// 2-D image blur under a memory cap, with the adaptive schedule.
//
// A batch of images is blurred with a 3x3 box filter, pipelined over image
// rows with a window of 3 — but the directive caps device memory at 1 MiB
// (pipeline_mem_limit), so the runtime shrinks the chunk size until the
// ring buffers fit. The adaptive schedule then re-tunes the chunk size
// within that cap. Results are validated against a host reference.
//
// Build & run:  ./build/examples/image_blur_2d
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "dsl/bind.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

namespace {
constexpr std::int64_t kRows = 1024;
constexpr std::int64_t kCols = 768;

double pixel(std::int64_t r, std::int64_t c) {
  return static_cast<double>((r * 31 + c * 7) % 255);
}

/// 3x3 box blur of row `r` (interior columns; edges pass through).
void blur_row(const double* above, const double* mid, const double* below, double* out) {
  out[0] = mid[0];
  out[kCols - 1] = mid[kCols - 1];
  for (std::int64_t c = 1; c < kCols - 1; ++c) {
    out[c] = (above[c - 1] + above[c] + above[c + 1] + mid[c - 1] + mid[c] + mid[c + 1] +
              below[c - 1] + below[c] + below[c + 1]) /
             9.0;
  }
}
}  // namespace

int main() {
  gpu::Gpu g(gpu::nvidia_k40m());

  std::vector<double> image(kRows * kCols);
  std::vector<double> blurred(kRows * kCols, 0.0);
  for (std::int64_t r = 0; r < kRows; ++r)
    for (std::int64_t c = 0; c < kCols; ++c) image[r * kCols + c] = pixel(r, c);

  // Request a huge chunk; the 1 MiB cap forces the runtime to shrink it,
  // and the adaptive schedule re-tunes within the cap.
  core::PipelineSpec spec = dsl::compile(
      "pipeline(adaptive[256, 2]) "
      "pipeline_map(to:   img[r-1:3][0:w]) "
      "pipeline_map(from: out[r:1][0:w]) "
      "pipeline_mem_limit(MB_1)",
      "r", 1, kRows - 1,
      {{"img", dsl::HostArray::of(image.data(), {kRows, kCols})},
       {"out", dsl::HostArray::of(blurred.data(), {kRows, kCols})}},
      {{"w", kCols}});

  core::Pipeline pipe(g, spec);
  printf("memory cap 1 MiB: chunk size shrank from 256 to %lld; buffers use %.0f KiB\n",
         static_cast<long long>(pipe.effective_chunk_size()),
         static_cast<double>(pipe.buffer_footprint()) / 1024.0);

  pipe.run([&](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "blur";
    k.flops = static_cast<double>(ctx.iterations() * kCols) * 9.0;
    k.bytes = static_cast<Bytes>(ctx.iterations() * kCols) * 4 * sizeof(double);
    const core::BufferView img = ctx.view("img");
    const core::BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [img, out, lo, hi] {
      for (std::int64_t r = lo; r < hi; ++r)
        blur_row(img.slab_ptr(r - 1), img.slab_ptr(r), img.slab_ptr(r + 1),
                 out.slab_ptr(r));
    };
    return k;
  });
  printf("after the adaptive probe the chunk size is %lld\n",
         static_cast<long long>(pipe.effective_chunk_size()));

  // Validate against a host reference.
  std::vector<double> expect(kRows * kCols, 0.0);
  for (std::int64_t r = 1; r < kRows - 1; ++r)
    blur_row(&image[(r - 1) * kCols], &image[r * kCols], &image[(r + 1) * kCols],
             &expect[r * kCols]);
  for (std::int64_t r = 1; r < kRows - 1; ++r) {
    for (std::int64_t c = 0; c < kCols; ++c) {
      if (blurred[r * kCols + c] != expect[r * kCols + c]) {
        printf("FAILED at (%lld, %lld)\n", static_cast<long long>(r),
               static_cast<long long>(c));
        return 1;
      }
    }
  }
  printf("blurred %lld rows under the cap; result matches the host reference\n",
         static_cast<long long>(kRows - 2));
  return 0;
}
