// Out-of-core 2-D image filtering with the nested-loop tile pipeline
// (extension; the paper's "future work will extend it to support nested
// loops").
//
// Part 1 sharpens a small image functionally and validates against a host
// reference. Part 2 streams a 64k x 64k image (32 GB — more than triple the
// simulated K40m's memory) through the same tile pipeline in Modeled mode,
// showing the device footprint stays a few megabytes.
//
// Build & run:  ./build/examples/out_of_core_image
#include <cstdio>
#include <vector>

#include "core/tile_pipeline.hpp"
#include "gpu/device_profile.hpp"

using namespace gpupipe;

namespace {

/// 3x3 sharpen: 5*center - the 4-neighbour sum.
double sharpen_at(const std::vector<double>& img, std::int64_t cols, std::int64_t r,
                  std::int64_t c) {
  return 5.0 * img[r * cols + c] - img[(r - 1) * cols + c] - img[(r + 1) * cols + c] -
         img[r * cols + c - 1] - img[r * cols + c + 1];
}

core::TileSpec make_spec(std::byte* in, std::byte* out, std::int64_t rows, std::int64_t cols,
                         std::int64_t tile, int streams) {
  core::TileSpec spec;
  spec.num_streams = streams;
  spec.ni = (rows - 2) / tile;
  spec.nj = (cols - 2) / tile;
  spec.arrays = {
      // Input tiles carry a 1-pixel halo on every side.
      core::TileArraySpec{"in", core::MapType::To, in, sizeof(double), rows, cols,
                          core::TileDimSpec{core::Affine{tile, 0}, tile + 2},
                          core::TileDimSpec{core::Affine{tile, 0}, tile + 2}},
      core::TileArraySpec{"out", core::MapType::From, out, sizeof(double), rows, cols,
                          core::TileDimSpec{core::Affine{tile, 1}, tile},
                          core::TileDimSpec{core::Affine{tile, 1}, tile}},
  };
  return spec;
}

core::TileKernelFactory sharpen_kernel(std::int64_t tile) {
  return [tile](const core::TileContext& ctx) {
    gpu::KernelDesc k;
    k.name = "sharpen";
    k.flops = static_cast<double>(tile * tile) * 9.0;
    k.bytes = static_cast<Bytes>(tile * tile) * 6 * sizeof(double);
    const core::TileBufferView in = ctx.view("in");
    const core::TileBufferView out = ctx.view("out");
    const std::int64_t r0 = ctx.i() * tile + 1, c0 = ctx.j() * tile + 1;
    k.body = [in, out, r0, c0, tile] {
      for (std::int64_t r = r0; r < r0 + tile; ++r) {
        for (std::int64_t c = c0; c < c0 + tile; ++c) {
          *out.at(r, c) = 5.0 * *in.at(r, c) - *in.at(r - 1, c) - *in.at(r + 1, c) -
                          *in.at(r, c - 1) - *in.at(r, c + 1);
        }
      }
    };
    return k;
  };
}

}  // namespace

int main() {
  // ---- Part 1: functional validation on a small image ----
  {
    gpu::Gpu g(gpu::nvidia_k40m());
    const std::int64_t rows = 130, cols = 258, tile = 16;
    std::vector<double> img(rows * cols), sharp(rows * cols, 0.0);
    for (std::int64_t x = 0; x < rows * cols; ++x) img[x] = static_cast<double>((x * 13) % 97);

    core::TilePipeline p(g,
                         make_spec(reinterpret_cast<std::byte*>(img.data()),
                                   reinterpret_cast<std::byte*>(sharp.data()), rows, cols,
                                   tile, 2));
    p.run(sharpen_kernel(tile));

    for (std::int64_t r = 1; r < rows - 1; ++r)
      for (std::int64_t c = 1; c < cols - 1; ++c)
        if (sharp[r * cols + c] != sharpen_at(img, cols, r, c)) {
          printf("FAILED at (%lld, %lld)\n", static_cast<long long>(r),
                 static_cast<long long>(c));
          return 1;
        }
    printf("small image: %lldx%lld sharpened and verified against the host reference\n",
           static_cast<long long>(rows), static_cast<long long>(cols));
  }

  // ---- Part 2: an image bigger than device memory, Modeled mode ----
  {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    g.hazards().set_enabled(false);
    const std::int64_t rows = 65538, cols = 65538, tile = 512;
    const Bytes image_bytes = static_cast<Bytes>(rows) * cols * sizeof(double);
    std::byte* in = g.host_alloc(image_bytes);
    std::byte* out = g.host_alloc(image_bytes);

    core::TilePipeline p(g, make_spec(in, out, rows, cols, tile, 2));
    const SimTime t0 = g.host_now();
    p.run(sharpen_kernel(tile));
    const SimTime elapsed = g.host_now() - t0;

    printf("huge image: 2 x %.1f GB streamed through %.2f MB of device buffers\n",
           static_cast<double>(image_bytes) / 1e9,
           static_cast<double>(p.buffer_footprint()) / 1e6);
    printf("            %.1f s simulated, %.1f GB transferred in\n", elapsed,
           static_cast<double>(p.h2d_bytes()) / 1e9);
  }
  return 0;
}
