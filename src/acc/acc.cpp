#include "acc/acc.hpp"

namespace gpupipe::acc {

// --- DataRegion ---

DataRegion::DataRegion(AccRuntime& rt, std::vector<DataClause> clauses) : rt_(&rt) {
  gpu::Gpu& g = rt.gpu_;
  mappings_.reserve(clauses.size());
  try {
    for (auto& c : clauses) {
      require(c.host != nullptr && c.size > 0, "data clause needs a host pointer and size");
      g.host_compute(rt.config_.data_clause_overhead);
      Mapping m{c, g.device_malloc(c.size)};
      if (c.kind == DataKind::CopyIn || c.kind == DataKind::Copy) {
        g.memcpy_h2d(m.device, c.host, c.size);
      }
      mappings_.push_back(m);
    }
  } catch (...) {
    // A clause mid-list failed (typically OomError): release what was
    // already mapped so the error leaves the device clean.
    g.synchronize();
    for (auto& m : mappings_) g.device_free(m.device);
    throw;
  }
}

DataRegion::DataRegion(DataRegion&& other) noexcept
    : rt_(other.rt_), mappings_(std::move(other.mappings_)) {
  other.rt_ = nullptr;
}

DataRegion::~DataRegion() {
  if (!rt_) return;
  gpu::Gpu& g = rt_->gpu_;
  // Region exit waits for outstanding work touching the mapped data, then
  // copies out and releases.
  g.synchronize();
  for (auto& m : mappings_) {
    g.host_compute(rt_->config_.data_clause_overhead);
    if (m.clause.kind == DataKind::CopyOut || m.clause.kind == DataKind::Copy) {
      g.memcpy_d2h(m.clause.host, m.device, m.clause.size);
    }
    g.device_free(m.device);
  }
}

std::byte* DataRegion::device_ptr(const std::byte* host) const {
  for (const auto& m : mappings_) {
    if (host >= m.clause.host && host < m.clause.host + m.clause.size) {
      return m.device + (host - m.clause.host);
    }
  }
  throw Error("acc: host pointer is not present in this data region");
}

// --- AccRuntime ---

AccRuntime::AccRuntime(gpu::Gpu& gpu, AccConfig config) : gpu_(gpu), config_(config) {}

AccRuntime::~AccRuntime() {
  for (auto& [id, stream] : queues_) gpu_.destroy_stream(*stream);
}

gpu::Stream& AccRuntime::queue_stream(int queue) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    gpu::Stream& s = gpu_.create_stream("acc-q" + std::to_string(queue));
    it = queues_.emplace(queue, &s).first;
  }
  return *it->second;
}

void AccRuntime::charge_async_overhead() {
  gpu_.host_compute(config_.queue_mgmt_overhead * static_cast<double>(live_queues()));
}

void AccRuntime::parallel_loop(gpu::KernelDesc desc) {
  gpu::Stream& s = gpu_.default_stream();
  gpu_.launch(s, std::move(desc));
  gpu_.synchronize(s);
}

void AccRuntime::parallel_loop_async(int queue, gpu::KernelDesc desc) {
  gpu::Stream& s = queue_stream(queue);
  charge_async_overhead();
  gpu_.launch(s, std::move(desc));
}

void AccRuntime::update_device(std::byte* device, const std::byte* host, Bytes n) {
  gpu_.host_compute(config_.update_section_overhead);
  gpu_.memcpy_h2d(device, host, n);
}

void AccRuntime::update_self(std::byte* host, const std::byte* device, Bytes n) {
  gpu_.host_compute(config_.update_section_overhead);
  gpu_.memcpy_d2h(host, device, n);
}

void AccRuntime::update_device_async(int queue, std::byte* device, const std::byte* host,
                                     Bytes n) {
  gpu::Stream& s = queue_stream(queue);
  gpu_.host_compute(config_.update_section_overhead);
  charge_async_overhead();
  gpu_.memcpy_h2d_async(device, host, n, s);
}

void AccRuntime::update_self_async(int queue, std::byte* host, const std::byte* device,
                                   Bytes n) {
  gpu::Stream& s = queue_stream(queue);
  gpu_.host_compute(config_.update_section_overhead);
  charge_async_overhead();
  gpu_.memcpy_d2h_async(host, device, n, s);
}

void AccRuntime::map_data(std::byte* host, std::byte* device, Bytes size) {
  require(host != nullptr && device != nullptr && size > 0,
          "map_data needs host, device, and a size");
  gpu_.host_compute(config_.data_clause_overhead);
  // One host segment maps to exactly one device location; overlap with an
  // existing mapping is an error — the restriction that rules this API out
  // for ring buffers (§IV: "Mapping multiple host array indices to
  // different locations in the device buffer results in an error").
  auto it = mapped_.upper_bound(host);
  if (it != mapped_.end())
    require(host + size <= it->first, "map_data: host range overlaps an existing mapping");
  if (it != mapped_.begin()) {
    auto prev = std::prev(it);
    require(prev->first + prev->second.size <= host,
            "map_data: host range overlaps an existing mapping");
  }
  mapped_.emplace(host, Mapped{size, device});
}

void AccRuntime::unmap_data(std::byte* host) {
  gpu_.host_compute(config_.data_clause_overhead);
  auto it = mapped_.find(host);
  require(it != mapped_.end(), "unmap_data of a pointer that was never mapped");
  mapped_.erase(it);
}

std::byte* AccRuntime::mapped_device_ptr(const std::byte* host) const {
  auto it = mapped_.upper_bound(host);
  require(it != mapped_.begin(), "host pointer is not present in any mapping");
  --it;
  require(host < it->first + it->second.size, "host pointer is not present in any mapping");
  return it->second.device + (host - it->first);
}

void AccRuntime::mapped_update_device_async(int queue, std::byte* host, Bytes n) {
  std::byte* device = mapped_device_ptr(host);
  gpu_.host_compute(config_.mapped_update_overhead);
  update_device_async(queue, device, host, n);
}

void AccRuntime::mapped_update_self_async(int queue, std::byte* host, Bytes n) {
  std::byte* device = mapped_device_ptr(host);
  gpu_.host_compute(config_.mapped_update_overhead);
  update_self_async(queue, host, device, n);
}

void AccRuntime::wait() {
  for (auto& [id, stream] : queues_) gpu_.synchronize(*stream);
}

void AccRuntime::wait(int queue) { gpu_.synchronize(queue_stream(queue)); }

}  // namespace gpupipe::acc
