// An OpenACC-flavoured offload layer over the simulated GPU.
//
// The paper's two baselines are written against the PGI OpenACC runtime:
//   * "Naive"     — structured data regions (copyin/copyout) around a
//                   synchronous `parallel loop`: transfer, compute, transfer,
//                   strictly in sequence.
//   * "Pipelined" — the user manually splits the loop, allocates the FULL
//                   arrays on the device, and issues per-chunk
//                   `update device/self async(q)` + `parallel loop async(q)`.
//
// This layer reproduces both, including the runtime costs the paper blames
// for the Pipelined version's stream-count sensitivity (§V-C): every async
// operation pays queue-management host overhead that grows with the number
// of live queues, and partial-array `update` transfers carry a fixed staging
// cost on top of the raw DMA (the paper found OpenACC updates slower than
// raw cudaMemcpyAsync). The paper's own runtime (src/core) bypasses this
// layer and issues raw copies, which is why it stays flat in Fig. 7.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"

namespace gpupipe::acc {

/// Cost model for the OpenACC runtime software layer itself.
struct AccConfig {
  /// Host time charged per async operation for every live queue the runtime
  /// must manage (present-table and queue bookkeeping).
  SimTime queue_mgmt_overhead = usec(20.0);
  /// Fixed extra host cost of an `update` on a partial array section
  /// (section descriptor handling / staging decision).
  SimTime update_section_overhead = usec(12.0);
  /// Host cost of entering/leaving a data region per clause.
  SimTime data_clause_overhead = usec(6.0);
  /// Extra host cost of an `update` addressed through an acc_map_data
  /// mapping (present-table walk + section descriptor), on top of
  /// update_section_overhead. The paper measured mapped updates slower
  /// than raw CUDA copies (§IV); this is that gap.
  SimTime mapped_update_overhead = usec(25.0);
};

/// How a data clause moves data at region boundaries.
enum class DataKind {
  CopyIn,   ///< allocate + H2D at entry
  CopyOut,  ///< allocate at entry, D2H at exit
  Copy,     ///< both
  Create,   ///< allocate only
};

/// One data clause: `size` bytes rooted at `host`.
struct DataClause {
  DataKind kind = DataKind::Copy;
  std::byte* host = nullptr;
  Bytes size = 0;
};

class AccRuntime;

/// RAII structured data region. Entry performs allocations and copyins
/// synchronously; exit performs copyouts and frees (as OpenACC does).
class DataRegion {
 public:
  ~DataRegion();
  DataRegion(const DataRegion&) = delete;
  DataRegion& operator=(const DataRegion&) = delete;
  DataRegion(DataRegion&&) noexcept;
  DataRegion& operator=(DataRegion&&) = delete;

  /// Device pointer corresponding to a host pointer inside a mapped clause
  /// (the present-table lookup).
  std::byte* device_ptr(const std::byte* host) const;
  template <typename T>
  T* device_ptr(const T* host) const {
    return reinterpret_cast<T*>(device_ptr(reinterpret_cast<const std::byte*>(host)));
  }

 private:
  friend class AccRuntime;
  DataRegion(AccRuntime& rt, std::vector<DataClause> clauses);

  struct Mapping {
    DataClause clause;
    std::byte* device = nullptr;
  };
  AccRuntime* rt_;  // null after move
  std::vector<Mapping> mappings_;
};

/// The OpenACC-flavoured runtime bound to one simulated GPU.
class AccRuntime {
 public:
  explicit AccRuntime(gpu::Gpu& gpu, AccConfig config = {});
  ~AccRuntime();
  AccRuntime(const AccRuntime&) = delete;
  AccRuntime& operator=(const AccRuntime&) = delete;

  gpu::Gpu& device() { return gpu_; }
  const AccConfig& config() const { return config_; }

  /// Opens a structured data region.
  DataRegion data_region(std::vector<DataClause> clauses) {
    return DataRegion(*this, std::move(clauses));
  }

  /// Synchronous `parallel loop` (the naive offload model): launches the
  /// kernel and waits for it.
  void parallel_loop(gpu::KernelDesc desc);

  /// `parallel loop async(queue)`: launches the kernel on the given async
  /// queue without waiting.
  void parallel_loop_async(int queue, gpu::KernelDesc desc);

  /// `update device(...)` — synchronous partial H2D refresh.
  void update_device(std::byte* device, const std::byte* host, Bytes n);
  /// `update self(...)` — synchronous partial D2H refresh.
  void update_self(std::byte* host, const std::byte* device, Bytes n);
  /// `update device(...) async(queue)`.
  void update_device_async(int queue, std::byte* device, const std::byte* host, Bytes n);
  /// `update self(...) async(queue)`.
  void update_self_async(int queue, std::byte* host, const std::byte* device, Bytes n);

  /// `wait` — blocks until every async queue drained.
  void wait();
  /// `wait(queue)` — blocks until one queue drained.
  void wait(int queue);

  /// acc_map_data analogue (§IV discusses it): associates one host segment
  /// with one device allocation so later `update` directives can address it
  /// through host pointers. The paper rejects this API for the ring-buffer
  /// scheme because one host array cannot map to several buffer locations —
  /// map_data enforces exactly that restriction (mapping a host range twice
  /// throws), and mapped updates carry extra present-table cost
  /// (config().mapped_update_overhead), reproducing the measured slowdown
  /// versus raw copies ("slower than directly using the CUDA memory-copy
  /// APIs", §IV). See bench/ablation_mapdata.
  void map_data(std::byte* host, std::byte* device, Bytes size);
  /// acc_unmap_data analogue.
  void unmap_data(std::byte* host);
  /// Present-table translation for mapped segments.
  std::byte* mapped_device_ptr(const std::byte* host) const;
  /// `update device` through the present table (host-address based).
  void mapped_update_device_async(int queue, std::byte* host, Bytes n);
  /// `update self` through the present table.
  void mapped_update_self_async(int queue, std::byte* host, Bytes n);

  /// Equivalent of acc_get_cuda_stream(): the underlying stream of a queue,
  /// so raw runtime copies (the paper's mixed CUDA+OpenACC technique, §IV)
  /// can be interleaved with OpenACC kernels on the same queue.
  gpu::Stream& queue_stream(int queue);

  /// Number of async queues materialised so far.
  int live_queues() const { return static_cast<int>(queues_.size()); }

 private:
  friend class DataRegion;
  /// Queue-management host overhead charged per async operation.
  void charge_async_overhead();

  gpu::Gpu& gpu_;
  AccConfig config_;
  std::map<int, gpu::Stream*> queues_;
  struct Mapped {
    Bytes size;
    std::byte* device;
  };
  std::map<const std::byte*, Mapped> mapped_;  // keyed by host base
};

}  // namespace gpupipe::acc
