// OpenCL-flavoured interop (§IV's AMD path).
//
// On AMD the paper's prototype sits on OpenCL, where buffers are opaque
// `cl_mem` handles rather than pointers — which "is not compatible with
// deviceptr() in PGI's OpenACC", so the paper runs "a small OpenCL kernel
// to extract the pointer from the cl_mem data type before passing it to
// the OpenACC kernel ... only once at the beginning of the benchmark".
//
// This header reproduces those mechanics: `ClMem` is an opaque handle
// (deliberately NOT convertible to a pointer), `cl_create_buffer` /
// `cl_enqueue_write_buffer` / `cl_enqueue_read_buffer` mirror the OpenCL
// entry points on top of the simulated device, and
// `cl_extract_device_pointer` performs the paper's one-time
// pointer-extraction kernel so the handle's memory can be used with
// pointer-based kernels afterwards.
#pragma once

#include <cstring>

#include "gpu/gpu.hpp"

namespace gpupipe::acc {

/// Opaque device buffer handle, like cl_mem: owns nothing, reveals nothing.
class ClMem {
 public:
  ClMem() = default;
  bool valid() const { return ptr_ != nullptr; }
  Bytes size() const { return size_; }

 private:
  friend ClMem cl_create_buffer(gpu::Gpu& g, Bytes size);
  friend void cl_release_buffer(gpu::Gpu& g, ClMem& mem);
  friend std::byte* cl_extract_device_pointer(gpu::Gpu& g, const ClMem& mem);
  friend void cl_enqueue_write_buffer(gpu::Gpu& g, gpu::Stream& queue, const ClMem& mem,
                                      Bytes offset, const std::byte* host, Bytes n);
  friend void cl_enqueue_read_buffer(gpu::Gpu& g, gpu::Stream& queue, const ClMem& mem,
                                     Bytes offset, std::byte* host, Bytes n);
  std::byte* ptr_ = nullptr;
  Bytes size_ = 0;
};

/// clCreateBuffer analogue: allocates device memory behind an opaque handle.
inline ClMem cl_create_buffer(gpu::Gpu& g, Bytes size) {
  ClMem m;
  m.ptr_ = g.device_malloc(size);
  m.size_ = size;
  return m;
}

/// clReleaseMemObject analogue.
inline void cl_release_buffer(gpu::Gpu& g, ClMem& mem) {
  require(mem.valid(), "cl_release_buffer of an invalid handle");
  g.device_free(mem.ptr_);
  mem = ClMem{};
}

/// clEnqueueWriteBuffer analogue (async on the given command queue).
inline void cl_enqueue_write_buffer(gpu::Gpu& g, gpu::Stream& queue, const ClMem& mem,
                                    Bytes offset, const std::byte* host, Bytes n) {
  require(mem.valid(), "write to an invalid cl_mem");
  require(offset + n <= mem.size_, "cl_enqueue_write_buffer out of buffer bounds");
  g.memcpy_h2d_async(mem.ptr_ + offset, host, n, queue);
}

/// clEnqueueReadBuffer analogue.
inline void cl_enqueue_read_buffer(gpu::Gpu& g, gpu::Stream& queue, const ClMem& mem,
                                   Bytes offset, std::byte* host, Bytes n) {
  require(mem.valid(), "read from an invalid cl_mem");
  require(offset + n <= mem.size_, "cl_enqueue_read_buffer out of buffer bounds");
  g.memcpy_d2h_async(host, mem.ptr_ + offset, n, queue);
}

/// The paper's pointer-extraction trick: a tiny kernel writes the buffer's
/// device address somewhere readable, paying one launch + one transfer —
/// "since we only do this procedure once at the beginning of the benchmark
/// ... it has little performance impact". Returns the raw device pointer
/// usable with pointer-based (deviceptr-style) kernels.
inline std::byte* cl_extract_device_pointer(gpu::Gpu& g, const ClMem& mem) {
  require(mem.valid(), "cannot extract a pointer from an invalid cl_mem");
  std::byte* staging = g.device_malloc(sizeof(void*));
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(mem.ptr_);
  // The tiny kernel stores the buffer's address into the staging word.
  gpu::KernelDesc extract;
  extract.name = "cl-extract-ptr";
  extract.flops = 1.0;
  extract.bytes = sizeof(void*);
  extract.body = [staging, addr] { std::memcpy(staging, &addr, sizeof(addr)); };
  extract.effects.writes.push_back({staging, sizeof(void*)});
  g.launch(g.default_stream(), std::move(extract));
  // ... and the host reads it back, paying the one-time transfer.
  std::uintptr_t value = 0;
  g.memcpy_d2h(reinterpret_cast<std::byte*>(&value), staging, sizeof(void*));
  g.device_free(staging);
  if (!g.functional()) value = addr;  // Modeled mode skipped the kernel body
  return reinterpret_cast<std::byte*>(value);
}

}  // namespace gpupipe::acc
