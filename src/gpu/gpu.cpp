#include "gpu/gpu.hpp"

#include <cstring>

namespace gpupipe::gpu {

namespace {
// Fake address-space bases keep Modeled-mode pointers from the three memory
// spaces disjoint (so bounds checks still work without backing store).
constexpr std::uintptr_t kDeviceBase = 0x2000'0000'0000ULL;
constexpr std::uintptr_t kPinnedBase = 0x3000'0000'0000ULL;
constexpr std::uintptr_t kPageableBase = 0x3800'0000'0000ULL;
}  // namespace

namespace {
// Each device gets a disjoint slice of the Modeled-mode fake address space
// so bounds checks stay meaningful with several devices per context.
std::uintptr_t next_device_base() {
  static std::uintptr_t base = kDeviceBase;
  const std::uintptr_t b = base;
  base += 0x0100'0000'0000ULL;  // 1 TiB apart
  return b;
}
}  // namespace

Gpu::Gpu(DeviceProfile profile, ExecMode mode, std::shared_ptr<SharedContext> context)
    : profile_(std::move(profile)),
      mode_(mode),
      ctx_(context ? std::move(context) : make_shared_context()),
      device_mem_(mode, profile_.usable_memory(), profile_.alloc_alignment,
                  next_device_base()) {
  if (!ctx_->host_pinned) {
    ctx_->host_pinned = std::make_unique<Allocator>(mode, 0, 64, kPinnedBase);
    ctx_->host_pageable = std::make_unique<Allocator>(mode, 0, 64, kPageableBase);
  }
  require(ctx_->host_pinned->mode() == mode,
          "all devices sharing a context must use the same ExecMode");
  require(profile_.total_memory > profile_.reserved_memory, "profile has no usable memory");
  require(profile_.pcie_bandwidth > 0 && profile_.mem_bandwidth > 0 && profile_.peak_flops > 0,
          "profile throughputs must be positive");
  sim::Simulator& sim = ctx_->sim;
  h2d_ = std::make_unique<sim::Engine>(sim, "h2d", profile_.h2d_engines);
  if (!profile_.unified_copy_engine)
    d2h_engine_ = std::make_unique<sim::Engine>(sim, "d2h", profile_.d2h_engines);
  compute_ = std::make_unique<sim::Engine>(sim, "compute", profile_.max_concurrent_kernels);
  command_ = std::make_unique<sim::Engine>(sim, "command", 1 << 20);
  streams_.emplace_back(Stream{next_stream_id_++, "stream0"});
  default_stream_ = &streams_.back();
}

Gpu::~Gpu() = default;

// --- Streams and events ---

Stream& Gpu::create_stream(std::string name) {
  host_advance(profile_.api_call_host_overhead);
  const int id = next_stream_id_++;
  if (name.empty()) name = "stream" + std::to_string(id);
  streams_.emplace_back(Stream{id, std::move(name)});
  ++live_streams_;
  max_live_streams_ = std::max(max_live_streams_, live_streams_);
  return streams_.back();
}

void Gpu::destroy_stream(Stream& s) {
  require(&s != default_stream_, "cannot destroy the default stream");
  host_advance(profile_.api_call_host_overhead);
  ensure(live_streams_ > 0, "live stream count underflow");
  --live_streams_;
  s.last_.reset();
}

EventPtr Gpu::record_event(Stream& s) {
  host_advance(profile_.api_call_host_overhead);
  auto marker = submit(s, *command_, 0.0, sim::SpanKind::Sync, "event(" + s.name() + ")", 0,
                       {}, {});
  return EventPtr(new GpuEvent(std::move(marker)));
}

void Gpu::wait_event(Stream& s, const EventPtr& ev) {
  require(ev != nullptr, "wait_event on null event");
  host_advance(profile_.api_call_host_overhead);
  auto marker =
      sim::Task::create(*command_, 0.0, "wait-event(" + s.name() + ")");
  if (s.last_) marker->depends_on(s.last_);
  marker->depends_on(ev->task_);
  marker->submit(ctx_->host_time);
  s.last_ = std::move(marker);
}

void Gpu::synchronize() {
  host_advance(profile_.api_call_host_overhead);
  ctx_->sim.run_all();
  ctx_->host_time = std::max(ctx_->host_time, ctx_->sim.now());
}

void Gpu::synchronize(Stream& s) {
  host_advance(profile_.api_call_host_overhead);
  wait_for(s.last_);
}

void Gpu::synchronize(const EventPtr& ev) {
  require(ev != nullptr, "synchronize on null event");
  host_advance(profile_.api_call_host_overhead);
  wait_for(ev->task_);
}

void Gpu::wait_for(const sim::TaskPtr& t) {
  if (!t || t->done()) return;
  ctx_->sim.run_until([&] { return t->done(); });
  ctx_->host_time = std::max(ctx_->host_time, ctx_->sim.now());
}

// --- Memory ---

std::byte* Gpu::device_malloc(Bytes size) {
  host_advance(profile_.api_call_host_overhead);
  return device_mem_.allocate(size);
}

Pitched Gpu::device_malloc_pitched(Bytes width_bytes, Bytes height) {
  host_advance(profile_.api_call_host_overhead);
  return device_mem_.allocate_pitched(width_bytes, height, profile_.pitch_alignment);
}

void Gpu::device_free(std::byte* p) {
  host_advance(profile_.api_call_host_overhead);
  device_mem_.deallocate(p);
}

std::byte* Gpu::host_alloc(Bytes size, bool pinned) {
  host_advance(profile_.api_call_host_overhead);
  return (pinned ? *ctx_->host_pinned : *ctx_->host_pageable).allocate(size);
}

void Gpu::host_free(std::byte* p) {
  host_advance(profile_.api_call_host_overhead);
  if (ctx_->host_pinned->owner_base(p)) {
    ctx_->host_pinned->deallocate(p);
  } else {
    ctx_->host_pageable->deallocate(p);
  }
}

bool Gpu::is_pinned(const std::byte* p) const {
  if (ctx_->host_pinned->owner_base(p) != nullptr) return true;
  auto it = ctx_->registered_host.upper_bound(p);
  if (it == ctx_->registered_host.begin()) return false;
  --it;
  return p < it->first + it->second;
}

void Gpu::host_register(const std::byte* p, Bytes size) {
  require(p != nullptr && size > 0, "host_register needs a non-empty range");
  host_advance(profile_.api_call_host_overhead);
  // Reject overlap with an existing registration.
  auto& reg = ctx_->registered_host;
  auto it = reg.upper_bound(p);
  if (it != reg.end())
    require(p + size <= it->first, "host_register range overlaps an existing registration");
  if (it != reg.begin()) {
    auto prev = std::prev(it);
    require(prev->first + prev->second <= p,
            "host_register range overlaps an existing registration");
  }
  reg.emplace(p, size);
}

void Gpu::host_unregister(const std::byte* p) {
  host_advance(profile_.api_call_host_overhead);
  auto it = ctx_->registered_host.find(p);
  require(it != ctx_->registered_host.end(), "host_unregister of unknown pointer");
  ctx_->registered_host.erase(it);
}

// --- Internal submission ---

sim::TaskPtr Gpu::submit(Stream& s, sim::Engine& engine, SimTime duration, sim::SpanKind kind,
                         std::string label, Bytes bytes, std::function<void()> payload,
                         MemEffects effects) {
  // Hardware stream arbitration: every extra live stream adds scheduling
  // cost to every operation (except pure command markers).
  if (&engine != command_.get() && live_streams_ > 1)
    duration += profile_.sched_overhead_per_stream * (live_streams_ - 1);

  auto task = sim::Task::create(engine, duration, label,
                                functional() ? std::move(payload) : std::function<void()>{});
  if (s.last_) task->depends_on(s.last_);

  if (ctx_->hazards.enabled() && (!effects.reads.empty() || !effects.writes.empty())) {
    sim::Task* raw = task.get();
    auto eff = std::make_shared<MemEffects>(std::move(effects));
    task->on_start([this, raw, eff, dur = duration] {
      ctx_->hazards.begin_op(*eff, raw->start_time(), raw->start_time() + dur,
                             raw->label());
    });
  }

  if (trace_.enabled()) {
    if (s.lane_id_ == 0) s.lane_id_ = trace_.intern(s.name());
    // The plan node and job trace id are captured now, at submission: by the
    // time the span is recorded (completion) the executor has moved on to
    // other nodes and the scheduler to other jobs.
    task->set_span(trace_, kind, s.lane_id_, trace_.intern(label), bytes,
                   trace_.plan_node(), trace_.trace_id());
  }

  task->submit(ctx_->host_time);
  s.last_ = task;
  return task;
}

// --- Transfers ---

SimTime Gpu::copy_duration(const CopyShape& shape, bool pinned) const {
  const double bw = profile_.transfer_bandwidth(shape.total(), shape.width, pinned);
  return profile_.copy_setup_latency +
         profile_.copy_segment_latency * static_cast<double>(shape.height - 1) +
         static_cast<double>(shape.total()) / bw;
}

sim::TaskPtr Gpu::copy_common(Stream& s, sim::Engine& engine, sim::SpanKind kind,
                              std::byte* dst, Bytes dpitch, const std::byte* src, Bytes spitch,
                              CopyShape shape, bool pinned, const char* what) {
  require(shape.width > 0 && shape.height > 0, "copy extent must be positive");
  require(dpitch >= shape.width && spitch >= shape.width, "pitch smaller than row width");
  host_advance(profile_.api_call_host_overhead);

  const Bytes dspan = (shape.height - 1) * dpitch + shape.width;
  const Bytes sspan = (shape.height - 1) * spitch + shape.width;

  // Bounds-check whichever side lives in device memory (works in both modes
  // because the allocator tracks fake addresses too).
  const bool dst_is_device = kind == sim::SpanKind::H2D || kind == sim::SpanKind::D2D;
  const bool src_is_device = kind == sim::SpanKind::D2H || kind == sim::SpanKind::D2D;
  if (dst_is_device)
    require(device_mem_.contains(dst, dspan), "copy destination out of device bounds");
  if (src_is_device)
    require(device_mem_.contains(src, sspan), "copy source out of device bounds");

  std::function<void()> payload;
  if (functional()) {
    payload = [dst, dpitch, src, spitch, shape] {
      for (Bytes r = 0; r < shape.height; ++r)
        std::memcpy(dst + r * dpitch, src + r * spitch, shape.width);
    };
  }

  MemEffects effects;
  if (dst_is_device) effects.writes.push_back({dst, shape.width, dpitch, shape.height});
  if (src_is_device) effects.reads.push_back({src, shape.width, spitch, shape.height});

  return submit(s, engine, copy_duration(shape, pinned), kind,
                std::string(what) + "[" + std::to_string(shape.total()) + "B]", shape.total(),
                std::move(payload), std::move(effects));
}

sim::TaskPtr Gpu::memcpy_h2d_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s) {
  return copy_common(s, *h2d_, sim::SpanKind::H2D, dst, n, src, n, CopyShape{n, 1},
                     is_pinned(src), "h2d");
}

sim::TaskPtr Gpu::memcpy_d2h_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s) {
  return copy_common(s, d2h(), sim::SpanKind::D2H, dst, n, src, n, CopyShape{n, 1},
                     is_pinned(dst), "d2h");
}

sim::TaskPtr Gpu::memcpy_d2d_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s) {
  // Device-to-device copies run at device memory bandwidth on the H2D
  // engine; they are rare in this workload set.
  require(n > 0, "copy extent must be positive");
  host_advance(profile_.api_call_host_overhead);
  require(device_mem_.contains(dst, n), "copy destination out of device bounds");
  require(device_mem_.contains(src, n), "copy source out of device bounds");
  std::function<void()> payload;
  if (functional()) payload = [dst, src, n] { std::memmove(dst, src, n); };
  MemEffects effects;
  effects.writes.push_back({dst, n});
  effects.reads.push_back({src, n});
  const SimTime dur =
      profile_.copy_setup_latency + static_cast<double>(n) / profile_.mem_bandwidth;
  return submit(s, *h2d_, dur, sim::SpanKind::D2D, "d2d[" + std::to_string(n) + "B]", n,
                std::move(payload), std::move(effects));
}

sim::TaskPtr Gpu::memcpy_p2p_async(Gpu& peer, std::byte* dst_on_peer, const std::byte* src,
                                   Bytes n, Stream& s) {
  require(n > 0, "copy extent must be positive");
  require(peer.ctx_ == ctx_, "peer-to-peer copy requires devices sharing one context");
  host_advance(profile_.api_call_host_overhead);
  require(device_mem_.contains(src, n), "p2p source out of device bounds");
  require(peer.device_mem_.contains(dst_on_peer, n), "p2p destination out of device bounds");
  std::function<void()> payload;
  if (functional()) payload = [dst_on_peer, src, n] { std::memcpy(dst_on_peer, src, n); };
  MemEffects effects;
  effects.reads.push_back({src, n});
  effects.writes.push_back({dst_on_peer, n});
  const double bw = std::min(profile_.pcie_bandwidth, peer.profile_.pcie_bandwidth);
  const SimTime dur = profile_.copy_setup_latency + static_cast<double>(n) / bw;
  return submit(s, *h2d_, dur, sim::SpanKind::D2D, "p2p[" + std::to_string(n) + "B]", n,
                std::move(payload), std::move(effects));
}

sim::TaskPtr Gpu::memcpy2d_h2d_async(std::byte* dst, Bytes dpitch, const std::byte* src,
                                     Bytes spitch, Bytes width, Bytes height, Stream& s) {
  return copy_common(s, *h2d_, sim::SpanKind::H2D, dst, dpitch, src, spitch,
                     CopyShape{width, height}, is_pinned(src), "h2d2D");
}

sim::TaskPtr Gpu::memcpy2d_d2h_async(std::byte* dst, Bytes dpitch, const std::byte* src,
                                     Bytes spitch, Bytes width, Bytes height, Stream& s) {
  return copy_common(s, d2h(), sim::SpanKind::D2H, dst, dpitch, src, spitch,
                     CopyShape{width, height}, is_pinned(dst), "d2h2D");
}

void Gpu::memcpy_h2d(std::byte* dst, const std::byte* src, Bytes n) {
  wait_for(memcpy_h2d_async(dst, src, n, *default_stream_));
}

void Gpu::memcpy_d2h(std::byte* dst, const std::byte* src, Bytes n) {
  wait_for(memcpy_d2h_async(dst, src, n, *default_stream_));
}

// --- Kernels ---

sim::TaskPtr Gpu::launch(Stream& s, KernelDesc desc) {
  host_advance(profile_.api_call_host_overhead);
  SimTime duration;
  if (desc.fixed_duration) {
    duration = *desc.fixed_duration;
  } else {
    const double compute = desc.flops / profile_.peak_flops;
    const double memory = static_cast<double>(desc.bytes) / profile_.mem_bandwidth;
    duration = profile_.kernel_launch_latency + std::max(compute, memory);
  }
  return submit(s, *compute_, duration, sim::SpanKind::Kernel, desc.name,
                desc.bytes, std::move(desc.body), std::move(desc.effects));
}

// --- Host clock ---

void Gpu::host_compute(SimTime t) {
  require(t >= 0.0, "host compute time must be non-negative");
  host_advance(t);
}

}  // namespace gpupipe::gpu
