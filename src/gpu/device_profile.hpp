// Device performance/capacity profiles.
//
// A DeviceProfile captures everything the simulator needs to time GPU
// operations: memory capacity, roofline throughputs, the host<->device
// transfer bandwidth curve, per-operation latencies, and engine topology.
// Two calibrated profiles ship with the library, modelled on the two GPUs of
// the paper's evaluation (NVIDIA Tesla K40m and AMD Radeon HD 7970).
#pragma once

#include <string>

#include "common/units.hpp"

namespace gpupipe::gpu {

/// Tunable description of a simulated GPU.
struct DeviceProfile {
  std::string name;

  // --- Memory capacity ---
  /// Physical device memory.
  Bytes total_memory = 0;
  /// Memory unavailable to allocations (ECC overhead, driver context,
  /// command queues). usable = total - reserved.
  Bytes reserved_memory = 0;
  /// Baseline footprint the driver/runtime context contributes to *observed*
  /// GPU memory usage (what nvidia-smi style accounting reports on top of
  /// client allocations). Reported, not subtracted from usable memory.
  Bytes context_memory = 0;
  /// Additional observed footprint per live stream (command queues,
  /// scheduling state) — the paper notes memory use grows slightly with the
  /// stream count (§V-C).
  Bytes per_stream_memory = 0;

  // --- Roofline throughput ---
  /// Peak double-precision throughput (flop/s).
  double peak_flops = 0.0;
  /// Device memory bandwidth (bytes/s).
  double mem_bandwidth = 0.0;

  // --- Host <-> device transfers ---
  /// Peak PCIe transfer bandwidth (bytes/s), reached asymptotically.
  double pcie_bandwidth = 0.0;
  /// Half-saturation size: a transfer of this many *contiguous* bytes runs
  /// at half of peak bandwidth (bw(s) = peak * s / (s + half_saturation)).
  /// Devices needing large transfers to reach peak have a large value; this
  /// is the mechanism behind the paper's AMD chunk-count sensitivity (§V-B).
  Bytes pcie_half_saturation = 0;
  /// Row-width half-saturation for 2-D (strided) transfers: a transfer
  /// whose contiguous rows are this many bytes wide runs at half the rate a
  /// fully contiguous transfer of the same total size would. Models the
  /// DMA engine's per-row re-arm cost — why the paper's non-contiguous
  /// column-block copies "take much longer" (SSV-E).
  Bytes pcie_row_half_saturation = 0;
  /// Bandwidth multiplier (<1) when the host buffer is pageable rather than
  /// pinned (extra staging copy through the driver's pinned pool).
  double pageable_penalty = 1.0;

  // --- Per-operation latencies ---
  /// Device-side fixed cost to set up one DMA transfer.
  SimTime copy_setup_latency = 0.0;
  /// Extra cost per non-contiguous segment (row) of a 2-D transfer.
  SimTime copy_segment_latency = 0.0;
  /// Device-side fixed cost to launch one kernel.
  SimTime kernel_launch_latency = 0.0;
  /// Host-side CPU time consumed by one runtime API call (enqueue, event
  /// record, stream create, ...). Many small chunks => many API calls; on
  /// devices/drivers where this is large, fine-grained pipelining loses.
  SimTime api_call_host_overhead = 0.0;
  /// Additional device scheduling cost per operation for every live stream
  /// beyond the first (hardware queue arbitration).
  SimTime sched_overhead_per_stream = 0.0;

  // --- Engine topology ---
  /// Concurrent host-to-device DMA channels.
  int h2d_engines = 1;
  /// Concurrent device-to-host DMA channels.
  int d2h_engines = 1;
  /// When true, H2D and D2H share a single DMA engine (no full-duplex).
  bool unified_copy_engine = false;
  /// Kernels that can execute concurrently (1 = kernels serialise).
  int max_concurrent_kernels = 1;

  // --- Allocation granularity ---
  Bytes pitch_alignment = 512;
  Bytes alloc_alignment = 256;

  /// Memory available to client allocations.
  Bytes usable_memory() const { return total_memory - reserved_memory; }

  /// Effective PCIe bandwidth for a transfer of `total` bytes arranged as
  /// rows of `row_width` bytes (row_width == total for 1-D copies). The
  /// total size governs startup amortisation; the row width governs the
  /// strided-transfer efficiency.
  double transfer_bandwidth(Bytes total, Bytes row_width, bool pinned) const {
    const double t = static_cast<double>(total);
    double bw = pcie_bandwidth * t / (t + static_cast<double>(pcie_half_saturation));
    if (row_width < total) {
      const double w = static_cast<double>(row_width);
      bw *= w / (w + static_cast<double>(pcie_row_half_saturation));
    }
    if (!pinned) bw *= pageable_penalty;
    return bw;
  }
};

/// NVIDIA Tesla K40m-like profile (the paper's primary platform).
DeviceProfile nvidia_k40m();

/// AMD Radeon HD 7970-like profile (the paper's secondary platform):
/// smaller memory, higher per-call overheads, and a transfer bandwidth curve
/// that only saturates for multi-megabyte contiguous segments.
DeviceProfile amd_hd7970();

/// Intel Xeon Phi 7120-like coprocessor profile (the paper's future-work
/// platform): lower double-precision peak than the GPUs, high on-card
/// bandwidth, but offload transfers over a software-managed channel with
/// substantial per-operation latency.
DeviceProfile intel_xeonphi();

}  // namespace gpupipe::gpu
