// Device and host memory management for the simulated GPU.
//
// In Functional mode, device allocations are backed by real host memory so
// kernels and copies execute for real (tests/examples validate results
// against references). In Modeled mode, allocations are address-space-only:
// paper-scale datasets (up to ~15 GB) can be "allocated" and timed without
// touching physical RAM; kernel bodies and copy payloads are skipped.
//
// The allocator tracks current and peak usage — the source of every memory
// figure in the paper (Figs. 6 and 10) — and throws OomError when an
// allocation exceeds usable device memory, which is how the two rightmost
// matmul sizes of Fig. 9 fail for the non-buffered versions.
#pragma once

#include <cstddef>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::gpu {

/// Thrown when a device allocation does not fit in usable memory.
class OomError : public Error {
 public:
  using Error::Error;
};

/// Whether allocations carry real backing store and payloads execute.
enum class ExecMode {
  Functional,  ///< real memory, kernels/copies actually run
  Modeled,     ///< address-space only, timing-only execution
};

/// Current/peak usage snapshot.
struct MemStats {
  Bytes current = 0;
  Bytes peak = 0;
  std::uint64_t allocations = 0;  ///< live allocation count
  std::uint64_t total_allocations = 0;
};

/// A 2-D (pitched) device allocation.
struct Pitched {
  std::byte* ptr = nullptr;
  Bytes pitch = 0;  ///< bytes per row, >= requested width
};

/// Arena-style allocator for one memory space (device memory or pinned host
/// memory). Tracks every allocation for usage accounting and bounds queries.
class Allocator {
 public:
  /// `capacity` = usable bytes (0 = unlimited, used for host memory);
  /// `fake_base` = synthetic address base used in Modeled mode.
  Allocator(ExecMode mode, Bytes capacity, Bytes alignment, std::uintptr_t fake_base);
  ~Allocator();
  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates `size` bytes; throws OomError if capacity would be exceeded.
  std::byte* allocate(Bytes size);

  /// Allocates a pitched 2-D region: `height` rows, each at least
  /// `width_bytes` wide, rows aligned to `pitch_alignment`.
  Pitched allocate_pitched(Bytes width_bytes, Bytes height, Bytes pitch_alignment);

  /// Frees a pointer previously returned by allocate/allocate_pitched.
  void deallocate(std::byte* p);

  /// Frees everything still live (used at teardown).
  void release_all();

  /// True when [p, p+size) lies inside one live allocation.
  bool contains(const std::byte* p, Bytes size) const;

  /// Returns the base pointer of the live allocation containing `p`, or
  /// nullptr when `p` is not managed by this allocator.
  const std::byte* owner_base(const std::byte* p) const;

  const MemStats& stats() const { return stats_; }
  ExecMode mode() const { return mode_; }
  Bytes capacity() const { return capacity_; }

  /// Resets the peak-usage watermark to current usage.
  void reset_peak() { stats_.peak = stats_.current; }

 private:
  struct Block {
    Bytes size = 0;
    std::unique_ptr<std::byte[]> backing;  // null in Modeled mode
  };

  ExecMode mode_;
  Bytes capacity_;
  Bytes alignment_;
  std::uintptr_t next_fake_;
  MemStats stats_;
  std::map<std::uintptr_t, Block> blocks_;  // keyed by address
};

}  // namespace gpupipe::gpu
