#include "gpu/device_profile.hpp"

namespace gpupipe::gpu {

// Calibration notes
// -----------------
// Capacities and roofline numbers follow the published specifications of the
// two cards. Latency/overhead parameters are calibrated once so that the
// *shape* of every figure in the paper is reproduced (see EXPERIMENTS.md);
// they are in the plausible range reported by microbenchmark literature for
// these driver stacks (kernel launch ~5-10us, copy setup ~5-20us).

DeviceProfile nvidia_k40m() {
  DeviceProfile p;
  p.name = "NVIDIA Tesla K40m (simulated)";
  // 12 GB GDDR5. The reserve models ECC overhead plus the CUDA context and
  // is sized so that a 3 x 20480^2 double matmul working set (10.07 GB) does
  // not fit, matching the out-of-memory boundary of Fig. 9/10.
  p.total_memory = 12 * GiB;
  p.reserved_memory = 2880 * MiB;
  p.context_memory = 72 * MiB;
  p.per_stream_memory = 6 * MiB;
  p.peak_flops = gflops(1430.0);        // 1.43 TFLOP/s double precision
  p.mem_bandwidth = gbps(288.0);        // GDDR5 peak
  // Effective host<->device bandwidth of the paper-era testbed (shared by
  // both directions: the DMA path is modelled half-duplex, which is what
  // makes "perfect overlap" top out at the paper's 2x bound, SSV-A).
  p.pcie_bandwidth = gbps(6.0);
  p.pcie_half_saturation = 256 * KiB;   // saturates quickly
  p.pcie_row_half_saturation = 2 * KiB;
  p.pageable_penalty = 0.55;
  p.copy_setup_latency = usec(8.0);
  p.copy_segment_latency = usec(0.1);
  p.kernel_launch_latency = usec(8.0);
  p.api_call_host_overhead = usec(4.0);
  p.sched_overhead_per_stream = usec(1.0);
  p.h2d_engines = 1;
  p.d2h_engines = 1;
  p.unified_copy_engine = true;  // H2D and D2H share the DMA path
  p.max_concurrent_kernels = 1;
  p.pitch_alignment = 512;
  p.alloc_alignment = 256;
  return p;
}

DeviceProfile amd_hd7970() {
  DeviceProfile p;
  p.name = "AMD Radeon HD 7970 (simulated)";
  p.total_memory = 3 * GiB;
  p.reserved_memory = 256 * MiB;
  p.context_memory = 64 * MiB;
  p.per_stream_memory = 8 * MiB;
  p.peak_flops = gflops(947.0);         // 0.947 TFLOP/s double precision
  p.mem_bandwidth = gbps(264.0);
  // The paper measured ~6 GB/s for the Naive version's large transfers but
  // only ~2 GB/s once the data was split into per-chunk pieces (§V-B). A
  // large half-saturation size reproduces that: small contiguous segments
  // run far below peak.
  p.pcie_bandwidth = gbps(6.5);
  p.pcie_half_saturation = 1280 * KiB;
  p.pcie_row_half_saturation = 8 * KiB;
  p.pageable_penalty = 0.5;
  // The OpenCL driver stack carries noticeably higher per-call costs; the
  // paper attributes the AMD pipelining loss to "more API calls and high
  // scheduling overhead".
  // The paper's AMD APP Profiler run attributes the pipelining loss to
  // per-transfer setup/scheduling cost; on this OpenCL stack each enqueued
  // transfer carries substantial driver-side staging work.
  p.copy_setup_latency = usec(350.0);
  p.copy_segment_latency = usec(0.5);
  p.kernel_launch_latency = usec(20.0);
  p.api_call_host_overhead = usec(15.0);
  p.sched_overhead_per_stream = usec(6.0);
  p.h2d_engines = 1;
  p.d2h_engines = 1;
  p.unified_copy_engine = true;
  p.max_concurrent_kernels = 1;
  p.pitch_alignment = 256;
  p.alloc_alignment = 256;
  return p;
}

DeviceProfile intel_xeonphi() {
  DeviceProfile p;
  p.name = "Intel Xeon Phi 7120 (simulated)";
  p.total_memory = 16 * GiB;
  p.reserved_memory = 1 * GiB;  // card-side uOS and COI daemon
  p.context_memory = 256 * MiB;
  p.per_stream_memory = 4 * MiB;
  p.peak_flops = gflops(1200.0);  // 1.2 TFLOP/s double precision
  p.mem_bandwidth = gbps(200.0);  // effective GDDR5 stream bandwidth
  // Offload transfers run through the COI software stack: decent peak but
  // long ramp-up and high per-operation latency.
  p.pcie_bandwidth = gbps(6.0);
  p.pcie_half_saturation = 640 * KiB;
  p.pcie_row_half_saturation = 4 * KiB;
  p.pageable_penalty = 0.6;
  p.copy_setup_latency = usec(60.0);
  p.copy_segment_latency = usec(0.3);
  p.kernel_launch_latency = usec(90.0);  // offload region spin-up
  p.api_call_host_overhead = usec(10.0);
  p.sched_overhead_per_stream = usec(3.0);
  p.h2d_engines = 1;
  p.d2h_engines = 1;
  p.unified_copy_engine = true;
  p.max_concurrent_kernels = 1;
  p.pitch_alignment = 64;
  p.alloc_alignment = 64;
  return p;
}

}  // namespace gpupipe::gpu
