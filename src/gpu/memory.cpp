#include "gpu/memory.hpp"

#include <string>

namespace gpupipe::gpu {

namespace {
constexpr Bytes round_up(Bytes v, Bytes align) { return (v + align - 1) / align * align; }
}  // namespace

Allocator::Allocator(ExecMode mode, Bytes capacity, Bytes alignment, std::uintptr_t fake_base)
    : mode_(mode), capacity_(capacity), alignment_(alignment), next_fake_(fake_base) {
  require(alignment >= 1, "alignment must be positive");
}

Allocator::~Allocator() { release_all(); }

std::byte* Allocator::allocate(Bytes size) {
  require(size > 0, "allocation size must be positive");
  const Bytes rounded = round_up(size, alignment_);
  if (capacity_ != 0 && stats_.current + rounded > capacity_) {
    throw OomError("out of device memory: requested " + std::to_string(rounded) +
                   " bytes with " + std::to_string(capacity_ - stats_.current) +
                   " of " + std::to_string(capacity_) + " free");
  }

  Block block;
  block.size = rounded;
  std::uintptr_t addr;
  if (mode_ == ExecMode::Functional) {
    block.backing = std::make_unique<std::byte[]>(rounded);
    addr = reinterpret_cast<std::uintptr_t>(block.backing.get());
  } else {
    addr = round_up(next_fake_, alignment_);
    next_fake_ = addr + rounded;
  }
  blocks_.emplace(addr, std::move(block));

  stats_.current += rounded;
  stats_.peak = std::max(stats_.peak, stats_.current);
  ++stats_.allocations;
  ++stats_.total_allocations;
  return reinterpret_cast<std::byte*>(addr);
}

Pitched Allocator::allocate_pitched(Bytes width_bytes, Bytes height, Bytes pitch_alignment) {
  require(width_bytes > 0 && height > 0, "pitched dimensions must be positive");
  const Bytes pitch = round_up(width_bytes, pitch_alignment);
  return Pitched{allocate(pitch * height), pitch};
}

void Allocator::deallocate(std::byte* p) {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  auto it = blocks_.find(addr);
  require(it != blocks_.end(), "deallocate of pointer not owned by this allocator");
  ensure(stats_.current >= it->second.size, "usage accounting underflow");
  stats_.current -= it->second.size;
  --stats_.allocations;
  blocks_.erase(it);
}

void Allocator::release_all() {
  stats_.current = 0;
  stats_.allocations = 0;
  blocks_.clear();
}

bool Allocator::contains(const std::byte* p, Bytes size) const {
  return owner_base(p) != nullptr &&
         owner_base(p + (size == 0 ? 0 : size - 1)) == owner_base(p);
}

const std::byte* Allocator::owner_base(const std::byte* p) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) return nullptr;
  --it;
  if (addr < it->first + it->second.size) return reinterpret_cast<const std::byte*>(it->first);
  return nullptr;
}

}  // namespace gpupipe::gpu
