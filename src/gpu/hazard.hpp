// Hazard (missing-dependency) detection for device memory.
//
// Every operation that touches device memory can declare the byte ranges it
// reads and writes. When an operation *starts* in virtual time, the tracker
// verifies that no in-flight operation conflicts with it:
//   * a read starting before a producing write completes  => RAW hazard
//   * a write starting before an overlapping read/write completes => WAR/WAW
//
// A correctly synchronised pipeline (stream order + events) never trips
// these checks, because dependencies force start >= producer end. A missing
// dependency puts the two operations on concurrent engines and is caught the
// moment the consumer starts. Failure-injection tests rely on this to prove
// the pipeline executor's event chaining is load-bearing.
//
// Ranges may be strided (2-D): `rows` segments of `size` bytes, `stride`
// bytes apart — the shape of pitched-buffer accesses. Overlap tests are
// exact for strided-vs-contiguous and strided-vs-strided shapes.
//
// Note: two racing operations that happen to share a capacity-1 engine
// serialise physically and are not flagged — the tracker detects hazards
// that manifest in the simulated schedule, not all latent ones.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::gpu {

/// Thrown when an operation consumes device data before its producer
/// completed (or overwrites data still being read).
class HazardError : public Error {
 public:
  using Error::Error;
};

/// A (possibly strided) byte range in device memory touched by an operation:
/// `rows` segments of `size` bytes starting `stride` bytes apart. A plain
/// contiguous range has rows == 1.
struct MemRange {
  const std::byte* ptr = nullptr;
  Bytes size = 0;
  Bytes stride = 0;  ///< distance between segment starts; ignored if rows==1
  Bytes rows = 1;

  /// Total extent from first byte to one past the last byte.
  Bytes span() const { return rows <= 1 ? size : (rows - 1) * stride + size; }
};

/// Declared memory effects of one operation.
struct MemEffects {
  std::vector<MemRange> reads;
  std::vector<MemRange> writes;
};

/// True when the two (possibly strided) ranges share at least one byte.
bool ranges_overlap(const MemRange& a, const MemRange& b);

/// One operation of a static schedule submitted for validation *before*
/// execution (see validate_static_schedule). Operations are listed in issue
/// order; ops sharing a queue execute in list order, and `deps` index
/// earlier list entries the op explicitly waits on.
struct StaticOp {
  int queue = 0;
  std::vector<int> deps;
  /// One access in an abstract resource's slot space (e.g. a ring buffer's
  /// slot indices): the op touches slots [lo, hi) of `resource`.
  struct Access {
    int resource = 0;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool write = false;
  };
  std::vector<Access> accesses;
  std::string label;
};

/// Static (pre-execution) schedule validation: proves that every pair of
/// conflicting accesses (overlapping slots, at least one write) is ordered
/// by happens-before — the union of per-queue program order and the `deps`
/// edges. Throws HazardError naming the first unordered pair. A missing
/// slot-reuse edge in an execution plan is caught here before any operation
/// is issued, complementing HazardTracker's runtime detection (which only
/// sees races that manifest in one particular simulated timing).
///
/// Cost: O(ops * queues) for the happens-before closure (per-queue ancestor
/// frontiers — exact because each queue is totally ordered) plus O(total
/// slots touched) for the conflict scan.
void validate_static_schedule(const std::vector<StaticOp>& ops, int num_queues);

/// Tracks in-flight accesses and validates new ones against them.
class HazardTracker {
 public:
  /// Disabling is ignored while GPUPIPE_FORCE_HAZARDS is set in the
  /// environment (CI runs the suite with tracking forced on so code paths
  /// that suspend the tracker still get checked).
  void set_enabled(bool on) { enabled_ = on || force_enabled(); }
  bool enabled() const { return enabled_; }

  /// True when the GPUPIPE_FORCE_HAZARDS environment variable is set to a
  /// non-empty value other than "0" (read once per process).
  static bool force_enabled();

  /// Validates `effects` for an operation starting at `start` and finishing
  /// at `end`, then records its accesses. Throws HazardError on conflict.
  void begin_op(const MemEffects& effects, SimTime start, SimTime end,
                const std::string& label);

  /// Drops records of accesses that completed at or before `now`.
  void prune(SimTime now);

  /// Number of live access records (for tests).
  std::size_t live_records() const { return records_.size(); }

  void clear() { records_.clear(); }

 private:
  struct Record {
    MemRange range;
    SimTime end;
    bool is_write;
    std::string label;
  };

  bool enabled_ = true;
  std::vector<Record> records_;
};

}  // namespace gpupipe::gpu
