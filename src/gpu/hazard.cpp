#include "gpu/hazard.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace gpupipe::gpu {

namespace {
// Two operations whose windows merely touch at one instant are ordered, not
// racing; require a strictly positive overlap beyond this tolerance.
constexpr SimTime kEps = 1e-12;

// Contiguous interval [lo, hi) vs a strided range: any segment of `s`
// intersecting the interval? O(1): a segment r intersects iff its start is
// in (lo - size, hi), i.e. r in [ceil((lo - size + 1 - base)/stride),
// floor((hi - 1 - base)/stride)] clipped to [0, rows).
bool contiguous_vs_strided(const std::byte* lo, const std::byte* hi, const MemRange& s) {
  if (hi <= lo || s.size == 0) return false;
  if (s.rows <= 1 || s.stride == 0) {
    return std::max(lo, s.ptr) < std::min(hi, s.ptr + s.size);
  }
  const auto base = reinterpret_cast<std::intptr_t>(s.ptr);
  const auto ilo = reinterpret_cast<std::intptr_t>(lo);
  const auto ihi = reinterpret_cast<std::intptr_t>(hi);
  const auto stride = static_cast<std::intptr_t>(s.stride);
  const auto size = static_cast<std::intptr_t>(s.size);
  // Smallest r with base + r*stride + size > ilo  <=>  r > (ilo - size - base)/stride
  std::intptr_t r_min = (ilo - size - base) / stride + 1;
  if (base + (r_min - 1) * stride + size > ilo) --r_min;  // fix flooring of negatives
  while (base + r_min * stride + size <= ilo) ++r_min;
  // Largest r with base + r*stride < ihi
  std::intptr_t r_max = (ihi - 1 - base) / stride;
  while (base + r_max * stride >= ihi) --r_max;
  r_min = std::max<std::intptr_t>(r_min, 0);
  r_max = std::min<std::intptr_t>(r_max, static_cast<std::intptr_t>(s.rows) - 1);
  return r_min <= r_max;
}
}  // namespace

bool ranges_overlap(const MemRange& a, const MemRange& b) {
  if (a.size == 0 || b.size == 0) return false;
  // Bounding-box quick reject.
  if (a.ptr + a.span() <= b.ptr || b.ptr + b.span() <= a.ptr) return false;
  if (a.rows <= 1) return contiguous_vs_strided(a.ptr, a.ptr + a.size, b);
  if (b.rows <= 1) return contiguous_vs_strided(b.ptr, b.ptr + b.size, a);
  // Both strided: test each segment of the shorter one (exact; test-scale
  // shapes keep this cheap, and benches disable hazard tracking).
  const MemRange& outer = a.rows <= b.rows ? a : b;
  const MemRange& inner = a.rows <= b.rows ? b : a;
  for (Bytes r = 0; r < outer.rows; ++r) {
    const std::byte* lo = outer.ptr + r * outer.stride;
    if (contiguous_vs_strided(lo, lo + outer.size, inner)) return true;
  }
  return false;
}

void validate_static_schedule(const std::vector<StaticOp>& ops, int num_queues) {
  require(num_queues >= 1, "static schedule needs at least one queue");
  const int n = static_cast<int>(ops.size());

  // Happens-before as per-queue ancestor frontiers: frontier[b][q] is the
  // largest list position on queue q that strictly precedes op b. Because a
  // queue's ops are totally ordered, "a precedes b" is exactly
  // pos(a) <= frontier[b][queue(a)]. Frontiers compose incrementally from
  // the previous op on b's queue and b's explicit deps.
  std::vector<std::vector<int>> frontier(static_cast<std::size_t>(n),
                                         std::vector<int>(static_cast<std::size_t>(num_queues), -1));
  std::vector<int> queue_tail(static_cast<std::size_t>(num_queues), -1);

  auto merge_from = [&](std::vector<int>& dst, int src) {
    const auto& f = frontier[static_cast<std::size_t>(src)];
    for (int q = 0; q < num_queues; ++q)
      dst[static_cast<std::size_t>(q)] = std::max(dst[static_cast<std::size_t>(q)],
                                                  f[static_cast<std::size_t>(q)]);
    const int sq = ops[static_cast<std::size_t>(src)].queue;
    dst[static_cast<std::size_t>(sq)] = std::max(dst[static_cast<std::size_t>(sq)], src);
  };

  // Per (resource, slot): the last writer and the readers since that write.
  struct SlotState {
    int last_writer = -1;
    std::vector<int> readers;
  };
  std::vector<std::vector<SlotState>> slots;  // indexed by resource

  for (int i = 0; i < n; ++i) {
    const StaticOp& op = ops[static_cast<std::size_t>(i)];
    require(0 <= op.queue && op.queue < num_queues,
            "static op '" + op.label + "': queue out of range");
    auto& f = frontier[static_cast<std::size_t>(i)];
    if (queue_tail[static_cast<std::size_t>(op.queue)] >= 0)
      merge_from(f, queue_tail[static_cast<std::size_t>(op.queue)]);
    for (int d : op.deps) {
      require(0 <= d && d < i, "static op '" + op.label + "': dep must index an earlier op");
      merge_from(f, d);
    }
    queue_tail[static_cast<std::size_t>(op.queue)] = i;

    auto ordered_before = [&](int a) {
      const int aq = ops[static_cast<std::size_t>(a)].queue;
      return a <= f[static_cast<std::size_t>(aq)];
    };
    auto conflict = [&](int prior, const char* kind) {
      const StaticOp& p = ops[static_cast<std::size_t>(prior)];
      throw HazardError("static " + std::string(kind) + " hazard: '" + op.label +
                        "' conflicts with '" + p.label +
                        "' without an ordering dependency between them");
    };

    for (const auto& acc : op.accesses) {
      require(acc.resource >= 0 && acc.lo <= acc.hi,
              "static op '" + op.label + "': malformed access");
      if (static_cast<std::size_t>(acc.resource) >= slots.size())
        slots.resize(static_cast<std::size_t>(acc.resource) + 1);
      auto& res = slots[static_cast<std::size_t>(acc.resource)];
      if (static_cast<std::size_t>(acc.hi) > res.size())
        res.resize(static_cast<std::size_t>(acc.hi));
      for (std::int64_t slot = acc.lo; slot < acc.hi; ++slot) {
        SlotState& st = res[static_cast<std::size_t>(slot)];
        if (st.last_writer >= 0 && st.last_writer != i && !ordered_before(st.last_writer))
          conflict(st.last_writer, acc.write ? "write-after-write" : "read-after-write");
        if (acc.write) {
          for (int r : st.readers)
            if (r != i && !ordered_before(r)) conflict(r, "write-after-read");
          st.last_writer = i;
          st.readers.clear();
        } else if (st.readers.empty() || st.readers.back() != i) {
          st.readers.push_back(i);
        }
      }
    }
  }
}

bool HazardTracker::force_enabled() {
  static const bool forced = [] {
    const char* v = std::getenv("GPUPIPE_FORCE_HAZARDS");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return forced;
}

void HazardTracker::begin_op(const MemEffects& effects, SimTime start, SimTime end,
                             const std::string& label) {
  if (!enabled_) return;
  prune(start);

  auto conflict = [&](const Record& r, const char* kind) {
    std::ostringstream os;
    os << kind << " hazard: '" << label << "' starting at " << start
       << "s touches memory still in use by '" << r.label << "' (completes at " << r.end
       << "s)";
    throw HazardError(os.str());
  };

  for (const auto& m : effects.reads) {
    for (const auto& r : records_) {
      if (r.is_write && r.end > start + kEps && ranges_overlap(r.range, m))
        conflict(r, "read-after-write");
    }
  }
  for (const auto& m : effects.writes) {
    for (const auto& r : records_) {
      if (r.end > start + kEps && ranges_overlap(r.range, m))
        conflict(r, r.is_write ? "write-after-write" : "write-after-read");
    }
  }

  for (const auto& m : effects.reads)
    if (m.size > 0) records_.push_back({m, end, false, label});
  for (const auto& m : effects.writes)
    if (m.size > 0) records_.push_back({m, end, true, label});
}

void HazardTracker::prune(SimTime now) {
  std::erase_if(records_, [&](const Record& r) { return r.end <= now + kEps; });
}

}  // namespace gpupipe::gpu
