#include "gpu/hazard.hpp"

#include <algorithm>
#include <sstream>

namespace gpupipe::gpu {

namespace {
// Two operations whose windows merely touch at one instant are ordered, not
// racing; require a strictly positive overlap beyond this tolerance.
constexpr SimTime kEps = 1e-12;

// Contiguous interval [lo, hi) vs a strided range: any segment of `s`
// intersecting the interval? O(1): a segment r intersects iff its start is
// in (lo - size, hi), i.e. r in [ceil((lo - size + 1 - base)/stride),
// floor((hi - 1 - base)/stride)] clipped to [0, rows).
bool contiguous_vs_strided(const std::byte* lo, const std::byte* hi, const MemRange& s) {
  if (hi <= lo || s.size == 0) return false;
  if (s.rows <= 1 || s.stride == 0) {
    return std::max(lo, s.ptr) < std::min(hi, s.ptr + s.size);
  }
  const auto base = reinterpret_cast<std::intptr_t>(s.ptr);
  const auto ilo = reinterpret_cast<std::intptr_t>(lo);
  const auto ihi = reinterpret_cast<std::intptr_t>(hi);
  const auto stride = static_cast<std::intptr_t>(s.stride);
  const auto size = static_cast<std::intptr_t>(s.size);
  // Smallest r with base + r*stride + size > ilo  <=>  r > (ilo - size - base)/stride
  std::intptr_t r_min = (ilo - size - base) / stride + 1;
  if (base + (r_min - 1) * stride + size > ilo) --r_min;  // fix flooring of negatives
  while (base + r_min * stride + size <= ilo) ++r_min;
  // Largest r with base + r*stride < ihi
  std::intptr_t r_max = (ihi - 1 - base) / stride;
  while (base + r_max * stride >= ihi) --r_max;
  r_min = std::max<std::intptr_t>(r_min, 0);
  r_max = std::min<std::intptr_t>(r_max, static_cast<std::intptr_t>(s.rows) - 1);
  return r_min <= r_max;
}
}  // namespace

bool ranges_overlap(const MemRange& a, const MemRange& b) {
  if (a.size == 0 || b.size == 0) return false;
  // Bounding-box quick reject.
  if (a.ptr + a.span() <= b.ptr || b.ptr + b.span() <= a.ptr) return false;
  if (a.rows <= 1) return contiguous_vs_strided(a.ptr, a.ptr + a.size, b);
  if (b.rows <= 1) return contiguous_vs_strided(b.ptr, b.ptr + b.size, a);
  // Both strided: test each segment of the shorter one (exact; test-scale
  // shapes keep this cheap, and benches disable hazard tracking).
  const MemRange& outer = a.rows <= b.rows ? a : b;
  const MemRange& inner = a.rows <= b.rows ? b : a;
  for (Bytes r = 0; r < outer.rows; ++r) {
    const std::byte* lo = outer.ptr + r * outer.stride;
    if (contiguous_vs_strided(lo, lo + outer.size, inner)) return true;
  }
  return false;
}

void HazardTracker::begin_op(const MemEffects& effects, SimTime start, SimTime end,
                             const std::string& label) {
  if (!enabled_) return;
  prune(start);

  auto conflict = [&](const Record& r, const char* kind) {
    std::ostringstream os;
    os << kind << " hazard: '" << label << "' starting at " << start
       << "s touches memory still in use by '" << r.label << "' (completes at " << r.end
       << "s)";
    throw HazardError(os.str());
  };

  for (const auto& m : effects.reads) {
    for (const auto& r : records_) {
      if (r.is_write && r.end > start + kEps && ranges_overlap(r.range, m))
        conflict(r, "read-after-write");
    }
  }
  for (const auto& m : effects.writes) {
    for (const auto& r : records_) {
      if (r.end > start + kEps && ranges_overlap(r.range, m))
        conflict(r, r.is_write ? "write-after-write" : "write-after-read");
    }
  }

  for (const auto& m : effects.reads)
    if (m.size > 0) records_.push_back({m, end, false, label});
  for (const auto& m : effects.writes)
    if (m.size > 0) records_.push_back({m, end, true, label});
}

void HazardTracker::prune(SimTime now) {
  std::erase_if(records_, [&](const Record& r) { return r.end <= now + kEps; });
}

}  // namespace gpupipe::gpu
