// The simulated GPU runtime — a CUDA-flavoured API over the discrete-event
// core.
//
// A `Gpu` owns one simulated device: its memory spaces, DMA/compute engines,
// streams, events, and a virtual host clock. Host code calls the API exactly
// like a CUDA program would (create streams, malloc, memcpyAsync, launch,
// record/wait events, synchronize); every call charges host API overhead and
// enqueues timed operations, and synchronisation advances the virtual clock.
//
// In ExecMode::Functional, device memory is real and kernels/copies execute,
// so results can be validated. In ExecMode::Modeled, only timing happens,
// allowing paper-scale (multi-GB) workloads.
#pragma once

#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "gpu/device_profile.hpp"
#include "gpu/hazard.hpp"
#include "gpu/memory.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace gpupipe::gpu {

class Gpu;

/// Simulation context shared by every device of one "machine": the virtual
/// event clock plus the single host thread's clock. A default-constructed
/// Gpu owns a private context; passing one context to several Gpus models a
/// multi-GPU node driven by one host thread (the substrate for
/// core::MultiPipeline co-scheduling).
struct SharedContext {
  sim::Simulator sim;
  SimTime host_time = 0.0;
  /// Host memory is machine-wide: pinned-ness of a pointer must be visible
  /// to every device. Created by the first device (which fixes the
  /// ExecMode); later devices must use the same mode.
  std::unique_ptr<Allocator> host_pinned;
  std::unique_ptr<Allocator> host_pageable;
  std::map<const std::byte*, Bytes> registered_host;
  /// One tracker for the whole machine: addresses are globally unique, so
  /// peer-to-peer transfers and cross-device races are validated too.
  HazardTracker hazards;
};

/// Creates a context to share between devices.
inline std::shared_ptr<SharedContext> make_shared_context() {
  return std::make_shared<SharedContext>();
}

/// An in-order command queue. Create via Gpu::create_stream; operations
/// enqueued on the same stream execute in enqueue order.
class Stream {
 public:
  int id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class Gpu;
  Stream(int id, std::string name) : id_(id), name_(std::move(name)) {}
  int id_;
  std::string name_;
  sim::TaskPtr last_;     // tail of the in-order chain
  StringId lane_id_ = 0;  // trace lane, interned lazily (0 = not yet)
};

/// A marker recorded into a stream; complete once all prior work on that
/// stream finished. Used for cross-stream dependencies and timing.
class GpuEvent {
 public:
  bool complete() const { return task_->done(); }
  /// Virtual time at which the event fired (valid once complete()).
  SimTime timestamp() const { return task_->end_time(); }

 private:
  friend class Gpu;
  explicit GpuEvent(sim::TaskPtr task) : task_(std::move(task)) {}
  sim::TaskPtr task_;
};
using EventPtr = std::shared_ptr<GpuEvent>;

/// Description of one kernel launch: a functional body plus the inputs the
/// roofline cost model needs. duration = launch latency +
/// max(flops / peak_flops, bytes / mem_bandwidth), unless fixed_duration
/// overrides it.
struct KernelDesc {
  std::string name = "kernel";
  /// Floating-point operations performed.
  double flops = 0.0;
  /// Effective device-memory traffic in bytes (reads + writes, after cache
  /// reuse — the calibration knob distinguishing naive from tiled kernels).
  Bytes bytes = 0;
  /// Functional body; runs at completion time in Functional mode. May be
  /// empty in Modeled mode.
  std::function<void()> body;
  /// Overrides the roofline model when set (tests, microbenchmarks).
  std::optional<SimTime> fixed_duration;
  /// Declared memory effects for hazard validation (optional).
  MemEffects effects;
};

/// One simulated GPU device plus its host-side runtime.
class Gpu {
 public:
  explicit Gpu(DeviceProfile profile, ExecMode mode = ExecMode::Functional,
               std::shared_ptr<SharedContext> context = nullptr);
  ~Gpu();
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  ExecMode mode() const { return mode_; }
  /// True when kernels and copies actually execute.
  bool functional() const { return mode_ == ExecMode::Functional; }

  // --- Streams and events ---

  /// Creates an in-order stream. The returned reference stays valid for the
  /// lifetime of the Gpu.
  Stream& create_stream(std::string name = {});
  /// Marks a stream unused again (reduces the live-stream count that feeds
  /// the per-stream scheduling overhead model). The reference stays valid
  /// but must not be used afterwards.
  void destroy_stream(Stream& s);
  /// The implicit stream used by the synchronous convenience API.
  Stream& default_stream() { return *default_stream_; }
  /// Streams currently live (excluding the default stream).
  int live_streams() const { return live_streams_; }

  /// Records an event after all work currently enqueued on `s`.
  EventPtr record_event(Stream& s);
  /// Makes all *subsequent* work on `s` wait until `ev` fires.
  void wait_event(Stream& s, const EventPtr& ev);
  /// True when the event has fired (does not advance time).
  bool query(const EventPtr& ev) const { return ev->complete(); }
  /// Seconds between two completed events (cudaEventElapsedTime analogue).
  SimTime elapsed(const EventPtr& from, const EventPtr& to) const {
    require(from && to && from->complete() && to->complete(),
            "elapsed() needs two completed events");
    return to->timestamp() - from->timestamp();
  }

  /// Blocks the host until all enqueued work completed.
  void synchronize();
  /// Blocks the host until all work enqueued on `s` completed.
  void synchronize(Stream& s);
  /// Blocks the host until `ev` fires.
  void synchronize(const EventPtr& ev);

  // --- Memory ---

  /// Allocates device memory; throws OomError when it does not fit.
  std::byte* device_malloc(Bytes size);
  /// Allocates a pitched 2-D device region (rows padded to pitch alignment).
  Pitched device_malloc_pitched(Bytes width_bytes, Bytes height);
  void device_free(std::byte* p);
  /// Typed convenience wrapper around device_malloc.
  template <typename T>
  T* device_alloc(std::size_t count) {
    return reinterpret_cast<T*>(device_malloc(count * sizeof(T)));
  }

  /// Allocates host memory through the runtime. Pinned memory transfers at
  /// full bandwidth; pageable memory pays profile().pageable_penalty.
  std::byte* host_alloc(Bytes size, bool pinned = true);
  void host_free(std::byte* p);
  /// True when `p` points into a pinned host allocation (or a registered
  /// external range).
  bool is_pinned(const std::byte* p) const;

  /// Registers externally allocated host memory (e.g. a std::vector's
  /// storage) as pinned, like cudaHostRegister: subsequent transfers from
  /// the range run at full bandwidth instead of paying the pageable
  /// penalty. The range must not overlap an existing registration.
  void host_register(const std::byte* p, Bytes size);
  /// Removes a registration made with host_register (exact base pointer).
  void host_unregister(const std::byte* p);

  /// Device allocation statistics (source of the memory-usage figures).
  const MemStats& device_mem_stats() const { return device_mem_.stats(); }
  /// Peak *observed* device memory: client allocations plus the driver
  /// context and per-stream runtime state (what external tools would
  /// report; the basis of the paper's Fig. 6/10 memory measurements).
  Bytes reported_peak_memory() const {
    return device_mem_.stats().peak + profile_.context_memory +
           profile_.per_stream_memory * static_cast<Bytes>(max_live_streams_);
  }
  Bytes device_mem_free() const {
    return device_mem_.capacity() - device_mem_.stats().current;
  }
  void reset_peak_mem() { device_mem_.reset_peak(); }

  // --- Transfers ---

  sim::TaskPtr memcpy_h2d_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s);
  sim::TaskPtr memcpy_d2h_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s);
  sim::TaskPtr memcpy_d2d_async(std::byte* dst, const std::byte* src, Bytes n, Stream& s);

  /// Peer-to-peer copy: `src` on this device to `dst_on_peer` on `peer`
  /// (cudaMemcpyPeerAsync analogue). Both devices must share a context.
  /// Occupies this device's DMA engine; rate is the slower of the two
  /// devices' bus bandwidths.
  sim::TaskPtr memcpy_p2p_async(Gpu& peer, std::byte* dst_on_peer, const std::byte* src,
                                Bytes n, Stream& s);

  /// 2-D (strided) copies: `height` rows of `width` bytes; source rows are
  /// `spitch` bytes apart, destination rows `dpitch` bytes apart. Effective
  /// bandwidth is determined by the contiguous row width — the mechanism
  /// that makes fine-grained non-contiguous transfers slow.
  sim::TaskPtr memcpy2d_h2d_async(std::byte* dst, Bytes dpitch, const std::byte* src,
                                  Bytes spitch, Bytes width, Bytes height, Stream& s);
  sim::TaskPtr memcpy2d_d2h_async(std::byte* dst, Bytes dpitch, const std::byte* src,
                                  Bytes spitch, Bytes width, Bytes height, Stream& s);

  /// Synchronous convenience wrappers (enqueue on the default stream and
  /// wait).
  void memcpy_h2d(std::byte* dst, const std::byte* src, Bytes n);
  void memcpy_d2h(std::byte* dst, const std::byte* src, Bytes n);

  // --- Kernels ---

  /// Launches a kernel on `s`; returns the underlying task (for tests).
  sim::TaskPtr launch(Stream& s, KernelDesc desc);

  // --- Host clock and instrumentation ---

  /// Current host virtual time (includes API overheads and waits).
  SimTime host_now() const { return ctx_->host_time; }
  /// Charges `t` seconds of host-side computation to the virtual clock.
  void host_compute(SimTime t);

  sim::Trace& trace() { return trace_; }
  HazardTracker& hazards() { return ctx_->hazards; }
  sim::Simulator& simulator() { return ctx_->sim; }
  const std::shared_ptr<SharedContext>& context() const { return ctx_; }
  /// Busy time of each engine (utilisation introspection for tests).
  SimTime h2d_busy_time() const { return h2d_->busy_time(); }
  SimTime d2h_busy_time() const { return d2h().busy_time(); }
  SimTime compute_busy_time() const { return compute_->busy_time(); }

 private:
  struct CopyShape {
    Bytes width = 0;   // contiguous segment size
    Bytes height = 1;  // number of segments
    Bytes total() const { return width * height; }
  };

  sim::Engine& d2h() const { return profile_.unified_copy_engine ? *h2d_ : *d2h_engine_; }
  SimTime copy_duration(const CopyShape& shape, bool pinned) const;
  void host_advance(SimTime t) { ctx_->host_time += t; }
  void wait_for(const sim::TaskPtr& t);
  sim::TaskPtr submit(Stream& s, sim::Engine& engine, SimTime duration, sim::SpanKind kind,
                      std::string label, Bytes bytes, std::function<void()> payload,
                      MemEffects effects);
  sim::TaskPtr copy_common(Stream& s, sim::Engine& engine, sim::SpanKind kind,
                           std::byte* dst, Bytes dpitch, const std::byte* src, Bytes spitch,
                           CopyShape shape, bool pinned, const char* what);

  DeviceProfile profile_;
  ExecMode mode_;
  std::shared_ptr<SharedContext> ctx_;
  std::unique_ptr<sim::Engine> h2d_;
  std::unique_ptr<sim::Engine> d2h_engine_;
  std::unique_ptr<sim::Engine> compute_;
  std::unique_ptr<sim::Engine> command_;  // zero-duration markers (events)
  Allocator device_mem_;
  sim::Trace trace_;
  std::deque<Stream> streams_;
  Stream* default_stream_ = nullptr;
  int live_streams_ = 0;
  int max_live_streams_ = 0;
  int next_stream_id_ = 0;
};

}  // namespace gpupipe::gpu
