// Heterogeneous name -> index lookup.
//
// The pipeline executors resolve mapped-array names on every kernel-factory
// call (ChunkContext::view); a transparent hash lets callers pass a
// std::string_view without materialising a std::string per lookup.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gpupipe {

/// Transparent string hash enabling find(std::string_view) on
/// std::unordered_map<std::string, ...>.
struct NameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Name -> index map built once at construction; lookups are O(1) and accept
/// string_view keys.
using NameIndex = std::unordered_map<std::string, std::size_t, NameHash, std::equal_to<>>;

}  // namespace gpupipe
