// Flight recorder: a bounded ring of structured serve-path events.
//
// The post-hoc metrics registry answers "what were the totals"; the flight
// recorder answers "what happened to job 731, in order". The scheduler (and
// the plan cache's disk tier) append one fixed-size FlightEvent per rare
// control decision — enqueue, admission, shrink, placement, backoff, reject,
// completion, deadline miss, disk hit/corruption, watchdog trip — stamped
// with *sim* time and the job's trace id (the same id sim::Span carries), so
// one job's full admission -> placement -> execution story can be
// reconstructed by joining recorder events with trace spans.
//
// The ring is fixed capacity: once full it keeps the newest events and
// counts the overwritten ones, so a 100k-job serve run records forever in
// constant memory. Appends take a mutex (the plan cache records disk events
// from autotune worker threads), but events are rare — nothing on the
// per-chunk execution path records — and in a single-threaded serve run the
// event order is deterministic, making dumps byte-diffable across runs.
//
// The watchdog rides the same stream: it watches completions, deadline
// misses, and disk corruption against configured thresholds and, on
// anomaly, records a WatchdogTrip event and fires a callback (the serve
// driver uses it to dump the recorder).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace gpupipe::telemetry {

/// What happened. Payload fields `a`/`b` are kind-specific; the meanings are
/// fixed by the exporter schema (common/export.hpp, docs/observability.md).
enum class FlightEventKind : std::uint8_t {
  Enqueue,       // job accepted into the ready queue
  Backpressure,  // job bounced off a full queue (will retry)
  Admit,         // admission granted; a = footprint bytes, b = chunk size
  Shrink,        // admitted below requested shape; a = chunk, b = streams
  Reject,        // gave up on the job; a = reason code (see reject_reason)
  Backoff,       // admission failed, parked; a = attempt #, b = delay ns
  QueueWake,     // backoff gates passed; a = jobs woken
  Complete,      // job finished; a = service time ns
  DeadlineMiss,  // job finished after its deadline; a = lateness ns
  DiskHit,       // plan-cache memory miss served from disk; a = bytes read
  DiskCorrupt,   // plan-cache disk entry rejected and quarantined
  WatchdogTrip,  // a watchdog threshold fired; a = reason code
  Shard,         // job split across devices; a = device bitmask, b = halo bytes
  Reshard,       // shard set changed mid-job; a = new bitmask, b = remaining iters
  P2pXfer,       // device-to-device halo round; a = bytes, b = source device
  Stitch,        // lineage handoff wired; a = staging bytes, b = producer job
};

inline const char* to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::Enqueue: return "enqueue";
    case FlightEventKind::Backpressure: return "backpressure";
    case FlightEventKind::Admit: return "admit";
    case FlightEventKind::Shrink: return "shrink";
    case FlightEventKind::Reject: return "reject";
    case FlightEventKind::Backoff: return "backoff";
    case FlightEventKind::QueueWake: return "queue-wake";
    case FlightEventKind::Complete: return "complete";
    case FlightEventKind::DeadlineMiss: return "deadline-miss";
    case FlightEventKind::DiskHit: return "disk-hit";
    case FlightEventKind::DiskCorrupt: return "disk-corrupt";
    case FlightEventKind::WatchdogTrip: return "watchdog-trip";
    case FlightEventKind::Shard: return "shard";
    case FlightEventKind::Reshard: return "reshard";
    case FlightEventKind::P2pXfer: return "p2p-xfer";
    case FlightEventKind::Stitch: return "stitch";
  }
  return "?";
}

/// Reject reason codes carried in FlightEvent::a.
enum : std::int64_t {
  kRejectImpossible = 0,   // cannot fit even at minimum shape
  kRejectRetryBudget = 1,  // admission attempts exhausted
  kRejectLineage = 2       // a lineage producer was rejected
};
inline const char* reject_reason(std::int64_t code) {
  if (code == kRejectImpossible) return "impossible";
  if (code == kRejectLineage) return "lineage";
  return "retry-budget";
}

/// Watchdog trip reason codes carried in FlightEvent::a.
enum : std::int64_t { kTripStall = 0, kTripDeadlineStorm = 1, kTripDiskCorrupt = 2 };
inline const char* trip_reason(std::int64_t code) {
  switch (code) {
    case kTripStall: return "stall";
    case kTripDeadlineStorm: return "deadline-storm";
    case kTripDiskCorrupt: return "disk-corrupt";
  }
  return "?";
}

/// One recorded event. Fixed size, no strings: recording never allocates
/// once the ring is at capacity.
struct FlightEvent {
  SimTime time = 0.0;
  FlightEventKind kind = FlightEventKind::Enqueue;
  std::int32_t trace_id = -1;  // owning job's trace id, -1 for global events
  std::int32_t job = -1;       // scheduler job id, -1 for global events
  std::int32_t device = -1;    // placed device, -1 when not yet placed
  std::int64_t a = 0;          // kind-specific payload (see FlightEventKind)
  std::int64_t b = 0;
};

/// The bounded event ring.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 8192)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  /// Appends one event (thread-safe; overwrites the oldest when full).
  void record(const FlightEvent& ev) {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
      return;
    }
    ring_[oldest_] = ev;
    oldest_ = (oldest_ + 1) % capacity_;
    ++dropped_;
  }

  /// Convenience append stamping the configured clock (used by recorders
  /// that have no explicit time at hand, e.g. the plan cache's disk tier).
  void record_now(FlightEventKind kind, std::int32_t trace_id = -1, std::int32_t job = -1,
                  std::int32_t device = -1, std::int64_t a = 0, std::int64_t b = 0) {
    FlightEvent ev;
    ev.time = clock_ ? clock_() : 0.0;
    ev.kind = kind;
    ev.trace_id = trace_id;
    ev.job = job;
    ev.device = device;
    ev.a = a;
    ev.b = b;
    record(ev);
  }

  /// The sim clock record_now() stamps (unset: events carry time 0).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Retained events, oldest first.
  std::vector<FlightEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(oldest_ + i) % ring_.size()]);
    return out;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }
  /// Events overwritten by the ring since construction/clear.
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  /// Events ever recorded (retained + dropped).
  std::uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    oldest_ = 0;
    dropped_ = 0;
    total_ = 0;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::size_t oldest_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  std::function<SimTime()> clock_;
};

/// Watchdog thresholds. A zero/negative threshold disables that check.
struct WatchdogOptions {
  /// Trip when jobs are in flight but no job has completed for this many
  /// sim-seconds (0 = off).
  SimTime stall_timeout = 0.0;
  /// Trip when at least this many deadline misses land within
  /// `deadline_window` sim-seconds of each other (0 = off).
  int deadline_storm_misses = 0;
  SimTime deadline_window = 0.05;
  /// Trip on the first plan-cache disk corruption observed.
  bool trip_on_disk_corrupt = false;
};

/// One fired anomaly.
struct WatchdogTrip {
  SimTime time = 0.0;
  std::int64_t reason = kTripStall;  // kTrip* code
  std::int64_t value = 0;           // misses in window / stalled seconds ns / corrupt count
};

/// Anomaly detector over the serve control loop. The scheduler feeds it
/// completions and deadline misses as they happen and calls check() at
/// sampling points; each threshold trips at most once per quiet period
/// (progress re-arms the stall check; a storm re-arms after the window
/// drains). Everything is sim-time driven, so trips are deterministic.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions opt = {}, FlightRecorder* recorder = nullptr)
      : opt_(opt), recorder_(recorder) {}

  /// Fired on every trip, after the recorder event is written (the serve
  /// driver hooks this to dump the flight recorder).
  std::function<void(const WatchdogTrip&)> on_trip;

  void observe_completion(SimTime now) {
    last_progress_ = now;
    stalled_ = false;
  }

  void observe_deadline_miss(SimTime now) {
    if (opt_.deadline_storm_misses <= 0) return;
    recent_misses_.push_back(now);
    while (!recent_misses_.empty() && recent_misses_.front() < now - opt_.deadline_window)
      recent_misses_.pop_front();
    const int in_window = static_cast<int>(recent_misses_.size());
    if (in_window >= opt_.deadline_storm_misses && !storming_) {
      storming_ = true;
      trip(now, kTripDeadlineStorm, in_window);
    } else if (in_window < opt_.deadline_storm_misses) {
      storming_ = false;
    }
  }

  /// Periodic threshold check: `active_jobs` currently running/queued jobs,
  /// `disk_corrupt` the plan cache's corrupt-read counter.
  void check(SimTime now, int active_jobs, std::int64_t disk_corrupt = 0) {
    if (last_progress_ < 0.0) last_progress_ = now;  // arm on first check
    if (opt_.stall_timeout > 0.0 && active_jobs > 0 && !stalled_ &&
        now - last_progress_ > opt_.stall_timeout) {
      stalled_ = true;
      trip(now, kTripStall, static_cast<std::int64_t>((now - last_progress_) * 1e9));
    }
    if (opt_.trip_on_disk_corrupt && disk_corrupt > corrupt_seen_) {
      corrupt_seen_ = disk_corrupt;
      trip(now, kTripDiskCorrupt, disk_corrupt);
    }
  }

  const std::vector<WatchdogTrip>& trips() const { return trips_; }
  const WatchdogOptions& options() const { return opt_; }

 private:
  void trip(SimTime now, std::int64_t reason, std::int64_t value) {
    WatchdogTrip t;
    t.time = now;
    t.reason = reason;
    t.value = value;
    trips_.push_back(t);
    if (recorder_) {
      FlightEvent ev;
      ev.time = now;
      ev.kind = FlightEventKind::WatchdogTrip;
      ev.a = reason;
      ev.b = value;
      recorder_->record(ev);
    }
    if (on_trip) on_trip(t);
  }

  WatchdogOptions opt_;
  FlightRecorder* recorder_ = nullptr;
  SimTime last_progress_ = -1.0;
  bool stalled_ = false;
  bool storming_ = false;
  std::int64_t corrupt_seen_ = 0;
  std::deque<SimTime> recent_misses_;
  std::vector<WatchdogTrip> trips_;
};

}  // namespace gpupipe::telemetry
