// Checksums and floating-point comparison helpers used by tests and by
// functional-mode benches to validate that pipelined execution produces the
// same results as the host reference implementation.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>

namespace gpupipe {

/// FNV-1a over the raw bytes of a span of trivially copyable values.
template <typename T>
std::uint64_t fnv1a(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size_bytes(); ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Maximum absolute difference between two equally sized spans.
inline double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  if (a.size() == b.size()) {
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

/// True when every element of `a` is within `tol` (absolute) of `b`.
inline bool approx_equal(std::span<const double> a, std::span<const double> b,
                         double tol = 1e-9) {
  return a.size() == b.size() && max_abs_diff(a, b) <= tol;
}

}  // namespace gpupipe
