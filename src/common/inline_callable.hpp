// Move-only callable with small-buffer storage.
//
// The simulator schedules millions of events per serve run; wrapping each in
// std::function costs a heap allocation whenever the closure outgrows the
// (implementation-defined, typically 16-byte) inline buffer — and capturing a
// shared_ptr plus a this-pointer already does. InlineCallable gives the event
// queue a callable with a buffer sized for the closures the sim core actually
// creates, so the common case never touches the allocator, and a heap
// fallback so arbitrary user lambdas still work through the same API.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gpupipe {

/// Move-only `void()` callable. Closures up to `Buffer` bytes (and with
/// pointer alignment or less — captures of pointers, indices, and doubles,
/// which is everything the sim core stores) live inline; larger or
/// over-aligned ones fall back to a single heap allocation. Invoking an
/// empty callable is undefined — callers check explicit bool first (the
/// event queue never stores empty slots).
template <std::size_t Buffer = 48>
class InlineCallable {
 public:
  InlineCallable() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Buffer && alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallable(InlineCallable&& o) noexcept { move_from(o); }
  InlineCallable& operator=(InlineCallable&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;
  ~InlineCallable() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(this); }

  /// Destroys the held callable (if any), leaving the object empty.
  void reset() {
    if (ops_) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(InlineCallable*);
    void (*destroy)(InlineCallable*);
    void (*relocate)(InlineCallable* dst, InlineCallable* src);
  };

  template <typename Fn>
  static Fn* inline_ptr(InlineCallable* c) {
    return std::launder(reinterpret_cast<Fn*>(c->buf_));
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](InlineCallable* c) { (*inline_ptr<Fn>(c))(); },
      [](InlineCallable* c) { inline_ptr<Fn>(c)->~Fn(); },
      [](InlineCallable* dst, InlineCallable* src) {
        ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*inline_ptr<Fn>(src)));
        inline_ptr<Fn>(src)->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](InlineCallable* c) { (*static_cast<Fn*>(c->heap_))(); },
      [](InlineCallable* c) { delete static_cast<Fn*>(c->heap_); },
      [](InlineCallable* dst, InlineCallable* src) {
        dst->heap_ = src->heap_;
        src->heap_ = nullptr;
      },
  };

  void move_from(InlineCallable& o) noexcept {
    if (o.ops_) {
      o.ops_->relocate(this, &o);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
  }

  union {
    alignas(void*) unsigned char buf_[Buffer];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace gpupipe
