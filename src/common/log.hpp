// Minimal leveled logging.
//
// The runtime makes silent policy decisions (shrinking a chunk size to meet
// a memory limit, re-chunking adaptively, pruning autotune candidates);
// at Level::Debug those decisions become visible. The sink is replaceable
// so tests can capture output; the default sink is stderr. Logging is
// process-global and not thread-safe by design — the simulator is
// single-threaded.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace gpupipe {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/// Parses a GPUPIPE_LOG-style level name ("debug"/"info"/"warn"/"off");
/// nullopt for anything else.
inline std::optional<LogLevel> parse_log_level(std::string_view s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "off") return LogLevel::Off;
  return std::nullopt;
}

namespace detail {
struct LogState {
  LogLevel level = LogLevel::Warn;
  std::function<void(LogLevel, const std::string&)> sink;

  // GPUPIPE_LOG overrides the default threshold at startup, mirroring
  // GPUPIPE_FORCE_HAZARDS; unknown values are ignored (the first log_warn
  // would be too early to see anyway).
  LogState() {
    if (const char* env = std::getenv("GPUPIPE_LOG")) {
      if (auto parsed = parse_log_level(env)) level = *parsed;
    }
  }
};
inline LogState& log_state() {
  static LogState state;
  return state;
}
}  // namespace detail

/// Sets the global threshold; messages below it are dropped.
inline void set_log_level(LogLevel level) { detail::log_state().level = level; }
inline LogLevel log_level() { return detail::log_state().level; }

/// Replaces the sink (pass {} to restore stderr).
inline void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  detail::log_state().sink = std::move(sink);
}

inline const char* to_string(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Off: return "off";
  }
  return "?";
}

namespace detail {
inline void emit(LogLevel level, const std::string& msg) {
  auto& st = log_state();
  if (level < st.level) return;
  if (st.sink) {
    st.sink(level, msg);
  } else {
    std::cerr << "[gpupipe " << to_string(level) << "] " << msg << "\n";
  }
}
}  // namespace detail

/// Streams all arguments into one message at the given level.
template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < detail::log_state().level) return;  // cheap early out
  std::ostringstream os;
  (os << ... << args);
  detail::emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log_at(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log_at(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_at(LogLevel::Warn, std::forward<Args>(args)...);
}

}  // namespace gpupipe
