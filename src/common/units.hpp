// Unit helpers shared across the simulator and runtime.
//
// Simulated time is kept as double seconds (`SimTime`); byte counts as
// unsigned 64-bit (`Bytes`). Helper constants/functions make call sites
// read as `256 * MiB` or `usec(5.0)` instead of bare magic numbers.
#pragma once

#include <cstdint>

namespace gpupipe {

/// Simulated (virtual) time in seconds.
using SimTime = double;

/// A byte count.
using Bytes = std::uint64_t;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/// Converts microseconds to SimTime seconds.
constexpr SimTime usec(double us) { return us * 1e-6; }

/// Converts milliseconds to SimTime seconds.
constexpr SimTime msec(double ms) { return ms * 1e-3; }

/// Converts a byte count to fractional mebibytes (for reporting).
constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(MiB); }

/// Converts a byte count to fractional gibibytes (for reporting).
constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(GiB); }

/// Gigabytes-per-second bandwidth expressed in bytes/second.
constexpr double gbps(double gb_per_s) { return gb_per_s * 1e9; }

/// Gigaflops expressed in flop/second.
constexpr double gflops(double gf) { return gf * 1e9; }

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace gpupipe
