// Deterministic pseudo-random number generation.
//
// Workload generators must be reproducible across platforms and standard
// library versions, so we use our own xoshiro256** implementation seeded via
// splitmix64 rather than <random> engines/distributions.
#pragma once

#include <cstdint>

namespace gpupipe {

/// splitmix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG: fast, high-quality, fully deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Next uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace gpupipe
