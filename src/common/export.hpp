// Exporters: Prometheus text format and JSON-lines over the observability
// state (metrics registry, flight recorder, time-series store).
//
// Everything here is deterministic and locale-stable: iteration orders are
// the sorted orders the sources already guarantee, and every number is
// formatted with std::to_chars (shortest round-trip form), never the
// locale-sensitive iostream/printf paths — the same rule the plan-cache
// fingerprints follow. Two identical runs therefore produce byte-identical
// exports, which is what lets CI diff them like the BENCH_*.json artifacts.
//
// Formats:
//  * export_prometheus: one `# TYPE` line plus samples per metric, names
//    sanitized to the Prometheus charset ("sched.wait_s" ->
//    "gpupipe_sched_wait_s"), histograms as cumulative `_bucket{le="..."}`
//    rows with `_sum`/`_count`.
//  * export_events_jsonl: one JSON object per flight-recorder event with
//    kind-specific field names (the schema table lives in
//    docs/observability.md).
//  * export_series_jsonl: one JSON object per retained sample point,
//    series in name order, points oldest-first.
#pragma once

#include <charconv>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "core/timeseries.hpp"

namespace gpupipe::telemetry {

/// Shortest round-trip decimal form of `v`, independent of the C locale.
inline std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Maps a registry metric name onto the Prometheus charset [a-zA-Z0-9_:]
/// and prepends `prefix` ("sched.dev0.util" -> "gpupipe_sched_dev0_util").
inline std::string prometheus_name(std::string_view name,
                                   std::string_view prefix = "gpupipe_") {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out += prefix;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus text exposition format (version 0.0.4) of the registry.
inline void export_prometheus(std::ostream& os, const Registry& reg,
                              std::string_view prefix = "gpupipe_") {
  for (const auto& [name, c] : reg.counters()) {
    const std::string n = prometheus_name(name, prefix);
    os << "# TYPE " << n << " counter\n" << n << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : reg.gauges()) {
    const std::string n = prometheus_name(name, prefix);
    os << "# TYPE " << n << " gauge\n" << n << " " << format_double(g.value()) << "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string n = prometheus_name(name, prefix);
    os << "# TYPE " << n << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      cumulative += h.buckets()[i];
      os << n << "_bucket{le=\"";
      if (i < h.bounds().size())
        os << format_double(h.bounds()[i]);
      else
        os << "+Inf";
      os << "\"} " << cumulative << "\n";
    }
    os << n << "_sum " << format_double(h.sum()) << "\n";
    os << n << "_count " << h.count() << "\n";
  }
}

/// One JSON-lines object per flight-recorder event, oldest first.
inline void export_events_jsonl(std::ostream& os, const FlightRecorder& rec) {
  for (const FlightEvent& ev : rec.events()) {
    os << "{\"t\":" << format_double(ev.time) << ",\"event\":\"" << to_string(ev.kind)
       << "\"";
    if (ev.trace_id >= 0) os << ",\"trace\":" << ev.trace_id;
    if (ev.job >= 0) os << ",\"job\":" << ev.job;
    if (ev.device >= 0) os << ",\"dev\":" << ev.device;
    switch (ev.kind) {
      case FlightEventKind::Enqueue:
      case FlightEventKind::Backpressure: break;
      case FlightEventKind::Admit:
        os << ",\"footprint\":" << ev.a << ",\"chunk\":" << ev.b;
        break;
      case FlightEventKind::Shrink:
        os << ",\"chunk\":" << ev.a << ",\"streams\":" << ev.b;
        break;
      case FlightEventKind::Reject:
        os << ",\"reason\":\"" << reject_reason(ev.a) << "\"";
        break;
      case FlightEventKind::Backoff:
        os << ",\"attempt\":" << ev.a << ",\"delay_ns\":" << ev.b;
        break;
      case FlightEventKind::QueueWake: os << ",\"woken\":" << ev.a; break;
      case FlightEventKind::Complete: os << ",\"service_ns\":" << ev.a; break;
      case FlightEventKind::DeadlineMiss: os << ",\"late_ns\":" << ev.a; break;
      case FlightEventKind::DiskHit: os << ",\"bytes\":" << ev.a; break;
      case FlightEventKind::DiskCorrupt: break;
      case FlightEventKind::WatchdogTrip:
        os << ",\"reason\":\"" << trip_reason(ev.a) << "\",\"value\":" << ev.b;
        break;
      case FlightEventKind::Shard:
        os << ",\"devices\":" << ev.a << ",\"halo_bytes\":" << ev.b;
        break;
      case FlightEventKind::Reshard:
        os << ",\"devices\":" << ev.a << ",\"remaining\":" << ev.b;
        break;
      case FlightEventKind::P2pXfer:
        os << ",\"bytes\":" << ev.a << ",\"src\":" << ev.b;
        break;
      case FlightEventKind::Stitch:
        os << ",\"bytes\":" << ev.a << ",\"producer\":" << ev.b;
        break;
    }
    os << "}\n";
  }
}

/// One JSON-lines object per retained time-series point (series in name
/// order, points oldest-first).
inline void export_series_jsonl(std::ostream& os, const TimeSeriesStore& store) {
  for (const auto& [name, series] : store.all()) {
    for (const TimeSeries::Point& p : series.points())
      os << "{\"series\":\"" << name << "\",\"t\":" << format_double(p.t)
         << ",\"v\":" << format_double(p.v) << "}\n";
  }
}

}  // namespace gpupipe::telemetry
