// Plain-text table printer used by the benchmark harnesses to emit the same
// rows/series the paper's figures report.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gpupipe {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends one row; must match the header arity.
  void add_row(std::vector<std::string> cells) {
    require(cells.size() == headers_.size(), "row arity must match headers");
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with fixed precision (default 2 decimals).
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << "| " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " ";
      }
      os << "|\n";
    };
    auto print_sep = [&] {
      for (std::size_t c = 0; c < width.size(); ++c)
        os << "|" << std::string(width[c] + 2, '-');
      os << "|\n";
    };

    print_row(headers_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpupipe
