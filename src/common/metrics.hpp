// Telemetry primitives: a registry of named counters, gauges, and
// fixed-bucket histograms.
//
// The registry is pull-based and post-hoc by design: executors expose a
// collect_metrics(Registry&) that derives every value from state they
// already keep (trace spans, PipelineStats, engine busy times, allocator
// peaks), so nothing on the per-chunk execution path allocates or touches a
// registry. The only always-on instrumentation is a handful of rare-event
// counters (chunk shrinks, adaptive re-chunks) behind metrics_enabled() —
// a single branch when telemetry is off.
//
// Iteration order is the lexicographic name order of a std::map, so JSON
// snapshots and summary tables are deterministic and diffable.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gpupipe::telemetry {

/// A monotonically increasing integer (events, bytes moved). Updates are
/// atomic: the ambient rare-event counters fire from the autotuner's dry-run
/// worker threads, which may solve the same spec concurrently.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A point-in-time double (busy seconds, high-water marks, ratios).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A histogram over fixed upper-bound buckets (an implicit +inf bucket
/// catches the tail). Bounds are set on first registration of the name.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = {})
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
    ++count_;
    sum_ += v;
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts observations in (bounds[i-1], bounds[i]]; the last
  /// bucket is (bounds.back(), +inf).
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

  /// Linear-interpolated quantile (q in [0,1]) over the fixed buckets — the
  /// shared percentile math behind serve summaries, watchdog thresholds, and
  /// bench tables. The +inf tail bucket reports its lower bound (there is no
  /// upper edge to interpolate toward); an empty histogram reports 0.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const double rank = q * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double n = static_cast<double>(buckets_[i]);
      if (seen + n < rank || n == 0.0) {
        seen += n;
        continue;
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i >= bounds_.size()) return lo;
      const double hi = bounds_[i];
      return lo + (hi - lo) * ((rank - seen) / n);
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

/// A named collection of metrics with deterministic (sorted) iteration.
/// Name lookup/registration is mutex-guarded and std::map nodes are stable,
/// so handing out Counter references to concurrent writers is safe (Counter
/// updates are atomic). Gauges, histograms, and the iteration/snapshot
/// accessors remain post-hoc: call them from one thread at a time.
class Registry {
 public:
  Registry() = default;
  // Moves are post-hoc (benchmark plumbing); the mutex itself is not moved.
  Registry(Registry&& other) noexcept
      : counters_(std::move(other.counters_)),
        gauges_(std::move(other.gauges_)),
        histograms_(std::move(other.histograms_)) {}
  Registry& operator=(Registry&& other) noexcept {
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
    return *this;
  }

  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name, std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
    return it->second;
  }

  /// Counter value by name (0 when absent) — convenient in tests.
  std::int64_t counter_value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }
  double gauge_value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void to_json(std::ostream& os) const {
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << std::setprecision(17);
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << c.value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << g.value();
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
         << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (i > 0) os << ",";
        os << "{\"le\":";
        if (i < h.bounds().size())
          os << h.bounds()[i];
        else
          os << "\"inf\"";
        os << ",\"count\":" << h.buckets()[i] << "}";
      }
      os << "]}";
    }
    os << "}}";
    os.flags(flags);
    os.precision(precision);
  }

  /// Human-readable summary, one metric per line.
  void print(std::ostream& os) const {
    for (const auto& [name, c] : counters_) os << name << " = " << c.value() << "\n";
    for (const auto& [name, g] : gauges_) os << name << " = " << g.value() << "\n";
    for (const auto& [name, h] : histograms_) {
      os << name << " = count " << h.count() << ", sum " << h.sum() << ", buckets [";
      for (std::size_t i = 0; i < h.buckets().size(); ++i) {
        if (i > 0) os << " ";
        os << "le(";
        if (i < h.bounds().size())
          os << h.bounds()[i];
        else
          os << "inf";
        os << ")=" << h.buckets()[i];
      }
      os << "]\n";
    }
  }

 private:
  mutable std::mutex mu_;  ///< guards name lookup/registration only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

namespace detail {
struct MetricsState {
  // Off by default: the rare-event counters in the runtime only touch the
  // global registry when explicitly enabled (or via GPUPIPE_METRICS=1), so
  // the disabled path is one branch and zero allocations.
  bool enabled = std::getenv("GPUPIPE_METRICS") != nullptr &&
                 std::string(std::getenv("GPUPIPE_METRICS")) != "0";
  Registry registry;
};
inline MetricsState& metrics_state() {
  static MetricsState state;
  return state;
}
}  // namespace detail

/// Whether the runtime's ambient rare-event counters record into the global
/// registry. Explicit collect_metrics() calls work regardless.
inline bool metrics_enabled() { return detail::metrics_state().enabled; }
inline void set_metrics_enabled(bool on) { detail::metrics_state().enabled = on; }

/// The process-global registry fed by the ambient counters.
inline Registry& global_metrics() { return detail::metrics_state().registry; }

}  // namespace gpupipe::telemetry
