// Append-only string interning table.
//
// The trace layer records two strings (lane, label) per span; at serve scale
// that is millions of heap-allocated copies of a few dozen distinct values.
// Interning maps each distinct string to a dense 32-bit id once, so spans
// carry POD ids and resolve them back only when a human-readable dump is
// produced. Ids are assigned in first-seen order, which keeps them
// deterministic for a deterministic workload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/name_index.hpp"

namespace gpupipe {

/// Dense id for an interned string. 0 is always the empty string.
using StringId = std::uint32_t;

/// Append-only intern table: string -> dense id, id -> string. Never forgets
/// an entry, so ids stay valid for the lifetime of the table.
class StringTable {
 public:
  StringTable() { (void)intern(std::string_view{}); }

  /// Returns the id for `s`, interning it on first sight.
  StringId intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const StringId id = static_cast<StringId>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Resolves an id back to its string. Ids come only from intern(), so an
  /// out-of-range id is a logic error.
  const std::string& lookup(StringId id) const {
    require(id < strings_.size(), "string id out of range");
    return strings_[id];
  }

  /// Number of distinct strings interned (including the empty string).
  std::size_t size() const { return strings_.size(); }

  /// Approximate heap footprint of the table, for observability gauges.
  std::size_t bytes() const {
    std::size_t b = strings_.capacity() * sizeof(std::string);
    for (const auto& s : strings_) b += s.capacity();
    return b;
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StringId, NameHash, std::equal_to<>> ids_;
};

}  // namespace gpupipe
