// Error handling for gpupipe.
//
// All invariant violations throw `gpupipe::Error`, carrying the source
// location of the failed check. `require()` is used for user-facing argument
// validation; `ensure()` for internal invariants. Both throw the same type so
// tests can assert on failures uniformly.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gpupipe {

/// Exception type for all gpupipe failures (bad arguments, simulator
/// invariant violations, out-of-memory, hazard detection, parse errors).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(std::string_view kind, std::string_view msg,
                              const std::source_location& loc) {
  std::string s;
  s.reserve(msg.size() + 64);
  s += kind;
  s += ": ";
  s += msg;
  s += " [";
  s += loc.file_name();
  s += ":";
  s += std::to_string(loc.line());
  s += "]";
  throw Error(s);
}
}  // namespace detail

/// Validates a user-supplied argument; throws Error on failure.
inline void require(bool cond, std::string_view msg,
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail("invalid argument", msg, loc);
}

/// Validates an internal invariant; throws Error on failure.
inline void ensure(bool cond, std::string_view msg,
                   const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail("internal error", msg, loc);
}

}  // namespace gpupipe
