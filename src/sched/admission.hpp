// Admission control: per-device memory commitment for concurrent pipelines.
//
// Each device gets a byte cap (configured, or its free memory at
// construction). Before a job's pipeline is constructed, try_admit() solves
// the job's spec against the cap minus the bytes already committed to
// running jobs — reusing the same memory-limit auto-chunking a solo
// Pipeline applies (solve_pipeline_memory) — so a job that is too large for
// the *remaining* budget is shrunk to fit rather than rejected. Admission is
// purely predictive arithmetic: the footprint is committed before any
// buffer exists, and because predicted_pipeline_footprint computes exactly
// what Pipeline's constructor allocates, the sum of commitments bounds the
// device's real peak. A job is only rejected outright when even a whole
// idle device cannot hold its smallest (chunk 1, stream 1) shape.
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.hpp"
#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::sched {

/// Outcome of one admission attempt on one device.
struct AdmissionDecision {
  bool admitted = false;
  std::int64_t chunk_size = 0;  ///< solved shape (valid when admitted)
  int num_streams = 0;
  Bytes footprint = 0;  ///< device bytes the job will commit
  bool shrunk = false;  ///< solved shape is smaller than the spec asked for
};

/// Tracks committed ring-buffer footprints per device.
class AdmissionController {
 public:
  /// `cap` applies to every device; 0 means each device's current free
  /// memory.
  AdmissionController(const std::vector<gpu::Gpu*>& devices, Bytes cap);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Bytes cap(int dev) const { return devices_.at(static_cast<std::size_t>(dev)).cap; }
  Bytes committed(int dev) const {
    return devices_.at(static_cast<std::size_t>(dev)).committed;
  }
  /// High-water mark of committed bytes (telemetry).
  Bytes committed_peak(int dev) const {
    return devices_.at(static_cast<std::size_t>(dev)).peak;
  }

  /// Solves `spec` against device `dev`'s remaining budget. Does NOT commit;
  /// call commit() with the decision's footprint once the job actually
  /// starts.
  AdmissionDecision try_admit(int dev, const core::PipelineSpec& spec) const;

  /// True when `spec` cannot fit device `dev` even with nothing committed —
  /// retrying admission can never succeed.
  bool impossible(int dev, const core::PipelineSpec& spec) const;

  void commit(int dev, Bytes footprint);
  void release(int dev, Bytes footprint);

 private:
  struct State {
    gpu::Gpu* gpu = nullptr;
    Bytes cap = 0;
    Bytes committed = 0;
    Bytes peak = 0;
  };
  AdmissionDecision solve(const State& st, const core::PipelineSpec& spec,
                          Bytes budget) const;

  std::vector<State> devices_;
};

}  // namespace gpupipe::sched
