#include "sched/admission.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpupipe::sched {

AdmissionController::AdmissionController(const std::vector<gpu::Gpu*>& devices, Bytes cap) {
  require(!devices.empty(), "admission controller needs at least one device");
  devices_.reserve(devices.size());
  for (gpu::Gpu* g : devices) {
    State st;
    st.gpu = g;
    st.cap = cap != 0 ? std::min(cap, g->device_mem_free()) : g->device_mem_free();
    devices_.push_back(st);
  }
}

AdmissionDecision AdmissionController::solve(const State& st,
                                             const core::PipelineSpec& spec,
                                             Bytes budget) const {
  AdmissionDecision d;
  if (budget == 0) return d;
  // Honor the job's own mem_limit if it is tighter than the remaining budget
  // — the same rule Pipeline's constructor applies against free memory.
  const Bytes limit = spec.mem_limit ? std::min(*spec.mem_limit, budget) : budget;
  try {
    // One solver call yields both the shape and the footprint it was
    // accepted at — the bytes committed are exactly the bytes the solver
    // checked against the budget.
    const core::SolvedShape solved = core::solve_pipeline_shape(*st.gpu, spec, limit);
    d.admitted = true;
    d.chunk_size = solved.chunk_size;
    d.num_streams = solved.num_streams;
    d.footprint = solved.footprint;
    d.shrunk = solved.chunk_size < spec.chunk_size || solved.num_streams < spec.num_streams;
  } catch (const gpu::OomError&) {
    // Even (chunk 1, stream 1) exceeds the budget — not admissible now.
  }
  return d;
}

AdmissionDecision AdmissionController::try_admit(int dev,
                                                 const core::PipelineSpec& spec) const {
  const State& st = devices_.at(static_cast<std::size_t>(dev));
  const Bytes budget = st.cap > st.committed ? st.cap - st.committed : 0;
  return solve(st, spec, budget);
}

bool AdmissionController::impossible(int dev, const core::PipelineSpec& spec) const {
  const State& st = devices_.at(static_cast<std::size_t>(dev));
  return !solve(st, spec, st.cap).admitted;
}

void AdmissionController::commit(int dev, Bytes footprint) {
  State& st = devices_.at(static_cast<std::size_t>(dev));
  ensure(st.committed + footprint <= st.cap, "admission commit exceeds the device cap");
  st.committed += footprint;
  st.peak = std::max(st.peak, st.committed);
}

void AdmissionController::release(int dev, Bytes footprint) {
  State& st = devices_.at(static_cast<std::size_t>(dev));
  ensure(footprint <= st.committed, "admission release exceeds committed bytes");
  st.committed -= footprint;
}

}  // namespace gpupipe::sched
