// Bounded ready queue with pluggable selection policies.
//
// The queue holds jobs that have arrived but are not yet admitted. Its
// capacity is the scheduler's backpressure threshold: arrivals beyond it
// stay at the source until a slot frees. Selection is deterministic — every
// policy breaks ties by submission order, so two runs of the same mix pick
// the same job at every decision point. Jobs whose admission failed carry a
// `not_before` retry gate (exponential backoff, set by the scheduler) and
// are skipped until it passes, which lets smaller jobs overtake a job that
// is waiting for device memory to free up.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::sched {

/// How the scheduler picks the next job to admit.
enum class QueuePolicy {
  Fifo,      ///< submission order
  Priority,  ///< highest Job::priority first, FIFO within a priority
  Sjf,       ///< smallest dry-run solo estimate first (shortest job first)
};

inline const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::Fifo: return "fifo";
    case QueuePolicy::Priority: return "priority";
    case QueuePolicy::Sjf: return "sjf";
  }
  return "?";
}

/// Bounded, policy-ordered collection of ready jobs.
class JobQueue {
 public:
  struct Item {
    int job = -1;            ///< scheduler job id
    std::uint64_t seq = 0;   ///< submission order (FIFO key and tie-break)
    int priority = 0;        ///< Priority key
    SimTime estimate = 0.0;  ///< SJF key
    SimTime not_before = 0.0;  ///< retry gate after a failed admission
  };

  JobQueue(QueuePolicy policy, std::size_t capacity)
      : policy_(policy), capacity_(capacity) {
    require(capacity_ >= 1, "job queue capacity must be >= 1");
  }

  QueuePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }

  /// Adds an item; false when the queue is full (backpressure).
  bool push(Item it) {
    if (full()) return false;
    items_.push_back(it);
    return true;
  }

  /// Best eligible item at virtual time `now` (retry gate passed), or
  /// nullptr. The pointer is invalidated by push/remove.
  Item* pick(SimTime now) {
    Item* best = nullptr;
    for (Item& it : items_) {
      if (it.not_before > now) continue;
      if (best == nullptr || before(it, *best)) best = &it;
    }
    return best;
  }

  /// Removes the item of `job` (must be present).
  void remove(int job) {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].job == job) {
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    ensure(false, "job queue remove: job not queued");
  }

  /// Earliest future retry gate (> now); +inf when none is pending.
  SimTime next_retry(SimTime now) const {
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (const Item& it : items_)
      if (it.not_before > now && it.not_before < t) t = it.not_before;
    return t;
  }

 private:
  /// Strict policy order; ties fall through to submission order.
  bool before(const Item& a, const Item& b) const {
    switch (policy_) {
      case QueuePolicy::Fifo: break;
      case QueuePolicy::Priority:
        if (a.priority != b.priority) return a.priority > b.priority;
        break;
      case QueuePolicy::Sjf:
        if (a.estimate != b.estimate) return a.estimate < b.estimate;
        break;
    }
    return a.seq < b.seq;
  }

  QueuePolicy policy_;
  std::size_t capacity_;
  std::vector<Item> items_;
};

}  // namespace gpupipe::sched
