// Bounded ready queue with pluggable selection policies.
//
// The queue holds jobs that have arrived but are not yet admitted. Its
// capacity is the scheduler's backpressure threshold: arrivals beyond it
// stay at the source until a slot frees. Selection is deterministic — every
// policy breaks ties by submission order, so two runs of the same mix pick
// the same job at every decision point. Jobs whose admission failed are
// defer()red behind a `not_before` retry gate (exponential backoff, set by
// the scheduler) and parked on a separate backoff list, which lets smaller
// jobs overtake a job that is waiting for device memory to free up. The
// scheduler wake()s the whole batch whose gates have passed at the top of
// each dispatch round, so pick() only ever scans currently-eligible items —
// at serve scale the backoff list holds the memory-starved tail of the
// fleet, and rescanning it per pick() was the dispatch loop's hot spot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::sched {

/// How the scheduler picks the next job to admit.
enum class QueuePolicy {
  Fifo,      ///< submission order
  Priority,  ///< highest Job::priority first, FIFO within a priority
  Sjf,       ///< smallest dry-run solo estimate first (shortest job first)
};

inline const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::Fifo: return "fifo";
    case QueuePolicy::Priority: return "priority";
    case QueuePolicy::Sjf: return "sjf";
  }
  return "?";
}

/// Bounded, policy-ordered collection of ready jobs.
class JobQueue {
 public:
  struct Item {
    int job = -1;            ///< scheduler job id
    std::uint64_t seq = 0;   ///< submission order (FIFO key and tie-break)
    int priority = 0;        ///< Priority key
    SimTime estimate = 0.0;  ///< SJF key
    SimTime not_before = 0.0;  ///< retry gate after a failed admission
  };

  JobQueue(QueuePolicy policy, std::size_t capacity)
      : policy_(policy), capacity_(capacity) {
    require(capacity_ >= 1, "job queue capacity must be >= 1");
  }

  QueuePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return eligible_.size() + backoff_.size(); }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity_; }
  /// Items parked behind a retry gate (observability).
  std::size_t backoff_size() const { return backoff_.size(); }
  /// Lifetime queue-event counters (observability): items moved back to the
  /// eligible set by wake(), items parked by defer(), and the most items
  /// ever parked at once.
  std::uint64_t woken_total() const { return woken_total_; }
  std::uint64_t defers_total() const { return defers_total_; }
  std::size_t backoff_peak() const { return backoff_peak_; }

  /// Adds an item; false when the queue is full (backpressure). An item
  /// arriving with a retry gate already set parks directly on the backoff
  /// list.
  bool push(Item it) {
    if (full()) return false;
    (it.not_before > 0.0 ? backoff_ : eligible_).push_back(it);
    backoff_peak_ = std::max(backoff_peak_, backoff_.size());
    return true;
  }

  /// Moves every parked item whose retry gate has passed back to the
  /// eligible set — one batch per scheduler tick, not one scan per pick().
  /// Returns the number of items woken.
  std::size_t wake(SimTime now) {
    std::size_t woken = 0;
    for (std::size_t i = 0; i < backoff_.size();) {
      if (backoff_[i].not_before <= now) {
        eligible_.push_back(backoff_[i]);
        backoff_.erase(backoff_.begin() + static_cast<std::ptrdiff_t>(i));
        ++woken;
      } else {
        ++i;
      }
    }
    woken_total_ += woken;
    return woken;
  }

  /// Parks `job` (must be eligible) behind a retry gate: it will not be
  /// pick()ed again until a wake() at or after `t`.
  void defer(int job, SimTime t) {
    for (std::size_t i = 0; i < eligible_.size(); ++i) {
      if (eligible_[i].job == job) {
        Item it = eligible_[i];
        it.not_before = t;
        eligible_.erase(eligible_.begin() + static_cast<std::ptrdiff_t>(i));
        backoff_.push_back(it);
        ++defers_total_;
        backoff_peak_ = std::max(backoff_peak_, backoff_.size());
        return;
      }
    }
    ensure(false, "job queue defer: job not eligible");
  }

  /// Best eligible item, or nullptr. The pointer is invalidated by
  /// push/remove/defer/wake. Wakes the current tick's due batch first, so
  /// the scan below only ever walks currently-eligible items.
  Item* pick(SimTime now) {
    wake(now);
    Item* best = nullptr;
    for (Item& it : eligible_)
      if (best == nullptr || before(it, *best)) best = &it;
    return best;
  }

  /// Removes the item of `job` (must be present in either set).
  void remove(int job) {
    for (auto* list : {&eligible_, &backoff_}) {
      for (std::size_t i = 0; i < list->size(); ++i) {
        if ((*list)[i].job == job) {
          list->erase(list->begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    }
    ensure(false, "job queue remove: job not queued");
  }

  /// Earliest future retry gate (> now); +inf when none is pending.
  SimTime next_retry(SimTime now) const {
    SimTime t = std::numeric_limits<SimTime>::infinity();
    for (const Item& it : backoff_)
      if (it.not_before > now && it.not_before < t) t = it.not_before;
    return t;
  }

 private:
  /// Strict policy order; ties fall through to submission order.
  bool before(const Item& a, const Item& b) const {
    switch (policy_) {
      case QueuePolicy::Fifo: break;
      case QueuePolicy::Priority:
        if (a.priority != b.priority) return a.priority > b.priority;
        break;
      case QueuePolicy::Sjf:
        if (a.estimate != b.estimate) return a.estimate < b.estimate;
        break;
    }
    return a.seq < b.seq;
  }

  QueuePolicy policy_;
  std::size_t capacity_;
  std::uint64_t woken_total_ = 0;
  std::uint64_t defers_total_ = 0;
  std::size_t backoff_peak_ = 0;
  std::vector<Item> eligible_;  // gate passed (or never gated); pick() scans these
  std::vector<Item> backoff_;   // parked until a wake() at not_before
};

}  // namespace gpupipe::sched
