// Canned serving workloads and the job-mix file format.
//
// A job mix is a plain-text description of a serving scenario, one job per
// line:
//
//     # app    size    priority  arrival_s  [deadline_s]
//     stream   medium  1         0.000
//     stencil  large   0         0.002      0.050
//
// `app` picks the kernel shape (stream: out = a*in + b, window 1;
// stencil: 3-point row stencil, window 3; compute: flop-heavy polynomial,
// window 1), `size` the host array extents (small/medium/large), `arrival_s`
// the virtual arrival time, and the optional `deadline_s` a completion
// target relative to arrival. make_serve_job() turns a line into a sched::Job
// with deterministic host data, roofline cost hints matching the kernels it
// emits, and a verify() closure that recomputes the expected output on the
// host (Functional mode).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace gpupipe::sched {

/// One parsed line of a job-mix file.
struct JobMixLine {
  std::string app;   ///< stream | stencil | compute
  std::string size;  ///< small | medium | large
  int priority = 0;
  SimTime arrival = 0.0;
  std::optional<SimTime> deadline{};  ///< relative to arrival
};

/// Parses a job-mix stream; throws gpupipe::Error with the offending line
/// number on malformed input.
std::vector<JobMixLine> parse_job_mix(std::istream& is);

/// A deterministic built-in mix of `n` jobs cycling through the app and
/// size templates with staggered arrivals and varied priorities.
std::vector<JobMixLine> default_job_mix(int n);

/// A deterministic mix of `n` synthetic tenants for scale runs: the same
/// app/size cycling as default_job_mix but with serve-tight arrivals (50 us
/// spacing) so large fleets genuinely contend. Pair with make_synthetic_job
/// and ExecMode::Modeled — gpupipe_serve's --jobs flag does exactly that.
std::vector<JobMixLine> synthetic_job_mix(int n);

/// A runnable job plus the host arrays backing it and a result check.
struct ServeJob {
  Job job;
  std::shared_ptr<std::vector<double>> in;
  std::shared_ptr<std::vector<double>> out;

  /// Recomputes the expected output on the host; true when the device
  /// result matches exactly (Functional mode).
  bool verify() const;
  /// Order-independent digest of the output array (determinism checks).
  double output_checksum() const;

  // Expected-value parameters captured at construction (verify()).
  std::string app;
  std::int64_t rows = 0;
  std::int64_t row_elems = 0;
  /// Chain-tail jobs (make_chain_jobs): the stage apps applied head-to-tail;
  /// verify() then recomputes the whole chain from `in` (the chain head's
  /// fresh input), because intermediate host buffers stay unwritten when the
  /// scheduler stitches the chain device-resident.
  std::vector<std::string> chain;
  /// Mid-chain stage: its host output is undefined under stitching, so
  /// verify() passes trivially and output_checksum() returns 0 (the chain
  /// tail carries the end-to-end check in both stitched and plain runs).
  bool intermediate = false;
};

/// Instantiates `line` as job number `index` (names the job and seeds its
/// deterministic input data). Throws on an unknown app or size.
ServeJob make_serve_job(const JobMixLine& line, int index);

/// Instantiates `line` with the same spec, kernel shape, and cost hints as
/// make_serve_job but *no host backing*: the array host pointers are
/// disjoint placeholder addresses that are never dereferenced, because the
/// job must run on ExecMode::Modeled devices (functional payloads skipped).
/// verify() trivially passes for such jobs. This keeps a 100k-tenant mix at
/// O(1) host memory instead of ~1.5 MiB per job.
ServeJob make_synthetic_job(const JobMixLine& line, int index);

/// Builds `chains` lineage chains of `stages` pointwise jobs each
/// (stream/compute alternating; same `size` geometry throughout). Stage k's
/// input array aliases stage k-1's output buffer and is declared with
/// Job::consumes, so the scheduler can stitch the intermediate host
/// round-trips into device-resident handoffs. Jobs are returned in
/// submission order and wired against ids starting at `first_id`: the
/// caller must submit them in order onto a scheduler that already holds
/// exactly `first_id` jobs. The returned vector must be kept alive as a
/// whole — stages share host buffers across entries.
std::vector<ServeJob> make_chain_jobs(int chains, int stages, const std::string& size,
                                      int first_id);

}  // namespace gpupipe::sched
