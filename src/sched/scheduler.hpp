// Multi-tenant job scheduler over a shared simulated machine.
//
// The executors below src/core run one region at a time (or one region
// mirrored across devices — MultiPipeline). The Scheduler generalizes that
// to a serving scenario: many independent jobs, arriving over virtual time,
// share the devices of one gpu::SharedContext. Each admitted job becomes a
// core::Pipeline driven through the split-phase enqueue()/wait() interface,
// so chunks of concurrent jobs interleave on a device's copy and compute
// engines inside the single discrete-event simulation — overlap across
// tenants falls out of the same event machinery that overlaps stages within
// one pipeline.
//
// Control loop (all in virtual time, fully deterministic):
//   * arrivals enter a bounded ready queue (JobQueue); a full queue is
//     backpressure — the job waits at the source,
//   * a queue policy (FIFO / priority / shortest-job-first on the cost-model
//     dry-run estimate) picks the next job; a placement policy (least-loaded
//     by outstanding estimated seconds / round-robin) orders the devices,
//   * the AdmissionController solves the job against the device's remaining
//     memory budget, shrinking the chunk/stream shape exactly like a solo
//     pipeline under pipeline_mem_limit; admission failure retries with
//     exponential backoff, and a job is rejected only when it cannot fit an
//     idle device or its retry budget runs out,
//   * completion is detected by events recorded on the job's own streams —
//     never by draining the device, which would serialize tenants.
//
// The scheduler never preempts and never advances time while any decision
// is possible; time only moves to the next arrival, retry gate, or job
// completion. Ties everywhere break by submission order.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/timeseries.hpp"
#include "sched/admission.hpp"
#include "sched/job.hpp"
#include "sched/queue.hpp"
#include "sched/shard.hpp"

namespace gpupipe::sched {

/// How the scheduler orders devices when placing an admitted job.
enum class PlacementPolicy {
  LeastLoaded,  ///< fewest outstanding estimated seconds first
  RoundRobin,   ///< rotate a cursor over the devices
};

inline const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::LeastLoaded: return "least-loaded";
    case PlacementPolicy::RoundRobin: return "round-robin";
  }
  return "?";
}

/// One scripted elastic capacity change: a device joins or leaves the
/// schedulable set at `time` (virtual). A leaving device drains what it
/// already runs — in-flight solo jobs and the current shard round finish —
/// but receives nothing new; sharded jobs re-partition their remaining
/// iterations at the next round boundary.
struct DeviceEvent {
  SimTime time = 0.0;
  int device = 0;
  bool join = false;  ///< false = leave
};

struct SchedulerOptions {
  QueuePolicy queue_policy = QueuePolicy::Fifo;
  PlacementPolicy placement = PlacementPolicy::LeastLoaded;
  /// Per-device committed-footprint cap; 0 means each device's free memory
  /// at scheduler construction.
  Bytes device_mem_cap = 0;
  /// Ready-queue capacity; arrivals beyond it are backpressured.
  std::size_t queue_capacity = 64;
  /// Exponential backoff between admission attempts of one job.
  SimTime backoff_initial = msec(1);
  double backoff_factor = 2.0;
  SimTime backoff_max = 0.5;
  /// Rejection threshold: placement rounds before the scheduler gives up.
  int max_admission_attempts = 12;

  /// Elastic sharding (sched/shard.hpp): a queued job whose predicted solo
  /// ring footprint reaches this threshold is split across the available
  /// devices with P2P halo exchange instead of running on one. 0 = off.
  Bytes shard_threshold = 0;
  /// Devices one sharded job may span per round.
  int max_shards = 4;
  /// Loop iterations per shard round; round boundaries are where an
  /// elastic reshard (device join/leave, load shift) takes effect.
  /// 0 = one round per job (no mid-job resharding).
  std::int64_t reshard_interval = 0;
  /// Scripted device join/leave times (applied in time order; ties by
  /// position). Empty = the device set is fixed for the whole run.
  std::vector<DeviceEvent> device_events;

  /// Inter-job plan stitching (docs/stitching.md): when a job declares
  /// lineage (Job::consumes) and the cost model predicts a win, the
  /// producer's D2H tail is redirected into device-resident staging and the
  /// consumer's H2D head reads it back, skipping the host round-trip. The
  /// consumer prefers the producer's device; a placement split falls back
  /// to a P2P staging mirror. Lineage-free mixes are unaffected.
  bool stitching = true;

  /// Live observability hooks, all optional and caller-owned (must outlive
  /// run()). With every hook null the control loop is byte-identical to an
  /// unobserved run: recording never changes a scheduling decision.
  /// Structured control-flow events (admission, shrink, reject, backoff,
  /// placement, completion, deadline miss) land here with the job's trace
  /// id.
  telemetry::FlightRecorder* recorder = nullptr;
  /// Stall / deadline-storm / disk-corruption anomaly detector; fed
  /// completions and misses live, checked on the sampling cadence.
  telemetry::Watchdog* watchdog = nullptr;
  /// Periodic sampling sink (queue depth, committed bytes, utilization,
  /// plan-cache hit rate over time).
  telemetry::TimeSeriesStore* series = nullptr;
  /// Sim-time cadence for `series`/`watchdog` sampling ticks (0 = off).
  /// Ticks bound virtual-time advancement, so samples land at exact
  /// multiples of the cadence and two runs' series are byte-identical.
  SimTime sample_every = 0.0;
};

/// What one run() produced (virtual times; jobs in submission order).
struct ScheduleReport {
  SimTime start = 0.0;     ///< host time when run() began
  SimTime makespan = 0.0;  ///< last completion minus start
  int completed = 0;
  int rejected = 0;
  std::int64_t backpressure_events = 0;
  std::int64_t admission_retries = 0;
  std::int64_t admission_shrinks = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t stitched_jobs = 0;      ///< jobs that ran with >= 1 handoff wired
  Bytes stitched_bytes = 0;            ///< host transfer bytes stitched away
  std::int64_t handoff_fallbacks = 0;  ///< consume links that crossed devices
  std::vector<JobRecord> jobs;
};

/// Admits, places, and interleaves jobs across the devices of one shared
/// context. Submit every job first, then call run() once.
class Scheduler {
 public:
  /// All devices must share one SharedContext (one host thread, one clock).
  Scheduler(std::vector<gpu::Gpu*> devices, SchedulerOptions opts = {});
  /// Frees any handoff staging a failed run() left behind (normal runs
  /// retire every link when its last consumer turns terminal).
  ~Scheduler();

  /// Registers a job; returns its id (== submission index). The solo
  /// runtime estimate (SJF rank, least-loaded weight) is computed here with
  /// a cost-model dry run against the first device's profile.
  int submit(Job job);

  /// Executes every submitted job to completion or rejection. Call once.
  ScheduleReport run();

  /// Derives the `sched.` telemetry namespace from the finished run into
  /// `reg` (metric names get `prefix` prepended). Pull-based, like
  /// Pipeline::collect_metrics.
  void collect_metrics(telemetry::Registry& reg, const std::string& prefix = {}) const;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const AdmissionController& admission() const { return admission_; }
  const SchedulerOptions& options() const { return opts_; }
  const std::vector<JobRecord>& records() const { return records_; }
  /// Host-transfer totals summed over every completed solo pipeline — the
  /// denominator/numerator pair behind bench_stitch's savings floor.
  Bytes total_h2d_bytes() const { return h2d_bytes_total_; }
  Bytes total_d2h_bytes() const { return d2h_bytes_total_; }

 private:
  /// One device-resident lineage handoff: a producer's output array stashed
  /// in a staging allocation on its device, read back by the consumers'
  /// handoff-in nodes. Staging (and any mirror) lives until every wired
  /// consumer is terminal; its bytes are committed to admission so tenants
  /// cannot be planned into memory the link occupies.
  struct HandoffLink {
    int id = -1;            ///< spec-side link id (ArrayHandoff::link)
    int producer = -1;      ///< producer job id
    std::string array;      ///< producer's array name (consumer lookup key)
    int device = -1;        ///< device owning `staging`
    std::byte* staging = nullptr;
    Bytes bytes = 0;        ///< full-array staging size
    Bytes unit = 0;         ///< bytes per split index
    std::int64_t lo = 0;    ///< split index staging[0] holds
    int consumers = 0;      ///< wired consumers not yet terminal
    /// Cross-device fallback: a placement split mirrors the staging onto
    /// the consumer's device with one P2P copy; `moved` orders the
    /// consumer's handoff-in reads after that copy.
    std::byte* mirror = nullptr;
    int mirror_device = -1;
    gpu::EventPtr moved;
  };

  /// PlanExchange bound to one job's pipeline: routes its DeviceHandoff
  /// nodes between the ring buffers and the link staging (same pointer
  /// arithmetic as the shard halo exchange, but across jobs instead of
  /// across shards).
  struct HandoffExchange final : core::PlanExchange {
    core::Pipeline* pipeline = nullptr;
    int device = -1;
    std::vector<HandoffLink*> links;  ///< by spec array index; null = unwired
    void issue(gpu::Gpu& g, gpu::Stream& s, const core::PlanNode& n) override;
  };

  struct Active {
    int id = -1;
    int device = -1;
    Bytes footprint = 0;
    SimTime estimate = 0.0;
    std::unique_ptr<core::Pipeline> pipeline;
    std::unique_ptr<ShardRun> shard;  ///< multi-device path (pipeline null)
    std::unique_ptr<HandoffExchange> exchange;  ///< set when handoffs are wired
    /// Estimated-seconds load added per device at start (removed on
    /// completion) — one entry for solo jobs, one per shard otherwise.
    std::vector<std::pair<int, SimTime>> shares;
    std::vector<gpu::EventPtr> events;  ///< one per pipeline stream
    bool done() const {
      // A stalled sharded job (round-boundary wait for capacity) is not
      // done: reporting done would spin the control loop without letting
      // time advance to the device event that unblocks it.
      if (shard) return shard->live() && shard->round_done();
      for (const auto& ev : events)
        if (!ev->complete()) return false;
      return true;
    }
  };

  SimTime host_now() const { return ctx_->host_time; }
  bool all_terminal() const {
    return completed_ + rejected_ == static_cast<int>(jobs_.size());
  }

  bool poll_completions();
  bool intake();
  bool dispatch();
  /// Applies scripted DeviceEvents whose time has passed.
  bool process_device_events();
  /// Indices of devices currently in the schedulable set.
  std::vector<int> available_devices() const;
  /// Whether `id` qualifies for the sharded path right now.
  bool shard_eligible(int id) const;
  /// Tries to start `id` sharded across >= 2 available devices; false
  /// leaves the job queued for the solo path.
  bool try_start_sharded(int id);
  /// (Re)starts the next round of an active sharded job with fresh devices
  /// and weights; false when no device can take a shard right now.
  bool launch_shard_round(Active& a);
  void start_job(int id, int dev, const AdmissionDecision& d);
  void reject_job(int id, std::int64_t reason_code, std::string reason);
  void complete_job(Active& a);
  std::vector<int> placement_order() const;
  /// placement_order with the device holding `id`'s consumed staging (if
  /// any) promoted to the front — the lineage co-placement preference.
  std::vector<int> placement_order_for(int id) const;
  /// True when every lineage producer of `id` reached a terminal state.
  bool lineage_ready(int id) const;
  /// Moves arrived lineage waiters whose producers turned terminal into the
  /// ready queue; consumers of a rejected producer are rejected here.
  bool drain_lineage_waiters();
  HandoffLink* find_link(int producer, const std::string& array);
  /// Wires produce-side ArrayHandoffs into `id`'s frozen `spec` for every
  /// stitchable consumer array (cost-model gated; staging on `dev`).
  void wire_producer_handoffs(int id, int dev, core::PipelineSpec& spec, Active& a);
  /// Wires consume-side ArrayHandoffs for inputs whose producer stashed a
  /// link; a link on another device gets a P2P mirror (the fallback path).
  void wire_consumer_handoffs(int id, int dev, core::PipelineSpec& spec, Active& a);
  /// Drops one consumer from every link `id` consumed, retiring drained
  /// links (staging freed, admission released).
  void release_consumed_links(int id);
  void retire_link(HandoffLink& link);
  /// Mirrors `link`'s staging onto `dev` with one P2P copy; false when it
  /// cannot fit (or a mirror already lives on a third device).
  bool stage_mirror(HandoffLink& link, int dev);
  /// Last resort when a mirror cannot fit: drains the staging back to the
  /// producer's host buffer so the consumer can run unstitched.
  void rescue_to_host(HandoffLink& link);
  void advance();
  void advance_to(SimTime t);
  void advance_until_completion_or(SimTime bound);
  void note_queue_depth();
  void record_flight(telemetry::FlightEventKind kind, int job, std::int64_t a = 0,
                     std::int64_t b = 0);
  void maybe_sample();
  void sample_at(SimTime t);
  bool sampling() const {
    return opts_.sample_every > 0.0 &&
           (opts_.series != nullptr || opts_.watchdog != nullptr);
  }

  std::vector<gpu::Gpu*> devices_;
  std::shared_ptr<gpu::SharedContext> ctx_;
  SchedulerOptions opts_;
  AdmissionController admission_;
  JobQueue queue_;

  std::vector<Job> jobs_;
  std::vector<JobRecord> records_;
  std::vector<char> stalled_;  ///< backpressure counted once per job
  std::vector<int> arrival_order_;
  std::size_t next_pending_ = 0;
  std::vector<Active> active_;
  std::vector<SimTime> outstanding_;  ///< estimated seconds running per device
  std::vector<char> dev_available_;   ///< elastic membership (DeviceEvents)
  std::vector<DeviceEvent> dev_events_;  ///< sorted by (time, position)
  std::size_t next_dev_event_ = 0;
  std::vector<std::int64_t> dev_completed_;
  std::vector<SimTime> busy0_;  ///< compute busy time at run() start
  int rr_cursor_ = 0;

  bool ran_ = false;
  SimTime t0_ = 0.0;
  SimTime next_sample_ = std::numeric_limits<SimTime>::infinity();
  SimTime makespan_ = 0.0;
  int completed_ = 0;
  int rejected_ = 0;
  std::int64_t backpressure_events_ = 0;
  std::int64_t admission_retries_ = 0;
  std::int64_t admission_shrinks_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t sharded_jobs_ = 0;
  std::int64_t shard_rounds_ = 0;
  Bytes p2p_halo_bytes_ = 0;
  std::int64_t lineage_jobs_ = 0;  ///< jobs submitted with inputs (metric gate)
  std::int64_t stitched_jobs_ = 0;
  Bytes stitched_bytes_ = 0;
  std::int64_t handoff_fallbacks_ = 0;
  Bytes h2d_bytes_total_ = 0;
  Bytes d2h_bytes_total_ = 0;
  std::vector<std::unique_ptr<HandoffLink>> links_;
  std::vector<int> lineage_wait_;  ///< arrived, held for producer completion
  int next_link_id_ = 0;
  std::size_t queue_depth_peak_ = 0;
  std::vector<std::size_t> queue_depth_samples_;
};

}  // namespace gpupipe::sched
