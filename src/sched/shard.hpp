// Elastic multi-device sharding with P2P halo exchange (extension).
//
// MultiPipeline (core/multi.hpp) statically splits ONE region across every
// device by a fixed weight vector decided before launch. This module is the
// dynamic counterpart for the serving path: the scheduler hands a single
// oversized job to a ShardRun, which partitions the outer loop across the
// devices that are available *right now*, weighted by live load, and keeps
// re-deciding at round boundaries — devices can join or leave between
// rounds (elasticity) and the remaining iterations are re-balanced each
// time.
//
// The data-movement difference from MultiPipeline: input windows that
// overhang a shard boundary (window > stride) are NOT re-uploaded from the
// host by the neighbouring shard. core::shard_pipeline_specs wires ShardHalo
// entries into each sub-spec, the plan builder lowers them to P2pSend /
// P2pRecv nodes, and the ShardExchange here implements those nodes with
// device-to-device copies (gpu::memcpy_p2p_async into a staging buffer on
// the receiver, then an on-device memcpy into the receiver's ring slots),
// ordered by a cross-device event. Host H2D traffic of a sharded run is
// therefore byte-identical to a solo run — zero host bounce for halos —
// which tests assert via PipelineStats.
//
// Determinism: shard outputs are disjoint per iteration and halo slices are
// copies of data the sender uploaded from the same host array, so results
// are bit-identical for ANY partitioning — including a mid-run reshard
// after a device leaves. The run-twice checksum gates in tests/shard_test
// rely on this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flight_recorder.hpp"
#include "core/pipeline.hpp"
#include "sched/admission.hpp"
#include "sched/job.hpp"

namespace gpupipe::sched {

/// Whether `spec` can be sharded: static schedule, dim-0 affine splits, no
/// pre-existing halo wiring, and at least two chunks to split. (The kernel
/// factory must also be range-agnostic — true of factories that address
/// exclusively through ChunkContext, which the executor already requires.)
bool shardable(const core::PipelineSpec& spec);

/// Load-aware shard weights for `devices` (indices into the scheduler's
/// device vector): w_d = 1 / (est_d + outstanding_d) — the reciprocal of
/// when device d could finish this job solo after draining its current
/// work, so faster and idler devices take proportionally more iterations.
/// A device whose estimate is unknown/infinite gets weight 0 (dropped).
std::vector<double> shard_weights(const std::vector<int>& devices,
                                  const std::vector<SimTime>& solo_estimate,
                                  const std::vector<SimTime>& outstanding);

/// ShardRun knobs and observability hooks.
struct ShardRunOptions {
  /// Devices one sharded job may span per round.
  int max_shards = 4;
  /// Loop iterations per round; round boundaries are the reshard points.
  /// 0 = a single round covering the whole loop (no mid-job resharding).
  std::int64_t reshard_interval = 0;
  /// Trace id stamped on every task the shards submit.
  std::int32_t trace_id = -1;
  /// Flight hook for P2pXfer events: (kind, a, b, device). Null = off.
  std::function<void(telemetry::FlightEventKind, std::int64_t, std::int64_t, int)>
      flight;
};

/// One sharded job execution: a sequence of rounds, each an admission-
/// checked multi-device partition of the remaining iterations, with P2P
/// halo exchange between neighbouring shards. Driven by the Scheduler
/// through start_round / round_done / finish_round.
class ShardRun {
 public:
  /// `job` and `admission` must outlive the run; `devices` is the
  /// scheduler's full device vector (rounds use subsets of it).
  ShardRun(const Job& job, std::vector<gpu::Gpu*> devices,
           AdmissionController& admission, ShardRunOptions opts);
  ~ShardRun();
  ShardRun(const ShardRun&) = delete;
  ShardRun& operator=(const ShardRun&) = delete;

  /// Partitions the next round over `devices` by `weights` (parallel
  /// vectors), admits every shard, commits its memory, builds the shard
  /// pipelines, wires the halo links, and enqueues everything (senders
  /// before receivers). Devices whose shard fails admission are dropped
  /// and the rest re-partitioned. Returns false — with nothing committed
  /// or enqueued — when no device can admit a shard.
  bool start_round(const std::vector<int>& devices, const std::vector<double>& weights);

  /// True when the live round's stream events have all fired (or no round
  /// is live). Never advances time.
  bool round_done() const;
  /// Whether a round is currently enqueued.
  bool live() const { return !shards_.empty(); }
  /// Drains the finished round, releases its admission commits and staging
  /// buffers, folds its transfer stats into the run totals, and advances
  /// the iteration cursor.
  void finish_round();

  /// All iterations produced?
  bool finished() const { return cursor_ >= end_; }
  /// Iterations not yet covered by a finished round.
  std::int64_t remaining() const { return end_ - cursor_; }

  // --- live-round accounting (valid while live()) ---
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Bitmask of the live round's device indices (bit d = device d).
  std::int64_t device_mask() const;
  /// The live round's device indices, shard order.
  std::vector<int> shard_devices() const;
  /// Committed ring-buffer bytes of the live round, all shards.
  Bytes round_footprint() const;
  /// Halo bytes the live round pushed device-to-device at enqueue.
  Bytes round_p2p_bytes() const;
  /// First shard's admitted shape (what the scheduler reports for the job).
  int first_device() const;
  std::int64_t first_chunk_size() const { return chunk0_; }
  int first_num_streams() const { return streams0_; }
  bool shrunk() const { return shrunk_; }

  // --- run totals (accumulated by finish_round) ---
  int rounds() const { return rounds_; }
  Bytes p2p_bytes() const { return p2p_bytes_; }
  Bytes h2d_bytes() const { return h2d_bytes_; }
  Bytes d2h_bytes() const { return d2h_bytes_; }
  /// Timestamp of the last stream event across all finished rounds.
  SimTime finish_time() const { return finish_time_; }

 private:
  /// One staged halo channel between a neighbouring shard pair, per array:
  /// the sender P2P-copies its overhanging window head into `stage` (on the
  /// receiver's device) and records `sent`; the receiver waits on `sent`
  /// and lands the slice into its own ring slots with an on-device copy.
  struct HaloLink {
    gpu::Gpu* src = nullptr;
    gpu::Gpu* dst = nullptr;
    int src_index = -1;  ///< scheduler device indices (flight events)
    int dst_index = -1;
    std::byte* stage = nullptr;
    Bytes stage_bytes = 0;
    std::int64_t lo = 0;  ///< first staged split index (the shard boundary)
    Bytes unit = 0;       ///< bytes per split index (the array's slab size)
    gpu::EventPtr sent;
    Bytes moved = 0;  ///< bytes pushed through this link (this round)
  };

  /// Per-shard PlanExchange: implements the shard's P2pSend/P2pRecv nodes
  /// against its HaloLinks.
  class Exchange final : public core::PlanExchange {
   public:
    void issue(gpu::Gpu& g, gpu::Stream& s, const core::PlanNode& n) override;
    core::Pipeline* pipeline = nullptr;
    std::vector<HaloLink*> send;  ///< by array index; null = no halo
    std::vector<HaloLink*> recv;
  };

  struct ShardExec {
    int device = -1;  ///< scheduler device index
    Bytes footprint = 0;
    std::unique_ptr<Exchange> exchange;
    std::unique_ptr<core::Pipeline> pipeline;
    std::vector<gpu::EventPtr> events;
  };

  const Job& job_;
  std::vector<gpu::Gpu*> devices_;
  AdmissionController& admission_;
  ShardRunOptions opts_;

  std::int64_t cursor_ = 0;
  std::int64_t end_ = 0;
  std::int64_t round_end_ = 0;  ///< where the live round's slice stops
  std::vector<ShardExec> shards_;  ///< live round, ascending shard order
  std::vector<std::unique_ptr<HaloLink>> links_;

  std::int64_t chunk0_ = 0;
  int streams0_ = 0;
  bool shrunk_ = false;
  int rounds_ = 0;
  Bytes p2p_bytes_ = 0;
  Bytes h2d_bytes_ = 0;
  Bytes d2h_bytes_ = 0;
  SimTime finish_time_ = 0.0;
};

}  // namespace gpupipe::sched
