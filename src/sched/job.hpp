// Multi-tenant job descriptors (extension).
//
// Everything below src/sched executes exactly one pipelined region; a Job
// wraps such a region (spec + kernel factory) with the attributes a
// multi-tenant scheduler needs: priority, arrival time, an optional
// deadline, and per-iteration roofline hints that feed the cost-model dry
// run (core::estimate_pipeline_runtime) used for shortest-job-first
// ordering and least-loaded placement. JACC (arXiv:2110.14340) grows a
// directive runtime into a multi-GPU scheduling framework the same way;
// here the substrate is the deterministic simulator, so every scheduling
// decision is bit-reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"

namespace gpupipe::sched {

/// One lineage edge: this job consumes an array another job produced.
/// Declared with Job::consumes(); the scheduler holds the consumer until
/// the producer completes and, when the cost model agrees, stitches the
/// producer's D2H tail and the consumer's H2D head into a device-resident
/// handoff (core::ArrayHandoff + PlanOp::DeviceHandoff).
struct JobInput {
  int producer = -1;           ///< submit() id of the producing job
  std::string array;           ///< this job's input array (map `to`/`tofrom`)
  std::string producer_array;  ///< producer's output array; empty = same name
};

/// One offload request: a pipelined region plus scheduling attributes.
struct Job {
  std::string name = "job";
  core::PipelineSpec spec;
  core::KernelFactory kernel;
  /// Larger values run earlier under the Priority queue policy.
  int priority = 0;
  /// Virtual time at which the job becomes visible to the scheduler.
  SimTime arrival = 0.0;
  /// Optional absolute virtual-time completion target. The scheduler never
  /// preempts; a miss is recorded in the job's record, not enforced.
  std::optional<SimTime> deadline;
  /// Roofline kernel cost per loop iteration for the dry-run estimate
  /// (zero hints degrade the estimate to transfer time only).
  double flops_per_iter = 0.0;
  double bytes_per_iter = 0.0;
  /// Trace id stamped into this job's flight-recorder events and device
  /// spans (sim::Span::trace). -1 (the default) assigns the job id at
  /// submit(); callers replaying external traces can pin their own ids.
  std::int32_t trace_id = -1;
  /// Lineage edges: arrays this job reads that earlier-submitted jobs
  /// produce. The scheduler defers the job until every producer is
  /// terminal (rejecting it if a producer was rejected).
  std::vector<JobInput> inputs;

  /// Declares that this job's `array` is produced by `producer_job`'s
  /// `producer_array` (empty: the producer's array of the same name).
  /// Fluent, so job mixes can chain: `job.consumes(id, "x").consumes(...)`.
  Job& consumes(int producer_job, std::string array, std::string producer_array = {}) {
    inputs.push_back({producer_job, std::move(array), std::move(producer_array)});
    return *this;
  }
};

enum class JobState {
  Pending,    ///< submitted, arrival time not reached (or backpressured)
  Queued,     ///< in the ready queue, awaiting admission
  Running,    ///< admitted; its pipeline is enqueued on a device
  Completed,  ///< all stream work drained
  Rejected,   ///< admission gave up (cannot fit even on an idle device, or
              ///< the retry budget ran out)
};

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

/// Everything the scheduler learned about one job (times are virtual).
struct JobRecord {
  int id = -1;
  std::string name;
  JobState state = JobState::Pending;
  std::int32_t trace_id = -1;  ///< id joining recorder events and spans
  int device = -1;             ///< placement; -1 until admitted
  int priority = 0;
  SimTime arrival = 0.0;
  SimTime enqueue_time = 0.0;  ///< entered the ready queue (backpressure delays this)
  SimTime start = 0.0;         ///< admitted and enqueued on the device
  SimTime finish = 0.0;        ///< timestamp of its last stream event
  SimTime estimate = 0.0;      ///< dry-run solo estimate (the SJF rank key)
  Bytes footprint = 0;         ///< committed device ring-buffer bytes
  std::int64_t chunk_size = 0; ///< admitted shape
  int num_streams = 0;
  bool shrunk = false;         ///< admission shrank the requested shape
  int admission_attempts = 0;  ///< placement rounds the job needed
  bool deadline_missed = false;
  std::string reject_reason;
  /// Inter-job stitching outcome (docs/stitching.md). `stitched_out` means
  /// at least one output array was handed off device-resident — its host
  /// buffer was never written, so host-side verification must skip it.
  bool stitched_out = false;
  bool stitched_in = false;       ///< at least one input arrived via handoff
  Bytes stitched_bytes = 0;       ///< host transfer bytes this job avoided
  bool handoff_fallback = false;  ///< a consumed link needed a P2P mirror

  SimTime wait() const { return start - arrival; }
  SimTime service() const { return finish - start; }
  SimTime turnaround() const { return finish - arrival; }
};

}  // namespace gpupipe::sched
