#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/plan_cache.hpp"

namespace gpupipe::sched {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

const std::vector<double>& time_bounds() {
  static const std::vector<double> b = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                                        0.1,  0.3,  1.0,  3.0,  10.0};
  return b;
}

int array_index(const core::PipelineSpec& spec, const std::string& name) {
  for (std::size_t i = 0; i < spec.arrays.size(); ++i)
    if (spec.arrays[i].name == name) return static_cast<int>(i);
  return -1;
}
}  // namespace

Scheduler::Scheduler(std::vector<gpu::Gpu*> devices, SchedulerOptions opts)
    : devices_(std::move(devices)),
      opts_(opts),
      admission_(devices_, opts.device_mem_cap),
      queue_(opts.queue_policy, opts.queue_capacity) {
  require(!devices_.empty(), "scheduler needs at least one device");
  for (gpu::Gpu* g : devices_) require(g != nullptr, "scheduler device is null");
  ctx_ = devices_[0]->context();
  for (gpu::Gpu* g : devices_)
    require(g->context() == ctx_,
            "scheduler devices must share one SharedContext (one host thread)");
  require(opts_.backoff_factor >= 1.0, "backoff factor must be >= 1");
  require(opts_.max_admission_attempts >= 1, "max admission attempts must be >= 1");
  require(opts_.max_shards >= 1, "max_shards must be >= 1");
  outstanding_.assign(devices_.size(), 0.0);
  dev_available_.assign(devices_.size(), 1);
  dev_completed_.assign(devices_.size(), 0);
  dev_events_ = opts_.device_events;
  std::stable_sort(dev_events_.begin(), dev_events_.end(),
                   [](const DeviceEvent& a, const DeviceEvent& b) { return a.time < b.time; });
  for (const DeviceEvent& e : dev_events_)
    require(e.device >= 0 && e.device < num_devices(),
            "device event names a device outside the machine");
}

Scheduler::~Scheduler() {
  for (auto& l : links_) retire_link(*l);
}

int Scheduler::submit(Job job) {
  require(!ran_, "submit after run() is not supported");
  job.spec.validate();
  require(job.spec.schedule == core::ScheduleKind::Static,
          "scheduler jobs need the static schedule (split-phase execution)");
  const int id = static_cast<int>(jobs_.size());
  for (const JobInput& in : job.inputs) {
    require(in.producer >= 0 && in.producer < id,
            "job '" + job.name + "': lineage producer must be submitted first");
    bool found = false;
    for (const core::ArraySpec& a : job.spec.arrays) {
      if (a.name != in.array) continue;
      found = true;
      require(a.map != core::MapType::From,
              "job '" + job.name + "': consumed array '" + in.array +
                  "' must be an input (map to/tofrom)");
    }
    require(found, "job '" + job.name + "': consumes unmapped array '" + in.array + "'");
  }
  if (!job.inputs.empty()) ++lineage_jobs_;

  JobRecord r;
  r.id = id;
  r.name = job.name;
  // The trace id joins this job's flight-recorder events with the spans its
  // pipeline records on the device (sim::Span::trace). Deterministic by
  // default: the submission index, unless the caller pinned one.
  r.trace_id = job.trace_id >= 0 ? job.trace_id : static_cast<std::int32_t>(id);
  r.priority = job.priority;
  r.arrival = job.arrival;
  core::DryRunCost cost;
  cost.flops_per_iter = job.flops_per_iter;
  cost.bytes_per_iter = job.bytes_per_iter;
  try {
    // Estimated against the first device: placement assumes a homogeneous
    // machine (the usual serving setup; MultiPipeline handles heterogeneous
    // splits of a single region).
    r.estimate = core::estimate_pipeline_runtime(*devices_[0], job.spec, cost,
                                                 admission_.cap(0));
  } catch (const gpu::OomError&) {
    // Cannot fit even an idle device; dispatch rejects it through the
    // normal impossible() path.
    r.estimate = kInf;
  }

  jobs_.push_back(std::move(job));
  records_.push_back(std::move(r));
  stalled_.push_back(0);
  return id;
}

// --- Control loop ---

ScheduleReport Scheduler::run() {
  require(!ran_, "Scheduler::run may be called once");
  ran_ = true;
  t0_ = host_now();
  busy0_.clear();
  for (gpu::Gpu* g : devices_) busy0_.push_back(g->compute_busy_time());

  arrival_order_.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) arrival_order_[i] = static_cast<int>(i);
  std::sort(arrival_order_.begin(), arrival_order_.end(), [this](int a, int b) {
    const SimTime ta = jobs_[static_cast<std::size_t>(a)].arrival;
    const SimTime tb = jobs_[static_cast<std::size_t>(b)].arrival;
    if (ta != tb) return ta < tb;
    return a < b;
  });

  if (sampling()) next_sample_ = t0_ + opts_.sample_every;

  while (!all_terminal()) {
    bool progress = true;
    while (progress) {
      progress = false;
      if (process_device_events()) progress = true;
      if (poll_completions()) progress = true;
      if (intake()) progress = true;
      if (dispatch()) progress = true;
    }
    // Sample after the decision loop drained: the series then reflect the
    // post-completion, post-dispatch state at the tick time.
    maybe_sample();
    if (all_terminal()) break;
    advance();
  }

  ScheduleReport rep;
  rep.start = t0_;
  SimTime last = t0_;
  for (const JobRecord& r : records_)
    if (r.state == JobState::Completed) last = std::max(last, r.finish);
  makespan_ = last - t0_;
  rep.makespan = makespan_;
  rep.completed = completed_;
  rep.rejected = rejected_;
  rep.backpressure_events = backpressure_events_;
  rep.admission_retries = admission_retries_;
  rep.admission_shrinks = admission_shrinks_;
  rep.deadline_misses = deadline_misses_;
  rep.stitched_jobs = stitched_jobs_;
  rep.stitched_bytes = stitched_bytes_;
  rep.handoff_fallbacks = handoff_fallbacks_;
  rep.jobs = records_;
  return rep;
}

bool Scheduler::poll_completions() {
  bool progress = false;
  for (std::size_t i = 0; i < active_.size();) {
    Active& a = active_[i];
    if (a.shard && !a.shard->live() && !a.shard->finished()) {
      // Stalled at a round boundary (no device could take a shard when the
      // last round drained) — retry now that the picture may have changed.
      if (launch_shard_round(a)) {
        ++shard_rounds_;
        record_flight(telemetry::FlightEventKind::Reshard, a.id,
                      a.shard->device_mask(), a.shard->remaining());
        progress = true;
      }
      ++i;
      continue;
    }
    if (!a.done()) {
      ++i;
      continue;
    }
    if (a.shard) {
      a.shard->finish_round();
      progress = true;
      if (!a.shard->finished()) {
        // Round boundary: re-partition the remaining iterations over the
        // devices available *now* — the elastic reshard point. A failed
        // launch (e.g. every device left) keeps the job active; it retries
        // once a device event or completion changes the picture.
        if (launch_shard_round(a)) {
          ++shard_rounds_;
          record_flight(telemetry::FlightEventKind::Reshard, a.id,
                        a.shard->device_mask(), a.shard->remaining());
          progress = true;
        }
        ++i;
        continue;
      }
    }
    complete_job(a);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    progress = true;
  }
  return progress;
}

bool Scheduler::process_device_events() {
  bool progress = false;
  while (next_dev_event_ < dev_events_.size() &&
         dev_events_[next_dev_event_].time <= host_now()) {
    const DeviceEvent& e = dev_events_[next_dev_event_++];
    dev_available_[static_cast<std::size_t>(e.device)] = e.join ? 1 : 0;
    log_debug("sched: dev", e.device, e.join ? " joined" : " left", " at ", e.time, "s");
    progress = true;
  }
  return progress;
}

std::vector<int> Scheduler::available_devices() const {
  std::vector<int> out;
  for (int d = 0; d < num_devices(); ++d)
    if (dev_available_[static_cast<std::size_t>(d)]) out.push_back(d);
  return out;
}

bool Scheduler::intake() {
  bool progress = drain_lineage_waiters();
  while (next_pending_ < arrival_order_.size()) {
    const int id = arrival_order_[next_pending_];
    const std::size_t idx = static_cast<std::size_t>(id);
    if (jobs_[idx].arrival > host_now()) break;
    if (!jobs_[idx].inputs.empty()) {
      // Lineage consumer: hold it out of the ready queue until every
      // producer is terminal — queued it would only burn admission attempts
      // on inputs that do not exist yet. It occupies no queue slot, so it
      // cannot backpressure unrelated arrivals.
      lineage_wait_.push_back(id);
      ++next_pending_;
      progress = true;
      continue;
    }
    if (queue_.full()) {
      if (!stalled_[idx]) {
        stalled_[idx] = 1;
        ++backpressure_events_;
        record_flight(telemetry::FlightEventKind::Backpressure, id);
        log_debug("sched: backpressure — job ", id, " (", jobs_[idx].name,
                  ") waits for a queue slot");
      }
      break;
    }
    JobQueue::Item it;
    it.job = id;
    it.seq = static_cast<std::uint64_t>(id);
    it.priority = jobs_[idx].priority;
    it.estimate = records_[idx].estimate;
    ensure(queue_.push(it), "queue push failed after full() check");
    records_[idx].state = JobState::Queued;
    records_[idx].enqueue_time = host_now();
    record_flight(telemetry::FlightEventKind::Enqueue, id);
    ++next_pending_;
    note_queue_depth();
    progress = true;
  }
  return progress;
}

bool Scheduler::lineage_ready(int id) const {
  for (const JobInput& in : jobs_[static_cast<std::size_t>(id)].inputs) {
    const JobState s = records_[static_cast<std::size_t>(in.producer)].state;
    if (s != JobState::Completed && s != JobState::Rejected) return false;
  }
  return true;
}

bool Scheduler::drain_lineage_waiters() {
  bool progress = false;
  for (std::size_t i = 0; i < lineage_wait_.size();) {
    const int id = lineage_wait_[i];
    const std::size_t idx = static_cast<std::size_t>(id);
    if (!lineage_ready(id)) {
      ++i;
      continue;
    }
    bool producer_rejected = false;
    for (const JobInput& in : jobs_[idx].inputs)
      if (records_[static_cast<std::size_t>(in.producer)].state == JobState::Rejected)
        producer_rejected = true;
    if (producer_rejected) {
      reject_job(id, telemetry::kRejectLineage, "a lineage producer was rejected");
      lineage_wait_.erase(lineage_wait_.begin() + static_cast<std::ptrdiff_t>(i));
      progress = true;
      continue;
    }
    if (queue_.full()) {
      if (!stalled_[idx]) {
        stalled_[idx] = 1;
        ++backpressure_events_;
        record_flight(telemetry::FlightEventKind::Backpressure, id);
        log_debug("sched: backpressure — job ", id, " (", jobs_[idx].name,
                  ") waits for a queue slot");
      }
      ++i;
      continue;
    }
    JobQueue::Item it;
    it.job = id;
    it.seq = static_cast<std::uint64_t>(id);
    it.priority = jobs_[idx].priority;
    it.estimate = records_[idx].estimate;
    ensure(queue_.push(it), "queue push failed after full() check");
    records_[idx].state = JobState::Queued;
    records_[idx].enqueue_time = host_now();
    record_flight(telemetry::FlightEventKind::Enqueue, id);
    lineage_wait_.erase(lineage_wait_.begin() + static_cast<std::ptrdiff_t>(i));
    note_queue_depth();
    progress = true;
  }
  return progress;
}

bool Scheduler::dispatch() {
  bool progress = false;
  // One batched wakeup per dispatch round: every job whose retry gate has
  // passed re-enters the eligible set here, so the pick loop below never
  // rescans the backed-off tail.
  const std::size_t woken = queue_.wake(host_now());
  if (woken > 0)
    record_flight(telemetry::FlightEventKind::QueueWake, -1,
                  static_cast<std::int64_t>(woken));
  while (JobQueue::Item* it = queue_.pick(host_now())) {
    const int id = it->job;
    const std::size_t idx = static_cast<std::size_t>(id);
    ++records_[idx].admission_attempts;

    bool started = shard_eligible(id) && try_start_sharded(id);
    if (!started) {
      for (int dev : placement_order_for(id)) {
        const AdmissionDecision d = admission_.try_admit(dev, jobs_[idx].spec);
        if (!d.admitted) continue;
        start_job(id, dev, d);
        started = true;
        break;
      }
    }
    if (started) {
      progress = true;
      continue;
    }

    bool fits_somewhere = false;
    for (int dev = 0; dev < num_devices(); ++dev)
      if (!admission_.impossible(dev, jobs_[idx].spec)) fits_somewhere = true;
    if (!fits_somewhere) {
      reject_job(id, telemetry::kRejectImpossible,
                 "does not fit an idle device at chunk 1 / stream 1");
      progress = true;
    } else if (records_[idx].admission_attempts >= opts_.max_admission_attempts) {
      reject_job(id, telemetry::kRejectRetryBudget, "admission retry budget exhausted");
      progress = true;
    } else {
      // Gate the job behind an exponential backoff; later (smaller) jobs may
      // overtake it while it waits for committed memory to be released.
      const double exp = static_cast<double>(records_[idx].admission_attempts - 1);
      const SimTime delay = std::min(
          opts_.backoff_max, opts_.backoff_initial * std::pow(opts_.backoff_factor, exp));
      queue_.defer(id, host_now() + delay);
      ++admission_retries_;
      record_flight(telemetry::FlightEventKind::Backoff, id,
                    records_[idx].admission_attempts, std::llround(delay * 1e9));
    }
  }
  return progress;
}

bool Scheduler::shard_eligible(int id) const {
  if (opts_.shard_threshold == 0) return false;
  const Job& job = jobs_[static_cast<std::size_t>(id)];
  // A consumer whose producer stashed a device-resident link must take the
  // solo path: its input lives in staging, not in host memory, and sharded
  // specs cannot carry handoffs.
  for (const JobInput& in : job.inputs) {
    const std::string& pname = in.producer_array.empty() ? in.array : in.producer_array;
    for (const auto& l : links_)
      if (l->producer == in.producer && l->array == pname && l->staging != nullptr)
        return false;
  }
  if (!shardable(job.spec)) return false;
  int avail = 0;
  for (char c : dev_available_) avail += c;
  if (avail < 2) return false;
  // Size gate on the *requested* shape: what the job would ring-buffer on
  // one device if admission never shrank it.
  const Bytes fp = core::predicted_pipeline_footprint(
      *devices_[0], job.spec, job.spec.chunk_size, job.spec.num_streams);
  return fp >= opts_.shard_threshold;
}

bool Scheduler::launch_shard_round(Active& a) {
  const std::vector<int> devs = available_devices();
  if (devs.empty()) return false;
  const Job& job = jobs_[static_cast<std::size_t>(a.id)];
  core::DryRunCost cost;
  cost.flops_per_iter = job.flops_per_iter;
  cost.bytes_per_iter = job.bytes_per_iter;
  // Per-device solo estimates feed the load-aware weights; the plan cache
  // memoizes them per profile, so repeated rounds and same-profile devices
  // pay once.
  std::vector<SimTime> est(devices_.size(), kInf);
  for (int d : devs) {
    const std::size_t di = static_cast<std::size_t>(d);
    try {
      est[di] = core::estimate_pipeline_runtime(*devices_[di], job.spec, cost,
                                                admission_.cap(d));
    } catch (const gpu::OomError&) {
    }
  }
  return a.shard->start_round(devs, shard_weights(devs, est, outstanding_));
}

bool Scheduler::try_start_sharded(int id) {
  const std::size_t idx = static_cast<std::size_t>(id);
  JobRecord& r = records_[idx];

  Active a;
  a.id = id;
  a.estimate = r.estimate;
  ShardRunOptions so;
  so.max_shards = opts_.max_shards;
  so.reshard_interval = opts_.reshard_interval;
  so.trace_id = r.trace_id;
  if (opts_.recorder) {
    so.flight = [this, id](telemetry::FlightEventKind k, std::int64_t pa,
                           std::int64_t pb, int device) {
      telemetry::FlightEvent ev;
      ev.time = host_now();
      ev.kind = k;
      ev.trace_id = records_[static_cast<std::size_t>(id)].trace_id;
      ev.job = id;
      ev.device = device;
      ev.a = pa;
      ev.b = pb;
      opts_.recorder->record(ev);
    };
  }
  a.shard = std::make_unique<ShardRun>(jobs_[idx], devices_, admission_, std::move(so));
  if (!launch_shard_round(a)) return false;
  ++sharded_jobs_;
  ++shard_rounds_;

  r.state = JobState::Running;
  r.device = a.shard->first_device();
  r.start = host_now();
  r.footprint = a.shard->round_footprint();
  r.chunk_size = a.shard->first_chunk_size();
  r.num_streams = a.shard->first_num_streams();
  r.shrunk = a.shard->shrunk();
  if (r.shrunk) ++admission_shrinks_;
  a.device = r.device;
  a.footprint = r.footprint;

  // Spread the solo estimate over the first round's devices for the
  // least-loaded bookkeeping (held until completion; later rounds may use
  // other devices, but re-attributing mid-job would make placement depend
  // on reshard timing).
  if (std::isfinite(a.estimate) && a.shard->num_shards() > 0) {
    const SimTime share = a.estimate / a.shard->num_shards();
    for (int d : a.shard->shard_devices()) {
      outstanding_[static_cast<std::size_t>(d)] += share;
      a.shares.emplace_back(d, share);
    }
  }

  queue_.remove(id);
  record_flight(telemetry::FlightEventKind::Admit, id,
                static_cast<std::int64_t>(r.footprint), r.chunk_size);
  if (r.shrunk)
    record_flight(telemetry::FlightEventKind::Shrink, id, r.chunk_size, r.num_streams);
  record_flight(telemetry::FlightEventKind::Shard, id, a.shard->device_mask(),
                static_cast<std::int64_t>(a.shard->round_p2p_bytes()));
  log_debug("sched: job ", id, " (", jobs_[idx].name, ") sharded over ",
            a.shard->num_shards(), " devices, ", to_mib(r.footprint), " MiB total");
  active_.push_back(std::move(a));
  return true;
}

void Scheduler::start_job(int id, int dev, const AdmissionDecision& d) {
  const std::size_t idx = static_cast<std::size_t>(id);
  JobRecord& r = records_[idx];
  r.state = JobState::Running;
  r.device = dev;
  r.start = host_now();
  r.footprint = d.footprint;
  r.chunk_size = d.chunk_size;
  r.num_streams = d.num_streams;
  r.shrunk = d.shrunk;
  if (d.shrunk) ++admission_shrinks_;

  // Freeze the admitted shape: the pipeline re-solves its memory limit in
  // the constructor, and a limit of exactly the committed footprint keeps
  // the solved shape identical to the admission decision.
  core::PipelineSpec spec = jobs_[idx].spec;
  spec.chunk_size = d.chunk_size;
  spec.num_streams = d.num_streams;
  spec.mem_limit = d.footprint;
  admission_.commit(dev, d.footprint);

  Active a;
  a.id = id;
  a.device = dev;
  a.footprint = d.footprint;
  a.estimate = r.estimate;
  if (opts_.stitching) {
    // Consume side first: a mid-chain job both lands its inputs from an
    // upstream link and stashes its outputs for a downstream one.
    wire_consumer_handoffs(id, dev, spec, a);
    wire_producer_handoffs(id, dev, spec, a);
  }
  gpu::Gpu& device = *devices_[static_cast<std::size_t>(dev)];
  // Publish the job's trace id for the whole submission window: every task
  // the pipeline submits (and the completion events below) captures it, so
  // the spans recorded at completion carry it even though other jobs'
  // submissions interleave in between.
  device.trace().set_trace_id(r.trace_id);
  a.pipeline = std::make_unique<core::Pipeline>(device, std::move(spec));
  if (a.exchange) {
    a.exchange->pipeline = a.pipeline.get();
    a.pipeline->set_exchange(a.exchange.get());
    ++stitched_jobs_;
    // The optimizer's stitch pass measured exactly which host-transfer
    // bytes the handoff nodes replaced in this job's compiled plan.
    r.stitched_bytes = a.pipeline->opt_report().stitched_bytes;
    stitched_bytes_ += r.stitched_bytes;
  }
  a.pipeline->enqueue(jobs_[idx].kernel);
  // Completion is observed through events on the job's own streams — a
  // device-wide synchronize here would stall every co-resident tenant.
  for (gpu::Stream* s : a.pipeline->streams())
    a.events.push_back(device.record_event(*s));
  device.trace().set_trace_id(-1);
  if (std::isfinite(a.estimate)) outstanding_[static_cast<std::size_t>(dev)] += a.estimate;
  active_.push_back(std::move(a));

  if (opts_.placement == PlacementPolicy::RoundRobin)
    rr_cursor_ = (dev + 1) % num_devices();
  queue_.remove(id);
  record_flight(telemetry::FlightEventKind::Admit, id,
                static_cast<std::int64_t>(d.footprint), d.chunk_size);
  if (d.shrunk)
    record_flight(telemetry::FlightEventKind::Shrink, id, d.chunk_size, d.num_streams);
  log_debug("sched: job ", id, " (", jobs_[idx].name, ") -> dev", dev, ", chunk ",
            d.chunk_size, ", ", d.num_streams, " streams, ", to_mib(d.footprint), " MiB",
            d.shrunk ? " (shrunk)" : "");
}

void Scheduler::reject_job(int id, std::int64_t reason_code, std::string reason) {
  const std::size_t idx = static_cast<std::size_t>(id);
  // Lineage waiters are rejected straight from the wait list and were never
  // queued (drain_lineage_waiters enqueues only jobs it will not reject).
  if (records_[idx].state == JobState::Queued) queue_.remove(id);
  records_[idx].state = JobState::Rejected;
  records_[idx].reject_reason = std::move(reason);
  release_consumed_links(id);
  ++rejected_;
  record_flight(telemetry::FlightEventKind::Reject, id, reason_code);
  log_debug("sched: job ", id, " (", jobs_[idx].name, ") rejected: ",
            records_[idx].reject_reason);
}

void Scheduler::complete_job(Active& a) {
  const std::size_t idx = static_cast<std::size_t>(a.id);
  JobRecord& r = records_[idx];
  SimTime finish = 0.0;
  if (a.shard) {
    // Rounds already drained and released their admission commits; fold the
    // run's transfer totals into the scheduler counters.
    finish = a.shard->finish_time();
    p2p_halo_bytes_ += a.shard->p2p_bytes();
    a.shard.reset();
  } else {
    for (const auto& ev : a.events) finish = std::max(finish, ev->timestamp());
    // All events already fired, so the drain is bookkeeping; destroying the
    // pipeline releases its ring buffers and streams (per-stream sync only).
    a.pipeline->wait();
    const core::PipelineStats& st = a.pipeline->stats();
    h2d_bytes_total_ += st.h2d_bytes;
    d2h_bytes_total_ += st.d2h_bytes;
    a.pipeline.reset();
    admission_.release(a.device, a.footprint);
  }
  r.finish = finish;
  r.state = JobState::Completed;
  release_consumed_links(a.id);
  if (!a.shares.empty()) {
    for (const auto& [d, share] : a.shares)
      outstanding_[static_cast<std::size_t>(d)] -= share;
  } else if (std::isfinite(a.estimate)) {
    outstanding_[static_cast<std::size_t>(a.device)] -= a.estimate;
  }
  ++dev_completed_[static_cast<std::size_t>(a.device)];
  ++completed_;
  record_flight(telemetry::FlightEventKind::Complete, a.id,
                std::llround(r.service() * 1e9));
  if (opts_.watchdog) opts_.watchdog->observe_completion(host_now());
  if (jobs_[idx].deadline && finish > *jobs_[idx].deadline) {
    r.deadline_missed = true;
    ++deadline_misses_;
    record_flight(telemetry::FlightEventKind::DeadlineMiss, a.id,
                  std::llround((finish - *jobs_[idx].deadline) * 1e9));
    if (opts_.watchdog) opts_.watchdog->observe_deadline_miss(finish);
  }
  log_debug("sched: job ", a.id, " (", jobs_[idx].name, ") completed at ", finish,
            "s (wait ", r.wait(), "s, service ", r.service(), "s)");
}

std::vector<int> Scheduler::placement_order() const {
  // Only the currently-available devices are candidates; with no
  // DeviceEvents configured this is every device, as before.
  std::vector<int> order(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) order[i] = static_cast<int>(i);
  if (opts_.placement == PlacementPolicy::RoundRobin) {
    std::rotate(order.begin(), order.begin() + rr_cursor_, order.end());
  } else {
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
      const std::size_t ia = static_cast<std::size_t>(a);
      const std::size_t ib = static_cast<std::size_t>(b);
      if (outstanding_[ia] != outstanding_[ib]) return outstanding_[ia] < outstanding_[ib];
      if (admission_.committed(a) != admission_.committed(b))
        return admission_.committed(a) < admission_.committed(b);
      return a < b;
    });
  }
  std::erase_if(order, [this](int d) {
    return !dev_available_[static_cast<std::size_t>(d)];
  });
  return order;
}

std::vector<int> Scheduler::placement_order_for(int id) const {
  std::vector<int> order = placement_order();
  if (!opts_.stitching) return order;
  // Lineage co-placement: trying the device that holds the consumed staging
  // first makes the handoff a same-device d2d instead of a P2P fallback.
  for (const JobInput& in : jobs_[static_cast<std::size_t>(id)].inputs) {
    const std::string& pname = in.producer_array.empty() ? in.array : in.producer_array;
    for (const auto& l : links_) {
      if (l->producer != in.producer || l->array != pname || l->staging == nullptr)
        continue;
      auto it = std::find(order.begin(), order.end(), l->device);
      if (it != order.end()) std::rotate(order.begin(), it, it + 1);
      return order;
    }
  }
  return order;
}

// --- Inter-job stitching (docs/stitching.md) ---

void Scheduler::HandoffExchange::issue(gpu::Gpu& g, gpu::Stream& s,
                                       const core::PlanNode& n) {
  const std::size_t ai = static_cast<std::size_t>(n.array);
  HandoffLink* link = ai < links.size() ? links[ai] : nullptr;
  require(link != nullptr, "device-handoff node has no link for its array");
  require(link->staging != nullptr, "device-handoff node issued on a retired link");
  const core::BufferView& v = pipeline->array_view(ai);
  const bool produce = pipeline->execution_plan().arrays[ai].handoff_out;
  std::byte* stage = link->staging;
  if (!produce && device != link->device) {
    // Cross-device fallback: the consume side reads the P2P mirror staged
    // onto this device at wiring time, ordered after the peer copy.
    require(link->mirror != nullptr && link->mirror_device == device,
            "cross-device handoff consumed without a staged mirror");
    stage = link->mirror;
    if (link->moved) g.wait_event(s, link->moved);
  }
  for (const core::PlanSegment& seg : n.segments) {
    std::byte* ring = v.base + static_cast<Bytes>(seg.slot) * v.slab;
    std::byte* st =
        stage + static_cast<Bytes>(seg.index - link->lo) * link->unit;
    if (produce)
      g.memcpy_d2d_async(st, ring, seg.bytes(), s);
    else
      g.memcpy_d2d_async(ring, st, seg.bytes(), s);
  }
}

Scheduler::HandoffLink* Scheduler::find_link(int producer, const std::string& array) {
  for (auto& l : links_)
    if (l->producer == producer && l->array == array) return l.get();
  return nullptr;
}

void Scheduler::wire_producer_handoffs(int id, int dev, core::PipelineSpec& spec,
                                       Active& a) {
  const std::size_t idx = static_cast<std::size_t>(id);
  // Collect the output arrays stitchable consumers will read. An array
  // qualifies only when both ends meet ArrayHandoff's geometric
  // preconditions (dim-0 affine split, matching per-index bytes), so the
  // wired specs always pass validation.
  struct Cand {
    int array = -1;
    int consumers = 0;
  };
  std::vector<Cand> cands;
  for (std::size_t j = idx + 1; j < jobs_.size(); ++j) {
    if (records_[j].state == JobState::Rejected) continue;
    for (const JobInput& in : jobs_[j].inputs) {
      if (in.producer != id) continue;
      const std::string& pname = in.producer_array.empty() ? in.array : in.producer_array;
      const int pi = array_index(spec, pname);
      if (pi < 0) continue;
      const core::ArraySpec& pa = spec.arrays[static_cast<std::size_t>(pi)];
      if (pa.map == core::MapType::To || pa.split.dim != 0 || pa.split.window_fn)
        continue;
      const int ci = array_index(jobs_[j].spec, in.array);
      if (ci < 0) continue;
      const core::ArraySpec& ca = jobs_[j].spec.arrays[static_cast<std::size_t>(ci)];
      if (ca.map == core::MapType::From || ca.split.dim != 0 || ca.split.window_fn)
        continue;
      if (ca.elem_size * ca.inner_elems() != pa.elem_size * pa.inner_elems()) continue;
      if (ca.dims[0] > pa.dims[0]) continue;  // consumer would read past production
      auto it = std::find_if(cands.begin(), cands.end(),
                             [pi](const Cand& c) { return c.array == pi; });
      if (it == cands.end())
        cands.push_back({pi, 1});
      else
        ++it->consumers;
    }
  }
  if (cands.empty()) return;

  // Cost gate: stitch only when the dry run predicts the handoff tail is no
  // slower than the D2H it replaces (the consumer's H2D win rides on top).
  // Link ids in the spec are per-spec ordinals, so identical job shapes
  // share one plan-cache entry; the exchange resolves links by array index.
  core::PipelineSpec stitched = spec;
  for (const Cand& c : cands)
    stitched.handoffs.push_back(
        {c.array, static_cast<int>(stitched.handoffs.size()), true});
  const Job& job = jobs_[idx];
  core::DryRunCost cost;
  cost.flops_per_iter = job.flops_per_iter;
  cost.bytes_per_iter = job.bytes_per_iter;
  gpu::Gpu& device = *devices_[static_cast<std::size_t>(dev)];
  try {
    const SimTime plain =
        core::estimate_pipeline_runtime(device, spec, cost, admission_.cap(dev));
    const SimTime with =
        core::estimate_pipeline_runtime(device, stitched, cost, admission_.cap(dev));
    if (with > plain) {
      log_debug("sched: job ", id, " stitch declined by cost model (", with, "s > ",
                plain, "s)");
      return;
    }
  } catch (const gpu::OomError&) {
    return;
  }

  for (const Cand& c : cands) {
    const core::ArraySpec& pa = spec.arrays[static_cast<std::size_t>(c.array)];
    const Bytes bytes = pa.total_bytes();
    // Staging holds the full produced array until the last consumer drains
    // it; its bytes are committed so tenants cannot be planned into them.
    if (admission_.committed(dev) + bytes > admission_.cap(dev)) continue;
    std::byte* staging = nullptr;
    try {
      staging = device.device_malloc(bytes);
    } catch (const gpu::OomError&) {
      continue;
    }
    admission_.commit(dev, bytes);
    auto link = std::make_unique<HandoffLink>();
    link->id = next_link_id_++;
    link->producer = id;
    link->array = pa.name;
    link->device = dev;
    link->staging = staging;
    link->bytes = bytes;
    link->unit = pa.elem_size * static_cast<Bytes>(pa.inner_elems());
    link->lo = 0;
    link->consumers = c.consumers;
    spec.handoffs.push_back({c.array, static_cast<int>(spec.handoffs.size()), true});
    if (!a.exchange) {
      a.exchange = std::make_unique<HandoffExchange>();
      a.exchange->device = dev;
      a.exchange->links.assign(spec.arrays.size(), nullptr);
    }
    a.exchange->links[static_cast<std::size_t>(c.array)] = link.get();
    records_[idx].stitched_out = true;
    record_flight(telemetry::FlightEventKind::Stitch, id,
                  static_cast<std::int64_t>(bytes), id);
    log_debug("sched: job ", id, " (", job.name, ") stashes '", pa.name,
              "' device-resident (", to_mib(bytes), " MiB, ", c.consumers,
              " consumer(s))");
    links_.push_back(std::move(link));
  }
}

void Scheduler::wire_consumer_handoffs(int id, int dev, core::PipelineSpec& spec,
                                       Active& a) {
  const std::size_t idx = static_cast<std::size_t>(id);
  for (const JobInput& in : jobs_[idx].inputs) {
    const std::string& pname = in.producer_array.empty() ? in.array : in.producer_array;
    HandoffLink* link = find_link(in.producer, pname);
    if (link == nullptr || link->staging == nullptr) continue;
    const int ci = array_index(spec, in.array);
    if (ci < 0) continue;
    if (dev != link->device) {
      // Placement split the chain across devices: mirror the staging onto
      // this device with one peer copy (the P2P fallback). When even the
      // mirror cannot fit, rescue the bytes to the host and run unstitched.
      const bool had = link->mirror != nullptr && link->mirror_device == dev;
      if (!stage_mirror(*link, dev)) {
        rescue_to_host(*link);
        continue;
      }
      if (!had) ++handoff_fallbacks_;
      records_[idx].handoff_fallback = true;
    }
    spec.handoffs.push_back({ci, static_cast<int>(spec.handoffs.size()), false});
    if (!a.exchange) {
      a.exchange = std::make_unique<HandoffExchange>();
      a.exchange->device = dev;
      a.exchange->links.assign(spec.arrays.size(), nullptr);
    }
    a.exchange->links[static_cast<std::size_t>(ci)] = link;
    records_[idx].stitched_in = true;
    record_flight(telemetry::FlightEventKind::Stitch, id,
                  static_cast<std::int64_t>(link->bytes), in.producer);
    log_debug("sched: job ", id, " (", jobs_[idx].name, ") lands '", in.array,
              "' from job ", in.producer, "'s staging",
              dev != link->device ? " (p2p mirror)" : "");
  }
}

bool Scheduler::stage_mirror(HandoffLink& link, int dev) {
  if (link.mirror != nullptr) {
    // One mirror per link: a third-device consumer falls back to the host
    // rescue rather than invalidating a mirror a peer may still read.
    return link.mirror_device == dev;
  }
  if (admission_.committed(dev) + link.bytes > admission_.cap(dev)) return false;
  gpu::Gpu& dst = *devices_[static_cast<std::size_t>(dev)];
  std::byte* mirror = nullptr;
  try {
    mirror = dst.device_malloc(link.bytes);
  } catch (const gpu::OomError&) {
    return false;
  }
  admission_.commit(dev, link.bytes);
  gpu::Gpu& src = *devices_[static_cast<std::size_t>(link.device)];
  src.memcpy_p2p_async(dst, mirror, link.staging, link.bytes, src.default_stream());
  link.moved = src.record_event(src.default_stream());
  link.mirror = mirror;
  link.mirror_device = dev;
  return true;
}

void Scheduler::rescue_to_host(HandoffLink& link) {
  // The producer skipped its host writeback when the link was wired; fill
  // the host buffer now so the consumer can fall back to plain H2D.
  const Job& prod = jobs_[static_cast<std::size_t>(link.producer)];
  const int pi = array_index(prod.spec, link.array);
  ensure(pi >= 0, "handoff link names an array its producer does not map");
  gpu::Gpu& src = *devices_[static_cast<std::size_t>(link.device)];
  src.memcpy_d2h_async(prod.spec.arrays[static_cast<std::size_t>(pi)].host,
                       link.staging, link.bytes, src.default_stream());
  src.synchronize(src.default_stream());
  log_debug("sched: handoff link ", link.id, " rescued to host (mirror did not fit)");
}

void Scheduler::release_consumed_links(int id) {
  for (const JobInput& in : jobs_[static_cast<std::size_t>(id)].inputs) {
    const std::string& pname = in.producer_array.empty() ? in.array : in.producer_array;
    HandoffLink* link = find_link(in.producer, pname);
    if (link == nullptr) continue;
    if (--link->consumers <= 0) retire_link(*link);
  }
}

void Scheduler::retire_link(HandoffLink& link) {
  if (link.staging != nullptr) {
    devices_[static_cast<std::size_t>(link.device)]->device_free(link.staging);
    admission_.release(link.device, link.bytes);
    link.staging = nullptr;
  }
  if (link.mirror != nullptr) {
    devices_[static_cast<std::size_t>(link.mirror_device)]->device_free(link.mirror);
    admission_.release(link.mirror_device, link.bytes);
    link.mirror = nullptr;
  }
  link.moved.reset();
}

// --- Virtual-time advancement ---

void Scheduler::advance() {
  SimTime next_arrival = kInf;
  if (next_pending_ < arrival_order_.size()) {
    const SimTime t =
        jobs_[static_cast<std::size_t>(arrival_order_[next_pending_])].arrival;
    // An arrival in the past means the queue is full; only a completion (or
    // a rejection, which needs no time) can unblock it.
    if (t > host_now()) next_arrival = t;
  }
  SimTime next_dev = kInf;
  if (next_dev_event_ < dev_events_.size()) {
    const SimTime t = dev_events_[next_dev_event_].time;
    if (t > host_now()) next_dev = t;
  }
  const SimTime wake =
      std::min({next_arrival, queue_.next_retry(host_now()), next_dev});
  // Sampling ticks additionally bound advancement (after the stall check:
  // a tick alone never represents pending work), so every sample is taken
  // at exactly its nominal time, not wherever the next event landed.
  if (active_.empty()) {
    ensure(std::isfinite(wake), "scheduler stalled: nothing running and no wake time");
    advance_to(std::min(wake, next_sample_));
  } else {
    advance_until_completion_or(std::min(wake, next_sample_));
  }
}

void Scheduler::advance_to(SimTime t) {
  ctx_->sim.run_until_time(t);
  ctx_->host_time = std::max(ctx_->host_time, t);
}

void Scheduler::advance_until_completion_or(SimTime bound) {
  const bool bounded = std::isfinite(bound);
  SimTime alarm = 0.0;
  if (bounded) {
    // A no-op "alarm" event guarantees the queue cannot drain before the
    // predicate turns true at the wake time.
    alarm = std::max(bound, ctx_->sim.now());
    ctx_->sim.schedule(alarm, [] {});
  }
  ctx_->sim.run_until([&] {
    if (bounded && ctx_->sim.now() >= alarm) return true;
    for (const Active& a : active_)
      if (a.done()) return true;
    return false;
  });
  ctx_->host_time = std::max(ctx_->host_time, ctx_->sim.now());
}

void Scheduler::note_queue_depth() {
  queue_depth_peak_ = std::max(queue_depth_peak_, queue_.size());
  queue_depth_samples_.push_back(queue_.size());
}

// --- Live observability ---

void Scheduler::record_flight(telemetry::FlightEventKind kind, int job, std::int64_t a,
                              std::int64_t b) {
  if (!opts_.recorder) return;
  telemetry::FlightEvent ev;
  ev.time = host_now();
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  if (job >= 0) {
    const JobRecord& r = records_[static_cast<std::size_t>(job)];
    ev.trace_id = r.trace_id;
    ev.job = job;
    ev.device = r.device;
  }
  opts_.recorder->record(ev);
}

void Scheduler::maybe_sample() {
  while (next_sample_ <= host_now()) {
    sample_at(next_sample_);
    next_sample_ += opts_.sample_every;
  }
}

void Scheduler::sample_at(SimTime t) {
  const core::PlanCacheStats pc = core::PlanCache::instance().stats();
  if (opts_.series) {
    telemetry::TimeSeriesStore& s = *opts_.series;
    s.add("sched.queue_depth", t, static_cast<double>(queue_.size()));
    s.add("sched.active_jobs", t, static_cast<double>(active_.size()));
    s.add("sched.completed", t, static_cast<double>(completed_));
    s.add("plan_cache.hit_rate", t, pc.hit_rate());
    const SimTime elapsed = t - t0_;
    for (int dev = 0; dev < num_devices(); ++dev) {
      const std::size_t di = static_cast<std::size_t>(dev);
      const std::string dp = "sched.dev" + std::to_string(dev) + ".";
      s.add(dp + "committed_bytes", t, static_cast<double>(admission_.committed(dev)));
      const SimTime busy = devices_[di]->compute_busy_time() - busy0_[di];
      s.add(dp + "utilization", t, elapsed > 0.0 ? busy / elapsed : 0.0);
    }
  }
  if (opts_.watchdog)
    opts_.watchdog->check(t, static_cast<int>(active_.size() + queue_.size()),
                          pc.disk_corrupt);
}

// --- Telemetry ---

void Scheduler::collect_metrics(telemetry::Registry& reg, const std::string& prefix) const {
  const std::string p = prefix + "sched.";
  reg.counter(p + "jobs_submitted").add(static_cast<std::int64_t>(jobs_.size()));
  reg.counter(p + "jobs_completed").add(completed_);
  reg.counter(p + "jobs_rejected").add(rejected_);
  reg.counter(p + "backpressure_events").add(backpressure_events_);
  reg.counter(p + "admission_retries").add(admission_retries_);
  reg.counter(p + "admission_shrinks").add(admission_shrinks_);
  reg.counter(p + "deadline_misses").add(deadline_misses_);
  if (opts_.shard_threshold > 0) {
    // Gated on the feature so runs without sharding keep their exact
    // metric set (and golden exports) unchanged.
    reg.counter(p + "sharded_jobs").add(sharded_jobs_);
    reg.counter(p + "shard_rounds").add(shard_rounds_);
    reg.counter(p + "p2p_halo_bytes").add(static_cast<std::int64_t>(p2p_halo_bytes_));
  }
  if (lineage_jobs_ > 0) {
    // Same gate idea for stitching: mixes without Job::consumes keep their
    // exact metric set (and golden exports) unchanged.
    reg.counter(p + "lineage_jobs").add(lineage_jobs_);
    reg.counter(p + "stitched_jobs").add(stitched_jobs_);
    reg.counter(p + "stitched_bytes").add(static_cast<std::int64_t>(stitched_bytes_));
    reg.counter(p + "handoff_fallbacks").add(handoff_fallbacks_);
    reg.counter(p + "h2d_bytes").add(static_cast<std::int64_t>(h2d_bytes_total_));
    reg.counter(p + "d2h_bytes").add(static_cast<std::int64_t>(d2h_bytes_total_));
  }
  reg.gauge(p + "makespan_s").set(makespan_);
  reg.gauge(p + "queue_depth_peak").set(static_cast<double>(queue_depth_peak_));
  reg.counter(p + "queue.wakes").add(static_cast<std::int64_t>(queue_.woken_total()));
  reg.counter(p + "queue.defers").add(static_cast<std::int64_t>(queue_.defers_total()));
  reg.gauge(p + "queue.backoff_peak").set(static_cast<double>(queue_.backoff_peak()));
  if (opts_.recorder) {
    reg.counter(p + "recorder.events")
        .add(static_cast<std::int64_t>(opts_.recorder->total_recorded()));
    reg.counter(p + "recorder.dropped")
        .add(static_cast<std::int64_t>(opts_.recorder->dropped()));
  }
  if (opts_.watchdog)
    reg.counter(p + "watchdog.trips")
        .add(static_cast<std::int64_t>(opts_.watchdog->trips().size()));

  auto& wait = reg.histogram(p + "wait_s", time_bounds());
  auto& service = reg.histogram(p + "service_s", time_bounds());
  auto& turnaround = reg.histogram(p + "turnaround_s", time_bounds());
  for (const JobRecord& r : records_) {
    if (r.state != JobState::Completed) continue;
    wait.observe(r.wait());
    service.observe(r.service());
    turnaround.observe(r.turnaround());
  }
  auto& depth = reg.histogram(p + "queue_depth", {0, 1, 2, 4, 8, 16, 32});
  for (std::size_t d : queue_depth_samples_) depth.observe(static_cast<double>(d));

  for (int dev = 0; dev < num_devices(); ++dev) {
    const std::string dp = p + "dev" + std::to_string(dev) + ".";
    reg.gauge(dp + "mem_cap_bytes").set(static_cast<double>(admission_.cap(dev)));
    reg.gauge(dp + "committed_peak_bytes")
        .set(static_cast<double>(admission_.committed_peak(dev)));
    reg.counter(dp + "jobs_completed").add(dev_completed_[static_cast<std::size_t>(dev)]);
    const std::size_t di = static_cast<std::size_t>(dev);
    const SimTime busy = ran_ && di < busy0_.size()
                             ? devices_[di]->compute_busy_time() - busy0_[di]
                             : 0.0;
    reg.gauge(dp + "utilization").set(makespan_ > 0.0 ? busy / makespan_ : 0.0);
  }

  // The planning cache the admission/estimate hot path runs through; its
  // hit rate is the serve-loop health signal (docs/observability.md).
  core::PlanCache::instance().collect_metrics(reg, prefix);
}

}  // namespace gpupipe::sched
