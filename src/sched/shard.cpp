#include "sched/shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/layout.hpp"

namespace gpupipe::sched {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}

bool shardable(const core::PipelineSpec& spec) {
  if (spec.schedule != core::ScheduleKind::Static) return false;
  if (!spec.halos.empty()) return false;
  if (spec.num_chunks() < 2) return false;
  for (const core::ArraySpec& a : spec.arrays)
    if (a.split.dim != 0 || a.split.window_fn) return false;
  return true;
}

std::vector<double> shard_weights(const std::vector<int>& devices,
                                  const std::vector<SimTime>& solo_estimate,
                                  const std::vector<SimTime>& outstanding) {
  std::vector<double> w;
  w.reserve(devices.size());
  for (int d : devices) {
    const std::size_t di = static_cast<std::size_t>(d);
    const SimTime est = di < solo_estimate.size() ? solo_estimate[di] : kInf;
    const SimTime load = di < outstanding.size() ? outstanding[di] : 0.0;
    w.push_back(std::isfinite(est) && est > 0.0 ? 1.0 / (est + load) : 0.0);
  }
  return w;
}

// --- Exchange ---

void ShardRun::Exchange::issue(gpu::Gpu& g, gpu::Stream& s, const core::PlanNode& n) {
  const std::size_t ai = static_cast<std::size_t>(n.array);
  const core::BufferView& v = pipeline->array_view(ai);
  if (n.op == core::PlanOp::P2pSend) {
    HaloLink* link = ai < send.size() ? send[ai] : nullptr;
    require(link != nullptr, "p2p-send node has no halo link for its array");
    // Push the overhanging window head from this shard's ring slots into
    // the staging buffer on the receiving device — the copy rides this
    // device's DMA engine, never the host.
    for (const core::PlanSegment& seg : n.segments) {
      std::byte* src = v.base + static_cast<Bytes>(seg.slot) * link->unit;
      std::byte* dst =
          link->stage + static_cast<Bytes>(seg.index - link->lo) * link->unit;
      g.memcpy_p2p_async(*link->dst, dst, src, seg.bytes(), s);
      link->moved += seg.bytes();
    }
    link->sent = g.record_event(s);
  } else {
    require(n.op == core::PlanOp::P2pRecv, "exchange issued for a non-P2P node");
    HaloLink* link = ai < recv.size() ? recv[ai] : nullptr;
    require(link != nullptr, "p2p-recv node has no halo link for its array");
    require(link->sent != nullptr, "p2p-recv enqueued before its peer's send");
    g.wait_event(s, link->sent);
    for (const core::PlanSegment& seg : n.segments) {
      std::byte* dst = v.base + static_cast<Bytes>(seg.slot) * link->unit;
      const std::byte* src =
          link->stage + static_cast<Bytes>(seg.index - link->lo) * link->unit;
      g.memcpy_d2d_async(dst, src, seg.bytes(), s);
    }
  }
}

// --- ShardRun ---

ShardRun::ShardRun(const Job& job, std::vector<gpu::Gpu*> devices,
                   AdmissionController& admission, ShardRunOptions opts)
    : job_(job),
      devices_(std::move(devices)),
      admission_(admission),
      opts_(std::move(opts)),
      cursor_(job.spec.loop_begin),
      end_(job.spec.loop_end) {
  require(shardable(job_.spec), "job spec is not shardable");
  require(opts_.max_shards >= 1, "max_shards must be >= 1");
}

ShardRun::~ShardRun() {
  // Abnormal teardown with a round still live: drain, release, free stages.
  for (ShardExec& ex : shards_) {
    if (ex.pipeline) {
      ex.pipeline->wait();
      ex.pipeline.reset();
    }
    admission_.release(ex.device, ex.footprint);
  }
  for (auto& l : links_) l->dst->device_free(l->stage);
}

bool ShardRun::start_round(const std::vector<int>& devices,
                           const std::vector<double>& weights) {
  require(!live(), "ShardRun::start_round while a round is live");
  require(!finished(), "ShardRun::start_round after the loop completed");
  require(devices.size() == weights.size(), "devices/weights size mismatch");

  // Candidate set: positive-weight devices, the max_shards heaviest (ties
  // break to the lower device index), restored to device order so shard s
  // sits on a lower device index than shard s+1 — deterministic.
  std::vector<int> devs;
  std::vector<double> w;
  {
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < devices.size(); ++i)
      if (weights[i] > 0.0) order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (weights[a] != weights[b]) return weights[a] > weights[b];
      return devices[a] < devices[b];
    });
    if (order.size() > static_cast<std::size_t>(opts_.max_shards))
      order.resize(static_cast<std::size_t>(opts_.max_shards));
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return devices[a] < devices[b]; });
    for (std::size_t i : order) {
      devs.push_back(devices[i]);
      w.push_back(weights[i]);
    }
  }

  core::PipelineSpec base = job_.spec;
  base.loop_begin = cursor_;
  base.loop_end = opts_.reshard_interval > 0
                      ? std::min(end_, cursor_ + opts_.reshard_interval)
                      : end_;

  // Partition, admit every shard, drop refused devices, repeat until the
  // whole round admits (or no device is left). try_admit commits nothing,
  // so a failed attempt leaves the controller untouched.
  std::vector<core::ShardSlice> slices;
  std::vector<int> slice_dev;
  std::vector<AdmissionDecision> dec;
  for (;;) {
    if (devs.empty()) return false;
    slices = core::shard_pipeline_specs(base, w);
    // Map slices back to devices: shard_pipeline_specs drops empty parts,
    // so replay the identical partition to learn which survived.
    const std::vector<std::int64_t> parts =
        core::layout::partition_weighted(base.iterations(), w, base.chunk_size);
    slice_dev.clear();
    for (std::size_t p = 0; p < parts.size(); ++p)
      if (parts[p] > 0) slice_dev.push_back(devs[p]);
    ensure(slice_dev.size() == slices.size(), "shard slice/partition mismatch");

    dec.clear();
    std::vector<char> refuse(devs.size(), 0);
    bool refused = false;
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const AdmissionDecision d = admission_.try_admit(slice_dev[i], slices[i].spec);
      if (!d.admitted) {
        refused = true;
        for (std::size_t j = 0; j < devs.size(); ++j)
          if (devs[j] == slice_dev[i]) refuse[j] = 1;
      }
      dec.push_back(d);
    }
    if (!refused) break;
    std::vector<int> nd;
    std::vector<double> nw;
    for (std::size_t j = 0; j < devs.size(); ++j) {
      if (refuse[j]) continue;
      nd.push_back(devs[j]);
      nw.push_back(w[j]);
    }
    devs.swap(nd);
    w.swap(nw);
  }

  round_end_ = base.loop_end;
  shards_.clear();
  shards_.resize(slices.size());
  if (rounds_ == 0) {
    chunk0_ = dec[0].chunk_size;
    streams0_ = dec[0].num_streams;
  }
  for (std::size_t i = 0; i < slices.size(); ++i) {
    shards_[i].device = slice_dev[i];
    shards_[i].footprint = dec[i].footprint;
    shards_[i].exchange = std::make_unique<Exchange>();
    admission_.commit(slice_dev[i], dec[i].footprint);
    if (dec[i].shrunk) shrunk_ = true;
  }

  const std::size_t narr = job_.spec.arrays.size();
  // Links are created by the sending (higher-index) shard and picked up by
  // the receiver, keyed (receiver shard, array).
  std::map<std::pair<int, int>, HaloLink*> by_recv;
  // Build and enqueue in DESCENDING shard order: shard s+1 sends the halo
  // to shard s, and the receiver's P2pRecv can only wait on an event that
  // exists once the sender's round is enqueued.
  for (int s = static_cast<int>(slices.size()) - 1; s >= 0; --s) {
    const std::size_t si = static_cast<std::size_t>(s);
    ShardExec& ex = shards_[si];
    gpu::Gpu& dev = *devices_.at(static_cast<std::size_t>(ex.device));
    core::PipelineSpec spec = slices[si].spec;
    // Freeze the admitted shape, exactly like the scheduler's solo path.
    spec.chunk_size = dec[si].chunk_size;
    spec.num_streams = dec[si].num_streams;
    spec.mem_limit = dec[si].footprint;

    dev.trace().set_trace_id(opts_.trace_id);
    ex.pipeline = std::make_unique<core::Pipeline>(dev, std::move(spec));
    Exchange& xc = *ex.exchange;
    xc.pipeline = ex.pipeline.get();
    xc.send.assign(narr, nullptr);
    xc.recv.assign(narr, nullptr);
    for (const core::ShardHalo& h : slices[si].spec.halos) {
      const std::size_t ai = static_cast<std::size_t>(h.array);
      if (h.send_peer >= 0) {
        const std::size_t peer = static_cast<std::size_t>(h.send_peer);
        auto link = std::make_unique<HaloLink>();
        link->src = &dev;
        link->dst = devices_.at(static_cast<std::size_t>(shards_[peer].device));
        link->src_index = ex.device;
        link->dst_index = shards_[peer].device;
        const core::ArraySpec& a = job_.spec.arrays[ai];
        link->lo = a.split.start(slices[si].begin);  // the shard boundary
        link->unit = ex.pipeline->array_view(ai).slab;
        link->stage_bytes = static_cast<Bytes>(h.send_hi - link->lo) * link->unit;
        link->stage = link->dst->device_malloc(link->stage_bytes);
        xc.send[ai] = link.get();
        by_recv[{h.send_peer, h.array}] = link.get();
        links_.push_back(std::move(link));
      }
      if (h.recv_peer >= 0) {
        auto it = by_recv.find({s, h.array});
        ensure(it != by_recv.end(), "shard recv halo has no link from its peer");
        xc.recv[ai] = it->second;
      }
    }
    ex.pipeline->set_exchange(ex.exchange.get());
    ex.pipeline->enqueue(job_.kernel);
    for (gpu::Stream* st : ex.pipeline->streams())
      ex.events.push_back(dev.record_event(*st));
    dev.trace().set_trace_id(-1);
    log_debug("shard: round ", rounds_, " shard ", s, " -> dev", ex.device, " [",
              slices[si].begin, ", ", slices[si].end, "), chunk ", dec[si].chunk_size,
              ", ", dec[si].num_streams, " streams");
  }

  if (opts_.flight) {
    for (const auto& l : links_)
      if (l->moved > 0)
        opts_.flight(telemetry::FlightEventKind::P2pXfer,
                     static_cast<std::int64_t>(l->moved), l->src_index, l->dst_index);
  }
  return true;
}

bool ShardRun::round_done() const {
  for (const ShardExec& ex : shards_)
    for (const auto& ev : ex.events)
      if (!ev->complete()) return false;
  return true;
}

void ShardRun::finish_round() {
  require(live(), "ShardRun::finish_round without a live round");
  for (ShardExec& ex : shards_) {
    for (const auto& ev : ex.events)
      finish_time_ = std::max(finish_time_, ev->timestamp());
    // All events already fired; the drain is bookkeeping, and destroying
    // the pipeline releases its ring buffers and streams.
    ex.pipeline->wait();
    const core::PipelineStats& st = ex.pipeline->stats();
    p2p_bytes_ += st.p2p_bytes;
    h2d_bytes_ += st.h2d_bytes;
    d2h_bytes_ += st.d2h_bytes;
    ex.pipeline.reset();
    admission_.release(ex.device, ex.footprint);
  }
  for (auto& l : links_) l->dst->device_free(l->stage);
  links_.clear();
  shards_.clear();
  cursor_ = round_end_;
  ++rounds_;
}

std::int64_t ShardRun::device_mask() const {
  std::int64_t mask = 0;
  for (const ShardExec& ex : shards_)
    if (ex.device >= 0 && ex.device < 63) mask |= std::int64_t{1} << ex.device;
  return mask;
}

std::vector<int> ShardRun::shard_devices() const {
  std::vector<int> out;
  out.reserve(shards_.size());
  for (const ShardExec& ex : shards_) out.push_back(ex.device);
  return out;
}

Bytes ShardRun::round_footprint() const {
  Bytes total = 0;
  for (const ShardExec& ex : shards_) total += ex.footprint;
  return total;
}

Bytes ShardRun::round_p2p_bytes() const {
  Bytes total = 0;
  for (const ShardExec& ex : shards_)
    if (ex.pipeline) total += ex.pipeline->stats().p2p_bytes;
  return total;
}

int ShardRun::first_device() const {
  return shards_.empty() ? -1 : shards_.front().device;
}

}  // namespace gpupipe::sched
