#include "sched/workloads.hpp"

#include <cstdint>
#include <istream>
#include <sstream>

#include "common/error.hpp"

namespace gpupipe::sched {

namespace {

struct SizeTemplate {
  std::int64_t rows;
  std::int64_t row_elems;
  std::int64_t chunk_size;
  int num_streams;
};

SizeTemplate size_template(const std::string& size) {
  if (size == "small") return {96, 1024, 8, 2};
  if (size == "medium") return {192, 2048, 16, 3};
  if (size == "large") return {384, 4096, 32, 4};
  throw Error("job mix: unknown size '" + size + "' (small|medium|large)");
}

// Deterministic input data, varied per job so concurrent tenants cannot
// accidentally validate against each other's results.
void fill_input(std::vector<double>& v, int index) {
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 0.25 + static_cast<double>((i + 37 * static_cast<std::size_t>(index)) % 97) / 192.0;
}

double stream_fn(double x) { return x * 1.5 + 2.0; }

double compute_fn(double x) {
  double v = x;
  for (int t = 0; t < 16; ++t) v = v * 0.9995 + 0.0005 * v * v;
  return v;
}

core::ArraySpec slab_array(const char* name, core::MapType map, std::byte* host,
                           std::int64_t rows, std::int64_t row_elems, std::int64_t window) {
  return core::ArraySpec{name,
                         map,
                         host,
                         sizeof(double),
                         {rows, row_elems},
                         core::SplitSpec{0, core::Affine{1, 0}, window}};
}

core::ArraySpec slab_array(const char* name, core::MapType map, std::vector<double>& host,
                           std::int64_t rows, std::int64_t row_elems, std::int64_t window) {
  return slab_array(name, map, reinterpret_cast<std::byte*>(host.data()), rows, row_elems,
                    window);
}

core::KernelFactory pointwise_kernel(const char* name, std::int64_t row_elems,
                                     double flops_per_elem, double (*fn)(double)) {
  return [name, row_elems, flops_per_elem, fn](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = name;
    k.flops = static_cast<double>(ctx.iterations() * row_elems) * flops_per_elem;
    k.bytes = static_cast<Bytes>(ctx.iterations() * row_elems) * 2 * sizeof(double);
    const core::BufferView in = ctx.view("in");
    const core::BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in, out, lo, hi, row_elems, fn] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* s = in.slab_ptr(r);
        double* d = out.slab_ptr(r);
        for (std::int64_t j = 0; j < row_elems; ++j) d[j] = fn(s[j]);
      }
    };
    return k;
  };
}

core::KernelFactory stencil_kernel(std::int64_t row_elems) {
  return [row_elems](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "serve_stencil";
    k.flops = static_cast<double>(ctx.iterations() * row_elems) * 3.0;
    k.bytes = static_cast<Bytes>(ctx.iterations() * row_elems) * 4 * sizeof(double);
    const core::BufferView in = ctx.view("in");
    const core::BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in, out, lo, hi, row_elems] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* s0 = in.slab_ptr(r);
        const double* s1 = in.slab_ptr(r + 1);
        const double* s2 = in.slab_ptr(r + 2);
        double* d = out.slab_ptr(r);
        for (std::int64_t j = 0; j < row_elems; ++j) d[j] = 0.25 * (s0[j] + s1[j] + s2[j]);
      }
    };
    return k;
  };
}

/// Kernel factory + roofline cost hints per app; shared by the backed and
/// synthetic job makers so both shapes estimate and schedule identically.
void assign_app_kernel(Job& job, const std::string& app, std::int64_t row_elems) {
  if (app == "stream") {
    job.kernel = pointwise_kernel("serve_stream", row_elems, 2.0, stream_fn);
    job.flops_per_iter = static_cast<double>(row_elems) * 2.0;
    job.bytes_per_iter = static_cast<double>(row_elems) * 2 * sizeof(double);
  } else if (app == "compute") {
    // 16 fused-polynomial steps per element: solidly compute-bound on the
    // roofline, unlike the transfer-bound stream/stencil apps.
    job.kernel = pointwise_kernel("serve_compute", row_elems, 48.0, compute_fn);
    job.flops_per_iter = static_cast<double>(row_elems) * 48.0;
    job.bytes_per_iter = static_cast<double>(row_elems) * 2 * sizeof(double);
  } else {
    job.kernel = stencil_kernel(row_elems);
    job.flops_per_iter = static_cast<double>(row_elems) * 3.0;
    job.bytes_per_iter = static_cast<double>(row_elems) * 4 * sizeof(double);
  }
}

}  // namespace

ServeJob make_serve_job(const JobMixLine& line, int index) {
  const SizeTemplate t = size_template(line.size);
  const bool stencil = line.app == "stencil";
  if (!stencil && line.app != "stream" && line.app != "compute")
    throw Error("job mix: unknown app '" + line.app + "' (stream|stencil|compute)");

  ServeJob sj;
  sj.app = line.app;
  sj.rows = t.rows;
  sj.row_elems = t.row_elems;
  const std::int64_t out_rows = stencil ? t.rows - 2 : t.rows;
  sj.in = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(t.rows * t.row_elems));
  sj.out = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(out_rows * t.row_elems), 0.0);
  fill_input(*sj.in, index);

  Job& job = sj.job;
  job.name = line.app + "-" + line.size + "-" + std::to_string(index);
  job.priority = line.priority;
  job.arrival = line.arrival;
  if (line.deadline) job.deadline = line.arrival + *line.deadline;

  core::PipelineSpec& spec = job.spec;
  spec.chunk_size = t.chunk_size;
  spec.num_streams = t.num_streams;
  spec.loop_begin = 0;
  spec.loop_end = out_rows;
  spec.arrays = {
      slab_array("in", core::MapType::To, *sj.in, t.rows, t.row_elems, stencil ? 3 : 1),
      slab_array("out", core::MapType::From, *sj.out, out_rows, t.row_elems, 1),
  };

  assign_app_kernel(job, line.app, t.row_elems);
  return sj;
}

ServeJob make_synthetic_job(const JobMixLine& line, int index) {
  const SizeTemplate t = size_template(line.size);
  const bool stencil = line.app == "stencil";
  if (!stencil && line.app != "stream" && line.app != "compute")
    throw Error("job mix: unknown app '" + line.app + "' (stream|stencil|compute)");

  ServeJob sj;
  sj.app = line.app;
  sj.rows = t.rows;
  sj.row_elems = t.row_elems;
  const std::int64_t out_rows = stencil ? t.rows - 2 : t.rows;

  // Placeholder host ranges: disjoint per job (32 MiB windows, comfortably
  // larger than the biggest template's ~12.6 MiB slab) so no two tenants
  // alias, and never dereferenced — modeled-mode devices skip functional
  // copy/kernel payloads, and verify() passes trivially without backing.
  const std::uintptr_t base =
      0x400000000000ull + (static_cast<std::uintptr_t>(index) << 25);
  std::byte* fake_in = reinterpret_cast<std::byte*>(base);
  std::byte* fake_out = reinterpret_cast<std::byte*>(base + (1ull << 24));

  Job& job = sj.job;
  job.name = line.app + "-" + line.size + "-" + std::to_string(index);
  job.priority = line.priority;
  job.arrival = line.arrival;
  if (line.deadline) job.deadline = line.arrival + *line.deadline;

  core::PipelineSpec& spec = job.spec;
  spec.chunk_size = t.chunk_size;
  spec.num_streams = t.num_streams;
  spec.loop_begin = 0;
  spec.loop_end = out_rows;
  spec.arrays = {
      slab_array("in", core::MapType::To, fake_in, t.rows, t.row_elems, stencil ? 3 : 1),
      slab_array("out", core::MapType::From, fake_out, out_rows, t.row_elems, 1),
  };
  assign_app_kernel(job, line.app, t.row_elems);
  return sj;
}

std::vector<ServeJob> make_chain_jobs(int chains, int stages, const std::string& size,
                                      int first_id) {
  require(chains >= 1, "chain mix needs at least one chain");
  require(stages >= 2, "a chain needs at least two stages to hand anything off");
  require(first_id >= 0, "chain mix first_id must be >= 0");
  const SizeTemplate t = size_template(size);
  static const char* apps[] = {"stream", "compute"};
  const std::size_t elems = static_cast<std::size_t>(t.rows * t.row_elems);

  std::vector<ServeJob> jobs;
  jobs.reserve(static_cast<std::size_t>(chains * stages));
  int id = first_id;
  for (int c = 0; c < chains; ++c) {
    auto head_in = std::make_shared<std::vector<double>>(elems);
    fill_input(*head_in, first_id + c);
    std::shared_ptr<std::vector<double>> cur = head_in;
    std::vector<std::string> chain_apps;
    for (int s = 0; s < stages; ++s, ++id) {
      const std::string app = apps[s % 2];
      chain_apps.push_back(app);
      auto out = std::make_shared<std::vector<double>>(elems, 0.0);

      ServeJob sj;
      sj.app = app;
      sj.rows = t.rows;
      sj.row_elems = t.row_elems;
      sj.in = cur;
      sj.out = out;

      Job& job = sj.job;
      job.name = "chain" + std::to_string(c) + "-s" + std::to_string(s) + "-" + app;
      job.arrival = 0.0008 * static_cast<double>(id - first_id);

      core::PipelineSpec& spec = job.spec;
      spec.chunk_size = t.chunk_size;
      spec.num_streams = t.num_streams;
      spec.loop_begin = 0;
      spec.loop_end = t.rows;
      spec.arrays = {
          slab_array("in", core::MapType::To, *cur, t.rows, t.row_elems, 1),
          slab_array("out", core::MapType::From, *out, t.rows, t.row_elems, 1),
      };
      assign_app_kernel(job, app, t.row_elems);
      if (s > 0) job.consumes(id - 1, "in", "out");
      if (s < stages - 1) {
        sj.intermediate = true;
      } else {
        // The tail verifies the whole chain from the head's fresh input —
        // the only host data guaranteed to exist under stitching.
        sj.in = head_in;
        sj.chain = chain_apps;
      }
      jobs.push_back(std::move(sj));
      cur = out;
    }
  }
  return jobs;
}

bool ServeJob::verify() const {
  if (!in || !out) return true;  // synthetic job: no host backing to check
  if (intermediate) return true;  // host output undefined when stitched
  if (!chain.empty()) {
    std::vector<double> exp = *in;
    for (const std::string& stage : chain) {
      double (*fn)(double) = stage == "compute" ? compute_fn : stream_fn;
      for (double& x : exp) x = fn(x);
    }
    for (std::size_t k = 0; k < out->size(); ++k)
      if ((*out)[k] != exp[k]) return false;
    return true;
  }
  const std::vector<double>& i = *in;
  const std::vector<double>& o = *out;
  const std::int64_t e = row_elems;
  if (app == "stencil") {
    for (std::int64_t r = 0; r < rows - 2; ++r)
      for (std::int64_t j = 0; j < e; ++j)
        if (o[static_cast<std::size_t>(r * e + j)] !=
            0.25 * (i[static_cast<std::size_t>(r * e + j)] +
                    i[static_cast<std::size_t>((r + 1) * e + j)] +
                    i[static_cast<std::size_t>((r + 2) * e + j)]))
          return false;
    return true;
  }
  double (*fn)(double) = app == "compute" ? compute_fn : stream_fn;
  for (std::size_t k = 0; k < o.size(); ++k)
    if (o[k] != fn(i[k])) return false;
  return true;
}

double ServeJob::output_checksum() const {
  if (!out) return 0.0;          // synthetic job: no output array
  if (intermediate) return 0.0;  // undefined host bytes under stitching
  double sum = 0.0;
  for (std::size_t k = 0; k < out->size(); ++k)
    sum += (*out)[k] * static_cast<double>((k % 13) + 1);
  return sum;
}

std::vector<JobMixLine> parse_job_mix(std::istream& is) {
  std::vector<JobMixLine> mix;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    JobMixLine l;
    if (!(ls >> l.app)) continue;  // blank or comment-only line
    double deadline = 0.0;
    if (!(ls >> l.size >> l.priority >> l.arrival))
      throw Error("job mix line " + std::to_string(lineno) +
                  ": expected '<app> <size> <priority> <arrival_s> [deadline_s]'");
    if (ls >> deadline) {
      require(deadline > 0.0, "job mix line " + std::to_string(lineno) +
                                  ": deadline must be positive");
      l.deadline = deadline;
    }
    std::string extra;
    if (ls >> extra)
      throw Error("job mix line " + std::to_string(lineno) + ": trailing token '" +
                  extra + "'");
    require(l.arrival >= 0.0,
            "job mix line " + std::to_string(lineno) + ": arrival must be >= 0");
    // Fail early on unknown names so a typo is reported with its line.
    size_template(l.size);
    if (l.app != "stream" && l.app != "stencil" && l.app != "compute")
      throw Error("job mix line " + std::to_string(lineno) + ": unknown app '" + l.app +
                  "'");
    mix.push_back(std::move(l));
  }
  return mix;
}

std::vector<JobMixLine> default_job_mix(int n) {
  require(n >= 1, "default job mix needs at least one job");
  static const char* apps[] = {"stream", "stencil", "compute"};
  static const char* sizes[] = {"medium", "small", "large"};
  std::vector<JobMixLine> mix;
  mix.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    JobMixLine l;
    l.app = apps[i % 3];
    l.size = sizes[(i / 3 + i) % 3];
    l.priority = i % 3;
    l.arrival = 0.0008 * static_cast<double>(i);
    if (i % 5 == 4) l.deadline = 0.25;  // generous; missed only if starved
    mix.push_back(std::move(l));
  }
  return mix;
}

std::vector<JobMixLine> synthetic_job_mix(int n) {
  require(n >= 1, "synthetic job mix needs at least one job");
  static const char* apps[] = {"stream", "stencil", "compute"};
  static const char* sizes[] = {"medium", "small", "large"};
  std::vector<JobMixLine> mix;
  mix.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    JobMixLine l;
    l.app = apps[i % 3];
    l.size = sizes[(i / 3 + i) % 3];
    l.priority = i % 3;
    // 50 us spacing: a 100k-tenant fleet arrives inside 5 s of virtual time,
    // so the queue and backoff paths stay saturated throughout.
    l.arrival = 5e-5 * static_cast<double>(i);
    mix.push_back(std::move(l));
  }
  return mix;
}

}  // namespace gpupipe::sched
