#include "dsl/parser.hpp"

#include <cctype>

namespace gpupipe::dsl {

namespace {

enum class Tok { Ident, Number, LParen, RParen, LBracket, RBracket, Colon, Comma, Plus,
                 Minus, Star, End };

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::int64_t value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg, std::size_t pos) const {
    // Caret diagnostic: show the text with a marker under the position.
    std::string out = "directive parse error: " + msg + "\n  " + std::string(text_) + "\n  " +
                      std::string(std::min(pos, text_.size()), ' ') + "^";
    throw ParseError(out);
  }
  [[noreturn]] void fail_here(const std::string& msg) const { fail(msg, current_.pos); }

 private:
  void advance() {
    // Skip whitespace, line continuations, and a leading pragma prefix.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\\') {
        ++pos_;
      } else if (c == '#') {
        // "#pragma omp target" prefix: skip "#" and the next two words.
        ++pos_;
        skip_word("pragma");
        skip_word("omp");
        skip_word("target");
      } else {
        break;
      }
    }
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_ = Token{Tok::End, "", 0, pos_};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
        ++pos_;
      current_ = Token{Tok::Ident, std::string(text_.substr(start, pos_ - start)), 0, start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      std::int64_t v = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      current_ = Token{Tok::Number, std::string(text_.substr(start, pos_ - start)), v, start};
      return;
    }
    Tok k;
    switch (c) {
      case '(': k = Tok::LParen; break;
      case ')': k = Tok::RParen; break;
      case '[': k = Tok::LBracket; break;
      case ']': k = Tok::RBracket; break;
      case ':': k = Tok::Colon; break;
      case ',': k = Tok::Comma; break;
      case '+': k = Tok::Plus; break;
      case '-': k = Tok::Minus; break;
      case '*': k = Tok::Star; break;
      default: fail(std::string("unexpected character '") + c + "'", pos_);
    }
    current_ = Token{k, std::string(1, c), 0, pos_};
    ++pos_;
  }

  void skip_word(std::string_view expect) {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    std::size_t start = pos_;
    while (pos_ < text_.size() && std::isalpha(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (text_.substr(start, pos_ - start) != expect)
      fail("expected '" + std::string(expect) + "' in pragma prefix", start);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Directive parse_directive() {
    Directive d;
    bool saw_pipeline = false;
    while (lex_.peek().kind != Tok::End) {
      const Token t = expect(Tok::Ident, "clause name");
      if (t.text == "pipeline") {
        if (saw_pipeline) lex_.fail("duplicate pipeline() clause", t.pos);
        saw_pipeline = true;
        parse_pipeline_clause(d);
      } else if (t.text == "pipeline_map") {
        parse_map_clause(d);
      } else if (t.text == "pipeline_mem_limit") {
        if (d.mem_limit) lex_.fail("duplicate pipeline_mem_limit() clause", t.pos);
        parse_mem_limit(d);
      } else if (t.text == "pipeline_opt") {
        if (d.opt_level) lex_.fail("duplicate pipeline_opt() clause", t.pos);
        expect(Tok::LParen, "'('");
        d.opt_level = parse_expr();
        expect(Tok::RParen, "')'");
      } else {
        lex_.fail("unknown clause '" + t.text + "' (expected pipeline, pipeline_map, "
                  "pipeline_mem_limit, or pipeline_opt)", t.pos);
      }
    }
    if (d.maps.empty())
      throw ParseError("directive parse error: at least one pipeline_map clause is required");
    return d;
  }

 private:
  Token expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) lex_.fail_here(std::string("expected ") + what);
    return lex_.next();
  }

  // pipeline(schedule_kind[chunk_size, num_stream])
  void parse_pipeline_clause(Directive& d) {
    expect(Tok::LParen, "'('");
    const Token kind = expect(Tok::Ident, "schedule kind (static or adaptive)");
    if (kind.text == "static") {
      d.schedule = core::ScheduleKind::Static;
    } else if (kind.text == "adaptive") {
      d.schedule = core::ScheduleKind::Adaptive;
    } else {
      lex_.fail("unknown schedule kind '" + kind.text + "'", kind.pos);
    }
    if (lex_.peek().kind == Tok::LBracket) {
      lex_.next();
      d.chunk_size = parse_expr();
      expect(Tok::Comma, "','");
      d.num_streams = parse_expr();
      expect(Tok::RBracket, "']'");
    }
    expect(Tok::RParen, "')'");
  }

  // pipeline_map(map_type : var[start:extent]...)
  void parse_map_clause(Directive& d) {
    expect(Tok::LParen, "'('");
    const Token type = expect(Tok::Ident, "map type (to, from, tofrom)");
    ParsedMap m;
    if (type.text == "to") {
      m.type = core::MapType::To;
    } else if (type.text == "from") {
      m.type = core::MapType::From;
    } else if (type.text == "tofrom") {
      m.type = core::MapType::ToFrom;
    } else {
      lex_.fail("unknown map type '" + type.text + "'", type.pos);
    }
    expect(Tok::Colon, "':'");
    m.array = expect(Tok::Ident, "array name").text;
    while (lex_.peek().kind == Tok::LBracket) {
      lex_.next();
      ParsedDim dim;
      dim.start = parse_expr();
      expect(Tok::Colon, "':'");
      dim.extent = parse_expr();
      expect(Tok::RBracket, "']'");
      m.dims.push_back(std::move(dim));
    }
    if (m.dims.empty()) lex_.fail_here("array section needs at least one [start:extent]");
    expect(Tok::RParen, "')'");
    d.maps.push_back(std::move(m));
  }

  // pipeline_mem_limit(MB_256 | GB_2 | KB_64 | <bytes>)
  void parse_mem_limit(Directive& d) {
    expect(Tok::LParen, "'('");
    const Token t = lex_.next();
    if (t.kind == Tok::Number) {
      d.mem_limit = static_cast<Bytes>(t.value);
    } else if (t.kind == Tok::Ident) {
      const auto us = t.text.find('_');
      if (us == std::string::npos) lex_.fail("expected UNIT_N like MB_256", t.pos);
      const std::string unit = t.text.substr(0, us);
      const std::string num = t.text.substr(us + 1);
      Bytes mult = 0;
      if (unit == "KB") mult = KiB;
      if (unit == "MB") mult = MiB;
      if (unit == "GB") mult = GiB;
      if (mult == 0) lex_.fail("unknown memory unit '" + unit + "' (KB, MB, GB)", t.pos);
      std::int64_t n = 0;
      for (char c : num) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
          lex_.fail("expected UNIT_N like MB_256", t.pos);
        n = n * 10 + (c - '0');
      }
      if (n <= 0) lex_.fail("memory limit must be positive", t.pos);
      d.mem_limit = static_cast<Bytes>(n) * mult;
    } else {
      lex_.fail("expected a memory size", t.pos);
    }
    expect(Tok::RParen, "')'");
  }

  // expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
  // factor := number | ident | '-' factor | '(' expr ')'
  ExprPtr parse_expr() {
    ExprPtr e = parse_term();
    while (lex_.peek().kind == Tok::Plus || lex_.peek().kind == Tok::Minus) {
      const bool plus = lex_.next().kind == Tok::Plus;
      ExprPtr rhs = parse_term();
      e = plus ? Expr::add(std::move(e), std::move(rhs))
               : Expr::sub(std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (lex_.peek().kind == Tok::Star) {
      lex_.next();
      e = Expr::mul(std::move(e), parse_factor());
    }
    return e;
  }

  ExprPtr parse_factor() {
    const Token t = lex_.next();
    switch (t.kind) {
      case Tok::Number: return Expr::num(t.value);
      case Tok::Ident: return Expr::var(t.text);
      case Tok::Minus: return Expr::neg(parse_factor());
      case Tok::LParen: {
        ExprPtr e = parse_expr();
        expect(Tok::RParen, "')'");
        return e;
      }
      default: lex_.fail("expected an expression", t.pos);
    }
  }

  Lexer lex_;
};

}  // namespace

Directive parse(std::string_view text) { return Parser(text).parse_directive(); }

}  // namespace gpupipe::dsl
