// Binding a parsed directive to real host arrays.
//
// The paper's prototype passes all parameters explicitly to the runtime
// (§III end); binding is the moment the directive text meets the program:
// array names resolve to host pointers/extents, symbolic extents (ny, nx)
// resolve through an environment, the split dimension is identified as the
// one whose start expression references the loop variable, and that
// expression is verified to be affine.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "dsl/expr.hpp"
#include "dsl/parser.hpp"

namespace gpupipe::dsl {

/// Thrown when a directive cannot be bound to the supplied arrays.
class BindError : public Error {
 public:
  using Error::Error;
};

/// Host-side description of one array available for mapping.
struct HostArray {
  std::byte* ptr = nullptr;
  Bytes elem_size = sizeof(double);
  /// Extents, outermost first (row-major).
  std::vector<std::int64_t> dims;

  template <typename T>
  static HostArray of(T* data, std::vector<std::int64_t> dims) {
    return HostArray{reinterpret_cast<std::byte*>(data), sizeof(T), std::move(dims)};
  }
};

/// Name -> host array registry supplied by the application.
using Bindings = std::map<std::string, HostArray>;

/// Produces a runnable PipelineSpec from a parsed directive.
///
/// `loop_var` is the split loop's variable name as used in the directive;
/// [loop_begin, loop_end) its iteration range; `env` supplies values for
/// every other identifier the directive mentions (ny, nx, ...).
core::PipelineSpec bind(const Directive& d, const std::string& loop_var,
                        std::int64_t loop_begin, std::int64_t loop_end,
                        const Bindings& arrays, const Env& env = {});

/// Convenience: parse + bind in one step.
core::PipelineSpec compile(std::string_view directive_text, const std::string& loop_var,
                           std::int64_t loop_begin, std::int64_t loop_end,
                           const Bindings& arrays, const Env& env = {});

}  // namespace gpupipe::dsl
