// Tiny integer expression trees for directive arguments.
//
// Directive clauses contain expressions over named constants and the split
// loop's variable: `k-1`, `2*k+1`, `ny`, `nx*ny`. The parser builds these
// trees; binding evaluates them against an environment and classifies the
// split_iter expression as an affine function of the loop variable (the only
// form the runtime supports, matching the paper's examples).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace gpupipe::dsl {

/// Variable bindings available when evaluating directive expressions.
using Env = std::map<std::string, std::int64_t>;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable integer expression tree.
class Expr {
 public:
  enum class Kind { Num, Var, Add, Sub, Mul, Neg };

  static ExprPtr num(std::int64_t v) { return ExprPtr(new Expr(Kind::Num, v, {}, {}, {})); }
  static ExprPtr var(std::string name) {
    return ExprPtr(new Expr(Kind::Var, 0, std::move(name), {}, {}));
  }
  static ExprPtr add(ExprPtr a, ExprPtr b) {
    return ExprPtr(new Expr(Kind::Add, 0, {}, std::move(a), std::move(b)));
  }
  static ExprPtr sub(ExprPtr a, ExprPtr b) {
    return ExprPtr(new Expr(Kind::Sub, 0, {}, std::move(a), std::move(b)));
  }
  static ExprPtr mul(ExprPtr a, ExprPtr b) {
    return ExprPtr(new Expr(Kind::Mul, 0, {}, std::move(a), std::move(b)));
  }
  static ExprPtr neg(ExprPtr a) {
    return ExprPtr(new Expr(Kind::Neg, 0, {}, std::move(a), {}));
  }

  /// Evaluates against `env`; throws Error for unbound variables.
  std::int64_t eval(const Env& env) const {
    switch (kind_) {
      case Kind::Num: return value_;
      case Kind::Var: {
        auto it = env.find(name_);
        require(it != env.end(), "directive references unbound variable '" + name_ + "'");
        return it->second;
      }
      case Kind::Add: return lhs_->eval(env) + rhs_->eval(env);
      case Kind::Sub: return lhs_->eval(env) - rhs_->eval(env);
      case Kind::Mul: return lhs_->eval(env) * rhs_->eval(env);
      case Kind::Neg: return -lhs_->eval(env);
    }
    throw Error("corrupt expression tree");
  }

  /// True when the tree mentions variable `var`.
  bool references(const std::string& var) const {
    switch (kind_) {
      case Kind::Num: return false;
      case Kind::Var: return name_ == var;
      case Kind::Neg: return lhs_->references(var);
      default: return lhs_->references(var) || rhs_->references(var);
    }
  }

  /// Adds every variable the tree mentions to `out`.
  template <typename Set>
  void collect_vars(Set& out) const {
    switch (kind_) {
      case Kind::Num: return;
      case Kind::Var: out.insert(name_); return;
      case Kind::Neg: lhs_->collect_vars(out); return;
      default:
        lhs_->collect_vars(out);
        rhs_->collect_vars(out);
    }
  }

  /// Human-readable form (diagnostics).
  std::string str() const {
    switch (kind_) {
      case Kind::Num: return std::to_string(value_);
      case Kind::Var: return name_;
      case Kind::Add: return binary_str('+');
      case Kind::Sub: return binary_str('-');
      case Kind::Mul: return binary_str('*');
      case Kind::Neg: {
        std::string s = "(-";
        s += lhs_->str();
        s += ')';
        return s;
      }
    }
    return "?";
  }

 private:
  Expr(Kind k, std::int64_t v, std::string n, ExprPtr l, ExprPtr r)
      : kind_(k), value_(v), name_(std::move(n)), lhs_(std::move(l)), rhs_(std::move(r)) {}

  std::string binary_str(char op) const {
    std::string s = "(";
    s += lhs_->str();
    s += op;
    s += rhs_->str();
    s += ')';
    return s;
  }

  Kind kind_;
  std::int64_t value_;
  std::string name_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace gpupipe::dsl
