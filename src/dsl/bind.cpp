#include "dsl/bind.hpp"

namespace gpupipe::dsl {

namespace {

/// Verifies `e` is affine in `var` under `env` and extracts scale/offset.
core::Affine extract_affine(const ExprPtr& e, const std::string& var, const Env& env,
                            const std::string& where) {
  Env probe = env;
  auto at = [&](std::int64_t k) {
    probe[var] = k;
    return e->eval(probe);
  };
  const std::int64_t f0 = at(0), f1 = at(1), f2 = at(2);
  if (f2 - f1 != f1 - f0)
    throw BindError(where + ": split_iter expression '" + e->str() +
                    "' is not affine in the loop variable");
  return core::Affine{f1 - f0, f0};
}

}  // namespace

core::PipelineSpec bind(const Directive& d, const std::string& loop_var,
                        std::int64_t loop_begin, std::int64_t loop_end,
                        const Bindings& arrays, const Env& env) {
  core::PipelineSpec spec;
  spec.schedule = d.schedule;
  spec.loop_begin = loop_begin;
  spec.loop_end = loop_end;
  spec.mem_limit = d.mem_limit;
  if (d.chunk_size) spec.chunk_size = d.chunk_size->eval(env);
  if (d.num_streams) spec.num_streams = static_cast<int>(d.num_streams->eval(env));
  if (d.opt_level) spec.opt_level = static_cast<int>(d.opt_level->eval(env));

  for (const auto& m : d.maps) {
    const std::string where = "pipeline_map(" + std::string(core::to_string(m.type)) + ": " +
                              m.array + ")";
    auto it = arrays.find(m.array);
    if (it == arrays.end())
      throw BindError(where + ": no host array named '" + m.array + "' was registered");
    const HostArray& host = it->second;
    if (host.dims.size() != m.dims.size())
      throw BindError(where + ": directive declares " + std::to_string(m.dims.size()) +
                      " dimensions but the registered array has " +
                      std::to_string(host.dims.size()));

    core::ArraySpec a;
    a.name = m.array;
    a.map = m.type;
    a.host = host.ptr;
    a.elem_size = host.elem_size;
    a.dims = host.dims;

    int split_dim = -1;
    for (std::size_t dim = 0; dim < m.dims.size(); ++dim) {
      const ParsedDim& pd = m.dims[dim];
      if (pd.start->references(loop_var)) {
        if (split_dim != -1)
          throw BindError(where + ": more than one dimension references the loop variable '" +
                          loop_var + "'; the prototype splits a single dimension");
        split_dim = static_cast<int>(dim);
        if (pd.extent->references(loop_var))
          throw BindError(where + ": the split window size may not depend on the loop "
                          "variable");
        a.split.dim = split_dim;
        a.split.start = extract_affine(pd.start, loop_var, env, where);
        a.split.window = pd.extent->eval(env);
      } else {
        // Plain dimension: [0 : extent]; extent must match the registered
        // array so indexing inside the kernel stays consistent.
        if (pd.start->eval(env) != 0)
          throw BindError(where + ": non-split dimension " + std::to_string(dim) +
                          " must start at 0");
        const std::int64_t extent = pd.extent->eval(env);
        if (extent != host.dims[dim])
          throw BindError(where + ": dimension " + std::to_string(dim) + " declared as " +
                          std::to_string(extent) + " but the registered array has extent " +
                          std::to_string(host.dims[dim]));
      }
    }
    if (split_dim == -1)
      throw BindError(where + ": no dimension references the loop variable '" + loop_var +
                      "'");
    spec.arrays.push_back(std::move(a));
  }

  spec.validate();
  return spec;
}

core::PipelineSpec compile(std::string_view directive_text, const std::string& loop_var,
                           std::int64_t loop_begin, std::int64_t loop_end,
                           const Bindings& arrays, const Env& env) {
  // Qualified: the unqualified name would also find std::bind via ADL.
  return gpupipe::dsl::bind(parse(directive_text), loop_var, loop_begin, loop_end, arrays,
                            env);
}

}  // namespace gpupipe::dsl
