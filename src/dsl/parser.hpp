// Parser for the paper's directive clause syntax (Fig. 1):
//
//   pipeline(schedule_kind[chunk_size, num_stream])
//   pipeline_map(map_type : var[split_iter:size][0:m]...)
//   pipeline_mem_limit(mem_size)
//   pipeline_opt(level)              — extension; plan optimization level
//
// The text may be the clause list alone or a full pragma line; a leading
// `#pragma omp target` prefix and line-continuation backslashes are
// accepted and ignored. Example (the paper's Fig. 2 stencil):
//
//   parse("pipeline(static[1,3]) "
//         "pipeline_map(to: A0[k-1:3][0:ny][0:nx]) "
//         "pipeline_map(from: Anext[k:1][0:ny][0:nx]) "
//         "pipeline_mem_limit(MB_256)");
//
// mem_size accepts the paper's UNIT_N spelling (KB_64, MB_256, GB_2) or a
// plain byte count. Parse failures throw ParseError with the offending
// position and a caret diagnostic.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "core/spec.hpp"
#include "dsl/expr.hpp"

namespace gpupipe::dsl {

/// Thrown on malformed directive text; what() includes a caret diagnostic.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// One `[start : extent]` bracket pair as written.
struct ParsedDim {
  ExprPtr start;
  ExprPtr extent;
};

/// One pipeline_map clause as written.
struct ParsedMap {
  core::MapType type = core::MapType::To;
  std::string array;
  std::vector<ParsedDim> dims;
};

/// The parsed directive, before binding to host arrays.
struct Directive {
  core::ScheduleKind schedule = core::ScheduleKind::Static;
  ExprPtr chunk_size;   // null => default 1
  ExprPtr num_streams;  // null => default 2
  ExprPtr opt_level;    // null => default 1 (core/plan_opt.hpp)
  std::optional<Bytes> mem_limit;
  std::vector<ParsedMap> maps;
};

/// Parses directive text. Throws ParseError.
Directive parse(std::string_view text);

}  // namespace gpupipe::dsl
