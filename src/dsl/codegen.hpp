// Source-to-source translation (extension).
//
// The paper's future work considers "a source-to-source translator based on
// our previous work". This module is that translator's back end: given the
// directive text plus declarations of the loop and the mapped arrays, it
// emits a self-contained C++ function that registers the arrays, compiles
// the directive against them, constructs the pipeline, and runs a
// per-chunk kernel. The user pastes their loop body (rewritten against the
// BufferViews, which carry the index translation) into the marked slot —
// or passes it in via CodegenInput::kernel_body.
//
// The tools/gpupipe_translate binary wraps this as a command-line tool.
#pragma once

#include <string>
#include <vector>

#include "dsl/parser.hpp"

namespace gpupipe::dsl {

/// Thrown when the declarations do not cover the directive.
class CodegenError : public Error {
 public:
  using Error::Error;
};

/// Everything the translator needs besides the directive itself.
struct CodegenInput {
  /// The pragma/clause text (parsed and validated during generation).
  std::string directive;
  /// The split loop: variable name and C++ expressions for its bounds.
  std::string loop_var = "k";
  std::string loop_begin = "0";
  std::string loop_end;

  struct ArrayDecl {
    std::string name;                    ///< must match a pipeline_map name
    std::string elem_type = "double";    ///< C++ element type
    std::vector<std::string> dims;       ///< extent expressions, outermost first
  };
  std::vector<ArrayDecl> arrays;

  /// Name of the emitted function.
  std::string function_name = "run_pipelined_region";
  /// Optional kernel body statements (uses `ctx` and the generated
  /// `<name>_view` BufferViews); a TODO placeholder is emitted when empty.
  std::string kernel_body;
};

/// Generates the C++ source for the region described by `in`.
/// Throws ParseError/CodegenError on an invalid directive or declarations.
std::string generate_cpp(const CodegenInput& in);

}  // namespace gpupipe::dsl
