#include "core/pipeline.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/log.hpp"
#include "core/layout.hpp"
#include "core/model.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_opt.hpp"
#include "core/telemetry.hpp"

namespace gpupipe::core {

namespace {

bool is_input(const ArraySpec& a) {
  return a.map == MapType::To || a.map == MapType::ToFrom;
}
bool is_output(const ArraySpec& a) {
  return a.map == MapType::From || a.map == MapType::ToFrom;
}

}  // namespace

// --- ChunkContext ---

const BufferView& ChunkContext::view(std::string_view array_name) const {
  return pipeline_->view_of(array_name);
}

void Pipeline::rebind_host(std::string_view array_name, std::byte* host) {
  require(host != nullptr, "rebind_host: pointer is null");
  auto it = index_.find(array_name);
  if (it == index_.end())
    throw Error("pipeline has no mapped array named '" + std::string(array_name) + "'");
  ArrayState& a = arrays_[it->second];
  a.spec.host = host;
  a.ring->rebind_host(host);
}

const BufferView& Pipeline::view_of(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end())
    throw Error("pipeline has no mapped array named '" + std::string(name) + "'");
  return arrays_[it->second].ring->view();
}

const BufferView& Pipeline::array_view(std::size_t ai) const {
  require(ai < arrays_.size(), "array_view: index out of range");
  return arrays_[ai].ring->view();
}

// --- Construction / configuration ---

std::int64_t Pipeline::ring_len_for(const ArraySpec& a, std::int64_t c, int s) {
  return layout::ring_len_affine(a.split.start.scale, a.split.window, c, s);
}

std::int64_t Pipeline::ring_len_for_spec(const ArraySpec& a, std::int64_t c, int s) const {
  return layout::ring_len_for_spec(a, spec_.loop_begin, spec_.loop_end, c, s);
}

Pipeline::Pipeline(gpu::Gpu& gpu, PipelineSpec spec)
    : gpu_(gpu), spec_(std::move(spec)), executor_(gpu_, &stats_) {
  spec_.validate();
  if (spec_.schedule == ScheduleKind::Adaptive) {
    for (const auto& a : spec_.arrays)
      require(!a.split.window_fn,
              "the adaptive schedule's cost model supports affine splits only");
  }
  mem_limit_ = spec_.mem_limit ? std::min(*spec_.mem_limit, gpu_.device_mem_free())
                               : gpu_.device_mem_free();
  auto [c, s] = solve_pipeline_memory(gpu_, spec_, mem_limit_);
  chunk_size_ = c;
  for (int i = 0; i < s; ++i)
    streams_.push_back(&gpu_.create_stream("pipe" + std::to_string(i)));
  arrays_.reserve(spec_.arrays.size());
  for (const auto& a : spec_.arrays) {
    index_.emplace(a.name, arrays_.size());
    ArrayState st;
    st.spec = a;
    arrays_.push_back(std::move(st));
  }
  configure_buffers();
}

Pipeline::~Pipeline() {
  // The region is synchronous at exit of run(), so this is normally a no-op;
  // it guards against destroying buffers under in-flight work. Only this
  // pipeline's own streams are drained — every operation touching its
  // buffers was issued on them — so tearing down one tenant's pipeline
  // never blocks on other pipelines sharing the device (src/sched).
  for (auto* s : streams_) gpu_.synchronize(*s);
  arrays_.clear();
  for (auto* s : streams_) gpu_.destroy_stream(*s);
}

void Pipeline::configure_buffers() {
  const int s = effective_streams();
  std::vector<PlanArrayBinding*> bindings;
  bindings.reserve(arrays_.size());
  for (auto& a : arrays_) {
    a.ring =
        std::make_unique<RingBuffer>(gpu_, a.spec, ring_len_for_spec(a.spec, chunk_size_, s));
    a.binding = std::make_unique<RingBufferBinding>(*a.ring);
    bindings.push_back(a.binding.get());
  }
  PlanCache& cache = PlanCache::instance();
  if (spec_.schedule == ScheduleKind::Static && cache.enabled() &&
      PlanCache::fingerprintable(spec_)) {
    // Cache-compiled plans are node-identical to build_plan at this shape:
    // the cache derives ring lengths from the same layout formulas RingBuffer
    // clamps with, and reads pinned-ness from the same device.
    PipelineSpec shaped = spec_;
    shaped.chunk_size = chunk_size_;
    shaped.num_streams = s;
    PlanCache::Compiled compiled = cache.compile(gpu_, shaped);
    plan_ = std::move(compiled.plan);
    opt_report_ = std::move(compiled.report);
  } else {
    plan_ = std::make_shared<const ExecutionPlan>(
        build_plan(spec_.loop_begin, spec_.loop_end, 0));
  }
  executor_.bind(streams_, std::move(bindings));
}

ExecutionPlan Pipeline::build_plan(std::int64_t from, std::int64_t to,
                                   std::int64_t first_chunk) const {
  PipelineBuildState state;
  state.first_chunk = first_chunk;
  state.ring_lens.reserve(arrays_.size());
  state.pinned.reserve(arrays_.size());
  for (const auto& a : arrays_) {
    state.ring_lens.push_back(a.ring->ring_len());
    state.pinned.push_back(gpu_.is_pinned(a.spec.host));
  }
  ExecutionPlan plan =
      PlanBuilder::pipeline(spec_, chunk_size_, effective_streams(), from, to, state);
  opt_report_ = optimize_plan(plan, spec_.opt_level, &gpu_.profile());
  return plan;
}

void Pipeline::maybe_validate(const ExecutionPlan& p) const {
  if (gpu_.hazards().enabled()) p.validate();
}

Bytes Pipeline::buffer_footprint() const {
  Bytes total = 0;
  for (const auto& a : arrays_) total += a.ring->footprint();
  return total;
}

void Pipeline::collect_metrics(telemetry::Registry& reg, const std::string& prefix) const {
  collect_plan_metrics(reg, *plan_, prefix);
  collect_stats_metrics(reg, stats_, prefix);
  collect_opt_metrics(reg, opt_report_, prefix);
  collect_sim_metrics(reg, gpu_.context()->sim, prefix);
  const std::string p = prefix + "pipeline.";
  reg.gauge(p + "chunk_size").set(static_cast<double>(chunk_size_));
  reg.gauge(p + "num_streams").set(static_cast<double>(effective_streams()));
  reg.gauge(p + "mem_limit_bytes").set(static_cast<double>(mem_limit_));
  reg.gauge(p + "buffer_footprint_bytes").set(static_cast<double>(buffer_footprint()));
  for (const auto& a : arrays_) {
    const std::string rp = prefix + "ring." + a.spec.name + ".";
    reg.gauge(rp + "len").set(static_cast<double>(a.ring->ring_len()));
    reg.gauge(rp + "footprint_bytes").set(static_cast<double>(a.ring->footprint()));
    reg.counter(rp + "h2d_copies").add(a.ring->h2d_copies());
    reg.counter(rp + "d2h_copies").add(a.ring->d2h_copies());
    reg.counter(rp + "h2d_bytes").add(static_cast<std::int64_t>(a.ring->h2d_bytes()));
    reg.counter(rp + "d2h_bytes").add(static_cast<std::int64_t>(a.ring->d2h_bytes()));
  }
}

// --- Execution ---

PlanKernelMaker Pipeline::maker(const KernelFactory& make_kernel) const {
  return [this, &make_kernel](const PlanNode& n) {
    const ChunkContext ctx(*this, n.chunk, n.begin, n.end);
    return make_kernel(ctx);
  };
}

void Pipeline::run(const KernelFactory& make_kernel) {
  const PlanKernelMaker mk = maker(make_kernel);
  if (spec_.schedule == ScheduleKind::Static) {
    maybe_validate(*plan_);
    executor_.run(*plan_, mk);
    return;
  }

  // Adaptive extension: probe the first chunk, model the rest.
  const std::int64_t probe_hi = std::min(spec_.loop_begin + chunk_size_, spec_.loop_end);
  const ExecutionPlan probe = build_plan(spec_.loop_begin, probe_hi, 0);
  maybe_validate(probe);
  executor_.run(probe, mk);
  if (probe_hi == spec_.loop_end) return;

  const SimTime probe_kernel =
      executor_.last_kernel() ? executor_.last_kernel()->duration() : 0.0;
  const std::int64_t c_star = adaptive_chunk_size(probe_kernel, probe_hi - spec_.loop_begin);
  if (c_star != chunk_size_) {
    log_debug("pipeline: adaptive schedule re-chunks ", chunk_size_, " -> ", c_star,
              " after a ", probe_kernel, "s probe kernel");
    if (telemetry::metrics_enabled())
      telemetry::global_metrics().counter("pipeline.adaptive_rechunk_events").add(1);
    chunk_size_ = c_star;
    configure_buffers();
  }
  const ExecutionPlan rest = build_plan(probe_hi, spec_.loop_end, 1);
  maybe_validate(rest);
  executor_.run(rest, mk);
}

void Pipeline::enqueue(const KernelFactory& make_kernel) {
  require(spec_.schedule == ScheduleKind::Static,
          "split-phase execution requires the static schedule");
  maybe_validate(*plan_);
  executor_.enqueue(*plan_, maker(make_kernel));
}

void Pipeline::wait() { executor_.wait(); }

std::vector<ChunkPlan> Pipeline::plan() const {
  std::vector<ChunkPlan> out;
  std::vector<std::int64_t> copied_hi(arrays_.size(), 0);
  std::vector<bool> copied_any(arrays_.size(), false);
  std::int64_t counter = 0;
  for (std::int64_t lo = spec_.loop_begin; lo < spec_.loop_end;
       lo += chunk_size_, ++counter) {
    const std::int64_t hi = std::min(lo + chunk_size_, spec_.loop_end);
    ChunkPlan cp;
    cp.index = counter;
    cp.stream = static_cast<int>(counter % static_cast<std::int64_t>(streams_.size()));
    cp.begin = lo;
    cp.end = hi;
    for (std::size_t ai = 0; ai < arrays_.size(); ++ai) {
      const auto& a = arrays_[ai];
      const auto [w_lo, w_hi] = layout::window_of(a.spec, lo, hi);
      if (is_input(a.spec)) {
        // Mirror the executed plan: with the halo-reuse pass enabled, only
        // the non-resident suffix of the window is uploaded.
        const bool elide = spec_.opt_level >= 1 && copied_any[ai];
        const std::int64_t n_lo = elide ? std::max(copied_hi[ai], w_lo) : w_lo;
        if (n_lo < w_hi) cp.copies_in.push_back({a.spec.name, n_lo, w_hi});
        copied_hi[ai] = std::max(copied_hi[ai], w_hi);
        copied_any[ai] = true;
      }
      if (is_output(a.spec)) cp.copies_out.push_back({a.spec.name, w_lo, w_hi});
    }
    out.push_back(std::move(cp));
  }
  return out;
}

void Pipeline::print_plan(std::ostream& os) const {
  os << "pipeline plan: " << spec_.iterations() << " iterations, chunk " << chunk_size_
     << ", " << streams_.size() << " streams\n";
  for (const auto& cp : plan()) {
    os << "  chunk " << cp.index << " [" << cp.begin << "," << cp.end << ") on stream "
       << cp.stream << ":";
    for (const auto& m : cp.copies_in)
      os << " in " << m.array << "[" << m.lo << "," << m.hi << ")";
    os << " kernel";
    for (const auto& m : cp.copies_out)
      os << " out " << m.array << "[" << m.lo << "," << m.hi << ")";
    os << "\n";
  }
}

// --- Adaptive schedule (extension) ---

std::int64_t Pipeline::adaptive_chunk_size(SimTime probe_kernel_time,
                                           std::int64_t probe_chunk) const {
  const auto& p = gpu_.profile();
  const double per_iter_kernel =
      std::max(0.0, probe_kernel_time - p.kernel_launch_latency) /
      static_cast<double>(std::max<std::int64_t>(probe_chunk, 1));
  const CostModel model(p, spec_, per_iter_kernel);
  return model.best_chunk(gpu_, mem_limit_, effective_streams());
}

}  // namespace gpupipe::core
