#include "core/pipeline.hpp"

#include "core/model.hpp"

#include <algorithm>
#include <ostream>

#include "common/log.hpp"

namespace gpupipe::core {

namespace {

/// Bytes of one split-dim index of `a` (a slab, or one column for block2d).
Bytes unit_bytes(const ArraySpec& a) {
  if (a.split.dim == 0) return static_cast<Bytes>(a.inner_elems()) * a.elem_size;
  return static_cast<Bytes>(a.dims[0]) * a.elem_size;
}

}  // namespace

// --- ChunkContext ---

const BufferView& ChunkContext::view(std::string_view array_name) const {
  return pipeline_->view_of(array_name);
}

void Pipeline::rebind_host(std::string_view array_name, std::byte* host) {
  require(host != nullptr, "rebind_host: pointer is null");
  for (auto& a : arrays_) {
    if (a.spec.name == array_name) {
      a.spec.host = host;
      a.ring->rebind_host(host);
      return;
    }
  }
  throw Error("pipeline has no mapped array named '" + std::string(array_name) + "'");
}

const BufferView& Pipeline::view_of(std::string_view name) const {
  for (const auto& a : arrays_) {
    if (a.spec.name == name) return a.ring->view();
  }
  throw Error("pipeline has no mapped array named '" + std::string(name) + "'");
}

// --- Construction / configuration ---

std::int64_t Pipeline::ring_len_for(const ArraySpec& a, std::int64_t c, int s) {
  // Enough slots for every in-flight chunk's window: consecutive chunk
  // starts differ by `stride` = scale*c and up to `s` chunks overlap, plus
  // the halo a window extends beyond its chunk's stride. Everything is kept
  // a multiple of the stride so a chunk's window never wraps mid-chunk
  // (mid-chunk wraps would split transfers into slivers far below the
  // bandwidth saturation width).
  const std::int64_t stride = a.split.start.scale * c;
  const std::int64_t halo = std::max<std::int64_t>(0, a.split.window - a.split.start.scale);
  return stride * s + ceil_div(halo, stride) * stride;
}

Pipeline::Pipeline(gpu::Gpu& gpu, PipelineSpec spec) : gpu_(gpu), spec_(std::move(spec)) {
  spec_.validate();
  if (spec_.schedule == ScheduleKind::Adaptive) {
    for (const auto& a : spec_.arrays)
      require(!a.split.window_fn,
              "the adaptive schedule's cost model supports affine splits only");
  }
  mem_limit_ = spec_.mem_limit ? std::min(*spec_.mem_limit, gpu_.device_mem_free())
                               : gpu_.device_mem_free();
  auto [c, s] = solve_memory(mem_limit_);
  chunk_size_ = c;
  for (int i = 0; i < s; ++i)
    streams_.push_back(&gpu_.create_stream("pipe" + std::to_string(i)));
  arrays_.reserve(spec_.arrays.size());
  for (const auto& a : spec_.arrays) {
    ArrayState st;
    st.spec = a;
    arrays_.push_back(std::move(st));
  }
  configure_buffers();
}

Pipeline::~Pipeline() {
  // The region is synchronous at exit of run(), so this is normally a no-op;
  // it guards against destroying buffers under in-flight work.
  gpu_.synchronize();
  arrays_.clear();
  for (auto* s : streams_) gpu_.destroy_stream(*s);
}

std::int64_t Pipeline::ring_len_for_spec(const ArraySpec& a, std::int64_t c, int s) const {
  if (!a.split.window_fn) return ring_len_for(a, c, s);
  // Scan the loop once per configuration: every group of `s` consecutive
  // chunks must fit in the ring simultaneously.
  std::vector<std::pair<std::int64_t, std::int64_t>> wins;
  for (std::int64_t lo = spec_.loop_begin; lo < spec_.loop_end; lo += c) {
    const std::int64_t hi = std::min(lo + c, spec_.loop_end);
    const auto w = window_of(a, lo, hi);
    require(0 <= w.first && w.first < w.second && w.second <= a.dims[a.split.dim],
            "array '" + a.name + "': window_fn returned a range outside the array");
    if (!wins.empty()) {
      require(w.first >= wins.back().first && w.second >= wins.back().second,
              "array '" + a.name + "': window_fn ranges must be non-decreasing");
      if (a.map != MapType::To)
        require(w.first >= wins.back().second,
                "array '" + a.name + "': output windows of different chunks overlap");
    }
    wins.push_back(w);
  }
  std::int64_t need = 1;
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const std::size_t j = std::min(wins.size() - 1, i + static_cast<std::size_t>(s) - 1);
    need = std::max(need, wins[j].second - wins[i].first);
  }
  return need;
}

std::pair<std::int64_t, int> Pipeline::solve_memory(Bytes limit) const {
  auto footprint = [&](std::int64_t c, int s) {
    Bytes total = 0;
    for (const auto& a : spec_.arrays)
      total += RingBuffer::predict_footprint(gpu_, a, ring_len_for_spec(a, c, s));
    return total;
  };
  std::int64_t c = spec_.chunk_size;
  int s = spec_.num_streams;
  while (footprint(c, s) > limit) {
    if (c > 1) {
      log_debug("pipeline: shrinking chunk_size ", c, " -> ", (c + 1) / 2,
                " to meet the memory limit (need ", footprint(c, s), " of ", limit,
                " bytes)");
      c = (c + 1) / 2;
    } else if (s > 1) {
      log_debug("pipeline: dropping to ", s - 1, " stream(s) to meet the memory limit");
      --s;
    } else {
      throw gpu::OomError(
          "pipeline_mem_limit unsatisfiable: even chunk_size=1 with one stream needs " +
          std::to_string(footprint(1, 1)) + " bytes, limit is " + std::to_string(limit));
    }
  }
  return {c, s};
}

void Pipeline::configure_buffers() {
  const int s = effective_streams();
  for (auto& a : arrays_) {
    a.ring =
        std::make_unique<RingBuffer>(gpu_, a.spec, ring_len_for_spec(a.spec, chunk_size_, s));
    a.copied_hi = 0;
    a.copied_any = false;
    a.copy_event.clear();
    a.slot_reader.assign(static_cast<std::size_t>(a.ring->ring_len()), {});
    a.slot_drained.assign(static_cast<std::size_t>(a.ring->ring_len()), {});
  }
}

Bytes Pipeline::buffer_footprint() const {
  Bytes total = 0;
  for (const auto& a : arrays_) total += a.ring->footprint();
  return total;
}

// --- Execution ---

void Pipeline::run(const KernelFactory& make_kernel) {
  std::int64_t chunk_counter = 0;
  if (spec_.schedule == ScheduleKind::Static) {
    run_range(make_kernel, spec_.loop_begin, spec_.loop_end, chunk_counter);
    finish_region();
    return;
  }

  // Adaptive extension: probe the first chunk, model the rest.
  const std::int64_t probe_hi = std::min(spec_.loop_begin + chunk_size_, spec_.loop_end);
  run_range(make_kernel, spec_.loop_begin, probe_hi, chunk_counter);
  finish_region();
  if (probe_hi == spec_.loop_end) return;

  const SimTime probe_kernel = last_kernel_ ? last_kernel_->duration() : 0.0;
  const std::int64_t c_star = adaptive_chunk_size(probe_kernel, probe_hi - spec_.loop_begin);
  if (c_star != chunk_size_) {
    log_debug("pipeline: adaptive schedule re-chunks ", chunk_size_, " -> ", c_star,
              " after a ", probe_kernel, "s probe kernel");
    chunk_size_ = c_star;
    configure_buffers();
  }
  run_range(make_kernel, probe_hi, spec_.loop_end, chunk_counter);
  finish_region();
}

void Pipeline::run_range(const KernelFactory& make_kernel, std::int64_t from, std::int64_t to,
                         std::int64_t& chunk_counter) {
  // Deduplicating event-wait helper: waits on every distinct foreign-stream
  // event in the table rows covering split indices [a, b).
  std::vector<const gpu::GpuEvent*> seen;
  auto wait_distinct = [&](gpu::Stream& s, const std::pair<gpu::EventPtr, gpu::Stream*>& e) {
    if (!e.first || e.second == &s) return;  // same stream: already ordered
    if (std::find(seen.begin(), seen.end(), e.first.get()) != seen.end()) return;
    seen.push_back(e.first.get());
    gpu_.wait_event(s, e.first);
    ++stats_.stream_waits;
  };

  struct NewRange {
    ArrayState* array;
    std::int64_t lo, hi;
  };
  std::vector<NewRange> fresh;

  for (std::int64_t lo = from; lo < to; lo += chunk_size_, ++chunk_counter) {
    const std::int64_t hi = std::min(lo + chunk_size_, to);
    gpu::Stream& s = *streams_[static_cast<std::size_t>(chunk_counter) % streams_.size()];

    // ---- copy-in: schedule newly required input slices ----
    fresh.clear();
    for (auto& a : arrays_) {
      if (!is_input(a)) continue;
      const auto [w_lo, w_hi] = window_of(a.spec, lo, hi);
      const std::int64_t n_lo = a.copied_any ? std::max(a.copied_hi, w_lo) : w_lo;
      if (n_lo < w_hi) {
        // Slot-reuse guard: the incoming data overwrites ring slots whose
        // previous occupants may still be read by in-flight kernels.
        seen.clear();
        for (std::int64_t idx = n_lo; idx < w_hi; ++idx)
          wait_distinct(s, a.slot_reader[static_cast<std::size_t>(idx % a.ring->ring_len())]);
        stats_.h2d_copies += a.ring->copy_in(s, n_lo, w_hi);
        stats_.h2d_bytes += static_cast<Bytes>(w_hi - n_lo) * unit_bytes(a.spec);
        fresh.push_back({&a, n_lo, w_hi});
      }
      a.copied_hi = std::max(a.copied_hi, w_hi);
      a.copied_any = true;
    }
    if (!fresh.empty()) {
      gpu::EventPtr ev = gpu_.record_event(s);
      ++stats_.events;
      for (const auto& r : fresh)
        for (std::int64_t idx = r.lo; idx < r.hi; ++idx)
          r.array->copy_event[idx] = {ev, &s};
    }

    // ---- kernel dependencies ----
    seen.clear();
    for (auto& a : arrays_) {
      if (is_input(a)) {
        // Wait for every copy that brought this chunk's input window
        // (copies issued by earlier chunks may live on other streams).
        const auto [w_lo, w_hi] = window_of(a.spec, lo, hi);
        for (std::int64_t idx = w_lo; idx < w_hi; ++idx) {
          auto it = a.copy_event.find(idx);
          ensure(it != a.copy_event.end(), "input slice was never scheduled for copy");
          wait_distinct(s, it->second);
        }
      }
      if (is_output(a)) {
        // Output-slot rewrite guard: the slots this kernel writes must have
        // been drained to the host by the previous occupant's copy-out.
        const auto [o_lo, o_hi] = window_of(a.spec, lo, hi);
        for (std::int64_t idx = o_lo; idx < o_hi; ++idx)
          wait_distinct(s, a.slot_drained[static_cast<std::size_t>(idx % a.ring->ring_len())]);
      }
    }

    // ---- kernel ----
    const ChunkContext ctx(*this, chunk_counter, lo, hi);
    gpu::KernelDesc desc = make_kernel(ctx);
    for (auto& a : arrays_) {
      const auto [w_lo, w_hi] = window_of(a.spec, lo, hi);
      if (is_input(a)) a.ring->append_ranges(desc.effects.reads, w_lo, w_hi);
      if (is_output(a)) a.ring->append_ranges(desc.effects.writes, w_lo, w_hi);
    }
    if (desc.name == "kernel") desc.name = "chunk" + std::to_string(chunk_counter);
    last_kernel_ = gpu_.launch(s, std::move(desc));
    ++stats_.kernels;

    gpu::EventPtr k_ev = gpu_.record_event(s);
    ++stats_.events;
    for (auto& a : arrays_) {
      if (!is_input(a)) continue;
      const auto [w_lo, w_hi] = window_of(a.spec, lo, hi);
      for (std::int64_t idx = w_lo; idx < w_hi; ++idx)
        a.slot_reader[static_cast<std::size_t>(idx % a.ring->ring_len())] = {k_ev, &s};
    }

    // ---- copy-out: drain produced output slices ----
    bool drained = false;
    for (auto& a : arrays_) {
      if (!is_output(a)) continue;
      const auto [o_lo, o_hi] = window_of(a.spec, lo, hi);
      stats_.d2h_copies += a.ring->copy_out(s, o_lo, o_hi);
      stats_.d2h_bytes += static_cast<Bytes>(o_hi - o_lo) * unit_bytes(a.spec);
      drained = true;
    }
    if (drained) {
      gpu::EventPtr d_ev = gpu_.record_event(s);
      ++stats_.events;
      for (auto& a : arrays_) {
        if (!is_output(a)) continue;
        const auto [o_lo, o_hi] = window_of(a.spec, lo, hi);
        for (std::int64_t idx = o_lo; idx < o_hi; ++idx)
          a.slot_drained[static_cast<std::size_t>(idx % a.ring->ring_len())] = {d_ev, &s};
      }
    }
    ++stats_.chunks;
  }
}

void Pipeline::enqueue(const KernelFactory& make_kernel) {
  require(spec_.schedule == ScheduleKind::Static,
          "split-phase execution requires the static schedule");
  std::int64_t chunk_counter = 0;
  run_range(make_kernel, spec_.loop_begin, spec_.loop_end, chunk_counter);
}

void Pipeline::wait() { finish_region(); }

std::vector<ChunkPlan> Pipeline::plan() const {
  std::vector<ChunkPlan> out;
  std::vector<std::int64_t> copied_hi(arrays_.size(), 0);
  std::vector<bool> copied_any(arrays_.size(), false);
  std::int64_t counter = 0;
  for (std::int64_t lo = spec_.loop_begin; lo < spec_.loop_end;
       lo += chunk_size_, ++counter) {
    const std::int64_t hi = std::min(lo + chunk_size_, spec_.loop_end);
    ChunkPlan cp;
    cp.index = counter;
    cp.stream = static_cast<int>(counter % static_cast<std::int64_t>(streams_.size()));
    cp.begin = lo;
    cp.end = hi;
    for (std::size_t ai = 0; ai < arrays_.size(); ++ai) {
      const auto& a = arrays_[ai];
      const auto [w_lo, w_hi] = window_of(a.spec, lo, hi);
      if (is_input(a)) {
        const std::int64_t n_lo = copied_any[ai] ? std::max(copied_hi[ai], w_lo) : w_lo;
        if (n_lo < w_hi) cp.copies_in.push_back({a.spec.name, n_lo, w_hi});
        copied_hi[ai] = std::max(copied_hi[ai], w_hi);
        copied_any[ai] = true;
      }
      if (is_output(a)) cp.copies_out.push_back({a.spec.name, w_lo, w_hi});
    }
    out.push_back(std::move(cp));
  }
  return out;
}

void Pipeline::print_plan(std::ostream& os) const {
  os << "pipeline plan: " << spec_.iterations() << " iterations, chunk " << chunk_size_
     << ", " << streams_.size() << " streams\n";
  for (const auto& cp : plan()) {
    os << "  chunk " << cp.index << " [" << cp.begin << "," << cp.end << ") on stream "
       << cp.stream << ":";
    for (const auto& m : cp.copies_in)
      os << " in " << m.array << "[" << m.lo << "," << m.hi << ")";
    os << " kernel";
    for (const auto& m : cp.copies_out)
      os << " out " << m.array << "[" << m.lo << "," << m.hi << ")";
    os << "\n";
  }
}

void Pipeline::finish_region() {
  for (auto* s : streams_) gpu_.synchronize(*s);
  for (auto& a : arrays_) {
    a.copied_hi = 0;
    a.copied_any = false;
    a.copy_event.clear();
    std::fill(a.slot_reader.begin(), a.slot_reader.end(),
              std::pair<gpu::EventPtr, gpu::Stream*>{});
    std::fill(a.slot_drained.begin(), a.slot_drained.end(),
              std::pair<gpu::EventPtr, gpu::Stream*>{});
  }
}

// --- Adaptive schedule (extension) ---

std::int64_t Pipeline::adaptive_chunk_size(SimTime probe_kernel_time,
                                           std::int64_t probe_chunk) const {
  const auto& p = gpu_.profile();
  const double per_iter_kernel =
      std::max(0.0, probe_kernel_time - p.kernel_launch_latency) /
      static_cast<double>(std::max<std::int64_t>(probe_chunk, 1));
  const CostModel model(p, spec_, per_iter_kernel);
  return model.best_chunk(gpu_, mem_limit_, effective_streams());
}

}  // namespace gpupipe::core
