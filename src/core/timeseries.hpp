// Fixed-capacity time series for the periodic serve sampler.
//
// The metrics registry is end-state only: after a run you know the final
// queue depth, not that it spiked to 60 at t=12ms. The scheduler samples a
// handful of live signals (queue depth, committed footprint, utilization,
// plan-cache hit rate) on a *sim-time* cadence into these series, so the
// shape over time is reproducible byte for byte — no wall clock anywhere.
//
// Each series is a bounded ring like the flight recorder: at capacity it
// keeps the newest points and counts evictions, so an unbounded-duration
// serve run samples forever in constant memory. Sample points carry the
// nominal tick time (k * sample_every), not the loop's arrival time at the
// tick, which keeps two runs' exports byte-identical even if one run's
// event set reaches the tick through a different advance() split.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gpupipe::telemetry {

/// One (sim-time, value) sample stream with ring-buffer retention.
class TimeSeries {
 public:
  struct Point {
    SimTime t = 0.0;
    double v = 0.0;
  };

  explicit TimeSeries(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void add(SimTime t, double v) {
    if (points_.size() < capacity_) {
      points_.push_back(Point{t, v});
      return;
    }
    points_[oldest_] = Point{t, v};
    oldest_ = (oldest_ + 1) % capacity_;
    ++dropped_;
  }

  /// Retained points, oldest first.
  std::vector<Point> points() const {
    std::vector<Point> out;
    out.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i)
      out.push_back(points_[(oldest_ + i) % points_.size()]);
    return out;
  }

  std::size_t size() const { return points_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Points evicted by the ring since construction.
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::size_t oldest_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Point> points_;
};

/// Named series, created on first touch. Iteration is name-sorted (std::map)
/// so exports are deterministic.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity_per_series = 1024)
      : capacity_(capacity_per_series) {}

  TimeSeries& series(const std::string& name) {
    auto it = store_.find(name);
    if (it == store_.end()) it = store_.emplace(name, TimeSeries(capacity_)).first;
    return it->second;
  }

  void add(const std::string& name, SimTime t, double v) { series(name).add(t, v); }

  const std::map<std::string, TimeSeries>& all() const { return store_; }
  bool empty() const { return store_.empty(); }
  std::size_t capacity_per_series() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::map<std::string, TimeSeries> store_;
};

}  // namespace gpupipe::telemetry
