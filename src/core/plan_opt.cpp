#include "core/plan_opt.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace gpupipe::core {

namespace {

void push_dep(std::vector<int>& deps, int id) {
  if (id >= 0 && std::find(deps.begin(), deps.end(), id) == deps.end()) deps.push_back(id);
}

std::string range_str(std::int64_t lo, std::int64_t hi) {
  std::string s = "[";
  s += std::to_string(lo);
  s += ",";
  s += std::to_string(hi);
  s += ")";
  return s;
}

bool is_transfer(PlanOp op) { return op == PlanOp::H2D || op == PlanOp::D2H; }

Bytes transfer_bytes(const ExecutionPlan& plan, PlanOp op) {
  Bytes total = 0;
  for (const auto& n : plan.nodes)
    if (n.op == op) total += n.bytes;
  return total;
}

/// The host row range a node's block covers (1-D plan nodes carry no row
/// extent and mean "row 0").
std::pair<std::int64_t, std::int64_t> row_range(std::int64_t lo, std::int64_t hi) {
  return hi > lo ? std::pair{lo, hi} : std::pair{std::int64_t{0}, std::int64_t{1}};
}

// --- Pass 1: halo-reuse H2D elimination ---
//
// Replays the node list in order, mirroring the ring state the executor
// would produce: which host split index (and host row range) each ring
// column holds, which new-plan transfer produced it, which kernels
// currently read it, and which drain groups emptied it. An H2D node only
// keeps the columns whose occupant differs from what it would upload;
// kernels re-derive their copy dependencies from the per-column producer,
// which is exactly the "depend on the transfer of the resident slice"
// rewiring.
//
// State is per ring *column*, not per (row, column) cell: every transfer
// of a band covers one uniform host row range (tile builders upload whole
// row windows; 1-D plans have a single row), so a column plus its resident
// row range captures the full cell grid at a fraction of the bookkeeping —
// large tile plans would otherwise pay ring_rows x more per node. Row
// mismatches fall back conservatively: the column counts as non-resident.

struct CellState {
  std::vector<std::int64_t> res_col;       // resident host split index, -1 = empty
  std::vector<std::int64_t> res_rlo;       // resident host row range [rlo, rhi)
  std::vector<std::int64_t> res_rhi;
  std::vector<int> producer;               // new id of the producing H2D
  std::vector<std::vector<int>> readers;   // new kernel ids using the occupant
  std::vector<std::vector<int>> drained;   // new ids of drain-group recorders

  void reset(std::size_t cols) {
    res_col.assign(cols, -1);
    res_rlo.assign(cols, 0);
    res_rhi.assign(cols, 0);
    producer.assign(cols, -1);
    readers.assign(cols, {});
    drained.assign(cols, {});
  }
};

PassStats halo_reuse_pass(ExecutionPlan& plan) {
  PassStats stats;
  stats.pass = "halo-reuse";
  for (const auto& a : plan.arrays) stats.bytes_saved_by_array.emplace_back(a.name, 0);

  std::vector<CellState> st(plan.arrays.size());
  auto reset_all = [&] {
    for (std::size_t ai = 0; ai < plan.arrays.size(); ++ai)
      st[ai].reset(static_cast<std::size_t>(plan.arrays[ai].ring_len));
  };
  reset_all();

  std::vector<PlanNode> out;
  out.reserve(plan.nodes.size());
  std::vector<int> old2new(plan.nodes.size(), -1);
  auto emit = [&out, &old2new](PlanNode n, int old_id) {
    n.id = static_cast<int>(out.size());
    if (old_id >= 0) old2new[static_cast<std::size_t>(old_id)] = n.id;
    out.push_back(std::move(n));
    return out.back().id;
  };
  auto remap_deps = [&old2new](std::vector<int>& deps) {
    std::vector<int> mapped;
    for (int d : deps) {
      const int nd = old2new[static_cast<std::size_t>(d)];
      ensure(nd >= 0, "plan_opt: dependency on an eliminated node");
      push_dep(mapped, nd);
    }
    deps = std::move(mapped);
  };

  // Survivors of each original H2D event group (keyed by the old recorder
  // id), for re-electing the group's recorded event afterwards.
  std::unordered_map<int, std::vector<int>> h2d_groups;
  std::vector<int> h2d_group_order;
  // D2H nodes keep their groups; their event_node old ids are remapped in
  // the post-pass. Cells drained by a group become visible (drained[cell] =
  // recorder's new id) when the recorder itself is replayed.
  std::vector<std::pair<int, int>> d2h_event_fixups;  // (new id, old recorder id)
  std::unordered_map<int, std::vector<std::pair<int, std::int64_t>>> pending_drains;

  std::int64_t last_reset_band = -1;

  for (const PlanNode& n : plan.nodes) {
    const std::size_t ai = n.array >= 0 ? static_cast<std::size_t>(n.array) : 0;
    const std::int64_t ring = n.array >= 0 ? plan.arrays[ai].ring_len : 1;
    const std::int64_t ring_rows = n.array >= 0 ? plan.arrays[ai].ring_rows : 1;
    auto cell_of = [&](std::int64_t c) { return static_cast<std::size_t>(c % ring); };

    // A DeviceHandoff is an H2D whose bytes come from staging (consume
    // side) or a D2H whose bytes go to staging (produce side); residency
    // and event-group mechanics follow the effective direction.
    PlanOp eff = n.op;
    if (n.op == PlanOp::DeviceHandoff)
      eff = plan.arrays[ai].handoff_out ? PlanOp::D2H : PlanOp::H2D;

    switch (eff) {
      case PlanOp::SlotReuse:
        // Dropped and regenerated in front of each surviving H2D, scoped to
        // the cells its overwrite actually touches.
        break;

      case PlanOp::Barrier: {
        // A band transition: the new band overwrites the buffer rows, so
        // nothing stays resident across it. One barrier is emitted per
        // stream — reset only on the first of a band.
        if (n.tile_i != last_reset_band) {
          reset_all();
          last_reset_band = n.tile_i;
        }
        PlanNode b = n;
        remap_deps(b.deps);
        emit(std::move(b), n.id);
        break;
      }

      case PlanOp::H2D:
      case PlanOp::P2pRecv: {
        // A P2pRecv is an upload whose bytes come from a peer device instead
        // of the host; residency, slot-reuse, and event-group mechanics are
        // identical, so repeated foreign windows elide to the first landing.
        CellState& cs = st[ai];
        const auto [r_lo, r_hi] = row_range(n.row_begin, n.row_end);
        // A column is needed unless it already holds the same host data
        // over at least the uploaded row range.
        std::vector<std::int64_t> needed;
        for (std::int64_t c = n.begin; c < n.end; ++c) {
          const std::size_t cell = cell_of(c);
          const bool resident = cs.res_col[cell] == c && cs.res_rlo[cell] <= r_lo &&
                                r_hi <= cs.res_rhi[cell];
          if (!resident) needed.push_back(c);
        }
        if (needed.empty()) {
          stats.bytes_saved += n.bytes;
          stats.bytes_saved_by_array[ai].second += n.bytes;
          break;
        }

        // Regenerate the slot-reuse guard for the columns being overwritten.
        std::vector<int> reuse;
        for (std::int64_t c : needed) {
          const std::size_t cell = cell_of(c);
          for (int rd : cs.readers[cell]) push_dep(reuse, rd);
          for (int dr : cs.drained[cell]) push_dep(reuse, dr);
        }
        const std::int64_t n_lo = needed.front();
        const std::int64_t n_hi = needed.back() + 1;
        int reuse_id = -1;
        if (!reuse.empty()) {
          PlanNode sr;
          sr.op = PlanOp::SlotReuse;
          sr.stream = n.stream;
          sr.array = n.array;
          sr.chunk = n.chunk;
          sr.begin = n_lo;
          sr.end = n_hi;
          sr.row_begin = n.row_begin;
          sr.row_end = n.row_end;
          sr.deps = std::move(reuse);
          sr.label = "reuse " + plan.arrays[ai].name + range_str(n_lo, n_hi);
          reuse_id = emit(std::move(sr), -1);
        }

        PlanNode h = n;
        h.begin = n_lo;
        h.end = n_hi;
        h.deps.clear();
        if (reuse_id >= 0) h.deps.push_back(reuse_id);
        ensure(!n.segments.empty(), "plan_opt: H2D node without segments");
        const Bytes col_width = n.segments.front().width / n.segments.front().count;
        const Bytes flat_height = n.segments.front().height;
        const bool tiled = n.row_end > n.row_begin;
        h.segments.clear();
        h.bytes = 0;
        // Maximal needed-column runs, broken at ring wraps — per buffer row
        // run for tile blocks, once (with the original copy height) for 1-D.
        for (std::int64_t r = r_lo; r < r_hi;) {
          const std::int64_t slot_r = r % ring_rows;
          const std::int64_t nr = std::min(r_hi - r, ring_rows - slot_r);
          for (std::size_t k = 0; k < needed.size();) {
            std::size_t e = k + 1;
            while (e < needed.size() && needed[e] == needed[e - 1] + 1 &&
                   needed[e] % ring != 0)
              ++e;
            PlanSegment seg;
            seg.slot = needed[k] % ring;
            seg.index = needed[k];
            seg.count = static_cast<std::int64_t>(e - k);
            seg.row_slot = tiled ? slot_r : 0;
            seg.row = tiled ? r : 0;
            seg.rows = tiled ? nr : 1;
            seg.width = static_cast<Bytes>(seg.count) * col_width;
            seg.height = tiled ? static_cast<Bytes>(nr) : flat_height;
            h.bytes += seg.bytes();
            h.segments.push_back(seg);
            k = e;
          }
          r += nr;
        }
        const bool shrunk = h.bytes < n.bytes;
        if (shrunk) {
          ++stats.nodes_changed;
          stats.bytes_saved += n.bytes - h.bytes;
          stats.bytes_saved_by_array[ai].second += n.bytes - h.bytes;
          const char* what = n.op == PlanOp::H2D        ? "h2d "
                             : n.op == PlanOp::P2pRecv ? "p2p-recv "
                                                        : "handoff-in ";
          h.label = what + plan.arrays[ai].name + range_str(n_lo, n_hi);
        }
        h.records_event = false;  // groups re-elect their recorder below
        h.event_node = -1;
        const int hid = emit(std::move(h), n.id);
        auto [it, fresh] = h2d_groups.try_emplace(n.event_node);
        if (fresh) h2d_group_order.push_back(n.event_node);
        it->second.push_back(hid);
        for (std::int64_t c : needed) {
          const std::size_t cell = cell_of(c);
          cs.res_col[cell] = c;
          cs.res_rlo[cell] = r_lo;
          cs.res_rhi[cell] = r_hi;
          cs.producer[cell] = hid;
          cs.readers[cell].clear();
          cs.drained[cell].clear();
        }
        break;
      }

      case PlanOp::Kernel: {
        PlanNode k = n;
        k.deps.clear();
        for (const PlanAccess& acc : n.accesses) {
          CellState& acs = st[static_cast<std::size_t>(acc.array)];
          const PlanArrayInfo& info = plan.arrays[static_cast<std::size_t>(acc.array)];
          const auto [a_rlo, a_rhi] = row_range(acc.row_lo, acc.row_hi);
          for (std::int64_t c = acc.lo; c < acc.hi; ++c) {
            const std::size_t cell = static_cast<std::size_t>(c % info.ring_len);
            if (!acc.write) {
              ensure(acs.res_col[cell] == c && acs.res_rlo[cell] <= a_rlo &&
                         a_rhi <= acs.res_rhi[cell] && acs.producer[cell] >= 0,
                     "plan_opt: kernel input slice is not resident");
              push_dep(k.deps, acs.producer[cell]);
            } else {
              for (int dr : acs.drained[cell]) push_dep(k.deps, dr);
            }
          }
        }
        const int kid = emit(std::move(k), n.id);
        out[static_cast<std::size_t>(kid)].records_event = true;
        out[static_cast<std::size_t>(kid)].event_node = kid;
        for (const PlanAccess& acc : n.accesses) {
          CellState& acs = st[static_cast<std::size_t>(acc.array)];
          const PlanArrayInfo& info = plan.arrays[static_cast<std::size_t>(acc.array)];
          for (std::int64_t c = acc.lo; c < acc.hi; ++c) {
            const std::size_t cell = static_cast<std::size_t>(c % info.ring_len);
            // Every use — read or write — is an occupant the next
            // overwrite must wait for; writes additionally invalidate the
            // residency (device data no longer mirrors the host).
            auto& rd = acs.readers[cell];
            if (rd.empty() || rd.back() != kid) rd.push_back(kid);
            if (acc.write) acs.res_col[cell] = -1;
          }
        }
        break;
      }

      case PlanOp::P2pSend: {
        // Re-derive the send's copy dependencies from the per-cell producer
        // (halo reuse may have merged the upload it originally depended on)
        // and re-register it as a reader so later overwrites wait for it.
        CellState& cs = st[ai];
        PlanNode p = n;
        p.deps.clear();
        for (std::int64_t c = n.begin; c < n.end; ++c) {
          const std::size_t cell = cell_of(c);
          ensure(cs.res_col[cell] == c && cs.producer[cell] >= 0,
                 "plan_opt: halo send slice is not resident");
          push_dep(p.deps, cs.producer[cell]);
        }
        const int pid = emit(std::move(p), n.id);
        out[static_cast<std::size_t>(pid)].records_event = true;
        out[static_cast<std::size_t>(pid)].event_node = pid;
        for (std::int64_t c = n.begin; c < n.end; ++c) {
          auto& rd = cs.readers[cell_of(c)];
          if (rd.empty() || rd.back() != pid) rd.push_back(pid);
        }
        break;
      }

      case PlanOp::D2H: {
        PlanNode d = n;
        remap_deps(d.deps);
        const int did = emit(std::move(d), n.id);
        d2h_event_fixups.emplace_back(did, n.event_node);
        auto& pend = pending_drains[n.event_node];
        for (std::int64_t c = n.begin; c < n.end; ++c)
          pend.emplace_back(n.array, static_cast<std::int64_t>(cell_of(c)));
        if (n.id == n.event_node) {
          // This member is the group's recorder: its completion makes the
          // whole group's columns reusable.
          for (const auto& [arr, cell] : pend) {
            auto& dr = st[static_cast<std::size_t>(arr)].drained[static_cast<std::size_t>(cell)];
            if (dr.empty() || dr.back() != did) dr.push_back(did);
          }
          pending_drains.erase(n.event_node);
        }
        break;
      }

      case PlanOp::DeviceHandoff:
        break;  // unreachable: mapped to the effective H2D/D2H above
    }
  }

  // Re-elect each H2D group's recorded event: the last survivor records,
  // every survivor points at it.
  for (int old_rec : h2d_group_order) {
    const auto& members = h2d_groups[old_rec];
    if (members.empty()) continue;
    const int last = members.back();
    out[static_cast<std::size_t>(last)].records_event = true;
    for (int m : members) out[static_cast<std::size_t>(m)].event_node = last;
  }
  for (const auto& [nid, old_rec] : d2h_event_fixups) {
    const int rec = old2new[static_cast<std::size_t>(old_rec)];
    ensure(rec >= 0, "plan_opt: D2H event recorder was eliminated");
    out[static_cast<std::size_t>(nid)].event_node = rec;
  }

  stats.nodes_removed =
      static_cast<std::int64_t>(plan.nodes.size()) - static_cast<std::int64_t>(out.size());
  plan.nodes = std::move(out);
  return stats;
}

// --- Pass 2: segment coalescing ---
//
// Adjacent segments of one transfer node that are contiguous on both the
// host and the ring become one copy: horizontally (consecutive split
// indices in consecutive slots, same rows) and vertically (same columns,
// consecutive host rows in consecutive buffer rows). Same stream and array
// by construction — segments never leave their node.

PassStats coalesce_pass(ExecutionPlan& plan) {
  PassStats stats;
  stats.pass = "coalesce";
  for (const auto& a : plan.arrays) stats.bytes_saved_by_array.emplace_back(a.name, 0);
  for (PlanNode& n : plan.nodes) {
    // P2P halo and handoff nodes carry ring segments like any transfer;
    // merging their wrap pieces merges the exchange's copies the same way.
    const bool coalescable = is_transfer(n.op) || n.op == PlanOp::P2pSend ||
                             n.op == PlanOp::P2pRecv || n.op == PlanOp::DeviceHandoff;
    if (!coalescable || n.segments.size() < 2) continue;
    std::vector<PlanSegment> merged;
    merged.reserve(n.segments.size());
    for (const PlanSegment& seg : n.segments) {
      if (!merged.empty()) {
        PlanSegment& a = merged.back();
        const bool horizontal = a.rows == seg.rows && a.row_slot == seg.row_slot &&
                                a.row == seg.row && a.height == seg.height &&
                                a.slot + a.count == seg.slot && a.index + a.count == seg.index;
        const bool vertical = a.slot == seg.slot && a.index == seg.index &&
                              a.count == seg.count && a.width == seg.width &&
                              a.rows == static_cast<std::int64_t>(a.height) &&
                              seg.rows == static_cast<std::int64_t>(seg.height) &&
                              a.row_slot + a.rows == seg.row_slot && a.row + a.rows == seg.row;
        if (horizontal) {
          a.count += seg.count;
          a.width += seg.width;
          continue;
        }
        if (vertical) {
          a.rows += seg.rows;
          a.height += seg.height;
          continue;
        }
      }
      merged.push_back(seg);
    }
    if (merged.size() < n.segments.size()) {
      ++stats.nodes_changed;
      n.segments = std::move(merged);
    }
  }
  return stats;
}

// --- Pass 3: stream rebalance ---
//
// Greedy: walk the transfer nodes in plan order and hand a node (plus its
// guarding SlotReuse) to the least-loaded stream when that stream trails by
// more than the node's own bytes. Node order — and with it every
// same-stream FIFO guarantee the dependency edges rely on — is unchanged;
// moved nodes record their own completion event so cross-stream consumers
// still find one that is ordered after them.

PassStats rebalance_pass(ExecutionPlan& plan) {
  PassStats stats;
  stats.pass = "rebalance";
  for (const auto& a : plan.arrays) stats.bytes_saved_by_array.emplace_back(a.name, 0);
  if (plan.num_streams <= 1) return stats;
  for (const PlanNode& n : plan.nodes)
    if (n.op == PlanOp::Barrier) return stats;  // band structure is stream-shaped

  // Event-group membership (nodes sharing a recorder).
  std::unordered_map<int, std::vector<int>> groups;
  for (const PlanNode& n : plan.nodes)
    if (is_transfer(n.op) && n.event_node >= 0) groups[n.event_node].push_back(n.id);

  std::vector<Bytes> load(static_cast<std::size_t>(plan.num_streams), 0);
  for (const PlanNode& n : plan.nodes)
    if (is_transfer(n.op)) load[static_cast<std::size_t>(n.stream)] += n.bytes;

  for (PlanNode& n : plan.nodes) {
    if (!is_transfer(n.op)) continue;
    // A D2H group's recorder stands in for every member in downstream
    // drain dependencies; only a singleton group moves safely.
    if (n.op == PlanOp::D2H &&
        (n.event_node != n.id || groups[n.event_node].size() != 1))
      continue;
    int best = 0;
    for (int s = 1; s < plan.num_streams; ++s)
      if (load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(best)]) best = s;
    if (best == n.stream ||
        load[static_cast<std::size_t>(n.stream)] - load[static_cast<std::size_t>(best)] <=
            n.bytes)
      continue;

    load[static_cast<std::size_t>(n.stream)] -= n.bytes;
    load[static_cast<std::size_t>(best)] += n.bytes;
    // The guard travels along: its ordering edge into the H2D is implicit
    // same-stream FIFO.
    for (int d : n.deps)
      if (plan.nodes[static_cast<std::size_t>(d)].op == PlanOp::SlotReuse)
        plan.nodes[static_cast<std::size_t>(d)].stream = best;
    const int old_group = n.event_node;
    n.stream = best;
    n.records_event = true;
    n.event_node = n.id;
    ++stats.nodes_changed;
    if (old_group < 0) continue;
    auto& members = groups[old_group];
    members.erase(std::remove(members.begin(), members.end(), n.id), members.end());
    if (old_group == n.id && !members.empty()) {
      // The recorder left; the last remaining member takes over.
      const int rec = members.back();
      plan.nodes[static_cast<std::size_t>(rec)].records_event = true;
      for (int m : members) plan.nodes[static_cast<std::size_t>(m)].event_node = rec;
      groups[rec] = members;
    }
  }
  return stats;
}

// --- Pass 0: inter-job stitching ---
//
// A lowering, not an optimization: when the scheduler wired an array to a
// handoff link (PlanArrayInfo::handoff_link), its host transfers must move
// through the link's device-resident staging instead. Produce side: every
// D2H of the array becomes a DeviceHandoff stash (ring -> staging); consume
// side: every H2D becomes a DeviceHandoff landing (staging -> ring). Node
// ids, deps, segments, and event groups are untouched — only the op, peer,
// and label change — so the rewrite composes with every later pass.

PassStats stitch_pass(ExecutionPlan& plan) {
  PassStats stats;
  stats.pass = "stitch";
  for (const auto& a : plan.arrays) stats.bytes_saved_by_array.emplace_back(a.name, 0);
  for (PlanNode& n : plan.nodes) {
    if (n.array < 0) continue;
    const std::size_t ai = static_cast<std::size_t>(n.array);
    const PlanArrayInfo& info = plan.arrays[ai];
    if (info.handoff_link < 0) continue;
    if (n.op != (info.handoff_out ? PlanOp::D2H : PlanOp::H2D)) continue;
    n.op = PlanOp::DeviceHandoff;
    n.peer = info.handoff_link;
    n.label = (info.handoff_out ? "handoff-out " : "handoff-in ") + info.name +
              range_str(n.begin, n.end);
    ++stats.nodes_changed;
    stats.bytes_saved += n.bytes;
    stats.bytes_saved_by_array[ai].second += n.bytes;
  }
  return stats;
}

// --- Pass 4: kernel fusion ---
//
// Two kernels A then B on the same stream merge into one launch when B's
// iteration range continues A's, their declared accesses have the same
// shape (same arrays, same write flags, same rows, contiguous or sliding
// columns), and nothing that executes between them orders before B — i.e.
// every dependency of B resolves to A or an earlier node. That last test is
// the hazard guard: an intervening upload into B's input, or a drain B's
// output slots wait on, shows up as a dependency with a later id and blocks
// the merge (hand-merging anyway fails ExecutionPlan::validate()).

PassStats fusion_pass(ExecutionPlan& plan) {
  PassStats stats;
  stats.pass = "fusion";
  for (const auto& a : plan.arrays) stats.bytes_saved_by_array.emplace_back(a.name, 0);
  for (const PlanNode& n : plan.nodes)
    if (n.op == PlanOp::Barrier) return stats;  // band structure: keep

  // Erased kernels redirect to their surviving absorber.
  std::vector<int> merged_into(plan.nodes.size(), -1);
  auto resolve = [&merged_into](int id) {
    while (merged_into[static_cast<std::size_t>(id)] >= 0)
      id = merged_into[static_cast<std::size_t>(id)];
    return id;
  };

  std::vector<int> last_kernel(static_cast<std::size_t>(plan.num_streams), -1);
  for (PlanNode& b : plan.nodes) {
    if (b.op != PlanOp::Kernel) continue;
    const std::size_t si = static_cast<std::size_t>(b.stream);
    const int prev = last_kernel[si];
    last_kernel[si] = b.id;
    if (prev < 0 || b.tile_i >= 0) continue;  // tile kernels keep band shape
    PlanNode& a = plan.nodes[static_cast<std::size_t>(prev)];
    if (b.begin != a.end) continue;
    if (b.accesses.size() != a.accesses.size()) continue;
    bool ok = true;
    for (std::size_t i = 0; ok && i < b.accesses.size(); ++i) {
      const PlanAccess& pa = a.accesses[i];
      const PlanAccess& pb = b.accesses[i];
      // Same geometry: same array and direction, same rows, columns sliding
      // forward without a gap (writes must not overlap), and the merged span
      // staying inside the ring so no slot aliases two host indices.
      ok = pb.array == pa.array && pb.write == pa.write && pb.row_lo == pa.row_lo &&
           pb.row_hi == pa.row_hi && pb.lo >= pa.lo && pb.hi >= pa.hi && pb.lo <= pa.hi &&
           (!pb.write || pb.lo == pa.hi) &&
           pb.hi - pa.lo <= plan.arrays[static_cast<std::size_t>(pa.array)].ring_len;
    }
    if (!ok) continue;
    for (int d : b.deps)
      if (resolve(d) > a.id) {
        ok = false;
        break;
      }
    if (!ok) continue;

    if (merged_into[static_cast<std::size_t>(a.id)] < 0 &&
        a.label.find('+') == std::string::npos)
      ++stats.nodes_changed;
    a.end = b.end;
    for (std::size_t i = 0; i < b.accesses.size(); ++i) a.accesses[i].hi = b.accesses[i].hi;
    for (int d : b.deps) {
      const int rd = resolve(d);
      if (rd != a.id) push_dep(a.deps, rd);
    }
    a.flops += b.flops;
    a.bytes += b.bytes;
    a.label += "+" + b.label;
    merged_into[static_cast<std::size_t>(b.id)] = a.id;
    ++stats.nodes_removed;
    last_kernel[si] = a.id;
  }
  if (stats.nodes_removed == 0) return stats;

  // Compact: drop absorbed kernels, renumber, and remap every reference
  // through the redirect chain.
  std::vector<int> old2new(plan.nodes.size(), -1);
  std::vector<PlanNode> out;
  out.reserve(plan.nodes.size());
  for (PlanNode& n : plan.nodes) {
    if (merged_into[static_cast<std::size_t>(n.id)] >= 0) continue;
    old2new[static_cast<std::size_t>(n.id)] = static_cast<int>(out.size());
    out.push_back(std::move(n));
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    PlanNode& n = out[i];
    n.id = static_cast<int>(i);
    std::vector<int> deps;
    for (int d : n.deps) push_dep(deps, old2new[static_cast<std::size_t>(resolve(d))]);
    n.deps = std::move(deps);
    if (n.event_node >= 0)
      n.event_node = old2new[static_cast<std::size_t>(resolve(n.event_node))];
  }
  plan.nodes = std::move(out);
  return stats;
}

}  // namespace

OptReport optimize_plan(ExecutionPlan& plan, int opt_level,
                        const gpu::DeviceProfile* profile, const DryRunCost& cost) {
  require(opt_level >= 0 && opt_level <= 2, "opt_level must be 0, 1, or 2");
  OptReport report;
  report.h2d_bytes_before = transfer_bytes(plan, PlanOp::H2D);
  report.d2h_bytes_before = transfer_bytes(plan, PlanOp::D2H);
  report.nodes_before = static_cast<std::int64_t>(plan.nodes.size());

  using Clock = std::chrono::steady_clock;
  auto timed = [&report](PassStats s, Clock::time_point t0) {
    s.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
    report.passes.push_back(std::move(s));
  };

  bool wired = false;
  for (const auto& a : plan.arrays) wired = wired || a.handoff_link >= 0;
  if (wired) {
    const auto t0 = Clock::now();
    PassStats s = stitch_pass(plan);
    report.stitched_bytes = s.bytes_saved;
    timed(std::move(s), t0);
  }
  if (opt_level >= 1) {
    auto t0 = Clock::now();
    timed(halo_reuse_pass(plan), t0);
    t0 = Clock::now();
    timed(coalesce_pass(plan), t0);
  }
  if (opt_level >= 2) {
    auto t0 = Clock::now();
    timed(rebalance_pass(plan), t0);
    // Fusion is cost-gated: erasing launch rounds is usually a win, but a
    // fused kernel also delays the drains that used to overlap the next
    // chunk's compute. With a profile in hand, a dry run arbitrates; the
    // losing plan is thrown away.
    t0 = Clock::now();
    ExecutionPlan before = plan;
    PassStats s = fusion_pass(plan);
    if (s.nodes_removed > 0 && profile != nullptr &&
        dry_run(plan, *profile, cost).makespan >
            dry_run(before, *profile, cost).makespan) {
      plan = std::move(before);
      s.pass = "fusion(reverted)";
      s.nodes_removed = 0;
      s.nodes_changed = 0;
    }
    report.fused_kernels = s.nodes_removed;
    timed(std::move(s), t0);
  }
  report.h2d_bytes_after = transfer_bytes(plan, PlanOp::H2D);
  report.d2h_bytes_after = transfer_bytes(plan, PlanOp::D2H);
  report.nodes_after = static_cast<std::int64_t>(plan.nodes.size());
  return report;
}

}  // namespace gpupipe::core
