#include "core/model.hpp"

#include "core/buffer.hpp"
#include "core/layout.hpp"

namespace gpupipe::core {

CostModel::CostModel(const gpu::DeviceProfile& profile, const PipelineSpec& spec,
                     SimTime per_iter_kernel)
    : profile_(profile), spec_(spec), per_iter_kernel_(per_iter_kernel) {
  for (const auto& a : spec.arrays)
    require(!a.split.window_fn, "the cost model supports affine splits only");
}

ChunkCost CostModel::chunk_cost(std::int64_t c) const {
  ChunkCost cost;
  for (const auto& a : spec_.arrays) {
    const bool in = a.map == MapType::To || a.map == MapType::ToFrom;
    const bool out = a.map == MapType::From || a.map == MapType::ToFrom;
    // Steady state with the halo-reuse pass on: each chunk brings scale*c
    // new split indices (the halo stays resident from earlier chunks).
    // Unoptimized plans re-upload the halo with every chunk.
    std::int64_t steady = a.split.start.scale * c;
    if (spec_.opt_level < 1) steady += layout::halo(a.split.window, a.split.start.scale);
    const Bytes bytes = static_cast<Bytes>(steady) * layout::unit_bytes(a);
    Bytes row_width = bytes;  // contiguous slab transfers
    if (a.split.dim != 0) row_width = static_cast<Bytes>(steady) * a.elem_size;
    const SimTime t =
        profile_.copy_setup_latency +
        static_cast<double>(bytes) / profile_.transfer_bandwidth(bytes, row_width, true);
    if (in) cost.copy_in += t;
    if (out) cost.copy_out += t;
  }
  cost.kernel = profile_.kernel_launch_latency + per_iter_kernel_ * static_cast<double>(c);
  // Copies + kernel + ~3 events + ~2 waits per chunk.
  cost.host = 8.0 * profile_.api_call_host_overhead;
  return cost;
}

SimTime CostModel::region_time(std::int64_t c) const {
  const ChunkCost cost = chunk_cost(c);
  const std::int64_t n = ceil_div(spec_.iterations(), c);
  const SimTime bottleneck = profile_.unified_copy_engine ? cost.bottleneck_unified()
                                                          : cost.bottleneck_split();
  // First chunk's copy-in and last chunk's copy-out cannot overlap anything;
  // the interior runs at the bottleneck rate.
  return cost.copy_in + cost.kernel + cost.copy_out +
         static_cast<double>(n - 1) * bottleneck;
}

std::int64_t CostModel::best_chunk(const gpu::Gpu& g, Bytes mem_limit, int streams) const {
  std::int64_t best_c = 1;
  SimTime best_t = region_time(1);
  for (std::int64_t c = 2; c <= spec_.iterations(); c *= 2) {
    Bytes fp = 0;
    for (const auto& a : spec_.arrays)
      fp += RingBuffer::predict_footprint(
          g, a, layout::ring_len_affine(a.split.start.scale, a.split.window, c, streams));
    if (fp > mem_limit) break;
    const SimTime t = region_time(c);
    if (t < best_t) {
      best_t = t;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace gpupipe::core
