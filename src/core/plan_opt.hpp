// Plan optimization passes — plan-to-plan transforms over ExecutionPlan.
//
// PlanBuilder emits the naive schedule: every chunk (or tile) uploads its
// full input window, even when most of it is still resident in the ring
// from the previous chunk. The passes here recover the paper's intended
// transfer volume — and a little more — as pure IR rewrites:
//
//   1. halo-reuse H2D elimination (opt_level >= 1): replays the plan with a
//      per-ring-cell residency table and shrinks or drops H2D nodes whose
//      slots already hold the same host indices, rewiring kernel
//      dependencies to the producing transfer of the resident slice and
//      regenerating the slot-reuse guards for the cells actually
//      overwritten;
//   2. segment coalescing (opt_level >= 1): merges adjacent non-wrapping
//      transfer segments of one node into a single contiguous (or single
//      pitched 2-D) copy, cutting per-copy launch latency;
//   3. stream rebalance (opt_level >= 2): greedily re-assigns transfer
//      nodes (with their guarding SlotReuse nodes) to the least-loaded
//      stream by byte cost. Not on by default: it reshapes the schedule
//      beyond the paper's round-robin placement.
//
// Every pass preserves ExecutionPlan::validate() — the optimizer runs it
// would be cheating to skip the guards the builder proved necessary.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/plan.hpp"

namespace gpupipe::core {

/// What one pass did to the plan.
struct PassStats {
  std::string pass;
  std::int64_t nodes_removed = 0;  ///< nodes dropped from the plan
  std::int64_t nodes_changed = 0;  ///< nodes shrunk / merged / re-assigned
  Bytes bytes_saved = 0;           ///< transfer bytes eliminated
  /// Per-array share of bytes_saved (plan array order, zero entries kept).
  std::vector<std::pair<std::string, Bytes>> bytes_saved_by_array;
};

/// Before/after accounting of one optimize_plan call.
struct OptReport {
  std::vector<PassStats> passes;
  Bytes h2d_bytes_before = 0;
  Bytes h2d_bytes_after = 0;
  Bytes d2h_bytes_before = 0;
  Bytes d2h_bytes_after = 0;
  std::int64_t nodes_before = 0;
  std::int64_t nodes_after = 0;
};

/// Runs the passes enabled by `opt_level` (0 = none, 1 = halo-reuse +
/// coalescing, 2 = + stream rebalance) over `plan` in place. Idempotent:
/// re-optimizing an optimized plan changes nothing.
OptReport optimize_plan(ExecutionPlan& plan, int opt_level);

}  // namespace gpupipe::core
