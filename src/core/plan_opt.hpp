// Plan optimization passes — plan-to-plan transforms over ExecutionPlan.
//
// PlanBuilder emits the naive schedule: every chunk (or tile) uploads its
// full input window, even when most of it is still resident in the ring
// from the previous chunk. The passes here recover the paper's intended
// transfer volume — and a little more — as pure IR rewrites:
//
//   1. halo-reuse H2D elimination (opt_level >= 1): replays the plan with a
//      per-ring-cell residency table and shrinks or drops H2D nodes whose
//      slots already hold the same host indices, rewiring kernel
//      dependencies to the producing transfer of the resident slice and
//      regenerating the slot-reuse guards for the cells actually
//      overwritten;
//   2. segment coalescing (opt_level >= 1): merges adjacent non-wrapping
//      transfer segments of one node into a single contiguous (or single
//      pitched 2-D) copy, cutting per-copy launch latency;
//   3. stream rebalance (opt_level >= 2): greedily re-assigns transfer
//      nodes (with their guarding SlotReuse nodes) to the least-loaded
//      stream by byte cost. Not on by default: it reshapes the schedule
//      beyond the paper's round-robin placement;
//   4. kernel fusion (opt_level >= 2): merges adjacent same-stream kernel
//      nodes with contiguous iteration ranges and compatible access shapes
//      into one launch, when no intervening transfer or drain hazard orders
//      between them. Cost-gated: when a device profile is supplied the pass
//      keeps the fused plan only if a dry run predicts it faster (fusing
//      can erase launch rounds but also delay drains past long kernels);
//   0. inter-job stitching (any opt level, whenever the spec wired
//      ArrayHandoff entries): rewrites the D2H tail (produce side) or H2D
//      head (consume side) of handoff arrays into DeviceHandoff nodes, so
//      lineage bytes stay device-resident instead of round-tripping the
//      host. Runs first — it is a lowering of the scheduler's placement
//      decision, not an optional optimization.
//
// Every pass preserves ExecutionPlan::validate() — the optimizer runs it
// would be cheating to skip the guards the builder proved necessary.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/plan.hpp"

namespace gpupipe::core {

/// What one pass did to the plan.
struct PassStats {
  std::string pass;
  std::int64_t nodes_removed = 0;  ///< nodes dropped from the plan
  std::int64_t nodes_changed = 0;  ///< nodes shrunk / merged / re-assigned
  Bytes bytes_saved = 0;           ///< transfer bytes eliminated
  /// Per-array share of bytes_saved (plan array order, zero entries kept).
  std::vector<std::pair<std::string, Bytes>> bytes_saved_by_array;
  double elapsed_s = 0.0;  ///< wall time optimize_plan spent in the pass
};

/// Before/after accounting of one optimize_plan call.
struct OptReport {
  std::vector<PassStats> passes;
  Bytes h2d_bytes_before = 0;
  Bytes h2d_bytes_after = 0;
  Bytes d2h_bytes_before = 0;
  Bytes d2h_bytes_after = 0;
  std::int64_t nodes_before = 0;
  std::int64_t nodes_after = 0;
  /// Host transfer bytes the stitch pass turned into device-resident
  /// handoffs (both directions; counted once per rewritten node).
  Bytes stitched_bytes = 0;
  /// Kernel launches erased by the fusion pass.
  std::int64_t fused_kernels = 0;
};

/// Runs the passes enabled by `opt_level` (0 = none, 1 = halo-reuse +
/// coalescing, 2 = + stream rebalance and kernel fusion) over `plan` in
/// place, plus the stitch lowering at any level when the plan carries
/// ArrayHandoff wiring. `profile`/`cost` (optional) let the fusion pass
/// arbitrate with a cost-model dry run — without a profile fusion is gated
/// on launch-overhead savings alone. Idempotent: re-optimizing an optimized
/// plan changes nothing.
OptReport optimize_plan(ExecutionPlan& plan, int opt_level,
                        const gpu::DeviceProfile* profile = nullptr,
                        const DryRunCost& cost = {});

}  // namespace gpupipe::core
