#include "core/plan.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "core/layout.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_opt.hpp"
#include "core/tile_pipeline.hpp"

namespace gpupipe::core {

namespace {

bool is_input(MapType m) { return m == MapType::To || m == MapType::ToFrom; }
bool is_output(MapType m) { return m == MapType::From || m == MapType::ToFrom; }

std::string range_str(std::int64_t lo, std::int64_t hi) {
  return "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
}

void push_dep(std::vector<int>& deps, int id) {
  if (id >= 0 && std::find(deps.begin(), deps.end(), id) == deps.end()) deps.push_back(id);
}

/// Ring-wrap decomposition of a 1-D index range into transfer pieces, with
/// the byte shape RingBuffer::copy_in/copy_out will ship (slab: one row of
/// count*unit bytes; block2d: dims[0] rows of count*elem bytes each).
void fill_segments_1d(PlanNode& n, const ArraySpec& a, std::int64_t ring_len) {
  layout::for_ring_segments(
      n.begin, n.end, ring_len, [&](std::int64_t slot, std::int64_t idx, std::int64_t count) {
        PlanSegment seg;
        seg.slot = slot;
        seg.index = idx;
        seg.count = count;
        if (a.split.dim == 0) {
          seg.width = static_cast<Bytes>(count) * layout::unit_bytes(a);
          seg.height = 1;
        } else {
          seg.width = static_cast<Bytes>(count) * a.elem_size;
          seg.height = static_cast<Bytes>(a.dims[0]);
        }
        n.segments.push_back(seg);
      });
  n.bytes = static_cast<Bytes>(n.end - n.begin) * layout::unit_bytes(a);
}

/// 2-D wrap decomposition of a tile block — row-outer, column-inner, the
/// same piece order TilePipeline's copy_block issues.
void fill_segments_tile(PlanNode& n, const TileArraySpec& a, std::int64_t ring_rows,
                        std::int64_t ring_cols) {
  require(0 <= n.row_begin && n.row_begin < n.row_end && n.row_end <= a.rows && 0 <= n.begin &&
              n.begin < n.end && n.end <= a.cols,
          "tile array '" + a.name + "': block outside the host matrix");
  n.bytes = 0;
  for (std::int64_t r = n.row_begin; r < n.row_end;) {
    const std::int64_t slot_r = r % ring_rows;
    const std::int64_t nr = std::min(n.row_end - r, ring_rows - slot_r);
    for (std::int64_t c = n.begin; c < n.end;) {
      const std::int64_t slot_c = c % ring_cols;
      const std::int64_t nc = std::min(n.end - c, ring_cols - slot_c);
      PlanSegment seg;
      seg.slot = slot_c;
      seg.index = c;
      seg.count = nc;
      seg.row_slot = slot_r;
      seg.row = r;
      seg.rows = nr;
      seg.width = static_cast<Bytes>(nc) * a.elem_size;
      seg.height = static_cast<Bytes>(nr);
      n.bytes += seg.bytes();
      n.segments.push_back(seg);
      c += nc;
    }
    r += nr;
  }
}

ExecutionPlan predicted_pipeline(const PipelineSpec& spec, const gpu::Gpu* g) {
  spec.validate();
  PipelineBuildState state;
  for (const auto& a : spec.arrays) {
    state.ring_lens.push_back(
        std::min(layout::ring_len_for_spec(a, spec.loop_begin, spec.loop_end, spec.chunk_size,
                                           spec.num_streams),
                 a.dims[static_cast<std::size_t>(a.split.dim)]));
    state.pinned.push_back(g ? g->is_pinned(a.host) : true);
  }
  ExecutionPlan plan = PlanBuilder::pipeline(spec, spec.chunk_size, spec.num_streams,
                                             spec.loop_begin, spec.loop_end, state);
  optimize_plan(plan, spec.opt_level, g ? &g->profile() : nullptr);
  return plan;
}

}  // namespace

// --- PlanBuilder: 1-D pipeline ---

ExecutionPlan PlanBuilder::pipeline(const PipelineSpec& spec, std::int64_t chunk_size,
                                    int num_streams, std::int64_t from, std::int64_t to,
                                    const PipelineBuildState& state) {
  require(chunk_size >= 1 && num_streams >= 1, "plan needs chunk_size and num_streams >= 1");
  require(from <= to, "plan iteration range is reversed");
  require(state.ring_lens.size() == spec.arrays.size(),
          "plan build state must describe every mapped array");

  ExecutionPlan plan;
  plan.num_streams = num_streams;
  plan.chunk_size = chunk_size;
  plan.origin = "pipeline";
  plan.arrays.reserve(spec.arrays.size());
  for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
    const ArraySpec& a = spec.arrays[ai];
    PlanArrayInfo info;
    info.name = a.name;
    info.map = a.map;
    info.ring_len = state.ring_lens[ai];
    info.unit_bytes = layout::unit_bytes(a);
    info.pinned = state.pinned.empty() ? true : state.pinned[ai];
    // Handoff wiring rides along so the stitch pass (core/plan_opt.hpp) can
    // rewrite this array's host transfers without the spec in hand.
    for (const ArrayHandoff& h : spec.handoffs)
      if (h.array == static_cast<int>(ai)) {
        info.handoff_link = h.link;
        info.handoff_out = h.produce;
      }
    plan.arrays.push_back(std::move(info));
  }

  // Per-array dependency bookkeeping, the plan-time mirror of Pipeline's
  // event tables: who wrote each host index (copy_writer), which kernels
  // read each ring slot's current occupant (slot_readers — all of them, so
  // a reuse edge orders the overwrite after *every* in-flight reader), and
  // which drain group last emptied each slot.
  struct AState {
    std::unordered_map<std::int64_t, int> copy_writer;
    std::vector<std::vector<int>> slot_readers;
    std::vector<int> slot_drained;
  };
  std::vector<AState> st(spec.arrays.size());
  for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
    st[ai].slot_readers.assign(static_cast<std::size_t>(plan.arrays[ai].ring_len), {});
    st[ai].slot_drained.assign(static_cast<std::size_t>(plan.arrays[ai].ring_len), -1);
  }

  // Shard halo wiring (empty for solo regions): which arrays receive part of
  // their window device-to-device, and which push their first-window head to
  // a neighbour shard.
  std::vector<const ShardHalo*> halo_of(spec.arrays.size(), nullptr);
  for (const ShardHalo& h : spec.halos)
    halo_of[static_cast<std::size_t>(h.array)] = &h;

  auto add_node = [&plan](PlanNode n) {
    n.id = static_cast<int>(plan.nodes.size());
    plan.nodes.push_back(std::move(n));
    return plan.nodes.back().id;
  };

  std::int64_t counter = state.first_chunk;
  for (std::int64_t lo = from; lo < to; lo += chunk_size, ++counter) {
    const std::int64_t hi = std::min(lo + chunk_size, to);
    const int stream = static_cast<int>(counter % num_streams);

    // ---- copy-in: newly required input slices ----
    std::vector<int> chunk_h2d;
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      const ArraySpec& a = spec.arrays[ai];
      if (!is_input(a.map)) continue;
      AState& as = st[ai];
      const std::int64_t ring = plan.arrays[ai].ring_len;
      const auto [w_lo, w_hi] = layout::window_of(a, lo, hi);
      // Naive schedule: every chunk uploads its full window. The halo-reuse
      // pass (core/plan_opt.hpp) elides the bytes still resident in the ring
      // from earlier chunks.
      const std::int64_t n_lo = w_lo;
      if (n_lo < w_hi) {
        // Slot-reuse guard: the incoming data overwrites ring slots whose
        // previous occupants may still be read by in-flight kernels or
        // drained by in-flight copy-outs.
        std::vector<int> reuse;
        for (std::int64_t idx = n_lo; idx < w_hi; ++idx) {
          auto& readers = as.slot_readers[static_cast<std::size_t>(idx % ring)];
          for (int r : readers) push_dep(reuse, r);
          readers.clear();  // the slot's new occupant starts a fresh reader set
          push_dep(reuse, as.slot_drained[static_cast<std::size_t>(idx % ring)]);
        }
        int reuse_id = -1;
        if (!reuse.empty()) {
          PlanNode sr;
          sr.op = PlanOp::SlotReuse;
          sr.stream = stream;
          sr.array = static_cast<int>(ai);
          sr.chunk = counter;
          sr.begin = n_lo;
          sr.end = w_hi;
          sr.deps = std::move(reuse);
          sr.label = "reuse " + a.name + range_str(n_lo, w_hi);
          reuse_id = add_node(std::move(sr));
        }
        // A shard's foreign tail [recv_lo, w_hi) lands via P2P from the
        // neighbour that owns it; everything below recv_lo comes from the
        // host as usual. Solo regions have no halo and take the first branch
        // for the whole window.
        const ShardHalo* hal = halo_of[ai];
        const std::int64_t recv_lo =
            hal && hal->recv_peer >= 0 ? std::clamp(hal->recv_lo, n_lo, w_hi) : w_hi;
        auto emit_copy = [&](PlanOp op, std::int64_t c_lo, std::int64_t c_hi) {
          PlanNode h;
          h.op = op;
          h.stream = stream;
          h.array = static_cast<int>(ai);
          h.chunk = counter;
          h.begin = c_lo;
          h.end = c_hi;
          if (op == PlanOp::P2pRecv) h.peer = hal->recv_peer;
          fill_segments_1d(h, a, ring);
          if (reuse_id >= 0) h.deps.push_back(reuse_id);
          h.label = (op == PlanOp::H2D ? "h2d " : "p2p-recv ") + a.name +
                    range_str(c_lo, c_hi);
          const int hid = add_node(std::move(h));
          for (std::int64_t idx = c_lo; idx < c_hi; ++idx) as.copy_writer[idx] = hid;
          chunk_h2d.push_back(hid);
        };
        if (n_lo < recv_lo) emit_copy(PlanOp::H2D, n_lo, recv_lo);
        if (recv_lo < w_hi) emit_copy(PlanOp::P2pRecv, recv_lo, w_hi);
      }
    }
    if (!chunk_h2d.empty()) {
      plan.nodes[static_cast<std::size_t>(chunk_h2d.back())].records_event = true;
      for (int id : chunk_h2d)
        plan.nodes[static_cast<std::size_t>(id)].event_node = chunk_h2d.back();
    }

    // ---- halo push: forward the first window's head to the neighbour ----
    // The overlap a neighbour's trailing windows need is exactly the head of
    // this shard's own first window, so it is already on the device after the
    // first chunk's upload — one P2P copy forwards it without touching the
    // host. Registered as a reader of its slots so any later overwrite (ring
    // wrap) orders after the push.
    if (lo == from) {
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const ShardHalo* hal = halo_of[ai];
        if (!hal || hal->send_peer < 0) continue;
        const ArraySpec& a = spec.arrays[ai];
        ensure(is_input(a.map), "shard halo send on a non-input array");
        AState& as = st[ai];
        const std::int64_t ring = plan.arrays[ai].ring_len;
        const auto [w_lo, w_hi] = layout::window_of(a, lo, hi);
        require(w_lo < hal->send_hi && hal->send_hi <= w_hi,
                "array '" + a.name + "': shard halo send range must sit inside the "
                "first chunk's window");
        PlanNode p;
        p.op = PlanOp::P2pSend;
        p.stream = stream;
        p.array = static_cast<int>(ai);
        p.chunk = counter;
        p.begin = w_lo;
        p.end = hal->send_hi;
        p.peer = hal->send_peer;
        fill_segments_1d(p, a, ring);
        for (std::int64_t idx = p.begin; idx < p.end; ++idx) {
          auto it = as.copy_writer.find(idx);
          ensure(it != as.copy_writer.end(), "halo send slice was never scheduled for copy");
          push_dep(p.deps, it->second);
        }
        p.records_event = true;
        p.label = "p2p-send " + a.name + range_str(p.begin, p.end) + "->s" +
                  std::to_string(p.peer);
        const std::int64_t s_lo = p.begin;
        const std::int64_t s_hi = p.end;
        const int pid = add_node(std::move(p));
        plan.nodes[static_cast<std::size_t>(pid)].event_node = pid;
        for (std::int64_t idx = s_lo; idx < s_hi; ++idx) {
          auto& readers = as.slot_readers[static_cast<std::size_t>(idx % ring)];
          if (readers.empty() || readers.back() != pid) readers.push_back(pid);
        }
      }
    }

    // ---- kernel ----
    PlanNode k;
    k.op = PlanOp::Kernel;
    k.stream = stream;
    k.chunk = counter;
    k.begin = lo;
    k.end = hi;
    k.records_event = true;
    k.label = "chunk" + std::to_string(counter);
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      const ArraySpec& a = spec.arrays[ai];
      AState& as = st[ai];
      const std::int64_t ring = plan.arrays[ai].ring_len;
      const auto [w_lo, w_hi] = layout::window_of(a, lo, hi);
      if (is_input(a.map)) {
        for (std::int64_t idx = w_lo; idx < w_hi; ++idx) {
          auto it = as.copy_writer.find(idx);
          ensure(it != as.copy_writer.end(), "input slice was never scheduled for copy");
          push_dep(k.deps, it->second);
        }
        k.accesses.push_back({static_cast<int>(ai), w_lo, w_hi, 0, 0, false});
      }
      if (is_output(a.map)) {
        // Output-slot rewrite guard: the slots this kernel writes must have
        // been drained to the host by the previous occupant's copy-out.
        for (std::int64_t idx = w_lo; idx < w_hi; ++idx)
          push_dep(k.deps, as.slot_drained[static_cast<std::size_t>(idx % ring)]);
        k.accesses.push_back({static_cast<int>(ai), w_lo, w_hi, 0, 0, true});
      }
    }
    const int kid = add_node(std::move(k));
    plan.nodes[static_cast<std::size_t>(kid)].event_node = kid;
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      const ArraySpec& a = spec.arrays[ai];
      if (!is_input(a.map)) continue;
      AState& as = st[ai];
      const std::int64_t ring = plan.arrays[ai].ring_len;
      const auto [w_lo, w_hi] = layout::window_of(a, lo, hi);
      for (std::int64_t idx = w_lo; idx < w_hi; ++idx) {
        auto& readers = as.slot_readers[static_cast<std::size_t>(idx % ring)];
        if (readers.empty() || readers.back() != kid) readers.push_back(kid);
      }
    }

    // ---- copy-out: drain produced output slices ----
    std::vector<int> chunk_d2h;
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      const ArraySpec& a = spec.arrays[ai];
      if (!is_output(a.map)) continue;
      const auto [o_lo, o_hi] = layout::window_of(a, lo, hi);
      PlanNode d;
      d.op = PlanOp::D2H;
      d.stream = stream;
      d.array = static_cast<int>(ai);
      d.chunk = counter;
      d.begin = o_lo;
      d.end = o_hi;
      fill_segments_1d(d, a, plan.arrays[ai].ring_len);
      d.deps.push_back(kid);
      d.label = "d2h " + a.name + range_str(o_lo, o_hi);
      chunk_d2h.push_back(add_node(std::move(d)));
    }
    if (!chunk_d2h.empty()) {
      const int last = chunk_d2h.back();
      plan.nodes[static_cast<std::size_t>(last)].records_event = true;
      for (int id : chunk_d2h) plan.nodes[static_cast<std::size_t>(id)].event_node = last;
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const ArraySpec& a = spec.arrays[ai];
        if (!is_output(a.map)) continue;
        AState& as = st[ai];
        const std::int64_t ring = plan.arrays[ai].ring_len;
        const auto [o_lo, o_hi] = layout::window_of(a, lo, hi);
        for (std::int64_t idx = o_lo; idx < o_hi; ++idx)
          as.slot_drained[static_cast<std::size_t>(idx % ring)] = last;
      }
    }
  }
  return plan;
}

ExecutionPlan PlanBuilder::pipeline(const PipelineSpec& spec) {
  return predicted_pipeline(spec, nullptr);
}

ExecutionPlan PlanBuilder::pipeline(const gpu::Gpu& g, const PipelineSpec& spec) {
  return predicted_pipeline(spec, &g);
}

// --- PlanBuilder: multi-device ---

std::vector<ExecutionPlan> PlanBuilder::multi(const MultiSpec& ms) {
  ms.spec.validate();
  const auto parts =
      layout::partition_weighted(ms.spec.iterations(), ms.weights, ms.spec.chunk_size);
  std::vector<ExecutionPlan> plans;
  plans.reserve(parts.size());
  std::int64_t begin = ms.spec.loop_begin;
  for (std::size_t d = 0; d < parts.size(); ++d) {
    ExecutionPlan p;
    if (parts[d] > 0) {
      PipelineSpec sub = ms.spec;
      sub.loop_begin = begin;
      sub.loop_end = begin + parts[d];
      p = predicted_pipeline(sub, nullptr);
    }
    begin += parts[d];
    p.origin = "multi[" + std::to_string(d) + "]";
    plans.push_back(std::move(p));
  }
  return plans;
}

// --- Shard decomposition ---

std::vector<ShardSlice> shard_pipeline_specs(const PipelineSpec& spec,
                                             const std::vector<double>& weights) {
  spec.validate();
  require(spec.schedule == ScheduleKind::Static, "sharding requires the static schedule");
  require(spec.halos.empty(), "cannot re-shard an already-sharded sub-spec");
  require(spec.handoffs.empty(), "cannot shard a spec wired for device handoffs");
  for (const auto& a : spec.arrays)
    require(a.split.dim == 0 && !a.split.window_fn,
            "array '" + a.name + "': sharding needs dim-0 affine splits");
  const auto parts =
      layout::partition_weighted(spec.iterations(), weights, spec.chunk_size);

  std::vector<ShardSlice> out;
  std::int64_t begin = spec.loop_begin;
  for (std::size_t d = 0; d < parts.size(); ++d) {
    if (parts[d] <= 0) continue;
    ShardSlice s;
    s.shard = static_cast<int>(out.size());
    s.begin = begin;
    s.end = begin + parts[d];
    begin = s.end;
    s.spec = spec;
    s.spec.loop_begin = s.begin;
    s.spec.loop_end = s.end;
    out.push_back(std::move(s));
  }

  // Wire neighbour halos: where an input window overhangs its stride, shard
  // s's trailing windows reach `overhang` indices past the boundary into
  // territory shard s+1 uploads as the head of its own first window — so
  // s+1 pushes that head device-to-device and s never asks the host for it.
  auto halo_entry = [](ShardSlice& s, int ai) -> ShardHalo& {
    for (ShardHalo& h : s.spec.halos)
      if (h.array == ai) return h;
    ShardHalo h;
    h.array = ai;
    s.spec.halos.push_back(h);
    return s.spec.halos.back();
  };
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    ShardSlice& left = out[i];
    ShardSlice& right = out[i + 1];
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      const ArraySpec& a = spec.arrays[ai];
      if (!is_input(a.map)) continue;
      const std::int64_t overhang = layout::halo(a.split.window, a.split.start.scale);
      if (overhang <= 0) continue;
      const std::int64_t boundary = a.split.start(right.begin);
      ShardHalo& recv = halo_entry(left, static_cast<int>(ai));
      recv.recv_lo = boundary;
      recv.recv_peer = right.shard;
      ShardHalo& send = halo_entry(right, static_cast<int>(ai));
      send.send_hi = boundary + overhang;
      send.send_peer = left.shard;
    }
  }
  return out;
}

// --- PlanBuilder: 2-D tiles ---

ExecutionPlan PlanBuilder::tiles(const TileSpec& spec, const TileBuildState& state) {
  spec.validate();
  require(state.ring_rows.size() == spec.arrays.size() &&
              state.ring_cols.size() == spec.arrays.size(),
          "tile build state must describe every mapped array");

  ExecutionPlan plan;
  plan.num_streams = spec.num_streams;
  plan.chunk_size = 1;
  plan.origin = "tiles";
  plan.arrays.reserve(spec.arrays.size());
  for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
    const TileArraySpec& a = spec.arrays[ai];
    PlanArrayInfo info;
    info.name = a.name;
    info.map = a.map;
    info.ring_len = state.ring_cols[ai];
    info.ring_rows = state.ring_rows[ai];
    info.unit_bytes = a.elem_size;
    info.pinned = state.pinned.empty() ? true : state.pinned[ai];
    plan.arrays.push_back(std::move(info));
  }

  struct AState {
    std::unordered_map<std::int64_t, int> col_writer;
    std::vector<std::vector<int>> col_readers;
    std::vector<int> col_drained;
  };
  std::vector<AState> st(spec.arrays.size());

  auto add_node = [&plan](PlanNode n) {
    n.id = static_cast<int>(plan.nodes.size());
    plan.nodes.push_back(std::move(n));
    return plan.nodes.back().id;
  };

  const std::size_t ns = static_cast<std::size_t>(spec.num_streams);
  std::vector<int> prev_band_tails;
  std::int64_t tile_counter = 0;

  for (std::int64_t i = 0; i < spec.ni; ++i) {
    // Band start: column bookkeeping resets; the barrier below protects the
    // buffer rows the new band will overwrite.
    for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
      st[ai] = AState{};
      st[ai].col_readers.assign(static_cast<std::size_t>(plan.arrays[ai].ring_len), {});
      st[ai].col_drained.assign(static_cast<std::size_t>(plan.arrays[ai].ring_len), -1);
    }
    std::vector<bool> barrier_done(ns, prev_band_tails.empty());
    std::vector<bool> used(ns, false);
    std::vector<int> band_tail(ns, -1);

    for (std::int64_t j = 0; j < spec.nj; ++j, ++tile_counter) {
      const int stream = static_cast<int>(tile_counter % spec.num_streams);
      const std::size_t si = static_cast<std::size_t>(stream);
      used[si] = true;
      if (!barrier_done[si]) {
        PlanNode b;
        b.op = PlanOp::Barrier;
        b.stream = stream;
        b.tile_i = i;
        b.deps = prev_band_tails;
        b.label = "band" + std::to_string(i) + " barrier";
        add_node(std::move(b));
        barrier_done[si] = true;
      }

      // ---- copy-in: new columns of every input's block ----
      std::vector<int> tile_h2d;
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const TileArraySpec& a = spec.arrays[ai];
        if (!is_input(a.map)) continue;
        AState& as = st[ai];
        const std::int64_t ring = plan.arrays[ai].ring_len;
        const std::int64_t rs = a.row_split.start(i);
        const std::int64_t rh = rs + a.row_split.window;
        const std::int64_t cs = a.col_split.start(j);
        const std::int64_t ch = cs + a.col_split.window;
        // Naive schedule: every tile uploads its full column window; the
        // halo-reuse pass elides columns still resident within the band.
        const std::int64_t n_lo = cs;
        if (n_lo < ch) {
          std::vector<int> reuse;
          for (std::int64_t c = n_lo; c < ch; ++c) {
            auto& readers = as.col_readers[static_cast<std::size_t>(c % ring)];
            for (int r : readers) push_dep(reuse, r);
            readers.clear();
            push_dep(reuse, as.col_drained[static_cast<std::size_t>(c % ring)]);
          }
          int reuse_id = -1;
          if (!reuse.empty()) {
            PlanNode sr;
            sr.op = PlanOp::SlotReuse;
            sr.stream = stream;
            sr.array = static_cast<int>(ai);
            sr.chunk = tile_counter;
            sr.begin = n_lo;
            sr.end = ch;
            sr.row_begin = rs;
            sr.row_end = rh;
            sr.deps = std::move(reuse);
            sr.label = "reuse " + a.name + range_str(n_lo, ch);
            reuse_id = add_node(std::move(sr));
          }
          PlanNode h;
          h.op = PlanOp::H2D;
          h.stream = stream;
          h.array = static_cast<int>(ai);
          h.chunk = tile_counter;
          h.begin = n_lo;
          h.end = ch;
          h.row_begin = rs;
          h.row_end = rh;
          h.tile_i = i;
          h.tile_j = j;
          fill_segments_tile(h, a, plan.arrays[ai].ring_rows, ring);
          if (reuse_id >= 0) h.deps.push_back(reuse_id);
          h.label = "h2d " + a.name + range_str(rs, rh) + "x" + range_str(n_lo, ch);
          const int hid = add_node(std::move(h));
          for (std::int64_t c = n_lo; c < ch; ++c) as.col_writer[c] = hid;
          tile_h2d.push_back(hid);
        }
      }
      if (!tile_h2d.empty()) {
        plan.nodes[static_cast<std::size_t>(tile_h2d.back())].records_event = true;
        for (int id : tile_h2d)
          plan.nodes[static_cast<std::size_t>(id)].event_node = tile_h2d.back();
      }

      // ---- kernel ----
      PlanNode k;
      k.op = PlanOp::Kernel;
      k.stream = stream;
      k.chunk = tile_counter;
      k.begin = j;
      k.end = j + 1;
      k.tile_i = i;
      k.tile_j = j;
      k.records_event = true;
      k.label = "tile(" + std::to_string(i) + "," + std::to_string(j) + ")";
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const TileArraySpec& a = spec.arrays[ai];
        AState& as = st[ai];
        const std::int64_t ring = plan.arrays[ai].ring_len;
        const std::int64_t rs = a.row_split.start(i);
        const std::int64_t rh = rs + a.row_split.window;
        const std::int64_t cs = a.col_split.start(j);
        const std::int64_t ch = cs + a.col_split.window;
        if (is_input(a.map)) {
          for (std::int64_t c = cs; c < ch; ++c) {
            auto it = as.col_writer.find(c);
            ensure(it != as.col_writer.end(), "tile input column was never copied");
            push_dep(k.deps, it->second);
          }
          k.accesses.push_back({static_cast<int>(ai), cs, ch, rs, rh, false});
        }
        if (is_output(a.map)) {
          for (std::int64_t c = cs; c < ch; ++c)
            push_dep(k.deps, as.col_drained[static_cast<std::size_t>(c % ring)]);
          k.accesses.push_back({static_cast<int>(ai), cs, ch, rs, rh, true});
        }
      }
      const int kid = add_node(std::move(k));
      plan.nodes[static_cast<std::size_t>(kid)].event_node = kid;
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const TileArraySpec& a = spec.arrays[ai];
        if (!is_input(a.map)) continue;
        AState& as = st[ai];
        const std::int64_t ring = plan.arrays[ai].ring_len;
        const std::int64_t cs = a.col_split.start(j);
        const std::int64_t ch = cs + a.col_split.window;
        for (std::int64_t c = cs; c < ch; ++c) {
          auto& readers = as.col_readers[static_cast<std::size_t>(c % ring)];
          if (readers.empty() || readers.back() != kid) readers.push_back(kid);
        }
      }

      // ---- copy-out ----
      std::vector<int> tile_d2h;
      for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
        const TileArraySpec& a = spec.arrays[ai];
        if (!is_output(a.map)) continue;
        const std::int64_t rs = a.row_split.start(i);
        const std::int64_t rh = rs + a.row_split.window;
        const std::int64_t cs = a.col_split.start(j);
        const std::int64_t ch = cs + a.col_split.window;
        PlanNode d;
        d.op = PlanOp::D2H;
        d.stream = stream;
        d.array = static_cast<int>(ai);
        d.chunk = tile_counter;
        d.begin = cs;
        d.end = ch;
        d.row_begin = rs;
        d.row_end = rh;
        d.tile_i = i;
        d.tile_j = j;
        fill_segments_tile(d, a, plan.arrays[ai].ring_rows, plan.arrays[ai].ring_len);
        d.deps.push_back(kid);
        d.label = "d2h " + a.name + range_str(rs, rh) + "x" + range_str(cs, ch);
        tile_d2h.push_back(add_node(std::move(d)));
      }
      int tail = kid;
      if (!tile_d2h.empty()) {
        const int last = tile_d2h.back();
        plan.nodes[static_cast<std::size_t>(last)].records_event = true;
        for (int id : tile_d2h) plan.nodes[static_cast<std::size_t>(id)].event_node = last;
        for (std::size_t ai = 0; ai < spec.arrays.size(); ++ai) {
          const TileArraySpec& a = spec.arrays[ai];
          if (!is_output(a.map)) continue;
          AState& as = st[ai];
          const std::int64_t ring = plan.arrays[ai].ring_len;
          const std::int64_t cs = a.col_split.start(j);
          const std::int64_t ch = cs + a.col_split.window;
          for (std::int64_t c = cs; c < ch; ++c)
            as.col_drained[static_cast<std::size_t>(c % ring)] = last;
        }
        tail = last;
      }
      band_tail[si] = tail;
    }

    // Band end: the next band's barrier waits on each used stream's tail.
    prev_band_tails.clear();
    for (std::size_t s = 0; s < ns; ++s)
      if (used[s] && band_tail[s] >= 0) prev_band_tails.push_back(band_tail[s]);
  }
  return plan;
}

// --- Memory-limit solver ---

Bytes predicted_pipeline_footprint(const gpu::Gpu& g, const PipelineSpec& spec,
                                   std::int64_t chunk_size, int num_streams) {
  return PlanCache::instance().footprint(g, spec, chunk_size, num_streams);
}

SolvedShape solve_pipeline_shape(const gpu::Gpu& g, const PipelineSpec& spec, Bytes limit) {
  std::int64_t c = spec.chunk_size;
  int s = spec.num_streams;
  for (;;) {
    const Bytes fp = predicted_pipeline_footprint(g, spec, c, s);
    if (fp <= limit) return {c, s, fp};
    if (c > 1) {
      log_debug("pipeline: shrinking chunk_size ", c, " -> ", (c + 1) / 2,
                " to meet the memory limit (need ", fp, " of ", limit, " bytes)");
      if (telemetry::metrics_enabled())
        telemetry::global_metrics().counter("pipeline.chunk_shrink_events").add(1);
      c = (c + 1) / 2;
    } else if (s > 1) {
      log_debug("pipeline: dropping to ", s - 1, " stream(s) to meet the memory limit");
      if (telemetry::metrics_enabled())
        telemetry::global_metrics().counter("pipeline.stream_drop_events").add(1);
      --s;
    } else {
      throw gpu::OomError(
          "pipeline_mem_limit unsatisfiable: even chunk_size=1 with one stream needs " +
          std::to_string(fp) + " bytes, limit is " + std::to_string(limit));
    }
  }
}

std::pair<std::int64_t, int> solve_pipeline_memory(const gpu::Gpu& g, const PipelineSpec& spec,
                                                   Bytes limit) {
  const SolvedShape solved = solve_pipeline_shape(g, spec, limit);
  return {solved.chunk_size, solved.num_streams};
}

// --- Static validation ---

void ExecutionPlan::validate() const {
  std::vector<gpu::StaticOp> ops;
  ops.reserve(nodes.size());
  for (const PlanNode& n : nodes) {
    gpu::StaticOp op;
    op.queue = n.stream;
    op.deps = n.deps;
    op.label = n.label.empty() ? std::string(to_string(n.op)) : n.label;
    // Transfers touch exactly their wrap segments; kernel accesses are
    // wrap-decomposed the same way. Slot space is (buffer row, ring slot)
    // flattened as row * ring_len + slot.
    auto add_segments = [&](bool write) {
      const std::int64_t ring = arrays[static_cast<std::size_t>(n.array)].ring_len;
      for (const PlanSegment& seg : n.segments)
        for (std::int64_t r = seg.row_slot; r < seg.row_slot + seg.rows; ++r)
          op.accesses.push_back(
              {n.array, r * ring + seg.slot, r * ring + seg.slot + seg.count, write});
    };
    switch (n.op) {
      case PlanOp::H2D:
        add_segments(true);
        break;
      case PlanOp::D2H:
        add_segments(false);
        break;
      case PlanOp::Kernel:
        for (const PlanAccess& acc : n.accesses) {
          const PlanArrayInfo& info = arrays[static_cast<std::size_t>(acc.array)];
          const std::int64_t row_lo = acc.row_lo;
          const std::int64_t row_hi = std::max(acc.row_hi, acc.row_lo + 1);
          for (std::int64_t r = row_lo; r < row_hi;) {
            const std::int64_t slot_r = r % info.ring_rows;
            const std::int64_t nr = std::min(row_hi - r, info.ring_rows - slot_r);
            layout::for_ring_segments(
                acc.lo, acc.hi, info.ring_len,
                [&](std::int64_t slot, std::int64_t, std::int64_t count) {
                  for (std::int64_t rr = slot_r; rr < slot_r + nr; ++rr)
                    op.accesses.push_back({acc.array, rr * info.ring_len + slot,
                                           rr * info.ring_len + slot + count, acc.write});
                });
            r += nr;
          }
        }
        break;
      case PlanOp::P2pSend:
        // Reads its own ring slots; the peer-side staging write is the
        // exchange's business (the machine-wide tracker covers it at run
        // time — static validation is per-plan).
        add_segments(false);
        break;
      case PlanOp::P2pRecv:
        // Lands peer data into its own ring slots, just like an H2D.
        add_segments(true);
        break;
      case PlanOp::DeviceHandoff:
        // Produce side reads its ring slots into staging (like a D2H);
        // consume side lands staged data into its ring (like an H2D). The
        // staging buffer itself belongs to the exchange, outside this plan.
        add_segments(!arrays[static_cast<std::size_t>(n.array)].handoff_out);
        break;
      case PlanOp::SlotReuse:
      case PlanOp::Barrier:
        break;  // ordering-only nodes
    }
    ops.push_back(std::move(op));
  }
  gpu::validate_static_schedule(ops, num_streams);
}

// --- DOT export ---

void ExecutionPlan::to_dot(std::ostream& os) const {
  os << "digraph \"" << origin << "\" {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  for (int s = 0; s < num_streams; ++s) {
    os << "  subgraph cluster_s" << s << " {\n";
    os << "    label=\"stream " << s << "\";\n";
    for (const PlanNode& n : nodes) {
      if (n.stream != s) continue;
      os << "    n" << n.id << " [label=\"" << (n.label.empty() ? to_string(n.op) : n.label)
         << "\"";
      switch (n.op) {
        case PlanOp::H2D:
          os << ", style=filled, fillcolor=lightblue";
          break;
        case PlanOp::D2H:
          os << ", style=filled, fillcolor=lightgreen";
          break;
        case PlanOp::Kernel:
          os << ", style=filled, fillcolor=khaki";
          break;
        case PlanOp::P2pSend:
          os << ", style=filled, fillcolor=orchid";
          break;
        case PlanOp::P2pRecv:
          os << ", style=filled, fillcolor=lightsalmon";
          break;
        case PlanOp::DeviceHandoff:
          os << ", style=filled, fillcolor=gold";
          break;
        case PlanOp::SlotReuse:
        case PlanOp::Barrier:
          os << ", style=dashed, color=gray";
          break;
      }
      os << "];\n";
    }
    os << "  }\n";
  }
  for (const PlanNode& n : nodes)
    for (int d : n.deps) os << "  n" << d << " -> n" << n.id << ";\n";
  os << "}\n";
}

// --- PlanExecutor ---

void PlanExecutor::bind(std::vector<gpu::Stream*> streams,
                        std::vector<PlanArrayBinding*> arrays) {
  streams_ = std::move(streams);
  arrays_ = std::move(arrays);
  events_.clear();
}

void PlanExecutor::issue_waits(const ExecutionPlan& plan, const PlanNode& n, gpu::Stream& s) {
  if (n.op == PlanOp::Barrier) {
    // Band barriers wait on every tail event unconditionally (no dedup, no
    // same-stream elision) — cross-stream joins are rare and explicit.
    for (int d : n.deps) {
      const int en = plan.nodes[static_cast<std::size_t>(d)].event_node;
      if (en >= 0 && events_[static_cast<std::size_t>(en)])
        gpu_.wait_event(s, events_[static_cast<std::size_t>(en)]);
    }
    return;
  }
  seen_.clear();
  for (int d : n.deps) {
    const int en = plan.nodes[static_cast<std::size_t>(d)].event_node;
    if (en < 0) continue;  // ordering-only dependency (stream order)
    const gpu::EventPtr& ev = events_[static_cast<std::size_t>(en)];
    if (!ev) continue;
    if (plan.nodes[static_cast<std::size_t>(en)].stream == n.stream) continue;
    if (std::find(seen_.begin(), seen_.end(), ev.get()) != seen_.end()) continue;
    seen_.push_back(ev.get());
    gpu_.wait_event(s, ev);
    if (stats_) ++stats_->stream_waits;
  }
}

void PlanExecutor::enqueue(const ExecutionPlan& plan, const PlanKernelMaker& make_kernel) {
  require(static_cast<int>(streams_.size()) >= plan.num_streams,
          "executor is bound to fewer streams than the plan uses");
  require(arrays_.size() >= plan.arrays.size(),
          "executor is bound to fewer arrays than the plan maps");
  events_.assign(plan.nodes.size(), nullptr);
  sim::Trace& trace = gpu_.trace();
  for (const PlanNode& n : plan.nodes) {
    gpu::Stream& s = *streams_[static_cast<std::size_t>(n.stream)];
    trace.set_plan_node(n.id);
    issue_waits(plan, n, s);
    switch (n.op) {
      case PlanOp::H2D: {
        const int transfers = arrays_[static_cast<std::size_t>(n.array)]->transfer(s, n, true);
        if (stats_) {
          stats_->h2d_copies += transfers;
          stats_->h2d_bytes += n.bytes;
        }
        break;
      }
      case PlanOp::D2H: {
        const int transfers = arrays_[static_cast<std::size_t>(n.array)]->transfer(s, n, false);
        if (stats_) {
          stats_->d2h_copies += transfers;
          stats_->d2h_bytes += n.bytes;
        }
        break;
      }
      case PlanOp::Kernel: {
        gpu::KernelDesc desc = make_kernel(n);
        for (const PlanAccess& acc : n.accesses)
          arrays_[static_cast<std::size_t>(acc.array)]->append_ranges(
              acc.write ? desc.effects.writes : desc.effects.reads, acc);
        if (desc.name == "kernel") desc.name = n.label;
        last_kernel_ = gpu_.launch(s, std::move(desc));
        if (stats_) {
          ++stats_->kernels;
          ++stats_->chunks;
        }
        break;
      }
      case PlanOp::P2pSend:
      case PlanOp::P2pRecv: {
        require(exchange_ != nullptr,
                "plan contains P2P halo nodes but no exchange is bound "
                "(PlanExecutor::set_exchange)");
        exchange_->issue(gpu_, s, n);
        if (stats_) {
          ++stats_->p2p_copies;
          if (n.op == PlanOp::P2pSend) stats_->p2p_bytes += n.bytes;
        }
        break;
      }
      case PlanOp::DeviceHandoff: {
        require(exchange_ != nullptr,
                "plan contains DeviceHandoff nodes but no exchange is bound "
                "(PlanExecutor::set_exchange)");
        exchange_->issue(gpu_, s, n);
        if (stats_) {
          ++stats_->handoff_copies;
          stats_->handoff_bytes += n.bytes;
        }
        break;
      }
      case PlanOp::SlotReuse:
      case PlanOp::Barrier:
        break;  // waits only
    }
    if (n.records_event) {
      events_[static_cast<std::size_t>(n.id)] = gpu_.record_event(s);
      if (stats_) ++stats_->events;
    }
  }
  trace.set_plan_node(-1);
}

void PlanExecutor::wait() {
  for (gpu::Stream* s : streams_) gpu_.synchronize(*s);
  events_.clear();
}

// --- Cost-model dry run ---

DryRunResult dry_run(const ExecutionPlan& plan, const gpu::DeviceProfile& profile,
                     const DryRunCost& cost) {
  DryRunResult out;
  sim::Simulator sim;
  sim::Engine h2d(sim, "h2d", profile.h2d_engines);
  std::unique_ptr<sim::Engine> d2h_sep;
  if (!profile.unified_copy_engine)
    d2h_sep = std::make_unique<sim::Engine>(sim, "d2h", profile.d2h_engines);
  sim::Engine& d2h = d2h_sep ? *d2h_sep : h2d;
  sim::Engine compute(sim, "compute", profile.max_concurrent_kernels);
  sim::Engine command(sim, "command", 1 << 20);

  const int live = cost.live_streams > 0 ? cost.live_streams : plan.num_streams;
  const SimTime sched =
      live > 1 ? profile.sched_overhead_per_stream * static_cast<double>(live - 1) : 0.0;

  SimTime host = 0.0;
  std::vector<sim::TaskPtr> tail(static_cast<std::size_t>(plan.num_streams));
  std::vector<sim::TaskPtr> event_task(plan.nodes.size());
  std::vector<const sim::Task*> seen;

  auto lane = [](int s) { return "s" + std::to_string(s); };
  std::vector<StringId> lane_ids(static_cast<std::size_t>(plan.num_streams));
  for (int s = 0; s < plan.num_streams; ++s)
    lane_ids[static_cast<std::size_t>(s)] = out.trace.intern(lane(s));

  auto submit = [&](int stream, sim::Engine& engine, SimTime dur, sim::SpanKind kind,
                    const std::string& label, Bytes bytes, std::int64_t node) {
    host += profile.api_call_host_overhead;
    if (&engine != &command) dur += sched;
    auto t = sim::Task::create(engine, dur, label);
    sim::TaskPtr& tl = tail[static_cast<std::size_t>(stream)];
    if (tl) t->depends_on(tl);
    t->set_span(out.trace, kind, lane_ids[static_cast<std::size_t>(stream)],
                out.trace.intern(label), bytes, node);
    t->submit(host);
    tl = t;
    return t;
  };

  auto wait_on = [&](int stream, const sim::TaskPtr& ev) {
    host += profile.api_call_host_overhead;
    auto t = sim::Task::create(command, 0.0, "wait-event(" + lane(stream) + ")");
    sim::TaskPtr& tl = tail[static_cast<std::size_t>(stream)];
    if (tl) t->depends_on(tl);
    t->depends_on(ev);
    t->submit(host);
    tl = std::move(t);
  };

  for (const PlanNode& n : plan.nodes) {
    if (n.op == PlanOp::Barrier) {
      for (int d : n.deps) {
        const int en = plan.nodes[static_cast<std::size_t>(d)].event_node;
        if (en >= 0 && event_task[static_cast<std::size_t>(en)])
          wait_on(n.stream, event_task[static_cast<std::size_t>(en)]);
      }
    } else {
      seen.clear();
      for (int d : n.deps) {
        const int en = plan.nodes[static_cast<std::size_t>(d)].event_node;
        if (en < 0) continue;
        const sim::TaskPtr& ev = event_task[static_cast<std::size_t>(en)];
        if (!ev) continue;
        if (plan.nodes[static_cast<std::size_t>(en)].stream == n.stream) continue;
        if (std::find(seen.begin(), seen.end(), ev.get()) != seen.end()) continue;
        seen.push_back(ev.get());
        wait_on(n.stream, ev);
      }
    }
    switch (n.op) {
      case PlanOp::H2D:
      case PlanOp::D2H: {
        const bool in = n.op == PlanOp::H2D;
        const bool pinned = plan.arrays[static_cast<std::size_t>(n.array)].pinned;
        for (const PlanSegment& seg : n.segments) {
          const Bytes total = seg.bytes();
          const double bw = profile.transfer_bandwidth(total, seg.width, pinned);
          const SimTime dur = profile.copy_setup_latency +
                              profile.copy_segment_latency *
                                  static_cast<double>(seg.height - 1) +
                              static_cast<double>(total) / bw;
          const char* what =
              in ? (seg.height > 1 ? "h2d2D" : "h2d") : (seg.height > 1 ? "d2h2D" : "d2h");
          submit(n.stream, in ? h2d : d2h, dur,
                 in ? sim::SpanKind::H2D : sim::SpanKind::D2H,
                 std::string(what) + "[" + std::to_string(total) + "B]", total, n.id);
        }
        break;
      }
      case PlanOp::Kernel: {
        const double iters = static_cast<double>(n.end - n.begin);
        SimTime dur = profile.kernel_launch_latency;
        Bytes kernel_bytes = 0;
        if (cost.flops_per_iter > 0.0 || cost.bytes_per_iter > 0.0) {
          const double fl = cost.flops_per_iter * iters;
          const double by = cost.bytes_per_iter * iters;
          dur += std::max(fl / profile.peak_flops, by / profile.mem_bandwidth);
          kernel_bytes = static_cast<Bytes>(by);
        } else {
          dur += cost.seconds_per_iter * iters;
        }
        submit(n.stream, compute, dur, sim::SpanKind::Kernel, n.label, kernel_bytes, n.id);
        break;
      }
      case PlanOp::P2pSend:
      case PlanOp::P2pRecv: {
        // Mirrors Gpu::memcpy_p2p_async / memcpy_d2d_async: both ride the
        // copy engine; the send crosses the bus at PCIe speed, the landing
        // is a local device-to-device move at memory bandwidth.
        const bool send = n.op == PlanOp::P2pSend;
        for (const PlanSegment& seg : n.segments) {
          const Bytes total = seg.bytes();
          const double bw = send ? profile.pcie_bandwidth : profile.mem_bandwidth;
          const SimTime dur =
              profile.copy_setup_latency + static_cast<double>(total) / bw;
          submit(n.stream, h2d, dur, sim::SpanKind::D2D,
                 std::string(send ? "p2p" : "d2d") + "[" + std::to_string(total) + "B]",
                 total, n.id);
        }
        break;
      }
      case PlanOp::DeviceHandoff: {
        // Both sides are local device-to-device moves between the ring and
        // the staging buffer (memcpy_d2d_async at memory bandwidth) — the
        // whole point of stitching is never crossing the PCIe bus.
        for (const PlanSegment& seg : n.segments) {
          const Bytes total = seg.bytes();
          const SimTime dur = profile.copy_setup_latency +
                              static_cast<double>(total) / profile.mem_bandwidth;
          submit(n.stream, h2d, dur, sim::SpanKind::D2D,
                 "handoff[" + std::to_string(total) + "B]", total, n.id);
        }
        break;
      }
      case PlanOp::SlotReuse:
      case PlanOp::Barrier:
        break;
    }
    if (n.records_event)
      event_task[static_cast<std::size_t>(n.id)] =
          submit(n.stream, command, 0.0, sim::SpanKind::Sync, "event(" + lane(n.stream) + ")",
                 0, n.id);
  }

  // Drain stream by stream exactly like PlanExecutor::wait: one API charge
  // per stream, and the host clock only advances when the tail is not yet
  // done (Gpu::wait_for's early return).
  for (sim::TaskPtr& tl : tail) {
    host += profile.api_call_host_overhead;
    if (tl && !tl->done()) {
      sim::Task* raw = tl.get();
      sim.run_until([raw] { return raw->done(); });
      host = std::max(host, sim.now());
    }
  }
  out.makespan = host;
  return out;
}

SimTime estimate_pipeline_runtime(const gpu::Gpu& g, PipelineSpec spec,
                                  const DryRunCost& cost, Bytes limit) {
  spec.validate();
  Bytes budget = limit == 0 ? g.device_mem_free() : std::min(limit, g.device_mem_free());
  const SolvedShape solved = solve_pipeline_shape(g, spec, budget);
  spec.chunk_size = solved.chunk_size;
  spec.num_streams = solved.num_streams;
  DryRunCost dc = cost;
  if (dc.live_streams == 0) dc.live_streams = solved.num_streams;
  // Keyed at the solved shape, not the requested one: admission retries with
  // shrinking budgets that solve to the same shape share one memo.
  return PlanCache::instance().estimate(g, spec, dc);
}

}  // namespace gpupipe::core
