#include "core/tile_pipeline.hpp"

#include <algorithm>

namespace gpupipe::core {

namespace {
constexpr std::int64_t round_up(std::int64_t v, std::int64_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

void TileArraySpec::validate() const {
  require(host != nullptr, "tile array '" + name + "': host pointer is null");
  require(elem_size > 0, "tile array '" + name + "': element size must be positive");
  require(rows > 0 && cols > 0, "tile array '" + name + "': extents must be positive");
  require(row_split.window >= 1 && col_split.window >= 1,
          "tile array '" + name + "': windows must be >= 1");
  require(row_split.start.scale >= 1 && col_split.start.scale >= 1,
          "tile array '" + name + "': tile starts must be increasing");
  if (map != MapType::To) {
    require(col_split.window <= col_split.start.scale,
            "tile array '" + name + "': output column windows may not overlap");
    require(row_split.window <= row_split.start.scale,
            "tile array '" + name + "': output row windows may not overlap");
  }
}

void TileSpec::validate() const {
  require(num_streams >= 1, "num_streams must be >= 1");
  require(ni >= 1 && nj >= 1, "tile loop extents must be >= 1");
  require(!arrays.empty(), "tile pipeline needs at least one mapped array");
  for (const auto& a : arrays) a.validate();
}

TilePipeline::TilePipeline(gpu::Gpu& gpu, TileSpec spec)
    : gpu_(gpu), spec_(std::move(spec)) {
  spec_.validate();
  for (int i = 0; i < spec_.num_streams; ++i)
    streams_.push_back(&gpu_.create_stream("tile" + std::to_string(i)));

  for (const auto& a : spec_.arrays) {
    ArrayState st;
    st.spec = a;
    // Row ring: one band's rows (bands serialise via the barrier).
    const std::int64_t ring_rows = std::min(a.rows, a.row_split.window);
    // Column ring: like the 1-D pipeline — in-flight tiles plus the halo,
    // aligned to the column stride to avoid mid-tile wraps.
    const std::int64_t stride_c = a.col_split.start.scale;
    const std::int64_t halo_c = std::max<std::int64_t>(0, a.col_split.window - stride_c);
    const std::int64_t ring_cols = std::min(
        a.cols, stride_c * spec_.num_streams + round_up(halo_c, stride_c));
    gpu::Pitched p = gpu_.device_malloc_pitched(
        static_cast<Bytes>(ring_cols) * a.elem_size, static_cast<Bytes>(ring_rows));
    st.buffer = p.ptr;
    st.view = TileBufferView{p.ptr, a.elem_size, p.pitch, ring_rows, ring_cols};
    st.col_reader.assign(static_cast<std::size_t>(ring_cols), {});
    st.col_drained.assign(static_cast<std::size_t>(ring_cols), {});
    arrays_.push_back(std::move(st));
  }
}

TilePipeline::~TilePipeline() {
  gpu_.synchronize();
  for (auto& a : arrays_) gpu_.device_free(a.buffer);
  for (auto* s : streams_) gpu_.destroy_stream(*s);
}

Bytes TilePipeline::buffer_footprint() const {
  Bytes total = 0;
  for (const auto& a : arrays_)
    total += a.view.pitch * static_cast<Bytes>(a.view.ring_rows);
  return total;
}

const TileBufferView& TilePipeline::view_of(std::string_view name) const {
  for (const auto& a : arrays_)
    if (a.spec.name == name) return a.view;
  throw Error("tile pipeline has no mapped array named '" + std::string(name) + "'");
}

const TileBufferView& TileContext::view(std::string_view array_name) const {
  return pipeline_->view_of(array_name);
}

void TilePipeline::copy_block(ArrayState& a, gpu::Stream& s, bool to_device,
                              std::int64_t rlo, std::int64_t rhi, std::int64_t clo,
                              std::int64_t chi, std::vector<gpu::MemRange>* ranges) {
  require(0 <= rlo && rlo < rhi && rhi <= a.spec.rows && 0 <= clo && clo < chi &&
              chi <= a.spec.cols,
          "tile array '" + a.spec.name + "': block outside the host matrix");
  const Bytes host_pitch = static_cast<Bytes>(a.spec.cols) * a.spec.elem_size;
  const TileBufferView& v = a.view;
  for (std::int64_t r = rlo; r < rhi;) {
    const std::int64_t slot_r = r % v.ring_rows;
    const std::int64_t nr = std::min(rhi - r, v.ring_rows - slot_r);
    for (std::int64_t c = clo; c < chi;) {
      const std::int64_t slot_c = c % v.ring_cols;
      const std::int64_t nc = std::min(chi - c, v.ring_cols - slot_c);
      std::byte* dev = v.base + static_cast<Bytes>(slot_r) * v.pitch +
                       static_cast<Bytes>(slot_c) * v.elem;
      std::byte* host = a.spec.host + static_cast<Bytes>(r) * host_pitch +
                        static_cast<Bytes>(c) * v.elem;
      const Bytes width = static_cast<Bytes>(nc) * v.elem;
      if (to_device) {
        gpu_.memcpy2d_h2d_async(dev, v.pitch, host, host_pitch, width,
                                static_cast<Bytes>(nr), s);
        h2d_bytes_ += width * static_cast<Bytes>(nr);
      } else {
        gpu_.memcpy2d_d2h_async(host, host_pitch, dev, v.pitch, width,
                                static_cast<Bytes>(nr), s);
      }
      if (ranges) ranges->push_back({dev, width, v.pitch, static_cast<Bytes>(nr)});
      c += nc;
    }
    r += nr;
  }
}

void TilePipeline::run(const TileKernelFactory& make_kernel) {
  std::vector<const gpu::GpuEvent*> seen;
  auto wait_distinct = [&](gpu::Stream& s, const std::pair<gpu::EventPtr, gpu::Stream*>& e) {
    if (!e.first || e.second == &s) return;
    if (std::find(seen.begin(), seen.end(), e.first.get()) != seen.end()) return;
    seen.push_back(e.first.get());
    gpu_.wait_event(s, e.first);
  };

  std::vector<gpu::EventPtr> prev_band_tails;
  std::int64_t tile_counter = 0;
  band_tail_scratch_.assign(streams_.size(), nullptr);

  for (std::int64_t i = 0; i < spec_.ni; ++i) {
    // Band start: column bookkeeping resets; the barrier below protects the
    // buffer rows the new band will overwrite.
    for (auto& a : arrays_) {
      a.copied_any = false;
      a.copied_hi = 0;
      a.col_event.clear();
      std::fill(a.col_reader.begin(), a.col_reader.end(),
                std::pair<gpu::EventPtr, gpu::Stream*>{});
      std::fill(a.col_drained.begin(), a.col_drained.end(),
                std::pair<gpu::EventPtr, gpu::Stream*>{});
    }
    std::vector<bool> barrier_done(streams_.size(), prev_band_tails.empty());
    std::vector<bool> used(streams_.size(), false);

    for (std::int64_t j = 0; j < spec_.nj; ++j, ++tile_counter) {
      const std::size_t si = static_cast<std::size_t>(tile_counter) % streams_.size();
      gpu::Stream& s = *streams_[si];
      used[si] = true;
      if (!barrier_done[si]) {
        seen.clear();
        for (const auto& ev : prev_band_tails)
          if (ev) gpu_.wait_event(s, ev);
        barrier_done[si] = true;
      }

      // ---- copy-in: new columns of every input's block ----
      bool copied = false;
      struct Fresh {
        ArrayState* array;
        std::int64_t lo, hi;
      };
      std::vector<Fresh> fresh;
      for (auto& a : arrays_) {
        if (!is_input(a)) continue;
        const std::int64_t rs = a.spec.row_split.start(i);
        const std::int64_t rh = rs + a.spec.row_split.window;
        const std::int64_t cs = a.spec.col_split.start(j);
        const std::int64_t ch = cs + a.spec.col_split.window;
        const std::int64_t n_lo = a.copied_any ? std::max(a.copied_hi, cs) : cs;
        if (n_lo < ch) {
          seen.clear();
          for (std::int64_t c = n_lo; c < ch; ++c)
            wait_distinct(s, a.col_reader[static_cast<std::size_t>(c % a.view.ring_cols)]);
          copy_block(a, s, /*to_device=*/true, rs, rh, n_lo, ch, nullptr);
          fresh.push_back({&a, n_lo, ch});
          copied = true;
        }
        a.copied_hi = std::max(a.copied_hi, ch);
        a.copied_any = true;
      }
      if (copied) {
        gpu::EventPtr ev = gpu_.record_event(s);
        for (const auto& f : fresh)
          for (std::int64_t c = f.lo; c < f.hi; ++c) f.array->col_event[c] = {ev, &s};
      }

      // ---- kernel dependencies ----
      seen.clear();
      for (auto& a : arrays_) {
        const std::int64_t cs = a.spec.col_split.start(j);
        const std::int64_t ch = cs + a.spec.col_split.window;
        if (is_input(a)) {
          for (std::int64_t c = cs; c < ch; ++c) {
            auto it = a.col_event.find(c);
            ensure(it != a.col_event.end(), "tile input column was never copied");
            wait_distinct(s, it->second);
          }
        }
        if (is_output(a)) {
          for (std::int64_t c = cs; c < ch; ++c)
            wait_distinct(s, a.col_drained[static_cast<std::size_t>(c % a.view.ring_cols)]);
        }
      }

      // ---- kernel ----
      const TileContext ctx(*this, i, j);
      gpu::KernelDesc desc = make_kernel(ctx);
      for (auto& a : arrays_) {
        const std::int64_t rs = a.spec.row_split.start(i);
        const std::int64_t rh = rs + a.spec.row_split.window;
        const std::int64_t cs = a.spec.col_split.start(j);
        const std::int64_t ch = cs + a.spec.col_split.window;
        // Reuse copy_block's wrap decomposition to declare precise ranges
        // (no transfer: collect the device ranges only).
        std::vector<gpu::MemRange> ranges;
        const TileBufferView& v = a.view;
        for (std::int64_t r = rs; r < rh;) {
          const std::int64_t slot_r = r % v.ring_rows;
          const std::int64_t nr = std::min(rh - r, v.ring_rows - slot_r);
          for (std::int64_t c = cs; c < ch;) {
            const std::int64_t slot_c = c % v.ring_cols;
            const std::int64_t nc = std::min(ch - c, v.ring_cols - slot_c);
            ranges.push_back({v.base + static_cast<Bytes>(slot_r) * v.pitch +
                                  static_cast<Bytes>(slot_c) * v.elem,
                              static_cast<Bytes>(nc) * v.elem, v.pitch,
                              static_cast<Bytes>(nr)});
            c += nc;
          }
          r += nr;
        }
        for (auto& rg : ranges) {
          if (is_input(a)) desc.effects.reads.push_back(rg);
          if (is_output(a)) desc.effects.writes.push_back(rg);
        }
      }
      if (desc.name == "kernel")
        desc.name = "tile(" + std::to_string(i) + "," + std::to_string(j) + ")";
      gpu_.launch(s, std::move(desc));
      gpu::EventPtr k_ev = gpu_.record_event(s);
      for (auto& a : arrays_) {
        if (!is_input(a)) continue;
        const std::int64_t cs = a.spec.col_split.start(j);
        const std::int64_t ch = cs + a.spec.col_split.window;
        for (std::int64_t c = cs; c < ch; ++c)
          a.col_reader[static_cast<std::size_t>(c % a.view.ring_cols)] = {k_ev, &s};
      }

      // ---- copy-out ----
      bool drained = false;
      for (auto& a : arrays_) {
        if (!is_output(a)) continue;
        const std::int64_t rs = a.spec.row_split.start(i);
        const std::int64_t rh = rs + a.spec.row_split.window;
        const std::int64_t cs = a.spec.col_split.start(j);
        const std::int64_t ch = cs + a.spec.col_split.window;
        copy_block(a, s, /*to_device=*/false, rs, rh, cs, ch, nullptr);
        drained = true;
      }
      gpu::EventPtr tail = drained ? gpu_.record_event(s) : k_ev;
      if (drained) {
        for (auto& a : arrays_) {
          if (!is_output(a)) continue;
          const std::int64_t cs = a.spec.col_split.start(j);
          const std::int64_t ch = cs + a.spec.col_split.window;
          for (std::int64_t c = cs; c < ch; ++c)
            a.col_drained[static_cast<std::size_t>(c % a.view.ring_cols)] = {tail, &s};
        }
      }

      // Track the band's last event per stream for the next band's barrier.
      band_tail_scratch_[si] = tail;
    }

    // Band end: next band's barrier waits on each used stream's last event.
    std::vector<gpu::EventPtr> tails;
    for (std::size_t k = 0; k < streams_.size(); ++k)
      if (used[k] && band_tail_scratch_[k]) tails.push_back(band_tail_scratch_[k]);
    prev_band_tails = std::move(tails);
    band_tail_scratch_.assign(streams_.size(), nullptr);
  }

  for (auto* s : streams_) gpu_.synchronize(*s);
}

}  // namespace gpupipe::core
