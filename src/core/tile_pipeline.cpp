#include "core/tile_pipeline.hpp"

#include <algorithm>

#include "core/layout.hpp"
#include "core/plan_opt.hpp"
#include "core/telemetry.hpp"

namespace gpupipe::core {

namespace {

/// PlanArrayBinding over a 2-D (pitched) tile ring buffer: ships each plan
/// segment as one pitched copy and reconstructs kernel-access device ranges
/// by the same wrap decomposition the builder used.
class TileBinding final : public PlanArrayBinding {
 public:
  TileBinding(gpu::Gpu& gpu, const TileArraySpec& spec, const TileBufferView& view)
      : gpu_(&gpu), spec_(&spec), view_(&view) {}

  int transfer(gpu::Stream& s, const PlanNode& n, bool to_device) override {
    const Bytes host_pitch = static_cast<Bytes>(spec_->cols) * spec_->elem_size;
    int transfers = 0;
    for (const PlanSegment& seg : n.segments) {
      std::byte* dev = view_->base + static_cast<Bytes>(seg.row_slot) * view_->pitch +
                       static_cast<Bytes>(seg.slot) * view_->elem;
      std::byte* host = spec_->host + static_cast<Bytes>(seg.row) * host_pitch +
                        static_cast<Bytes>(seg.index) * view_->elem;
      if (to_device) {
        gpu_->memcpy2d_h2d_async(dev, view_->pitch, host, host_pitch, seg.width, seg.height,
                                 s);
      } else {
        gpu_->memcpy2d_d2h_async(host, host_pitch, dev, view_->pitch, seg.width, seg.height,
                                 s);
      }
      ++transfers;
    }
    return transfers;
  }

  void append_ranges(std::vector<gpu::MemRange>& out, const PlanAccess& a) const override {
    for (std::int64_t r = a.row_lo; r < a.row_hi;) {
      const std::int64_t slot_r = r % view_->ring_rows;
      const std::int64_t nr = std::min(a.row_hi - r, view_->ring_rows - slot_r);
      for (std::int64_t c = a.lo; c < a.hi;) {
        const std::int64_t slot_c = c % view_->ring_cols;
        const std::int64_t nc = std::min(a.hi - c, view_->ring_cols - slot_c);
        out.push_back({view_->base + static_cast<Bytes>(slot_r) * view_->pitch +
                           static_cast<Bytes>(slot_c) * view_->elem,
                       static_cast<Bytes>(nc) * view_->elem, view_->pitch,
                       static_cast<Bytes>(nr)});
        c += nc;
      }
      r += nr;
    }
  }

 private:
  gpu::Gpu* gpu_;
  const TileArraySpec* spec_;
  const TileBufferView* view_;
};

}  // namespace

void TileArraySpec::validate() const {
  require(host != nullptr, "tile array '" + name + "': host pointer is null");
  require(elem_size > 0, "tile array '" + name + "': element size must be positive");
  require(rows > 0 && cols > 0, "tile array '" + name + "': extents must be positive");
  require(row_split.window >= 1 && col_split.window >= 1,
          "tile array '" + name + "': windows must be >= 1");
  require(row_split.start.scale >= 1 && col_split.start.scale >= 1,
          "tile array '" + name + "': tile starts must be increasing");
  if (map != MapType::To) {
    require(col_split.window <= col_split.start.scale,
            "tile array '" + name + "': output column windows may not overlap");
    require(row_split.window <= row_split.start.scale,
            "tile array '" + name + "': output row windows may not overlap");
  }
}

void TileSpec::validate() const {
  require(num_streams >= 1, "num_streams must be >= 1");
  require(opt_level >= 0 && opt_level <= 2, "opt_level must be 0, 1, or 2");
  require(ni >= 1 && nj >= 1, "tile loop extents must be >= 1");
  require(!arrays.empty(), "tile pipeline needs at least one mapped array");
  for (const auto& a : arrays) a.validate();
}

TilePipeline::TilePipeline(gpu::Gpu& gpu, TileSpec spec)
    : gpu_(gpu), spec_(std::move(spec)), executor_(gpu_, &stats_) {
  spec_.validate();
  for (int i = 0; i < spec_.num_streams; ++i)
    streams_.push_back(&gpu_.create_stream("tile" + std::to_string(i)));

  std::vector<PlanArrayBinding*> bindings;
  bindings.reserve(spec_.arrays.size());
  arrays_.reserve(spec_.arrays.size());  // bindings point into the elements
  for (const auto& a : spec_.arrays) {
    ArrayState st;
    st.spec = a;
    // Row ring: one band's rows (bands serialise via the barrier).
    const std::int64_t ring_rows = std::min(a.rows, a.row_split.window);
    // Column ring: like the 1-D pipeline — in-flight tiles plus the halo,
    // aligned to the column stride to avoid mid-tile wraps.
    const std::int64_t stride_c = a.col_split.start.scale;
    const std::int64_t halo_c = layout::halo(a.col_split.window, stride_c);
    const std::int64_t ring_cols = std::min(
        a.cols, stride_c * spec_.num_streams + layout::round_up(halo_c, stride_c));
    gpu::Pitched p = gpu_.device_malloc_pitched(
        static_cast<Bytes>(ring_cols) * a.elem_size, static_cast<Bytes>(ring_rows));
    st.buffer = p.ptr;
    st.view = TileBufferView{p.ptr, a.elem_size, p.pitch, ring_rows, ring_cols};
    index_.emplace(a.name, arrays_.size());
    arrays_.push_back(std::move(st));
    arrays_.back().binding =
        std::make_unique<TileBinding>(gpu_, arrays_.back().spec, arrays_.back().view);
    bindings.push_back(arrays_.back().binding.get());
  }
  executor_.bind(streams_, std::move(bindings));
}

TilePipeline::~TilePipeline() {
  gpu_.synchronize();
  for (auto& a : arrays_) gpu_.device_free(a.buffer);
  for (auto* s : streams_) gpu_.destroy_stream(*s);
}

Bytes TilePipeline::buffer_footprint() const {
  Bytes total = 0;
  for (const auto& a : arrays_)
    total += a.view.pitch * static_cast<Bytes>(a.view.ring_rows);
  return total;
}

const TileBufferView& TilePipeline::view_of(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end())
    throw Error("tile pipeline has no mapped array named '" + std::string(name) + "'");
  return arrays_[it->second].view;
}

const TileBufferView& TileContext::view(std::string_view array_name) const {
  return pipeline_->view_of(array_name);
}

void TilePipeline::run(const TileKernelFactory& make_kernel) {
  // Compiled fresh per run so block-range errors surface here, mirroring the
  // runtime semantics of the hand-issued schedule this replaced.
  TileBuildState state;
  state.ring_rows.reserve(arrays_.size());
  state.ring_cols.reserve(arrays_.size());
  state.pinned.reserve(arrays_.size());
  for (const auto& a : arrays_) {
    state.ring_rows.push_back(a.view.ring_rows);
    state.ring_cols.push_back(a.view.ring_cols);
    state.pinned.push_back(gpu_.is_pinned(a.spec.host));
  }
  plan_ = PlanBuilder::tiles(spec_, state);
  opt_report_ = optimize_plan(plan_, spec_.opt_level);
  if (gpu_.hazards().enabled()) plan_.validate();
  executor_.run(plan_, [this, &make_kernel](const PlanNode& n) {
    const TileContext ctx(*this, n.tile_i, n.tile_j);
    return make_kernel(ctx);
  });
}

void TilePipeline::collect_metrics(telemetry::Registry& reg,
                                   const std::string& prefix) const {
  collect_plan_metrics(reg, plan_, prefix);
  collect_stats_metrics(reg, stats_, prefix);
  collect_opt_metrics(reg, opt_report_, prefix);
  collect_sim_metrics(reg, gpu_.context()->sim, prefix);
  const std::string p = prefix + "pipeline.";
  reg.gauge(p + "num_streams").set(static_cast<double>(effective_streams()));
  reg.gauge(p + "buffer_footprint_bytes").set(static_cast<double>(buffer_footprint()));
}

}  // namespace gpupipe::core
