#include "core/autotune.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "core/model.hpp"

namespace gpupipe::core {

TuneResult autotune(gpu::Gpu& g, PipelineSpec spec, const KernelFactory& make_kernel,
                    const TuneOptions& options) {
  spec.validate();
  require(spec.schedule == ScheduleKind::Static, "autotune requires the static schedule");
  require(!options.chunk_candidates.empty() && !options.stream_candidates.empty(),
          "autotune needs candidates");

  // Probe once (chunk 1, one stream) to seed the cost model's kernel term.
  // A dry run with an analytic kernel_cost needs no probe — and therefore
  // no device interaction at all.
  SimTime per_iter_kernel = 0.0;
  if (!(options.dry_run && options.kernel_cost)) {
    PipelineSpec probe_spec = spec;
    probe_spec.chunk_size = 1;
    probe_spec.num_streams = 1;
    probe_spec.loop_end = std::min(spec.loop_end, spec.loop_begin + 1);
    Pipeline probe(g, probe_spec);
    probe.run(make_kernel);
    // The kernel was the only compute op in the probe region.
    SimTime launch = g.profile().kernel_launch_latency;
    for (const auto& span : g.trace().spans()) {
      if (span.kind == sim::SpanKind::Kernel)
        per_iter_kernel = std::max(per_iter_kernel, span.duration() - launch);
    }
  }

  // Cost-model-only sweep: score every candidate by replaying its plan
  // through a private simulation. No buffers, no kernels, no allocations.
  if (options.dry_run) {
    const Bytes limit = spec.mem_limit ? std::min(*spec.mem_limit, g.device_mem_free())
                                       : g.device_mem_free();
    TuneResult result;
    result.best_time = std::numeric_limits<SimTime>::infinity();
    for (auto c : options.chunk_candidates) {
      for (int s : options.stream_candidates) {
        TuneCandidate cand{c, s, std::numeric_limits<SimTime>::infinity(), true};
        PipelineSpec trial = spec;
        trial.chunk_size = c;
        trial.num_streams = s;
        try {
          const auto [ec, es] = solve_pipeline_memory(g, trial, limit);
          if (ec != c || es != s) {
            // The memory limit would reshape the config; skip duplicates.
            cand.feasible = false;
          } else {
            DryRunCost cost;
            if (options.kernel_cost) {
              cost.flops_per_iter = options.kernel_cost->flops_per_iter;
              cost.bytes_per_iter = options.kernel_cost->bytes_per_iter;
            } else {
              cost.seconds_per_iter = per_iter_kernel;
            }
            cost.live_streams = s;
            cand.measured =
                dry_run(PlanBuilder::pipeline(g, trial), g.profile(), cost).makespan;
          }
        } catch (const gpu::OomError&) {
          cand.feasible = false;
        }
        if (cand.feasible && cand.measured < result.best_time) {
          result.best_time = cand.measured;
          result.chunk_size = c;
          result.num_streams = s;
        }
        result.explored.push_back(cand);
      }
    }
    require(result.best_time < std::numeric_limits<SimTime>::infinity(),
            "autotune found no feasible configuration");
    return result;
  }

  const CostModel model(g.profile(), spec, per_iter_kernel);

  // Model pre-filter: drop chunk candidates predicted far off the best.
  std::vector<std::int64_t> chunks = options.chunk_candidates;
  if (options.model_prefilter) {
    SimTime best_pred = std::numeric_limits<SimTime>::infinity();
    for (auto c : chunks) best_pred = std::min(best_pred, model.region_time(c));
    std::erase_if(chunks, [&](std::int64_t c) {
      const bool prune = model.region_time(c) > options.prune_factor * best_pred;
      if (prune)
        log_debug("autotune: pruning chunk ", c, " (predicted ", model.region_time(c),
                  "s vs best ", best_pred, "s)");
      return prune;
    });
    if (chunks.empty()) chunks = options.chunk_candidates;  // never prune to nothing
  }

  TuneResult result;
  result.best_time = std::numeric_limits<SimTime>::infinity();
  for (auto c : chunks) {
    for (int s : options.stream_candidates) {
      TuneCandidate cand{c, s, std::numeric_limits<SimTime>::infinity(), true};
      PipelineSpec trial = spec;
      trial.chunk_size = c;
      trial.num_streams = s;
      try {
        Pipeline p(g, trial);
        if (p.effective_chunk_size() != c || p.effective_streams() != s) {
          // The memory limit silently reshaped the config; skip duplicates.
          cand.feasible = false;
        } else {
          const SimTime t0 = g.host_now();
          p.run(make_kernel);
          cand.measured = g.host_now() - t0;
        }
      } catch (const gpu::OomError&) {
        cand.feasible = false;
      }
      if (cand.feasible && cand.measured < result.best_time) {
        result.best_time = cand.measured;
        result.chunk_size = c;
        result.num_streams = s;
      }
      result.explored.push_back(cand);
    }
  }
  require(result.best_time < std::numeric_limits<SimTime>::infinity(),
          "autotune found no feasible configuration");
  return result;
}

}  // namespace gpupipe::core
