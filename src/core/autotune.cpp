#include "core/autotune.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "core/model.hpp"
#include "core/plan_cache.hpp"

namespace gpupipe::core {

namespace {

/// Dedupe preserving first-occurrence order; chunk candidates above the trip
/// count collapse to one trip-sized candidate first (every oversized chunk
/// plans the identical single-chunk schedule, so sweeping them repeats the
/// same measurement).
std::vector<std::int64_t> normalize_chunks(const std::vector<std::int64_t>& in,
                                           std::int64_t trip) {
  const std::int64_t cap = std::max<std::int64_t>(trip, 1);
  std::vector<std::int64_t> out;
  out.reserve(in.size());
  for (std::int64_t c : in) {
    c = std::min(c, cap);
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

std::vector<int> normalize_streams(const std::vector<int>& in) {
  std::vector<int> out;
  out.reserve(in.size());
  for (int s : in)
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  return out;
}

int dry_worker_count(int tune_jobs, std::size_t total) {
  int jobs = tune_jobs;
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = static_cast<int>(std::clamp(hw, 1u, 8u));
  }
  return static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), total));
}

}  // namespace

TuneResult autotune(gpu::Gpu& g, PipelineSpec spec, const KernelFactory& make_kernel,
                    const TuneOptions& options) {
  spec.validate();
  require(spec.schedule == ScheduleKind::Static, "autotune requires the static schedule");
  require(!options.chunk_candidates.empty() && !options.stream_candidates.empty(),
          "autotune needs candidates");

  const std::vector<std::int64_t> chunks =
      normalize_chunks(options.chunk_candidates, spec.loop_end - spec.loop_begin);
  const std::vector<int> streams = normalize_streams(options.stream_candidates);

  // Probe once (chunk 1, one stream) to seed the cost model's kernel term —
  // but only when something consumes the seed: a dry sweep scoring with
  // measured seconds-per-iteration (no analytic kernel_cost), or a measured
  // sweep whose prefilter has at least two distinct chunks to rank. When
  // every oversized candidate collapsed to one chunk there is nothing left
  // to prune, so the probe execution is skipped too.
  const bool need_probe = options.dry_run
                              ? !options.kernel_cost
                              : options.model_prefilter && chunks.size() > 1;
  SimTime per_iter_kernel = 0.0;
  if (need_probe) {
    PipelineSpec probe_spec = spec;
    probe_spec.chunk_size = 1;
    probe_spec.num_streams = 1;
    probe_spec.loop_end = std::min(spec.loop_end, spec.loop_begin + 1);
    Pipeline probe(g, probe_spec);
    probe.run(make_kernel);
    // The kernel was the only compute op in the probe region.
    SimTime launch = g.profile().kernel_launch_latency;
    for (const auto& span : g.trace().spans()) {
      if (span.kind == sim::SpanKind::Kernel)
        per_iter_kernel = std::max(per_iter_kernel, span.duration() - launch);
    }
  }

  // Cost-model-only sweep: score every candidate by replaying its plan
  // through a private simulation. No buffers, no kernels, no allocations —
  // and no shared state between candidates, so the sweep parallelizes
  // across tune_jobs workers. Results land in serial candidate order and
  // the reduction below replays that order, so the TuneResult (explored
  // order included) is bit-identical to the serial sweep.
  if (options.dry_run) {
    const Bytes limit = spec.mem_limit ? std::min(*spec.mem_limit, g.device_mem_free())
                                       : g.device_mem_free();
    // The probe's seed (or the analytic hint) is shared by every worker.
    DryRunCost base;
    if (options.kernel_cost) {
      base.flops_per_iter = options.kernel_cost->flops_per_iter;
      base.bytes_per_iter = options.kernel_cost->bytes_per_iter;
    } else {
      base.seconds_per_iter = per_iter_kernel;
    }

    const std::size_t total = chunks.size() * streams.size();
    std::vector<TuneCandidate> cands(total);
    auto score = [&](std::size_t idx) {
      const std::int64_t c = chunks[idx / streams.size()];
      const int s = streams[idx % streams.size()];
      TuneCandidate cand{c, s, std::numeric_limits<SimTime>::infinity(), true};
      PipelineSpec trial = spec;
      trial.chunk_size = c;
      trial.num_streams = s;
      try {
        const SolvedShape solved = solve_pipeline_shape(g, trial, limit);
        if (solved.chunk_size != c || solved.num_streams != s) {
          // The memory limit would reshape the config; skip duplicates.
          cand.feasible = false;
        } else {
          DryRunCost cost = base;
          cost.live_streams = s;
          cand.measured = PlanCache::instance().estimate(g, trial, cost);
        }
      } catch (const gpu::OomError&) {
        cand.feasible = false;
      }
      cands[idx] = cand;
    };

    const int jobs = dry_worker_count(options.tune_jobs, total);
    if (jobs > 1) {
      std::atomic<std::size_t> next{0};
      std::mutex err_mu;
      std::exception_ptr err;
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(jobs));
      for (int t = 0; t < jobs; ++t)
        pool.emplace_back([&] {
          for (;;) {
            const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= total) return;
            try {
              score(idx);
            } catch (...) {
              std::lock_guard<std::mutex> lock(err_mu);
              if (!err) err = std::current_exception();
              return;
            }
          }
        });
      for (auto& th : pool) th.join();
      if (err) std::rethrow_exception(err);
    } else {
      for (std::size_t idx = 0; idx < total; ++idx) score(idx);
    }

    TuneResult result;
    result.best_time = std::numeric_limits<SimTime>::infinity();
    result.explored = std::move(cands);
    for (const TuneCandidate& cand : result.explored) {
      if (cand.feasible && cand.measured < result.best_time) {
        result.best_time = cand.measured;
        result.chunk_size = cand.chunk_size;
        result.num_streams = cand.num_streams;
      }
    }
    require(result.best_time < std::numeric_limits<SimTime>::infinity(),
            "autotune found no feasible configuration");
    return result;
  }

  // Model pre-filter: drop chunk candidates predicted far off the best.
  std::vector<std::int64_t> swept = chunks;
  if (options.model_prefilter && chunks.size() > 1) {
    const CostModel model(g.profile(), spec, per_iter_kernel);
    SimTime best_pred = std::numeric_limits<SimTime>::infinity();
    for (auto c : swept) best_pred = std::min(best_pred, model.region_time(c));
    std::erase_if(swept, [&](std::int64_t c) {
      const bool prune = model.region_time(c) > options.prune_factor * best_pred;
      if (prune)
        log_debug("autotune: pruning chunk ", c, " (predicted ", model.region_time(c),
                  "s vs best ", best_pred, "s)");
      return prune;
    });
    if (swept.empty()) swept = chunks;  // never prune to nothing
  }

  TuneResult result;
  result.best_time = std::numeric_limits<SimTime>::infinity();
  for (auto c : swept) {
    for (int s : streams) {
      TuneCandidate cand{c, s, std::numeric_limits<SimTime>::infinity(), true};
      PipelineSpec trial = spec;
      trial.chunk_size = c;
      trial.num_streams = s;
      try {
        Pipeline p(g, trial);
        if (p.effective_chunk_size() != c || p.effective_streams() != s) {
          // The memory limit silently reshaped the config; skip duplicates.
          cand.feasible = false;
        } else {
          const SimTime t0 = g.host_now();
          p.run(make_kernel);
          cand.measured = g.host_now() - t0;
        }
      } catch (const gpu::OomError&) {
        cand.feasible = false;
      }
      if (cand.feasible && cand.measured < result.best_time) {
        result.best_time = cand.measured;
        result.chunk_size = cand.chunk_size;
        result.num_streams = cand.num_streams;
      }
      result.explored.push_back(cand);
    }
  }
  require(result.best_time < std::numeric_limits<SimTime>::infinity(),
          "autotune found no feasible configuration");
  return result;
}

}  // namespace gpupipe::core
