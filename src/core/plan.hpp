// The plan/execute split: an explicit op-graph IR for pipelined regions.
//
// The paper's runtime is a scheduler over a graph of H2D copies, kernel
// launches, and D2H copies with ring-buffer slot-reuse dependencies. This
// header reifies that graph as an ExecutionPlan — a DAG of typed nodes with
// explicit dependency edges, stream assignments, ring-slot bindings, and
// per-node byte/flop costs — so that
//   * one generic PlanExecutor replays any plan against gpu::Gpu (Pipeline,
//     TilePipeline, and MultiPipeline all delegate to it; none issues raw
//     stream operations itself),
//   * the hazard checker can statically prove the schedule race-free before
//     a single operation is issued (ExecutionPlan::validate),
//   * the autotuner can score (chunk_size, num_streams) candidates with a
//     cost-model dry run over the plan — no kernels, no buffers (dry_run),
//   * tools can dump the graph as DOT or a planned timeline as Chrome-trace
//     JSON (to_dot / dry_run's trace) for inspection.
//
// Node order is host-enqueue order, every chunk's copies share one recorded
// event (the node with records_event=true; the others point at it through
// event_node), and the executor reproduces the original wait deduplication
// rules. Builders emit the naive schedule (every chunk uploads its full
// window); the pass pipeline in core/plan_opt.hpp then elides resident halo
// bytes, coalesces segments, and optionally rebalances streams — at the
// default opt level the optimized plan matches the legacy hand-issued
// schedule node for node, so stats and virtual-clock timings are unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "core/spec.hpp"
#include "gpu/gpu.hpp"
#include "sim/trace.hpp"

namespace gpupipe::core {

struct TileSpec;

/// Operation type of one plan node.
enum class PlanOp {
  H2D,       ///< host->device transfer of a split-index range
  Kernel,    ///< one chunk's (or tile's) kernel launch
  D2H,       ///< device->host transfer of a split-index range
  SlotReuse, ///< waits guarding a ring-slot overwrite (no device work)
  Barrier,   ///< cross-stream join (tile band transition; no device work)
  P2pSend,   ///< device->peer-device halo push of this plan's ring data
  P2pRecv,   ///< peer-device->ring halo landing (replaces a host upload)
  DeviceHandoff, ///< device-resident inter-job handoff (replaces D2H/H2D)
};

inline const char* to_string(PlanOp op) {
  switch (op) {
    case PlanOp::H2D: return "H2D";
    case PlanOp::Kernel: return "Kernel";
    case PlanOp::D2H: return "D2H";
    case PlanOp::SlotReuse: return "SlotReuse";
    case PlanOp::Barrier: return "Barrier";
    case PlanOp::P2pSend: return "P2pSend";
    case PlanOp::P2pRecv: return "P2pRecv";
    case PlanOp::DeviceHandoff: return "DeviceHandoff";
  }
  return "?";
}

/// One physical transfer piece of an H2D/D2H node after ring-wrap
/// decomposition: `count` split indices landing in slots
/// [slot, slot + count), shipped as `height` rows of `width` bytes.
struct PlanSegment {
  std::int64_t slot = 0;
  std::int64_t index = 0;
  std::int64_t count = 0;
  std::int64_t row_slot = 0;  ///< tile plans: first buffer row of the piece
  std::int64_t row = 0;       ///< tile plans: first host row of the piece
  std::int64_t rows = 1;      ///< tile plans: rows in this piece
  Bytes width = 0;            ///< contiguous bytes per row
  Bytes height = 1;           ///< rows the copy engine sees
  Bytes bytes() const { return width * height; }
};

/// One declared access of a kernel node, in split-index space (and, for
/// tile plans, a host row range). The executor turns it into precise device
/// MemRanges through the array binding; validate() reduces it to ring-slot
/// ranges.
struct PlanAccess {
  int array = -1;
  std::int64_t lo = 0;  ///< split-index (column) range [lo, hi)
  std::int64_t hi = 0;
  std::int64_t row_lo = 0;  ///< tile plans: host row range [row_lo, row_hi)
  std::int64_t row_hi = 0;
  bool write = false;
};

/// One node of the op graph.
struct PlanNode {
  int id = 0;
  PlanOp op = PlanOp::Kernel;
  int stream = 0;   ///< issuing stream (round-robin slot, not a gpu id)
  int array = -1;   ///< mapped-array index for H2D/D2H/SlotReuse
  std::int64_t chunk = -1;  ///< chunk (or tile) counter the node belongs to
  /// H2D/D2H: the split-index range moved. Kernel: the loop-iteration
  /// subrange. SlotReuse: the incoming range whose slots are being reused.
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t row_begin = 0;  ///< tile plans: host row range of the block
  std::int64_t row_end = 0;
  std::int64_t tile_i = -1;  ///< tile plans: tile coordinates
  std::int64_t tile_j = -1;
  /// Ids of earlier nodes this node waits on, in wait-issue order.
  std::vector<int> deps;
  std::vector<PlanSegment> segments;  ///< transfer pieces (H2D/D2H)
  std::vector<PlanAccess> accesses;   ///< declared effects (Kernel)
  double flops = 0.0;  ///< optional cost annotation
  Bytes bytes = 0;     ///< payload bytes (transfers; feeds stats/costs)
  /// True on the node that records this group's completion event (one per
  /// chunk copy group / kernel / drain group).
  bool records_event = false;
  /// Id of the node whose recorded event represents this node's completion
  /// (a chunk's copies all share the last copy's event); -1 for nodes with
  /// no device work (SlotReuse/Barrier).
  int event_node = -1;
  /// P2pSend/P2pRecv: the neighbouring shard on the other end of the halo
  /// link (a shard index, not a device id — the exchange resolves it).
  int peer = -1;
  std::string label;
};

/// Per-array metadata a plan carries (enough to validate and cost it
/// without the spec that produced it).
struct PlanArrayInfo {
  std::string name;
  MapType map = MapType::To;
  std::int64_t ring_len = 1;   ///< ring slots (columns for tile plans)
  std::int64_t ring_rows = 1;  ///< buffer rows (tile plans; 1 for 1-D rings)
  Bytes unit_bytes = 0;        ///< bytes per split index
  bool pinned = true;          ///< host side pinned (transfer bandwidth)
  /// Inter-job stitching wiring: >= 0 marks the array as flowing through a
  /// device-resident handoff link instead of the host (see spec.hpp's
  /// ArrayHandoff). The stitch pass rewrites this array's D2H tail
  /// (handoff_out) or H2D head (!handoff_out) into DeviceHandoff nodes.
  int handoff_link = -1;
  bool handoff_out = false;    ///< true: produce side; false: consume side
};

/// Execution counters for one or more run() calls.
struct PipelineStats {
  std::int64_t chunks = 0;
  std::int64_t h2d_copies = 0;
  std::int64_t d2h_copies = 0;
  Bytes h2d_bytes = 0;
  Bytes d2h_bytes = 0;
  std::int64_t kernels = 0;
  std::int64_t events = 0;
  std::int64_t stream_waits = 0;
  std::int64_t p2p_copies = 0;  ///< P2pSend/P2pRecv nodes issued
  Bytes p2p_bytes = 0;          ///< halo bytes pushed device-to-device
  std::int64_t handoff_copies = 0;  ///< DeviceHandoff nodes issued
  Bytes handoff_bytes = 0;          ///< bytes kept device-resident per side
};

/// The complete op graph of one region execution. Nodes are listed in
/// host-enqueue order (every dep precedes its dependent); nodes sharing a
/// stream execute in list order.
struct ExecutionPlan {
  std::vector<PlanNode> nodes;
  std::vector<PlanArrayInfo> arrays;
  int num_streams = 1;
  std::int64_t chunk_size = 1;
  std::string origin = "pipeline";  ///< builder tag (DOT title)

  /// Total payload bytes of the nodes with the given op (e.g. the plan's
  /// post-optimization H2D volume). After optimization node bytes equal the
  /// sum of their segment bytes, so this matches what executing the plan
  /// actually transfers.
  Bytes transfer_bytes(PlanOp op) const {
    Bytes total = 0;
    for (const PlanNode& n : nodes)
      if (n.op == op) total += n.bytes;
    return total;
  }

  /// Static hazard validation: proves every pair of conflicting ring-slot
  /// accesses is ordered by stream order + dependency edges. Throws
  /// gpu::HazardError on a missing edge (e.g. a deleted slot-reuse
  /// dependency) — before anything executes.
  void validate() const;

  /// Writes the op graph in Graphviz DOT form (one cluster per stream,
  /// dependency edges between nodes).
  void to_dot(std::ostream& os) const;
};

/// Executor-state inputs PlanBuilder::pipeline needs to mirror the real
/// buffers: the (clamped) ring length and host pinned-ness per array, plus
/// the chunk-counter offset (non-zero when planning the remainder of an
/// adaptively re-chunked loop).
struct PipelineBuildState {
  std::vector<std::int64_t> ring_lens;
  std::vector<bool> pinned;
  std::int64_t first_chunk = 0;
};

/// Same for PlanBuilder::tiles: the 2-D ring extents per array.
struct TileBuildState {
  std::vector<std::int64_t> ring_rows;
  std::vector<std::int64_t> ring_cols;
  std::vector<bool> pinned;
};

/// A multi-device region: one PipelineSpec plus the per-device share of the
/// split loop (positive weights, one per device).
struct MultiSpec {
  PipelineSpec spec;
  std::vector<double> weights;
};

/// Compiles region specs into ExecutionPlans. Pure arithmetic — never
/// touches a device.
class PlanBuilder {
 public:
  /// Plans iterations [from, to) of `spec` at the given chunk/stream shape,
  /// against buffers described by `state`.
  static ExecutionPlan pipeline(const PipelineSpec& spec, std::int64_t chunk_size,
                                int num_streams, std::int64_t from, std::int64_t to,
                                const PipelineBuildState& state);

  /// Predicted-buffer convenience: plans the full loop of `spec` at its own
  /// chunk_size/num_streams, with ring lengths derived from the layout
  /// formulas and hosts assumed pinned (no device needed — used by tools
  /// and the dry-run autotuner before any allocation exists).
  static ExecutionPlan pipeline(const PipelineSpec& spec);
  /// Same, but reads host pinned-ness from `g` (still no allocations).
  static ExecutionPlan pipeline(const gpu::Gpu& g, const PipelineSpec& spec);

  /// Plans a 2-D tiled region (declared in core/tile_pipeline.hpp).
  static ExecutionPlan tiles(const TileSpec& spec, const TileBuildState& state);

  /// Plans a multi-device region: slices the split loop by `weights` (see
  /// layout::partition_weighted) and returns one predicted plan per device
  /// (empty plan for an empty slice).
  static std::vector<ExecutionPlan> multi(const MultiSpec& ms);
};

/// One shard of a multi-device decomposition: a contiguous slice
/// [begin, end) of the split loop plus the sub-spec (shard halos wired)
/// whose plan runs it on one device.
struct ShardSlice {
  int shard = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  PipelineSpec spec;
};

/// Slices `spec`'s loop across shards by `weights` (granule = chunk_size;
/// zero-weight / empty slices are dropped and shard indices renumbered) and
/// wires ShardHalo entries between neighbours for every input array whose
/// window overhangs its stride: the overhang of shard s's trailing windows
/// lands via P2P from shard s+1 instead of a host upload, and shard s+1
/// pushes the overlapping head of its own (host-uploaded) first window.
/// Requires a static schedule and dim-0 affine splits throughout.
std::vector<ShardSlice> shard_pipeline_specs(const PipelineSpec& spec,
                                             const std::vector<double>& weights);

/// Mirrors Pipeline's memory-limit solving without allocating anything:
/// shrinks chunk_size (then num_streams) until the predicted ring
/// footprints fit `limit`. Throws gpu::OomError when even (1, 1) does not.
std::pair<std::int64_t, int> solve_pipeline_memory(const gpu::Gpu& g,
                                                   const PipelineSpec& spec, Bytes limit);

/// A memory-solved pipeline shape plus the footprint it was accepted at.
struct SolvedShape {
  std::int64_t chunk_size = 1;
  int num_streams = 1;
  Bytes footprint = 0;  ///< predicted footprint at (chunk_size, num_streams)
};

/// solve_pipeline_memory, but also returns the footprint of the final shape
/// so callers that need both (the admission controller commits exactly what
/// the solver accepted) pay for one lookup instead of two.
SolvedShape solve_pipeline_shape(const gpu::Gpu& g, const PipelineSpec& spec, Bytes limit);

/// Predicted total device ring-buffer footprint of `spec` at the given
/// chunk/stream shape — exactly what constructing a Pipeline at that shape
/// would allocate. Pure arithmetic; the admission controller uses it to
/// commit memory before any buffer exists.
Bytes predicted_pipeline_footprint(const gpu::Gpu& g, const PipelineSpec& spec,
                                   std::int64_t chunk_size, int num_streams);

/// How a PlanExecutor reaches one mapped array's device buffer.
class PlanArrayBinding {
 public:
  virtual ~PlanArrayBinding() = default;
  /// Issues the transfers of an H2D/D2H node on `s`; returns the number of
  /// copy calls made.
  virtual int transfer(gpu::Stream& s, const PlanNode& n, bool to_device) = 0;
  /// Appends the device ranges a kernel access covers (hazard effects).
  virtual void append_ranges(std::vector<gpu::MemRange>& out, const PlanAccess& a) const = 0;
};

/// Binding for the 1-D pipeline's RingBuffer.
class RingBufferBinding final : public PlanArrayBinding {
 public:
  explicit RingBufferBinding(RingBuffer& ring) : ring_(&ring) {}
  int transfer(gpu::Stream& s, const PlanNode& n, bool to_device) override {
    // Segment-driven: optimized nodes may cover less than [begin, end) (the
    // resident halo was elided) or fuse wrap pieces differently, so the
    // segments are the authoritative description of what moves.
    for (const auto& seg : n.segments) {
      if (to_device)
        ring_->copy_in_run(s, seg.slot, seg.index, seg.count);
      else
        ring_->copy_out_run(s, seg.slot, seg.index, seg.count);
    }
    return static_cast<int>(n.segments.size());
  }
  void append_ranges(std::vector<gpu::MemRange>& out, const PlanAccess& a) const override {
    ring_->append_ranges(out, a.lo, a.hi);
  }

 private:
  RingBuffer* ring_;
};

/// Builds the KernelDesc for a Kernel node (the executor adds the mapped
/// arrays' memory effects and the default name itself).
using PlanKernelMaker = std::function<gpu::KernelDesc(const PlanNode&)>;

/// Issues the device work of P2pSend/P2pRecv/DeviceHandoff nodes. The
/// executor cannot do this itself — a halo or handoff link crosses plans
/// (and possibly devices), so the sharding runtime (src/sched/shard.*) or
/// the stitching runtime (src/sched/scheduler.*) binds an exchange that
/// knows both ends' buffers and the staging area between them. Executing a
/// plan containing such nodes without an exchange bound is an error.
class PlanExchange {
 public:
  virtual ~PlanExchange() = default;
  /// Called in enqueue order on the node's own stream; must issue the
  /// copies asynchronously (stream-ordered) like any other plan node.
  virtual void issue(gpu::Gpu& g, gpu::Stream& s, const PlanNode& n) = 0;
};

/// Replays an ExecutionPlan against a Gpu: issues transfers through the
/// array bindings, records/waits events exactly as the node graph
/// prescribes, and accumulates PipelineStats. One executor instance is
/// reused across runs; bind() re-points it at the current streams/buffers.
class PlanExecutor {
 public:
  PlanExecutor(gpu::Gpu& gpu, PipelineStats* stats) : gpu_(gpu), stats_(stats) {}

  /// Binds the stream set and per-array buffers the next enqueue() uses
  /// (plan array/stream indices index into these vectors).
  void bind(std::vector<gpu::Stream*> streams, std::vector<PlanArrayBinding*> arrays);

  /// Binds the halo exchange P2pSend/P2pRecv nodes dispatch to (nullptr to
  /// unbind). The exchange must outlive every enqueue() that uses it.
  void set_exchange(PlanExchange* exchange) { exchange_ = exchange; }

  /// Issues every node of `plan` without blocking.
  void enqueue(const ExecutionPlan& plan, const PlanKernelMaker& make_kernel);
  /// Drains the bound streams (in order) and drops event bookkeeping.
  void wait();
  void run(const ExecutionPlan& plan, const PlanKernelMaker& make_kernel) {
    enqueue(plan, make_kernel);
    wait();
  }

  /// The most recent kernel task (adaptive probe reads its duration).
  const sim::TaskPtr& last_kernel() const { return last_kernel_; }

 private:
  void issue_waits(const ExecutionPlan& plan, const PlanNode& n, gpu::Stream& s);

  gpu::Gpu& gpu_;
  PipelineStats* stats_;
  PlanExchange* exchange_ = nullptr;
  std::vector<gpu::Stream*> streams_;
  std::vector<PlanArrayBinding*> arrays_;
  std::vector<gpu::EventPtr> events_;  // indexed by node id
  std::vector<const gpu::GpuEvent*> seen_;
  sim::TaskPtr last_kernel_;
};

/// Kernel-cost inputs for a cost-model dry run. Transfer and API costs come
/// from the DeviceProfile; the kernel term is either a roofline over
/// per-iteration flops/bytes or a measured per-iteration time.
struct DryRunCost {
  double flops_per_iter = 0.0;
  double bytes_per_iter = 0.0;
  /// Used when flops_per_iter and bytes_per_iter are both zero (e.g. seeded
  /// from a probe kernel's measured duration).
  SimTime seconds_per_iter = 0.0;
  /// Machine-wide live stream count during the region (feeds the per-stream
  /// scheduling overhead); 0 means plan.num_streams.
  int live_streams = 0;
};

/// Result of a dry run: the predicted host makespan of the region and the
/// planned timeline (lanes "s0", "s1", ... — one per plan stream).
struct DryRunResult {
  SimTime makespan = 0.0;
  sim::Trace trace;
};

/// Replays `plan` through a private discrete-event simulation using the
/// same engine topology, API overheads, transfer-bandwidth curve, and
/// event/wait semantics as gpu::Gpu — but with zero device interaction: no
/// allocations, no kernels, no copies. The returned makespan matches what
/// executing the plan on an idle Gpu with the same profile would measure.
DryRunResult dry_run(const ExecutionPlan& plan, const gpu::DeviceProfile& profile,
                     const DryRunCost& cost = {});

/// Solo-runtime estimate of `spec` on `g`: solves the memory limit under
/// `limit` (0 = the device's free memory), plans the region at the solved
/// shape, and scores it with a cost-model dry run. No allocations, no
/// kernels. The shortest-job-first queue policy and least-loaded placement
/// in src/sched rank jobs with this number.
SimTime estimate_pipeline_runtime(const gpu::Gpu& g, PipelineSpec spec,
                                  const DryRunCost& cost = {}, Bytes limit = 0);

}  // namespace gpupipe::core
