// Plan compilation cache — memoized planning for the serve hot path.
//
// The scheduler's admission loop and the serving front end call the same
// planning pipeline over and over: predicted_pipeline_footprint on every
// admission attempt (including each backoff retry), a full
// build-plus-optimize in estimate_pipeline_runtime per submitted job, and
// another in Pipeline's constructor once the job starts. For repeated
// tenants every one of those calls recomputes a pure function of (device
// profile, spec shape). This module memoizes the three expensive results —
// the predicted ring footprint at a shape, the built+optimized full-loop
// ExecutionPlan (shared and immutable, so concurrent pipelines and dry runs
// replay one object), and the dry-run makespan — behind one bounded LRU
// keyed by a canonical fingerprint of everything the result depends on.
//
// Soundness: a fingerprint covers the device profile (name plus every
// numeric field), the loop bounds, opt level, per-array geometry (map,
// element size, dims, affine split, window), the host pinned-ness the plan
// bakes into transfer costs, and — for dry-run memos — the DryRunCost
// terms. Host pointers and mem_limit are deliberately excluded: plans are
// pointer-free (transfers go through ring-buffer bindings) and the memory
// limit only enters planning through the solved shape, which is part of the
// key. Specs with a window_fn split cannot be fingerprinted (arbitrary
// std::function) and bypass the cache entirely, as does everything when the
// capacity is 0 — a cached call and a computed call return identical
// values, so behaviour with the cache on is bit-identical to off.
//
// Thread safety: the LRU is mutex-guarded; misses compute outside the lock
// (plan building is pure), so the autotuner's dry-run workers share hits
// without serializing their simulations. hits/misses/evictions/bytes are
// atomics, exported as the plan_cache.* metric namespace.
//
// Persistence: an optional on-disk tier (set_disk_dir /
// GPUPIPE_PLAN_CACHE_DIR) makes entries outlive the process. Memory misses
// fall through to disk before computing; computed entries are written back
// atomically. The wire format, its corruption tolerance, and the AOT
// bundle path (`gpupipe_compile` → load_bundle) live in
// core/plan_serialize.hpp; disk traffic is counted in the
// plan_cache.disk.* metric namespace.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"

namespace gpupipe::core {

struct PlanBundle;

/// Point-in-time counters of one PlanCache.
struct PlanCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  Bytes bytes = 0;  ///< approximate resident bytes of the cached entries
  std::int64_t entries = 0;
  /// Disk-tier counters (all zero when no disk directory is configured).
  /// A memory miss that a disk entry satisfies counts as both a `miss` (the
  /// memory tier missed) and a `disk_hit` — the combined effective hit rate
  /// is (hits + disk_hits) / (hits + misses).
  std::int64_t disk_hits = 0;
  std::int64_t disk_misses = 0;
  std::int64_t disk_corrupt = 0;  ///< entries rejected and quarantined
  std::int64_t disk_writes = 0;
  std::int64_t disk_compacted = 0;  ///< files removed by compact_disk()
  Bytes disk_bytes_read = 0;
  Bytes disk_bytes_written = 0;

  double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Bounded, thread-safe LRU over the three planning memos. One process-wide
/// instance() serves Pipeline, the solver/estimator entry points, the
/// admission controller, and the autotuner; tests may construct private
/// instances.
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Capacity 0 disables the cache: every call computes directly and no
  /// entry is stored. The GPUPIPE_PLAN_CACHE environment variable overrides
  /// the global instance's initial capacity.
  explicit PlanCache(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  /// The process-global cache the planning entry points consult.
  static PlanCache& instance();

  /// A compiled full-loop plan plus the artifacts Pipeline needs alongside
  /// it. The plan is immutable and shared between every consumer.
  struct Compiled {
    std::shared_ptr<const ExecutionPlan> plan;
    OptReport report;
  };

  /// Predicted ring footprint of `spec` at shape (chunk_size, num_streams)
  /// — memoized predicted_pipeline_footprint.
  Bytes footprint(const gpu::Gpu& g, const PipelineSpec& spec, std::int64_t chunk_size,
                  int num_streams);

  /// The built+optimized full-loop plan of `spec` at its own shape, with
  /// ring lengths from the layout formulas (clamped to the array extents,
  /// exactly like RingBuffer) and pinned-ness read from `g` — node-identical
  /// to the plan Pipeline compiles at that shape.
  Compiled compile(const gpu::Gpu& g, const PipelineSpec& spec);

  /// Dry-run makespan of compile(g, spec)'s plan under `cost`. The caller
  /// resolves cost.live_streams before keying (estimate_pipeline_runtime
  /// defaults it to the solved stream count).
  SimTime estimate(const gpu::Gpu& g, const PipelineSpec& spec, const DryRunCost& cost);

  /// Whether `spec` can be keyed at all: static schedule and affine splits
  /// only (a window_fn is an arbitrary std::function). Non-fingerprintable
  /// specs compute directly on every call.
  static bool fingerprintable(const PipelineSpec& spec);

  /// The canonical key of `spec` at a shape on `g`'s device — exposed so
  /// tests can assert which field changes miss. Requires fingerprintable().
  static std::string fingerprint(const gpu::Gpu& g, const PipelineSpec& spec,
                                 std::int64_t chunk_size, int num_streams);

  /// The device-profile prefix every fingerprint starts with (name plus
  /// every numeric field, locale-independent). Bundle tune records key on
  /// this so plans tuned for one device never apply to another.
  static std::string profile_fingerprint(const gpu::DeviceProfile& profile);

  /// Enables (non-empty) or disables (empty) the on-disk tier: memory
  /// misses fall through to `dir`, and computed entries are written back
  /// with an atomic temp-file + rename. The directory is created if needed;
  /// creation failure leaves the tier disabled. Corrupt files — short
  /// reads, checksum mismatches, version skew, key mismatches — are counted
  /// in disk_corrupt, quarantined (renamed `*.quarantined`), and treated as
  /// misses; they never crash and never produce a wrong plan. The
  /// GPUPIPE_PLAN_CACHE_DIR environment variable seeds the global
  /// instance's directory.
  void set_disk_dir(const std::string& dir);
  std::string disk_dir() const;

  /// Optional flight-recorder hook: disk-tier hits and corruptions are
  /// recorded as DiskHit / DiskCorrupt events (stamped with the recorder's
  /// clock — the serve tool binds it to virtual time). Caller-owned; must
  /// outlive the cache's disk traffic. Null (the default) disables it.
  void set_recorder(telemetry::FlightRecorder* rec) {
    recorder_.store(rec, std::memory_order_relaxed);
  }

  /// What one compact_disk() pass did to the disk directory.
  struct CompactionReport {
    std::int64_t scanned = 0;              ///< regular files examined
    std::int64_t removed_quarantined = 0;  ///< `*.quarantined` corpses
    std::int64_t removed_stale = 0;  ///< `.plan` files with version/magic skew
    std::int64_t removed_temp = 0;   ///< leftover `*.tmp.*` write debris
    std::int64_t kept = 0;           ///< current-format `.plan` files retained
    Bytes bytes_reclaimed = 0;       ///< total size of everything removed
    std::int64_t removed() const {
      return removed_quarantined + removed_stale + removed_temp;
    }
  };

  /// Garbage-collects the disk tier: deletes quarantined corpses, `.plan`
  /// files whose header magic/version no longer matches this binary (a new
  /// format version would otherwise strand the old records forever), and
  /// temp files orphaned by a crashed writer. Current-format records are
  /// untouched — compaction never invalidates a servable entry. Removals
  /// are counted in the disk_compacted stat. No-op without a disk dir.
  CompactionReport compact_disk();

  /// Admits every compatible artifact of `bundle` into the memory tier
  /// (Tune records are skipped — the caller applies those to job specs).
  /// Counts toward neither hits nor misses. Returns the number admitted.
  std::size_t load_bundle(const PlanBundle& bundle);

  /// Snapshots the resident entries into `bundle` (appended,
  /// least-recently-used first, so re-loading reproduces the recency
  /// order). Tune records are never resident and are not exported.
  void export_bundle(PlanBundle& bundle) const;

  void set_capacity(std::size_t n);
  std::size_t capacity() const;
  bool enabled() const { return capacity() > 0; }
  /// Drops every memory-tier entry (stats are kept — see reset_stats —
  /// and on-disk entries persist: the next miss re-reads them).
  void clear();
  void reset_stats();
  PlanCacheStats stats() const;

  /// Exports the plan_cache.{hits,misses,evictions,bytes,entries,capacity}
  /// namespace — plus plan_cache.disk.{hits,misses,corrupt,writes,
  /// compacted,bytes_read,bytes_written} when a disk tier is configured —
  /// into `reg`
  /// (prefix prepended, matching the other collectors).
  void collect_metrics(telemetry::Registry& reg, const std::string& prefix = {}) const;

 private:
  struct Entry {
    std::shared_ptr<const ExecutionPlan> plan;  ///< compile entries
    OptReport report;
    Bytes footprint = 0;     ///< footprint entries
    SimTime makespan = 0.0;  ///< estimate entries
    Bytes cost = 0;          ///< approximate bytes charged to the bytes stat
  };

  std::shared_ptr<const Entry> find(const std::string& key);
  void insert(const std::string& key, std::shared_ptr<const Entry> entry);
  bool usable(const PipelineSpec& spec) const {
    return enabled() && fingerprintable(spec);
  }

  /// Memory miss fall-through: reads the key's disk entry (if a disk dir is
  /// set), validates it, admits it to the memory tier, and returns it.
  /// Returns nullptr on miss or corruption. IO runs outside the LRU lock.
  std::shared_ptr<const Entry> disk_load(const std::string& key);
  /// Write-back after a computed miss (atomic temp + rename; best effort).
  void disk_store(const std::string& key, const Entry& entry);
  std::string disk_path(const std::string& key) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// MRU-first key order; the map holds list iterators for O(1) touch.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, Slot> map_;
  Bytes bytes_ = 0;
  std::string disk_dir_;  ///< empty = disk tier off (guarded by mu_)
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> disk_hits_{0};
  std::atomic<std::int64_t> disk_misses_{0};
  std::atomic<std::int64_t> disk_corrupt_{0};
  std::atomic<std::int64_t> disk_writes_{0};
  std::atomic<std::int64_t> disk_compacted_{0};
  std::atomic<std::int64_t> disk_bytes_read_{0};
  std::atomic<std::int64_t> disk_bytes_written_{0};
  std::atomic<telemetry::FlightRecorder*> recorder_{nullptr};
};

}  // namespace gpupipe::core
