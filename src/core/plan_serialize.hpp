// Versioned binary serialization for plan-cache artifacts — the persistence
// layer behind the on-disk plan-cache tier and the `gpupipe_compile` AOT
// bundles.
//
// The in-memory PlanCache (core/plan_cache.hpp) dies with the process, so a
// serve fleet of N replicas re-tunes and re-plans every job template N times
// on every restart. This module defines a corruption-tolerant wire format
// for the cache's memoized results so they can be written once and shared
// across processes and machines:
//
//   * PlanArtifact — one cache entry (a compiled ExecutionPlan + OptReport,
//     a predicted footprint, a dry-run makespan) or one TuneResult, tagged
//     with the canonical cache key it was computed under. The key doubles as
//     the integrity echo: a reader that looks an artifact up by key rejects
//     any record whose embedded key disagrees (hash-collision and
//     wrong-file safety).
//   * PlanBundle — an ordered collection of artifacts in one file, the unit
//     `gpupipe_compile` ships and `gpupipe_serve --bundle` loads at startup.
//
// Wire format (all integers little-endian, floats as IEEE-754 bit patterns):
//
//   artifact := magic u32 | version u32 | kind u32 | flags u32
//             | key_len u64 | key bytes            (fingerprint echo)
//             | payload_len u64 | payload bytes    (kind-specific)
//             | checksum u64                       (FNV-1a of all prior bytes)
//   bundle   := magic u32 | version u32 | count u64
//             | count x (record_len u64 | artifact bytes)
//             | checksum u64                       (FNV-1a of all prior bytes)
//
// Readers never trust a length: every read is bounds-checked against the
// remaining bytes, element counts are validated against the space they
// would occupy, enums are range-checked, and the trailing checksum is
// verified before any payload is decoded. Any violation — short read, bit
// flip, version skew, truncation, garbage — makes deserialization return
// false with a diagnostic; it never throws and never crashes. Callers (the
// PlanCache disk tier) treat a false return as a cache miss and recompute.
// klee-mc's persistent solver caches are the model: content-hash keys,
// corruption-tolerant reads, and hit/corrupt counters on every path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/autotune.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"

namespace gpupipe::core {

/// First bytes of every serialized artifact ("GPCE") and bundle ("GPBN").
inline constexpr std::uint32_t kPlanArtifactMagic = 0x45435047u;
inline constexpr std::uint32_t kPlanBundleMagic = 0x4e425047u;
/// Bumped on any wire-format change; readers reject other versions (skew is
/// a miss, not an error — a new binary simply recomputes and rewrites).
/// v2: PlanNode grew the `peer` shard field (P2pSend/P2pRecv halo nodes).
/// v3: DeviceHandoff stitching — PlanArrayInfo grew handoff_link/handoff_out,
///     PassStats grew elapsed_s, OptReport grew stitched_bytes/fused_kernels.
inline constexpr std::uint32_t kPlanFormatVersion = 3;

/// What one artifact carries. Values are part of the wire format.
enum class ArtifactKind : std::uint32_t {
  Plan = 1,       ///< ExecutionPlan + OptReport (a `plan|` cache entry)
  Footprint = 2,  ///< predicted ring footprint (a `fp|` cache entry)
  Estimate = 3,   ///< dry-run makespan (an `est|` cache entry)
  Tune = 4,       ///< TuneResult of one job template (bundle-only)
};

/// One serializable plan-cache result. Only the fields of the active `kind`
/// are meaningful; the others stay default-initialized.
struct PlanArtifact {
  ArtifactKind kind = ArtifactKind::Plan;
  /// The canonical PlanCache key (including its `plan|`/`fp|`/`est|`
  /// prefix), or tune_artifact_key() for Tune records. Echoed on disk and
  /// verified on read.
  std::string key;
  ExecutionPlan plan;      ///< Plan
  OptReport report;        ///< Plan
  Bytes footprint = 0;     ///< Footprint
  SimTime estimate = 0.0;  ///< Estimate
  TuneResult tune;         ///< Tune
};

/// An ordered set of artifacts shipped as one file.
struct PlanBundle {
  std::vector<PlanArtifact> artifacts;
};

/// The canonical bundle key of a TuneResult: device-profile fingerprint plus
/// the job-template name (e.g. "stencil/large"), so a bundle tuned for one
/// device is never applied to another.
std::string tune_artifact_key(const gpu::DeviceProfile& profile,
                              const std::string& job_template);

/// Serializes one artifact (header, key echo, payload, trailing checksum).
std::string serialize_artifact(const PlanArtifact& a);

/// Parses `bytes` into `out`. Returns false — with a diagnostic in `error`
/// if non-null — on any corruption: bad magic, version skew, short read,
/// checksum mismatch, invalid enum, or trailing garbage. Never throws.
bool deserialize_artifact(std::string_view bytes, PlanArtifact& out,
                          std::string* error = nullptr);

/// Serializes a bundle (each artifact record length-prefixed, file-level
/// trailing checksum over everything).
std::string serialize_bundle(const PlanBundle& b);

/// Parses a serialized bundle. All-or-nothing: any corrupt record (or the
/// file-level checksum) fails the whole read. Never throws.
bool deserialize_bundle(std::string_view bytes, PlanBundle& out,
                        std::string* error = nullptr);

/// Writes `b` to `path` atomically: serialized into a temp file in the same
/// directory, then renamed over the destination, so concurrent readers see
/// either the old bundle or the new one — never a torn write. Returns false
/// (with `error`) on IO failure.
bool write_bundle_file(const std::string& path, const PlanBundle& b,
                       std::string* error = nullptr);

/// Reads and parses a bundle file. Returns false (with `error`) when the
/// file is missing, unreadable, or fails deserialize_bundle.
bool read_bundle_file(const std::string& path, PlanBundle& out,
                      std::string* error = nullptr);

}  // namespace gpupipe::core
