// Multi-device co-scheduling (extension).
//
// The paper's future work targets "multi-nodes with different accelerators"
// and cites CoreTSAR's device co-scheduling as a sibling technique that
// divides computation across devices along one dimension. MultiPipeline
// combines both ideas: the split loop is partitioned into one contiguous
// sub-range per device (proportional to device throughput or explicit
// weights), each sub-range runs through its own pipelined region, and all
// devices execute concurrently under one shared simulation context.
//
// Requirements: every Gpu must share one SharedContext (one host thread),
// and the spec's schedule must be static (split-phase execution).
//
// This is STATIC partitioning: the weight vector is fixed before launch,
// the device set never changes, and array windows that straddle a slice
// boundary are re-uploaded from the host by both neighbours. The serving
// path has a DYNAMIC counterpart — sched::ShardRun (sched/shard.hpp,
// docs/sharding.md) — which re-partitions by live load at round
// boundaries, tolerates device join/leave mid-job, and moves boundary
// halos device-to-device via P2pSend/P2pRecv plan nodes instead of
// bouncing them through the host. Prefer MultiPipeline for a one-shot
// region on a fixed machine; the scheduler's sharding for serving.
#pragma once

#include <vector>

#include "core/pipeline.hpp"

namespace gpupipe::core {

/// How MultiPipeline divides the split loop across devices.
struct DeviceShare {
  gpu::Gpu* device = nullptr;
  /// Relative share of iterations; <= 0 means "derive from peak_flops".
  double weight = 0.0;
};

/// One pipelined region fanned out over several devices.
class MultiPipeline {
 public:
  /// Builds one Pipeline per device over a contiguous slice of the loop.
  /// Array windows may straddle slice boundaries; each device's pipeline
  /// transfers its own window, so halo indices near a boundary are sent to
  /// both neighbours (inputs are read-only, outputs never overlap).
  MultiPipeline(std::vector<DeviceShare> devices, const PipelineSpec& spec);

  /// Runs the region on every device concurrently and blocks until all
  /// slices completed.
  void run(const KernelFactory& make_kernel);

  int device_count() const { return static_cast<int>(parts_.size()); }
  /// The loop sub-range assigned to device `i`.
  std::pair<std::int64_t, std::int64_t> slice(int i) const {
    return {parts_[static_cast<std::size_t>(i)].begin,
            parts_[static_cast<std::size_t>(i)].end};
  }
  Pipeline& pipeline(int i) { return *parts_[static_cast<std::size_t>(i)].pipeline; }

  /// Sum of ring-buffer footprints across devices.
  Bytes buffer_footprint() const;

  /// Collects every per-device pipeline's metrics into `reg` under
  /// `prefix` + "dev<i>." namespaces (empty slices are skipped).
  void collect_metrics(telemetry::Registry& reg, const std::string& prefix = {}) const;

  /// Static helper (exposed for tests): proportional integer partition of
  /// `total` items by `weights`, each part rounded to a multiple of
  /// `granule` (except the last, which absorbs the remainder).
  static std::vector<std::int64_t> partition(std::int64_t total,
                                             const std::vector<double>& weights,
                                             std::int64_t granule);

 private:
  struct Part {
    gpu::Gpu* device;
    std::int64_t begin;
    std::int64_t end;
    std::unique_ptr<Pipeline> pipeline;  // null for empty slices
  };
  std::vector<Part> parts_;
};

}  // namespace gpupipe::core
