// Autotuning scheduler (extension).
//
// The paper closes with "we will further study how the other parameters
// affect our design and integrate a performance model in an autotuning
// scheduler". This module does both: it sweeps (chunk_size, num_streams)
// candidates — optionally pre-filtered by the analytic CostModel — measures
// each configuration on the device, and returns the best one together with
// the full exploration record.
//
// Measurement uses the virtual clock, so tuning is exact and deterministic;
// on a real system the same procedure would measure wall time.
#pragma once

#include <vector>

#include "core/pipeline.hpp"

namespace gpupipe::core {

/// One explored configuration.
struct TuneCandidate {
  std::int64_t chunk_size = 0;
  int num_streams = 0;
  SimTime measured = 0.0;  ///< region time; +inf if the config was skipped
  bool feasible = true;    ///< false when buffers did not fit the limit
};

/// Result of an autotuning sweep.
struct TuneResult {
  std::int64_t chunk_size = 1;
  int num_streams = 1;
  SimTime best_time = 0.0;
  std::vector<TuneCandidate> explored;
};

/// Sweep options.
struct TuneOptions {
  std::vector<std::int64_t> chunk_candidates = {1, 2, 4, 8, 16, 32, 64};
  std::vector<int> stream_candidates = {1, 2, 3, 4, 6, 8};
  /// When true, the CostModel (seeded by a one-chunk probe) prunes chunk
  /// candidates predicted to be > prune_factor x the predicted best before
  /// any measurement.
  bool model_prefilter = true;
  double prune_factor = 3.0;
};

/// Measures candidate configurations of `spec` on `g` and returns the best.
/// The spec's own chunk_size/num_streams are ignored; its schedule must be
/// static. The workload runs once per surviving candidate.
TuneResult autotune(gpu::Gpu& g, PipelineSpec spec, const KernelFactory& make_kernel,
                    const TuneOptions& options = {});

}  // namespace gpupipe::core
