// Autotuning scheduler (extension).
//
// The paper closes with "we will further study how the other parameters
// affect our design and integrate a performance model in an autotuning
// scheduler". This module does both: it sweeps (chunk_size, num_streams)
// candidates — optionally pre-filtered by the analytic CostModel — measures
// each configuration on the device, and returns the best one together with
// the full exploration record.
//
// Measurement uses the virtual clock, so tuning is exact and deterministic;
// on a real system the same procedure would measure wall time.
#pragma once

#include <optional>
#include <vector>

#include "core/pipeline.hpp"

namespace gpupipe::core {

/// One explored configuration.
struct TuneCandidate {
  std::int64_t chunk_size = 0;
  int num_streams = 0;
  SimTime measured = 0.0;  ///< region time; +inf if the config was skipped
  bool feasible = true;    ///< false when buffers did not fit the limit
};

/// Result of an autotuning sweep.
struct TuneResult {
  std::int64_t chunk_size = 1;
  int num_streams = 1;
  SimTime best_time = 0.0;
  std::vector<TuneCandidate> explored;
};

/// Analytic kernel cost per loop iteration (roofline inputs) for dry-run
/// tuning without a probe execution.
struct KernelCostHint {
  double flops_per_iter = 0.0;
  double bytes_per_iter = 0.0;
};

/// Sweep options.
struct TuneOptions {
  std::vector<std::int64_t> chunk_candidates = {1, 2, 4, 8, 16, 32, 64};
  std::vector<int> stream_candidates = {1, 2, 3, 4, 6, 8};
  /// When true, the CostModel (seeded by a one-chunk probe) prunes chunk
  /// candidates predicted to be > prune_factor x the predicted best before
  /// any measurement.
  bool model_prefilter = true;
  double prune_factor = 3.0;
  /// Cost-model-only mode: score each candidate by replaying its
  /// ExecutionPlan through a private simulation (core/plan.hpp dry_run)
  /// instead of executing the workload — no buffers are allocated and no
  /// kernels run. With kernel_cost also set, not even the probe executes,
  /// so tuning touches the device not at all. The prefilter is skipped
  /// (dry runs are already cheap).
  bool dry_run = false;
  /// Kernel roofline inputs for dry runs; when absent, a one-chunk probe
  /// execution measures seconds-per-iteration instead.
  std::optional<KernelCostHint> kernel_cost;
  /// Worker threads for the dry-run sweep (each candidate is scored by a
  /// private simulation, so they parallelize). 1 = serial; 0 = one per
  /// hardware thread (capped at 8). The returned TuneResult — including the
  /// explored order — is bit-identical for every value. The measured sweep
  /// shares the device's virtual clock and always runs serially.
  int tune_jobs = 1;
};

/// Measures candidate configurations of `spec` on `g` and returns the best.
/// The spec's own chunk_size/num_streams are ignored; its schedule must be
/// static. The workload runs once per surviving candidate — unless
/// options.dry_run is set, in which case candidates are scored by plan
/// replay without executing (and without allocating) anything.
///
/// Candidate lists are normalized before the sweep: duplicates are dropped
/// (first occurrence wins) and chunk candidates above the loop trip count
/// collapse to one trip-sized candidate (they all plan the identical single
/// chunk). The one-chunk probe only executes when something consumes it:
/// a dry sweep without kernel_cost, or a measured sweep whose model
/// prefilter has more than one distinct chunk to rank.
TuneResult autotune(gpu::Gpu& g, PipelineSpec spec, const KernelFactory& make_kernel,
                    const TuneOptions& options = {});

}  // namespace gpupipe::core
