#include "core/plan_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"
#include "core/buffer.hpp"
#include "core/layout.hpp"

namespace gpupipe::core {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out += '|';
}

// Hexfloat: exact round-trip, so two cost hints differing in the last ulp
// key differently (bit-identical results require bit-identical inputs).
void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a|", v);
  out += buf;
}

/// Every numeric field of the device profile, name first. Keying on the
/// profile's content (not the Gpu instance) lets separate devices — and the
/// serve tool's solo-baseline machines — share one compiled plan.
void append_profile(std::string& out, const gpu::DeviceProfile& p) {
  out += p.name;
  out += '|';
  append_i64(out, static_cast<std::int64_t>(p.total_memory));
  append_i64(out, static_cast<std::int64_t>(p.reserved_memory));
  append_i64(out, static_cast<std::int64_t>(p.context_memory));
  append_i64(out, static_cast<std::int64_t>(p.per_stream_memory));
  append_f64(out, p.peak_flops);
  append_f64(out, p.mem_bandwidth);
  append_f64(out, p.pcie_bandwidth);
  append_i64(out, static_cast<std::int64_t>(p.pcie_half_saturation));
  append_i64(out, static_cast<std::int64_t>(p.pcie_row_half_saturation));
  append_f64(out, p.pageable_penalty);
  append_f64(out, p.copy_setup_latency);
  append_f64(out, p.copy_segment_latency);
  append_f64(out, p.kernel_launch_latency);
  append_f64(out, p.api_call_host_overhead);
  append_f64(out, p.sched_overhead_per_stream);
  append_i64(out, p.h2d_engines);
  append_i64(out, p.d2h_engines);
  append_i64(out, p.unified_copy_engine ? 1 : 0);
  append_i64(out, p.max_concurrent_kernels);
  append_i64(out, static_cast<std::int64_t>(p.pitch_alignment));
  append_i64(out, static_cast<std::int64_t>(p.alloc_alignment));
}

/// The uncached predicted footprint — the arithmetic
/// predicted_pipeline_footprint (core/plan.cpp) delegates here through the
/// cache, so this is the single definition.
Bytes raw_footprint(const gpu::Gpu& g, const PipelineSpec& spec, std::int64_t chunk_size,
                    int num_streams) {
  Bytes total = 0;
  for (const auto& a : spec.arrays)
    total += RingBuffer::predict_footprint(
        g, a,
        layout::ring_len_for_spec(a, spec.loop_begin, spec.loop_end, chunk_size,
                                  num_streams));
  return total;
}

/// The uncached full-loop compile: identical construction to the predicted
/// builder in core/plan.cpp and to Pipeline::build_plan at the same shape
/// (ring lengths clamped to the array extents exactly like RingBuffer, host
/// pinned-ness read from the device).
PlanCache::Compiled raw_compile(const gpu::Gpu& g, const PipelineSpec& spec) {
  spec.validate();
  PipelineBuildState state;
  state.ring_lens.reserve(spec.arrays.size());
  state.pinned.reserve(spec.arrays.size());
  for (const auto& a : spec.arrays) {
    state.ring_lens.push_back(
        std::min(layout::ring_len_for_spec(a, spec.loop_begin, spec.loop_end,
                                           spec.chunk_size, spec.num_streams),
                 a.dims[static_cast<std::size_t>(a.split.dim)]));
    state.pinned.push_back(g.is_pinned(a.host));
  }
  ExecutionPlan plan = PlanBuilder::pipeline(spec, spec.chunk_size, spec.num_streams,
                                             spec.loop_begin, spec.loop_end, state);
  PlanCache::Compiled out;
  out.report = optimize_plan(plan, spec.opt_level);
  out.plan = std::make_shared<const ExecutionPlan>(std::move(plan));
  return out;
}

Bytes approx_plan_bytes(const ExecutionPlan& p) {
  Bytes b = sizeof(ExecutionPlan);
  for (const PlanNode& n : p.nodes) {
    b += sizeof(PlanNode);
    b += static_cast<Bytes>(n.deps.capacity()) * sizeof(int);
    b += static_cast<Bytes>(n.segments.capacity()) * sizeof(PlanSegment);
    b += static_cast<Bytes>(n.accesses.capacity()) * sizeof(PlanAccess);
    b += n.label.size();
  }
  for (const PlanArrayInfo& a : p.arrays) b += sizeof(PlanArrayInfo) + a.name.size();
  return b;
}

std::size_t initial_capacity() {
  if (const char* e = std::getenv("GPUPIPE_PLAN_CACHE")) {
    char* end = nullptr;
    const long long v = std::strtoll(e, &end, 10);
    if (end != e && *end == '\0' && v >= 0) return static_cast<std::size_t>(v);
  }
  return PlanCache::kDefaultCapacity;
}

}  // namespace

PlanCache& PlanCache::instance() {
  static PlanCache cache(initial_capacity());
  return cache;
}

bool PlanCache::fingerprintable(const PipelineSpec& spec) {
  if (spec.schedule != ScheduleKind::Static) return false;
  for (const auto& a : spec.arrays)
    if (a.split.window_fn) return false;
  return true;
}

std::string PlanCache::fingerprint(const gpu::Gpu& g, const PipelineSpec& spec,
                                   std::int64_t chunk_size, int num_streams) {
  require(fingerprintable(spec),
          "plan cache: spec is not fingerprintable (window_fn or non-static schedule)");
  std::string key;
  key.reserve(256);
  append_profile(key, g.profile());
  append_i64(key, spec.opt_level);
  append_i64(key, spec.loop_begin);
  append_i64(key, spec.loop_end);
  append_i64(key, chunk_size);
  append_i64(key, num_streams);
  for (const auto& a : spec.arrays) {
    key += a.name;
    key += '|';
    append_i64(key, static_cast<std::int64_t>(a.map));
    append_i64(key, static_cast<std::int64_t>(a.elem_size));
    for (auto d : a.dims) append_i64(key, d);
    key += ';';
    append_i64(key, a.split.dim);
    append_i64(key, a.split.start.scale);
    append_i64(key, a.split.start.offset);
    append_i64(key, a.split.window);
    append_i64(key, g.is_pinned(a.host) ? 1 : 0);
  }
  return key;
}

std::shared_ptr<const PlanCache::Entry> PlanCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.pos);  // touch: move to MRU
  return it->second.entry;
}

void PlanCache::insert(const std::string& key, std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  if (map_.find(key) != map_.end()) return;  // a racing miss filled it first
  lru_.push_front(key);
  bytes_ += entry->cost;
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  while (map_.size() > capacity_) {
    auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.entry->cost;
    map_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

Bytes PlanCache::footprint(const gpu::Gpu& g, const PipelineSpec& spec,
                           std::int64_t chunk_size, int num_streams) {
  if (!usable(spec)) return raw_footprint(g, spec, chunk_size, num_streams);
  const std::string key = "fp|" + fingerprint(g, spec, chunk_size, num_streams);
  if (auto e = find(key)) return e->footprint;
  auto e = std::make_shared<Entry>();
  e->footprint = raw_footprint(g, spec, chunk_size, num_streams);
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
  const Bytes fp = e->footprint;
  insert(key, std::move(e));
  return fp;
}

PlanCache::Compiled PlanCache::compile(const gpu::Gpu& g, const PipelineSpec& spec) {
  if (!usable(spec)) return raw_compile(g, spec);
  const std::string key = "plan|" + fingerprint(g, spec, spec.chunk_size, spec.num_streams);
  if (auto e = find(key)) return Compiled{e->plan, e->report};
  Compiled built = raw_compile(g, spec);
  auto e = std::make_shared<Entry>();
  e->plan = built.plan;
  e->report = built.report;
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry) + approx_plan_bytes(*built.plan);
  insert(key, std::move(e));
  return built;
}

SimTime PlanCache::estimate(const gpu::Gpu& g, const PipelineSpec& spec,
                            const DryRunCost& cost) {
  if (!usable(spec)) {
    const Compiled built = raw_compile(g, spec);
    return dry_run(*built.plan, g.profile(), cost).makespan;
  }
  std::string key = "est|" + fingerprint(g, spec, spec.chunk_size, spec.num_streams);
  append_f64(key, cost.flops_per_iter);
  append_f64(key, cost.bytes_per_iter);
  append_f64(key, cost.seconds_per_iter);
  append_i64(key, cost.live_streams);
  if (auto e = find(key)) return e->makespan;
  const Compiled built = compile(g, spec);
  auto e = std::make_shared<Entry>();
  e->makespan = dry_run(*built.plan, g.profile(), cost).makespan;
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
  const SimTime makespan = e->makespan;
  insert(key, std::move(e));
  return makespan;
}

void PlanCache::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (map_.size() > capacity_) {
    auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.entry->cost;
    map_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

void PlanCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.bytes = bytes_;
  s.entries = static_cast<std::int64_t>(map_.size());
  return s;
}

void PlanCache::collect_metrics(telemetry::Registry& reg, const std::string& prefix) const {
  const PlanCacheStats s = stats();
  const std::string p = prefix + "plan_cache.";
  reg.counter(p + "hits").add(s.hits);
  reg.counter(p + "misses").add(s.misses);
  reg.counter(p + "evictions").add(s.evictions);
  reg.gauge(p + "bytes").set(static_cast<double>(s.bytes));
  reg.gauge(p + "entries").set(static_cast<double>(s.entries));
  reg.gauge(p + "capacity").set(static_cast<double>(capacity()));
  reg.gauge(p + "hit_rate").set(s.hit_rate());
}

}  // namespace gpupipe::core
