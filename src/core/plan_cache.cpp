#include "core/plan_cache.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <utility>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "core/buffer.hpp"
#include "core/layout.hpp"
#include "core/plan_serialize.hpp"

namespace gpupipe::core {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
  out += '|';
}

// Hexfloat: exact round-trip, so two cost hints differing in the last ulp
// key differently (bit-identical results require bit-identical inputs).
// std::to_chars, not snprintf("%a"): printf's hexfloat spells the radix
// point with the LC_NUMERIC decimal character, so the same spec would hash
// differently under e.g. a comma-decimal locale — fatal once keys persist
// on disk and travel between machines. to_chars is locale-independent by
// specification.
void append_f64(std::string& out, double v) {
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::hex);
  require(ec == std::errc{}, "plan cache: hexfloat encoding failed");
  out.append(buf, end);
  out += '|';
}

/// Every numeric field of the device profile, name first. Keying on the
/// profile's content (not the Gpu instance) lets separate devices — and the
/// serve tool's solo-baseline machines — share one compiled plan.
void append_profile(std::string& out, const gpu::DeviceProfile& p) {
  out += p.name;
  out += '|';
  append_i64(out, static_cast<std::int64_t>(p.total_memory));
  append_i64(out, static_cast<std::int64_t>(p.reserved_memory));
  append_i64(out, static_cast<std::int64_t>(p.context_memory));
  append_i64(out, static_cast<std::int64_t>(p.per_stream_memory));
  append_f64(out, p.peak_flops);
  append_f64(out, p.mem_bandwidth);
  append_f64(out, p.pcie_bandwidth);
  append_i64(out, static_cast<std::int64_t>(p.pcie_half_saturation));
  append_i64(out, static_cast<std::int64_t>(p.pcie_row_half_saturation));
  append_f64(out, p.pageable_penalty);
  append_f64(out, p.copy_setup_latency);
  append_f64(out, p.copy_segment_latency);
  append_f64(out, p.kernel_launch_latency);
  append_f64(out, p.api_call_host_overhead);
  append_f64(out, p.sched_overhead_per_stream);
  append_i64(out, p.h2d_engines);
  append_i64(out, p.d2h_engines);
  append_i64(out, p.unified_copy_engine ? 1 : 0);
  append_i64(out, p.max_concurrent_kernels);
  append_i64(out, static_cast<std::int64_t>(p.pitch_alignment));
  append_i64(out, static_cast<std::int64_t>(p.alloc_alignment));
}

/// The uncached predicted footprint — the arithmetic
/// predicted_pipeline_footprint (core/plan.cpp) delegates here through the
/// cache, so this is the single definition.
Bytes raw_footprint(const gpu::Gpu& g, const PipelineSpec& spec, std::int64_t chunk_size,
                    int num_streams) {
  Bytes total = 0;
  for (const auto& a : spec.arrays)
    total += RingBuffer::predict_footprint(
        g, a,
        layout::ring_len_for_spec(a, spec.loop_begin, spec.loop_end, chunk_size,
                                  num_streams));
  return total;
}

/// The uncached full-loop compile: identical construction to the predicted
/// builder in core/plan.cpp and to Pipeline::build_plan at the same shape
/// (ring lengths clamped to the array extents exactly like RingBuffer, host
/// pinned-ness read from the device).
PlanCache::Compiled raw_compile(const gpu::Gpu& g, const PipelineSpec& spec) {
  spec.validate();
  PipelineBuildState state;
  state.ring_lens.reserve(spec.arrays.size());
  state.pinned.reserve(spec.arrays.size());
  for (const auto& a : spec.arrays) {
    state.ring_lens.push_back(
        std::min(layout::ring_len_for_spec(a, spec.loop_begin, spec.loop_end,
                                           spec.chunk_size, spec.num_streams),
                 a.dims[static_cast<std::size_t>(a.split.dim)]));
    state.pinned.push_back(g.is_pinned(a.host));
  }
  ExecutionPlan plan = PlanBuilder::pipeline(spec, spec.chunk_size, spec.num_streams,
                                             spec.loop_begin, spec.loop_end, state);
  PlanCache::Compiled out;
  out.report = optimize_plan(plan, spec.opt_level, &g.profile());
  out.plan = std::make_shared<const ExecutionPlan>(std::move(plan));
  return out;
}

Bytes approx_plan_bytes(const ExecutionPlan& p) {
  Bytes b = sizeof(ExecutionPlan);
  for (const PlanNode& n : p.nodes) {
    b += sizeof(PlanNode);
    b += static_cast<Bytes>(n.deps.capacity()) * sizeof(int);
    b += static_cast<Bytes>(n.segments.capacity()) * sizeof(PlanSegment);
    b += static_cast<Bytes>(n.accesses.capacity()) * sizeof(PlanAccess);
    b += n.label.size();
  }
  for (const PlanArrayInfo& a : p.arrays) b += sizeof(PlanArrayInfo) + a.name.size();
  return b;
}

std::size_t initial_capacity() {
  if (const char* e = std::getenv("GPUPIPE_PLAN_CACHE")) {
    char* end = nullptr;
    const long long v = std::strtoll(e, &end, 10);
    if (end != e && *end == '\0' && v >= 0) return static_cast<std::size_t>(v);
  }
  return PlanCache::kDefaultCapacity;
}

/// GPUPIPE_PLAN_CACHE_TRACE=1 prints every memory-tier miss and insert with
/// its full fingerprint key to stderr — the tool for diagnosing why a warmed
/// cache or an AOT bundle fails to hit (diff the keys the producer inserted
/// against the keys the consumer missed).
bool trace_enabled() {
  static const bool on = std::getenv("GPUPIPE_PLAN_CACHE_TRACE") != nullptr;
  return on;
}

/// 16-hex-digit content hash used as the on-disk file name (the full key is
/// echoed inside the file and verified on read, so a hash collision or a
/// renamed file is detected as a mismatch, not served).
std::string key_hash_hex(const std::string& key) {
  const std::uint64_t h = fnv1a(std::span<const char>(key.data(), key.size()));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// The cache-key prefix each artifact kind persists under (Tune records
/// only ever live in bundles, never in the entry store).
const char* kind_prefix(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::Plan: return "plan|";
    case ArtifactKind::Footprint: return "fp|";
    case ArtifactKind::Estimate: return "est|";
    case ArtifactKind::Tune: return nullptr;
  }
  return nullptr;
}

ArtifactKind kind_of_key(const std::string& key) {
  if (key.rfind("plan|", 0) == 0) return ArtifactKind::Plan;
  if (key.rfind("fp|", 0) == 0) return ArtifactKind::Footprint;
  return ArtifactKind::Estimate;  // "est|..." — the only other entry prefix
}

}  // namespace

PlanCache& PlanCache::instance() {
  static PlanCache cache(initial_capacity());
  static const bool seeded = [] {
    if (const char* e = std::getenv("GPUPIPE_PLAN_CACHE_DIR"); e && *e)
      cache.set_disk_dir(e);
    return true;
  }();
  (void)seeded;
  return cache;
}

std::string PlanCache::profile_fingerprint(const gpu::DeviceProfile& profile) {
  std::string out;
  out.reserve(192);
  append_profile(out, profile);
  return out;
}

bool PlanCache::fingerprintable(const PipelineSpec& spec) {
  if (spec.schedule != ScheduleKind::Static) return false;
  for (const auto& a : spec.arrays)
    if (a.split.window_fn) return false;
  return true;
}

std::string PlanCache::fingerprint(const gpu::Gpu& g, const PipelineSpec& spec,
                                   std::int64_t chunk_size, int num_streams) {
  require(fingerprintable(spec),
          "plan cache: spec is not fingerprintable (window_fn or non-static schedule)");
  std::string key;
  key.reserve(256);
  append_profile(key, g.profile());
  append_i64(key, spec.opt_level);
  append_i64(key, spec.loop_begin);
  append_i64(key, spec.loop_end);
  append_i64(key, chunk_size);
  append_i64(key, num_streams);
  for (const auto& a : spec.arrays) {
    key += a.name;
    key += '|';
    append_i64(key, static_cast<std::int64_t>(a.map));
    append_i64(key, static_cast<std::int64_t>(a.elem_size));
    for (auto d : a.dims) append_i64(key, d);
    key += ';';
    append_i64(key, a.split.dim);
    append_i64(key, a.split.start.scale);
    append_i64(key, a.split.start.offset);
    append_i64(key, a.split.window);
    append_i64(key, g.is_pinned(a.host) ? 1 : 0);
  }
  // Shard halo wiring changes the emitted nodes (P2pSend/P2pRecv replace
  // host uploads), so each shard of a decomposition gets its own honest
  // fingerprint — and never collides with the solo plan of the same range.
  for (const auto& h : spec.halos) {
    key += "halo|";
    append_i64(key, h.array);
    append_i64(key, h.recv_lo);
    append_i64(key, h.recv_peer);
    append_i64(key, h.send_hi);
    append_i64(key, h.send_peer);
  }
  // Handoff wiring likewise reshapes the plan (DeviceHandoff replaces the
  // host transfers), so a stitched lineage job never aliases its unstitched
  // twin in the cache.
  for (const auto& h : spec.handoffs) {
    key += "handoff|";
    append_i64(key, h.array);
    append_i64(key, h.link);
    append_i64(key, h.produce ? 1 : 0);
  }
  return key;
}

std::shared_ptr<const PlanCache::Entry> PlanCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    if (trace_enabled()) std::fprintf(stderr, "plan_cache: miss %s\n", key.c_str());
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.pos);  // touch: move to MRU
  return it->second.entry;
}

void PlanCache::insert(const std::string& key, std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_enabled()) std::fprintf(stderr, "plan_cache: insert %s\n", key.c_str());
  if (capacity_ == 0) return;
  if (map_.find(key) != map_.end()) return;  // a racing miss filled it first
  lru_.push_front(key);
  bytes_ += entry->cost;
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  while (map_.size() > capacity_) {
    auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.entry->cost;
    map_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

Bytes PlanCache::footprint(const gpu::Gpu& g, const PipelineSpec& spec,
                           std::int64_t chunk_size, int num_streams) {
  if (!usable(spec)) return raw_footprint(g, spec, chunk_size, num_streams);
  const std::string key = "fp|" + fingerprint(g, spec, chunk_size, num_streams);
  if (auto e = find(key)) return e->footprint;
  if (auto e = disk_load(key)) return e->footprint;
  auto e = std::make_shared<Entry>();
  e->footprint = raw_footprint(g, spec, chunk_size, num_streams);
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
  const Bytes fp = e->footprint;
  disk_store(key, *e);
  insert(key, std::move(e));
  return fp;
}

PlanCache::Compiled PlanCache::compile(const gpu::Gpu& g, const PipelineSpec& spec) {
  if (!usable(spec)) return raw_compile(g, spec);
  const std::string key = "plan|" + fingerprint(g, spec, spec.chunk_size, spec.num_streams);
  if (auto e = find(key)) return Compiled{e->plan, e->report};
  if (auto e = disk_load(key)) return Compiled{e->plan, e->report};
  Compiled built = raw_compile(g, spec);
  auto e = std::make_shared<Entry>();
  e->plan = built.plan;
  e->report = built.report;
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry) + approx_plan_bytes(*built.plan);
  disk_store(key, *e);
  insert(key, std::move(e));
  return built;
}

SimTime PlanCache::estimate(const gpu::Gpu& g, const PipelineSpec& spec,
                            const DryRunCost& cost) {
  if (!usable(spec)) {
    const Compiled built = raw_compile(g, spec);
    return dry_run(*built.plan, g.profile(), cost).makespan;
  }
  std::string key = "est|" + fingerprint(g, spec, spec.chunk_size, spec.num_streams);
  append_f64(key, cost.flops_per_iter);
  append_f64(key, cost.bytes_per_iter);
  append_f64(key, cost.seconds_per_iter);
  append_i64(key, cost.live_streams);
  if (auto e = find(key)) return e->makespan;
  if (auto e = disk_load(key)) return e->makespan;
  const Compiled built = compile(g, spec);
  auto e = std::make_shared<Entry>();
  e->makespan = dry_run(*built.plan, g.profile(), cost).makespan;
  e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
  const SimTime makespan = e->makespan;
  disk_store(key, *e);
  insert(key, std::move(e));
  return makespan;
}

void PlanCache::set_disk_dir(const std::string& dir) {
  std::string resolved = dir;
  if (!resolved.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(resolved, ec);
    if (ec) resolved.clear();  // unusable directory: leave the tier off
  }
  std::lock_guard<std::mutex> lock(mu_);
  disk_dir_ = std::move(resolved);
}

std::string PlanCache::disk_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_dir_;
}

std::string PlanCache::disk_path(const std::string& key) const {
  const std::string dir = disk_dir();
  if (dir.empty()) return {};
  return dir + "/" + key_hash_hex(key) + ".plan";
}

std::shared_ptr<const PlanCache::Entry> PlanCache::disk_load(const std::string& key) {
  const std::string path = disk_path(key);
  if (path.empty()) return nullptr;
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      disk_misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
    if (is.bad()) bytes.clear();
  }
  PlanArtifact a;
  bool ok = deserialize_artifact(bytes, a);
  // The embedded key must be exactly the one asked for: a filename-hash
  // collision, a renamed/copied file, or fingerprint-format drift between
  // builds all land here as a mismatch instead of being served.
  ok = ok && a.key == key && kind_prefix(a.kind) != nullptr &&
       key.rfind(kind_prefix(a.kind), 0) == 0;
  std::shared_ptr<Entry> e;
  if (ok) {
    e = std::make_shared<Entry>();
    switch (a.kind) {
      case ArtifactKind::Plan: {
        auto plan = std::make_shared<ExecutionPlan>(std::move(a.plan));
        // A checksum-valid but hazardous graph (FNV is not cryptographic)
        // must never reach an executor; re-prove it race-free like the
        // builder did.
        try {
          plan->validate();
        } catch (...) {
          ok = false;
        }
        e->plan = std::move(plan);
        e->report = std::move(a.report);
        e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry) + approx_plan_bytes(*e->plan);
        break;
      }
      case ArtifactKind::Footprint:
        e->footprint = a.footprint;
        e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
        break;
      case ArtifactKind::Estimate:
        e->makespan = a.estimate;
        e->cost = static_cast<Bytes>(key.size()) + sizeof(Entry);
        break;
      case ArtifactKind::Tune:
        ok = false;  // tune results are bundle-only, never entry files
        break;
    }
  }
  if (!ok) {
    disk_corrupt_.fetch_add(1, std::memory_order_relaxed);
    if (auto* rec = recorder_.load(std::memory_order_relaxed))
      rec->record_now(telemetry::FlightEventKind::DiskCorrupt);
    // Quarantine the bad file so the next lookup recomputes without
    // re-parsing it and the operator can inspect what went wrong.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (ec) std::filesystem::remove(path, ec);
    return nullptr;
  }
  disk_hits_.fetch_add(1, std::memory_order_relaxed);
  disk_bytes_read_.fetch_add(static_cast<std::int64_t>(bytes.size()),
                             std::memory_order_relaxed);
  if (auto* rec = recorder_.load(std::memory_order_relaxed))
    rec->record_now(telemetry::FlightEventKind::DiskHit, -1, -1, -1,
                    static_cast<std::int64_t>(bytes.size()));
  insert(key, e);
  return e;
}

void PlanCache::disk_store(const std::string& key, const Entry& entry) {
  const std::string path = disk_path(key);
  if (path.empty()) return;
  PlanArtifact a;
  a.kind = kind_of_key(key);
  a.key = key;
  switch (a.kind) {
    case ArtifactKind::Plan:
      if (!entry.plan) return;
      a.plan = *entry.plan;
      a.report = entry.report;
      break;
    case ArtifactKind::Footprint:
      a.footprint = entry.footprint;
      break;
    case ArtifactKind::Estimate:
      a.estimate = entry.makespan;
      break;
    case ArtifactKind::Tune:
      return;
  }
  const std::string bytes = serialize_artifact(a);
  // Unique-enough temp name (per-process ASLR address + sequence) in the
  // destination directory, so the final rename is same-filesystem atomic.
  // Two replicas racing on one temp name at worst produce a torn file that
  // the next read quarantines and recomputes — degraded, never wrong.
  static std::atomic<std::uint64_t> seq{0};
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%llx.%llu",
                static_cast<unsigned long long>(reinterpret_cast<std::uintptr_t>(&seq)),
                static_cast<unsigned long long>(seq.fetch_add(1)));
  const std::string temp = path + suffix;
  std::error_code ec;
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os || !os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
      std::filesystem::remove(temp, ec);
      return;
    }
  }
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return;
  }
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  disk_bytes_written_.fetch_add(static_cast<std::int64_t>(bytes.size()),
                                std::memory_order_relaxed);
}

PlanCache::CompactionReport PlanCache::compact_disk() {
  CompactionReport rep;
  const std::string dir = disk_dir();
  if (dir.empty()) return rep;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::error_code fec;
    if (!entry.is_regular_file(fec) || fec) continue;
    const std::string name = entry.path().filename().string();
    ++rep.scanned;
    enum class Fate { Keep, Quarantined, Temp, Stale };
    Fate fate = Fate::Keep;
    if (name.size() > 12 && name.ends_with(".quarantined")) {
      fate = Fate::Quarantined;
    } else if (name.find(".tmp.") != std::string::npos) {
      // Debris from a writer that died between temp-write and rename.
      fate = Fate::Temp;
    } else if (name.ends_with(".plan")) {
      // Header probe only (magic + version, both little-endian u32): a
      // full-format record from another version will never be served, so
      // it is dead weight; a current-version record is kept even if its
      // body is damaged — the read path quarantines those with a precise
      // corruption count, which compaction must not preempt.
      std::uint8_t header[8] = {};
      std::ifstream is(entry.path(), std::ios::binary);
      const bool got =
          is && is.read(reinterpret_cast<char*>(header), sizeof(header)).gcount() ==
                    static_cast<std::streamsize>(sizeof(header));
      auto le32 = [&](int off) {
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) v = (v << 8) | header[off + i];
        return v;
      };
      if (!got || le32(0) != kPlanArtifactMagic || le32(4) != kPlanFormatVersion)
        fate = Fate::Stale;
    }
    if (fate == Fate::Keep) {
      ++rep.kept;
      continue;
    }
    const auto size = entry.file_size(fec);
    std::error_code rec_ec;
    if (!std::filesystem::remove(entry.path(), rec_ec) || rec_ec) {
      ++rep.kept;  // undeletable: count it as surviving, not reclaimed
      continue;
    }
    if (!fec) rep.bytes_reclaimed += static_cast<Bytes>(size);
    switch (fate) {
      case Fate::Quarantined: ++rep.removed_quarantined; break;
      case Fate::Temp: ++rep.removed_temp; break;
      case Fate::Stale: ++rep.removed_stale; break;
      case Fate::Keep: break;
    }
  }
  disk_compacted_.fetch_add(rep.removed(), std::memory_order_relaxed);
  return rep;
}

std::size_t PlanCache::load_bundle(const PlanBundle& bundle) {
  if (!enabled()) return 0;
  std::size_t admitted = 0;
  for (const PlanArtifact& a : bundle.artifacts) {
    const char* prefix = kind_prefix(a.kind);
    if (prefix == nullptr || a.key.rfind(prefix, 0) != 0) continue;
    auto e = std::make_shared<Entry>();
    switch (a.kind) {
      case ArtifactKind::Plan: {
        auto plan = std::make_shared<ExecutionPlan>(a.plan);
        try {
          plan->validate();
        } catch (...) {
          plan.reset();
        }
        if (!plan) continue;
        e->plan = std::move(plan);
        e->report = a.report;
        e->cost =
            static_cast<Bytes>(a.key.size()) + sizeof(Entry) + approx_plan_bytes(*e->plan);
        break;
      }
      case ArtifactKind::Footprint:
        e->footprint = a.footprint;
        e->cost = static_cast<Bytes>(a.key.size()) + sizeof(Entry);
        break;
      case ArtifactKind::Estimate:
        e->makespan = a.estimate;
        e->cost = static_cast<Bytes>(a.key.size()) + sizeof(Entry);
        break;
      case ArtifactKind::Tune:
        continue;
    }
    insert(a.key, std::move(e));
    ++admitted;
  }
  return admitted;
}

void PlanCache::export_bundle(PlanBundle& bundle) const {
  std::vector<std::pair<std::string, std::shared_ptr<const Entry>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(map_.size());
    // Least-recent first, so load_bundle's front-inserts rebuild the same
    // recency order this cache had.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto found = map_.find(*it);
      if (found != map_.end()) snapshot.emplace_back(*it, found->second.entry);
    }
  }
  for (auto& [key, e] : snapshot) {
    PlanArtifact a;
    a.kind = kind_of_key(key);
    a.key = key;
    switch (a.kind) {
      case ArtifactKind::Plan:
        if (!e->plan) continue;
        a.plan = *e->plan;
        a.report = e->report;
        break;
      case ArtifactKind::Footprint:
        a.footprint = e->footprint;
        break;
      case ArtifactKind::Estimate:
        a.estimate = e->makespan;
        break;
      case ArtifactKind::Tune:
        continue;
    }
    bundle.artifacts.push_back(std::move(a));
  }
}

void PlanCache::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (map_.size() > capacity_) {
    auto victim = map_.find(lru_.back());
    bytes_ -= victim->second.entry->cost;
    map_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

void PlanCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  disk_hits_.store(0, std::memory_order_relaxed);
  disk_misses_.store(0, std::memory_order_relaxed);
  disk_corrupt_.store(0, std::memory_order_relaxed);
  disk_writes_.store(0, std::memory_order_relaxed);
  disk_compacted_.store(0, std::memory_order_relaxed);
  disk_bytes_read_.store(0, std::memory_order_relaxed);
  disk_bytes_written_.store(0, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.disk_misses = disk_misses_.load(std::memory_order_relaxed);
  s.disk_corrupt = disk_corrupt_.load(std::memory_order_relaxed);
  s.disk_writes = disk_writes_.load(std::memory_order_relaxed);
  s.disk_compacted = disk_compacted_.load(std::memory_order_relaxed);
  s.disk_bytes_read = static_cast<Bytes>(disk_bytes_read_.load(std::memory_order_relaxed));
  s.disk_bytes_written =
      static_cast<Bytes>(disk_bytes_written_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  s.bytes = bytes_;
  s.entries = static_cast<std::int64_t>(map_.size());
  return s;
}

void PlanCache::collect_metrics(telemetry::Registry& reg, const std::string& prefix) const {
  const PlanCacheStats s = stats();
  const std::string p = prefix + "plan_cache.";
  reg.counter(p + "hits").add(s.hits);
  reg.counter(p + "misses").add(s.misses);
  reg.counter(p + "evictions").add(s.evictions);
  reg.gauge(p + "bytes").set(static_cast<double>(s.bytes));
  reg.gauge(p + "entries").set(static_cast<double>(s.entries));
  reg.gauge(p + "capacity").set(static_cast<double>(capacity()));
  reg.gauge(p + "hit_rate").set(s.hit_rate());
  reg.counter(p + "disk.hits").add(s.disk_hits);
  reg.counter(p + "disk.misses").add(s.disk_misses);
  reg.counter(p + "disk.corrupt").add(s.disk_corrupt);
  reg.counter(p + "disk.writes").add(s.disk_writes);
  reg.counter(p + "disk.compacted").add(s.disk_compacted);
  reg.counter(p + "disk.bytes_read").add(static_cast<std::int64_t>(s.disk_bytes_read));
  reg.counter(p + "disk.bytes_written")
      .add(static_cast<std::int64_t>(s.disk_bytes_written));
}

}  // namespace gpupipe::core
