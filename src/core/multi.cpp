#include "core/multi.hpp"

#include "core/layout.hpp"
#include "core/telemetry.hpp"

namespace gpupipe::core {

std::vector<std::int64_t> MultiPipeline::partition(std::int64_t total,
                                                   const std::vector<double>& weights,
                                                   std::int64_t granule) {
  return layout::partition_weighted(total, weights, granule);
}

MultiPipeline::MultiPipeline(std::vector<DeviceShare> devices, const PipelineSpec& spec) {
  require(!devices.empty(), "MultiPipeline needs at least one device");
  spec.validate();
  require(spec.schedule == ScheduleKind::Static,
          "MultiPipeline requires the static schedule");
  for (const auto& d : devices)
    require(d.device != nullptr, "MultiPipeline device pointer is null");
  for (std::size_t i = 1; i < devices.size(); ++i) {
    require(devices[i].device->context() == devices[0].device->context(),
            "all MultiPipeline devices must share one SharedContext");
  }

  std::vector<double> weights;
  weights.reserve(devices.size());
  for (const auto& d : devices)
    weights.push_back(d.weight > 0.0 ? d.weight : d.device->profile().peak_flops);

  const std::vector<std::int64_t> parts =
      partition(spec.iterations(), weights, spec.chunk_size);

  std::int64_t begin = spec.loop_begin;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    Part part{devices[i].device, begin, begin + parts[i], nullptr};
    if (parts[i] > 0) {
      PipelineSpec sub = spec;
      sub.loop_begin = part.begin;
      sub.loop_end = part.end;
      part.pipeline = std::make_unique<Pipeline>(*part.device, sub);
    }
    begin = part.end;
    parts_.push_back(std::move(part));
  }
}

void MultiPipeline::run(const KernelFactory& make_kernel) {
  // Enqueue every device's slice first (no blocking), then drain. The
  // shared virtual clock lets all devices' engines progress together while
  // the host waits.
  for (auto& p : parts_)
    if (p.pipeline) p.pipeline->enqueue(make_kernel);
  for (auto& p : parts_)
    if (p.pipeline) p.pipeline->wait();
}

Bytes MultiPipeline::buffer_footprint() const {
  Bytes total = 0;
  for (const auto& p : parts_)
    if (p.pipeline) total += p.pipeline->buffer_footprint();
  return total;
}

void MultiPipeline::collect_metrics(telemetry::Registry& reg,
                                    const std::string& prefix) const {
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i].pipeline) continue;
    parts_[i].pipeline->collect_metrics(reg, prefix + "dev" + std::to_string(i) + ".");
  }
  // The devices share one SharedContext (class invariant), so the event
  // queue / task arena capacity counters are machine-wide: collect them once
  // under the base prefix, from the first device's context.
  for (const Part& part : parts_) {
    if (!part.device) continue;
    collect_sim_metrics(reg, part.device->context()->sim, prefix);
    break;
  }
}

}  // namespace gpupipe::core
