// Two-dimensional (nested-loop) pipelining — extension.
//
// The paper splits along a single loop variable and notes that "future work
// will extend it to support nested loops". TilePipeline implements that
// extension for the 2-D case: a nested loop over tile indices (i, j) whose
// iterations consume/produce 2-D blocks of row-major host matrices. Blocks
// stream through a device ring buffer that wraps in BOTH dimensions — index
// (r, c) lives at buffer cell (r mod ring_rows, c mod ring_cols) — so the
// device footprint is a small window of the matrix regardless of its size.
//
// Execution order is row-major over tiles ("bands" of constant i). Within a
// band the column dimension behaves exactly like the 1-D pipeline: sliding-
// window copy elision, per-column arrival events, ring-slot reuse guarded by
// reader events. At a band transition the row window moves; the plan inserts
// a cross-stream barrier (every stream waits for the previous band's last
// operations) before the new band's rows may overwrite buffer rows. Row
// halos shared between bands are re-transferred (documented simplification;
// the intra-band column elision is where the traffic is).
//
// Like the 1-D Pipeline, the schedule is compiled into an ExecutionPlan
// (PlanBuilder::tiles) and replayed by the shared PlanExecutor — the tile
// pipeline issues no raw stream operations itself. The plan is rebuilt per
// run() so out-of-range tile blocks surface at run time, not construction.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "common/name_index.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"
#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::core {

class TilePipeline;

/// Addressing handle for a 2-D ring buffer, passed to kernel bodies.
struct TileBufferView {
  std::byte* base = nullptr;
  Bytes elem = sizeof(double);
  Bytes pitch = 0;  ///< bytes between buffer rows
  std::int64_t ring_rows = 1;
  std::int64_t ring_cols = 1;

  /// Device pointer to host element (row, col) of the mapped matrix.
  template <typename T = double>
  T* at(std::int64_t row, std::int64_t col) const {
    return reinterpret_cast<T*>(base + static_cast<Bytes>(row % ring_rows) * pitch +
                                static_cast<Bytes>(col % ring_cols) * elem);
  }
};

/// One dimension of a tile split: for tile index t the block covers
/// [start(t), start(t) + window) in that dimension.
struct TileDimSpec {
  Affine start;
  std::int64_t window = 1;
};

/// One mapped matrix of a tile pipeline.
struct TileArraySpec {
  std::string name;
  MapType map = MapType::To;
  std::byte* host = nullptr;
  Bytes elem_size = sizeof(double);
  std::int64_t rows = 0;  ///< host extents, row-major
  std::int64_t cols = 0;
  TileDimSpec row_split;  ///< function of the outer tile index i
  TileDimSpec col_split;  ///< function of the inner tile index j

  void validate() const;
};

/// The 2-D region description. Tiles iterate (i, j) in [0, ni) x [0, nj),
/// row-major.
struct TileSpec {
  int num_streams = 2;
  std::int64_t ni = 0;
  std::int64_t nj = 0;
  /// Plan optimization level (core/plan_opt.hpp), as in PipelineSpec.
  int opt_level = 1;
  std::vector<TileArraySpec> arrays;

  void validate() const;
};

/// Per-tile information for the kernel factory.
class TileContext {
 public:
  std::int64_t i() const { return i_; }
  std::int64_t j() const { return j_; }
  const TileBufferView& view(std::string_view array_name) const;

 private:
  friend class TilePipeline;
  TileContext(const TilePipeline& p, std::int64_t i, std::int64_t j)
      : pipeline_(&p), i_(i), j_(j) {}
  const TilePipeline* pipeline_;
  std::int64_t i_;
  std::int64_t j_;
};

using TileKernelFactory = std::function<gpu::KernelDesc(const TileContext&)>;

/// Executes a 2-D tiled region with ring-buffered transfers.
class TilePipeline {
 public:
  TilePipeline(gpu::Gpu& gpu, TileSpec spec);
  ~TilePipeline();
  TilePipeline(const TilePipeline&) = delete;
  TilePipeline& operator=(const TilePipeline&) = delete;

  /// Runs every tile and blocks until the region completes.
  void run(const TileKernelFactory& make_kernel);

  Bytes buffer_footprint() const;
  int effective_streams() const { return static_cast<int>(streams_.size()); }
  /// H2D bytes actually transferred (tests verify the column elision).
  Bytes h2d_bytes() const { return stats_.h2d_bytes; }
  const PipelineStats& stats() const { return stats_; }

  /// The op graph the most recent run() executed (empty before any run).
  const ExecutionPlan& execution_plan() const { return plan_; }
  /// Pass statistics of the most recent run()'s plan compilation.
  const OptReport& opt_report() const { return opt_report_; }

  /// Derives a telemetry snapshot from the last run's plan, the stats, and
  /// the optimization report (see Pipeline::collect_metrics).
  void collect_metrics(telemetry::Registry& reg, const std::string& prefix = {}) const;

 private:
  struct ArrayState {
    TileArraySpec spec;
    std::byte* buffer = nullptr;
    TileBufferView view;
    std::unique_ptr<PlanArrayBinding> binding;
  };

  friend class TileContext;
  const TileBufferView& view_of(std::string_view name) const;

  gpu::Gpu& gpu_;
  TileSpec spec_;
  std::vector<gpu::Stream*> streams_;
  std::vector<ArrayState> arrays_;
  NameIndex index_;  ///< array name -> arrays_ position
  PipelineStats stats_;
  ExecutionPlan plan_;     ///< plan of the most recent run()
  OptReport opt_report_;   ///< its optimization report
  PlanExecutor executor_;
};

}  // namespace gpupipe::core
