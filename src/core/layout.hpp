// Shared chunk/ring layout arithmetic.
//
// The 1-D pipeline, the 2-D tile pipeline, the cost model, and the plan
// builder all need the same small set of layout computations: alignment
// round-up, per-split-index byte counts, ring-length sizing (how many split
// indices a device ring must hold so no in-flight chunk's window is
// overwritten), ring-segment enumeration (wrap decomposition of an index
// range into non-wrapping slot runs), and the weighted loop partition used
// for multi-device co-scheduling. Hoisted here so the arithmetic exists
// exactly once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "core/spec.hpp"

namespace gpupipe::core::layout {

/// Rounds `v` up to the next multiple of `align` (align >= 1).
template <typename T>
constexpr T round_up(T v, T align) {
  return (v + align - 1) / align * align;
}

/// Bytes of one split-dim index of `a` (a slab, or one column for block2d).
inline Bytes unit_bytes(const ArraySpec& a) {
  if (a.split.dim == 0) return static_cast<Bytes>(a.inner_elems()) * a.elem_size;
  return static_cast<Bytes>(a.dims[0]) * a.elem_size;
}

/// How far a window of `window` indices extends beyond its chunk's stride.
constexpr std::int64_t halo(std::int64_t window, std::int64_t scale) {
  return std::max<std::int64_t>(0, window - scale);
}

/// Ring length (in split-dim indices) for an affine split under chunk size
/// `c` and `s` in-flight streams: consecutive chunk starts differ by
/// `stride` = scale*c and up to `s` chunks overlap, plus the halo a window
/// extends beyond its chunk's stride. Everything is kept a multiple of the
/// stride so a chunk's window never wraps mid-chunk (mid-chunk wraps would
/// split transfers into slivers far below the bandwidth saturation width).
constexpr std::int64_t ring_len_affine(std::int64_t scale, std::int64_t window,
                                       std::int64_t c, int s) {
  const std::int64_t stride = scale * c;
  return stride * s + ceil_div(halo(window, scale), stride) * stride;
}

/// Split-index window a chunk over iterations [lo, hi) touches (handles
/// both affine splits and window functions).
inline std::pair<std::int64_t, std::int64_t> window_of(const ArraySpec& a, std::int64_t lo,
                                                       std::int64_t hi) {
  return {a.split.range_of(lo).first, a.split.range_of(hi - 1).second};
}

/// Ring length for `a` under loop range [loop_begin, loop_end): the affine
/// formula, or a scan of the loop for window-function splits (which also
/// validates monotonicity and output disjointness).
inline std::int64_t ring_len_for_spec(const ArraySpec& a, std::int64_t loop_begin,
                                      std::int64_t loop_end, std::int64_t c, int s) {
  if (!a.split.window_fn) return ring_len_affine(a.split.start.scale, a.split.window, c, s);
  // Scan the loop once per configuration: every group of `s` consecutive
  // chunks must fit in the ring simultaneously.
  std::vector<std::pair<std::int64_t, std::int64_t>> wins;
  for (std::int64_t lo = loop_begin; lo < loop_end; lo += c) {
    const std::int64_t hi = std::min(lo + c, loop_end);
    const auto w = window_of(a, lo, hi);
    require(0 <= w.first && w.first < w.second && w.second <= a.dims[a.split.dim],
            "array '" + a.name + "': window_fn returned a range outside the array");
    if (!wins.empty()) {
      require(w.first >= wins.back().first && w.second >= wins.back().second,
              "array '" + a.name + "': window_fn ranges must be non-decreasing");
      if (a.map != MapType::To)
        require(w.first >= wins.back().second,
                "array '" + a.name + "': output windows of different chunks overlap");
    }
    wins.push_back(w);
  }
  std::int64_t need = 1;
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const std::size_t j = std::min(wins.size() - 1, i + static_cast<std::size_t>(s) - 1);
    need = std::max(need, wins[j].second - wins[i].first);
  }
  return need;
}

/// One non-wrapping run of ring slots covering host indices
/// [index, index + count).
struct RingSegment {
  std::int64_t slot = 0;
  std::int64_t index = 0;
  std::int64_t count = 0;
};

/// Invokes `fn(slot, index, count)` for each non-wrapping segment of host
/// index range [a, b) in a ring of `ring_len` slots (at most two segments
/// when b - a <= ring_len).
template <typename Fn>
void for_ring_segments(std::int64_t a, std::int64_t b, std::int64_t ring_len, Fn&& fn) {
  std::int64_t idx = a;
  while (idx < b) {
    const std::int64_t slot = idx % ring_len;
    const std::int64_t count = std::min(b - idx, ring_len - slot);
    fn(slot, idx, count);
    idx += count;
  }
}

/// Materialised for_ring_segments.
inline std::vector<RingSegment> ring_segments(std::int64_t a, std::int64_t b,
                                              std::int64_t ring_len) {
  std::vector<RingSegment> out;
  for_ring_segments(a, b, ring_len, [&](std::int64_t slot, std::int64_t idx,
                                        std::int64_t count) {
    out.push_back({slot, idx, count});
  });
  return out;
}

/// Proportional integer partition of `total` items by `weights`, each part
/// rounded to a multiple of `granule` (except the last, which absorbs the
/// remainder). Used to slice the split loop across devices.
inline std::vector<std::int64_t> partition_weighted(std::int64_t total,
                                                    const std::vector<double>& weights,
                                                    std::int64_t granule) {
  require(!weights.empty(), "partition needs at least one weight");
  require(granule >= 1, "partition granule must be >= 1");
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  require(sum > 0.0, "partition weights must sum to a positive value");

  std::vector<std::int64_t> parts(weights.size(), 0);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    std::int64_t want =
        static_cast<std::int64_t>(static_cast<double>(total) * weights[i] / sum + 0.5);
    want = want / granule * granule;  // keep chunks whole
    want = std::clamp<std::int64_t>(want, 0, total - assigned);
    parts[i] = want;
    assigned += want;
  }
  parts.back() = total - assigned;
  return parts;
}

}  // namespace gpupipe::core::layout
