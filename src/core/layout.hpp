// Shared chunk/ring layout arithmetic.
//
// The 1-D pipeline, the 2-D tile pipeline, the cost model, and the plan
// builder all need the same small set of layout computations: alignment
// round-up, per-split-index byte counts, ring-length sizing (how many split
// indices a device ring must hold so no in-flight chunk's window is
// overwritten), ring-segment enumeration (wrap decomposition of an index
// range into non-wrapping slot runs), and the weighted loop partition used
// for multi-device co-scheduling. Hoisted here so the arithmetic exists
// exactly once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/spec.hpp"

namespace gpupipe::core::layout {

/// Rounds `v` up to the next multiple of `align` (align >= 1). Throws
/// instead of wrapping when the rounded value does not fit in T (byte
/// counts near the top of the type's range).
template <typename T>
inline T round_up(T v, T align) {
  require(align >= 1, "round_up alignment must be >= 1");
  if constexpr (std::is_signed_v<T>) require(v >= 0, "round_up value must be non-negative");
  const T rem = v % align;
  if (rem == 0) return v;
  const T pad = align - rem;
  require(v <= std::numeric_limits<T>::max() - pad, "round_up overflows the value type");
  return v + pad;
}

/// Bytes of one split-dim index of `a` (a slab, or one column for block2d).
inline Bytes unit_bytes(const ArraySpec& a) {
  if (a.split.dim == 0) return static_cast<Bytes>(a.inner_elems()) * a.elem_size;
  return static_cast<Bytes>(a.dims[0]) * a.elem_size;
}

/// How far a window of `window` indices extends beyond its chunk's stride.
constexpr std::int64_t halo(std::int64_t window, std::int64_t scale) {
  return std::max<std::int64_t>(0, window - scale);
}

/// Ring length (in split-dim indices) for an affine split under chunk size
/// `c` and `s` in-flight streams: consecutive chunk starts differ by
/// `stride` = scale*c and up to `s` chunks overlap, plus the halo a window
/// extends beyond its chunk's stride. Everything is kept a multiple of the
/// stride so a chunk's window never wraps mid-chunk (mid-chunk wraps would
/// split transfers into slivers far below the bandwidth saturation width).
constexpr std::int64_t ring_len_affine(std::int64_t scale, std::int64_t window,
                                       std::int64_t c, int s) {
  const std::int64_t stride = scale * c;
  return stride * s + ceil_div(halo(window, scale), stride) * stride;
}

/// Split-index window a chunk over iterations [lo, hi) touches (handles
/// both affine splits and window functions). The range must be non-empty:
/// range_of(hi - 1) is meaningless for lo == hi (a zero-iteration chunk,
/// e.g. after mem-limit shrinking or an empty partition_weighted slice).
inline std::pair<std::int64_t, std::int64_t> window_of(const ArraySpec& a, std::int64_t lo,
                                                       std::int64_t hi) {
  require(lo < hi, "array '" + a.name + "': chunk iteration range is empty");
  return {a.split.range_of(lo).first, a.split.range_of(hi - 1).second};
}

/// Ring length for `a` under loop range [loop_begin, loop_end): the affine
/// formula, or a scan of the loop for window-function splits (which also
/// validates monotonicity and output disjointness).
inline std::int64_t ring_len_for_spec(const ArraySpec& a, std::int64_t loop_begin,
                                      std::int64_t loop_end, std::int64_t c, int s) {
  require(loop_begin < loop_end, "array '" + a.name + "': pipeline loop range is empty");
  if (!a.split.window_fn) {
    // Callers clamp the returned length to the array extent; a window that
    // steps outside the array would then wrap a chunk onto itself (the
    // for_ring_segments overlap this guard exists to prevent).
    const auto first = a.split.range_of(loop_begin);
    const auto last = a.split.range_of(loop_end - 1);
    require(0 <= first.first && last.second <= a.dims[static_cast<std::size_t>(a.split.dim)],
            "array '" + a.name + "': split window touches indices outside the array");
    return ring_len_affine(a.split.start.scale, a.split.window, c, s);
  }
  // Scan the loop once per configuration: every group of `s` consecutive
  // chunks must fit in the ring simultaneously.
  std::vector<std::pair<std::int64_t, std::int64_t>> wins;
  for (std::int64_t lo = loop_begin; lo < loop_end; lo += c) {
    const std::int64_t hi = std::min(lo + c, loop_end);
    const auto w = window_of(a, lo, hi);
    require(0 <= w.first && w.first < w.second && w.second <= a.dims[a.split.dim],
            "array '" + a.name + "': window_fn returned a range outside the array");
    if (!wins.empty()) {
      require(w.first >= wins.back().first && w.second >= wins.back().second,
              "array '" + a.name + "': window_fn ranges must be non-decreasing");
      if (a.map != MapType::To)
        require(w.first >= wins.back().second,
                "array '" + a.name + "': output windows of different chunks overlap");
    }
    wins.push_back(w);
  }
  std::int64_t need = 1;
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const std::size_t j = std::min(wins.size() - 1, i + static_cast<std::size_t>(s) - 1);
    need = std::max(need, wins[j].second - wins[i].first);
  }
  return need;
}

/// One non-wrapping run of ring slots covering host indices
/// [index, index + count).
struct RingSegment {
  std::int64_t slot = 0;
  std::int64_t index = 0;
  std::int64_t count = 0;
};

/// Invokes `fn(slot, index, count)` for each non-wrapping segment of host
/// index range [a, b) in a ring of `ring_len` slots (at most two segments).
/// The range must fit in the ring: a wider range would revisit slots and
/// silently emit overlapping runs, corrupting resident data.
template <typename Fn>
void for_ring_segments(std::int64_t a, std::int64_t b, std::int64_t ring_len, Fn&& fn) {
  require(ring_len >= 1 && 0 <= a && a <= b, "ring segment range must be non-negative");
  require(b - a <= ring_len, "ring segment range is larger than the ring");
  std::int64_t idx = a;
  while (idx < b) {
    const std::int64_t slot = idx % ring_len;
    const std::int64_t count = std::min(b - idx, ring_len - slot);
    fn(slot, idx, count);
    idx += count;
  }
}

/// Materialised for_ring_segments.
inline std::vector<RingSegment> ring_segments(std::int64_t a, std::int64_t b,
                                              std::int64_t ring_len) {
  std::vector<RingSegment> out;
  for_ring_segments(a, b, ring_len, [&](std::int64_t slot, std::int64_t idx,
                                        std::int64_t count) {
    out.push_back({slot, idx, count});
  });
  return out;
}

/// Proportional integer partition of `total` items by `weights`, each part
/// rounded down to a multiple of `granule`; the remainder is granted
/// granule-at-a-time to the parts with the largest fractional share (later
/// parts win ties). Zero-weight parts always receive zero — a disabled
/// device must never be handed iterations just because it is listed last.
/// Used to slice the split loop across devices.
inline std::vector<std::int64_t> partition_weighted(std::int64_t total,
                                                    const std::vector<double>& weights,
                                                    std::int64_t granule) {
  require(!weights.empty(), "partition needs at least one weight");
  require(granule >= 1, "partition granule must be >= 1");
  require(total >= 0, "partition total must be non-negative");
  double sum = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "partition weights must be non-negative");
    sum += w;
  }
  require(sum > 0.0, "partition weights must sum to a positive value");

  std::vector<std::int64_t> parts(weights.size(), 0);
  std::vector<double> frac(weights.size(), -std::numeric_limits<double>::infinity());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    const double exact = static_cast<double>(total) * weights[i] / sum;
    const std::int64_t floored =
        static_cast<std::int64_t>(exact) / granule * granule;
    parts[i] = floored;
    frac[i] = exact - static_cast<double>(floored);
    assigned += floored;
  }
  // Grant the leftover in granule steps to the hungriest positive-weight
  // part; the final grant may be sub-granule so the parts always sum to
  // `total` exactly.
  while (assigned < total) {
    std::size_t best = 0;
    for (std::size_t i = 0; i < weights.size(); ++i)
      if (frac[i] >= frac[best]) best = i;
    const std::int64_t grant = std::min<std::int64_t>(granule, total - assigned);
    parts[best] += grant;
    frac[best] -= static_cast<double>(granule);
    assigned += grant;
  }
  return parts;
}

}  // namespace gpupipe::core::layout
