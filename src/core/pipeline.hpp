// The pipeline executor — the paper's core contribution.
//
// Given a PipelineSpec (schedule, chunk_size, num_streams, pipeline_map
// clauses, optional memory limit) and a per-chunk kernel factory, a Pipeline
//   1. sizes and pre-allocates one device ring buffer per mapped array,
//      shrinking chunk_size/num_streams until the footprint fits the memory
//      limit (pipeline_mem_limit) or free device memory,
//   2. compiles the split loop into an ExecutionPlan (core/plan.hpp): per
//      chunk, sliding-window H2D copies of newly required input slices, the
//      user's kernel, and D2H copies of produced output slices — round-robin
//      across num_streams GPU streams — with explicit slot-reuse and
//      copy/kernel dependency edges,
//   3. delegates execution to the shared PlanExecutor, which replays the
//      node graph against the Gpu (events, waits, stats) — the Pipeline
//      itself never issues raw stream operations,
//   4. statically validates the plan against the hazard checker before the
//      first node is issued (when hazard tracking is enabled), in addition
//      to the tracker's runtime verification.
//
// The adaptive schedule (the paper's stated future work, implemented here as
// an extension) probes the first chunk, models per-chunk costs from the
// device profile, picks the chunk size minimising predicted makespan, and
// reconfigures the ring buffers before planning the remaining iterations.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "common/name_index.hpp"
#include "core/buffer.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"
#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::core {

class Pipeline;

/// Per-chunk information handed to the kernel factory.
class ChunkContext {
 public:
  /// Zero-based chunk number.
  std::int64_t chunk_index() const { return chunk_; }
  /// The chunk's loop-iteration subrange [begin, end).
  std::int64_t begin() const { return begin_; }
  std::int64_t end() const { return end_; }
  std::int64_t iterations() const { return end_ - begin_; }

  /// Addressing view of a mapped array's ring buffer, by clause name.
  const BufferView& view(std::string_view array_name) const;

 private:
  friend class Pipeline;
  ChunkContext(const Pipeline& p, std::int64_t chunk, std::int64_t begin, std::int64_t end)
      : pipeline_(&p), chunk_(chunk), begin_(begin), end_(end) {}
  const Pipeline* pipeline_;
  std::int64_t chunk_;
  std::int64_t begin_;
  std::int64_t end_;
};

/// Builds the kernel for one chunk. The returned KernelDesc's body reads and
/// writes device data exclusively through the chunk's BufferViews (and any
/// persistent device pointers the caller manages itself). The runtime fills
/// in the kernel's memory effects for the mapped arrays.
using KernelFactory = std::function<gpu::KernelDesc(const ChunkContext&)>;

/// The data-movement plan of one chunk (introspection; see Pipeline::plan).
struct ChunkPlan {
  std::int64_t index = 0;
  int stream = 0;
  std::int64_t begin = 0;  ///< iteration subrange
  std::int64_t end = 0;
  struct Move {
    std::string array;
    std::int64_t lo = 0;  ///< split-index range
    std::int64_t hi = 0;
  };
  std::vector<Move> copies_in;   ///< after sliding-window elision
  std::vector<Move> copies_out;
};

/// A reusable pipelined offload region bound to one simulated GPU.
class Pipeline {
 public:
  /// Validates the spec, solves the memory limit, pre-allocates ring
  /// buffers, and creates the GPU streams. Throws on an unsatisfiable spec
  /// (e.g. one window alone exceeds the memory limit).
  Pipeline(gpu::Gpu& gpu, PipelineSpec spec);
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Executes the region once: every chunk's transfers and kernel are
  /// enqueued and the host blocks until the region completes (the
  /// synchronous semantics of a `target` region). May be called repeatedly;
  /// buffers, streams, and the compiled plan are reused.
  void run(const KernelFactory& make_kernel);

  /// Split-phase variant for co-scheduling across devices: enqueue() issues
  /// every chunk without blocking; wait() drains the region and resets the
  /// dependency bookkeeping. Only the static schedule supports split-phase
  /// execution (the adaptive probe needs an intermediate drain).
  void enqueue(const KernelFactory& make_kernel);
  void wait();

  /// Returns the per-chunk data-movement plan run() would execute —
  /// iteration subranges, stream assignment, and the input/output slices
  /// after sliding-window elision. Pure arithmetic; does not touch the
  /// device. Useful for debugging directives and in tests.
  std::vector<ChunkPlan> plan() const;
  /// Prints plan() in a human-readable form.
  void print_plan(std::ostream& os) const;

  /// The compiled op graph run() executes (static schedule; the adaptive
  /// schedule re-plans around its probe). Rebuilt whenever buffers are
  /// reconfigured; fingerprintable static specs share the immutable plan
  /// object with the process-wide PlanCache (and with other pipelines of
  /// the same shape).
  const ExecutionPlan& execution_plan() const { return *plan_; }

  /// Pass statistics of the most recent plan compilation.
  const OptReport& opt_report() const { return opt_report_; }

  /// Derives a telemetry snapshot from this pipeline's plan, stats,
  /// optimization report, and ring buffers into `reg` (metric names get
  /// `prefix` prepended — used by MultiPipeline for per-device namespaces).
  /// Pull-based: nothing is recorded during execution.
  void collect_metrics(telemetry::Registry& reg, const std::string& prefix = {}) const;

  /// Re-points a mapped array at a different host allocation of identical
  /// shape (e.g. ping-pong buffers between Jacobi sweeps). Takes effect for
  /// subsequent run() calls; device buffers are reused.
  void rebind_host(std::string_view array_name, std::byte* host);

  /// Chunk size actually in use (after memory-limit shrinking / adaptive
  /// tuning).
  std::int64_t effective_chunk_size() const { return chunk_size_; }
  /// Stream count actually in use.
  int effective_streams() const { return static_cast<int>(streams_.size()); }
  /// The GPU streams this pipeline issues on — the scheduler records
  /// completion events on them to track a job without draining the device.
  const std::vector<gpu::Stream*>& streams() const { return streams_; }
  /// Binds the halo exchange any P2pSend/P2pRecv nodes of this pipeline's
  /// plan dispatch to (sharded sub-regions only; see src/sched/shard.*).
  /// The exchange must outlive every enqueue()/run() that uses it.
  void set_exchange(PlanExchange* exchange) { executor_.set_exchange(exchange); }
  /// Addressing view of mapped array `ai`'s ring buffer (spec array order) —
  /// the sharding runtime derives P2P exchange pointers from it.
  const BufferView& array_view(std::size_t ai) const;
  /// Total device bytes held by the pre-allocated ring buffers.
  Bytes buffer_footprint() const;
  const PipelineStats& stats() const { return stats_; }
  const PipelineSpec& spec() const { return spec_; }
  gpu::Gpu& device() { return gpu_; }

  /// Ring length (in split-dim indices) the executor provisions for an
  /// array under chunk size `c` and `s` streams: enough for all in-flight
  /// chunk windows plus the dependency window (exposed for tests).
  static std::int64_t ring_len_for(const ArraySpec& a, std::int64_t c, int s);

  /// Ring length for `a` under this spec's loop range: the affine formula,
  /// or a scan of the loop for window-function splits (which also validates
  /// monotonicity and output disjointness).
  std::int64_t ring_len_for_spec(const ArraySpec& a, std::int64_t c, int s) const;

 private:
  struct ArrayState {
    ArraySpec spec;
    std::unique_ptr<RingBuffer> ring;
    std::unique_ptr<RingBufferBinding> binding;
  };

  /// (Re)allocates ring buffers, recompiles the plan, and re-binds the
  /// executor for the current chunk_size/stream count.
  void configure_buffers();
  /// Compiles iterations [from, to) against the current buffers.
  ExecutionPlan build_plan(std::int64_t from, std::int64_t to, std::int64_t first_chunk) const;
  /// Statically validates `p` once per (re)build when hazards are enabled.
  void maybe_validate(const ExecutionPlan& p) const;
  /// Adapts the KernelFactory to the executor's node-level interface.
  PlanKernelMaker maker(const KernelFactory& make_kernel) const;
  /// Adaptive extension: pick a chunk size from a probe kernel's duration.
  std::int64_t adaptive_chunk_size(SimTime probe_kernel_time,
                                   std::int64_t probe_chunk) const;

  friend class ChunkContext;
  const BufferView& view_of(std::string_view name) const;

  gpu::Gpu& gpu_;
  PipelineSpec spec_;
  Bytes mem_limit_ = 0;
  std::int64_t chunk_size_ = 1;
  std::vector<gpu::Stream*> streams_;
  std::vector<ArrayState> arrays_;
  NameIndex index_;  ///< array name -> arrays_ position (view_of/rebind_host)
  PipelineStats stats_;
  /// Compiled full-loop plan for the current shape — immutable and possibly
  /// shared with the PlanCache and other same-shape pipelines.
  std::shared_ptr<const ExecutionPlan> plan_;
  /// Report of the latest optimize_plan call (build_plan is const but
  /// compilation is observable state, hence mutable).
  mutable OptReport opt_report_;
  PlanExecutor executor_;
};

}  // namespace gpupipe::core
