// The pipeline executor — the paper's core contribution.
//
// Given a PipelineSpec (schedule, chunk_size, num_streams, pipeline_map
// clauses, optional memory limit) and a per-chunk kernel factory, a Pipeline
//   1. sizes and pre-allocates one device ring buffer per mapped array,
//      shrinking chunk_size/num_streams until the footprint fits the memory
//      limit (pipeline_mem_limit) or free device memory,
//   2. partitions the split loop into chunks and issues, per chunk:
//      sliding-window H2D copies of newly required input slices, the user's
//      kernel, and D2H copies of produced output slices — round-robin across
//      num_streams GPU streams,
//   3. chains correctness dependencies with events: a kernel waits for every
//      copy that brought its inputs (including copies issued by earlier
//      chunks on other streams); a copy that reuses a ring slot waits for
//      the last kernel that read it; a kernel that rewrites an output slot
//      waits for the copy-out that drained it,
//   4. declares each operation's memory effects so the hazard tracker can
//      independently verify the schedule.
//
// The adaptive schedule (the paper's stated future work, implemented here as
// an extension) probes the first chunk, models per-chunk costs from the
// device profile, picks the chunk size minimising predicted makespan, and
// reconfigures the ring buffers before running the remaining iterations.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/buffer.hpp"
#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::core {

class Pipeline;

/// Per-chunk information handed to the kernel factory.
class ChunkContext {
 public:
  /// Zero-based chunk number.
  std::int64_t chunk_index() const { return chunk_; }
  /// The chunk's loop-iteration subrange [begin, end).
  std::int64_t begin() const { return begin_; }
  std::int64_t end() const { return end_; }
  std::int64_t iterations() const { return end_ - begin_; }

  /// Addressing view of a mapped array's ring buffer, by clause name.
  const BufferView& view(std::string_view array_name) const;

 private:
  friend class Pipeline;
  ChunkContext(const Pipeline& p, std::int64_t chunk, std::int64_t begin, std::int64_t end)
      : pipeline_(&p), chunk_(chunk), begin_(begin), end_(end) {}
  const Pipeline* pipeline_;
  std::int64_t chunk_;
  std::int64_t begin_;
  std::int64_t end_;
};

/// Builds the kernel for one chunk. The returned KernelDesc's body reads and
/// writes device data exclusively through the chunk's BufferViews (and any
/// persistent device pointers the caller manages itself). The runtime fills
/// in the kernel's memory effects for the mapped arrays.
using KernelFactory = std::function<gpu::KernelDesc(const ChunkContext&)>;

/// The data-movement plan of one chunk (introspection; see Pipeline::plan).
struct ChunkPlan {
  std::int64_t index = 0;
  int stream = 0;
  std::int64_t begin = 0;  ///< iteration subrange
  std::int64_t end = 0;
  struct Move {
    std::string array;
    std::int64_t lo = 0;  ///< split-index range
    std::int64_t hi = 0;
  };
  std::vector<Move> copies_in;   ///< after sliding-window elision
  std::vector<Move> copies_out;
};

/// Execution counters for one or more run() calls.
struct PipelineStats {
  std::int64_t chunks = 0;
  std::int64_t h2d_copies = 0;
  std::int64_t d2h_copies = 0;
  Bytes h2d_bytes = 0;
  Bytes d2h_bytes = 0;
  std::int64_t kernels = 0;
  std::int64_t events = 0;
  std::int64_t stream_waits = 0;
};

/// A reusable pipelined offload region bound to one simulated GPU.
class Pipeline {
 public:
  /// Validates the spec, solves the memory limit, pre-allocates ring
  /// buffers, and creates the GPU streams. Throws on an unsatisfiable spec
  /// (e.g. one window alone exceeds the memory limit).
  Pipeline(gpu::Gpu& gpu, PipelineSpec spec);
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Executes the region once: every chunk's transfers and kernel are
  /// enqueued and the host blocks until the region completes (the
  /// synchronous semantics of a `target` region). May be called repeatedly;
  /// buffers and streams are reused.
  void run(const KernelFactory& make_kernel);

  /// Split-phase variant for co-scheduling across devices: enqueue() issues
  /// every chunk without blocking; wait() drains the region and resets the
  /// dependency bookkeeping. Only the static schedule supports split-phase
  /// execution (the adaptive probe needs an intermediate drain).
  void enqueue(const KernelFactory& make_kernel);
  void wait();

  /// Returns the per-chunk data-movement plan run() would execute —
  /// iteration subranges, stream assignment, and the input/output slices
  /// after sliding-window elision. Pure arithmetic; does not touch the
  /// device. Useful for debugging directives and in tests.
  std::vector<ChunkPlan> plan() const;
  /// Prints plan() in a human-readable form.
  void print_plan(std::ostream& os) const;

  /// Re-points a mapped array at a different host allocation of identical
  /// shape (e.g. ping-pong buffers between Jacobi sweeps). Takes effect for
  /// subsequent run() calls; device buffers are reused.
  void rebind_host(std::string_view array_name, std::byte* host);

  /// Chunk size actually in use (after memory-limit shrinking / adaptive
  /// tuning).
  std::int64_t effective_chunk_size() const { return chunk_size_; }
  /// Stream count actually in use.
  int effective_streams() const { return static_cast<int>(streams_.size()); }
  /// Total device bytes held by the pre-allocated ring buffers.
  Bytes buffer_footprint() const;
  const PipelineStats& stats() const { return stats_; }
  const PipelineSpec& spec() const { return spec_; }
  gpu::Gpu& device() { return gpu_; }

  /// Ring length (in split-dim indices) the executor provisions for an
  /// array under chunk size `c` and `s` streams: enough for all in-flight
  /// chunk windows plus the dependency window (exposed for tests).
  static std::int64_t ring_len_for(const ArraySpec& a, std::int64_t c, int s);

  /// Ring length for `a` under this spec's loop range: the affine formula,
  /// or a scan of the loop for window-function splits (which also validates
  /// monotonicity and output disjointness).
  std::int64_t ring_len_for_spec(const ArraySpec& a, std::int64_t c, int s) const;

 private:
  struct ArrayState {
    ArraySpec spec;
    std::unique_ptr<RingBuffer> ring;
    /// Host indices [first, copied_hi) already scheduled for copy-in.
    std::int64_t copied_hi = 0;
    bool copied_any = false;
    /// For each copied-in split index: the event signalling its arrival and
    /// the stream that issued it (kernels on other streams must wait on it).
    std::unordered_map<std::int64_t, std::pair<gpu::EventPtr, gpu::Stream*>> copy_event;
    /// Per ring slot: event of the last kernel that read it (guards reuse).
    std::vector<std::pair<gpu::EventPtr, gpu::Stream*>> slot_reader;
    /// Per ring slot: event of the last copy-out that drained it (guards
    /// output-slot rewrite).
    std::vector<std::pair<gpu::EventPtr, gpu::Stream*>> slot_drained;
  };

  bool is_input(const ArrayState& a) const {
    return a.spec.map == MapType::To || a.spec.map == MapType::ToFrom;
  }
  bool is_output(const ArrayState& a) const {
    return a.spec.map == MapType::From || a.spec.map == MapType::ToFrom;
  }
  /// Split-index window a chunk over iterations [lo, hi) touches (handles
  /// both affine splits and window functions).
  static std::pair<std::int64_t, std::int64_t> window_of(const ArraySpec& a, std::int64_t lo,
                                                         std::int64_t hi) {
    return {a.split.range_of(lo).first, a.split.range_of(hi - 1).second};
  }


  /// Solves the memory limit: shrinks chunk_size (then num_streams) until
  /// predicted footprints fit `limit`. Returns the chosen (chunk, streams).
  std::pair<std::int64_t, int> solve_memory(Bytes limit) const;
  /// (Re)allocates ring buffers for the current chunk_size/stream count.
  void configure_buffers();
  /// Runs iterations [from, to) through the chunk loop.
  void run_range(const KernelFactory& make_kernel, std::int64_t from, std::int64_t to,
                 std::int64_t& chunk_counter);
  /// Drains all pipeline streams and clears dependency bookkeeping.
  void finish_region();
  /// Adaptive extension: pick a chunk size from a probe kernel's duration.
  std::int64_t adaptive_chunk_size(SimTime probe_kernel_time,
                                   std::int64_t probe_chunk) const;

  friend class ChunkContext;
  const BufferView& view_of(std::string_view name) const;

  gpu::Gpu& gpu_;
  PipelineSpec spec_;
  Bytes mem_limit_ = 0;
  std::int64_t chunk_size_ = 1;
  std::vector<gpu::Stream*> streams_;
  std::vector<ArrayState> arrays_;
  PipelineStats stats_;
  sim::TaskPtr last_kernel_;  // most recent kernel (adaptive probe)
};

}  // namespace gpupipe::core
