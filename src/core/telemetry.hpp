// Plan-correlated telemetry: domain collectors over the runtime's existing
// state, and the trace <-> plan join.
//
// Collection is pull-based: every collect_*() derives its counters, gauges,
// and histograms from state the runtime keeps anyway (trace spans,
// PipelineStats, engine busy times, allocator peaks, the plan itself), so
// executors pay nothing per chunk — telemetry cost is incurred only when a
// snapshot is requested.
//
// The join side uses the plan node id every sim::Span carries (stamped at
// submission by Gpu::submit / dry_run while PlanExecutor publishes the
// node being issued): attribute_spans() folds measured spans back onto
// nodes, and annotate_plan() lines a measured timeline up against a
// cost-model dry run of the same plan, reporting per-node measured vs
// modelled time and the mean relative model error — the number that tells
// you whether the autotuner's cost model can be trusted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"
#include "gpu/gpu.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace gpupipe::core {

/// Trace-derived metrics under <prefix>trace.*: bytes and busy time per
/// kind, per-lane busy time, overlap efficiency, dropped spans.
void collect_trace_metrics(telemetry::Registry& reg, const sim::Trace& t,
                           const std::string& prefix = "");

/// Plan-shape metrics under <prefix>plan.*: node/edge counts, transfer
/// bytes per op, and the ring-slot occupancy distribution (fraction of each
/// array's ring a kernel's accesses cover).
void collect_plan_metrics(telemetry::Registry& reg, const ExecutionPlan& plan,
                          const std::string& prefix = "");

/// Execution counters under <prefix>stats.*; stream_waits is the hazard
/// stall count (cross-stream waits the executor issued).
void collect_stats_metrics(telemetry::Registry& reg, const PipelineStats& stats,
                           const std::string& prefix = "");

/// Optimization-pass savings under <prefix>opt.*.
void collect_opt_metrics(telemetry::Registry& reg, const OptReport& report,
                         const std::string& prefix = "");

/// Device-level metrics under <prefix>gpu.*: engine busy times and the
/// device-memory high-water marks (client peak and observed peak).
void collect_device_metrics(telemetry::Registry& reg, const gpu::Gpu& g,
                            const std::string& prefix = "");

/// Simulation-core metrics under <prefix>sim.*: events executed, the event
/// queue's pending count and high-water mark, the pooled-callable store
/// size, and the task arena's slab occupancy (live / high-water / slots /
/// created, successor-edge slots, interned labels). These are the capacity
/// counters behind the serve-scale hot loop — a pool or arena high-water
/// that keeps growing across requests is a leak in task or event recycling.
/// Non-const: reaching the arena through Simulator::extension constructs it
/// on first use (a fresh simulator then reports zeros, which is correct).
void collect_sim_metrics(telemetry::Registry& reg, sim::Simulator& sim,
                         const std::string& prefix = "");

/// Measured cost attributed to one plan node through the span join.
struct NodeCost {
  SimTime seconds = 0.0;  ///< summed durations of the node's spans
  Bytes bytes = 0;        ///< summed payload bytes
  int spans = 0;          ///< spans attributed (0 = node produced no work)
};

/// Folds `t`'s spans onto `plan`'s nodes by span node id. Returns one entry
/// per node (indexed by node id); spans without a valid node id (host API,
/// operations from outside this plan) are ignored. Zero-duration sync spans
/// still count toward `spans` so event-only nodes are visibly attributed.
std::vector<NodeCost> attribute_spans(const ExecutionPlan& plan, const sim::Trace& t);

/// One plan annotated with measured and modelled per-node costs.
struct PlanAnnotation {
  struct Row {
    int node = 0;
    PlanOp op = PlanOp::Kernel;
    int stream = 0;
    std::string label;
    SimTime measured = 0.0;
    SimTime modelled = 0.0;
    Bytes bytes = 0;
    /// |measured - modelled| / measured; negative when not comparable
    /// (no measured time).
    double rel_error = -1.0;
  };
  std::vector<Row> rows;          ///< device-work nodes, plan order
  double mean_rel_error = 0.0;    ///< mean of the comparable rows
  int compared = 0;               ///< rows with a valid rel_error
};

/// Joins a measured timeline and a modelled timeline (dry_run of the same
/// plan) node by node. Only device-work nodes (H2D, D2H, Kernel) are
/// compared — sync markers have zero duration by construction.
PlanAnnotation annotate_plan(const ExecutionPlan& plan, const sim::Trace& measured,
                             const sim::Trace& modelled);

/// Prints the annotation as an aligned table plus the mean model error.
void print_annotation(std::ostream& os, const PlanAnnotation& a);

}  // namespace gpupipe::core
