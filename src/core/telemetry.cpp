#include "core/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/table.hpp"
#include "sim/task.hpp"

namespace gpupipe::core {

void collect_trace_metrics(telemetry::Registry& reg, const sim::Trace& t,
                           const std::string& prefix) {
  const std::string p = prefix + "trace.";
  Bytes h2d = 0, d2h = 0, d2d = 0;
  for (const sim::Span& s : t.spans()) {
    if (s.kind == sim::SpanKind::H2D) h2d += s.bytes;
    if (s.kind == sim::SpanKind::D2H) d2h += s.bytes;
    if (s.kind == sim::SpanKind::D2D) d2d += s.bytes;
  }
  reg.counter(p + "h2d_bytes").add(static_cast<std::int64_t>(h2d));
  reg.counter(p + "d2h_bytes").add(static_cast<std::int64_t>(d2h));
  reg.counter(p + "d2d_bytes").add(static_cast<std::int64_t>(d2d));
  reg.counter(p + "spans").add(static_cast<std::int64_t>(t.spans().size()));
  reg.counter(p + "dropped_spans").add(static_cast<std::int64_t>(t.dropped_spans()));
  reg.gauge(p + "h2d_busy_s").set(t.occupancy(sim::SpanKind::H2D));
  reg.gauge(p + "d2h_busy_s").set(t.occupancy(sim::SpanKind::D2H));
  reg.gauge(p + "kernel_busy_s").set(t.occupancy(sim::SpanKind::Kernel));
  reg.gauge(p + "overlap_efficiency").set(sim::overlap_efficiency(t));
  for (const auto& [lane, busy] : t.time_by_lane())
    reg.gauge(p + "lane." + lane + ".busy_s").set(busy);
}

void collect_plan_metrics(telemetry::Registry& reg, const ExecutionPlan& plan,
                          const std::string& prefix) {
  const std::string p = prefix + "plan.";
  std::int64_t h2d_nodes = 0, d2h_nodes = 0, kernel_nodes = 0, edges = 0;
  for (const PlanNode& n : plan.nodes) {
    edges += static_cast<std::int64_t>(n.deps.size());
    if (n.op == PlanOp::H2D) ++h2d_nodes;
    if (n.op == PlanOp::D2H) ++d2h_nodes;
    if (n.op == PlanOp::Kernel) ++kernel_nodes;
  }
  reg.counter(p + "nodes").add(static_cast<std::int64_t>(plan.nodes.size()));
  reg.counter(p + "dep_edges").add(edges);
  reg.counter(p + "h2d_nodes").add(h2d_nodes);
  reg.counter(p + "d2h_nodes").add(d2h_nodes);
  reg.counter(p + "kernel_nodes").add(kernel_nodes);
  reg.counter(p + "h2d_bytes").add(static_cast<std::int64_t>(plan.transfer_bytes(PlanOp::H2D)));
  reg.counter(p + "d2h_bytes").add(static_cast<std::int64_t>(plan.transfer_bytes(PlanOp::D2H)));
  reg.gauge(p + "num_streams").set(static_cast<double>(plan.num_streams));
  reg.gauge(p + "chunk_size").set(static_cast<double>(plan.chunk_size));

  // Ring-slot occupancy: per kernel access, the fraction of the array's
  // ring the access covers. A distribution near 1.0 means the ring is as
  // tight as the dependency window allows.
  telemetry::Histogram& occ =
      reg.histogram(p + "ring_occupancy", {0.25, 0.5, 0.75, 1.0});
  for (const PlanNode& n : plan.nodes) {
    if (n.op != PlanOp::Kernel) continue;
    for (const PlanAccess& a : n.accesses) {
      if (a.array < 0 || a.array >= static_cast<int>(plan.arrays.size())) continue;
      const std::int64_t ring = plan.arrays[static_cast<std::size_t>(a.array)].ring_len;
      if (ring <= 0) continue;
      const std::int64_t covered = std::min(a.hi - a.lo, ring);
      occ.observe(static_cast<double>(covered) / static_cast<double>(ring));
    }
  }
}

void collect_stats_metrics(telemetry::Registry& reg, const PipelineStats& stats,
                           const std::string& prefix) {
  const std::string p = prefix + "stats.";
  reg.counter(p + "chunks").add(stats.chunks);
  reg.counter(p + "h2d_copies").add(stats.h2d_copies);
  reg.counter(p + "d2h_copies").add(stats.d2h_copies);
  reg.counter(p + "h2d_bytes").add(static_cast<std::int64_t>(stats.h2d_bytes));
  reg.counter(p + "d2h_bytes").add(static_cast<std::int64_t>(stats.d2h_bytes));
  reg.counter(p + "kernels").add(stats.kernels);
  reg.counter(p + "events").add(stats.events);
  reg.counter(p + "stream_waits").add(stats.stream_waits);
}

void collect_opt_metrics(telemetry::Registry& reg, const OptReport& report,
                         const std::string& prefix) {
  const std::string p = prefix + "opt.";
  reg.counter(p + "h2d_bytes_saved")
      .add(static_cast<std::int64_t>(report.h2d_bytes_before - report.h2d_bytes_after));
  reg.counter(p + "d2h_bytes_saved")
      .add(static_cast<std::int64_t>(report.d2h_bytes_before - report.d2h_bytes_after));
  reg.counter(p + "nodes_removed").add(report.nodes_before - report.nodes_after);
  // Gated so plans without lineage wiring / fusion keep their metric
  // snapshots (and the exporter goldens) unchanged.
  if (report.stitched_bytes > 0)
    reg.counter(p + "stitched_bytes").add(static_cast<std::int64_t>(report.stitched_bytes));
  if (report.fused_kernels > 0) reg.counter(p + "fused_kernels").add(report.fused_kernels);
  for (const PassStats& pass : report.passes) {
    reg.counter(p + pass.pass + ".bytes_saved")
        .add(static_cast<std::int64_t>(pass.bytes_saved));
    reg.counter(p + pass.pass + ".nodes_removed").add(pass.nodes_removed);
    reg.counter(p + pass.pass + ".nodes_changed").add(pass.nodes_changed);
  }
}

void collect_device_metrics(telemetry::Registry& reg, const gpu::Gpu& g,
                            const std::string& prefix) {
  const std::string p = prefix + "gpu.";
  reg.gauge(p + "h2d_busy_s").set(g.h2d_busy_time());
  reg.gauge(p + "d2h_busy_s").set(g.d2h_busy_time());
  reg.gauge(p + "compute_busy_s").set(g.compute_busy_time());
  const gpu::MemStats& mem = g.device_mem_stats();
  reg.gauge(p + "device_mem_peak_bytes").set(static_cast<double>(mem.peak));
  reg.gauge(p + "device_mem_current_bytes").set(static_cast<double>(mem.current));
  reg.gauge(p + "device_mem_reported_peak_bytes")
      .set(static_cast<double>(g.reported_peak_memory()));
  reg.gauge(p + "device_mem_capacity_bytes")
      .set(static_cast<double>(g.device_mem_free() + mem.current));
  reg.counter(p + "device_allocations").add(static_cast<std::int64_t>(mem.total_allocations));
}

void collect_sim_metrics(telemetry::Registry& reg, sim::Simulator& sim,
                         const std::string& prefix) {
  const std::string p = prefix + "sim.";
  reg.counter(p + "events_executed").add(static_cast<std::int64_t>(sim.events_executed()));
  reg.gauge(p + "events_pending").set(static_cast<double>(sim.events_pending()));
  reg.gauge(p + "events_high_water").set(static_cast<double>(sim.events_high_water()));
  reg.gauge(p + "event_pool_slots").set(static_cast<double>(sim.event_pool_slots()));
  reg.gauge(p + "now_s").set(sim.now());

  const sim::TaskArena& arena = sim.extension<sim::TaskArena>();
  const std::string a = p + "arena.";
  reg.gauge(a + "tasks_live").set(static_cast<double>(arena.live()));
  reg.gauge(a + "tasks_high_water").set(static_cast<double>(arena.high_water()));
  reg.gauge(a + "task_slots").set(static_cast<double>(arena.slots()));
  reg.counter(a + "tasks_created").add(static_cast<std::int64_t>(arena.created()));
  reg.gauge(a + "edge_slots").set(static_cast<double>(arena.edge_slots()));
  reg.gauge(a + "labels_interned").set(static_cast<double>(arena.labels().size()));
  reg.gauge(a + "labels_bytes").set(static_cast<double>(arena.labels().bytes()));
}

std::vector<NodeCost> attribute_spans(const ExecutionPlan& plan, const sim::Trace& t) {
  std::vector<NodeCost> out(plan.nodes.size());
  for (const sim::Span& s : t.spans()) {
    if (s.node < 0 || s.node >= static_cast<std::int64_t>(out.size())) continue;
    NodeCost& c = out[static_cast<std::size_t>(s.node)];
    c.seconds += s.duration();
    c.bytes += s.bytes;
    ++c.spans;
  }
  return out;
}

PlanAnnotation annotate_plan(const ExecutionPlan& plan, const sim::Trace& measured,
                             const sim::Trace& modelled) {
  const std::vector<NodeCost> m = attribute_spans(plan, measured);
  const std::vector<NodeCost> p = attribute_spans(plan, modelled);
  PlanAnnotation out;
  double err_sum = 0.0;
  for (const PlanNode& n : plan.nodes) {
    if (n.op != PlanOp::H2D && n.op != PlanOp::D2H && n.op != PlanOp::Kernel) continue;
    PlanAnnotation::Row row;
    row.node = n.id;
    row.op = n.op;
    row.stream = n.stream;
    row.label = n.label.empty() ? std::string(to_string(n.op)) : n.label;
    const NodeCost& mc = m[static_cast<std::size_t>(n.id)];
    const NodeCost& pc = p[static_cast<std::size_t>(n.id)];
    row.measured = mc.seconds;
    row.modelled = pc.seconds;
    row.bytes = mc.bytes > 0 ? mc.bytes : n.bytes;
    if (mc.seconds > 0.0) {
      row.rel_error = std::abs(mc.seconds - pc.seconds) / mc.seconds;
      err_sum += row.rel_error;
      ++out.compared;
    }
    out.rows.push_back(std::move(row));
  }
  out.mean_rel_error = out.compared > 0 ? err_sum / out.compared : 0.0;
  return out;
}

void print_annotation(std::ostream& os, const PlanAnnotation& a) {
  Table t({"node", "op", "stream", "label", "measured (ms)", "modelled (ms)", "bytes",
           "rel err"});
  for (const PlanAnnotation::Row& r : a.rows) {
    t.add_row({std::to_string(r.node), to_string(r.op), std::to_string(r.stream), r.label,
               Table::num(r.measured * 1e3, 4), Table::num(r.modelled * 1e3, 4),
               std::to_string(r.bytes),
               r.rel_error < 0.0 ? std::string("n/a")
                                 : Table::num(r.rel_error * 100.0, 2) + "%"});
  }
  t.print(os);
  os << "mean relative model error: " << Table::num(a.mean_rel_error * 100.0, 2) << "% over "
     << a.compared << " nodes\n";
}

}  // namespace gpupipe::core
