// Pipeline region specification — the runtime representation of the paper's
// directive clauses (Fig. 1):
//
//   pipeline(schedule_kind[chunk_size, num_stream])
//   pipeline_map(map_type : var[split_iter:size][0:m]...)
//   pipeline_mem_limit(mem_size)
//
// A PipelineSpec can be built directly in C++ or produced by binding a
// parsed directive (src/dsl) to registered host arrays.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::core {

/// Data transfer direction of a pipeline_map clause (the paper's map_type).
enum class MapType {
  To,      ///< input: host -> device before each chunk's kernel
  From,    ///< output: device -> host after each chunk's kernel
  ToFrom,  ///< both
};

inline const char* to_string(MapType m) {
  switch (m) {
    case MapType::To: return "to";
    case MapType::From: return "from";
    case MapType::ToFrom: return "tofrom";
  }
  return "?";
}

/// Scheduler selection. The paper's prototype supports static; adaptive is
/// its stated future work, implemented here as an extension.
enum class ScheduleKind { Static, Adaptive };

/// Affine function of the loop variable: scale * k + offset. The paper's
/// split_iter expressions ("k", "k-1", "2*k+1") all take this form.
struct Affine {
  std::int64_t scale = 1;
  std::int64_t offset = 0;

  std::int64_t operator()(std::int64_t k) const { return scale * k + offset; }
  bool operator==(const Affine&) const = default;
};

/// Function-based dependency declaration (extension; the paper's stated
/// future work is "a function-based extension that allows the developer to
/// pass in a function pointer"). For loop iteration k it returns the
/// half-open split-index range [lo, hi) the iteration needs (inputs) or
/// produces (outputs). Both endpoints must be non-decreasing in k; output
/// ranges of different iterations must not overlap.
using WindowFn = std::function<std::pair<std::int64_t, std::int64_t>(std::int64_t)>;

/// The split declaration of one mapped array:
/// `[split_iter : window]` on dimension `dim`.
/// For loop iteration k, the array needs indices
/// [start(k), start(k) + window) in that dimension — or, when `window_fn`
/// is set, the range it returns (start/window are then ignored).
struct SplitSpec {
  /// Which dimension is split. The prototype supports dim 0 (outermost:
  /// contiguous slab transfers) and dim 1 of a 2-D array (column blocks:
  /// pitched 2-D transfers), mirroring the paper's 1-D/2-D copy support.
  int dim = 0;
  Affine start;
  std::int64_t window = 1;
  WindowFn window_fn = {};

  /// The split-index range iteration k touches.
  std::pair<std::int64_t, std::int64_t> range_of(std::int64_t k) const {
    if (window_fn) return window_fn(k);
    return {start(k), start(k) + window};
  }
};

/// One pipeline_map clause bound to a real host array.
struct ArraySpec {
  std::string name;
  MapType map = MapType::To;
  std::byte* host = nullptr;
  Bytes elem_size = sizeof(double);
  /// Full extents of the host array, outermost first (row-major).
  std::vector<std::int64_t> dims;
  SplitSpec split;

  /// Elements per index of the split dimension's inner block
  /// (product of dims after split.dim).
  std::int64_t inner_elems() const {
    std::int64_t n = 1;
    for (std::size_t d = split.dim + 1; d < dims.size(); ++d) n *= dims[d];
    return n;
  }
  /// Product of dims before split.dim.
  std::int64_t outer_elems() const {
    std::int64_t n = 1;
    for (int d = 0; d < split.dim; ++d) n *= dims[d];
    return n;
  }
  /// Total host footprint in bytes.
  Bytes total_bytes() const {
    std::int64_t n = 1;
    for (auto d : dims) n *= d;
    return static_cast<Bytes>(n) * elem_size;
  }

  void validate() const {
    require(host != nullptr, "array '" + name + "': host pointer is null");
    require(elem_size > 0, "array '" + name + "': element size must be positive");
    require(!dims.empty(), "array '" + name + "': needs at least one dimension");
    for (auto d : dims) require(d > 0, "array '" + name + "': extents must be positive");
    if (split.window_fn) {
      // Per-iteration ranges are validated when the pipeline scans the loop.
      const bool fn_slab = split.dim == 0;
      const bool fn_block2d = split.dim == 1 && dims.size() == 2;
      require(fn_slab || fn_block2d,
              "array '" + name + "': unsupported split dimension for window_fn");
      return;
    }
    require(split.window >= 1, "array '" + name + "': split window must be >= 1");
    require(split.start.scale >= 1,
            "array '" + name + "': split_iter must be increasing in the loop variable");
    if (map != MapType::To) {
      // Output windows of consecutive iterations must not overlap, or two
      // chunks would produce the same host slice (e.g. the paper's outputs
      // are always of the form [k:1]).
      require(split.window <= split.start.scale,
              "array '" + name + "': output split window may not overlap between iterations");
    }
    const bool slab = split.dim == 0;
    const bool block2d = split.dim == 1 && dims.size() == 2;
    require(slab || block2d,
            "array '" + name +
                "': prototype supports splitting dimension 0 (slabs) or dimension 1 "
                "of a 2-D array (column blocks)");
  }
};

/// Halo wiring of one array of a sharded sub-region (multi-device
/// decomposition, src/sched/shard.*). A shard's plan normally uploads every
/// split index its windows touch from the host; a ShardHalo redirects part
/// of that traffic to device-to-device exchange with a neighbouring shard:
/// indices >= `recv_lo` arrive as P2pRecv nodes fed by shard `recv_peer`
/// (which owns them), and the first `send_hi - first_window_lo` indices of
/// this shard's own range are additionally P2pSent to shard `send_peer`,
/// whose trailing windows overlap them. Either direction may be absent (-1).
struct ShardHalo {
  int array = -1;              ///< index into PipelineSpec::arrays
  std::int64_t recv_lo = -1;   ///< first split index received via P2P
  int recv_peer = -1;          ///< shard supplying [recv_lo, window end)
  std::int64_t send_hi = -1;   ///< one past the last split index sent via P2P
  int send_peer = -1;          ///< shard consuming [first window lo, send_hi)
};

/// Inter-job handoff wiring of one array (plan stitching, ROADMAP's
/// "Inter-job plan stitching" item). When the scheduler places a lineage
/// producer and consumer on the same device, it wires the producer's output
/// array (produce = true) and the consumer's input array (produce = false)
/// to the same handoff `link`: the stitch pass then rewrites the producer's
/// D2H tail and the consumer's H2D head for that array into DeviceHandoff
/// nodes, and a bound PlanExchange moves the bytes through device-resident
/// staging instead of the host.
struct ArrayHandoff {
  int array = -1;        ///< index into PipelineSpec::arrays
  int link = -1;         ///< handoff link id the exchange resolves
  bool produce = false;  ///< true: stash to staging; false: land from it
};

/// The full pipeline region description.
struct PipelineSpec {
  ScheduleKind schedule = ScheduleKind::Static;
  /// Loop iterations handled per device buffer chunk (paper: chunk_size).
  std::int64_t chunk_size = 1;
  /// GPU streams to launch chunks on (paper: num_stream).
  int num_streams = 2;
  /// Optional device-memory cap; the runtime shrinks chunk_size (and, as a
  /// last resort, num_streams) until the pre-allocated buffers fit.
  std::optional<Bytes> mem_limit;
  /// Plan optimization level (core/plan_opt.hpp): 0 executes plans exactly
  /// as built, 1 (default) adds halo-reuse H2D elimination and segment
  /// coalescing, 2 adds stream rebalancing of transfer nodes.
  int opt_level = 1;
  /// The split loop's iteration range [loop_begin, loop_end).
  std::int64_t loop_begin = 0;
  std::int64_t loop_end = 0;
  std::vector<ArraySpec> arrays;
  /// Non-empty only for sharded sub-regions: per-array P2P halo wiring
  /// (shard_pipeline_specs fills this; empty means no cross-device traffic).
  std::vector<ShardHalo> halos;
  /// Non-empty only for stitched lineage jobs: per-array device-resident
  /// handoff wiring (the scheduler fills this; empty means every mapped
  /// array round-trips through the host as usual).
  std::vector<ArrayHandoff> handoffs;

  void validate() const {
    require(chunk_size >= 1, "chunk_size must be >= 1");
    require(num_streams >= 1, "num_streams must be >= 1");
    require(opt_level >= 0 && opt_level <= 2, "opt_level must be 0, 1, or 2");
    require(loop_end > loop_begin, "pipeline loop range is empty");
    require(!arrays.empty(), "pipeline needs at least one pipeline_map clause");
    for (const auto& a : arrays) a.validate();
    if (mem_limit) require(*mem_limit > 0, "mem_limit must be positive");
    for (const auto& h : halos) {
      require(h.array >= 0 && h.array < static_cast<int>(arrays.size()),
              "shard halo names an array index outside the spec");
      const ArraySpec& a = arrays[static_cast<std::size_t>(h.array)];
      require(a.split.dim == 0 && !a.split.window_fn,
              "array '" + a.name + "': shard halos need a dim-0 affine split");
      require(h.recv_peer >= 0 || h.send_peer >= 0,
              "array '" + a.name + "': shard halo has neither direction");
      if (h.recv_peer >= 0)
        require(h.recv_lo >= 0, "array '" + a.name + "': halo recv_lo must be set");
      if (h.send_peer >= 0)
        require(h.send_hi >= 0, "array '" + a.name + "': halo send_hi must be set");
    }
    for (const auto& h : handoffs) {
      require(h.array >= 0 && h.array < static_cast<int>(arrays.size()),
              "array handoff names an array index outside the spec");
      const ArraySpec& a = arrays[static_cast<std::size_t>(h.array)];
      require(h.link >= 0, "array '" + a.name + "': handoff link must be set");
      require(a.split.dim == 0 && !a.split.window_fn,
              "array '" + a.name + "': handoffs need a dim-0 affine split");
      if (h.produce)
        require(a.map != MapType::To,
                "array '" + a.name + "': a produce handoff needs an output array");
      else
        require(a.map != MapType::From,
                "array '" + a.name + "': a consume handoff needs an input array");
    }
  }

  std::int64_t iterations() const { return loop_end - loop_begin; }
  std::int64_t num_chunks() const { return ceil_div(iterations(), chunk_size); }
};

}  // namespace gpupipe::core
