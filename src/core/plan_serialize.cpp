#include "core/plan_serialize.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>

#include "common/checksum.hpp"
#include "core/plan_cache.hpp"

namespace gpupipe::core {

namespace {

// ---------------------------------------------------------------------------
// Byte-level encoding. Integers are written little-endian byte by byte (the
// format is defined by these functions, not by host endianness or struct
// layout), doubles as their IEEE-754 bit patterns.

class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_ += static_cast<char>(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    out_ += s;
  }

 private:
  std::string& out_;
};

/// Bounds-checked reader: the first failed read latches `ok() == false` with
/// a message, and every subsequent read returns a zero value, so decoders
/// can read straight through and check once. Never reads past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

  void fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why;
    }
  }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_++])) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_++])) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    if (!ok_ || n > remaining()) {
      fail("string length exceeds remaining bytes");
      return {};
    }
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// An element count for a sequence whose elements occupy at least
  /// `min_elem_bytes` each — rejected when the buffer cannot possibly hold
  /// that many, so a corrupt count fails fast instead of looping.
  std::uint64_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (ok_ && min_elem_bytes > 0 && n > remaining() / min_elem_bytes)
      fail("element count exceeds remaining bytes");
    return ok_ ? n : 0;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_) return false;
    if (remaining() < n) {
      fail("short read");
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

std::uint64_t checksum_of(std::string_view bytes) {
  return fnv1a(std::span<const char>(bytes.data(), bytes.size()));
}

// ---------------------------------------------------------------------------
// Payload codecs, one write/read pair per struct. Readers validate every
// enum against its legal range; any violation is corruption.

void write_plan(ByteWriter& w, const ExecutionPlan& p) {
  w.i64(p.num_streams);
  w.i64(p.chunk_size);
  w.str(p.origin);
  w.u64(p.arrays.size());
  for (const PlanArrayInfo& a : p.arrays) {
    w.str(a.name);
    w.u32(static_cast<std::uint32_t>(a.map));
    w.i64(a.ring_len);
    w.i64(a.ring_rows);
    w.u64(a.unit_bytes);
    w.u8(a.pinned ? 1 : 0);
    w.i64(a.handoff_link);
    w.u8(a.handoff_out ? 1 : 0);
  }
  w.u64(p.nodes.size());
  for (const PlanNode& n : p.nodes) {
    w.i64(n.id);
    w.u32(static_cast<std::uint32_t>(n.op));
    w.i64(n.stream);
    w.i64(n.array);
    w.i64(n.chunk);
    w.i64(n.begin);
    w.i64(n.end);
    w.i64(n.row_begin);
    w.i64(n.row_end);
    w.i64(n.tile_i);
    w.i64(n.tile_j);
    w.u64(n.deps.size());
    for (int d : n.deps) w.i64(d);
    w.u64(n.segments.size());
    for (const PlanSegment& s : n.segments) {
      w.i64(s.slot);
      w.i64(s.index);
      w.i64(s.count);
      w.i64(s.row_slot);
      w.i64(s.row);
      w.i64(s.rows);
      w.u64(s.width);
      w.u64(s.height);
    }
    w.u64(n.accesses.size());
    for (const PlanAccess& a : n.accesses) {
      w.i64(a.array);
      w.i64(a.lo);
      w.i64(a.hi);
      w.i64(a.row_lo);
      w.i64(a.row_hi);
      w.u8(a.write ? 1 : 0);
    }
    w.f64(n.flops);
    w.u64(n.bytes);
    w.u8(n.records_event ? 1 : 0);
    w.i64(n.event_node);
    w.i64(n.peer);
    w.str(n.label);
  }
}

void read_plan(ByteReader& r, ExecutionPlan& p) {
  p.num_streams = static_cast<int>(r.i64());
  p.chunk_size = r.i64();
  p.origin = r.str();
  const std::uint64_t num_arrays = r.count(8 + 4 + 8 + 8 + 8 + 1 + 8 + 1);
  p.arrays.resize(static_cast<std::size_t>(num_arrays));
  for (PlanArrayInfo& a : p.arrays) {
    a.name = r.str();
    const std::uint32_t map = r.u32();
    if (map > static_cast<std::uint32_t>(MapType::ToFrom)) r.fail("invalid MapType");
    a.map = static_cast<MapType>(map);
    a.ring_len = r.i64();
    a.ring_rows = r.i64();
    a.unit_bytes = r.u64();
    a.pinned = r.u8() != 0;
    a.handoff_link = static_cast<int>(r.i64());
    a.handoff_out = r.u8() != 0;
    if (!r.ok()) return;
  }
  const std::uint64_t num_nodes = r.count(8 * 10 + 4);
  p.nodes.resize(static_cast<std::size_t>(num_nodes));
  for (PlanNode& n : p.nodes) {
    n.id = static_cast<int>(r.i64());
    const std::uint32_t op = r.u32();
    if (op > static_cast<std::uint32_t>(PlanOp::DeviceHandoff)) r.fail("invalid PlanOp");
    n.op = static_cast<PlanOp>(op);
    n.stream = static_cast<int>(r.i64());
    n.array = static_cast<int>(r.i64());
    n.chunk = r.i64();
    n.begin = r.i64();
    n.end = r.i64();
    n.row_begin = r.i64();
    n.row_end = r.i64();
    n.tile_i = r.i64();
    n.tile_j = r.i64();
    const std::uint64_t num_deps = r.count(8);
    n.deps.resize(static_cast<std::size_t>(num_deps));
    for (int& d : n.deps) d = static_cast<int>(r.i64());
    const std::uint64_t num_segments = r.count(8 * 8);
    n.segments.resize(static_cast<std::size_t>(num_segments));
    for (PlanSegment& s : n.segments) {
      s.slot = r.i64();
      s.index = r.i64();
      s.count = r.i64();
      s.row_slot = r.i64();
      s.row = r.i64();
      s.rows = r.i64();
      s.width = r.u64();
      s.height = r.u64();
    }
    const std::uint64_t num_accesses = r.count(8 * 5 + 1);
    n.accesses.resize(static_cast<std::size_t>(num_accesses));
    for (PlanAccess& a : n.accesses) {
      a.array = static_cast<int>(r.i64());
      a.lo = r.i64();
      a.hi = r.i64();
      a.row_lo = r.i64();
      a.row_hi = r.i64();
      a.write = r.u8() != 0;
    }
    n.flops = r.f64();
    n.bytes = r.u64();
    n.records_event = r.u8() != 0;
    n.event_node = static_cast<int>(r.i64());
    n.peer = static_cast<int>(r.i64());
    n.label = r.str();
    if (!r.ok()) return;
  }
}

void write_report(ByteWriter& w, const OptReport& rep) {
  w.u64(rep.passes.size());
  for (const PassStats& ps : rep.passes) {
    w.str(ps.pass);
    w.i64(ps.nodes_removed);
    w.i64(ps.nodes_changed);
    w.u64(ps.bytes_saved);
    w.u64(ps.bytes_saved_by_array.size());
    for (const auto& [name, bytes] : ps.bytes_saved_by_array) {
      w.str(name);
      w.u64(bytes);
    }
    w.f64(ps.elapsed_s);
  }
  w.u64(rep.h2d_bytes_before);
  w.u64(rep.h2d_bytes_after);
  w.u64(rep.d2h_bytes_before);
  w.u64(rep.d2h_bytes_after);
  w.i64(rep.nodes_before);
  w.i64(rep.nodes_after);
  w.u64(rep.stitched_bytes);
  w.i64(rep.fused_kernels);
}

void read_report(ByteReader& r, OptReport& rep) {
  const std::uint64_t num_passes = r.count(8 * 6);
  rep.passes.resize(static_cast<std::size_t>(num_passes));
  for (PassStats& ps : rep.passes) {
    ps.pass = r.str();
    ps.nodes_removed = r.i64();
    ps.nodes_changed = r.i64();
    ps.bytes_saved = r.u64();
    const std::uint64_t num_arrays = r.count(8 + 8);
    ps.bytes_saved_by_array.resize(static_cast<std::size_t>(num_arrays));
    for (auto& [name, bytes] : ps.bytes_saved_by_array) {
      name = r.str();
      bytes = r.u64();
    }
    ps.elapsed_s = r.f64();
    if (!r.ok()) return;
  }
  rep.h2d_bytes_before = r.u64();
  rep.h2d_bytes_after = r.u64();
  rep.d2h_bytes_before = r.u64();
  rep.d2h_bytes_after = r.u64();
  rep.nodes_before = r.i64();
  rep.nodes_after = r.i64();
  rep.stitched_bytes = r.u64();
  rep.fused_kernels = r.i64();
}

void write_tune(ByteWriter& w, const TuneResult& t) {
  w.i64(t.chunk_size);
  w.i64(t.num_streams);
  w.f64(t.best_time);
  w.u64(t.explored.size());
  for (const TuneCandidate& c : t.explored) {
    w.i64(c.chunk_size);
    w.i64(c.num_streams);
    w.f64(c.measured);
    w.u8(c.feasible ? 1 : 0);
  }
}

void read_tune(ByteReader& r, TuneResult& t) {
  t.chunk_size = r.i64();
  t.num_streams = static_cast<int>(r.i64());
  t.best_time = r.f64();
  const std::uint64_t num_explored = r.count(8 * 3 + 1);
  t.explored.resize(static_cast<std::size_t>(num_explored));
  for (TuneCandidate& c : t.explored) {
    c.chunk_size = r.i64();
    c.num_streams = static_cast<int>(r.i64());
    c.measured = r.f64();
    c.feasible = r.u8() != 0;
  }
}

void write_payload(ByteWriter& w, const PlanArtifact& a) {
  switch (a.kind) {
    case ArtifactKind::Plan:
      write_plan(w, a.plan);
      write_report(w, a.report);
      break;
    case ArtifactKind::Footprint:
      w.u64(a.footprint);
      break;
    case ArtifactKind::Estimate:
      w.f64(a.estimate);
      break;
    case ArtifactKind::Tune:
      write_tune(w, a.tune);
      break;
  }
}

bool read_payload(ByteReader& r, PlanArtifact& a) {
  switch (a.kind) {
    case ArtifactKind::Plan:
      read_plan(r, a.plan);
      read_report(r, a.report);
      break;
    case ArtifactKind::Footprint:
      a.footprint = r.u64();
      break;
    case ArtifactKind::Estimate:
      a.estimate = r.f64();
      break;
    case ArtifactKind::Tune:
      read_tune(r, a.tune);
      break;
  }
  if (r.ok() && !r.at_end()) r.fail("trailing garbage after payload");
  return r.ok();
}

bool set_error(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

std::string tune_artifact_key(const gpu::DeviceProfile& profile,
                              const std::string& job_template) {
  return "tune|" + PlanCache::profile_fingerprint(profile) + job_template;
}

std::string serialize_artifact(const PlanArtifact& a) {
  std::string payload;
  {
    ByteWriter pw(payload);
    write_payload(pw, a);
  }
  std::string out;
  out.reserve(4 * 4 + 16 + a.key.size() + payload.size() + 8);
  ByteWriter w(out);
  w.u32(kPlanArtifactMagic);
  w.u32(kPlanFormatVersion);
  w.u32(static_cast<std::uint32_t>(a.kind));
  w.u32(0);  // flags
  w.str(a.key);
  w.str(payload);
  w.u64(checksum_of(out));
  return out;
}

bool deserialize_artifact(std::string_view bytes, PlanArtifact& out, std::string* error) {
  if (bytes.size() < 4 * 4 + 8 + 8 + 8) return set_error(error, "artifact too short");
  // Verify the trailing checksum before decoding anything: a bit flip
  // anywhere in the record is caught here, not by a payload validator.
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  ByteReader tail(bytes.substr(bytes.size() - 8));
  if (tail.u64() != checksum_of(body)) return set_error(error, "checksum mismatch");

  ByteReader r(body);
  if (r.u32() != kPlanArtifactMagic) return set_error(error, "bad artifact magic");
  const std::uint32_t version = r.u32();
  if (version != kPlanFormatVersion)
    return set_error(error, "format version skew (" + std::to_string(version) + ")");
  const std::uint32_t kind = r.u32();
  if (kind < static_cast<std::uint32_t>(ArtifactKind::Plan) ||
      kind > static_cast<std::uint32_t>(ArtifactKind::Tune))
    return set_error(error, "invalid artifact kind");
  r.u32();  // flags (reserved)
  PlanArtifact a;
  a.kind = static_cast<ArtifactKind>(kind);
  a.key = r.str();
  const std::string payload = r.str();
  if (r.ok() && !r.at_end()) r.fail("trailing garbage after artifact");
  if (!r.ok()) return set_error(error, r.error());

  ByteReader pr(payload);
  if (!read_payload(pr, a)) return set_error(error, pr.error());
  out = std::move(a);
  return true;
}

std::string serialize_bundle(const PlanBundle& b) {
  std::string out;
  ByteWriter w(out);
  w.u32(kPlanBundleMagic);
  w.u32(kPlanFormatVersion);
  w.u64(b.artifacts.size());
  for (const PlanArtifact& a : b.artifacts) w.str(serialize_artifact(a));
  w.u64(checksum_of(out));
  return out;
}

bool deserialize_bundle(std::string_view bytes, PlanBundle& out, std::string* error) {
  if (bytes.size() < 4 + 4 + 8 + 8) return set_error(error, "bundle too short");
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  ByteReader tail(bytes.substr(bytes.size() - 8));
  if (tail.u64() != checksum_of(body)) return set_error(error, "bundle checksum mismatch");

  ByteReader r(body);
  if (r.u32() != kPlanBundleMagic) return set_error(error, "bad bundle magic");
  const std::uint32_t version = r.u32();
  if (version != kPlanFormatVersion)
    return set_error(error, "bundle version skew (" + std::to_string(version) + ")");
  const std::uint64_t count = r.count(8);
  PlanBundle b;
  b.artifacts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string record = r.str();
    if (!r.ok()) return set_error(error, r.error());
    PlanArtifact a;
    std::string record_error;
    if (!deserialize_artifact(record, a, &record_error))
      return set_error(error,
                       "record " + std::to_string(i) + " corrupt: " + record_error);
    b.artifacts.push_back(std::move(a));
  }
  if (!r.at_end()) return set_error(error, "trailing garbage after bundle records");
  out = std::move(b);
  return true;
}

bool write_bundle_file(const std::string& path, const PlanBundle& b, std::string* error) {
  namespace fs = std::filesystem;
  const std::string bytes = serialize_bundle(b);
  std::error_code ec;
  const fs::path dest(path);
  if (dest.has_parent_path()) {
    fs::create_directories(dest.parent_path(), ec);  // best effort; open reports
  }
  // Unique-per-process temp name in the destination directory, so the final
  // rename is same-filesystem and atomic.
  static std::atomic<std::uint64_t> temp_seq{0};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%llx.%llu",
                static_cast<unsigned long long>(checksum_of(path)),
                static_cast<unsigned long long>(temp_seq.fetch_add(1)));
  const fs::path temp = dest.string() + suffix;
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os || !os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
      fs::remove(temp, ec);
      return set_error(error, "cannot write " + temp.string());
    }
  }
  fs::rename(temp, dest, ec);
  if (ec) {
    fs::remove(temp, ec);
    return set_error(error, "cannot rename bundle into place: " + dest.string());
  }
  return true;
}

bool read_bundle_file(const std::string& path, PlanBundle& out, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return set_error(error, "cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (is.bad()) return set_error(error, "read error on " + path);
  return deserialize_bundle(bytes, out, error);
}

}  // namespace gpupipe::core
