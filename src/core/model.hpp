// Analytic pipeline cost model.
//
// Predicts per-chunk engine times and the region makespan for a pipeline
// spec on a given device profile. Used by the adaptive schedule (probe the
// kernel, model the rest) and by the autotuner's candidate pre-filtering;
// also exposed publicly so users can reason about configurations without
// running them. The model is deliberately simple — steady-state bottleneck
// analysis over the copy/compute engines plus host enqueue cost — and is
// validated against the simulator in tests.
#pragma once

#include <algorithm>

#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::core {

/// Per-chunk cost breakdown under one configuration.
struct ChunkCost {
  SimTime copy_in = 0.0;   ///< H2D engine time per steady-state chunk
  SimTime kernel = 0.0;    ///< compute engine time per chunk
  SimTime copy_out = 0.0;  ///< D2H engine time per chunk
  SimTime host = 0.0;      ///< host enqueue time per chunk

  /// The pipeline's steady-state rate limiter for a unified copy engine.
  SimTime bottleneck_unified() const {
    return std::max({copy_in + copy_out, kernel, host});
  }
  /// ... and for split copy engines.
  SimTime bottleneck_split() const { return std::max({copy_in, kernel, copy_out, host}); }
};

/// Cost model bound to one device profile and one spec.
class CostModel {
 public:
  /// `per_iter_kernel` is the kernel's duration per loop iteration
  /// (excluding launch latency) — measured from a probe or estimated.
  CostModel(const gpu::DeviceProfile& profile, const PipelineSpec& spec,
            SimTime per_iter_kernel);

  /// Engine/host time of one steady-state chunk of `c` iterations.
  ChunkCost chunk_cost(std::int64_t c) const;

  /// Predicted region makespan with chunk size `c` (streams affect only
  /// buffer sizing; the engine bottleneck analysis assumes enough streams
  /// to keep the pipeline full, i.e. >= 2).
  SimTime region_time(std::int64_t c) const;

  /// The chunk size among powers of two (plus the given candidates) that
  /// minimises predicted region time, subject to ring buffers fitting
  /// `mem_limit` with `streams` streams.
  std::int64_t best_chunk(const gpu::Gpu& g, Bytes mem_limit, int streams) const;

 private:
  const gpu::DeviceProfile& profile_;
  const PipelineSpec& spec_;
  SimTime per_iter_kernel_;
};

}  // namespace gpupipe::core
