#include "core/buffer.hpp"

#include "core/layout.hpp"

namespace gpupipe::core {

RingBuffer::RingBuffer(gpu::Gpu& gpu, const ArraySpec& spec, std::int64_t ring_len)
    : gpu_(gpu), spec_(spec), ring_len_(ring_len) {
  spec_.validate();
  require(ring_len_ >= 1, "ring length must be >= 1");
  // Never allocate more ring slots than the host array has indices.
  ring_len_ = std::min(ring_len_, spec_.dims[spec_.split.dim]);

  view_.elem = spec_.elem_size;
  view_.ring = ring_len_;
  if (spec_.split.dim == 0) {
    view_.block2d = false;
    view_.slab = static_cast<Bytes>(spec_.inner_elems()) * spec_.elem_size;
    view_.height = 1;
    footprint_ = static_cast<Bytes>(ring_len_) * view_.slab;
    view_.base = gpu_.device_malloc(footprint_);
    view_.pitch = view_.slab;
  } else {
    view_.block2d = true;
    view_.height = spec_.dims[0];
    const Bytes width = static_cast<Bytes>(ring_len_) * spec_.elem_size;
    gpu::Pitched p = gpu_.device_malloc_pitched(width, static_cast<Bytes>(view_.height));
    view_.base = p.ptr;
    view_.pitch = p.pitch;
    view_.slab = 0;
    footprint_ = p.pitch * static_cast<Bytes>(view_.height);
  }
}

RingBuffer::~RingBuffer() { gpu_.device_free(view_.base); }

Bytes RingBuffer::predict_footprint(const gpu::Gpu& gpu, const ArraySpec& spec,
                                    std::int64_t ring_len) {
  ring_len = std::min(ring_len, spec.dims[spec.split.dim]);
  if (spec.split.dim == 0) {
    const Bytes slab = static_cast<Bytes>(spec.inner_elems()) * spec.elem_size;
    return static_cast<Bytes>(ring_len) * slab;
  }
  const Bytes width = static_cast<Bytes>(ring_len) * spec.elem_size;
  return layout::round_up(width, gpu.profile().pitch_alignment) *
         static_cast<Bytes>(spec.dims[0]);
}

Bytes RingBuffer::run_bytes(std::int64_t count) const {
  if (spec_.split.dim == 0) return static_cast<Bytes>(count) * view_.slab;
  return static_cast<Bytes>(count) * spec_.elem_size * static_cast<Bytes>(view_.height);
}

template <typename Fn>
void RingBuffer::for_segments(std::int64_t a, std::int64_t b, Fn&& fn) const {
  require(0 <= a && a < b, "split index range must be non-empty and non-negative");
  require(b <= spec_.dims[spec_.split.dim], "split index range exceeds array extent");
  require(b - a <= ring_len_, "range larger than the ring buffer");
  std::int64_t idx = a;
  while (idx < b) {
    const std::int64_t slot = idx % ring_len_;
    const std::int64_t count = std::min(b - idx, ring_len_ - slot);
    fn(slot, idx, count);
    idx += count;
  }
}

int RingBuffer::copy_in(gpu::Stream& s, std::int64_t a, std::int64_t b) {
  int transfers = 0;
  if (spec_.split.dim == 0) {
    for_segments(a, b, [&](std::int64_t slot, std::int64_t idx, std::int64_t count) {
      ++transfers;
      gpu_.memcpy_h2d_async(view_.base + slot * view_.slab,
                            spec_.host + idx * view_.slab,
                            static_cast<Bytes>(count) * view_.slab, s);
    });
  } else {
    const Bytes spitch = static_cast<Bytes>(spec_.dims[1]) * spec_.elem_size;
    for_segments(a, b, [&](std::int64_t slot, std::int64_t idx, std::int64_t count) {
      ++transfers;
      gpu_.memcpy2d_h2d_async(view_.base + slot * spec_.elem_size, view_.pitch,
                              spec_.host + idx * spec_.elem_size, spitch,
                              static_cast<Bytes>(count) * spec_.elem_size,
                              static_cast<Bytes>(view_.height), s);
    });
  }
  h2d_copies_ += transfers;
  h2d_bytes_ += run_bytes(b - a);
  return transfers;
}

int RingBuffer::copy_out(gpu::Stream& s, std::int64_t a, std::int64_t b) {
  int transfers = 0;
  if (spec_.split.dim == 0) {
    for_segments(a, b, [&](std::int64_t slot, std::int64_t idx, std::int64_t count) {
      ++transfers;
      gpu_.memcpy_d2h_async(spec_.host + idx * view_.slab,
                            view_.base + slot * view_.slab,
                            static_cast<Bytes>(count) * view_.slab, s);
    });
  } else {
    const Bytes dpitch = static_cast<Bytes>(spec_.dims[1]) * spec_.elem_size;
    for_segments(a, b, [&](std::int64_t slot, std::int64_t idx, std::int64_t count) {
      ++transfers;
      gpu_.memcpy2d_d2h_async(spec_.host + idx * spec_.elem_size, dpitch,
                              view_.base + slot * spec_.elem_size, view_.pitch,
                              static_cast<Bytes>(count) * spec_.elem_size,
                              static_cast<Bytes>(view_.height), s);
    });
  }
  d2h_copies_ += transfers;
  d2h_bytes_ += run_bytes(b - a);
  return transfers;
}

void RingBuffer::copy_in_run(gpu::Stream& s, std::int64_t slot, std::int64_t index,
                             std::int64_t count) {
  require(0 <= slot && count >= 1 && slot + count <= ring_len_,
          "transfer run does not fit the ring");
  require(0 <= index && index + count <= spec_.dims[spec_.split.dim],
          "transfer run exceeds array extent");
  if (spec_.split.dim == 0) {
    gpu_.memcpy_h2d_async(view_.base + slot * view_.slab, spec_.host + index * view_.slab,
                          static_cast<Bytes>(count) * view_.slab, s);
  } else {
    const Bytes spitch = static_cast<Bytes>(spec_.dims[1]) * spec_.elem_size;
    gpu_.memcpy2d_h2d_async(view_.base + slot * spec_.elem_size, view_.pitch,
                            spec_.host + index * spec_.elem_size, spitch,
                            static_cast<Bytes>(count) * spec_.elem_size,
                            static_cast<Bytes>(view_.height), s);
  }
  ++h2d_copies_;
  h2d_bytes_ += run_bytes(count);
}

void RingBuffer::copy_out_run(gpu::Stream& s, std::int64_t slot, std::int64_t index,
                              std::int64_t count) {
  require(0 <= slot && count >= 1 && slot + count <= ring_len_,
          "transfer run does not fit the ring");
  require(0 <= index && index + count <= spec_.dims[spec_.split.dim],
          "transfer run exceeds array extent");
  if (spec_.split.dim == 0) {
    gpu_.memcpy_d2h_async(spec_.host + index * view_.slab, view_.base + slot * view_.slab,
                          static_cast<Bytes>(count) * view_.slab, s);
  } else {
    const Bytes dpitch = static_cast<Bytes>(spec_.dims[1]) * spec_.elem_size;
    gpu_.memcpy2d_d2h_async(spec_.host + index * spec_.elem_size, dpitch,
                            view_.base + slot * spec_.elem_size, view_.pitch,
                            static_cast<Bytes>(count) * spec_.elem_size,
                            static_cast<Bytes>(view_.height), s);
  }
  ++d2h_copies_;
  d2h_bytes_ += run_bytes(count);
}

void RingBuffer::append_ranges(std::vector<gpu::MemRange>& out, std::int64_t a,
                               std::int64_t b) const {
  for_segments(a, b, [&](std::int64_t slot, std::int64_t /*idx*/, std::int64_t count) {
    if (spec_.split.dim == 0) {
      out.push_back({view_.base + slot * view_.slab, static_cast<Bytes>(count) * view_.slab,
                     0, 1});
    } else {
      out.push_back({view_.base + slot * spec_.elem_size,
                     static_cast<Bytes>(count) * spec_.elem_size, view_.pitch,
                     static_cast<Bytes>(view_.height)});
    }
  });
}

}  // namespace gpupipe::core
