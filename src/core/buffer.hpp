// Device ring buffers for pipelined arrays.
//
// Instead of allocating a mapped array at full host size on the device, the
// runtime pre-allocates a small ring that holds `ring_len` indices of the
// split dimension (paper §IV: "we use the mod operator (%) to get the offset
// of each chunk inside the buffer"). Index i of the split dimension lives at
// ring slot (i mod ring_len); the executor guarantees via events that a slot
// is never overwritten while an in-flight kernel still needs it.
//
// Two layouts mirror the paper's 1-D and 2-D copy support:
//   * slab    — split dimension 0: each index is a contiguous slab
//               (inner-dims volume); transfers are 1-D memcpys.
//   * block2d — split dimension 1 of a 2-D array: each index is a column;
//               the buffer is pitched and transfers are 2-D strided copies
//               (cudaMemcpy2DAsync in the paper's prototype).
#pragma once

#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::core {

/// Lightweight, copyable addressing handle passed to kernel bodies.
/// This is the "new device base pointer and corresponding offsets" of §IV:
/// kernels translate host indices to buffer locations through it.
struct BufferView {
  std::byte* base = nullptr;
  Bytes elem = sizeof(double);
  std::int64_t ring = 1;  ///< ring length in split-dim indices
  Bytes slab = 0;         ///< bytes per index (slab layout)
  Bytes pitch = 0;        ///< bytes between buffer rows (block2d layout)
  std::int64_t height = 1;  ///< buffer rows (block2d: the un-split dim 0)
  bool block2d = false;

  /// Ring slot of a (non-negative) split-dim index.
  std::int64_t slot(std::int64_t idx) const { return idx % ring; }

  /// Slab layout: device pointer to the slab for split index `idx`.
  template <typename T = double>
  T* slab_ptr(std::int64_t idx) const {
    return reinterpret_cast<T*>(base + static_cast<Bytes>(slot(idx)) * slab);
  }

  /// Block2d layout: device pointer to element (row, split index `col`).
  template <typename T = double>
  T* elem_ptr(std::int64_t row, std::int64_t col) const {
    return reinterpret_cast<T*>(base + static_cast<Bytes>(row) * pitch +
                                static_cast<Bytes>(slot(col)) * elem);
  }
};

/// One mapped array's device ring buffer, bound to a Gpu for its lifetime.
class RingBuffer {
 public:
  /// Allocates a ring of `ring_len` split-dim indices for `spec`.
  RingBuffer(gpu::Gpu& gpu, const ArraySpec& spec, std::int64_t ring_len);
  ~RingBuffer();
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Device bytes this ring occupies.
  Bytes footprint() const { return footprint_; }
  std::int64_t ring_len() const { return ring_len_; }
  const ArraySpec& spec() const { return spec_; }
  const BufferView& view() const { return view_; }

  /// Re-points the host side at a different allocation of identical shape.
  void rebind_host(std::byte* host) {
    require(host != nullptr, "rebind_host: pointer is null");
    spec_.host = host;
  }

  /// Predicts the footprint of a ring without allocating it (used by the
  /// memory-limit solver before buffers exist).
  static Bytes predict_footprint(const gpu::Gpu& gpu, const ArraySpec& spec,
                                 std::int64_t ring_len);

  /// Enqueues host->device copies for split indices [a, b) on `s`
  /// (split into two transfers when the range wraps the ring).
  /// Returns the number of transfers issued.
  int copy_in(gpu::Stream& s, std::int64_t a, std::int64_t b);
  /// Enqueues device->host copies for split indices [a, b) on `s`.
  /// Returns the number of transfers issued.
  int copy_out(gpu::Stream& s, std::int64_t a, std::int64_t b);

  /// Enqueues one host->device copy for the non-wrapping run of `count`
  /// split indices starting at host index `index` / ring slot `slot` (a
  /// plan segment after optimization may cover less than a node's full
  /// [begin, end) range, so the executor transfers segment by segment).
  void copy_in_run(gpu::Stream& s, std::int64_t slot, std::int64_t index, std::int64_t count);
  /// Enqueues one device->host copy for a non-wrapping run.
  void copy_out_run(gpu::Stream& s, std::int64_t slot, std::int64_t index, std::int64_t count);

  /// Appends the device memory ranges covering split indices [a, b) to
  /// `out` (up to two ranges when wrapping) — used to declare kernel memory
  /// effects for hazard validation.
  void append_ranges(std::vector<gpu::MemRange>& out, std::int64_t a, std::int64_t b) const;

  /// Lifetime transfer counters of this ring (telemetry; plain integer
  /// accumulation, no allocation).
  std::int64_t h2d_copies() const { return h2d_copies_; }
  std::int64_t d2h_copies() const { return d2h_copies_; }
  Bytes h2d_bytes() const { return h2d_bytes_; }
  Bytes d2h_bytes() const { return d2h_bytes_; }

 private:
  /// Bytes one non-wrapping run of `count` split indices moves.
  Bytes run_bytes(std::int64_t count) const;
  /// Invokes `fn(slot_start, idx_start, count)` for each non-wrapping
  /// segment of [a, b).
  template <typename Fn>
  void for_segments(std::int64_t a, std::int64_t b, Fn&& fn) const;

  gpu::Gpu& gpu_;
  ArraySpec spec_;
  std::int64_t ring_len_;
  Bytes footprint_ = 0;
  BufferView view_;
  std::int64_t h2d_copies_ = 0;
  std::int64_t d2h_copies_ = 0;
  Bytes h2d_bytes_ = 0;
  Bytes d2h_bytes_ = 0;
};

}  // namespace gpupipe::core
