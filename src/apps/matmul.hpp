// Polybench-style matrix multiplication C = A x B (§V-E) — the paper's
// study of non-contiguous transfers and of datasets exceeding device memory.
//
// Three versions mirror the paper:
//   * baseline     — naive offload; one "GPU thread" per C element, poor
//                    data reuse.
//   * block_shared — tiled/shared-memory kernel (~3x the baseline), still
//                    allocating all three matrices on the device.
//   * pipeline_buffer — the paper's runtime: the K dimension is split into
//                    chunks; each chunk streams a column block of A
//                    (non-contiguous, 2-D pitched transfer) and a row block
//                    of B (contiguous) into ring buffers and accumulates the
//                    rank-k update into a device-resident C. Only C stays at
//                    full size, so memory drops by ~2/3 and sizes that OOM
//                    the other versions still run (Fig. 9/10 rightmost).
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace gpupipe::apps {

/// Calibrated kernel cost model (see EXPERIMENTS.md).
struct MatmulModel {
  /// Shared-memory tile width: effective traffic of the tiled kernel is
  /// 2*8/tile bytes per multiply-add pair.
  double tile = 32.0;
  /// Effective cache reuse of the naive kernel (calibrated so the tiled
  /// kernel is ~3x faster, as the paper measures).
  double naive_reuse = 10.5;
  /// Ring-buffer indexing overhead of the pipelined kernel.
  double buffer_overhead = 1.03;
};

struct MatmulConfig {
  /// Square matrices of size n x n.
  std::int64_t n = 64;
  /// K-dimension columns of A (= rows of B) per pipeline chunk.
  std::int64_t chunk_cols = 16;
  int num_streams = 2;
  /// Plan optimization level (pipeline_opt of the directive).
  int opt_level = 1;
  MatmulModel model;

  Bytes matrix_bytes() const { return static_cast<Bytes>(n) * n * sizeof(double); }
};

/// Naive offload baseline. Throws gpu::OomError when 3 matrices exceed
/// device memory.
Measurement matmul_baseline(gpu::Gpu& g, const MatmulConfig& cfg,
                            std::vector<double>* result = nullptr);

/// Tiled (shared-memory) kernel, full device allocation. Throws
/// gpu::OomError when 3 matrices exceed device memory.
Measurement matmul_block_shared(gpu::Gpu& g, const MatmulConfig& cfg,
                                std::vector<double>* result = nullptr);

/// The paper's runtime with 2-D non-contiguous input streaming.
Measurement matmul_pipeline_buffer(gpu::Gpu& g, const MatmulConfig& cfg,
                                   std::vector<double>* result = nullptr);

/// Host reference (for correctness tests).
std::vector<double> matmul_reference(const MatmulConfig& cfg);

double matmul_initial_a(std::int64_t linear_index);
double matmul_initial_b(std::int64_t linear_index);

}  // namespace gpupipe::apps
