#include "apps/matmul.hpp"

#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"

namespace gpupipe::apps {

namespace {

/// C[i][j] += sum over k in [klo, khi) of A[i][k] * B[k][j], with A accessed
/// through an arbitrary column accessor (full matrix or ring buffer).
template <typename AAt, typename BRow>
void accumulate_product(std::int64_t n, std::int64_t klo, std::int64_t khi, AAt&& a_at,
                        BRow&& b_row, double* c) {
  for (std::int64_t i = 0; i < n; ++i) {
    double* crow = c + i * n;
    for (std::int64_t k = klo; k < khi; ++k) {
      const double aik = a_at(i, k);
      const double* brow = b_row(k);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

/// flops and effective bytes of a rank-(khi-klo) update with tiled reuse.
gpu::KernelDesc tiled_cost(const MatmulConfig& cfg, std::int64_t kcols, bool buffer) {
  const double fma_pairs = static_cast<double>(cfg.n) * static_cast<double>(cfg.n) *
                           static_cast<double>(kcols);
  const double factor = buffer ? cfg.model.buffer_overhead : 1.0;
  gpu::KernelDesc d;
  d.name = "matmul-tiled";
  d.flops = 2.0 * fma_pairs * factor;
  // A/B traffic reduced by the tile reuse; C read+written once per update.
  d.bytes = static_cast<Bytes>((fma_pairs * 16.0 / cfg.model.tile +
                                static_cast<double>(cfg.matrix_bytes()) * 2.0) *
                               factor);
  return d;
}

}  // namespace

double matmul_initial_a(std::int64_t idx) {
  return static_cast<double>((idx % 23) - 11) / 23.0;
}
double matmul_initial_b(std::int64_t idx) {
  return static_cast<double>((idx % 31) - 15) / 31.0;
}

std::vector<double> matmul_reference(const MatmulConfig& cfg) {
  const auto n = static_cast<std::size_t>(cfg.n);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = matmul_initial_a(static_cast<std::int64_t>(i));
    b[i] = matmul_initial_b(static_cast<std::int64_t>(i));
  }
  accumulate_product(
      cfg.n, 0, cfg.n, [&](std::int64_t i, std::int64_t k) { return a[i * n + k]; },
      [&](std::int64_t k) { return b.data() + k * cfg.n; }, c.data());
  return c;
}

namespace {

/// Shared scaffolding of the two full-allocation versions; they differ only
/// in the kernel cost model.
Measurement matmul_full(gpu::Gpu& g, const MatmulConfig& cfg, bool tiled,
                        std::vector<double>* result) {
  acc::AccRuntime rt(g);
  const std::int64_t count = cfg.n * cfg.n;
  HostArray<double> ha(g, count), hb(g, count), hc(g, count);
  ha.fill([](std::int64_t i) { return matmul_initial_a(i); });
  hb.fill([](std::int64_t i) { return matmul_initial_b(i); });
  hc.fill_value(0.0);

  Measurement m = measure(g, [&] {
    auto region = rt.data_region({
        {acc::DataKind::CopyIn, ha.bytes(), ha.size_bytes()},
        {acc::DataKind::CopyIn, hb.bytes(), hb.size_bytes()},
        {acc::DataKind::Copy, hc.bytes(), hc.size_bytes()},
    });
    const double* da = region.device_ptr(ha.data());
    const double* db = region.device_ptr(hb.data());
    double* dc = region.device_ptr(hc.data());
    gpu::KernelDesc k;
    if (tiled) {
      k = tiled_cost(cfg, cfg.n, /*buffer=*/false);
    } else {
      k.name = "matmul-naive";
      const double fma_pairs = static_cast<double>(cfg.n) * cfg.n * cfg.n;
      k.flops = 2.0 * fma_pairs;
      k.bytes = static_cast<Bytes>(fma_pairs * 16.0 / cfg.model.naive_reuse +
                                   static_cast<double>(cfg.matrix_bytes()) * 2.0);
    }
    const std::int64_t n = cfg.n;
    k.body = [n, da, db, dc] {
      accumulate_product(
          n, 0, n, [&](std::int64_t i, std::int64_t kk) { return da[i * n + kk]; },
          [&](std::int64_t kk) { return db + kk * n; }, dc);
    };
    rt.parallel_loop(std::move(k));
  });
  m.checksum = hc.checksum();
  capture(hc, result);
  return m;
}

}  // namespace

Measurement matmul_baseline(gpu::Gpu& g, const MatmulConfig& cfg,
                            std::vector<double>* result) {
  return matmul_full(g, cfg, /*tiled=*/false, result);
}

Measurement matmul_block_shared(gpu::Gpu& g, const MatmulConfig& cfg,
                                std::vector<double>* result) {
  return matmul_full(g, cfg, /*tiled=*/true, result);
}

Measurement matmul_pipeline_buffer(gpu::Gpu& g, const MatmulConfig& cfg,
                                   std::vector<double>* result) {
  const std::int64_t count = cfg.n * cfg.n;
  HostArray<double> ha(g, count), hb(g, count), hc(g, count);
  ha.fill([](std::int64_t i) { return matmul_initial_a(i); });
  hb.fill([](std::int64_t i) { return matmul_initial_b(i); });
  hc.fill_value(0.0);

  // Split the K dimension: iteration k needs column k of A (2-D pitched
  // transfers: A is row-major, so a column block is strided) and row k of B
  // (contiguous). C is not mapped — it stays device-resident at full size
  // and accumulates across chunks (the paper's outer-product scheme, §V-E).
  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[C, S]) "
      "pipeline_map(to: A[0:n][k:1]) "
      "pipeline_map(to: B[k:1][0:n]) "
      "pipeline_opt(O)",
      "k", 0, cfg.n,
      {{"A", dsl::HostArray::of(ha.data(), {cfg.n, cfg.n})},
       {"B", dsl::HostArray::of(hb.data(), {cfg.n, cfg.n})}},
      {{"C", cfg.chunk_cols},
       {"S", cfg.num_streams},
       {"O", cfg.opt_level},
       {"n", cfg.n}});
  core::Pipeline pipe(g, spec);

  Measurement m = measure(g, [&] {
    double* dc = g.device_alloc<double>(static_cast<std::size_t>(count));
    // Zero C on the device before the rank-k updates.
    gpu::KernelDesc zero;
    zero.name = "zero-C";
    zero.bytes = hc.size_bytes();
    const std::int64_t n = cfg.n;
    zero.body = [dc, n] { std::fill(dc, dc + n * n, 0.0); };
    zero.effects.writes.push_back({reinterpret_cast<std::byte*>(dc), hc.size_bytes()});
    g.launch(g.default_stream(), std::move(zero));
    g.synchronize();

    pipe.run([&](const core::ChunkContext& ctx) {
      gpu::KernelDesc k = tiled_cost(cfg, ctx.iterations(), /*buffer=*/true);
      const core::BufferView va = ctx.view("A");
      const core::BufferView vb = ctx.view("B");
      const std::int64_t lo = ctx.begin(), hi = ctx.end();
      k.body = [n, va, vb, lo, hi, dc] {
        accumulate_product(
            n, lo, hi,
            [&](std::int64_t i, std::int64_t kk) { return *va.elem_ptr(i, kk); },
            [&](std::int64_t kk) { return vb.slab_ptr(kk); }, dc);
      };
      return k;
    });

    g.memcpy_d2h(hc.bytes(), reinterpret_cast<const std::byte*>(dc), hc.size_bytes());
    g.device_free(reinterpret_cast<std::byte*>(dc));
  });
  m.checksum = hc.checksum();
  capture(hc, result);
  return m;
}

}  // namespace gpupipe::apps
