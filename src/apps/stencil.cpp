#include "apps/stencil.hpp"

#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"

namespace gpupipe::apps {

namespace {

std::int64_t index3d(const StencilConfig& cfg, std::int64_t i, std::int64_t j, std::int64_t k) {
  return (k * cfg.ny + j) * cfg.nx + i;
}

/// One Jacobi sweep over Z-planes [klo, khi) of full arrays. Boundary
/// points (and the k == 0 / k == nz-1 planes when included) carry `a`
/// through unchanged so the output planes are fully defined.
void compute_planes(const StencilConfig& cfg, const double* a, double* b, std::int64_t klo,
                    std::int64_t khi) {
  for (std::int64_t k = klo; k < khi; ++k) {
    if (k == 0 || k == cfg.nz - 1) {
      for (std::int64_t j = 0; j < cfg.ny; ++j)
        for (std::int64_t i = 0; i < cfg.nx; ++i)
          b[index3d(cfg, i, j, k)] = a[index3d(cfg, i, j, k)];
      continue;
    }
    for (std::int64_t j = 0; j < cfg.ny; ++j) {
      for (std::int64_t i = 0; i < cfg.nx; ++i) {
        if (j == 0 || j == cfg.ny - 1 || i == 0 || i == cfg.nx - 1) {
          b[index3d(cfg, i, j, k)] = a[index3d(cfg, i, j, k)];
        } else {
          b[index3d(cfg, i, j, k)] =
              cfg.c1 * (a[index3d(cfg, i + 1, j, k)] + a[index3d(cfg, i - 1, j, k)] +
                        a[index3d(cfg, i, j + 1, k)] + a[index3d(cfg, i, j - 1, k)] +
                        a[index3d(cfg, i, j, k + 1)] + a[index3d(cfg, i, j, k - 1)]) -
              cfg.c0 * a[index3d(cfg, i, j, k)];
        }
      }
    }
  }
}

/// Same sweep through ring-buffer views (the Pipelined-buffer kernel body):
/// all plane addressing goes through the runtime's index translation.
void compute_planes_view(const StencilConfig& cfg, const core::BufferView& in,
                         const core::BufferView& out, std::int64_t klo, std::int64_t khi) {
  auto plane = [&](const core::BufferView& v, std::int64_t k) { return v.slab_ptr(k); };
  for (std::int64_t k = klo; k < khi; ++k) {
    const double* am = plane(in, k - 1);
    const double* a0 = plane(in, k);
    const double* ap = plane(in, k + 1);
    double* b0 = plane(out, k);
    for (std::int64_t j = 0; j < cfg.ny; ++j) {
      for (std::int64_t i = 0; i < cfg.nx; ++i) {
        const std::int64_t p = j * cfg.nx + i;
        if (j == 0 || j == cfg.ny - 1 || i == 0 || i == cfg.nx - 1) {
          b0[p] = a0[p];
        } else {
          b0[p] = cfg.c1 * (a0[p + 1] + a0[p - 1] + a0[p + cfg.nx] + a0[p - cfg.nx] +
                            ap[p] + am[p]) -
                  cfg.c0 * a0[p];
        }
      }
    }
  }
}

gpu::KernelDesc kernel_cost(const StencilConfig& cfg, std::int64_t planes, bool buffer) {
  const double elems = static_cast<double>(planes * cfg.ny * cfg.nx);
  const double factor = buffer ? cfg.model.buffer_overhead : 1.0;
  gpu::KernelDesc d;
  d.name = "stencil";
  d.flops = cfg.model.flops_per_elem * elems * factor;
  d.bytes = static_cast<Bytes>(cfg.model.bytes_per_elem * elems * factor);
  return d;
}

}  // namespace

double stencil_initial(const StencilConfig& cfg, std::int64_t idx) {
  (void)cfg;
  return static_cast<double>((idx % 97) - 48) / 97.0;
}

std::vector<double> stencil_reference(const StencilConfig& cfg) {
  std::vector<double> a(static_cast<std::size_t>(cfg.elems()));
  std::vector<double> b(a.size());
  for (std::int64_t i = 0; i < cfg.elems(); ++i) {
    a[static_cast<std::size_t>(i)] = stencil_initial(cfg, i);
    b[static_cast<std::size_t>(i)] = stencil_initial(cfg, i);
  }
  for (int s = 0; s < cfg.sweeps; ++s) {
    compute_planes(cfg, a.data(), b.data(), 0, cfg.nz);
    std::swap(a, b);
  }
  return a;
}

Measurement stencil_naive(gpu::Gpu& g, const StencilConfig& cfg,
                          std::vector<double>* result) {
  require(cfg.nz >= 3, "stencil needs nz >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> h0(g, cfg.elems()), h1(g, cfg.elems());
  h0.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  h1.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  double* ha = h0.data();
  double* hb = h1.data();

  Measurement m = measure(g, [&] {
    for (int s = 0; s < cfg.sweeps; ++s) {
      auto region = rt.data_region({
          {acc::DataKind::CopyIn, reinterpret_cast<std::byte*>(ha), h0.size_bytes()},
          {acc::DataKind::CopyOut, reinterpret_cast<std::byte*>(hb), h1.size_bytes()},
      });
      const double* da = region.device_ptr(ha);
      double* db = region.device_ptr(hb);
      gpu::KernelDesc k = kernel_cost(cfg, cfg.nz, /*buffer=*/false);
      k.body = [&cfg, da, db] { compute_planes(cfg, da, db, 0, cfg.nz); };
      rt.parallel_loop(std::move(k));
      std::swap(ha, hb);  // region exit copies out, then roles flip
    }
  });
  const auto& final_arr = (ha == h0.data() ? h0 : h1);
  m.checksum = final_arr.checksum();
  capture(final_arr, result);
  return m;
}

Measurement stencil_pipelined(gpu::Gpu& g, const StencilConfig& cfg,
                              std::vector<double>* result) {
  require(cfg.nz >= 3, "stencil needs nz >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> h0(g, cfg.elems()), h1(g, cfg.elems());
  h0.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  h1.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  double* ha = h0.data();
  double* hb = h1.data();

  // The hand-coded version orders cross-queue halo copies only through the
  // copy engine's FIFO behaviour (see the comment at the chunk loop); the
  // hazard tracker rightly refuses to certify that, so it is suspended for
  // this version. The paper's runtime (stencil_pipelined_buffer) chains the
  // dependencies explicitly and needs no exemption.
  const bool hazards_were_enabled = g.hazards().enabled();
  g.hazards().set_enabled(false);

  Measurement m = measure(g, [&] {
    const Bytes plane = static_cast<Bytes>(cfg.ny * cfg.nx) * sizeof(double);
    double* da = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    double* db = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    for (int s = 0; s < cfg.sweeps; ++s) {
      int chunk_idx = 0;
      // Sliding window: each chunk uploads only the input planes not yet
      // sent this sweep. Chunk i's kernel needs plane lo-1, uploaded by
      // chunk i-1 on a *different* queue — hand-written pipelines rely on
      // the copy engine's FIFO order for that (deterministic here, but not
      // guaranteed by the programming model; the runtime version chains it
      // explicitly with events).
      std::int64_t copied_hi = 0;
      for (std::int64_t lo = 1; lo < cfg.nz - 1; lo += cfg.chunk_size, ++chunk_idx) {
        const std::int64_t hi = std::min(lo + cfg.chunk_size, cfg.nz - 1);
        const int q = chunk_idx % cfg.num_streams;
        // Input planes [lo-1, hi+1); output planes [lo, hi).
        const std::int64_t n_lo = chunk_idx == 0 ? lo - 1 : copied_hi;
        const std::int64_t n_hi = hi + 1;
        if (n_lo < n_hi) {
          rt.update_device_async(q, reinterpret_cast<std::byte*>(da) + n_lo * plane,
                                 reinterpret_cast<const std::byte*>(ha) + n_lo * plane,
                                 (n_hi - n_lo) * plane);
        }
        copied_hi = n_hi;
        gpu::KernelDesc k = kernel_cost(cfg, hi - lo, /*buffer=*/false);
        const double* cda = da;
        double* cdb = db;
        k.body = [&cfg, cda, cdb, lo, hi] { compute_planes(cfg, cda, cdb, lo, hi); };
        rt.parallel_loop_async(q, std::move(k));
        rt.update_self_async(q, reinterpret_cast<std::byte*>(hb) + lo * plane,
                             reinterpret_cast<const std::byte*>(db) + lo * plane,
                             (hi - lo) * plane);
      }
      rt.wait();
      std::swap(ha, hb);
    }
    g.device_free(reinterpret_cast<std::byte*>(da));
    g.device_free(reinterpret_cast<std::byte*>(db));
  });
  g.hazards().set_enabled(hazards_were_enabled);
  const auto& final_arr = (ha == h0.data() ? h0 : h1);
  m.checksum = final_arr.checksum();
  capture(final_arr, result);
  return m;
}

Measurement stencil_pipelined_buffer(gpu::Gpu& g, const StencilConfig& cfg,
                                     std::vector<double>* result) {
  require(cfg.nz >= 3, "stencil needs nz >= 3");
  HostArray<double> h0(g, cfg.elems()), h1(g, cfg.elems());
  h0.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  h1.fill([&](std::int64_t i) { return stencil_initial(cfg, i); });
  double* ha = h0.data();
  double* hb = h1.data();

  // The directive of the paper's Fig. 2, compiled and bound to the arrays.
  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[C, S]) "
      "pipeline_map(to:   A0[k-1:3][0:ny][0:nx]) "
      "pipeline_map(from: Anext[k:1][0:ny][0:nx]) "
      "pipeline_opt(O)",
      "k", 1, cfg.nz - 1,
      {{"A0", dsl::HostArray::of(ha, {cfg.nz, cfg.ny, cfg.nx})},
       {"Anext", dsl::HostArray::of(hb, {cfg.nz, cfg.ny, cfg.nx})}},
      {{"C", cfg.chunk_size},
       {"S", cfg.num_streams},
       {"O", cfg.opt_level},
       {"ny", cfg.ny},
       {"nx", cfg.nx}});
  core::Pipeline pipe(g, spec);

  Measurement m = measure(g, [&] {
    for (int s = 0; s < cfg.sweeps; ++s) {
      pipe.run([&](const core::ChunkContext& ctx) {
        gpu::KernelDesc k = kernel_cost(cfg, ctx.iterations(), /*buffer=*/true);
        const core::BufferView in = ctx.view("A0");
        const core::BufferView out = ctx.view("Anext");
        const std::int64_t lo = ctx.begin(), hi = ctx.end();
        k.body = [&cfg, in, out, lo, hi] { compute_planes_view(cfg, in, out, lo, hi); };
        return k;
      });
      std::swap(ha, hb);
      pipe.rebind_host("A0", reinterpret_cast<std::byte*>(ha));
      pipe.rebind_host("Anext", reinterpret_cast<std::byte*>(hb));
    }
  });
  const auto& final_arr = (ha == h0.data() ? h0 : h1);
  m.checksum = final_arr.checksum();
  capture(final_arr, result);
  return m;
}

}  // namespace gpupipe::apps
