// Shared infrastructure for the four evaluation applications.
//
// Every application ships three versions mirroring the paper's §IV:
//   * Naive            — synchronous OpenACC-style offload (full transfers,
//                        no overlap),
//   * Pipelined        — hand-coded OpenACC-style pipelining (manual chunk
//                        loop, async queues, FULL device arrays),
//   * Pipelined-buffer — the paper's runtime (src/core): ring buffers,
//                        automatic index translation, reduced memory.
//
// All versions of an application run the same functional math (validated by
// tests against host references); only orchestration differs. Measurement
// reports virtual time of the region containing the GPU operations — "the
// function that contains the GPU operations, including all transfers but
// ignoring time for code that is identical in all versions" (§V).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/checksum.hpp"
#include "gpu/gpu.hpp"
#include "sim/trace.hpp"

namespace gpupipe::apps {

/// Result of timing one version of one application.
struct Measurement {
  /// Virtual seconds spent in the measured region.
  SimTime seconds = 0.0;
  /// Peak client device allocations during the region.
  Bytes peak_device_mem = 0;
  /// Peak observed device memory (allocations + driver context +
  /// per-stream state); the Fig. 6 / Fig. 10 metric.
  Bytes reported_device_mem = 0;
  /// Busy time per operation kind during the region (Fig. 3 left).
  SimTime h2d_time = 0.0;
  SimTime d2h_time = 0.0;
  SimTime kernel_time = 0.0;
  /// Bytes moved per direction during the region (from the trace).
  Bytes h2d_bytes = 0;
  Bytes d2h_bytes = 0;
  /// Copy/compute overlap achieved vs. achievable (sim::overlap_efficiency).
  double overlap_efficiency = 0.0;
  /// FNV-1a checksum of the output (0 in Modeled mode).
  std::uint64_t checksum = 0;
};

/// Runs `fn` between quiesced device states and reports timing/memory.
template <typename Fn>
Measurement measure(gpu::Gpu& g, Fn&& fn) {
  g.synchronize();
  g.reset_peak_mem();
  g.trace().clear();
  Measurement m;
  const SimTime t0 = g.host_now();
  fn();
  g.synchronize();
  m.seconds = g.host_now() - t0;
  m.peak_device_mem = g.device_mem_stats().peak;
  m.reported_device_mem = g.reported_peak_memory();
  const auto by_kind = g.trace().time_by_kind();
  auto get = [&](sim::SpanKind k) {
    auto it = by_kind.find(k);
    return it == by_kind.end() ? 0.0 : it->second;
  };
  m.h2d_time = get(sim::SpanKind::H2D);
  m.d2h_time = get(sim::SpanKind::D2H);
  m.kernel_time = get(sim::SpanKind::Kernel);
  for (const sim::Span& s : g.trace().spans()) {
    if (s.kind == sim::SpanKind::H2D) m.h2d_bytes += s.bytes;
    if (s.kind == sim::SpanKind::D2H) m.d2h_bytes += s.bytes;
  }
  m.overlap_efficiency = sim::overlap_efficiency(g.trace());
  return m;
}

/// A host array allocated through the runtime (pinned by default). In
/// Modeled mode the pointer is address-space only; data() must not be
/// dereferenced then — use filled()/checksum() guards.
template <typename T>
class HostArray {
 public:
  HostArray(gpu::Gpu& g, std::int64_t count, bool pinned = true)
      : gpu_(g), count_(count),
        ptr_(reinterpret_cast<T*>(g.host_alloc(static_cast<Bytes>(count) * sizeof(T), pinned))) {}
  ~HostArray() { gpu_.host_free(reinterpret_cast<std::byte*>(ptr_)); }
  HostArray(const HostArray&) = delete;
  HostArray& operator=(const HostArray&) = delete;

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::byte* bytes() { return reinterpret_cast<std::byte*>(ptr_); }
  std::int64_t count() const { return count_; }
  Bytes size_bytes() const { return static_cast<Bytes>(count_) * sizeof(T); }
  /// True when the backing store is real and may be dereferenced.
  bool functional() const { return gpu_.functional(); }

  /// Fills with a deterministic pattern (no-op in Modeled mode).
  template <typename Gen>
  void fill(Gen&& gen) {
    if (!functional()) return;
    for (std::int64_t i = 0; i < count_; ++i) ptr_[i] = gen(i);
  }
  void fill_value(T v) {
    fill([v](std::int64_t) { return v; });
  }

  /// FNV-1a of the contents (0 in Modeled mode).
  std::uint64_t checksum() const {
    if (!functional()) return 0;
    return fnv1a(std::span<const T>(ptr_, static_cast<std::size_t>(count_)));
  }

 private:
  gpu::Gpu& gpu_;
  std::int64_t count_;
  T* ptr_;
};


/// Copies an array's contents into `out` (cleared; left empty in Modeled
/// mode) — lets tests compare results numerically.
template <typename T>
void capture(const HostArray<T>& arr, std::vector<T>* out) {
  if (out == nullptr) return;
  out->clear();
  if (!arr.functional()) return;
  out->assign(arr.data(), arr.data() + arr.count());
}

}  // namespace gpupipe::apps
