// Parboil-style 7-point stencil (iterative Jacobi solver of the heat
// equation on a 3-D structured grid) — the paper's Fig. 2 / §V-C workload.
//
//   Anext[k][j][i] = c1 * (A0[k][j][i+1] + A0[k][j][i-1] +
//                          A0[k][j+1][i] + A0[k][j-1][i] +
//                          A0[k+1][j][i] + A0[k-1][j][i])
//                    - c0 * A0[k][j][i]          for interior points;
//   boundary points carry A0 through unchanged.
//
// The workload performs `sweeps` timesteps; between sweeps the host consumes
// the field (boundary interaction / IO in the original application), so
// every sweep round-trips the grid across PCIe — the pipelining opportunity
// the paper exploits. The grid is split along the outermost (Z) dimension:
// the directive of Fig. 2 is `pipeline_map(to: A0[k-1:3][0:ny][0:nx])
// pipeline_map(from: Anext[k:1][0:ny][0:nx])`.
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace gpupipe::apps {

/// Calibrated kernel cost model (see EXPERIMENTS.md for the derivation).
struct StencilModel {
  /// Floating-point ops per interior grid point (6 adds + 2 muls).
  double flops_per_elem = 8.0;
  /// Effective DRAM traffic per grid point in bytes. Calibrated so the
  /// kernel-to-transfer time ratio on the K40m profile reproduces the
  /// paper's Fig. 5 stencil speedups (the OpenACC-generated kernel achieves
  /// a small fraction of peak bandwidth).
  double bytes_per_elem = 680.0;
  /// Extra kernel-time factor of the Pipelined-buffer version (ring-buffer
  /// index arithmetic inside the kernel, §V-D).
  double buffer_overhead = 1.02;
};

struct StencilConfig {
  std::int64_t nx = 64;
  std::int64_t ny = 64;
  std::int64_t nz = 32;
  /// Jacobi timesteps (each round-trips the grid to the host).
  int sweeps = 4;
  /// Z-planes per chunk (chunk_size of the directive).
  std::int64_t chunk_size = 1;
  /// GPU streams (num_stream of the directive).
  int num_streams = 2;
  /// Plan optimization level (pipeline_opt of the directive).
  int opt_level = 1;
  double c0 = 1.0 / 6.0;
  double c1 = 1.0 / 6.0 / 6.0;
  StencilModel model;

  std::int64_t elems() const { return nx * ny * nz; }
  Bytes grid_bytes() const { return static_cast<Bytes>(elems()) * sizeof(double); }
};

/// Naive synchronous offload: per sweep, copy in / run / copy out.
Measurement stencil_naive(gpu::Gpu& g, const StencilConfig& cfg,
                          std::vector<double>* result = nullptr);

/// Hand-coded pipelined version: full-size device arrays, manual chunk
/// loop over async queues (the paper's "Pipelined").
Measurement stencil_pipelined(gpu::Gpu& g, const StencilConfig& cfg,
                              std::vector<double>* result = nullptr);

/// The paper's runtime: ring buffers + automatic scheduling
/// ("Pipelined-buffer").
Measurement stencil_pipelined_buffer(gpu::Gpu& g, const StencilConfig& cfg,
                                     std::vector<double>* result = nullptr);

/// Host reference (for correctness tests): returns the field after
/// cfg.sweeps timesteps from the standard initial condition.
std::vector<double> stencil_reference(const StencilConfig& cfg);

/// The deterministic initial condition shared by all versions.
double stencil_initial(const StencilConfig& cfg, std::int64_t linear_index);

}  // namespace gpupipe::apps
