#include "apps/qcd.hpp"

#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"

namespace gpupipe::apps {

namespace {

/// out += U * v (or U^H * v), all complex: U is a 3x3 complex matrix stored
/// as 18 doubles (row-major, re/im interleaved), v and out are 3 complex
/// numbers (6 doubles).
void su3_mul_acc(const double* u, const double* v, double* out, bool dagger) {
  for (int r = 0; r < 3; ++r) {
    double re = 0.0, im = 0.0;
    for (int c = 0; c < 3; ++c) {
      const int idx = dagger ? (c * 3 + r) : (r * 3 + c);
      const double ur = u[2 * idx];
      const double ui = dagger ? -u[2 * idx + 1] : u[2 * idx + 1];
      const double vr = v[2 * c];
      const double vi = v[2 * c + 1];
      re += ur * vr - ui * vi;
      im += ur * vi + ui * vr;
    }
    out[2 * r] += re;
    out[2 * r + 1] += im;
  }
}

/// Applies the operator on t-planes [tlo, thi) (subset of [1, nt-1)).
/// Accessors yield plane base pointers: psi(t), gauge(t) inputs, out(t)
/// output. Periodic in x/y/z, open in t (loop range keeps t +/- 1 valid).
template <typename PsiAt, typename GaugeAt, typename OutAt>
void dslash_planes(const QcdConfig& cfg, PsiAt&& psi, GaugeAt&& gauge, OutAt&& out,
                   std::int64_t tlo, std::int64_t thi) {
  const std::int64_t n = cfg.n;
  auto site = [n](std::int64_t z, std::int64_t y, std::int64_t x) {
    return (z * n + y) * n + x;
  };
  for (std::int64_t t = tlo; t < thi; ++t) {
    const double* p0 = psi(t);
    const double* pm = psi(t - 1);
    const double* pp = psi(t + 1);
    const double* g0 = gauge(t);
    const double* gm = gauge(t - 1);
    double* o = out(t);
    for (std::int64_t z = 0; z < n; ++z) {
      for (std::int64_t y = 0; y < n; ++y) {
        for (std::int64_t x = 0; x < n; ++x) {
          const std::int64_t s = site(z, y, x);
          double* osite = o + s * 24;
          for (int d = 0; d < 24; ++d) osite[d] = 0.0;
          // Forward/backward neighbours in the three periodic spatial
          // directions (mu = 0,1,2) within the same t-plane.
          const std::int64_t fwd[3] = {site(z, y, (x + 1) % n), site(z, (y + 1) % n, x),
                                       site((z + 1) % n, y, x)};
          const std::int64_t bwd[3] = {site(z, y, (x + n - 1) % n),
                                       site(z, (y + n - 1) % n, x),
                                       site((z + n - 1) % n, y, x)};
          for (int sp = 0; sp < 4; ++sp) {
            double* osp = osite + sp * 6;
            for (int mu = 0; mu < 3; ++mu) {
              su3_mul_acc(g0 + s * 72 + mu * 18, p0 + fwd[mu] * 24 + sp * 6, osp, false);
              su3_mul_acc(g0 + bwd[mu] * 72 + mu * 18, p0 + bwd[mu] * 24 + sp * 6, osp,
                          true);
            }
            // mu = 3 (the split t direction): forward link in this plane,
            // backward link in plane t-1.
            su3_mul_acc(g0 + s * 72 + 3 * 18, pp + s * 24 + sp * 6, osp, false);
            su3_mul_acc(gm + s * 72 + 3 * 18, pm + s * 24 + sp * 6, osp, true);
          }
        }
      }
    }
  }
}

gpu::KernelDesc kernel_cost(const QcdConfig& cfg, std::int64_t planes, bool buffer) {
  const double sites = static_cast<double>(planes * cfg.sites_per_t());
  const double factor = buffer ? cfg.model.buffer_overhead : 1.0;
  gpu::KernelDesc d;
  d.name = "dslash";
  // Effective flops: all operator applications of the pass, divided by the
  // achieved efficiency so the roofline model yields the observed duration.
  d.flops = cfg.model.flops_per_site * cfg.model.dslash_apps_per_pass * sites * factor /
            cfg.model.efficiency;
  d.bytes = static_cast<Bytes>(sites * 960.0);  // one field sweep per pass
  return d;
}

}  // namespace

double qcd_initial_psi(std::int64_t idx) {
  return static_cast<double>((idx % 41) - 20) / 41.0;
}
double qcd_initial_gauge(std::int64_t idx) {
  return static_cast<double>((idx % 59) - 29) / 59.0;
}

std::vector<double> qcd_reference(const QcdConfig& cfg) {
  const auto spinor_count = static_cast<std::size_t>(cfg.sites() * 24);
  const auto gauge_count = static_cast<std::size_t>(cfg.sites() * 72);
  std::vector<double> psi(spinor_count), u(gauge_count), out(spinor_count, 0.0);
  for (std::size_t i = 0; i < spinor_count; ++i)
    psi[i] = qcd_initial_psi(static_cast<std::int64_t>(i));
  for (std::size_t i = 0; i < gauge_count; ++i)
    u[i] = qcd_initial_gauge(static_cast<std::int64_t>(i));
  dslash_planes(
      cfg, [&](std::int64_t t) { return psi.data() + t * cfg.spinor_plane(); },
      [&](std::int64_t t) { return u.data() + t * cfg.gauge_plane(); },
      [&](std::int64_t t) { return out.data() + t * cfg.spinor_plane(); }, 1, cfg.n - 1);
  return out;
}

Measurement qcd_naive(gpu::Gpu& g, const QcdConfig& cfg, std::vector<double>* result) {
  require(cfg.n >= 3, "qcd needs n >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> hpsi(g, cfg.sites() * 24), hu(g, cfg.sites() * 72),
      hout(g, cfg.sites() * 24);
  hpsi.fill([](std::int64_t i) { return qcd_initial_psi(i); });
  hu.fill([](std::int64_t i) { return qcd_initial_gauge(i); });
  hout.fill_value(0.0);

  Measurement m = measure(g, [&] {
    for (int pass = 0; pass < cfg.passes; ++pass) {
      auto region = rt.data_region({
          {acc::DataKind::CopyIn, hpsi.bytes(), hpsi.size_bytes()},
          {acc::DataKind::CopyIn, hu.bytes(), hu.size_bytes()},
          {acc::DataKind::CopyOut, hout.bytes(), hout.size_bytes()},
      });
      const double* dpsi = region.device_ptr(hpsi.data());
      const double* du = region.device_ptr(hu.data());
      double* dout = region.device_ptr(hout.data());
      gpu::KernelDesc k = kernel_cost(cfg, cfg.n, /*buffer=*/false);
      const QcdConfig c = cfg;
      k.body = [c, dpsi, du, dout] {
        // Open-boundary planes carry zero.
        std::fill(dout, dout + c.spinor_plane(), 0.0);
        std::fill(dout + (c.n - 1) * c.spinor_plane(), dout + c.n * c.spinor_plane(), 0.0);
        dslash_planes(
            c, [&](std::int64_t t) { return dpsi + t * c.spinor_plane(); },
            [&](std::int64_t t) { return du + t * c.gauge_plane(); },
            [&](std::int64_t t) { return dout + t * c.spinor_plane(); }, 1, c.n - 1);
      };
      rt.parallel_loop(std::move(k));
    }
  });
  m.checksum = hout.checksum();
  capture(hout, result);
  return m;
}

Measurement qcd_pipelined(gpu::Gpu& g, const QcdConfig& cfg,
                          std::vector<double>* result) {
  require(cfg.n >= 3, "qcd needs n >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> hpsi(g, cfg.sites() * 24), hu(g, cfg.sites() * 72),
      hout(g, cfg.sites() * 24);
  hpsi.fill([](std::int64_t i) { return qcd_initial_psi(i); });
  hu.fill([](std::int64_t i) { return qcd_initial_gauge(i); });
  hout.fill_value(0.0);

  // Hand-coded cross-queue ordering relies on copy-engine FIFO (see
  // stencil_pipelined).
  const bool hazards_were_enabled = g.hazards().enabled();
  g.hazards().set_enabled(false);

  Measurement m = measure(g, [&] {
    const Bytes psi_plane = static_cast<Bytes>(cfg.spinor_plane()) * sizeof(double);
    const Bytes u_plane = static_cast<Bytes>(cfg.gauge_plane()) * sizeof(double);
    double* dpsi = g.device_alloc<double>(static_cast<std::size_t>(cfg.sites() * 24));
    double* du = g.device_alloc<double>(static_cast<std::size_t>(cfg.sites() * 72));
    double* dout = g.device_alloc<double>(static_cast<std::size_t>(cfg.sites() * 24));
    for (int pass = 0; pass < cfg.passes; ++pass) {
      int chunk_idx = 0;
      // Sliding windows over psi and gauge planes (see stencil_pipelined
      // for the cross-queue ordering caveat of hand-written pipelines).
      std::int64_t psi_hi = 0, u_hi = 0;
      for (std::int64_t lo = 1; lo < cfg.n - 1; lo += cfg.chunk_size, ++chunk_idx) {
        const std::int64_t hi = std::min(lo + cfg.chunk_size, cfg.n - 1);
        const int q = chunk_idx % cfg.num_streams;
        // Inputs: psi planes [lo-1, hi+1), gauge planes [lo-1, hi).
        const std::int64_t p_lo = chunk_idx == 0 ? lo - 1 : psi_hi;
        if (p_lo < hi + 1) {
          rt.update_device_async(q, reinterpret_cast<std::byte*>(dpsi) + p_lo * psi_plane,
                                 hpsi.bytes() + p_lo * psi_plane,
                                 (hi + 1 - p_lo) * psi_plane);
        }
        psi_hi = hi + 1;
        const std::int64_t g_lo = chunk_idx == 0 ? lo - 1 : u_hi;
        if (g_lo < hi) {
          rt.update_device_async(q, reinterpret_cast<std::byte*>(du) + g_lo * u_plane,
                                 hu.bytes() + g_lo * u_plane, (hi - g_lo) * u_plane);
        }
        u_hi = hi;
        gpu::KernelDesc k = kernel_cost(cfg, hi - lo, /*buffer=*/false);
        const QcdConfig c = cfg;
        const double* cdpsi = dpsi;
        const double* cdu = du;
        double* cdout = dout;
        k.body = [c, cdpsi, cdu, cdout, lo, hi] {
          dslash_planes(
              c, [&](std::int64_t t) { return cdpsi + t * c.spinor_plane(); },
              [&](std::int64_t t) { return cdu + t * c.gauge_plane(); },
              [&](std::int64_t t) { return cdout + t * c.spinor_plane(); }, lo, hi);
        };
        rt.parallel_loop_async(q, std::move(k));
        rt.update_self_async(q, hout.bytes() + lo * psi_plane,
                             reinterpret_cast<const std::byte*>(dout) + lo * psi_plane,
                             (hi - lo) * psi_plane);
      }
      rt.wait();
    }
    g.device_free(reinterpret_cast<std::byte*>(dpsi));
    g.device_free(reinterpret_cast<std::byte*>(du));
    g.device_free(reinterpret_cast<std::byte*>(dout));
  });
  g.hazards().set_enabled(hazards_were_enabled);
  m.checksum = hout.checksum();
  capture(hout, result);
  return m;
}

Measurement qcd_pipelined_buffer(gpu::Gpu& g, const QcdConfig& cfg,
                                 std::vector<double>* result) {
  require(cfg.n >= 3, "qcd needs n >= 3");
  HostArray<double> hpsi(g, cfg.sites() * 24), hu(g, cfg.sites() * 72),
      hout(g, cfg.sites() * 24);
  hpsi.fill([](std::int64_t i) { return qcd_initial_psi(i); });
  hu.fill([](std::int64_t i) { return qcd_initial_gauge(i); });
  hout.fill_value(0.0);

  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[C, S]) "
      "pipeline_map(to:   psi[t-1:3][0:v]) "
      "pipeline_map(to:   U[t-1:2][0:g]) "
      "pipeline_map(from: out[t:1][0:v]) "
      "pipeline_opt(O)",
      "t", 1, cfg.n - 1,
      {{"psi", dsl::HostArray::of(hpsi.data(), {cfg.n, cfg.spinor_plane()})},
       {"U", dsl::HostArray::of(hu.data(), {cfg.n, cfg.gauge_plane()})},
       {"out", dsl::HostArray::of(hout.data(), {cfg.n, cfg.spinor_plane()})}},
      {{"C", cfg.chunk_size},
       {"S", cfg.num_streams},
       {"O", cfg.opt_level},
       {"v", cfg.spinor_plane()},
       {"g", cfg.gauge_plane()}});
  core::Pipeline pipe(g, spec);

  Measurement m = measure(g, [&] {
    for (int pass = 0; pass < cfg.passes; ++pass) {
      pipe.run([&](const core::ChunkContext& ctx) {
        gpu::KernelDesc k = kernel_cost(cfg, ctx.iterations(), /*buffer=*/true);
        const core::BufferView vpsi = ctx.view("psi");
        const core::BufferView vu = ctx.view("U");
        const core::BufferView vout = ctx.view("out");
        const QcdConfig c = cfg;
        const std::int64_t lo = ctx.begin(), hi = ctx.end();
        k.body = [c, vpsi, vu, vout, lo, hi] {
          dslash_planes(
              c, [&](std::int64_t t) { return vpsi.slab_ptr<const double>(t); },
              [&](std::int64_t t) { return vu.slab_ptr<const double>(t); },
              [&](std::int64_t t) { return vout.slab_ptr(t); }, lo, hi);
        };
        return k;
      });
    }
  });
  m.checksum = hout.checksum();
  capture(hout, result);
  return m;
}

}  // namespace gpupipe::apps
