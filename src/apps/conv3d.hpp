// Polybench-style 3-D convolution (§V-B).
//
//   B[i][j][k] = sum over the 3x3x3 neighbourhood of A[i][j][k] with a
//   fixed coefficient mask (interior points; boundary carries 0).
//
// One pass over the volume per invocation; the volume is split along the
// outermost (i) dimension with a window of 3, i.e. the directive
//   pipeline_map(to: A[i-1:3][0:nj][0:nk]) pipeline_map(from: B[i:1][0:nj][0:nk])
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace gpupipe::apps {

/// Calibrated kernel cost model (see EXPERIMENTS.md).
struct Conv3dModel {
  /// 26 adds + 27 muls per interior point.
  double flops_per_elem = 53.0;
  /// Effective DRAM traffic per point (bytes): calibrated so kernel time vs
  /// transfer time reproduces the paper's 1.45x Fig. 5 speedup on the K40m
  /// profile (27 uncoalesced taps + the output store).
  double bytes_per_elem = 520.0;
  double buffer_overhead = 1.02;
};

struct Conv3dConfig {
  std::int64_t ni = 32;
  std::int64_t nj = 32;
  std::int64_t nk = 32;
  /// Passes over the volume (a fresh volume arrives from the host each
  /// pass, as in a streaming filter).
  int passes = 1;
  std::int64_t chunk_size = 1;
  int num_streams = 2;
  /// Plan optimization level (pipeline_opt of the directive).
  int opt_level = 1;
  Conv3dModel model;

  std::int64_t elems() const { return ni * nj * nk; }
  Bytes volume_bytes() const { return static_cast<Bytes>(elems()) * sizeof(double); }
};

Measurement conv3d_naive(gpu::Gpu& g, const Conv3dConfig& cfg,
                         std::vector<double>* result = nullptr);
Measurement conv3d_pipelined(gpu::Gpu& g, const Conv3dConfig& cfg,
                             std::vector<double>* result = nullptr);
Measurement conv3d_pipelined_buffer(gpu::Gpu& g, const Conv3dConfig& cfg,
                                    std::vector<double>* result = nullptr);

/// Host reference of one pass (for correctness tests).
std::vector<double> conv3d_reference(const Conv3dConfig& cfg);

/// Deterministic input volume shared by all versions.
double conv3d_initial(std::int64_t linear_index);

}  // namespace gpupipe::apps
