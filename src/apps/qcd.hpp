// Lattice QCD (§V-D): a Wilson-dslash-style nearest-neighbour operator on a
// 4-D lattice, standing in for the paper's SciDAC application.
//
// The lattice is [nt][nz][ny][nx]; per site:
//   * spinor: 4 spin components x 3 colours x complex = 24 doubles,
//   * gauge : 4 directional links, each a 3x3 complex matrix = 72 doubles.
// The operator applied per pass is
//   out(x) = sum over mu of  U_mu(x) psi(x+mu)  +  U_mu(x-mu)^H psi(x-mu)
// applied spin-by-spin, with periodic boundaries in x/y/z and open (zero)
// boundaries in t. t is the split (outermost) dimension — the paper's
// O(C n^4) -> O(C n^3) memory reduction comes from splitting it:
//   pipeline_map(to:   psi[t-1:3][0:v])    (v = nz*ny*nx*24)
//   pipeline_map(to:   U  [t-1:2][0:g])    (g = nz*ny*nx*72)
//   pipeline_map(from: out[t:1][0:v])
//
// The paper's subroutine is a large multi-region solver; its kernel applies
// the operator `dslash_apps_per_pass` times per transferred dataset (a
// CG-style inner loop). The functional body applies it once (all versions
// identically, so checksums agree); the cost model charges all applications.
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace gpupipe::apps {

/// Calibrated kernel cost model (see EXPERIMENTS.md).
struct QcdModel {
  /// Flops of one operator application per site (Wilson dslash ~ 1320).
  double flops_per_site = 1320.0;
  /// Operator applications per transferred dataset (CG-style inner
  /// iterations of the paper's subroutine); sized so kernel time is
  /// comparable to transfer time, reproducing the ~50% transfer share of
  /// Fig. 3.
  double dslash_apps_per_pass = 24.0;
  /// Achieved fraction of peak flops (naive OpenACC lattice kernels are far
  /// from peak).
  double efficiency = 0.14;
  /// Ring-buffer index-translation overhead of the Pipelined-buffer kernel
  /// — "the huge indexing operation ... probably leads to the performance
  /// difference" (§V-D).
  double buffer_overhead = 1.28;
};

struct QcdConfig {
  /// Lattice extent n (nt = nz = ny = nx = n); the paper runs n = 12, 24, 36.
  std::int64_t n = 8;
  /// Outer passes (each round-trips spinors and gauge field).
  int passes = 1;
  std::int64_t chunk_size = 1;
  int num_streams = 2;
  /// Plan optimization level (pipeline_opt of the directive).
  int opt_level = 1;
  QcdModel model;

  std::int64_t sites_per_t() const { return n * n * n; }
  std::int64_t sites() const { return n * sites_per_t(); }
  /// Doubles per t-plane of a spinor field.
  std::int64_t spinor_plane() const { return sites_per_t() * 24; }
  /// Doubles per t-plane of the gauge field.
  std::int64_t gauge_plane() const { return sites_per_t() * 72; }
  Bytes spinor_bytes() const { return static_cast<Bytes>(sites()) * 24 * sizeof(double); }
  Bytes gauge_bytes() const { return static_cast<Bytes>(sites()) * 72 * sizeof(double); }
};

Measurement qcd_naive(gpu::Gpu& g, const QcdConfig& cfg,
                      std::vector<double>* result = nullptr);
Measurement qcd_pipelined(gpu::Gpu& g, const QcdConfig& cfg,
                          std::vector<double>* result = nullptr);
Measurement qcd_pipelined_buffer(gpu::Gpu& g, const QcdConfig& cfg,
                                 std::vector<double>* result = nullptr);

/// Host reference of one pass (for correctness tests).
std::vector<double> qcd_reference(const QcdConfig& cfg);

double qcd_initial_psi(std::int64_t linear_index);
double qcd_initial_gauge(std::int64_t linear_index);

}  // namespace gpupipe::apps
