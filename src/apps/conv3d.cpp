#include "apps/conv3d.hpp"

#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"

namespace gpupipe::apps {

namespace {

// Polybench conv3d coefficient mask: c(di,dj,dk) = 1 / (2 + |di|+|dj|+|dk|),
// a fixed, cheap-to-recompute deterministic mask.
double coeff(int di, int dj, int dk) {
  return 1.0 / static_cast<double>(2 + std::abs(di) + std::abs(dj) + std::abs(dk));
}

std::int64_t index3d(const Conv3dConfig& cfg, std::int64_t i, std::int64_t j, std::int64_t k) {
  return (i * cfg.nj + j) * cfg.nk + k;
}

/// Convolution over outer-dim planes [ilo, ihi) of full arrays; boundary
/// points produce 0 so every output plane is fully defined.
void convolve_planes(const Conv3dConfig& cfg, const double* a, double* b, std::int64_t ilo,
                     std::int64_t ihi) {
  for (std::int64_t i = ilo; i < ihi; ++i) {
    for (std::int64_t j = 0; j < cfg.nj; ++j) {
      for (std::int64_t k = 0; k < cfg.nk; ++k) {
        double acc = 0.0;
        const bool interior = i > 0 && i < cfg.ni - 1 && j > 0 && j < cfg.nj - 1 && k > 0 &&
                              k < cfg.nk - 1;
        if (interior) {
          for (int di = -1; di <= 1; ++di)
            for (int dj = -1; dj <= 1; ++dj)
              for (int dk = -1; dk <= 1; ++dk)
                acc += coeff(di, dj, dk) * a[index3d(cfg, i + di, j + dj, k + dk)];
        }
        b[index3d(cfg, i, j, k)] = acc;
      }
    }
  }
}

/// Same convolution through ring-buffer views (Pipelined-buffer kernel).
void convolve_planes_view(const Conv3dConfig& cfg, const core::BufferView& in,
                          const core::BufferView& out, std::int64_t ilo, std::int64_t ihi) {
  const std::int64_t plane = cfg.nj * cfg.nk;
  for (std::int64_t i = ilo; i < ihi; ++i) {
    const double* am = in.slab_ptr(i - 1);
    const double* a0 = in.slab_ptr(i);
    const double* ap = in.slab_ptr(i + 1);
    double* b0 = out.slab_ptr(i);
    const double* slabs[3] = {am, a0, ap};
    for (std::int64_t j = 0; j < cfg.nj; ++j) {
      for (std::int64_t k = 0; k < cfg.nk; ++k) {
        double acc = 0.0;
        const bool interior = i > 0 && i < cfg.ni - 1 && j > 0 && j < cfg.nj - 1 && k > 0 &&
                              k < cfg.nk - 1;
        if (interior) {
          for (int di = -1; di <= 1; ++di)
            for (int dj = -1; dj <= 1; ++dj)
              for (int dk = -1; dk <= 1; ++dk)
                acc += coeff(di, dj, dk) * slabs[di + 1][(j + dj) * cfg.nk + (k + dk)];
        }
        b0[j * cfg.nk + k] = acc;
      }
    }
    (void)plane;
  }
}

gpu::KernelDesc kernel_cost(const Conv3dConfig& cfg, std::int64_t planes, bool buffer) {
  const double elems = static_cast<double>(planes * cfg.nj * cfg.nk);
  const double factor = buffer ? cfg.model.buffer_overhead : 1.0;
  gpu::KernelDesc d;
  d.name = "conv3d";
  d.flops = cfg.model.flops_per_elem * elems * factor;
  d.bytes = static_cast<Bytes>(cfg.model.bytes_per_elem * elems * factor);
  return d;
}

}  // namespace

double conv3d_initial(std::int64_t idx) {
  return static_cast<double>((idx % 113) - 56) / 113.0;
}

std::vector<double> conv3d_reference(const Conv3dConfig& cfg) {
  std::vector<double> a(static_cast<std::size_t>(cfg.elems()));
  std::vector<double> b(a.size(), 0.0);
  for (std::int64_t i = 0; i < cfg.elems(); ++i)
    a[static_cast<std::size_t>(i)] = conv3d_initial(i);
  convolve_planes(cfg, a.data(), b.data(), 0, cfg.ni);
  return b;
}

Measurement conv3d_naive(gpu::Gpu& g, const Conv3dConfig& cfg,
                         std::vector<double>* result) {
  require(cfg.ni >= 3, "conv3d needs ni >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> ha(g, cfg.elems()), hb(g, cfg.elems());
  ha.fill([](std::int64_t i) { return conv3d_initial(i); });
  hb.fill_value(0.0);

  Measurement m = measure(g, [&] {
    for (int pass = 0; pass < cfg.passes; ++pass) {
      auto region = rt.data_region({
          {acc::DataKind::CopyIn, ha.bytes(), ha.size_bytes()},
          {acc::DataKind::CopyOut, hb.bytes(), hb.size_bytes()},
      });
      const double* da = region.device_ptr(ha.data());
      double* db = region.device_ptr(hb.data());
      gpu::KernelDesc k = kernel_cost(cfg, cfg.ni, /*buffer=*/false);
      k.body = [&cfg, da, db] { convolve_planes(cfg, da, db, 0, cfg.ni); };
      rt.parallel_loop(std::move(k));
    }
  });
  m.checksum = hb.checksum();
  capture(hb, result);
  return m;
}

Measurement conv3d_pipelined(gpu::Gpu& g, const Conv3dConfig& cfg,
                             std::vector<double>* result) {
  require(cfg.ni >= 3, "conv3d needs ni >= 3");
  acc::AccRuntime rt(g);
  HostArray<double> ha(g, cfg.elems()), hb(g, cfg.elems());
  ha.fill([](std::int64_t i) { return conv3d_initial(i); });
  hb.fill_value(0.0);

  // Hand-coded pipelining orders cross-queue halo copies only via
  // copy-engine FIFO (see stencil_pipelined for the rationale).
  const bool hazards_were_enabled = g.hazards().enabled();
  g.hazards().set_enabled(false);

  Measurement m = measure(g, [&] {
    const Bytes plane = static_cast<Bytes>(cfg.nj * cfg.nk) * sizeof(double);
    double* da = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    double* db = g.device_alloc<double>(static_cast<std::size_t>(cfg.elems()));
    for (int pass = 0; pass < cfg.passes; ++pass) {
      int chunk_idx = 0;
      // Sliding window over input planes (see stencil_pipelined for the
      // cross-queue ordering caveat of hand-written pipelines).
      std::int64_t copied_hi = 0;
      for (std::int64_t lo = 1; lo < cfg.ni - 1; lo += cfg.chunk_size, ++chunk_idx) {
        const std::int64_t hi = std::min(lo + cfg.chunk_size, cfg.ni - 1);
        const int q = chunk_idx % cfg.num_streams;
        const std::int64_t n_lo = chunk_idx == 0 ? lo - 1 : copied_hi;
        const std::int64_t n_hi = hi + 1;
        if (n_lo < n_hi) {
          rt.update_device_async(q, reinterpret_cast<std::byte*>(da) + n_lo * plane,
                                 ha.bytes() + n_lo * plane, (n_hi - n_lo) * plane);
        }
        copied_hi = n_hi;
        gpu::KernelDesc k = kernel_cost(cfg, hi - lo, /*buffer=*/false);
        const double* cda = da;
        double* cdb = db;
        k.body = [&cfg, cda, cdb, lo, hi] { convolve_planes(cfg, cda, cdb, lo, hi); };
        rt.parallel_loop_async(q, std::move(k));
        rt.update_self_async(q, hb.bytes() + lo * plane,
                             reinterpret_cast<const std::byte*>(db) + lo * plane,
                             (hi - lo) * plane);
      }
      rt.wait();
    }
    g.device_free(reinterpret_cast<std::byte*>(da));
    g.device_free(reinterpret_cast<std::byte*>(db));
  });
  g.hazards().set_enabled(hazards_were_enabled);
  m.checksum = hb.checksum();
  capture(hb, result);
  return m;
}

Measurement conv3d_pipelined_buffer(gpu::Gpu& g, const Conv3dConfig& cfg,
                                    std::vector<double>* result) {
  require(cfg.ni >= 3, "conv3d needs ni >= 3");
  HostArray<double> ha(g, cfg.elems()), hb(g, cfg.elems());
  ha.fill([](std::int64_t i) { return conv3d_initial(i); });
  hb.fill_value(0.0);

  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[C, S]) "
      "pipeline_map(to:   A[i-1:3][0:nj][0:nk]) "
      "pipeline_map(from: B[i:1][0:nj][0:nk]) "
      "pipeline_opt(O)",
      "i", 1, cfg.ni - 1,
      {{"A", dsl::HostArray::of(ha.data(), {cfg.ni, cfg.nj, cfg.nk})},
       {"B", dsl::HostArray::of(hb.data(), {cfg.ni, cfg.nj, cfg.nk})}},
      {{"C", cfg.chunk_size},
       {"S", cfg.num_streams},
       {"O", cfg.opt_level},
       {"nj", cfg.nj},
       {"nk", cfg.nk}});
  core::Pipeline pipe(g, spec);

  Measurement m = measure(g, [&] {
    for (int pass = 0; pass < cfg.passes; ++pass) {
      pipe.run([&](const core::ChunkContext& ctx) {
        gpu::KernelDesc k = kernel_cost(cfg, ctx.iterations(), /*buffer=*/true);
        const core::BufferView in = ctx.view("A");
        const core::BufferView out = ctx.view("B");
        const std::int64_t lo = ctx.begin(), hi = ctx.end();
        k.body = [&cfg, in, out, lo, hi] { convolve_planes_view(cfg, in, out, lo, hi); };
        return k;
      });
    }
  });
  m.checksum = hb.checksum();
  capture(hb, result);
  return m;
}

}  // namespace gpupipe::apps
