// Tasks and capacity-limited engines on top of the event queue.
//
// An Engine models a hardware resource that can service a bounded number of
// operations concurrently (a DMA copy engine, the compute engine, the device
// command scheduler). A Task is one unit of work with:
//   * a fixed service duration,
//   * predecessor dependencies (it cannot start before they complete),
//   * a release time (it cannot start before the host enqueued it),
//   * a payload executed at completion (the functional side effect — e.g.
//     actually performing the memcpy or running the kernel body).
//
// Tasks queue FIFO per engine; an engine starts the oldest ready task
// whenever a slot is free. This queueing structure — not any hard-coded
// timing — is what produces overlap, contention, and pipeline bubbles.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace gpupipe::sim {

class Engine;
class Task;
using TaskPtr = std::shared_ptr<Task>;

/// One schedulable operation. Create via Task::create, wire dependencies,
/// then submit(). All methods must be called from simulation context
/// (single-threaded).
class Task : public std::enable_shared_from_this<Task> {
 public:
  /// Creates a task serviced by `engine` for `duration` simulated seconds.
  /// `payload` (may be empty) runs exactly once, at completion time.
  static TaskPtr create(Engine& engine, SimTime duration, std::string label,
                        std::function<void()> payload = {});

  /// Declares that this task cannot start until `pred` completes.
  /// Must be called before submit(). No-op if `pred` already completed.
  void depends_on(const TaskPtr& pred);

  /// Releases the task to its engine at virtual time `release` (>= now).
  /// After submission the task starts as soon as its dependencies are done,
  /// the release time has passed, and the engine has a free slot.
  void submit(SimTime release);

  /// Registers `fn` to run when the task completes. If already complete,
  /// runs immediately.
  void on_complete(std::function<void()> fn);

  /// Registers `fn` to run when the task begins service (used e.g. for
  /// hazard validation). Must be set before the task starts.
  void on_start(std::function<void()> fn) {
    require(!submitted_, "on_start must be set before submit()");
    start_callback_ = std::move(fn);
  }

  bool submitted() const { return submitted_; }
  bool done() const { return done_; }
  /// Start of service (valid once started).
  SimTime start_time() const { return start_; }
  /// End of service (valid once done()).
  SimTime end_time() const { return end_; }
  const std::string& label() const { return label_; }
  SimTime duration() const { return duration_; }

 private:
  friend class Engine;
  Task(Engine& engine, SimTime duration, std::string label, std::function<void()> payload)
      : engine_(engine), duration_(duration), label_(std::move(label)),
        payload_(std::move(payload)) {}

  void dependency_done();
  void maybe_ready();
  void complete();

  Engine& engine_;
  SimTime duration_;
  std::string label_;
  std::function<void()> payload_;
  std::function<void()> start_callback_;
  std::vector<std::function<void()>> completion_callbacks_;
  std::vector<TaskPtr> successors_;  // tasks waiting on us
  int pending_deps_ = 0;
  bool submitted_ = false;
  bool released_ = false;
  bool queued_ = false;
  bool done_ = false;
  SimTime start_ = 0.0;
  SimTime end_ = 0.0;
};

/// A capacity-limited FIFO server.
class Engine {
 public:
  /// `capacity` concurrent service slots (e.g. 1 per DMA engine).
  Engine(Simulator& sim, std::string name, int capacity)
      : sim_(sim), name_(std::move(name)), capacity_(capacity) {
    require(capacity >= 1, "engine capacity must be >= 1");
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const std::string& name() const { return name_; }
  int capacity() const { return capacity_; }
  /// Tasks currently in service.
  int busy() const { return busy_; }
  /// Tasks ready but waiting for a slot.
  std::size_t queued() const { return ready_.size(); }
  /// Total busy time integrated over all slots (for utilisation metrics).
  SimTime busy_time() const { return busy_time_; }
  Simulator& simulator() { return sim_; }

 private:
  friend class Task;
  void enqueue(const TaskPtr& t) {
    ready_.push_back(t);
    dispatch();
  }
  void dispatch() {
    while (busy_ < capacity_ && !ready_.empty()) {
      TaskPtr t = ready_.front();
      ready_.pop_front();
      ++busy_;
      t->start_ = sim_.now();
      busy_time_ += t->duration_;
      if (t->start_callback_) t->start_callback_();
      sim_.schedule_after(t->duration_, [this, t] {
        --busy_;
        t->complete();
        dispatch();
      });
    }
  }

  Simulator& sim_;
  std::string name_;
  int capacity_;
  int busy_ = 0;
  SimTime busy_time_ = 0.0;
  std::deque<TaskPtr> ready_;
};

inline TaskPtr Task::create(Engine& engine, SimTime duration, std::string label,
                            std::function<void()> payload) {
  require(duration >= 0.0, "task duration must be non-negative");
  return TaskPtr(new Task(engine, duration, std::move(label), std::move(payload)));
}

inline void Task::depends_on(const TaskPtr& pred) {
  require(pred != nullptr, "dependency must not be null");
  require(!submitted_, "dependencies must be declared before submit()");
  if (pred->done_) return;
  ++pending_deps_;
  pred->successors_.push_back(shared_from_this());
}

inline void Task::submit(SimTime release) {
  require(!submitted_, "task submitted twice");
  submitted_ = true;
  Simulator& sim = engine_.simulator();
  require(release >= sim.now(), "release time is in the past");
  if (release > sim.now()) {
    auto self = shared_from_this();
    sim.schedule(release, [self] {
      self->released_ = true;
      self->maybe_ready();
    });
  } else {
    released_ = true;
    maybe_ready();
  }
}

inline void Task::on_complete(std::function<void()> fn) {
  if (done_) {
    fn();
  } else {
    completion_callbacks_.push_back(std::move(fn));
  }
}

inline void Task::dependency_done() {
  ensure(pending_deps_ > 0, "dependency count underflow");
  --pending_deps_;
  maybe_ready();
}

inline void Task::maybe_ready() {
  if (queued_ || done_ || !submitted_ || !released_ || pending_deps_ > 0) return;
  queued_ = true;
  engine_.enqueue(shared_from_this());
}

inline void Task::complete() {
  ensure(!done_, "task completed twice");
  done_ = true;
  end_ = engine_.simulator().now();
  if (payload_) payload_();
  for (auto& fn : completion_callbacks_) fn();
  completion_callbacks_.clear();
  for (auto& succ : successors_) succ->dependency_done();
  successors_.clear();
}

}  // namespace gpupipe::sim
