// Tasks and capacity-limited engines on top of the event queue.
//
// An Engine models a hardware resource that can service a bounded number of
// operations concurrently (a DMA copy engine, the compute engine, the device
// command scheduler). A Task is one unit of work with:
//   * a fixed service duration,
//   * predecessor dependencies (it cannot start before they complete),
//   * a release time (it cannot start before the host enqueued it),
//   * a payload executed at completion (the functional side effect — e.g.
//     actually performing the memcpy or running the kernel body).
//
// Tasks queue FIFO per engine; an engine starts the oldest ready task
// whenever a slot is free. This queueing structure — not any hard-coded
// timing — is what produces overlap, contention, and pipeline bubbles.
//
// Storage: tasks live in a per-simulator TaskArena (reached through
// Simulator::extension), not in individually heap-allocated shared_ptr
// blocks. TaskPtr is an intrusive handle — copying bumps a non-atomic
// refcount; when the last reference drops the slot returns to the arena's
// free list. Successor lists are index-linked edges in a shared pool, and
// labels are interned, so steady-state task churn performs no allocation.
// A task's completion event drains every successor that became ready, in
// dependency-registration order — the exact sequence-number assignment the
// per-successor dispatch always produced, which is what keeps traces
// bit-identical across the old and new cores.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/inline_callable.hpp"
#include "common/string_table.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace gpupipe::sim {

class Engine;
class Task;
class TaskArena;

/// Intrusive handle to an arena-owned Task. Pointer-sized; copying adjusts a
/// non-atomic refcount (the simulation is single-threaded). Dropping the
/// last reference recycles the task's arena slot.
class TaskPtr {
 public:
  TaskPtr() = default;
  TaskPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit TaskPtr(Task* t);
  TaskPtr(const TaskPtr& o);
  TaskPtr(TaskPtr&& o) noexcept : ptr_(o.ptr_) { o.ptr_ = nullptr; }
  TaskPtr& operator=(const TaskPtr& o);
  TaskPtr& operator=(TaskPtr&& o) noexcept;
  ~TaskPtr();

  /// Drops the reference (handle becomes null).
  void reset() { *this = TaskPtr(); }

  /// Transfers ownership out without adjusting the refcount (the caller now
  /// owns one reference and must TaskArena::release_ref it).
  Task* leak() {
    Task* p = ptr_;
    ptr_ = nullptr;
    return p;
  }

  Task* get() const { return ptr_; }
  Task* operator->() const { return ptr_; }
  Task& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }
  friend bool operator==(const TaskPtr& a, const TaskPtr& b) { return a.ptr_ == b.ptr_; }
  friend bool operator==(const TaskPtr& a, std::nullptr_t) { return a.ptr_ == nullptr; }

 private:
  Task* ptr_ = nullptr;
};

/// One schedulable operation. Create via Task::create, wire dependencies,
/// then submit(). All methods must be called from simulation context
/// (single-threaded).
class Task {
 public:
  /// Inline storage for the payload / start / completion callables; closures
  /// bigger than this transparently go through the heap fallback.
  using Callback = InlineCallable<32>;

  /// Creates a task serviced by `engine` for `duration` simulated seconds.
  static TaskPtr create(Engine& engine, SimTime duration, std::string_view label);

  /// As above with a pre-interned label (TaskArena::intern) — callers that
  /// create many tasks with the same few labels hoist the hash out of the
  /// per-task path.
  static TaskPtr create(Engine& engine, SimTime duration, StringId label);

  /// As above with a `payload` that runs exactly once, at completion time.
  template <typename F>
  static TaskPtr create(Engine& engine, SimTime duration, std::string_view label,
                        F&& payload) {
    TaskPtr t = create(engine, duration, label);
    t->assign_payload(std::forward<F>(payload));
    return t;
  }

  /// Declares that this task cannot start until `pred` completes.
  /// Must be called before submit(). No-op if `pred` already completed.
  void depends_on(const TaskPtr& pred);

  /// Releases the task to its engine at virtual time `release` (>= now).
  /// After submission the task starts as soon as its dependencies are done,
  /// the release time has passed, and the engine has a free slot.
  void submit(SimTime release);

  /// Registers `fn` to run when the task completes. If already complete,
  /// runs immediately. Multiple registrations run in registration order.
  template <typename F>
  void on_complete(F&& fn);

  /// Registers `fn` to run when the task begins service (used e.g. for
  /// hazard validation). Must be set before the task starts.
  template <typename F>
  void on_start(F&& fn);

  /// Built-in trace sink: when set, completion records one span into
  /// `trace` with the given pre-interned lane/label ids — the allocation-
  /// free replacement for an on_complete closure per traced operation.
  void set_span(Trace& trace, SpanKind kind, StringId lane, StringId label, Bytes bytes,
                std::int64_t node, std::int32_t trace_id = -1) {
    trace_ = &trace;
    span_kind_ = kind;
    span_lane_ = lane;
    span_label_ = label;
    span_bytes_ = bytes;
    span_node_ = node;
    span_trace_ = trace_id;
  }

  bool submitted() const { return submitted_; }
  bool done() const { return done_; }
  /// Start of service (valid once started).
  SimTime start_time() const { return start_; }
  /// End of service (valid once done()).
  SimTime end_time() const { return end_; }
  const std::string& label() const;
  SimTime duration() const { return duration_; }

  /// Trivial default constructor: a freshly allocated slot is uninitialised
  /// until TaskArena::allocate writes every live field. Keeping the ctor
  /// trivial lets the arena default-initialise 1024-task chunks without
  /// writing the whole slab once just to overwrite it at first use. Public
  /// only for the array allocator; tasks are created through Task::create.
  Task() = default;

 private:
  friend class Engine;
  friend class TaskArena;
  friend class TaskPtr;

  template <typename F>
  void assign_payload(F&& fn);

  void dependency_done();
  void maybe_ready();
  void complete();

  static constexpr std::uint32_t kNone = 0xffffffffu;

  // Callbacks live in the arena's pool behind uint32 handles (kNone = unset):
  // most serve-scale tasks set none of the three, so the task itself stays
  // small and per-task initialisation touches no callable storage.
  //
  // Deliberately no default member initialisers (see Task() above):
  // TaskArena::allocate resets every field a task reads before set_span, and
  // set_span writes the span_* group as a unit.
  TaskArena* arena_;
  Engine* engine_;
  Trace* trace_;
  SimTime duration_;
  SimTime start_;
  SimTime end_;
  Bytes span_bytes_;
  std::int64_t span_node_;
  std::uint32_t index_;
  StringId label_;
  std::uint32_t payload_;
  std::uint32_t start_cb_;
  std::uint32_t complete_cb_;
  StringId span_lane_;
  StringId span_label_;
  std::int32_t span_trace_;  // owning job's trace id (-1 outside a job)
  std::uint32_t succ_head_;  // edge-pool list of tasks waiting on us
  std::uint32_t succ_tail_;
  std::uint32_t refs_;
  int pending_deps_;
  SpanKind span_kind_;
  bool submitted_;
  bool released_;
  bool queued_;
  bool done_;
};

/// Per-simulator slab of tasks and successor edges. Obtained via
/// Simulator::extension<TaskArena>(); engines cache the pointer. Slots are
/// recycled through free lists, so `slots()` is the all-time high-water
/// footprint while `live()` tracks current usage.
class TaskArena {
 public:
  TaskArena() = default;
  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;
  ~TaskArena() { draining_ = true; }

  /// Tasks currently alive (referenced or in flight).
  std::size_t live() const { return live_; }
  /// Most tasks ever alive at once.
  std::size_t high_water() const { return high_water_; }
  /// Task slots allocated (never shrinks; recycled via free list).
  std::size_t slots() const { return size_; }
  /// Tasks created over the arena's lifetime.
  std::uint64_t created() const { return created_; }
  /// Successor-edge slots allocated.
  std::size_t edge_slots() const { return edges_.size(); }
  /// Interned task labels.
  const StringTable& labels() const { return labels_; }
  /// Interns a label for Task::create's StringId overload.
  StringId intern(std::string_view label) { return labels_.intern(label); }

 private:
  friend class Engine;
  friend class Task;
  friend class TaskPtr;

  struct Edge {
    std::uint32_t task;  // successor's arena index
    std::uint32_t next;
  };

  // 1024-task chunks: stable addresses (handles and raw pointers survive
  // growth) without a deque's per-512-byte-block allocation churn.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1u;

  Task& task_ref(std::uint32_t i) { return chunks_[i >> kChunkShift][i & kChunkMask]; }

  /// Registers the release / completion tagged-event handlers with `sim`
  /// (once per simulator; engines call this from their constructor). Tasks
  /// then ride the simulator's typed fast path: a pending event is a task
  /// index plus a manually held reference, not a pooled closure.
  void bind(Simulator& sim) {
    if (release_tag_ != 0) return;
    release_tag_ = sim.register_tagged(&TaskArena::on_release_event, this);
    completion_tag_ = sim.register_tagged(&TaskArena::on_completion_event, this);
  }

  static void on_release_event(void* ctx, std::uint32_t index);
  static void on_completion_event(void* ctx, std::uint32_t index);

  TaskPtr allocate(Engine& engine, SimTime duration, StringId label);

  void add_successor(Task& pred, Task& succ) {
    std::uint32_t e;
    if (edge_free_ != Task::kNone) {
      e = edge_free_;
      edge_free_ = edges_[e].next;
      edges_[e] = Edge{succ.index_, Task::kNone};
    } else {
      e = static_cast<std::uint32_t>(edges_.size());
      edges_.push_back(Edge{succ.index_, Task::kNone});
    }
    ++succ.refs_;  // the edge keeps the successor alive until notified
    if (pred.succ_tail_ == Task::kNone) {
      pred.succ_head_ = e;
    } else {
      edges_[pred.succ_tail_].next = e;
    }
    pred.succ_tail_ = e;
  }

  void free_edge(std::uint32_t e) {
    edges_[e].next = edge_free_;
    edge_free_ = e;
  }

  /// Stores `fn` in the callback pool, (re)binding `slot`. Wrapping an
  /// *empty* std::function must leave the slot unset (legacy callers pass
  /// default-constructed payloads), so test that common case first.
  template <typename F>
  void assign_callback(std::uint32_t& slot, F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, std::function<void()>>) {
      if (!fn) return;
    }
    if (slot != Task::kNone) {
      callbacks_[slot] = Task::Callback(std::forward<F>(fn));
      return;
    }
    if (!callback_free_.empty()) {
      slot = callback_free_.back();
      callback_free_.pop_back();
      callbacks_[slot] = Task::Callback(std::forward<F>(fn));
    } else {
      slot = static_cast<std::uint32_t>(callbacks_.size());
      callbacks_.emplace_back(std::forward<F>(fn));
    }
  }

  /// Moves the callable out of the pool and frees the slot. Invoke the
  /// returned value, never callbacks_[slot] in place: running a callback can
  /// create tasks with new callbacks and grow the pool under it.
  Task::Callback take_callback(std::uint32_t& slot) {
    Task::Callback cb = std::move(callbacks_[slot]);
    callback_free_.push_back(slot);
    slot = Task::kNone;
    return cb;
  }

  void drop_callback(std::uint32_t& slot) {
    if (slot == Task::kNone) return;
    callbacks_[slot].reset();
    callback_free_.push_back(slot);
    slot = Task::kNone;
  }

  static void release_ref(Task* t) {
    ensure(t->refs_ > 0, "task refcount underflow");
    if (--t->refs_ == 0 && !t->arena_->draining_) t->arena_->recycle(t);
  }

  /// Returns a task's slot to the free list. Reached only with refcount 0,
  /// i.e. no handle, queue entry, pending event, or edge references it.
  void recycle(Task* t) {
    // A task recycled before completing (created but dropped unsubmitted)
    // still holds edges to successors that will now never be notified; its
    // successors stay pending forever — the same deadlock semantics the
    // shared_ptr core had — but their edge references must be released.
    std::uint32_t e = t->succ_head_;
    t->succ_head_ = t->succ_tail_ = Task::kNone;
    while (e != Task::kNone) {
      const Edge edge = edges_[e];
      free_edge(e);
      release_ref(&task_ref(edge.task));
      e = edge.next;
    }
    drop_callback(t->payload_);
    drop_callback(t->start_cb_);
    drop_callback(t->complete_cb_);
    free_.push_back(t->index_);
    --live_;
  }

  std::vector<std::unique_ptr<Task[]>> chunks_;
  std::size_t size_ = 0;
  std::vector<std::uint32_t> free_;
  std::vector<Edge> edges_;
  std::uint32_t edge_free_ = Task::kNone;
  std::vector<Task::Callback> callbacks_;
  std::vector<std::uint32_t> callback_free_;
  std::uint32_t release_tag_ = 0;
  std::uint32_t completion_tag_ = 0;
  StringTable labels_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t created_ = 0;
  bool draining_ = false;
};

/// A capacity-limited FIFO server.
class Engine {
 public:
  /// `capacity` concurrent service slots (e.g. 1 per DMA engine).
  Engine(Simulator& sim, std::string name, int capacity)
      : sim_(sim), arena_(sim.extension<TaskArena>()), name_(std::move(name)),
        capacity_(capacity) {
    require(capacity >= 1, "engine capacity must be >= 1");
    arena_.bind(sim);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const std::string& name() const { return name_; }
  int capacity() const { return capacity_; }
  /// Tasks currently in service.
  int busy() const { return busy_; }
  /// Tasks ready but waiting for a slot.
  std::size_t queued() const { return ready_.size(); }
  /// Total busy time integrated over all slots (for utilisation metrics).
  /// In-flight tasks are pro-rated to the current clock, so a mid-run sample
  /// never exceeds capacity * elapsed time.
  SimTime busy_time() const {
    return completed_busy_ + static_cast<double>(busy_) * sim_.now() - inflight_start_sum_;
  }
  Simulator& simulator() { return sim_; }
  TaskArena& arena() { return arena_; }

 private:
  friend class Task;
  friend class TaskArena;

  void enqueue(TaskPtr t) {
    // Invariant: a task only waits in ready_ while every slot is busy
    // (dispatch drains the queue whenever one frees up), so a free slot
    // implies an empty queue and the task can start directly — same event
    // schedule order as push-then-dispatch, without touching the deque.
    if (busy_ < capacity_) {
      start(std::move(t));
    } else {
      ready_.push_back(std::move(t));
    }
  }

  void dispatch() {
    while (busy_ < capacity_ && !ready_.empty()) {
      TaskPtr t = std::move(ready_.front());
      ready_.pop_front();
      start(std::move(t));
    }
  }

  void start(TaskPtr t) {
    ++busy_;
    Task* raw = t.get();
    raw->start_ = sim_.now();
    inflight_start_sum_ += raw->start_;
    if (raw->start_cb_ != Task::kNone) {
      Task::Callback cb = arena_.take_callback(raw->start_cb_);
      cb();
    }
    // The pending completion event owns the reference t held (released in
    // finish); the event itself is just the task's index on the typed path.
    sim_.schedule_tagged(sim_.now() + raw->duration_, arena_.completion_tag_,
                         raw->index_);
    t.leak();
  }

  /// Completion-event body. `raw` carries the reference start() leaked.
  void finish(Task* raw) {
    --busy_;
    inflight_start_sum_ -= raw->start_;
    completed_busy_ += sim_.now() - raw->start_;
    raw->complete();
    dispatch();
    TaskArena::release_ref(raw);
  }

  Simulator& sim_;
  TaskArena& arena_;
  std::string name_;
  int capacity_;
  int busy_ = 0;
  SimTime completed_busy_ = 0.0;
  SimTime inflight_start_sum_ = 0.0;
  std::deque<TaskPtr> ready_;
};

inline TaskPtr::TaskPtr(Task* t) : ptr_(t) {
  if (ptr_) ++ptr_->refs_;
}
inline TaskPtr::TaskPtr(const TaskPtr& o) : ptr_(o.ptr_) {
  if (ptr_) ++ptr_->refs_;
}
inline TaskPtr& TaskPtr::operator=(const TaskPtr& o) {
  if (ptr_ != o.ptr_) {
    Task* old = ptr_;
    ptr_ = o.ptr_;
    if (ptr_) ++ptr_->refs_;
    if (old) TaskArena::release_ref(old);
  }
  return *this;
}
inline TaskPtr& TaskPtr::operator=(TaskPtr&& o) noexcept {
  if (this != &o) {
    Task* old = ptr_;
    ptr_ = o.ptr_;
    o.ptr_ = nullptr;
    if (old) TaskArena::release_ref(old);
  }
  return *this;
}
inline TaskPtr::~TaskPtr() {
  if (ptr_) TaskArena::release_ref(ptr_);
}

inline TaskPtr TaskArena::allocate(Engine& engine, SimTime duration, StringId label) {
  Task* t;
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    t = &task_ref(idx);
  } else {
    // Default-init (not make_unique's value-init): Task is trivially
    // constructible precisely so a fresh chunk costs an allocation, not a
    // 120 KiB slab write that the field resets below redo anyway.
    static_assert(std::is_trivially_default_constructible_v<Task>);
    if ((size_ >> kChunkShift) == chunks_.size())
      chunks_.emplace_back(new Task[std::size_t{1} << kChunkShift]);
    idx = static_cast<std::uint32_t>(size_++);
    t = &task_ref(idx);
  }
  t->arena_ = this;
  t->engine_ = &engine;
  t->index_ = idx;
  t->label_ = label;
  t->duration_ = duration;
  t->start_ = t->end_ = 0.0;
  t->trace_ = nullptr;
  t->payload_ = t->start_cb_ = t->complete_cb_ = Task::kNone;
  t->succ_head_ = t->succ_tail_ = Task::kNone;
  t->refs_ = 0;
  t->pending_deps_ = 0;
  t->submitted_ = t->released_ = t->queued_ = t->done_ = false;
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  ++created_;
  return TaskPtr(t);
}

template <typename F>
void Task::assign_payload(F&& fn) {
  arena_->assign_callback(payload_, std::forward<F>(fn));
}

template <typename F>
void Task::on_complete(F&& fn) {
  if (done_) {
    fn();
    return;
  }
  if (complete_cb_ == kNone) {
    arena_->assign_callback(complete_cb_, std::forward<F>(fn));
  } else {
    // Chain in registration order; the composite usually outgrows the inline
    // buffer, which is fine — multi-registration is a cold path.
    Callback prev = arena_->take_callback(complete_cb_);
    arena_->assign_callback(
        complete_cb_,
        [prev = std::move(prev), next = Callback(std::forward<F>(fn))]() mutable {
          prev();
          next();
        });
  }
}

template <typename F>
void Task::on_start(F&& fn) {
  require(!submitted_, "on_start must be set before submit()");
  arena_->assign_callback(start_cb_, std::forward<F>(fn));
}

inline TaskPtr Task::create(Engine& engine, SimTime duration, std::string_view label) {
  return create(engine, duration, engine.arena().intern(label));
}

inline TaskPtr Task::create(Engine& engine, SimTime duration, StringId label) {
  require(duration >= 0.0, "task duration must be non-negative");
  return engine.arena().allocate(engine, duration, label);
}

inline const std::string& Task::label() const { return arena_->labels_.lookup(label_); }

inline void Task::depends_on(const TaskPtr& pred) {
  require(pred != nullptr, "dependency must not be null");
  require(!submitted_, "dependencies must be declared before submit()");
  if (pred->done_) return;
  ++pending_deps_;
  arena_->add_successor(*pred.get(), *this);
}

inline void Task::submit(SimTime release) {
  require(!submitted_, "task submitted twice");
  submitted_ = true;
  Simulator& sim = engine_->simulator();
  require(release >= sim.now(), "release time is in the past");
  if (release > sim.now()) {
    ++refs_;  // the pending release event keeps the task alive
    sim.schedule_tagged(release, arena_->release_tag_, index_);
  } else {
    released_ = true;
    maybe_ready();
  }
}

inline void TaskArena::on_release_event(void* ctx, std::uint32_t index) {
  Task* t = &static_cast<TaskArena*>(ctx)->task_ref(index);
  t->released_ = true;
  t->maybe_ready();
  release_ref(t);
}

inline void TaskArena::on_completion_event(void* ctx, std::uint32_t index) {
  Task* t = &static_cast<TaskArena*>(ctx)->task_ref(index);
  t->engine_->finish(t);
}

inline void Task::dependency_done() {
  ensure(pending_deps_ > 0, "dependency count underflow");
  --pending_deps_;
  maybe_ready();
}

inline void Task::maybe_ready() {
  if (queued_ || done_ || !submitted_ || !released_ || pending_deps_ > 0) return;
  queued_ = true;
  engine_->enqueue(TaskPtr(this));
}

inline void Task::complete() {
  ensure(!done_, "task completed twice");
  done_ = true;
  end_ = engine_->simulator().now();
  if (payload_ != kNone) {
    Callback payload = arena_->take_callback(payload_);
    payload();
  }
  if (trace_) {
    trace_->record(Span{span_kind_, span_lane_, span_label_, span_trace_, start_, end_,
                        span_bytes_, span_node_});
  }
  if (complete_cb_ != kNone) {
    Callback cb = arena_->take_callback(complete_cb_);
    cb();
  }
  // Notify successors in registration order; each may enqueue on (and kick)
  // its own engine immediately, which reproduces the legacy event-sequence
  // assignment exactly.
  TaskArena& arena = *arena_;
  std::uint32_t e = succ_head_;
  succ_head_ = succ_tail_ = kNone;
  while (e != kNone) {
    const TaskArena::Edge edge = arena.edges_[e];
    arena.free_edge(e);
    Task* succ = &arena.task_ref(edge.task);
    succ->dependency_done();
    TaskArena::release_ref(succ);
    e = edge.next;
  }
}

}  // namespace gpupipe::sim
