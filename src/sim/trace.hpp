// Timeline trace recording.
//
// The GPU runtime records one span per completed operation; the profiler and
// the Fig. 3 time-distribution bench aggregate these by category. Traces can
// also be dumped as a human-readable timeline for debugging pipelines.
//
// Spans optionally carry the id of the core::ExecutionPlan node whose
// replay produced them (-1 when the operation came from outside a plan):
// the executor publishes the node it is issuing via set_plan_node() and the
// runtime captures plan_node() at submission time, so per-node measured
// costs can be joined back onto the plan (core/telemetry.hpp). The same
// ambient mechanism carries a per-job trace id (set_trace_id): the scheduler
// publishes the id of the job whose pipeline it is enqueuing, so every span
// of a multi-tenant serve run can be attributed back to one job and joined
// with that job's flight-recorder events (common/flight_recorder.hpp).
//
// Spans are POD: lane and label are ids into the trace's intern table
// (one table per Trace, shared by lanes and labels), so recording a span at
// serve scale is a 48-byte append with no string allocation. Strings are
// resolved back only by the aggregate views and dumps; the dump formats are
// byte-identical to what the string-carrying spans produced. The intern
// table survives clear() so cached ids (streams cache their lane id, tasks
// their label id) stay valid across trace resets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/string_table.hpp"
#include "common/units.hpp"

namespace gpupipe::sim {

/// Classification of a traced span.
enum class SpanKind { HostApi, H2D, D2H, D2D, Kernel, Sync, Other };

inline const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::HostApi: return "host-api";
    case SpanKind::H2D: return "HtoD";
    case SpanKind::D2H: return "DtoH";
    case SpanKind::D2D: return "DtoD";
    case SpanKind::Kernel: return "kernel";
    case SpanKind::Sync: return "sync";
    case SpanKind::Other: return "other";
  }
  return "?";
}

/// One completed operation on the timeline. `lane` and `label` are ids in
/// the owning Trace's intern table (Trace::lane / Trace::label resolve them).
struct Span {
  SpanKind kind = SpanKind::Other;
  StringId lane = 0;        // engine or stream name (interned)
  StringId label = 0;       // operation description (interned)
  std::int32_t trace = -1;  // owning job's trace id, -1 outside a traced job
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes bytes = 0;         // payload size for transfers, 0 otherwise
  std::int64_t node = -1;  // originating ExecutionPlan node id, -1 if none

  SimTime duration() const { return end - start; }
};

/// Collects spans; cheap to disable (record() is a no-op when off).
class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Interns a lane/label string, returning the id to put in a Span. Ids are
  /// per-Trace and stay valid for the Trace's lifetime (clear() keeps the
  /// table), so hot paths intern once and reuse the id.
  StringId intern(std::string_view s) { return strings_.intern(s); }

  /// Resolves interned ids back to strings.
  const std::string& str(StringId id) const { return strings_.lookup(id); }
  const std::string& lane(const Span& s) const { return strings_.lookup(s.lane); }
  const std::string& label(const Span& s) const { return strings_.lookup(s.label); }

  /// The intern table (for observability: distinct strings, footprint).
  const StringTable& strings() const { return strings_; }

  /// Bounds the number of retained spans (0 = unbounded, the default).
  /// Once full the trace behaves as a ring keeping the newest spans; each
  /// overwritten span increments dropped_spans(). Long autotune sweeps can
  /// thus keep tracing on without growing memory without bound.
  void set_span_capacity(std::size_t cap) {
    cap_ = cap;
    if (cap_ > 0 && spans_.size() > cap_) {
      normalize();
      dropped_ += spans_.size() - cap_;
      spans_.erase(spans_.begin(), spans_.end() - static_cast<std::ptrdiff_t>(cap_));
    }
  }
  std::size_t span_capacity() const { return cap_; }
  /// Spans evicted by the capacity ring since the last clear().
  std::uint64_t dropped_spans() const { return dropped_; }

  /// Capacity hint: pre-sizes span storage for `n` spans. Callers that know
  /// the workload size up front (the serve driver knows its plan's span
  /// count, benches know their sweep) skip the geometric-growth copies —
  /// an unbounded 1M-span run otherwise copies ~2x its final footprint.
  void reserve(std::size_t n) { spans_.reserve(n); }

  /// Hot-path record: `s.lane` / `s.label` must be ids from this trace's
  /// intern().
  void record(const Span& s) {
    if (!enabled_) return;
    if (cap_ == 0 || spans_.size() < cap_) {
      spans_.push_back(s);
      return;
    }
    if (strict_drops())
      throw Error("trace span ring overflow: capacity " + std::to_string(cap_) +
                  " exceeded with GPUPIPE_TRACE_STRICT=1 (raise "
                  "set_span_capacity or disable strict mode)");
    spans_[oldest_] = s;
    oldest_ = (oldest_ + 1) % cap_;
    ++dropped_;
  }

  /// Convenience record interning the strings on the spot (tests, cold
  /// paths). Stamps the ambient trace id like the runtime path does.
  void record(SpanKind kind, std::string_view lane, std::string_view label, SimTime start,
              SimTime end, Bytes bytes = 0, std::int64_t node = -1) {
    if (!enabled_) return;
    record(Span{kind, intern(lane), intern(label), trace_id_, start, end, bytes, node});
  }

  /// The plan node currently being issued (stamped into spans the runtime
  /// records); -1 outside plan execution.
  void set_plan_node(std::int64_t id) { plan_node_ = id; }
  std::int64_t plan_node() const { return plan_node_; }

  /// The trace id of the job whose work is currently being submitted
  /// (stamped into spans like the plan node); -1 outside any job. The
  /// scheduler sets this around pipeline construction + enqueue so a span
  /// recorded at completion still carries the submitting job's id.
  void set_trace_id(std::int32_t id) { trace_id_ = id; }
  std::int32_t trace_id() const { return trace_id_; }

  /// When strict-drop mode is on (GPUPIPE_TRACE_STRICT=1, or
  /// set_strict_drops for tests), overflowing a capacity-bounded span ring
  /// throws instead of silently evicting — CI bench jobs use it so
  /// overlap-efficiency evidence cannot be quietly truncated. Process-wide.
  static bool strict_drops() { return strict_state(); }
  static void set_strict_drops(bool on) { strict_state() = on; }

  /// Retained spans in recording order (oldest first).
  const std::vector<Span>& spans() const {
    normalize();
    return spans_;
  }
  void clear() {
    spans_.clear();
    oldest_ = 0;
    dropped_ = 0;
  }

  /// Total span time per kind (sum of durations, ignoring overlap).
  std::map<SpanKind, SimTime> time_by_kind() const {
    std::map<SpanKind, SimTime> out;
    for (const auto& s : spans_) out[s.kind] += s.duration();
    return out;
  }

  /// Total span time per lane (per-stream / per-engine busy time).
  std::map<std::string, SimTime> time_by_lane() const {
    std::map<std::string, SimTime> out;
    for (const auto& s : spans_) out[strings_.lookup(s.lane)] += s.duration();
    return out;
  }

  /// Union length of [start,end) intervals of the given kind — the wall time
  /// during which at least one such operation was in flight.
  SimTime occupancy(SpanKind kind) const { return occupancy_union({kind}); }

  /// Union length over several kinds at once (e.g. "any device engine
  /// active" = occupancy_union({H2D, D2H, Kernel})).
  SimTime occupancy_union(std::initializer_list<SpanKind> kinds) const {
    std::vector<std::pair<SimTime, SimTime>> iv;
    for (const auto& s : spans_) {
      if (s.end <= s.start) continue;  // zero-length spans occupy nothing
      for (SpanKind k : kinds)
        if (s.kind == k) {
          iv.emplace_back(s.start, s.end);
          break;
        }
    }
    std::sort(iv.begin(), iv.end());
    SimTime total = 0.0, cur_lo = 0.0, cur_hi = -1.0;
    for (auto [lo, hi] : iv) {
      if (cur_hi < lo) {
        if (cur_hi > cur_lo) total += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (cur_hi > cur_lo) total += cur_hi - cur_lo;
    return total;
  }

  /// Dumps the timeline in Chrome trace-event JSON ("catapult") format —
  /// loadable in chrome://tracing or https://ui.perfetto.dev. Each lane
  /// (stream/engine) becomes a thread row; span kinds become categories;
  /// plan-correlated spans carry their node id in args.
  void dump_chrome_json(std::ostream& os) const {
    auto escape = [](const std::string& s) {
      static const char* hex = "0123456789abcdef";
      std::string out;
      for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (u < 0x20) {
          // Control characters are invalid raw inside JSON strings.
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xf];
        } else {
          out += c;
        }
      }
      return out;
    };
    normalize();
    // Stable lane -> tid mapping in order of first appearance. Keyed by the
    // resolved name (not the id) so the metadata rows keep the
    // sorted-by-name order the string-keyed map produced.
    std::map<std::string, int> tids;
    for (const auto& s : spans_)
      tids.emplace(strings_.lookup(s.lane), static_cast<int>(tids.size()) + 1);

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& [lane_name, tid] : tids) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << escape(lane_name) << "\"}}";
    }
    for (const auto& s : spans_) {
      os << ",{\"name\":\"" << escape(strings_.lookup(s.label)) << "\",\"cat\":\""
         << to_string(s.kind) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << tids[strings_.lookup(s.lane)] << ",\"ts\":" << s.start * 1e6
         << ",\"dur\":" << s.duration() * 1e6;
      if (s.bytes > 0 || s.node >= 0 || s.trace >= 0) {
        os << ",\"args\":{";
        bool first_arg = true;
        if (s.bytes > 0) {
          os << "\"bytes\":" << s.bytes;
          first_arg = false;
        }
        if (s.node >= 0) {
          if (!first_arg) os << ",";
          os << "\"plan_node\":" << s.node;
          first_arg = false;
        }
        if (s.trace >= 0) {
          if (!first_arg) os << ",";
          os << "\"trace_id\":" << s.trace;
        }
        os << "}";
      }
      os << "}";
    }
    os << "]}";
  }

  /// Dumps a sorted timeline (for debugging).
  void dump(std::ostream& os) const {
    std::vector<Span> sorted = spans_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
    for (const auto& s : sorted) {
      os << "[" << s.start * 1e3 << "ms - " << s.end * 1e3 << "ms] "
         << strings_.lookup(s.lane) << " " << to_string(s.kind) << " "
         << strings_.lookup(s.label) << "\n";
    }
  }

 private:
  /// Rotates the ring so spans_ is oldest-first (lazy; only after wrap).
  void normalize() const {
    if (oldest_ == 0) return;
    std::rotate(spans_.begin(), spans_.begin() + static_cast<std::ptrdiff_t>(oldest_),
                spans_.end());
    oldest_ = 0;
  }

  static bool& strict_state() {
    static bool strict = [] {
      const char* env = std::getenv("GPUPIPE_TRACE_STRICT");
      return env != nullptr && *env != '\0' && std::string_view(env) != "0";
    }();
    return strict;
  }

  bool enabled_ = true;
  std::size_t cap_ = 0;  // 0 = unbounded
  mutable std::size_t oldest_ = 0;
  std::uint64_t dropped_ = 0;
  std::int64_t plan_node_ = -1;
  std::int32_t trace_id_ = -1;
  mutable std::vector<Span> spans_;
  StringTable strings_;
};

/// Stream-overlap efficiency of a device timeline: the fraction of
/// *achievable* overlap that was realised. With busy = sum of per-kind
/// occupancies (H2D, D2H, Kernel), span = their union, and dominant = the
/// largest single-kind occupancy, the achievable saving is busy - dominant
/// (perfect overlap hides everything behind the longest kind) and the
/// realised saving is busy - span. Returns 0 for a fully serial timeline
/// (or when only one kind ran), 1 for perfect overlap.
inline double overlap_efficiency(const Trace& t) {
  const SimTime h2d = t.occupancy(SpanKind::H2D);
  const SimTime d2h = t.occupancy(SpanKind::D2H);
  const SimTime kernel = t.occupancy(SpanKind::Kernel);
  const SimTime busy = h2d + d2h + kernel;
  const SimTime span = t.occupancy_union({SpanKind::H2D, SpanKind::D2H, SpanKind::Kernel});
  const SimTime dominant = std::max({h2d, d2h, kernel});
  const SimTime achievable = busy - dominant;
  if (achievable <= 0.0) return 0.0;
  return std::max(0.0, busy - span) / achievable;
}

}  // namespace gpupipe::sim
