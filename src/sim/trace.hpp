// Timeline trace recording.
//
// The GPU runtime records one span per completed operation; the profiler and
// the Fig. 3 time-distribution bench aggregate these by category. Traces can
// also be dumped as a human-readable timeline for debugging pipelines.
#pragma once

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gpupipe::sim {

/// Classification of a traced span.
enum class SpanKind { HostApi, H2D, D2H, D2D, Kernel, Sync, Other };

inline const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::HostApi: return "host-api";
    case SpanKind::H2D: return "HtoD";
    case SpanKind::D2H: return "DtoH";
    case SpanKind::D2D: return "DtoD";
    case SpanKind::Kernel: return "kernel";
    case SpanKind::Sync: return "sync";
    case SpanKind::Other: return "other";
  }
  return "?";
}

/// One completed operation on the timeline.
struct Span {
  SpanKind kind = SpanKind::Other;
  std::string lane;   // engine or stream name
  std::string label;  // operation description
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes bytes = 0;  // payload size for transfers, 0 otherwise

  SimTime duration() const { return end - start; }
};

/// Collects spans; cheap to disable (record() is a no-op when off).
class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Span s) {
    if (enabled_) spans_.push_back(std::move(s));
  }

  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Total span time per kind (sum of durations, ignoring overlap).
  std::map<SpanKind, SimTime> time_by_kind() const {
    std::map<SpanKind, SimTime> out;
    for (const auto& s : spans_) out[s.kind] += s.duration();
    return out;
  }

  /// Union length of [start,end) intervals of the given kind — the wall time
  /// during which at least one such operation was in flight.
  SimTime occupancy(SpanKind kind) const {
    std::vector<std::pair<SimTime, SimTime>> iv;
    for (const auto& s : spans_)
      if (s.kind == kind && s.end > s.start) iv.emplace_back(s.start, s.end);
    std::sort(iv.begin(), iv.end());
    SimTime total = 0.0, cur_lo = 0.0, cur_hi = -1.0;
    for (auto [lo, hi] : iv) {
      if (cur_hi < lo) {
        if (cur_hi > cur_lo) total += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (cur_hi > cur_lo) total += cur_hi - cur_lo;
    return total;
  }

  /// Dumps the timeline in Chrome trace-event JSON ("catapult") format —
  /// loadable in chrome://tracing or https://ui.perfetto.dev. Each lane
  /// (stream/engine) becomes a thread row; span kinds become categories.
  void dump_chrome_json(std::ostream& os) const {
    auto escape = [](const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      return out;
    };
    // Stable lane -> tid mapping in order of first appearance.
    std::map<std::string, int> tids;
    for (const auto& s : spans_)
      tids.emplace(s.lane, static_cast<int>(tids.size()) + 1);

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto& [lane, tid] : tids) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << escape(lane) << "\"}}";
    }
    for (const auto& s : spans_) {
      os << ",{\"name\":\"" << escape(s.label) << "\",\"cat\":\"" << to_string(s.kind)
         << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[s.lane]
         << ",\"ts\":" << s.start * 1e6 << ",\"dur\":" << s.duration() * 1e6;
      if (s.bytes > 0) {
        os << ",\"args\":{\"bytes\":" << s.bytes << "}";
      }
      os << "}";
    }
    os << "]}";
  }

  /// Dumps a sorted timeline (for debugging).
  void dump(std::ostream& os) const {
    std::vector<Span> sorted = spans_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
    for (const auto& s : sorted) {
      os << "[" << s.start * 1e3 << "ms - " << s.end * 1e3 << "ms] " << s.lane << " "
         << to_string(s.kind) << " " << s.label << "\n";
    }
  }

 private:
  bool enabled_ = true;
  std::vector<Span> spans_;
};

}  // namespace gpupipe::sim
