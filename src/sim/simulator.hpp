// Deterministic discrete-event simulation kernel.
//
// The simulator owns a virtual clock and an event queue. All GPU activity
// (DMA transfers, kernel execution, queue scheduling) is expressed as events;
// host code advances the clock only by waiting (run_until / run_all).
// Determinism: simultaneous events fire in insertion order (sequence number
// tie-break), so every run of a workload is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gpupipe::sim {

/// Event-queue driven virtual clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at virtual time `t` (must not be in the past).
  void schedule(SimTime t, std::function<void()> fn) {
    require(t >= now_, "cannot schedule an event in the past");
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedules `fn` to run `delay` after now.
  void schedule_after(SimTime delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Runs events until `pred()` becomes true. Throws if the queue drains
  /// first — that is a deadlock (something waits on an event that will
  /// never fire).
  void run_until(const std::function<bool()>& pred) {
    while (!pred()) {
      ensure(!queue_.empty(), "simulation deadlock: waiting on an event that never fires");
      step();
    }
  }

  /// Runs every pending event; returns the final virtual time.
  SimTime run_all() {
    while (!queue_.empty()) step();
    return now_;
  }

  /// Runs events until virtual time reaches `t` (events at exactly `t` run).
  void run_until_time(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) step();
    now_ = std::max(now_, t);
  }

  /// Number of events executed so far (useful in tests).
  std::uint64_t events_executed() const { return executed_; }

  /// True when no events remain.
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    // Min-heap ordering: earliest time first, then earliest sequence.
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void step() {
    // std::priority_queue::top is const; move out via const_cast is UB-free
    // alternative: copy the function. We pop into a local first.
    Event ev = queue_.top();
    queue_.pop();
    ensure(ev.time >= now_, "event queue time went backwards");
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }

  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace gpupipe::sim
