// Deterministic discrete-event simulation kernel.
//
// The simulator owns a virtual clock and an event queue. All GPU activity
// (DMA transfers, kernel execution, queue scheduling) is expressed as events;
// host code advances the clock only by waiting (run_until / run_all).
// Determinism: simultaneous events fire in insertion order (sequence number
// tie-break), so every run of a workload is bit-reproducible.
//
// Hot-path layout: the priority queue holds only POD entries (time, seq,
// slot index); the callables live in a chunked slot pool with a free list,
// stored as small-buffer InlineCallable so the common closures (engine
// completions, task releases — a pointer and an index) never touch the
// allocator. Slots are recycled as soon as their event fires, so steady
// state runs allocation-free regardless of how many events execute.
//
// Queue structure: scheduled entries are staged in an append-only buffer and
// settled on demand. A bulk batch (the serve pattern — a whole fleet of job
// releases scheduled before the first pop) is sorted once and merged into a
// sorted run consumed by cursor; trickle arrivals go through a small 4-ary
// heap. Each pop takes the smaller of the run front and the heap front.
// Because (time, seq) is a total order — seq is unique — the pop sequence is
// fully determined by the comparator, independent of which structure holds
// an entry, so this is observationally identical to one big heap while
// replacing millions of deep sifts with one O(n log n) sort.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/inline_callable.hpp"
#include "common/units.hpp"

namespace gpupipe::sim {

/// Event-queue driven virtual clock.
class Simulator {
 public:
  /// Inline storage for event closures. The highest-frequency events (task
  /// releases, engine completions) bypass closures entirely via the tagged
  /// fast path below; this buffer is sized for the mid-frequency host-side
  /// lambdas the pipeline layers schedule per chunk. Larger user lambdas
  /// silently take the heap fallback.
  using EventFn = InlineCallable<32>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at virtual time `t` (must not be in the past).
  template <typename F>
  void schedule(SimTime t, F&& fn) {
    require(t >= now_, "cannot schedule an event in the past");
    const std::uint32_t slot = acquire_slot(std::forward<F>(fn));
    staged_.push_back(Entry{t, seq_++, slot, 0});
    if (++pending_ > pending_high_water_) pending_high_water_ = pending_;
  }

  /// Schedules `fn` to run `delay` after now.
  template <typename F>
  void schedule_after(SimTime delay, F&& fn) {
    schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Typed-event fast path: handler registered once, events carry only a
  /// 32-bit argument in the queue entry's padding. High-frequency event
  /// kinds (task releases, engine completions) use this to skip the callable
  /// pool — no slot traffic, no callable construction, one table dispatch.
  /// Ordering is identical to schedule(): same sequence counter, same queue.
  using TaggedFn = void (*)(void* ctx, std::uint32_t arg);

  /// Returns the (nonzero) tag to pass to schedule_tagged.
  std::uint32_t register_tagged(TaggedFn fn, void* ctx) {
    tagged_.push_back(Tagged{fn, ctx});
    return static_cast<std::uint32_t>(tagged_.size());
  }

  void schedule_tagged(SimTime t, std::uint32_t tag, std::uint32_t arg) {
    require(t >= now_, "cannot schedule an event in the past");
    staged_.push_back(Entry{t, seq_++, arg, tag});
    if (++pending_ > pending_high_water_) pending_high_water_ = pending_;
  }

  /// Runs events until `pred()` becomes true. Throws if the queue drains
  /// first — that is a deadlock (something waits on an event that will
  /// never fire).
  template <typename Pred>
  void run_until(const Pred& pred) {
    while (!pred()) {
      ensure(!idle(), "simulation deadlock: waiting on an event that never fires");
      step();
    }
  }

  /// Runs every pending event; returns the final virtual time.
  SimTime run_all() {
    while (!idle()) step();
    return now_;
  }

  /// Runs events until virtual time reaches `t` (events at exactly `t` run).
  void run_until_time(SimTime t) {
    while (!idle() && front_time() <= t) step();
    now_ = std::max(now_, t);
  }

  /// Number of events executed so far (useful in tests).
  std::uint64_t events_executed() const { return executed_; }

  /// True when no events remain.
  bool idle() const { return pending_ == 0; }

  /// Events currently pending (scheduled, not yet fired).
  std::size_t events_pending() const { return pending_; }

  /// Capacity hint: pre-sizes the staging buffer for a bulk scheduling burst
  /// of `n` events (a fleet submission). Purely a performance hint — skips
  /// the geometric-growth copies while the burst accumulates.
  void reserve_events(std::size_t n) { staged_.reserve(n); }

  /// Most events ever pending at once — the event pool's high-water mark.
  std::size_t events_high_water() const { return pending_high_water_; }

  /// Slots allocated in the pooled callable store (>= high water; slots are
  /// recycled through a free list, never returned to the allocator).
  std::size_t event_pool_slots() const { return pool_size_; }

  /// Per-simulator extension slot: returns the unique T owned by this
  /// simulator, default-constructing it on first use. Lets higher layers
  /// (e.g. the task arena) attach per-simulation state without widening
  /// this class or inverting the include order.
  template <typename T>
  T& extension() {
    auto it = extensions_.find(std::type_index(typeid(T)));
    if (it == extensions_.end()) {
      it = extensions_.emplace(std::type_index(typeid(T)), std::make_unique<Model<T>>())
               .first;
    }
    return static_cast<Model<T>*>(it->second.get())->value;
  }

 private:
  // The queue entry is deliberately POD-small: sorting and sifting move
  // 24-byte values instead of std::function objects, and comparisons touch
  // only this struct. The tag rides in what would otherwise be padding:
  // 0 = `slot` indexes the callable pool, nonzero = `slot` is the argument
  // for the registered tagged handler.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t tag;
  };
  // Earliest time first, then earliest sequence — a strict total order.
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  struct Slot {
    EventFn fn;
    std::uint32_t next_free = kNoSlot;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  // 4096-slot chunks: growth never relocates live callables (a vector's
  // geometric regrow move-constructed every pending closure, which showed up
  // as ~12% of a serve-scale run).
  static constexpr std::uint32_t kSlotChunkShift = 12;
  static constexpr std::uint32_t kSlotChunkMask = (1u << kSlotChunkShift) - 1u;

  Slot& slot_ref(std::uint32_t i) {
    return chunks_[i >> kSlotChunkShift][i & kSlotChunkMask];
  }

  template <typename F>
  std::uint32_t acquire_slot(F&& fn) {
    if (free_head_ == kNoSlot) {
      if ((pool_size_ >> kSlotChunkShift) == chunks_.size())
        chunks_.push_back(std::make_unique<Slot[]>(std::size_t{1} << kSlotChunkShift));
      const auto slot = static_cast<std::uint32_t>(pool_size_++);
      slot_ref(slot).fn = EventFn(std::forward<F>(fn));
      return slot;
    }
    const std::uint32_t slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
    slot_ref(slot).fn = EventFn(std::forward<F>(fn));
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    slot_ref(slot).next_free = free_head_;
    free_head_ = slot;
  }

  /// Drains the staging buffer into the run (bulk) or the heap (trickle).
  /// Policy affects only performance: every entry lives in exactly one of
  /// run / heap / staged, and pops always take the global (time, seq) min.
  void settle() {
    const std::size_t rem = run_.size() - run_pos_;
    if (staged_.size() > 256 && staged_.size() * 8 >= rem) {
      // Bulk batches are typically already ordered (fleet releases arrive in
      // nondecreasing time, ties in sequence order) — detect that with one
      // linear pass before paying for a sort.
      if (!std::is_sorted(staged_.begin(), staged_.end(), before))
        std::sort(staged_.begin(), staged_.end(), before);
      if (rem == 0) {
        run_.swap(staged_);
        run_pos_ = 0;
      } else {
        std::vector<Entry> merged;
        merged.reserve(rem + staged_.size());
        std::merge(run_.begin() + static_cast<std::ptrdiff_t>(run_pos_), run_.end(),
                   staged_.begin(), staged_.end(), std::back_inserter(merged), before);
        run_.swap(merged);
        run_pos_ = 0;
      }
    } else {
      for (const Entry& e : staged_) heap_push(e);
    }
    staged_.clear();
  }

  /// Minimum pending event time. Call only when !idle().
  SimTime front_time() {
    if (!staged_.empty()) settle();
    if (run_pos_ < run_.size() &&
        (heap_.empty() || before(run_[run_pos_], heap_.front())))
      return run_[run_pos_].time;
    return heap_.front().time;
  }

  void step() {
    if (!staged_.empty()) settle();
    Entry e;
    if (run_pos_ < run_.size() &&
        (heap_.empty() || before(run_[run_pos_], heap_.front()))) {
      e = run_[run_pos_++];
      if (run_pos_ == run_.size()) {
        run_.clear();
        run_pos_ = 0;
      }
    } else {
      e = heap_.front();
      heap_pop_front();
    }
    ensure(e.time >= now_, "event queue time went backwards");
    now_ = e.time;
    ++executed_;
    --pending_;
    if (e.tag != 0) {
      const Tagged& h = tagged_[e.tag - 1];
      h.fn(h.ctx, e.slot);
      return;
    }
    // Move the callable out of its pool slot and recycle the slot *before*
    // invoking: the callable routinely schedules follow-up events, and those
    // should reuse this slot instead of growing the pool.
    EventFn fn = std::move(slot_ref(e.slot).fn);
    release_slot(e.slot);
    fn();
  }

  // 4-ary heap: parent (i-1)/4, children 4i+1 .. 4i+4 — shallower sifts than
  // binary, and a node's children sit in 96 contiguous bytes.
  void heap_push(const Entry& e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop_front() {
    const Entry e = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  struct Tagged {
    TaggedFn fn;
    void* ctx;
  };

  struct Concept {
    virtual ~Concept() = default;
  };
  template <typename T>
  struct Model final : Concept {
    T value;
  };

  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  // Declared before the slot pool: pending event closures can hold handles
  // into extension state (the task arena), so the pool must be destroyed
  // first (members destruct in reverse declaration order).
  std::unordered_map<std::type_index, std::unique_ptr<Concept>> extensions_;
  std::vector<Entry> run_;  // sorted ascending, consumed from run_pos_
  std::size_t run_pos_ = 0;
  std::vector<Entry> heap_;
  std::vector<Entry> staged_;  // inserts since the last settle()
  std::size_t pending_ = 0;  // run remainder + heap + staged
  std::size_t pending_high_water_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t pool_size_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<Tagged> tagged_;
};

}  // namespace gpupipe::sim
