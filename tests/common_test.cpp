// Unit tests for the shared utilities: units, error helpers, RNG,
// checksums, and the table printer.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace gpupipe {
namespace {

TEST(Units, ByteConstantsAndConversions) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024);
  EXPECT_EQ(GiB, 1024u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(to_mib(5 * MiB), 5.0);
  EXPECT_DOUBLE_EQ(to_gib(3 * GiB), 3.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(usec(3.0), 3e-6);
  EXPECT_DOUBLE_EQ(msec(2.0), 2e-3);
  EXPECT_DOUBLE_EQ(gbps(6.0), 6e9);
  EXPECT_DOUBLE_EQ(gflops(1.43), 1.43e9);
}

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(Errors, RequireCarriesMessageAndLocation) {
  try {
    require(false, "bad argument here");
    FAIL();
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad argument here"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(ensure(false, "invariant"), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs = differs || (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, DoublesAreInUnitInterval) {
  Rng r(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05);  // covers the range
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, UniformAndBelowRespectBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
    ASSERT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Checksum, Fnv1aIsOrderSensitive) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NE(fnv1a(std::span<const double>(a)), fnv1a(std::span<const double>(b)));
  EXPECT_EQ(fnv1a(std::span<const double>(a)), fnv1a(std::span<const double>(a)));
}

TEST(Checksum, ApproxEqualHandlesSizeAndTolerance) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0 + 1e-12};
  const std::vector<double> c{1.0};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-15));
  EXPECT_FALSE(approx_equal(a, c));
  EXPECT_NEAR(max_abs_diff(a, b), 1e-12, 1e-15);
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.add_row({"short", Table::num(1.5)});
  t.add_row({"much longer name", Table::num(12.345, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| short            |"), std::string::npos);
  EXPECT_NE(out.find("12.3"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(SplitMix, ProducesDistinctStates) {
  std::uint64_t s = 1;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(s));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace gpupipe
