// Tests for multi-device co-scheduling (MultiPipeline) and the shared
// simulation context.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/multi.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

PipelineSpec rows_spec(std::vector<double>& in, std::vector<double>& out, std::int64_t n,
                       std::int64_t m, std::int64_t chunk, int streams) {
  PipelineSpec spec;
  spec.chunk_size = chunk;
  spec.num_streams = streams;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

KernelFactory doubler(std::int64_t m, double kernel_weight = 64.0) {
  return [m, kernel_weight](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "double";
    k.flops = static_cast<double>(ctx.iterations() * m);
    k.bytes = static_cast<Bytes>(static_cast<double>(ctx.iterations() * m) * sizeof(double) *
                                 kernel_weight);
    const BufferView in = ctx.view("in");
    const BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in, out, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* src = in.slab_ptr(r);
        double* dst = out.slab_ptr(r);
        for (std::int64_t j = 0; j < m; ++j) dst[j] = 2.0 * src[j];
      }
    };
    return k;
  };
}

TEST(SharedContext, DevicesShareOneClock) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  g0.host_compute(1.0);
  EXPECT_DOUBLE_EQ(g1.host_now(), g0.host_now());

  // Work on g0 advances the clock g1 observes after its own sync.
  gpu::KernelDesc k;
  k.fixed_duration = 2.0;
  g0.launch(g0.default_stream(), std::move(k));
  g1.synchronize();  // drains the shared event queue
  EXPECT_GE(g1.host_now(), 3.0);
}

TEST(SharedContext, EachDeviceHasItsOwnMemorySpace) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  std::byte* p0 = g0.device_malloc(1024);
  std::byte* p1 = g1.device_malloc(1024);
  EXPECT_NE(p0, p1);
  EXPECT_EQ(g0.device_mem_stats().current, 1024u);
  EXPECT_EQ(g1.device_mem_stats().current, 1024u);
}

TEST(Partition, SplitsProportionallyInChunkGranules) {
  const auto parts = MultiPipeline::partition(100, {1.0, 1.0}, 4);
  EXPECT_EQ(parts, (std::vector<std::int64_t>{48, 52}));
  const auto uneven = MultiPipeline::partition(90, {2.0, 1.0}, 1);
  EXPECT_EQ(uneven, (std::vector<std::int64_t>{60, 30}));
  const auto one = MultiPipeline::partition(7, {5.0}, 2);
  EXPECT_EQ(one, (std::vector<std::int64_t>{7}));
}

TEST(Partition, TinyLoopsGoEntirelyToOneDevice) {
  const auto parts = MultiPipeline::partition(3, {1.0, 1.0, 1.0}, 4);
  EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), std::int64_t{0}), 3);
}

TEST(MultiPipeline, TwoDevicesComputeTheSameResultAsOne) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  const std::int64_t n = 64, m = 16;
  std::vector<double> in(n * m), out(n * m, -1.0);
  std::iota(in.begin(), in.end(), 0.0);

  MultiPipeline mp({{&g0, 0.0}, {&g1, 0.0}}, rows_spec(in, out, n, m, 4, 2));
  EXPECT_EQ(mp.device_count(), 2);
  mp.run(doubler(m));
  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i]) << i;
}

TEST(MultiPipeline, SlicesAreContiguousAndCoverTheLoop) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  std::vector<double> dummy_in(1), dummy_out(1);
  auto spec = rows_spec(dummy_in, dummy_out, 100, 1, 4, 2);
  // Host pointers are fake in Modeled mode; reuse real ones.
  MultiPipeline mp({{&g0, 1.0}, {&g1, 1.0}}, spec);
  const auto s0 = mp.slice(0);
  const auto s1 = mp.slice(1);
  EXPECT_EQ(s0.first, 0);
  EXPECT_EQ(s0.second, s1.first);
  EXPECT_EQ(s1.second, 100);
}

TEST(MultiPipeline, TwoEqualDevicesNearlyHalveKernelBoundTime) {
  const std::int64_t n = 256, m = 1024;
  auto run_with_devices = [&](int ndev) {
    auto ctx = gpu::make_shared_context();
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<DeviceShare> shares;
    for (int i = 0; i < ndev; ++i) {
      gpus.push_back(
          std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx));
      gpus.back()->hazards().set_enabled(false);
      shares.push_back({gpus.back().get(), 1.0});
    }
    std::vector<double> in(1), out(1);
    auto spec = rows_spec(in, out, n, m, 8, 2);
    spec.arrays[0].host = gpus[0]->host_alloc(n * m * sizeof(double));
    spec.arrays[1].host = gpus[0]->host_alloc(n * m * sizeof(double));
    MultiPipeline mp(shares, spec);
    const SimTime t0 = gpus[0]->host_now();
    mp.run(doubler(m, 512.0));  // strongly kernel-bound
    return gpus[0]->host_now() - t0;
  };
  const SimTime t1 = run_with_devices(1);
  const SimTime t2 = run_with_devices(2);
  EXPECT_LT(t2, 0.62 * t1);
}

TEST(MultiPipeline, HeterogeneousDevicesGetProportionalSlices) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu fast(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);   // 1.43 TF
  gpu::Gpu slow(gpu::amd_hd7970(), gpu::ExecMode::Modeled, ctx);    // 0.95 TF
  std::vector<double> in(1), out(1);
  auto spec = rows_spec(in, out, 120, 64, 4, 2);
  spec.arrays[0].host = fast.host_alloc(120 * 64 * sizeof(double));
  spec.arrays[1].host = fast.host_alloc(120 * 64 * sizeof(double));
  MultiPipeline mp({{&fast, 0.0}, {&slow, 0.0}}, spec);
  const auto s_fast = mp.slice(0);
  const auto s_slow = mp.slice(1);
  EXPECT_GT(s_fast.second - s_fast.first, s_slow.second - s_slow.first);
}

TEST(MultiPipeline, RejectsMismatchedContexts) {
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);  // different context
  std::vector<double> in(64), out(64);
  EXPECT_THROW(MultiPipeline({{&g0, 1.0}, {&g1, 1.0}}, rows_spec(in, out, 8, 8, 1, 1)),
               Error);
}

TEST(MultiPipeline, RejectsAdaptiveSchedule) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  std::vector<double> in(64), out(64);
  auto spec = rows_spec(in, out, 8, 8, 1, 1);
  spec.schedule = ScheduleKind::Adaptive;
  EXPECT_THROW(MultiPipeline({{&g0, 1.0}}, spec), Error);
}

TEST(MultiPipeline, SingleDeviceDegeneratesToPipeline) {
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  const std::int64_t n = 16, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  MultiPipeline mp({{&g0, 1.0}}, rows_spec(in, out, n, m, 2, 2));
  mp.run(doubler(m));
  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0);
}

TEST(MultiPipeline, HaloWindowsStraddleBoundariesCorrectly) {
  // A window-3 stencil over two devices: the halo rows at the slice
  // boundary must reach both devices for correct results.
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g0(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Functional, ctx);
  const std::int64_t n = 40, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 0.0);

  PipelineSpec spec;
  spec.chunk_size = 2;
  spec.num_streams = 2;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  MultiPipeline mp({{&g0, 1.0}, {&g1, 1.0}}, spec);
  mp.run([m](const ChunkContext& ctx2) {
    gpu::KernelDesc k;
    const BufferView in_v = ctx2.view("in");
    const BufferView out_v = ctx2.view("out");
    const std::int64_t lo = ctx2.begin(), hi = ctx2.end();
    k.body = [in_v, out_v, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j)
          out_v.slab_ptr(r)[j] =
              in_v.slab_ptr(r - 1)[j] + in_v.slab_ptr(r)[j] + in_v.slab_ptr(r + 1)[j];
    };
    return k;
  });
  for (std::int64_t r = 1; r < n - 1; ++r)
    for (std::int64_t j = 0; j < m; ++j)
      ASSERT_DOUBLE_EQ(out[r * m + j],
                       in[(r - 1) * m + j] + in[r * m + j] + in[(r + 1) * m + j])
          << r;
}

}  // namespace
}  // namespace gpupipe::core
