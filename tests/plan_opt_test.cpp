// Tests for the plan optimization passes (core/plan_opt.hpp): byte
// accounting and hazard validity of optimized plans, pass idempotence, the
// paper-config transfer savings, and opt-vs-no-opt execution equivalence
// across the four evaluation applications.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "apps/conv3d.hpp"
#include "apps/matmul.hpp"
#include "apps/qcd.hpp"
#include "apps/stencil.hpp"
#include "core/model.hpp"
#include "core/plan.hpp"
#include "core/plan_opt.hpp"
#include "core/tile_pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

std::byte dummy_in[8];
std::byte dummy_out[8];

/// Stencil-shaped region (window 3 input, window 1 output, split dim 0);
/// plan building never dereferences the host pointers.
PipelineSpec stencil_like(std::int64_t nz, std::int64_t ny, std::int64_t nx,
                          std::int64_t chunk, int streams, int opt) {
  PipelineSpec spec;
  spec.chunk_size = chunk;
  spec.num_streams = streams;
  spec.opt_level = opt;
  spec.loop_begin = 1;
  spec.loop_end = nz - 1;
  spec.arrays = {
      ArraySpec{"A0", MapType::To, dummy_in, sizeof(double), {nz, ny, nx},
                SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"Anext", MapType::From, dummy_out, sizeof(double), {nz, ny, nx},
                SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

Bytes h2d_bytes(const ExecutionPlan& plan) {
  Bytes total = 0;
  for (const auto& n : plan.nodes)
    if (n.op == PlanOp::H2D) total += n.bytes;
  return total;
}

Bytes d2h_bytes(const ExecutionPlan& plan) {
  Bytes total = 0;
  for (const auto& n : plan.nodes)
    if (n.op == PlanOp::D2H) total += n.bytes;
  return total;
}

TEST(PlanOpt, NaivePlanUploadsFullWindowsAndHaloReuseElidesThem) {
  const std::int64_t ny = 4, nx = 3;
  const Bytes plane = ny * nx * sizeof(double);
  // 5 chunks of 2 iterations over loop [1, 11): each input window spans
  // chunk+2 planes naively; reuse pays the 2-plane halo only once.
  const ExecutionPlan naive = PlanBuilder::pipeline(stencil_like(12, ny, nx, 2, 2, 0));
  EXPECT_EQ(h2d_bytes(naive), 5 * 4 * plane);
  const ExecutionPlan opt = PlanBuilder::pipeline(stencil_like(12, ny, nx, 2, 2, 1));
  EXPECT_EQ(h2d_bytes(opt), 12 * plane);  // the distinct planes [0, 12)
  // Output traffic is untouched by the input-halo pass.
  EXPECT_EQ(d2h_bytes(naive), 10 * plane);
  EXPECT_EQ(d2h_bytes(opt), 10 * plane);
  EXPECT_LT(opt.nodes.size(), naive.nodes.size());
}

class PlanOptSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlanOptSweep, OptimizedPlansValidateAndNeverMoveMoreBytes) {
  const auto [chunk, streams] = GetParam();
  const ExecutionPlan naive = PlanBuilder::pipeline(stencil_like(14, 5, 4, chunk, streams, 0));
  Bytes prev = h2d_bytes(naive);
  for (int opt = 0; opt <= 2; ++opt) {
    const ExecutionPlan plan = PlanBuilder::pipeline(stencil_like(14, 5, 4, chunk, streams, opt));
    EXPECT_NO_THROW(plan.validate()) << "chunk " << chunk << " streams " << streams
                                     << " opt " << opt;
    EXPECT_LE(h2d_bytes(plan), prev);  // never increases with the level
    EXPECT_EQ(d2h_bytes(plan), d2h_bytes(naive));
    prev = h2d_bytes(plan);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, PlanOptSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 4)));

TEST(PlanOpt, Fig4StencilConfigSavesAtLeastTwentyPercent) {
  // The paper's Fig. 4 stencil shape: 256 x 256 x 64 grid, chunk_size 4.
  PipelineSpec spec = stencil_like(64, 256, 256, 4, 3, 0);
  ExecutionPlan plan = PlanBuilder::pipeline(spec);
  const OptReport report = optimize_plan(plan, 1);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_GT(report.h2d_bytes_before, 0);
  // h2d_after <= 0.8 * h2d_before, in integer arithmetic.
  EXPECT_LE(report.h2d_bytes_after * 5, report.h2d_bytes_before * 4);
}

TEST(PlanOpt, Fig7Conv3dConfigSavesAtLeastTwentyPercent) {
  // The paper's Fig. 7 convolution shape: 256^3 volume, chunk_size 1 (the
  // stream sweep's chunk), window-3 input like the stencil.
  PipelineSpec spec = stencil_like(256, 256, 256, 1, 4, 0);
  ExecutionPlan plan = PlanBuilder::pipeline(spec);
  const OptReport report = optimize_plan(plan, 1);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_LE(report.h2d_bytes_after * 5, report.h2d_bytes_before * 4);
}

TEST(PlanOpt, ReportAccountingIsConsistent) {
  ExecutionPlan plan = PlanBuilder::pipeline(stencil_like(20, 6, 5, 2, 2, 0));
  const std::int64_t naive_nodes = static_cast<std::int64_t>(plan.nodes.size());
  const OptReport report = optimize_plan(plan, 1);
  ASSERT_EQ(report.passes.size(), 2u);
  EXPECT_EQ(report.passes[0].pass, "halo-reuse");
  EXPECT_EQ(report.passes[1].pass, "coalesce");
  Bytes saved = 0;
  for (const auto& p : report.passes) {
    Bytes by_array = 0;
    for (const auto& [name, bytes] : p.bytes_saved_by_array) by_array += bytes;
    EXPECT_EQ(by_array, p.bytes_saved) << p.pass;
    saved += p.bytes_saved;
  }
  EXPECT_EQ(report.h2d_bytes_before + report.d2h_bytes_before,
            report.h2d_bytes_after + report.d2h_bytes_after + saved);
  EXPECT_EQ(report.nodes_before, naive_nodes);
  EXPECT_EQ(report.nodes_after, static_cast<std::int64_t>(plan.nodes.size()));
  EXPECT_LE(report.nodes_after, report.nodes_before);
}

TEST(PlanOpt, OptimizerIsIdempotent) {
  ExecutionPlan plan = PlanBuilder::pipeline(stencil_like(16, 4, 4, 2, 2, 0));
  optimize_plan(plan, 1);
  const Bytes h2d = h2d_bytes(plan);
  const std::size_t nodes = plan.nodes.size();
  const OptReport again = optimize_plan(plan, 1);
  EXPECT_EQ(h2d_bytes(plan), h2d);
  EXPECT_EQ(plan.nodes.size(), nodes);
  EXPECT_EQ(again.h2d_bytes_before, again.h2d_bytes_after);
  for (const auto& p : again.passes) {
    EXPECT_EQ(p.nodes_removed, 0) << p.pass;
    EXPECT_EQ(p.bytes_saved, 0) << p.pass;
  }
}

TEST(PlanOpt, RejectsUnknownOptLevels) {
  ExecutionPlan plan = PlanBuilder::pipeline(stencil_like(12, 4, 4, 2, 2, 0));
  EXPECT_THROW(optimize_plan(plan, -1), Error);
  EXPECT_THROW(optimize_plan(plan, 3), Error);
}

TEST(PlanOpt, SingleChunkLoopIsUnchanged) {
  // One chunk covers the whole loop: nothing is resident beforehand, so the
  // passes find nothing to elide.
  ExecutionPlan plan = PlanBuilder::pipeline(stencil_like(6, 4, 4, 8, 2, 0));
  const Bytes before = h2d_bytes(plan);
  const OptReport report = optimize_plan(plan, 1);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(h2d_bytes(plan), before);
  EXPECT_EQ(report.nodes_before, report.nodes_after);
}

TEST(PlanOpt, StreamRebalanceKeepsBytesAndValidity) {
  const ExecutionPlan level1 = PlanBuilder::pipeline(stencil_like(24, 8, 8, 1, 3, 1));
  const ExecutionPlan level2 = PlanBuilder::pipeline(stencil_like(24, 8, 8, 1, 3, 2));
  EXPECT_NO_THROW(level2.validate());
  EXPECT_EQ(h2d_bytes(level2), h2d_bytes(level1));
  EXPECT_EQ(d2h_bytes(level2), d2h_bytes(level1));
  EXPECT_EQ(level2.nodes.size(), level1.nodes.size());
}

TEST(PlanOpt, CostModelChargesHaloOnlyWhenUnoptimized) {
  // CostModel keeps references to its profile and spec: they must outlive it.
  const SimTime per_iter = 1e-5;
  const gpu::DeviceProfile profile = gpu::nvidia_k40m();
  const PipelineSpec unopt_spec = stencil_like(32, 16, 16, 2, 2, 0);
  const PipelineSpec opt_spec = stencil_like(32, 16, 16, 2, 2, 1);
  const CostModel unopt(profile, unopt_spec, per_iter);
  const CostModel opt(profile, opt_spec, per_iter);
  EXPECT_GT(unopt.chunk_cost(2).copy_in, opt.chunk_cost(2).copy_in);
  EXPECT_EQ(unopt.chunk_cost(2).copy_out, opt.chunk_cost(2).copy_out);
}

// --- execution equivalence: the optimizer must never change results ---

class StencilOptSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilOptSweep, ChecksumIdenticalOptVsNoOpt) {
  apps::StencilConfig cfg;
  cfg.nx = 10;
  cfg.ny = 9;
  cfg.nz = 12;
  cfg.sweeps = 2;
  cfg.chunk_size = std::get<0>(GetParam());
  cfg.num_streams = std::get<1>(GetParam());
  cfg.opt_level = 0;
  gpu::Gpu g0(gpu::nvidia_k40m()), g1(gpu::nvidia_k40m());
  const auto noopt = apps::stencil_pipelined_buffer(g0, cfg);
  cfg.opt_level = 1;
  const auto opt = apps::stencil_pipelined_buffer(g1, cfg);
  EXPECT_NE(opt.checksum, 0u);
  EXPECT_EQ(opt.checksum, noopt.checksum);
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, StencilOptSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

TEST(PlanOptApps, AllFourAppsAgreeAcrossOptLevels) {
  std::uint64_t checksums[4][3] = {};
  for (int opt = 0; opt <= 2; ++opt) {
    gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m()), g3(gpu::nvidia_k40m()),
        g4(gpu::nvidia_k40m());
    apps::StencilConfig sc;
    sc.nx = 8;
    sc.ny = 7;
    sc.nz = 10;
    sc.sweeps = 2;
    sc.chunk_size = 2;
    sc.opt_level = opt;
    checksums[0][opt] = apps::stencil_pipelined_buffer(g1, sc).checksum;
    apps::Conv3dConfig cc;
    cc.ni = 10;
    cc.nj = 8;
    cc.nk = 8;
    cc.chunk_size = 2;
    cc.opt_level = opt;
    checksums[1][opt] = apps::conv3d_pipelined_buffer(g2, cc).checksum;
    apps::MatmulConfig mc;
    mc.n = 24;
    mc.chunk_cols = 8;
    mc.opt_level = opt;
    checksums[2][opt] = apps::matmul_pipeline_buffer(g3, mc).checksum;
    apps::QcdConfig qc;
    qc.n = 6;
    qc.chunk_size = 2;
    qc.opt_level = opt;
    checksums[3][opt] = apps::qcd_pipelined_buffer(g4, qc).checksum;
  }
  for (int app = 0; app < 4; ++app) {
    EXPECT_NE(checksums[app][0], 0u) << "app " << app;
    EXPECT_EQ(checksums[app][0], checksums[app][1]) << "app " << app;
    EXPECT_EQ(checksums[app][0], checksums[app][2]) << "app " << app;
  }
}

TEST(PlanOptApps, StencilTransfersFewerBytesWhenOptimized) {
  apps::StencilConfig cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.nz = 32;
  cfg.sweeps = 1;
  cfg.chunk_size = 2;
  cfg.opt_level = 0;
  gpu::Gpu g0(gpu::nvidia_k40m()), g1(gpu::nvidia_k40m());
  const auto noopt = apps::stencil_pipelined_buffer(g0, cfg);
  cfg.opt_level = 1;
  const auto opt = apps::stencil_pipelined_buffer(g1, cfg);
  EXPECT_EQ(opt.checksum, noopt.checksum);
  // More H2D traffic costs more virtual transfer time.
  EXPECT_GT(noopt.h2d_time, opt.h2d_time);
}

TEST(PlanOptTiles, TilePipelineAgreesAcrossOptLevels) {
  const std::int64_t rows = 24, cols = 36, th = 4, tw = 6;
  std::vector<double> in(static_cast<std::size_t>(rows * cols));
  for (std::size_t x = 0; x < in.size(); ++x) in[x] = static_cast<double>(x % 31) - 15.0;
  Bytes h2d_by_level[3] = {};
  for (int opt = 0; opt <= 2; ++opt) {
    gpu::Gpu g(gpu::nvidia_k40m());
    std::vector<double> out(in.size(), -1.0);
    TileSpec spec;
    spec.num_streams = 2;
    spec.ni = rows / th;
    spec.nj = cols / tw;
    spec.opt_level = opt;
    spec.arrays = {
        TileArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()),
                      sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th},
                      TileDimSpec{Affine{tw, 0}, tw}},
        TileArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                      sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th},
                      TileDimSpec{Affine{tw, 0}, tw}},
    };
    TilePipeline p(g, spec);
    p.run([](const TileContext& ctx) {
      gpu::KernelDesc k;
      const TileBufferView vin = ctx.view("in");
      const TileBufferView vout = ctx.view("out");
      const std::int64_t r0 = ctx.i() * 4, c0 = ctx.j() * 6;
      k.body = [vin, vout, r0, c0] {
        for (std::int64_t r = r0; r < r0 + 4; ++r)
          for (std::int64_t c = c0; c < c0 + 6; ++c) *vout.at(r, c) = 2.0 * *vin.at(r, c);
      };
      return k;
    });
    for (std::size_t x = 0; x < in.size(); ++x)
      ASSERT_DOUBLE_EQ(out[x], 2.0 * in[x]) << "opt " << opt << " elem " << x;
    h2d_by_level[opt] = p.h2d_bytes();
  }
  EXPECT_LE(h2d_by_level[1], h2d_by_level[0]);
  EXPECT_EQ(h2d_by_level[2], h2d_by_level[1]);
}

}  // namespace
}  // namespace gpupipe::core
