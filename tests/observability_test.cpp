// Live observability tests: flight-recorder ring semantics and trace-id
// propagation through a scheduled run, watchdog triggers (deadline storm,
// stall, disk corruption), sampler determinism, byte-exact exporter golden
// files, strict span-ring mode, and plan-cache disk compaction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/export.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_serialize.hpp"
#include "gpu/device_profile.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"
#include "sim/trace.hpp"

namespace gpupipe {
namespace {

namespace fs = std::filesystem;
using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::FlightRecorder;

// --- Fixtures -------------------------------------------------------------

struct Machine {
  std::shared_ptr<gpu::SharedContext> ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;

  explicit Machine(int n, gpu::ExecMode mode = gpu::ExecMode::Modeled) {
    for (int i = 0; i < n; ++i) {
      gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(), mode, ctx));
      devices.push_back(gpus.back().get());
    }
  }
};

sched::ScheduleReport run_synthetic(Machine& m, sched::SchedulerOptions opts, int n) {
  sched::Scheduler s(m.devices, opts);
  const auto mix = sched::synthetic_job_mix(n);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_synthetic_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  return s.run();
}

FlightEvent event(FlightEventKind kind, SimTime t, std::int32_t trace = -1,
                  std::int32_t job = -1, std::int32_t device = -1, std::int64_t a = 0,
                  std::int64_t b = 0) {
  FlightEvent ev;
  ev.time = t;
  ev.kind = kind;
  ev.trace_id = trace;
  ev.job = job;
  ev.device = device;
  ev.a = a;
  ev.b = b;
  return ev;
}

// --- Histogram::quantile --------------------------------------------------

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  telemetry::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket (0, 1]
  h.observe(1.5);  // bucket (1, 2]
  h.observe(1.7);
  h.observe(3.0);  // bucket (2, 4]
  // rank 2 lands halfway through the (1, 2] bucket's two observations.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(HistogramQuantile, EmptyAndTailBuckets) {
  telemetry::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  telemetry::Histogram h({1.0, 2.0});
  h.observe(10.0);  // +inf tail: reports its lower bound
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

// --- FlightRecorder -------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsNewestAndCountsDrops) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.record(event(FlightEventKind::Enqueue, 0.1 * i, i, i));
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].job, 6 + i);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(FlightRecorderTest, RecordNowStampsConfiguredClock) {
  FlightRecorder rec(8);
  rec.record_now(FlightEventKind::DiskHit, -1, -1, -1, 100);
  rec.set_clock([] { return 2.5; });
  rec.record_now(FlightEventKind::DiskCorrupt);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);  // no clock configured yet
  EXPECT_DOUBLE_EQ(events[1].time, 2.5);
  EXPECT_EQ(events[0].a, 100);
}

// --- Watchdog -------------------------------------------------------------

TEST(WatchdogTest, DeadlineStormTripsOncePerStorm) {
  FlightRecorder rec(32);
  telemetry::WatchdogOptions opt;
  opt.deadline_storm_misses = 3;
  opt.deadline_window = 1.0;
  telemetry::Watchdog dog(opt, &rec);
  dog.observe_deadline_miss(0.1);
  dog.observe_deadline_miss(0.2);
  EXPECT_TRUE(dog.trips().empty());
  dog.observe_deadline_miss(0.3);
  ASSERT_EQ(dog.trips().size(), 1u);
  EXPECT_EQ(dog.trips()[0].reason, telemetry::kTripDeadlineStorm);
  EXPECT_EQ(dog.trips()[0].value, 3);
  dog.observe_deadline_miss(0.4);  // still the same storm: no re-trip
  EXPECT_EQ(dog.trips().size(), 1u);
  // The window drains, then a fresh storm trips again.
  dog.observe_deadline_miss(5.0);
  dog.observe_deadline_miss(5.1);
  dog.observe_deadline_miss(5.2);
  EXPECT_EQ(dog.trips().size(), 2u);
  int recorded = 0;
  for (const auto& ev : rec.events())
    if (ev.kind == FlightEventKind::WatchdogTrip) ++recorded;
  EXPECT_EQ(recorded, 2);
}

TEST(WatchdogTest, StallTripsAndProgressRearms) {
  telemetry::WatchdogOptions opt;
  opt.stall_timeout = 1.0;
  telemetry::Watchdog dog(opt);
  int fired = 0;
  dog.on_trip = [&](const telemetry::WatchdogTrip&) { ++fired; };
  dog.check(0.0, 1);  // arms
  dog.check(0.5, 1);
  EXPECT_EQ(fired, 0);
  dog.check(1.5, 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(dog.trips()[0].reason, telemetry::kTripStall);
  dog.check(2.0, 1);  // already stalled: no re-trip without progress
  EXPECT_EQ(fired, 1);
  dog.observe_completion(2.0);
  dog.check(2.5, 1);
  EXPECT_EQ(fired, 1);
  dog.check(3.5, 1);
  EXPECT_EQ(fired, 2);
  dog.check(10.0, 0);  // idle machine never stalls
  EXPECT_EQ(fired, 2);
}

TEST(WatchdogTest, DiskCorruptionGrowthTrips) {
  telemetry::WatchdogOptions opt;
  opt.trip_on_disk_corrupt = true;
  telemetry::Watchdog dog(opt);
  dog.check(0.0, 0, 0);
  EXPECT_TRUE(dog.trips().empty());
  dog.check(1.0, 0, 2);
  ASSERT_EQ(dog.trips().size(), 1u);
  EXPECT_EQ(dog.trips()[0].reason, telemetry::kTripDiskCorrupt);
  EXPECT_EQ(dog.trips()[0].value, 2);
  dog.check(2.0, 0, 2);  // unchanged counter: no re-trip
  EXPECT_EQ(dog.trips().size(), 1u);
  dog.check(3.0, 0, 3);
  EXPECT_EQ(dog.trips().size(), 2u);
}

// --- Exporters (byte-exact golden output) ---------------------------------

TEST(ExporterTest, PrometheusGoldenBytes) {
  telemetry::Registry reg;
  reg.counter("sched.jobs").add(3);
  reg.gauge("sched.util").set(0.5);
  auto& h = reg.histogram("sched.wait_s", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  std::ostringstream os;
  telemetry::export_prometheus(os, reg);
  EXPECT_EQ(os.str(),
            "# TYPE gpupipe_sched_jobs counter\n"
            "gpupipe_sched_jobs 3\n"
            "# TYPE gpupipe_sched_util gauge\n"
            "gpupipe_sched_util 0.5\n"
            "# TYPE gpupipe_sched_wait_s histogram\n"
            "gpupipe_sched_wait_s_bucket{le=\"1\"} 1\n"
            "gpupipe_sched_wait_s_bucket{le=\"2\"} 2\n"
            "gpupipe_sched_wait_s_bucket{le=\"+Inf\"} 2\n"
            "gpupipe_sched_wait_s_sum 2\n"
            "gpupipe_sched_wait_s_count 2\n");
}

TEST(ExporterTest, EventsJsonlGoldenBytes) {
  FlightRecorder rec(16);
  rec.record(event(FlightEventKind::Enqueue, 0.5, 7, 7));
  rec.record(event(FlightEventKind::Admit, 1.0, 7, 7, 0, 1024, 16));
  rec.record(event(FlightEventKind::Reject, 2.0, 9, 9, -1, telemetry::kRejectRetryBudget));
  rec.record(event(FlightEventKind::WatchdogTrip, 3.0, -1, -1, -1, telemetry::kTripStall, 5));
  rec.record(event(FlightEventKind::Shard, 4.0, 7, 7, 0, 3, 4096));
  rec.record(event(FlightEventKind::Reshard, 5.0, 7, 7, 0, 1, 128));
  rec.record(event(FlightEventKind::P2pXfer, 6.0, 7, 7, 0, 2048, 1));
  std::ostringstream os;
  telemetry::export_events_jsonl(os, rec);
  EXPECT_EQ(os.str(),
            "{\"t\":0.5,\"event\":\"enqueue\",\"trace\":7,\"job\":7}\n"
            "{\"t\":1,\"event\":\"admit\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"footprint\":1024,\"chunk\":16}\n"
            "{\"t\":2,\"event\":\"reject\",\"trace\":9,\"job\":9,"
            "\"reason\":\"retry-budget\"}\n"
            "{\"t\":3,\"event\":\"watchdog-trip\",\"reason\":\"stall\",\"value\":5}\n"
            "{\"t\":4,\"event\":\"shard\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"devices\":3,\"halo_bytes\":4096}\n"
            "{\"t\":5,\"event\":\"reshard\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"devices\":1,\"remaining\":128}\n"
            "{\"t\":6,\"event\":\"p2p-xfer\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"bytes\":2048,\"src\":1}\n");
}

TEST(ExporterTest, SeriesJsonlGoldenBytes) {
  telemetry::TimeSeriesStore store;
  store.add("sched.queue_depth", 0.001, 3.0);
  store.add("sched.queue_depth", 0.002, 1.0);
  store.add("plan_cache.hit_rate", 0.001, 0.25);
  std::ostringstream os;
  telemetry::export_series_jsonl(os, store);
  // Series iterate in name order regardless of insertion order.
  EXPECT_EQ(os.str(),
            "{\"series\":\"plan_cache.hit_rate\",\"t\":0.001,\"v\":0.25}\n"
            "{\"series\":\"sched.queue_depth\",\"t\":0.001,\"v\":3}\n"
            "{\"series\":\"sched.queue_depth\",\"t\":0.002,\"v\":1}\n");
}

// --- Trace-id propagation through a scheduled run -------------------------

TEST(ObservabilityRun, TraceIdJoinsRecorderEventsAndSpans) {
  Machine m(2);
  FlightRecorder rec(4096);
  sched::SchedulerOptions opts;
  opts.recorder = &rec;
  const auto rep = run_synthetic(m, opts, 6);
  ASSERT_EQ(rep.completed, 6);
  const auto events = rec.events();
  for (const auto& r : rep.jobs) {
    ASSERT_EQ(r.trace_id, r.id);  // default ids are the submission index
    // The job's recorder chain: enqueue -> admit -> complete, in time order,
    // all carrying its trace id.
    SimTime enqueue = -1.0, admit = -1.0, complete = -1.0;
    for (const auto& ev : events) {
      if (ev.trace_id != r.trace_id) continue;
      if (ev.kind == FlightEventKind::Enqueue) enqueue = ev.time;
      if (ev.kind == FlightEventKind::Admit) {
        admit = ev.time;
        EXPECT_EQ(ev.device, r.device);
        EXPECT_EQ(ev.a, static_cast<std::int64_t>(r.footprint));
        EXPECT_EQ(ev.b, r.chunk_size);
      }
      if (ev.kind == FlightEventKind::Complete) {
        complete = ev.time;
        EXPECT_EQ(ev.a, std::llround(r.service() * 1e9));
      }
    }
    EXPECT_GE(enqueue, 0.0) << "job " << r.id;
    EXPECT_GE(admit, enqueue) << "job " << r.id;
    EXPECT_GE(complete, admit) << "job " << r.id;
    // The placed device's trace spans carry the same id, joining the
    // control-plane story to the data-plane timeline.
    ASSERT_GE(r.device, 0);
    int spans = 0;
    for (const auto& s : m.devices[static_cast<std::size_t>(r.device)]->trace().spans())
      if (s.trace == r.trace_id) ++spans;
    EXPECT_GT(spans, 0) << "job " << r.id;
  }
}

TEST(ObservabilityRun, PinnedTraceIdsFlowThrough) {
  Machine m(1);
  FlightRecorder rec(256);
  sched::SchedulerOptions opts;
  opts.recorder = &rec;
  sched::Scheduler s(m.devices, opts);
  auto sj = sched::make_synthetic_job(sched::synthetic_job_mix(1)[0], 0);
  sj.job.trace_id = 4242;  // replaying an external trace
  s.submit(sj.job);
  const auto rep = s.run();
  EXPECT_EQ(rep.jobs[0].trace_id, 4242);
  bool found = false;
  for (const auto& ev : rec.events())
    if (ev.kind == FlightEventKind::Complete && ev.trace_id == 4242) found = true;
  EXPECT_TRUE(found);
}

// --- Sampler --------------------------------------------------------------

TEST(ObservabilityRun, SamplingDoesNotPerturbScheduling) {
  Machine plain(2);
  const auto base = run_synthetic(plain, {}, 8);

  Machine observed(2);
  FlightRecorder rec(4096);
  telemetry::TimeSeriesStore series;
  sched::SchedulerOptions opts;
  opts.recorder = &rec;
  opts.series = &series;
  opts.sample_every = 0.0005;
  const auto obs = run_synthetic(observed, opts, 8);

  // Recording and sampling must be pure observation: identical virtual-time
  // outcomes, job for job.
  EXPECT_EQ(obs.makespan, base.makespan);
  ASSERT_EQ(obs.jobs.size(), base.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(obs.jobs[i].start, base.jobs[i].start) << i;
    EXPECT_EQ(obs.jobs[i].finish, base.jobs[i].finish) << i;
    EXPECT_EQ(obs.jobs[i].device, base.jobs[i].device) << i;
  }
}

TEST(ObservabilityRun, SamplesLandOnNominalTicks) {
  Machine m(2);
  telemetry::TimeSeriesStore series;
  sched::SchedulerOptions opts;
  opts.series = &series;
  opts.sample_every = 0.0005;
  const auto rep = run_synthetic(m, opts, 6);
  const auto& depth = series.series("sched.queue_depth");
  ASSERT_GT(depth.size(), 0u);
  // Points carry the nominal tick times t0 + k*dt (the exact accumulation
  // the scheduler performs), not whatever host time the loop reached.
  SimTime expect = rep.start + opts.sample_every;
  for (const auto& p : depth.points()) {
    EXPECT_DOUBLE_EQ(p.t, expect);
    expect += opts.sample_every;
  }
  // The per-device series exist for both devices.
  EXPECT_GT(series.series("sched.dev0.utilization").size(), 0u);
  EXPECT_GT(series.series("sched.dev1.utilization").size(), 0u);
}

TEST(ObservabilityRun, SchedulerExportsObservabilityCounters) {
  Machine m(2);
  FlightRecorder rec(4096);
  sched::SchedulerOptions opts;
  opts.recorder = &rec;
  sched::Scheduler s(m.devices, opts);
  const auto mix = sched::synthetic_job_mix(6);
  for (std::size_t i = 0; i < mix.size(); ++i)
    s.submit(sched::make_synthetic_job(mix[i], static_cast<int>(i)).job);
  s.run();
  telemetry::Registry reg;
  s.collect_metrics(reg);
  EXPECT_EQ(reg.counter_value("sched.recorder.events"),
            static_cast<std::int64_t>(rec.total_recorded()));
  EXPECT_GT(reg.counter_value("sched.recorder.events"), 0);
  EXPECT_EQ(reg.counter_value("sched.recorder.dropped"), 0);
}

// --- Watchdog under a scheduled deadline storm ----------------------------

TEST(ObservabilityRun, DeadlineStormTripsWatchdogDuringRun) {
  Machine m(1);
  FlightRecorder rec(1024);
  telemetry::WatchdogOptions wopt;
  wopt.deadline_storm_misses = 3;
  wopt.deadline_window = 10.0;  // every miss of this run lands in one window
  telemetry::Watchdog dog(wopt, &rec);
  sched::SchedulerOptions opts;
  opts.recorder = &rec;
  opts.watchdog = &dog;
  sched::Scheduler s(m.devices, opts);
  auto mix = sched::synthetic_job_mix(5);
  for (auto& line : mix) line.deadline = 1e-9;  // unmeetable: every job misses
  for (std::size_t i = 0; i < mix.size(); ++i)
    s.submit(sched::make_synthetic_job(mix[i], static_cast<int>(i)).job);
  const auto rep = s.run();
  EXPECT_EQ(rep.deadline_misses, 5);
  ASSERT_FALSE(dog.trips().empty());
  EXPECT_EQ(dog.trips()[0].reason, telemetry::kTripDeadlineStorm);
  bool recorded = false;
  for (const auto& ev : rec.events())
    if (ev.kind == FlightEventKind::WatchdogTrip) recorded = true;
  EXPECT_TRUE(recorded);
}

// --- GPUPIPE_TRACE_STRICT -------------------------------------------------

TEST(TraceStrict, OverflowThrowsOnlyWhenStrict) {
  struct Restore {
    ~Restore() { sim::Trace::set_strict_drops(false); }
  } restore;
  sim::Trace t;
  t.set_span_capacity(2);
  t.record(sim::SpanKind::Kernel, "lane", "a", 0.0, 1.0);
  t.record(sim::SpanKind::Kernel, "lane", "b", 1.0, 2.0);
  sim::Trace::set_strict_drops(true);
  EXPECT_THROW(t.record(sim::SpanKind::Kernel, "lane", "c", 2.0, 3.0), Error);
  EXPECT_EQ(t.dropped_spans(), 0u);  // the throw happened before eviction
  sim::Trace::set_strict_drops(false);
  t.record(sim::SpanKind::Kernel, "lane", "c", 2.0, 3.0);
  EXPECT_EQ(t.dropped_spans(), 1u);
  EXPECT_EQ(t.spans().size(), 2u);
}

// --- Plan-cache disk recorder + compaction --------------------------------

struct TempDir {
  fs::path path;
  explicit TempDir(const char* name) : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(PlanCacheObservability, RecorderSeesDiskHitsAndCorruption) {
  TempDir dir("gpupipe_obs_disk_recorder");
  core::PlanCache cache(64);
  cache.set_disk_dir(dir.path.string());
  FlightRecorder rec(64);
  cache.set_recorder(&rec);

  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const auto spec = sched::make_synthetic_job(sched::synthetic_job_mix(1)[0], 0).job.spec;
  const Bytes fp = cache.footprint(g, spec, spec.chunk_size, spec.num_streams);
  cache.clear();  // drop the memory tier; the next lookup must come from disk
  EXPECT_EQ(cache.footprint(g, spec, spec.chunk_size, spec.num_streams), fp);
  int hits = 0;
  for (const auto& ev : rec.events())
    if (ev.kind == FlightEventKind::DiskHit) {
      ++hits;
      EXPECT_GT(ev.a, 0);  // payload bytes read
    }
  EXPECT_EQ(hits, 1);

  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::ofstream os(entry.path(), std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  cache.clear();
  EXPECT_EQ(cache.footprint(g, spec, spec.chunk_size, spec.num_streams), fp);
  int corrupt = 0;
  for (const auto& ev : rec.events())
    if (ev.kind == FlightEventKind::DiskCorrupt) ++corrupt;
  EXPECT_EQ(corrupt, 1);
  cache.set_recorder(nullptr);
}

TEST(PlanCacheObservability, CompactionRemovesCorpsesKeepsCurrentRecords) {
  TempDir dir("gpupipe_obs_disk_compact");
  auto write = [&](const std::string& name, const std::string& bytes) {
    std::ofstream os(dir.path / name, std::ios::binary);
    os << bytes;
  };
  auto header = [](std::uint32_t magic, std::uint32_t version) {
    std::string out;
    for (std::uint32_t v : {magic, version})
      for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
    return out;
  };
  write("current.plan", header(core::kPlanArtifactMagic, core::kPlanFormatVersion));
  write("stale.plan", header(core::kPlanArtifactMagic, core::kPlanFormatVersion + 1));
  write("short.plan", "xy");  // can't even hold a header
  write("old.plan.quarantined", "z");
  write("orphan.plan.tmp.ff.0", "zz");

  core::PlanCache cache(4);
  cache.set_disk_dir(dir.path.string());
  const auto rep = cache.compact_disk();
  EXPECT_EQ(rep.scanned, 5);
  EXPECT_EQ(rep.kept, 1);
  EXPECT_EQ(rep.removed_stale, 2);
  EXPECT_EQ(rep.removed_quarantined, 1);
  EXPECT_EQ(rep.removed_temp, 1);
  EXPECT_EQ(rep.removed(), 4);
  EXPECT_EQ(rep.bytes_reclaimed, static_cast<Bytes>(8 + 2 + 1 + 2));
  EXPECT_TRUE(fs::exists(dir.path / "current.plan"));
  EXPECT_FALSE(fs::exists(dir.path / "stale.plan"));
  EXPECT_FALSE(fs::exists(dir.path / "old.plan.quarantined"));
  EXPECT_FALSE(fs::exists(dir.path / "orphan.plan.tmp.ff.0"));
  EXPECT_EQ(cache.stats().disk_compacted, 4);

  telemetry::Registry reg;
  cache.collect_metrics(reg);
  EXPECT_EQ(reg.counter_value("plan_cache.disk.compacted"), 4);

  // A second pass is a no-op: current records are never touched.
  const auto again = cache.compact_disk();
  EXPECT_EQ(again.scanned, 1);
  EXPECT_EQ(again.kept, 1);
  EXPECT_EQ(again.removed(), 0);
}

TEST(PlanCacheObservability, CompactWithoutDiskDirIsNoop) {
  core::PlanCache cache(4);
  const auto rep = cache.compact_disk();
  EXPECT_EQ(rep.scanned, 0);
  EXPECT_EQ(rep.removed(), 0);
}

}  // namespace
}  // namespace gpupipe
