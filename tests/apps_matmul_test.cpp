// Correctness tests for matrix multiplication, including the 2-D
// non-contiguous streaming path and the out-of-memory behaviour of the
// full-allocation versions.
#include <gtest/gtest.h>

#include "apps/matmul.hpp"
#include "common/checksum.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::apps {
namespace {

MatmulConfig small_cfg() {
  MatmulConfig cfg;
  cfg.n = 24;
  cfg.chunk_cols = 5;
  cfg.num_streams = 2;
  return cfg;
}

TEST(MatmulApp, BaselineMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  matmul_baseline(g, small_cfg(), &out);
  const auto ref = matmul_reference(small_cfg());
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_TRUE(approx_equal(out, ref, 1e-12));
}

TEST(MatmulApp, BlockSharedMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  matmul_block_shared(g, small_cfg(), &out);
  EXPECT_TRUE(approx_equal(out, matmul_reference(small_cfg()), 1e-12));
}

TEST(MatmulApp, PipelineBufferMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  matmul_pipeline_buffer(g, small_cfg(), &out);
  EXPECT_TRUE(approx_equal(out, matmul_reference(small_cfg()), 1e-12));
}

class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatmulSweep, PipelineCorrectForAllChunkStreamCombos) {
  auto cfg = small_cfg();
  cfg.chunk_cols = std::get<0>(GetParam());
  cfg.num_streams = std::get<1>(GetParam());
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  matmul_pipeline_buffer(g, cfg, &out);
  EXPECT_TRUE(approx_equal(out, matmul_reference(cfg), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, MatmulSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8, 24),
                                            ::testing::Values(1, 2, 4)));

TEST(MatmulApp, FullVersionsThrowOomWhenMatricesExceedDeviceMemory) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  MatmulConfig cfg;
  cfg.n = 24576;  // 3 x 4.5 GiB > usable memory (the paper's rightmost size)
  EXPECT_THROW(matmul_baseline(g, cfg), gpu::OomError);
}

TEST(MatmulApp, PipelineBufferRunsSizesThatOomTheOthers) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  MatmulConfig cfg;
  cfg.n = 24576;
  cfg.chunk_cols = 512;
  const auto m = matmul_pipeline_buffer(g, cfg);
  EXPECT_GT(m.seconds, 0.0);
  // Only C plus two small rings live on the device.
  EXPECT_LT(m.peak_device_mem, 2 * cfg.matrix_bytes());
}

TEST(MatmulApp, PipelineBufferSavesAboutTwoThirdsMemory) {
  MatmulConfig cfg;
  cfg.n = 2048;
  cfg.chunk_cols = 64;
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  gpu::Gpu g2(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const auto full = matmul_block_shared(g1, cfg);
  const auto piped = matmul_pipeline_buffer(g2, cfg);
  const double ratio = static_cast<double>(piped.peak_device_mem) /
                       static_cast<double>(full.peak_device_mem);
  EXPECT_LT(ratio, 0.55);   // well below half
  EXPECT_GT(ratio, 0.30);   // but C (one third) must remain resident
}

TEST(MatmulApp, TiledKernelApproachesThreeTimesFasterAtScale) {
  // The paper: block-shared achieves *up to* 3x over the baseline; the
  // advantage grows with size as the (version-independent) transfer time
  // becomes negligible relative to kernel time.
  auto speedup_at = [](std::int64_t n) {
    MatmulConfig cfg;
    cfg.n = n;
    gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    gpu::Gpu g2(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    return matmul_baseline(g1, cfg).seconds / matmul_block_shared(g2, cfg).seconds;
  };
  const double s4k = speedup_at(4096);
  const double s16k = speedup_at(16384);
  EXPECT_GT(s4k, 1.8);
  EXPECT_GT(s16k, s4k);
  EXPECT_GT(s16k, 2.5);
  EXPECT_LT(s16k, 3.5);
}

TEST(MatmulApp, NonContiguousTransfersAreSlowerThanContiguous) {
  // The 2-D pitched column-block copies of A must take longer on the bus
  // than B's contiguous row blocks of the same volume (the §V-E premise).
  MatmulConfig cfg;
  cfg.n = 1024;
  cfg.chunk_cols = 64;
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  matmul_pipeline_buffer(g, cfg);
  SimTime t2d = 0.0, t1d = 0.0;
  for (const auto& s : g.trace().spans()) {
    if (s.kind != sim::SpanKind::H2D) continue;
    const std::string& label = g.trace().label(s);
    if (label.rfind("h2d2D", 0) == 0) t2d += s.duration();
    if (label.rfind("h2d[", 0) == 0) t1d += s.duration();
  }
  EXPECT_GT(t2d, t1d * 1.5);
}

}  // namespace
}  // namespace gpupipe::apps
