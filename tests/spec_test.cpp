// Unit tests for the pipeline specification types and their validation.
#include <gtest/gtest.h>

#include "core/spec.hpp"

namespace gpupipe::core {
namespace {

std::byte* fake_host() { return reinterpret_cast<std::byte*>(0x1000); }

ArraySpec valid_array() {
  ArraySpec a;
  a.name = "A";
  a.map = MapType::To;
  a.host = fake_host();
  a.elem_size = sizeof(double);
  a.dims = {16, 8};
  a.split = SplitSpec{0, Affine{1, 0}, 1};
  return a;
}

TEST(Affine, EvaluatesScaleAndOffset) {
  const Affine f{2, -3};
  EXPECT_EQ(f(0), -3);
  EXPECT_EQ(f(5), 7);
  EXPECT_EQ((Affine{1, 0}(42)), 42);
}

TEST(SplitSpec, RangeOfUsesAffineOrFunction) {
  SplitSpec s{0, Affine{1, -1}, 3};
  EXPECT_EQ(s.range_of(5), (std::pair<std::int64_t, std::int64_t>{4, 7}));
  s.window_fn = [](std::int64_t k) { return std::make_pair(k * 2, k * 2 + 5); };
  EXPECT_EQ(s.range_of(5), (std::pair<std::int64_t, std::int64_t>{10, 15}));
}

TEST(ArraySpec, GeometryHelpers) {
  ArraySpec a = valid_array();
  a.dims = {4, 8, 16};
  EXPECT_EQ(a.inner_elems(), 8 * 16);
  EXPECT_EQ(a.outer_elems(), 1);
  EXPECT_EQ(a.total_bytes(), 4u * 8 * 16 * sizeof(double));
  a.split.dim = 1;
  EXPECT_EQ(a.inner_elems(), 16);
  EXPECT_EQ(a.outer_elems(), 4);
}

TEST(ArraySpec, ValidationCatchesEachDefect) {
  {
    ArraySpec a = valid_array();
    a.host = nullptr;
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.elem_size = 0;
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.dims = {};
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.dims = {16, 0};
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.split.window = 0;
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.split.start.scale = 0;  // non-increasing split
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.split.dim = 1;
    a.dims = {4, 8, 16};  // block2d only for 2-D arrays
    EXPECT_THROW(a.validate(), Error);
  }
  {
    ArraySpec a = valid_array();
    a.map = MapType::From;
    a.split.window = 2;  // overlapping outputs (scale 1)
    EXPECT_THROW(a.validate(), Error);
  }
  EXPECT_NO_THROW(valid_array().validate());
}

TEST(ArraySpec, OutputWindowMayEqualScale) {
  ArraySpec a = valid_array();
  a.map = MapType::From;
  a.split = SplitSpec{0, Affine{2, 0}, 2};
  EXPECT_NO_THROW(a.validate());
}

TEST(PipelineSpec, ValidationAndCounting) {
  PipelineSpec s;
  s.loop_begin = 0;
  s.loop_end = 10;
  s.chunk_size = 3;
  s.arrays = {valid_array()};
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.iterations(), 10);
  EXPECT_EQ(s.num_chunks(), 4);  // 3+3+3+1

  s.loop_end = 0;
  EXPECT_THROW(s.validate(), Error);
  s.loop_end = 10;
  s.chunk_size = 0;
  EXPECT_THROW(s.validate(), Error);
  s.chunk_size = 1;
  s.num_streams = 0;
  EXPECT_THROW(s.validate(), Error);
  s.num_streams = 1;
  s.arrays.clear();
  EXPECT_THROW(s.validate(), Error);
  s.arrays = {valid_array()};
  s.mem_limit = 0;
  EXPECT_THROW(s.validate(), Error);
}

TEST(MapType, NamesRoundTrip) {
  EXPECT_STREQ(to_string(MapType::To), "to");
  EXPECT_STREQ(to_string(MapType::From), "from");
  EXPECT_STREQ(to_string(MapType::ToFrom), "tofrom");
}

}  // namespace
}  // namespace gpupipe::core
