// Tests for the function-based dependency extension: SplitSpec::window_fn
// replaces the affine [split_iter:size] declaration with an arbitrary
// monotone per-iteration range callback.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

/// Rows of a "ragged" computation: iteration k consumes input rows
/// [tri(k), tri(k+1)) where tri is the triangular-number prefix — windows
/// of growing, non-affine size (1, 2, 3, ... rows).
std::int64_t tri(std::int64_t k) { return k * (k + 1) / 2; }

TEST(WindowFn, RaggedWindowsComputeCorrectly) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t iters = 8;
  const std::int64_t rows = tri(iters);  // 36 input rows
  const std::int64_t m = 4;
  std::vector<double> in(rows * m), out(iters * m, 0.0);
  std::iota(in.begin(), in.end(), 0.0);

  PipelineSpec spec;
  spec.chunk_size = 2;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = iters;
  ArraySpec a_in{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                 {rows, m}, SplitSpec{}};
  a_in.split.window_fn = [](std::int64_t k) { return std::make_pair(tri(k), tri(k + 1)); };
  ArraySpec a_out{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                  sizeof(double), {iters, m}, SplitSpec{0, Affine{1, 0}, 1}};
  spec.arrays = {a_in, a_out};

  Pipeline p(g, spec);
  p.run([m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    const BufferView vin = ctx.view("in");
    const BufferView vout = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    // out[k][j] = sum over the k-th ragged group of in rows.
    k.body = [vin, vout, lo, hi, m] {
      for (std::int64_t it = lo; it < hi; ++it) {
        double* dst = vout.slab_ptr(it);
        for (std::int64_t j = 0; j < m; ++j) dst[j] = 0.0;
        for (std::int64_t r = tri(it); r < tri(it + 1); ++r)
          for (std::int64_t j = 0; j < m; ++j) dst[j] += vin.slab_ptr(r)[j];
      }
    };
    return k;
  });

  for (std::int64_t it = 0; it < iters; ++it) {
    for (std::int64_t j = 0; j < m; ++j) {
      double expect = 0.0;
      for (std::int64_t r = tri(it); r < tri(it + 1); ++r) expect += in[r * m + j];
      ASSERT_DOUBLE_EQ(out[it * m + j], expect) << it << "," << j;
    }
  }
}

TEST(WindowFn, RingSizeCoversTheLargestWindowGroup) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(64 * MiB);
  PipelineSpec spec;
  spec.chunk_size = 1;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"in", MapType::To, host, sizeof(double), {tri(8), 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) { return std::make_pair(tri(k), tri(k + 1)); };
  spec.arrays = {a};
  Pipeline p(g, spec);
  // The last two iterations (windows of 7 and 8 rows) must fit together.
  EXPECT_GE(p.ring_len_for_spec(a, 1, 2), 15);
}

TEST(WindowFn, OverlappingInputWindowsAreNotRecopied) {
  // fn-based input with a 2-row halo: each row crosses the bus once.
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 32, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m, 0.0);
  PipelineSpec spec;
  spec.chunk_size = 2;
  spec.num_streams = 2;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  ArraySpec a_in{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                 {n, m}, SplitSpec{}};
  a_in.split.window_fn = [](std::int64_t k) { return std::make_pair(k - 1, k + 2); };
  ArraySpec a_out{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                  sizeof(double), {n, m}, SplitSpec{0, Affine{1, 0}, 1}};
  spec.arrays = {a_in, a_out};
  Pipeline p(g, spec);
  p.run([m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    const BufferView vout = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [vout, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j) vout.slab_ptr(r)[j] = 2.0;
    };
    return k;
  });
  EXPECT_EQ(p.stats().h2d_bytes, static_cast<Bytes>(n * m) * sizeof(double));
}

TEST(WindowFn, NonMonotoneFunctionIsRejected) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(1 * MiB);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"in", MapType::To, host, sizeof(double), {64, 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) {
    return std::make_pair((7 - k), (7 - k) + 1);  // decreasing
  };
  spec.arrays = {a};
  EXPECT_THROW(Pipeline(g, spec), Error);
}

TEST(WindowFn, OutOfBoundsRangeIsRejected) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(1 * MiB);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"in", MapType::To, host, sizeof(double), {4, 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) { return std::make_pair(k, k + 2); };  // hits 9
  spec.arrays = {a};
  EXPECT_THROW(Pipeline(g, spec), Error);
}

TEST(WindowFn, OverlappingOutputWindowsAreRejected) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(1 * MiB);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"out", MapType::From, host, sizeof(double), {64, 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) { return std::make_pair(k, k + 3); };  // overlap
  spec.arrays = {a};
  EXPECT_THROW(Pipeline(g, spec), Error);
}

TEST(WindowFn, AdaptiveScheduleRejectsWindowFunctions) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(1 * MiB);
  PipelineSpec spec;
  spec.schedule = ScheduleKind::Adaptive;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"in", MapType::To, host, sizeof(double), {64, 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) { return std::make_pair(k, k + 1); };
  spec.arrays = {a};
  EXPECT_THROW(Pipeline(g, spec), Error);
}

TEST(WindowFn, CostModelRejectsWindowFunctions) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* host = g.host_alloc(1 * MiB);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  ArraySpec a{"in", MapType::To, host, sizeof(double), {64, 4}, SplitSpec{}};
  a.split.window_fn = [](std::int64_t k) { return std::make_pair(k, k + 1); };
  spec.arrays = {a};
  EXPECT_THROW(CostModel(g.profile(), spec, usec(1.0)), Error);
}

}  // namespace
}  // namespace gpupipe::core
